# Golden-file test driver: runs a figure binary and compares its stdout
# byte-for-byte against the checked-in reference output.
#
# Usage (what tests/CMakeLists.txt generates):
#   cmake -DBINARY=<path> -DGOLDEN=<path> [-DARGS="--steps=4"]
#         -P cmake/golden_diff.cmake
#
# On mismatch the actual output is left next to the golden as
# <golden>.actual and a unified diff is printed when a diff tool exists.
# Regenerate goldens with tests/golden/regen.sh after an intentional
# model change.
if(NOT DEFINED BINARY OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "golden_diff.cmake needs -DBINARY=... and -DGOLDEN=...")
endif()

separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${BINARY}" ${arg_list}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE stderr_out
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "${BINARY} ${ARGS} exited with ${rc}\nstderr:\n${stderr_out}")
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR "golden file missing: ${GOLDEN}\n"
    "regenerate with tests/golden/regen.sh")
endif()
file(READ "${GOLDEN}" expected)

if(NOT actual STREQUAL expected)
  set(actual_path "${GOLDEN}.actual")
  file(WRITE "${actual_path}" "${actual}")
  find_program(DIFF_TOOL diff)
  set(diff_text "")
  if(DIFF_TOOL)
    execute_process(
      COMMAND "${DIFF_TOOL}" -u "${GOLDEN}" "${actual_path}"
      OUTPUT_VARIABLE diff_text
    )
  endif()
  message(FATAL_ERROR
    "golden mismatch for ${BINARY} ${ARGS}\n"
    "expected: ${GOLDEN}\n"
    "actual:   ${actual_path}\n"
    "${diff_text}")
endif()
