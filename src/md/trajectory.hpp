// Minimal binary trajectory format (DCD-inspired): a fixed header followed
// by float32 coordinate frames. Enough for downstream analysis/visual
// tooling and for checkpointing equilibrated structures.
//
// Layout (little-endian):
//   magic  "RPTRJ1\0\0" (8 bytes)
//   natoms          (u64)
//   dt_ps           (f64)    time between stored frames
//   box lx, ly, lz  (3x f64)
//   frames: natoms * 3 * f32, x y z per atom
// The frame count is implied by the file size (crash-safe appends).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "md/box.hpp"
#include "util/vec3.hpp"

namespace repro::md {

class TrajectoryWriter {
 public:
  TrajectoryWriter(const std::string& path, int natoms, const Box& box,
                   double dt_ps);
  ~TrajectoryWriter();

  TrajectoryWriter(const TrajectoryWriter&) = delete;
  TrajectoryWriter& operator=(const TrajectoryWriter&) = delete;

  void write_frame(const std::vector<util::Vec3>& pos);
  int frames_written() const { return frames_; }
  void flush();

 private:
  std::ofstream out_;
  int natoms_;
  int frames_ = 0;
};

class TrajectoryReader {
 public:
  explicit TrajectoryReader(const std::string& path);

  int natoms() const { return natoms_; }
  double dt_ps() const { return dt_ps_; }
  const Box& box() const { return box_; }
  int nframes() const { return nframes_; }

  // Reads frame `index` (0-based) into pos (resized as needed).
  void read_frame(int index, std::vector<util::Vec3>& pos);

 private:
  std::ifstream in_;
  int natoms_ = 0;
  double dt_ps_ = 0.0;
  Box box_;
  int nframes_ = 0;
  std::streamoff frame0_ = 0;
};

}  // namespace repro::md
