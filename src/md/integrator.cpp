#include "md/integrator.hpp"

#include "util/rng.hpp"
#include "util/units.hpp"

namespace repro::md {

void VelocityVerlet::begin_step(const Topology& topo,
                                const std::vector<util::Vec3>& forces,
                                std::vector<util::Vec3>& pos,
                                std::vector<util::Vec3>& vel) const {
  const double half = 0.5 * dt_ * units::kForceToAccel;
  for (int i = 0; i < topo.natoms(); ++i) {
    const auto s = static_cast<std::size_t>(i);
    vel[s] += forces[s] * (half / topo.atom(i).mass);
    pos[s] += vel[s] * dt_;
  }
}

void VelocityVerlet::end_step(const Topology& topo,
                              const std::vector<util::Vec3>& forces,
                              std::vector<util::Vec3>& vel) const {
  const double half = 0.5 * dt_ * units::kForceToAccel;
  for (int i = 0; i < topo.natoms(); ++i) {
    const auto s = static_cast<std::size_t>(i);
    vel[s] += forces[s] * (half / topo.atom(i).mass);
  }
}

double kinetic_energy(const Topology& topo,
                      const std::vector<util::Vec3>& vel) {
  double e = 0.0;
  for (int i = 0; i < topo.natoms(); ++i) {
    e += topo.atom(i).mass * util::norm2(vel[static_cast<std::size_t>(i)]);
  }
  return 0.5 * e / units::kForceToAccel;
}

double temperature(const Topology& topo, const std::vector<util::Vec3>& vel) {
  const double dof = 3.0 * topo.natoms();
  return 2.0 * kinetic_energy(topo, vel) / (dof * units::kBoltzmann);
}

void assign_velocities(const Topology& topo, double temperature_k,
                       std::uint64_t seed, std::vector<util::Vec3>& vel) {
  util::Rng rng(util::mix_seed(seed, 0x76656c73));
  vel.assign(static_cast<std::size_t>(topo.natoms()), {});
  for (int i = 0; i < topo.natoms(); ++i) {
    // sigma^2 = kB T / m in kcal/mol units, converted to (Å/ps)^2.
    const double sigma =
        std::sqrt(units::kBoltzmann * temperature_k * units::kForceToAccel /
                  topo.atom(i).mass);
    auto& v = vel[static_cast<std::size_t>(i)];
    v.x = sigma * rng.normal();
    v.y = sigma * rng.normal();
    v.z = sigma * rng.normal();
  }
  // Remove centre-of-mass momentum.
  util::Vec3 pmom;
  double mtot = 0.0;
  for (int i = 0; i < topo.natoms(); ++i) {
    pmom += vel[static_cast<std::size_t>(i)] * topo.atom(i).mass;
    mtot += topo.atom(i).mass;
  }
  const util::Vec3 vcom = pmom / mtot;
  for (auto& v : vel) v -= vcom;
}

}  // namespace repro::md
