// Bonded energy/force kernels (bonds, angles + Urey-Bradley, dihedrals,
// impropers).
//
// Every kernel computes the terms with index % stride == shard (atom- or
// term-decomposition for the replicated-data parallelization: forces are
// accumulated into a full-size array and globally summed afterwards).
// Each kernel returns the number of terms it evaluated so the simulator's
// cost model can charge virtual compute time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "md/box.hpp"
#include "md/energy.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::md {

struct BondedWork {
  std::size_t bonds = 0;
  std::size_t angles = 0;
  std::size_t dihedrals = 0;
  std::size_t impropers = 0;
  std::size_t total() const { return bonds + angles + dihedrals + impropers; }
};

// Evaluates all bonded terms of `topo` belonging to this shard, adding to
// `energy` and `forces` (forces must be sized natoms and zeroed or
// pre-accumulated by the caller).
BondedWork bonded_energy(const Topology& topo, const Box& box,
                         const std::vector<util::Vec3>& pos,
                         std::vector<util::Vec3>& forces, EnergyTerms& energy,
                         int shard = 0, int stride = 1);

// Spatial-decomposition variant: evaluates exactly the terms whose FIRST
// atom (b.i / a.i / d.i / im.i) has owned_mask set, so disjoint ownership
// masks partition the term set across ranks. Positions of every partner
// atom of an owned term must be valid (owned or ghost); forces may land on
// ghost rows and are shipped home by the caller's force halo. No
// memoization — each rank's mask and halo state is unique.
BondedWork bonded_energy_owned(const Topology& topo, const Box& box,
                               const std::vector<util::Vec3>& pos,
                               const std::vector<std::uint8_t>& owned_mask,
                               std::vector<util::Vec3>& forces,
                               EnergyTerms& energy);

}  // namespace repro::md
