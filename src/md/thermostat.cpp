#include "md/thermostat.hpp"

#include <cmath>

#include "md/integrator.hpp"
#include "util/units.hpp"

namespace repro::md {

double BerendsenThermostat::apply(const Topology& topo, double dt_ps,
                                  int dof,
                                  std::vector<util::Vec3>& vel) const {
  REPRO_REQUIRE(dof > 0, "thermostat needs positive degrees of freedom");
  const double ke = kinetic_energy(topo, vel);
  const double current =
      2.0 * ke / (static_cast<double>(dof) * units::kBoltzmann);
  if (current <= 0.0) return 1.0;
  const double lambda2 =
      1.0 + dt_ps / tau_ps_ * (target_k_ / current - 1.0);
  const double lambda = std::sqrt(std::max(lambda2, 0.0));
  for (auto& v : vel) v *= lambda;
  return lambda;
}

void LangevinThermostat::apply(const Topology& topo, double dt_ps,
                               std::vector<util::Vec3>& vel) {
  // Ornstein-Uhlenbeck half-update: exact decay plus matched noise keeps
  // the Maxwell-Boltzmann distribution stationary for any dt.
  const double decay = std::exp(-gamma_ * dt_ps);
  const double noise_factor = std::sqrt(1.0 - decay * decay);
  for (int i = 0; i < topo.natoms(); ++i) {
    const double sigma = std::sqrt(units::kBoltzmann * target_k_ *
                                   units::kForceToAccel /
                                   topo.atom(i).mass);
    auto& v = vel[static_cast<std::size_t>(i)];
    v = v * decay + util::Vec3{rng_.normal(), rng_.normal(), rng_.normal()} *
                        (sigma * noise_factor);
  }
}

}  // namespace repro::md
