// Trajectory/structure analysis: the standard observables a user computes
// from MD output (radial distribution function, mean-squared displacement,
// radius of gyration, end-to-end vectors).
#pragma once

#include <vector>

#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::md {

// Radial distribution function g(r) between two atom selections (pass the
// same selection twice for a self-RDF). Distances use minimum image; bins
// span (0, r_max].
struct RdfResult {
  std::vector<double> r;    // bin centers (Å)
  std::vector<double> g;    // g(r)
  std::size_t pairs = 0;    // pairs counted
};

RdfResult radial_distribution(const Box& box,
                              const std::vector<util::Vec3>& pos,
                              const std::vector<int>& selection_a,
                              const std::vector<int>& selection_b,
                              double r_max, int bins);

// Mean-squared displacement between two frames for the selected atoms
// (positions must be unwrapped or displacements small vs the box).
double mean_squared_displacement(const std::vector<util::Vec3>& frame0,
                                 const std::vector<util::Vec3>& frame1,
                                 const std::vector<int>& selection);

// Mass-weighted radius of gyration of a selection.
double radius_of_gyration(const Topology& topo,
                          const std::vector<util::Vec3>& pos,
                          const std::vector<int>& selection);

// Mass-weighted centroid of a selection.
util::Vec3 center_of_mass(const Topology& topo,
                          const std::vector<util::Vec3>& pos,
                          const std::vector<int>& selection);

// Convenience selections.
std::vector<int> select_all(const Topology& topo);
std::vector<int> select_heavy_atoms(const Topology& topo);  // mass >= 2
// Water oxygens: mass ~16 with exactly two bonded hydrogens.
std::vector<int> select_water_oxygens(const Topology& topo);

}  // namespace repro::md
