// Steepest-descent energy minimization with an adaptive step, used to
// relax the synthetically built structures before dynamics.
#pragma once

#include <functional>
#include <vector>

#include "util/vec3.hpp"

namespace repro::md {

struct MinimizeOptions {
  int max_steps = 200;
  double initial_step = 0.02;  // Å of maximum atomic displacement per step
  double max_step = 0.5;
  double force_tolerance = 1.0;  // kcal/mol/Å on the largest component
};

struct MinimizeResult {
  int steps = 0;
  double initial_energy = 0.0;
  double final_energy = 0.0;
  double max_force = 0.0;
  bool converged = false;
};

// `evaluate` computes the potential energy and fills `forces` (sized like
// pos) for the given positions.
using EnergyFunction = std::function<double(
    const std::vector<util::Vec3>& pos, std::vector<util::Vec3>& forces)>;

MinimizeResult minimize(const MinimizeOptions& opts,
                        const EnergyFunction& evaluate,
                        std::vector<util::Vec3>& pos);

}  // namespace repro::md
