// Non-bonded energy/force kernels.
//
// Lennard-Jones uses CHARMM's Emin/Rmin form with an energy switching
// function between switch_on and cutoff (VSWITCH). Electrostatics is one
// of:
//   kShift       — CHARMM SHIFT: qq/r (1 - r^2/rc^2)^2, the paper's
//                  "electrostatic interactions shifted to zero at 10 Å"
//                  (the classic, non-PME model), and
//   kEwaldDirect — the real-space Ewald term qq erfc(beta r)/r used for the
//                  direct sum when PME handles the long-range part.
//
// Every kernel ships two variants behind NonbondedOptions::kernel:
//   kScalar — the straight-line reference; bit-identical to the historical
//             implementation and to the goldens.
//   kSimd   — SoA-staged, width-agnostic vector lanes (#pragma omp simd)
//             with a chunked gather/compact/compute structure and
//             Hermite-table erfc/exp. Deterministic across reruns; agrees
//             with kScalar to ~1e-12 (pinned by kernel_variant_test).
// Both variants report identical NonbondedWork counters, so the DES cost
// model charges the same simulated time either way.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "md/box.hpp"
#include "md/energy.hpp"
#include "md/neighbor.hpp"
#include "md/topology.hpp"
#include "util/kernel.hpp"
#include "util/vec3.hpp"

namespace repro::md {

// Precomputed LJ mixing table: atoms are deduplicated into LJ types by
// their exact (eps, rmin_half) values and the CHARMM combining rules are
// applied once per type pair instead of once per interaction
// (sqrt(eps_i eps_j) on identical inputs is correctly rounded, so the
// scalar path through the table is bit-identical to the per-pair math it
// replaces). charge is the SoA copy the simd gather loops read.
struct PairTable {
  int ntypes = 0;
  std::vector<int> type_of;    // natoms -> LJ type id
  std::vector<double> eps;     // ntypes^2: sqrt(eps_i * eps_j)
  std::vector<double> rmin;    // ntypes^2: rmin_half_i + rmin_half_j
  std::vector<double> charge;  // natoms (e)
};

// Builds the table once at topology setup; callers stash it on
// NonbondedOptions::table so per-step kernel calls skip the dedup pass.
std::shared_ptr<const PairTable> build_pair_table(const Topology& topo);

struct NonbondedOptions {
  double cutoff = 10.0;     // Å (ctofnb)
  double switch_on = 8.0;   // Å (ctonnb, vdW switching)
  enum class Elec { kShift, kEwaldDirect } elec = Elec::kShift;
  double beta = 0.34;       // Ewald splitting parameter, 1/Å
  util::KernelKind kernel = util::KernelKind::kScalar;
  // Optional precomputed mixing table; when null the kernels build a
  // local one per call (identical results, just repeated setup work).
  std::shared_ptr<const PairTable> table;
};

struct NonbondedWork {
  std::size_t pairs_listed = 0;   // pairs examined from the list
  std::size_t pairs_in_cutoff = 0;
  double lj = 0.0;
  double elec = 0.0;
};

// Evaluates the shard's share of the pair list (i-atoms with
// i % stride == shard), accumulating into forces/energy.
NonbondedWork nonbonded_energy(const Topology& topo, const Box& box,
                               const std::vector<util::Vec3>& pos,
                               const NeighborList& nbl,
                               const NonbondedOptions& opts,
                               std::vector<util::Vec3>& forces,
                               EnergyTerms& energy, int shard = 0,
                               int stride = 1);

// Force-decomposition variant: evaluates pair (i, j) of the list iff
// (block[i] + block[j]) % nowners == owner, where block[] maps each atom
// to its contiguous block (one block per rank). Every pair of the list
// belongs to exactly one owner, so summing over owners reproduces
// nonbonded_energy's totals. pairs_listed counts the owned pairs.
NonbondedWork nonbonded_energy_blocked(const Topology& topo, const Box& box,
                                       const std::vector<util::Vec3>& pos,
                                       const NeighborList& nbl,
                                       const NonbondedOptions& opts,
                                       const std::vector<int>& block,
                                       int owner, int nowners,
                                       std::vector<util::Vec3>& forces,
                                       EnergyTerms& energy);

// Reference O(N^2) evaluation (tests): identical physics without a list.
// Always runs the scalar variant — it is the oracle the simd path is
// checked against.
NonbondedWork nonbonded_energy_reference(const Topology& topo, const Box& box,
                                         const std::vector<util::Vec3>& pos,
                                         const NonbondedOptions& opts,
                                         std::vector<util::Vec3>& forces,
                                         EnergyTerms& energy);

}  // namespace repro::md
