#include "md/bonded.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <numbers>

#include "util/hash.hpp"

namespace repro::md {

namespace {

using util::Vec3;

// --- Memoization of identical shard evaluations -----------------------------
//
// Replicated-data ranks and factorial-sweep cells evaluate the very same
// bonded shard on the very same coordinates and accumulator state, so a
// small process-wide cache keyed by the full inputs — term tables, box,
// positions, incoming forces and energy fields — can return the stored
// post-call accumulator state. Because the outgoing forces/energies are a
// nonassociative accumulation INTO the incoming values, the incoming
// arrays are part of the key (compared byte-for-byte; the hash only
// pre-filters), which makes a hit's outputs exactly the bytes the plain
// evaluation would have produced. Disable with REPRO_BONDED_MEMO=0.
struct BondedMemoEntry {
  int shard = 0;
  int stride = 1;
  util::Vec3 box_len;
  std::uint64_t hash = 0;  // over pos + incoming forces
  std::vector<Bond> bonds;
  std::vector<Angle> angles;
  std::vector<Dihedral> dihedrals;
  std::vector<Improper> impropers;
  std::vector<Vec3> pos;
  std::vector<Vec3> forces_in;
  std::vector<Vec3> forces_out;
  double energy_in[4] = {};   // bond, angle, dihedral, improper
  double energy_out[4] = {};
  BondedWork work;
};

constexpr std::size_t kBondedMemoCap = 256;

std::mutex bonded_memo_mu;

std::deque<std::shared_ptr<const BondedMemoEntry>>& bonded_memo() {
  static std::deque<std::shared_ptr<const BondedMemoEntry>> memo;
  return memo;
}

bool bonded_memo_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("REPRO_BONDED_MEMO");
    return env == nullptr || env[0] != '0';
  }();
  return on;
}

// Bitwise vector equality; copies made from the same source vector have
// identical bytes (including struct padding), so repeats always match.
template <typename T>
bool same_bytes(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;  // memcmp on null is UB even at n == 0
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

// Wraps an angle difference into (-pi, pi].
double wrap_angle(double a) {
  while (a > std::numbers::pi) a -= 2.0 * std::numbers::pi;
  while (a <= -std::numbers::pi) a += 2.0 * std::numbers::pi;
  return a;
}

// Harmonic two-body term (bonds and Urey-Bradley): adds energy and forces,
// returns the energy.
double harmonic_pair(const Box& box, const std::vector<Vec3>& pos,
                     std::vector<Vec3>& forces, int i, int j, double kf,
                     double r0) {
  const Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                               pos[static_cast<std::size_t>(j)]);
  const double r = util::norm(d);
  const double dr = r - r0;
  const double e = kf * dr * dr;
  // F_i = -dE/dr * d/r
  const Vec3 f = d * (-2.0 * kf * dr / r);
  forces[static_cast<std::size_t>(i)] += f;
  forces[static_cast<std::size_t>(j)] -= f;
  return e;
}

// Torsion angle and its gradient (Blondel & Karplus formulation). Used by
// both proper dihedrals and CHARMM-style impropers.
struct TorsionGeometry {
  double phi;
  Vec3 dphi_dri, dphi_drj, dphi_drk, dphi_drl;
};

TorsionGeometry torsion(const Box& box, const std::vector<Vec3>& pos, int i,
                        int j, int k, int l) {
  const Vec3 b1 = box.min_image(pos[static_cast<std::size_t>(j)] -
                                pos[static_cast<std::size_t>(i)]);
  const Vec3 b2 = box.min_image(pos[static_cast<std::size_t>(k)] -
                                pos[static_cast<std::size_t>(j)]);
  const Vec3 b3 = box.min_image(pos[static_cast<std::size_t>(l)] -
                                pos[static_cast<std::size_t>(k)]);
  const Vec3 m = util::cross(b1, b2);
  const Vec3 n = util::cross(b2, b3);
  const double b2len = util::norm(b2);
  const double msq = util::norm2(m);
  const double nsq = util::norm2(n);

  TorsionGeometry g;
  g.phi = std::atan2(util::dot(util::cross(m, n), b2) / b2len,
                     util::dot(m, n));
  g.dphi_dri = m * (-b2len / msq);
  g.dphi_drl = n * (b2len / nsq);
  const double t1 = util::dot(b1, b2) / (b2len * b2len);
  const double t2 = util::dot(b3, b2) / (b2len * b2len);
  g.dphi_drj = g.dphi_dri * (-(1.0 + t1)) + g.dphi_drl * t2;
  g.dphi_drk = g.dphi_dri * t1 - g.dphi_drl * (1.0 + t2);
  return g;
}

void apply_torsion_force(std::vector<Vec3>& forces,
                         const TorsionGeometry& g, int i, int j, int k,
                         int l, double dEdphi) {
  forces[static_cast<std::size_t>(i)] -= g.dphi_dri * dEdphi;
  forces[static_cast<std::size_t>(j)] -= g.dphi_drj * dEdphi;
  forces[static_cast<std::size_t>(k)] -= g.dphi_drk * dEdphi;
  forces[static_cast<std::size_t>(l)] -= g.dphi_drl * dEdphi;
}

}  // namespace

BondedWork bonded_energy(const Topology& topo, const Box& box,
                         const std::vector<Vec3>& pos,
                         std::vector<Vec3>& forces, EnergyTerms& energy,
                         int shard, int stride) {
  REPRO_REQUIRE(stride >= 1 && shard >= 0 && shard < stride,
                "bad shard/stride");

  const bool memo = bonded_memo_enabled();
  std::uint64_t hash = 0;
  if (memo) {
    hash = util::hash_combine(
        pos.empty() ? 0
                    : util::fnv1a_bytes(pos.data(), pos.size() * sizeof(Vec3)),
        forces.empty() ? 0
                       : util::fnv1a_bytes(forces.data(),
                                           forces.size() * sizeof(Vec3)));
    std::shared_ptr<const BondedMemoEntry> found;
    {
      std::lock_guard<std::mutex> lock(bonded_memo_mu);
      for (const auto& e : bonded_memo()) {
        if (e->shard == shard && e->stride == stride && e->hash == hash &&
            e->box_len == box.lengths() &&
            e->energy_in[0] == energy.bond &&
            e->energy_in[1] == energy.angle &&
            e->energy_in[2] == energy.dihedral &&
            e->energy_in[3] == energy.improper && same_bytes(e->pos, pos) &&
            same_bytes(e->forces_in, forces) &&
            same_bytes(e->bonds, topo.bonds()) &&
            same_bytes(e->angles, topo.angles()) &&
            same_bytes(e->dihedrals, topo.dihedrals()) &&
            same_bytes(e->impropers, topo.impropers())) {
          found = e;
          break;
        }
      }
    }
    if (found) {
      forces = found->forces_out;
      energy.bond = found->energy_out[0];
      energy.angle = found->energy_out[1];
      energy.dihedral = found->energy_out[2];
      energy.improper = found->energy_out[3];
      return found->work;
    }
  }
  // Snapshot the accumulators so a future repeat of this exact call can be
  // answered from the cache.
  std::shared_ptr<BondedMemoEntry> entry;
  if (memo) {
    entry = std::make_shared<BondedMemoEntry>();
    entry->shard = shard;
    entry->stride = stride;
    entry->box_len = box.lengths();
    entry->hash = hash;
    entry->bonds = topo.bonds();
    entry->angles = topo.angles();
    entry->dihedrals = topo.dihedrals();
    entry->impropers = topo.impropers();
    entry->pos = pos;
    entry->forces_in = forces;
    entry->energy_in[0] = energy.bond;
    entry->energy_in[1] = energy.angle;
    entry->energy_in[2] = energy.dihedral;
    entry->energy_in[3] = energy.improper;
  }

  BondedWork work;

  const auto& bonds = topo.bonds();
  for (std::size_t t = static_cast<std::size_t>(shard); t < bonds.size();
       t += static_cast<std::size_t>(stride)) {
    const Bond& b = bonds[t];
    energy.bond += harmonic_pair(box, pos, forces, b.i, b.j, b.kb, b.b0);
    ++work.bonds;
  }

  const auto& angles = topo.angles();
  for (std::size_t t = static_cast<std::size_t>(shard); t < angles.size();
       t += static_cast<std::size_t>(stride)) {
    const Angle& a = angles[t];
    const Vec3 rij = box.min_image(pos[static_cast<std::size_t>(a.i)] -
                                   pos[static_cast<std::size_t>(a.j)]);
    const Vec3 rkj = box.min_image(pos[static_cast<std::size_t>(a.k)] -
                                   pos[static_cast<std::size_t>(a.j)]);
    const double ri_len = util::norm(rij);
    const double rk_len = util::norm(rkj);
    double c = util::dot(rij, rkj) / (ri_len * rk_len);
    c = std::clamp(c, -1.0, 1.0);
    const double s = std::sqrt(std::max(1.0 - c * c, 1e-12));
    const double theta = std::acos(c);
    const double dt = theta - a.theta0;
    energy.angle += a.ktheta * dt * dt;
    const double dEdtheta = 2.0 * a.ktheta * dt;
    const Vec3 ui = rij * (1.0 / ri_len);
    const Vec3 uk = rkj * (1.0 / rk_len);
    const Vec3 fi = (uk - ui * c) * (dEdtheta / (s * ri_len));
    const Vec3 fk = (ui - uk * c) * (dEdtheta / (s * rk_len));
    forces[static_cast<std::size_t>(a.i)] += fi;
    forces[static_cast<std::size_t>(a.k)] += fk;
    forces[static_cast<std::size_t>(a.j)] -= fi + fk;
    if (a.kub > 0.0) {
      energy.angle +=
          harmonic_pair(box, pos, forces, a.i, a.k, a.kub, a.s0);
    }
    ++work.angles;
  }

  const auto& dihedrals = topo.dihedrals();
  for (std::size_t t = static_cast<std::size_t>(shard);
       t < dihedrals.size(); t += static_cast<std::size_t>(stride)) {
    const Dihedral& d = dihedrals[t];
    const TorsionGeometry g = torsion(box, pos, d.i, d.j, d.k, d.l);
    const double arg = d.n * g.phi - d.delta;
    energy.dihedral += d.kchi * (1.0 + std::cos(arg));
    const double dEdphi = -d.kchi * d.n * std::sin(arg);
    apply_torsion_force(forces, g, d.i, d.j, d.k, d.l, dEdphi);
    ++work.dihedrals;
  }

  const auto& impropers = topo.impropers();
  for (std::size_t t = static_cast<std::size_t>(shard);
       t < impropers.size(); t += static_cast<std::size_t>(stride)) {
    const Improper& im = impropers[t];
    const TorsionGeometry g = torsion(box, pos, im.i, im.j, im.k, im.l);
    const double dpsi = wrap_angle(g.phi - im.psi0);
    energy.improper += im.kpsi * dpsi * dpsi;
    const double dEdphi = 2.0 * im.kpsi * dpsi;
    apply_torsion_force(forces, g, im.i, im.j, im.k, im.l, dEdphi);
    ++work.impropers;
  }

  if (memo) {
    entry->forces_out = forces;
    entry->energy_out[0] = energy.bond;
    entry->energy_out[1] = energy.angle;
    entry->energy_out[2] = energy.dihedral;
    entry->energy_out[3] = energy.improper;
    entry->work = work;
    std::lock_guard<std::mutex> lock(bonded_memo_mu);
    if (bonded_memo().size() >= kBondedMemoCap) bonded_memo().pop_front();
    bonded_memo().push_back(std::move(entry));
  }

  return work;
}

BondedWork bonded_energy_owned(const Topology& topo, const Box& box,
                               const std::vector<Vec3>& pos,
                               const std::vector<std::uint8_t>& owned_mask,
                               std::vector<Vec3>& forces,
                               EnergyTerms& energy) {
  REPRO_REQUIRE(owned_mask.size() == pos.size(),
                "ownership mask size mismatch");
  auto owned = [&](int i) {
    return owned_mask[static_cast<std::size_t>(i)] != 0;
  };

  BondedWork work;

  for (const Bond& b : topo.bonds()) {
    if (!owned(b.i)) continue;
    energy.bond += harmonic_pair(box, pos, forces, b.i, b.j, b.kb, b.b0);
    ++work.bonds;
  }

  for (const Angle& a : topo.angles()) {
    if (!owned(a.i)) continue;
    const Vec3 rij = box.min_image(pos[static_cast<std::size_t>(a.i)] -
                                   pos[static_cast<std::size_t>(a.j)]);
    const Vec3 rkj = box.min_image(pos[static_cast<std::size_t>(a.k)] -
                                   pos[static_cast<std::size_t>(a.j)]);
    const double ri_len = util::norm(rij);
    const double rk_len = util::norm(rkj);
    double c = util::dot(rij, rkj) / (ri_len * rk_len);
    c = std::clamp(c, -1.0, 1.0);
    const double s = std::sqrt(std::max(1.0 - c * c, 1e-12));
    const double theta = std::acos(c);
    const double dt = theta - a.theta0;
    energy.angle += a.ktheta * dt * dt;
    const double dEdtheta = 2.0 * a.ktheta * dt;
    const Vec3 ui = rij * (1.0 / ri_len);
    const Vec3 uk = rkj * (1.0 / rk_len);
    const Vec3 fi = (uk - ui * c) * (dEdtheta / (s * ri_len));
    const Vec3 fk = (ui - uk * c) * (dEdtheta / (s * rk_len));
    forces[static_cast<std::size_t>(a.i)] += fi;
    forces[static_cast<std::size_t>(a.k)] += fk;
    forces[static_cast<std::size_t>(a.j)] -= fi + fk;
    if (a.kub > 0.0) {
      energy.angle += harmonic_pair(box, pos, forces, a.i, a.k, a.kub, a.s0);
    }
    ++work.angles;
  }

  for (const Dihedral& d : topo.dihedrals()) {
    if (!owned(d.i)) continue;
    const TorsionGeometry g = torsion(box, pos, d.i, d.j, d.k, d.l);
    const double arg = d.n * g.phi - d.delta;
    energy.dihedral += d.kchi * (1.0 + std::cos(arg));
    const double dEdphi = -d.kchi * d.n * std::sin(arg);
    apply_torsion_force(forces, g, d.i, d.j, d.k, d.l, dEdphi);
    ++work.dihedrals;
  }

  for (const Improper& im : topo.impropers()) {
    if (!owned(im.i)) continue;
    const TorsionGeometry g = torsion(box, pos, im.i, im.j, im.k, im.l);
    const double dpsi = wrap_angle(g.phi - im.psi0);
    energy.improper += im.kpsi * dpsi * dpsi;
    const double dEdphi = 2.0 * im.kpsi * dpsi;
    apply_torsion_force(forces, g, im.i, im.j, im.k, im.l, dEdphi);
    ++work.impropers;
  }

  return work;
}

}  // namespace repro::md
