#include "md/constraints.hpp"

#include <cmath>

#include "util/error.hpp"

namespace repro::md {

Shake::Shake(std::vector<Constraint> constraints, const ShakeOptions& opts)
    : constraints_(std::move(constraints)), opts_(opts) {
  for (const Constraint& c : constraints_) {
    REPRO_REQUIRE(c.i != c.j, "constraint connects an atom to itself");
    REPRO_REQUIRE(c.length > 0.0, "constraint length must be positive");
  }
}

Shake Shake::hydrogen_bonds(const Topology& topo, const ShakeOptions& opts) {
  std::vector<Constraint> constraints;
  for (const Bond& b : topo.bonds()) {
    const bool has_h =
        topo.atom(b.i).mass < 2.0 || topo.atom(b.j).mass < 2.0;
    if (has_h) {
      constraints.push_back(Constraint{b.i, b.j, b.b0});
    }
  }
  return Shake(std::move(constraints), opts);
}

Shake Shake::rigid_waters(const Topology& topo, const ShakeOptions& opts) {
  Shake shake = hydrogen_bonds(topo, opts);
  // Adjacency restricted to what is needed to recognize waters.
  const auto n = static_cast<std::size_t>(topo.natoms());
  std::vector<std::vector<int>> adj(n);
  for (const Bond& b : topo.bonds()) {
    adj[static_cast<std::size_t>(b.i)].push_back(b.j);
    adj[static_cast<std::size_t>(b.j)].push_back(b.i);
  }
  auto bond_length = [&](int i, int j) -> double {
    for (const Bond& b : topo.bonds()) {
      if ((b.i == i && b.j == j) || (b.i == j && b.j == i)) return b.b0;
    }
    REPRO_UNREACHABLE("water O-H bond not found");
  };
  for (int o = 0; o < topo.natoms(); ++o) {
    const auto& nb = adj[static_cast<std::size_t>(o)];
    if (topo.atom(o).mass < 10.0 || nb.size() != 2) continue;
    const int h1 = nb[0];
    const int h2 = nb[1];
    if (topo.atom(h1).mass >= 2.0 || topo.atom(h2).mass >= 2.0) continue;
    if (adj[static_cast<std::size_t>(h1)].size() != 1 ||
        adj[static_cast<std::size_t>(h2)].size() != 1) {
      continue;
    }
    // H-H distance from the angle term via the law of cosines.
    double theta0 = -1.0;
    for (const Angle& a : topo.angles()) {
      if (a.j == o && ((a.i == h1 && a.k == h2) ||
                       (a.i == h2 && a.k == h1))) {
        theta0 = a.theta0;
        break;
      }
    }
    if (theta0 < 0.0) continue;  // no angle term: leave flexible
    const double b1 = bond_length(o, h1);
    const double b2 = bond_length(o, h2);
    const double hh = std::sqrt(b1 * b1 + b2 * b2 -
                                2.0 * b1 * b2 * std::cos(theta0));
    shake.constraints_.push_back(Constraint{h1, h2, hh});
  }
  return shake;
}

int Shake::apply_positions(const Topology& topo, const Box& box,
                           const std::vector<util::Vec3>& ref,
                           std::vector<util::Vec3>& pos,
                           std::vector<util::Vec3>* vel, double dt) const {
  if (constraints_.empty()) return 0;
  const double inv_dt = dt > 0.0 ? 1.0 / dt : 0.0;
  for (int iter = 1; iter <= opts_.max_iterations; ++iter) {
    bool converged = true;
    for (const Constraint& c : constraints_) {
      const auto i = static_cast<std::size_t>(c.i);
      const auto j = static_cast<std::size_t>(c.j);
      const util::Vec3 r = box.min_image(pos[i] - pos[j]);
      const double d2 = c.length * c.length;
      const double diff = util::norm2(r) - d2;
      if (std::abs(diff) <= opts_.tolerance * d2) continue;
      converged = false;
      // Standard SHAKE update: correct along the *reference* bond vector,
      // with mass weighting so momentum is conserved.
      const util::Vec3 s = box.min_image(ref[i] - ref[j]);
      const double inv_mi = 1.0 / topo.atom(c.i).mass;
      const double inv_mj = 1.0 / topo.atom(c.j).mass;
      const double denom = 2.0 * (inv_mi + inv_mj) * util::dot(s, r);
      // Degenerate geometry (bond rotated ~90 degrees in one step) cannot
      // be corrected along s; fall back to the current direction.
      const util::Vec3 dir = std::abs(denom) > 1e-12 * d2 ? s : r;
      const double g =
          diff / (2.0 * (inv_mi + inv_mj) * util::dot(dir, r));
      const util::Vec3 correction = dir * g;
      pos[i] -= correction * inv_mi;
      pos[j] += correction * inv_mj;
      if (vel != nullptr) {
        (*vel)[i] -= correction * (inv_mi * inv_dt);
        (*vel)[j] += correction * (inv_mj * inv_dt);
      }
    }
    if (converged) return iter;
  }
  throw util::Error("SHAKE failed to converge within max_iterations");
}

int Shake::apply_velocities(const Topology& topo, const Box& box,
                            const std::vector<util::Vec3>& pos,
                            std::vector<util::Vec3>& vel) const {
  if (constraints_.empty()) return 0;
  for (int iter = 1; iter <= opts_.max_iterations; ++iter) {
    bool converged = true;
    for (const Constraint& c : constraints_) {
      const auto i = static_cast<std::size_t>(c.i);
      const auto j = static_cast<std::size_t>(c.j);
      const util::Vec3 r = box.min_image(pos[i] - pos[j]);
      const util::Vec3 v = vel[i] - vel[j];
      const double rv = util::dot(r, v);
      const double d2 = util::norm2(r);
      if (std::abs(rv) <= opts_.tolerance * d2 * 10.0) continue;
      converged = false;
      const double inv_mi = 1.0 / topo.atom(c.i).mass;
      const double inv_mj = 1.0 / topo.atom(c.j).mass;
      const double k = rv / (d2 * (inv_mi + inv_mj));
      vel[i] -= r * (k * inv_mi);
      vel[j] += r * (k * inv_mj);
    }
    if (converged) return iter;
  }
  throw util::Error("RATTLE velocity stage failed to converge");
}

double Shake::max_violation(const Box& box,
                            const std::vector<util::Vec3>& pos) const {
  double worst = 0.0;
  for (const Constraint& c : constraints_) {
    const util::Vec3 r =
        box.min_image(pos[static_cast<std::size_t>(c.i)] -
                      pos[static_cast<std::size_t>(c.j)]);
    const double d2 = c.length * c.length;
    worst = std::max(worst, std::abs(util::norm2(r) - d2) / d2);
  }
  return worst;
}

}  // namespace repro::md
