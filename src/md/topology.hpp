// Molecular topology: per-atom parameters, bonded terms, exclusions.
//
// The functional forms follow the CHARMM all-atom force field:
//   bonds      E = Kb (b - b0)^2
//   angles     E = Ktheta (theta - theta0)^2   [+ Urey-Bradley 1-3 term]
//   dihedrals  E = Kchi (1 + cos(n chi - delta))
//   impropers  E = Kpsi (psi - psi0)^2
//   LJ         E = eps [ (Rmin/r)^12 - 2 (Rmin/r)^6 ]  (Emin/Rmin form)
//   Coulomb    E = kCoulomb qi qj / r  (modified by the chosen method)
//
// Non-bonded exclusions follow CHARMM's NBXMOD convention: NBXMOD 2
// excludes 1-2 pairs, NBXMOD 3 (our default) also excludes 1-3 pairs, and
// NBXMOD 4 additionally excludes 1-4 pairs. (CHARMM's NBXMOD 5 — special
// 1-4 parameters — is approximated by NBXMOD 3 with full 1-4 parameters, a
// simplification that does not affect the workload shape; see DESIGN.md.)
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace repro::md {

struct AtomParams {
  double mass = 1.0;       // amu
  double charge = 0.0;     // e
  double eps = 0.0;        // kcal/mol (positive well depth)
  double rmin_half = 0.0;  // Å (Rmin/2 of the CHARMM LJ form)
};

struct Bond {
  int i = 0, j = 0;
  double kb = 0.0;  // kcal/mol/Å^2
  double b0 = 0.0;  // Å
};

struct Angle {
  int i = 0, j = 0, k = 0;  // j is the vertex
  double ktheta = 0.0;      // kcal/mol/rad^2
  double theta0 = 0.0;      // rad
  double kub = 0.0;         // Urey-Bradley (0 => none), kcal/mol/Å^2
  double s0 = 0.0;          // Urey-Bradley 1-3 distance, Å
};

struct Dihedral {
  int i = 0, j = 0, k = 0, l = 0;
  double kchi = 0.0;   // kcal/mol
  int n = 1;           // multiplicity
  double delta = 0.0;  // phase, rad
};

struct Improper {
  int i = 0, j = 0, k = 0, l = 0;
  double kpsi = 0.0;  // kcal/mol/rad^2
  double psi0 = 0.0;  // rad
};

// CHARMM NBXMOD levels (see the header comment).
enum class ExclusionPolicy {
  kBonds = 2,          // exclude 1-2
  kBondsAngles = 3,    // exclude 1-2 and 1-3 (default)
  kBondsAnglesDihedrals = 4,  // exclude 1-2, 1-3 and 1-4
};

class Topology {
 public:
  explicit Topology(int natoms) : atoms_(static_cast<std::size_t>(natoms)) {}

  int natoms() const { return static_cast<int>(atoms_.size()); }

  AtomParams& atom(int i) { return atoms_[static_cast<std::size_t>(i)]; }
  const AtomParams& atom(int i) const {
    return atoms_[static_cast<std::size_t>(i)];
  }

  std::vector<Bond>& bonds() { return bonds_; }
  const std::vector<Bond>& bonds() const { return bonds_; }
  std::vector<Angle>& angles() { return angles_; }
  const std::vector<Angle>& angles() const { return angles_; }
  std::vector<Dihedral>& dihedrals() { return dihedrals_; }
  const std::vector<Dihedral>& dihedrals() const { return dihedrals_; }
  std::vector<Improper>& impropers() { return impropers_; }
  const std::vector<Improper>& impropers() const { return impropers_; }

  // Derives the exclusion lists from the bond graph per the policy. Must
  // be called after all bonds are added (and again if bonds change).
  void build_exclusions(
      ExclusionPolicy policy = ExclusionPolicy::kBondsAngles);

  // True when the (unordered) pair i,j is excluded from non-bonded
  // interactions. Valid after build_exclusions().
  bool excluded(int i, int j) const;

  // Sorted exclusion partners of atom i (both directions).
  const std::vector<int>& exclusions_of(int i) const {
    return exclusions_[static_cast<std::size_t>(i)];
  }

  // All excluded pairs with i < j (for Ewald exclusion corrections).
  const std::vector<std::pair<int, int>>& excluded_pairs() const {
    return excluded_pairs_;
  }

  double total_charge() const;
  double total_mass() const;

 private:
  std::vector<AtomParams> atoms_;
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
  std::vector<Dihedral> dihedrals_;
  std::vector<Improper> impropers_;
  std::vector<std::vector<int>> exclusions_;
  std::vector<std::pair<int, int>> excluded_pairs_;
};

}  // namespace repro::md
