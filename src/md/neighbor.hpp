// Verlet pair list built with a cell grid under periodic boundaries.
//
// Pairs (i < j) within cutoff + skin, with excluded pairs removed, stored
// in CSR form. The list is valid until some atom moves more than skin/2
// from its position at build time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::md {

class NeighborList {
 public:
  NeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {
    REPRO_REQUIRE(cutoff > 0.0 && skin >= 0.0, "bad neighbor-list radii");
  }

  void build(const Topology& topo, const Box& box,
             const std::vector<util::Vec3>& pos);

  // Spatial-decomposition build: the same CSR list restricted to a rank's
  // atoms. Only atoms in `candidates` (a rank's owned + ghost set) are
  // binned, and a pair (i < j) is kept iff row_mask[i] is set — so the
  // union over ranks of disjoint row masks reproduces build()'s exact
  // pair set when every candidate list covers the mask's range
  // neighborhood. Entries of `pos` outside `candidates` are never read.
  // Offsets still span all natoms rows (non-candidate rows are empty), so
  // the nonbonded kernels run unchanged. Bypasses the build cache: the
  // inputs are rank-local, never shared.
  void build_subset(const Topology& topo, const Box& box,
                    const std::vector<util::Vec3>& pos,
                    const std::vector<int>& candidates,
                    const std::vector<std::uint8_t>& row_mask);

  bool needs_rebuild(const Box& box,
                     const std::vector<util::Vec3>& pos) const;

  // CSR access: neighbors of atom i are neighbors()[offsets()[i] ..
  // offsets()[i+1]).
  const std::vector<std::size_t>& offsets() const { return *offsets_view_; }
  const std::vector<int>& neighbors() const { return *neighbors_view_; }
  std::size_t npairs() const { return neighbors_view_->size(); }

  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }

  // The views may point into a shared build-cache entry (see build()'s
  // memoization in neighbor.cpp), so copying a list would alias or dangle.
  NeighborList(const NeighborList&) = delete;
  NeighborList& operator=(const NeighborList&) = delete;

 private:
  double cutoff_;
  double skin_;
  std::vector<std::size_t> offsets_;
  std::vector<int> neighbors_;
  std::vector<util::Vec3> built_pos_;
  Box built_box_;

  // After a cache hit the list borrows the entry's arrays instead of
  // copying ~MBs of CSR data; the keepalive pins the entry while views
  // point at it. After a fresh build the views point at the members above.
  std::shared_ptr<const void> cache_keepalive_;
  const std::vector<std::size_t>* offsets_view_ = &offsets_;
  const std::vector<int>* neighbors_view_ = &neighbors_;
  const std::vector<util::Vec3>* built_pos_view_ = &built_pos_;

  // Persistent build scratch. build() is called every few steps on the
  // hot path; keeping these as members means a rebuild allocates nothing
  // once capacities have warmed up (contents are meaningless between
  // calls). Pairs are collected flat and counting-sorted into the CSR
  // arrays in a second pass — no per-atom vectors.
  std::vector<int> atom_cell_;
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> cell_cursor_;
  std::vector<int> cell_atoms_;
  std::vector<std::pair<int, int>> pair_buf_;
  std::vector<std::size_t> row_cursor_;
};

}  // namespace repro::md
