// Verlet pair list built with a cell grid under periodic boundaries.
//
// Pairs (i < j) within cutoff + skin, with excluded pairs removed, stored
// in CSR form. The list is valid until some atom moves more than skin/2
// from its position at build time.
#pragma once

#include <cstddef>
#include <vector>

#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::md {

class NeighborList {
 public:
  NeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {
    REPRO_REQUIRE(cutoff > 0.0 && skin >= 0.0, "bad neighbor-list radii");
  }

  void build(const Topology& topo, const Box& box,
             const std::vector<util::Vec3>& pos);

  bool needs_rebuild(const Box& box,
                     const std::vector<util::Vec3>& pos) const;

  // CSR access: neighbors of atom i are neighbors()[offsets()[i] ..
  // offsets()[i+1]).
  const std::vector<std::size_t>& offsets() const { return offsets_; }
  const std::vector<int>& neighbors() const { return neighbors_; }
  std::size_t npairs() const { return neighbors_.size(); }

  double cutoff() const { return cutoff_; }
  double skin() const { return skin_; }

 private:
  double cutoff_;
  double skin_;
  std::vector<std::size_t> offsets_;
  std::vector<int> neighbors_;
  std::vector<util::Vec3> built_pos_;
  Box built_box_;
};

}  // namespace repro::md
