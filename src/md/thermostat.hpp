// Temperature control for equilibration runs.
//
// Two classic schemes:
//  - Berendsen weak coupling: velocities rescaled toward the target each
//    step with time constant tau (smooth, not canonical).
//  - Langevin (BBK-style): friction + deterministic-seeded random kicks
//    (canonical sampling; used by CHARMM's LANG dynamics).
#pragma once

#include <cstdint>

#include "md/topology.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace repro::md {

class BerendsenThermostat {
 public:
  BerendsenThermostat(double target_k, double tau_ps)
      : target_k_(target_k), tau_ps_(tau_ps) {
    REPRO_REQUIRE(target_k > 0.0 && tau_ps > 0.0,
                  "thermostat needs positive target and tau");
  }

  // Rescales velocities in place; `dof` is the number of kinetic degrees
  // of freedom (3N minus constraints/COM removal). Returns the scaling
  // factor applied.
  double apply(const Topology& topo, double dt_ps, int dof,
               std::vector<util::Vec3>& vel) const;

  double target() const { return target_k_; }

 private:
  double target_k_;
  double tau_ps_;
};

class LangevinThermostat {
 public:
  LangevinThermostat(double target_k, double friction_per_ps,
                     std::uint64_t seed)
      : target_k_(target_k),
        gamma_(friction_per_ps),
        rng_(util::mix_seed(seed, 0x6c616e67)) {
    REPRO_REQUIRE(target_k > 0.0 && friction_per_ps > 0.0,
                  "Langevin thermostat needs positive target and friction");
  }

  // One BBK-style half-kick: v <- v(1 - gamma dt/2) + random kick. Call
  // once per step after the deterministic velocity update.
  void apply(const Topology& topo, double dt_ps,
             std::vector<util::Vec3>& vel);

  double target() const { return target_k_; }

 private:
  double target_k_;
  double gamma_;
  util::Rng rng_;
};

}  // namespace repro::md
