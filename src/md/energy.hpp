// Energy bookkeeping for one force/energy evaluation.
#pragma once

#include <array>
#include <cstddef>

namespace repro::md {

struct EnergyTerms {
  double bond = 0.0;
  double angle = 0.0;       // includes Urey-Bradley
  double dihedral = 0.0;
  double improper = 0.0;
  double lj = 0.0;
  double elec = 0.0;        // real-space electrostatics (shifted or erfc)
  double ewald_recip = 0.0;
  double ewald_self = 0.0;
  double ewald_excl = 0.0;  // correction for excluded pairs

  double bonded() const { return bond + angle + dihedral + improper; }
  double electrostatic() const {
    return elec + ewald_recip + ewald_self + ewald_excl;
  }
  double potential() const { return bonded() + lj + electrostatic(); }

  // Flat view for global reductions. Order must match from_array().
  static constexpr std::size_t kCount = 9;
  std::array<double, kCount> to_array() const {
    return {bond,        angle,      dihedral,   improper,  lj,
            elec,        ewald_recip, ewald_self, ewald_excl};
  }
  static EnergyTerms from_array(const std::array<double, kCount>& a) {
    EnergyTerms e;
    e.bond = a[0];
    e.angle = a[1];
    e.dihedral = a[2];
    e.improper = a[3];
    e.lj = a[4];
    e.elec = a[5];
    e.ewald_recip = a[6];
    e.ewald_self = a[7];
    e.ewald_excl = a[8];
    return e;
  }
  EnergyTerms& operator+=(const EnergyTerms& o) {
    bond += o.bond;
    angle += o.angle;
    dihedral += o.dihedral;
    improper += o.improper;
    lj += o.lj;
    elec += o.elec;
    ewald_recip += o.ewald_recip;
    ewald_self += o.ewald_self;
    ewald_excl += o.ewald_excl;
    return *this;
  }
};

}  // namespace repro::md
