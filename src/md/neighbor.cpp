#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>

#include "util/hash.hpp"

namespace repro::md {

namespace {

struct CellGrid {
  int ncx, ncy, ncz;
  double lx, ly, lz;

  int cell_of(const util::Vec3& r) const {
    auto idx = [](double coord, double len, int n) {
      int c = static_cast<int>(std::floor(coord / len *
                                          static_cast<double>(n)));
      c %= n;
      if (c < 0) c += n;
      return c;
    };
    const int cx = idx(r.x, lx, ncx);
    const int cy = idx(r.y, ly, ncy);
    const int cz = idx(r.z, lz, ncz);
    return (cx * ncy + cy) * ncz + cz;
  }
};

// --- Build memoization -----------------------------------------------------
//
// The replicated-data decomposition has every simulated rank build the
// same list from the same coordinates, and a factorial sweep replays the
// same deterministic trajectory for every network/middleware cell — so
// almost every build() call in a sweep repeats an earlier one exactly. A
// small process-wide cache keyed by the full build inputs returns the
// stored CSR arrays instead of recomputing them. A hit requires the
// positions, box lengths, radii, and exclusion list to match
// byte-for-byte (the hash is only a cheap pre-filter), so the returned
// arrays are the exact arrays the plain build would have produced.
// Disable with REPRO_NBL_CACHE=0.
struct BuildCacheEntry {
  double cutoff;
  double skin;
  util::Vec3 box_len;
  std::uint64_t pos_hash;
  std::vector<util::Vec3> pos;
  std::vector<std::pair<int, int>> exclusions;
  std::vector<std::size_t> offsets;
  std::vector<int> neighbors;
};

constexpr std::size_t kBuildCacheCap = 12;  // FIFO; a 10-step run rebuilds
                                            // far fewer than 12 times

std::mutex build_cache_mu;  // SweepRunner workers build concurrently

std::deque<std::shared_ptr<const BuildCacheEntry>>& build_cache() {
  static std::deque<std::shared_ptr<const BuildCacheEntry>> cache;
  return cache;
}

bool build_cache_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("REPRO_NBL_CACHE");
    return env == nullptr || env[0] != '0';
  }();
  return on;
}

// Bitwise equality (stricter than operator== for doubles: distinguishes
// -0.0 from 0.0 and never equates NaNs away — misses stay conservative).
template <typename T>
bool same_bytes(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;  // data() may be null; memcmp on null is UB
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

}  // namespace

void NeighborList::build(const Topology& topo, const Box& box,
                         const std::vector<util::Vec3>& pos) {
  const int n = topo.natoms();
  REPRO_REQUIRE(static_cast<int>(pos.size()) == n,
                "position array size mismatch");
  const double range = cutoff_ + skin_;
  REPRO_REQUIRE(2.0 * range <= box.min_length() * 1.5,
                "cutoff too large for the box (minimum image unsafe)");
  const double range2 = range * range;
  const std::size_t un = static_cast<std::size_t>(n);

  const std::vector<std::pair<int, int>>& excl = topo.excluded_pairs();
  std::uint64_t pos_hash = 0;
  if (build_cache_enabled()) {
    pos_hash = pos.empty() ? 0
                           : util::fnv1a_bytes(
                                 pos.data(), pos.size() * sizeof(util::Vec3));
    std::lock_guard<std::mutex> lock(build_cache_mu);
    for (const auto& e : build_cache()) {
      if (e->cutoff == cutoff_ && e->skin == skin_ &&
          e->pos_hash == pos_hash && e->box_len == box.lengths() &&
          same_bytes(e->pos, pos) && same_bytes(e->exclusions, excl)) {
        // Borrow the entry's arrays (they are immutable and pinned by the
        // keepalive) rather than copying megabytes of CSR data per hit.
        offsets_view_ = &e->offsets;
        neighbors_view_ = &e->neighbors;
        built_pos_view_ = &e->pos;
        built_box_ = box;
        cache_keepalive_ = e;
        return;
      }
    }
  }

  const int ncx = std::max(1, static_cast<int>(box.lx() / range));
  const int ncy = std::max(1, static_cast<int>(box.ly() / range));
  const int ncz = std::max(1, static_cast<int>(box.lz() / range));

  // Pairs are appended flat and counting-sorted into CSR afterwards. The
  // final per-row sort makes the output independent of collection order,
  // so this produces the exact list the old per-atom-vector build did.
  pair_buf_.clear();
  auto consider = [&](int i, int j) {
    if (j <= i) std::swap(i, j);
    if (i == j) return;
    const util::Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                                       pos[static_cast<std::size_t>(j)]);
    if (util::norm2(d) >= range2) return;
    if (topo.excluded(i, j)) return;
    pair_buf_.emplace_back(i, j);
  };

  if (ncx < 3 || ncy < 3 || ncz < 3) {
    // Too few cells for a half-stencil sweep; quadratic fallback (used by
    // small test systems only).
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) consider(i, j);
    }
  } else {
    CellGrid grid{ncx, ncy, ncz, box.lx(), box.ly(), box.lz()};
    const std::size_t ncells = static_cast<std::size_t>(ncx * ncy * ncz);
    // Counting-sort atoms into CSR cell lists (pass 1: bin + count, pass
    // 2: scatter). Atoms land in each cell in ascending index order, same
    // as the old push_back binning.
    atom_cell_.resize(un);
    cell_start_.assign(ncells + 1, 0);
    for (std::size_t i = 0; i < un; ++i) {
      const int c = grid.cell_of(pos[i]);
      atom_cell_[i] = c;
      ++cell_start_[static_cast<std::size_t>(c) + 1];
    }
    for (std::size_t c = 0; c < ncells; ++c) {
      cell_start_[c + 1] += cell_start_[c];
    }
    cell_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
    cell_atoms_.resize(un);
    for (std::size_t i = 0; i < un; ++i) {
      cell_atoms_[cell_cursor_[static_cast<std::size_t>(atom_cell_[i])]++] =
          static_cast<int>(i);
    }
    // Half stencil: self cell plus 13 forward neighbor cells.
    static constexpr int kStencil[14][3] = {
        {0, 0, 0},  {1, 0, 0},   {0, 1, 0},  {0, 0, 1},  {1, 1, 0},
        {1, 0, 1},  {0, 1, 1},   {1, 1, 1},  {1, -1, 0}, {1, 0, -1},
        {0, 1, -1}, {1, -1, -1}, {1, -1, 1}, {1, 1, -1}};
    for (int cx = 0; cx < ncx; ++cx) {
      for (int cy = 0; cy < ncy; ++cy) {
        for (int cz = 0; cz < ncz; ++cz) {
          const std::size_t home = static_cast<std::size_t>(
              (cx * ncy + cy) * ncz + cz);
          const std::size_t h0 = cell_start_[home];
          const std::size_t h1 = cell_start_[home + 1];
          for (const auto& offs : kStencil) {
            const int ox = (cx + offs[0] + ncx) % ncx;
            const int oy = (cy + offs[1] + ncy) % ncy;
            const int oz = (cz + offs[2] + ncz) % ncz;
            const std::size_t other = static_cast<std::size_t>(
                (ox * ncy + oy) * ncz + oz);
            const std::size_t o0 = cell_start_[other];
            const std::size_t o1 = cell_start_[other + 1];
            const bool self = offs[0] == 0 && offs[1] == 0 && offs[2] == 0;
            for (std::size_t a = h0; a < h1; ++a) {
              const std::size_t b0 = self ? a + 1 : o0;
              for (std::size_t b = b0; b < o1; ++b) {
                consider(cell_atoms_[a], cell_atoms_[b]);
              }
            }
          }
        }
      }
    }
  }

  // Two-pass CSR: count per row, exclusive prefix sum, scatter, then sort
  // each row (ascending j, as before).
  offsets_.assign(un + 1, 0);
  for (const auto& [i, j] : pair_buf_) {
    ++offsets_[static_cast<std::size_t>(i) + 1];
  }
  for (std::size_t i = 0; i < un; ++i) offsets_[i + 1] += offsets_[i];
  neighbors_.resize(pair_buf_.size());
  row_cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [i, j] : pair_buf_) {
    neighbors_[row_cursor_[static_cast<std::size_t>(i)]++] = j;
  }
  for (std::size_t i = 0; i < un; ++i) {
    std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]),
              neighbors_.begin() +
                  static_cast<std::ptrdiff_t>(offsets_[i + 1]));
  }
  built_pos_ = pos;
  built_box_ = box;
  offsets_view_ = &offsets_;
  neighbors_view_ = &neighbors_;
  built_pos_view_ = &built_pos_;
  cache_keepalive_.reset();

  if (build_cache_enabled()) {
    auto entry = std::make_shared<BuildCacheEntry>();
    entry->cutoff = cutoff_;
    entry->skin = skin_;
    entry->box_len = box.lengths();
    entry->pos_hash = pos_hash;
    entry->pos = pos;
    entry->exclusions = excl;
    entry->offsets = offsets_;
    entry->neighbors = neighbors_;
    std::lock_guard<std::mutex> lock(build_cache_mu);
    if (build_cache().size() >= kBuildCacheCap) build_cache().pop_front();
    build_cache().push_back(std::move(entry));
  }
}

void NeighborList::build_subset(const Topology& topo, const Box& box,
                                const std::vector<util::Vec3>& pos,
                                const std::vector<int>& candidates,
                                const std::vector<std::uint8_t>& row_mask) {
  const int n = topo.natoms();
  REPRO_REQUIRE(static_cast<int>(pos.size()) == n &&
                    row_mask.size() == pos.size(),
                "position/mask array size mismatch");
  const double range = cutoff_ + skin_;
  REPRO_REQUIRE(2.0 * range <= box.min_length() * 1.5,
                "cutoff too large for the box (minimum image unsafe)");
  const double range2 = range * range;
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t nc = candidates.size();

  pair_buf_.clear();
  auto consider = [&](int i, int j) {
    if (j <= i) std::swap(i, j);
    if (i == j) return;
    if (!row_mask[static_cast<std::size_t>(i)]) return;
    const util::Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                                       pos[static_cast<std::size_t>(j)]);
    if (util::norm2(d) >= range2) return;
    if (topo.excluded(i, j)) return;
    pair_buf_.emplace_back(i, j);
  };

  const int ncx = std::max(1, static_cast<int>(box.lx() / range));
  const int ncy = std::max(1, static_cast<int>(box.ly() / range));
  const int ncz = std::max(1, static_cast<int>(box.lz() / range));

  if (ncx < 3 || ncy < 3 || ncz < 3) {
    for (std::size_t a = 0; a < nc; ++a) {
      for (std::size_t b = a + 1; b < nc; ++b) {
        consider(candidates[a], candidates[b]);
      }
    }
  } else {
    // Same half-stencil sweep as build(), binning only the candidates.
    CellGrid grid{ncx, ncy, ncz, box.lx(), box.ly(), box.lz()};
    const std::size_t ncells = static_cast<std::size_t>(ncx * ncy * ncz);
    atom_cell_.resize(nc);
    cell_start_.assign(ncells + 1, 0);
    for (std::size_t s = 0; s < nc; ++s) {
      const int c = grid.cell_of(
          pos[static_cast<std::size_t>(candidates[s])]);
      atom_cell_[s] = c;
      ++cell_start_[static_cast<std::size_t>(c) + 1];
    }
    for (std::size_t c = 0; c < ncells; ++c) {
      cell_start_[c + 1] += cell_start_[c];
    }
    cell_cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
    cell_atoms_.resize(nc);
    for (std::size_t s = 0; s < nc; ++s) {
      cell_atoms_[cell_cursor_[static_cast<std::size_t>(atom_cell_[s])]++] =
          candidates[s];
    }
    static constexpr int kStencil[14][3] = {
        {0, 0, 0},  {1, 0, 0},   {0, 1, 0},  {0, 0, 1},  {1, 1, 0},
        {1, 0, 1},  {0, 1, 1},   {1, 1, 1},  {1, -1, 0}, {1, 0, -1},
        {0, 1, -1}, {1, -1, -1}, {1, -1, 1}, {1, 1, -1}};
    for (int cx = 0; cx < ncx; ++cx) {
      for (int cy = 0; cy < ncy; ++cy) {
        for (int cz = 0; cz < ncz; ++cz) {
          const std::size_t home = static_cast<std::size_t>(
              (cx * ncy + cy) * ncz + cz);
          const std::size_t h0 = cell_start_[home];
          const std::size_t h1 = cell_start_[home + 1];
          if (h0 == h1) continue;
          for (const auto& offs : kStencil) {
            const int ox = (cx + offs[0] + ncx) % ncx;
            const int oy = (cy + offs[1] + ncy) % ncy;
            const int oz = (cz + offs[2] + ncz) % ncz;
            const std::size_t other = static_cast<std::size_t>(
                (ox * ncy + oy) * ncz + oz);
            const std::size_t o0 = cell_start_[other];
            const std::size_t o1 = cell_start_[other + 1];
            const bool self = offs[0] == 0 && offs[1] == 0 && offs[2] == 0;
            for (std::size_t a = h0; a < h1; ++a) {
              const std::size_t b0 = self ? a + 1 : o0;
              for (std::size_t b = b0; b < o1; ++b) {
                consider(cell_atoms_[a], cell_atoms_[b]);
              }
            }
          }
        }
      }
    }
  }

  offsets_.assign(un + 1, 0);
  for (const auto& [i, j] : pair_buf_) {
    ++offsets_[static_cast<std::size_t>(i) + 1];
  }
  for (std::size_t i = 0; i < un; ++i) offsets_[i + 1] += offsets_[i];
  neighbors_.resize(pair_buf_.size());
  row_cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [i, j] : pair_buf_) {
    neighbors_[row_cursor_[static_cast<std::size_t>(i)]++] = j;
  }
  for (std::size_t i = 0; i < un; ++i) {
    std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]),
              neighbors_.begin() +
                  static_cast<std::ptrdiff_t>(offsets_[i + 1]));
  }
  built_pos_ = pos;
  built_box_ = box;
  offsets_view_ = &offsets_;
  neighbors_view_ = &neighbors_;
  built_pos_view_ = &built_pos_;
  cache_keepalive_.reset();
}

bool NeighborList::needs_rebuild(const Box& box,
                                 const std::vector<util::Vec3>& pos) const {
  const std::vector<util::Vec3>& built = *built_pos_view_;
  if (built.size() != pos.size()) return true;
  if (box.lengths() != built_box_.lengths()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const util::Vec3 d = box.min_image(pos[i] - built[i]);
    if (util::norm2(d) > limit2) return true;
  }
  return false;
}

}  // namespace repro::md
