#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

namespace repro::md {

namespace {

struct CellGrid {
  int ncx, ncy, ncz;
  double lx, ly, lz;

  int cell_of(const util::Vec3& r) const {
    auto idx = [](double coord, double len, int n) {
      int c = static_cast<int>(std::floor(coord / len *
                                          static_cast<double>(n)));
      c %= n;
      if (c < 0) c += n;
      return c;
    };
    const int cx = idx(r.x, lx, ncx);
    const int cy = idx(r.y, ly, ncy);
    const int cz = idx(r.z, lz, ncz);
    return (cx * ncy + cy) * ncz + cz;
  }
};

}  // namespace

void NeighborList::build(const Topology& topo, const Box& box,
                         const std::vector<util::Vec3>& pos) {
  const int n = topo.natoms();
  REPRO_REQUIRE(static_cast<int>(pos.size()) == n,
                "position array size mismatch");
  const double range = cutoff_ + skin_;
  REPRO_REQUIRE(2.0 * range <= box.min_length() * 1.5,
                "cutoff too large for the box (minimum image unsafe)");
  const double range2 = range * range;

  std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));

  const int ncx = std::max(1, static_cast<int>(box.lx() / range));
  const int ncy = std::max(1, static_cast<int>(box.ly() / range));
  const int ncz = std::max(1, static_cast<int>(box.lz() / range));

  auto consider = [&](int i, int j) {
    if (j <= i) std::swap(i, j);
    if (i == j) return;
    const util::Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                                       pos[static_cast<std::size_t>(j)]);
    if (util::norm2(d) >= range2) return;
    if (topo.excluded(i, j)) return;
    lists[static_cast<std::size_t>(i)].push_back(j);
  };

  if (ncx < 3 || ncy < 3 || ncz < 3) {
    // Too few cells for a half-stencil sweep; quadratic fallback (used by
    // small test systems only).
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) consider(i, j);
    }
  } else {
    CellGrid grid{ncx, ncy, ncz, box.lx(), box.ly(), box.lz()};
    const int ncells = ncx * ncy * ncz;
    std::vector<std::vector<int>> cells(static_cast<std::size_t>(ncells));
    for (int i = 0; i < n; ++i) {
      cells[static_cast<std::size_t>(grid.cell_of(
                pos[static_cast<std::size_t>(i)]))]
          .push_back(i);
    }
    // Half stencil: self cell plus 13 forward neighbor cells.
    static constexpr int kStencil[14][3] = {
        {0, 0, 0},  {1, 0, 0},   {0, 1, 0},  {0, 0, 1},  {1, 1, 0},
        {1, 0, 1},  {0, 1, 1},   {1, 1, 1},  {1, -1, 0}, {1, 0, -1},
        {0, 1, -1}, {1, -1, -1}, {1, -1, 1}, {1, 1, -1}};
    for (int cx = 0; cx < ncx; ++cx) {
      for (int cy = 0; cy < ncy; ++cy) {
        for (int cz = 0; cz < ncz; ++cz) {
          const auto& home = cells[static_cast<std::size_t>(
              (cx * ncy + cy) * ncz + cz)];
          for (const auto& offs : kStencil) {
            const int ox = (cx + offs[0] + ncx) % ncx;
            const int oy = (cy + offs[1] + ncy) % ncy;
            const int oz = (cz + offs[2] + ncz) % ncz;
            const auto& other = cells[static_cast<std::size_t>(
                (ox * ncy + oy) * ncz + oz)];
            const bool self = offs[0] == 0 && offs[1] == 0 && offs[2] == 0;
            for (std::size_t a = 0; a < home.size(); ++a) {
              const std::size_t b0 = self ? a + 1 : 0;
              for (std::size_t b = b0; b < other.size(); ++b) {
                consider(home[a], other[b]);
              }
            }
          }
        }
      }
    }
  }

  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t total = 0;
  for (int i = 0; i < n; ++i) {
    std::sort(lists[static_cast<std::size_t>(i)].begin(),
              lists[static_cast<std::size_t>(i)].end());
    offsets_[static_cast<std::size_t>(i)] = total;
    total += lists[static_cast<std::size_t>(i)].size();
  }
  offsets_[static_cast<std::size_t>(n)] = total;
  neighbors_.clear();
  neighbors_.reserve(total);
  for (int i = 0; i < n; ++i) {
    neighbors_.insert(neighbors_.end(),
                      lists[static_cast<std::size_t>(i)].begin(),
                      lists[static_cast<std::size_t>(i)].end());
  }
  built_pos_ = pos;
  built_box_ = box;
}

bool NeighborList::needs_rebuild(const Box& box,
                                 const std::vector<util::Vec3>& pos) const {
  if (built_pos_.size() != pos.size()) return true;
  if (box.lengths() != built_box_.lengths()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const util::Vec3 d = box.min_image(pos[i] - built_pos_[i]);
    if (util::norm2(d) > limit2) return true;
  }
  return false;
}

}  // namespace repro::md
