// SHAKE/RATTLE holonomic bond constraints.
//
// CHARMM dynamics conventionally constrains bonds involving hydrogens
// (SHAKE), removing the fastest oscillations and allowing ~2 fs steps.
// This module implements the iterative SHAKE position correction and the
// RATTLE velocity projection for pairwise distance constraints.
#pragma once

#include <vector>

#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::md {

struct Constraint {
  int i = 0;
  int j = 0;
  double length = 1.0;  // Å
};

struct ShakeOptions {
  double tolerance = 1e-8;  // relative deviation |r^2 - d^2| / d^2
  int max_iterations = 200;
};

class Shake {
 public:
  Shake(std::vector<Constraint> constraints, const ShakeOptions& opts = {});

  // Convenience: constrain every bond that involves a hydrogen (mass < 2),
  // at the bond's equilibrium length — CHARMM's "SHAKE BONH".
  static Shake hydrogen_bonds(const Topology& topo,
                              const ShakeOptions& opts = {});

  // Like hydrogen_bonds, but water molecules (an O bonded to exactly two
  // hydrogens and nothing else) additionally get an H-H constraint derived
  // from their angle term — fully rigid TIP3P-style water, the CHARMM
  // convention for solvent.
  static Shake rigid_waters(const Topology& topo,
                            const ShakeOptions& opts = {});

  std::size_t size() const { return constraints_.size(); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  // SHAKE: iteratively corrects `pos` so every constraint holds, given the
  // pre-step reference positions `ref` (whose constraint vectors define
  // the correction directions). If `vel` is non-null the corresponding
  // velocity adjustment (delta_pos / dt) is applied. Returns the number of
  // iterations used; throws util::Error if it fails to converge.
  int apply_positions(const Topology& topo, const Box& box,
                      const std::vector<util::Vec3>& ref,
                      std::vector<util::Vec3>& pos,
                      std::vector<util::Vec3>* vel, double dt) const;

  // RATTLE second stage: removes velocity components along the constraint
  // directions so d/dt |r_ij|^2 = 0. Returns the iterations used.
  int apply_velocities(const Topology& topo, const Box& box,
                       const std::vector<util::Vec3>& pos,
                       std::vector<util::Vec3>& vel) const;

  // Largest relative constraint violation in `pos` (diagnostics/tests).
  double max_violation(const Box& box,
                       const std::vector<util::Vec3>& pos) const;

  // Number of degrees of freedom removed (for temperature computation).
  int removed_dof() const { return static_cast<int>(constraints_.size()); }

 private:
  std::vector<Constraint> constraints_;
  ShakeOptions opts_;
};

}  // namespace repro::md
