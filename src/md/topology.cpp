#include "md/topology.hpp"

#include <algorithm>
#include <set>

namespace repro::md {

void Topology::build_exclusions(ExclusionPolicy policy) {
  const auto n = static_cast<std::size_t>(natoms());
  std::vector<std::vector<int>> adj(n);
  for (const Bond& b : bonds_) {
    REPRO_REQUIRE(b.i != b.j, "bond connects an atom to itself");
    adj[static_cast<std::size_t>(b.i)].push_back(b.j);
    adj[static_cast<std::size_t>(b.j)].push_back(b.i);
  }

  std::vector<std::set<int>> excl(n);
  for (int i = 0; i < natoms(); ++i) {
    // 1-2 neighbors.
    for (int j : adj[static_cast<std::size_t>(i)]) {
      if (j != i) excl[static_cast<std::size_t>(i)].insert(j);
      if (policy == ExclusionPolicy::kBonds) continue;
      // 1-3 neighbors.
      for (int k : adj[static_cast<std::size_t>(j)]) {
        if (k != i) excl[static_cast<std::size_t>(i)].insert(k);
        if (policy != ExclusionPolicy::kBondsAnglesDihedrals) continue;
        // 1-4 neighbors.
        for (int l : adj[static_cast<std::size_t>(k)]) {
          if (l != i && l != j) excl[static_cast<std::size_t>(i)].insert(l);
        }
      }
    }
  }

  exclusions_.assign(n, {});
  excluded_pairs_.clear();
  for (int i = 0; i < natoms(); ++i) {
    auto& list = exclusions_[static_cast<std::size_t>(i)];
    list.assign(excl[static_cast<std::size_t>(i)].begin(),
                excl[static_cast<std::size_t>(i)].end());
    for (int j : list) {
      if (j > i) excluded_pairs_.emplace_back(i, j);
    }
  }
}

bool Topology::excluded(int i, int j) const {
  REPRO_REQUIRE(!exclusions_.empty(),
                "call build_exclusions() before querying exclusions");
  const auto& list = exclusions_[static_cast<std::size_t>(i)];
  return std::binary_search(list.begin(), list.end(), j);
}

double Topology::total_charge() const {
  double q = 0.0;
  for (const auto& a : atoms_) q += a.charge;
  return q;
}

double Topology::total_mass() const {
  double m = 0.0;
  for (const auto& a : atoms_) m += a.mass;
  return m;
}

}  // namespace repro::md
