// Velocity-Verlet integrator (the discretized Newton equations the paper's
// MD steps solve) and kinetic-energy/temperature helpers.
#pragma once

#include <vector>

#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::md {

class VelocityVerlet {
 public:
  explicit VelocityVerlet(double dt_ps) : dt_(dt_ps) {
    REPRO_REQUIRE(dt_ps > 0.0, "time step must be positive");
  }

  double dt() const { return dt_; }

  // First half-kick + drift: v += a dt/2; x += v dt.
  void begin_step(const Topology& topo, const std::vector<util::Vec3>& forces,
                  std::vector<util::Vec3>& pos,
                  std::vector<util::Vec3>& vel) const;
  // Second half-kick with the forces at the new positions.
  void end_step(const Topology& topo, const std::vector<util::Vec3>& forces,
                std::vector<util::Vec3>& vel) const;

 private:
  double dt_;
};

double kinetic_energy(const Topology& topo,
                      const std::vector<util::Vec3>& vel);

// Instantaneous temperature in K (3N degrees of freedom, no constraints).
double temperature(const Topology& topo, const std::vector<util::Vec3>& vel);

// Draws Maxwell-Boltzmann velocities at temperature T (deterministic seed)
// and removes the centre-of-mass drift.
void assign_velocities(const Topology& topo, double temperature_k,
                       std::uint64_t seed, std::vector<util::Vec3>& vel);

}  // namespace repro::md
