#include "md/trajectory.hpp"

#include <cstring>

#include "util/error.hpp"

namespace repro::md {

namespace {

constexpr char kMagic[8] = {'R', 'P', 'T', 'R', 'J', '1', 0, 0};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
}

}  // namespace

TrajectoryWriter::TrajectoryWriter(const std::string& path, int natoms,
                                   const Box& box, double dt_ps)
    : out_(path, std::ios::binary | std::ios::trunc), natoms_(natoms) {
  REPRO_REQUIRE(out_.good(), "cannot open trajectory file for writing");
  REPRO_REQUIRE(natoms > 0, "trajectory needs at least one atom");
  out_.write(kMagic, sizeof(kMagic));
  write_pod(out_, static_cast<std::uint64_t>(natoms));
  write_pod(out_, dt_ps);
  write_pod(out_, box.lx());
  write_pod(out_, box.ly());
  write_pod(out_, box.lz());
}

TrajectoryWriter::~TrajectoryWriter() = default;

void TrajectoryWriter::write_frame(const std::vector<util::Vec3>& pos) {
  REPRO_REQUIRE(static_cast<int>(pos.size()) == natoms_,
                "frame size does not match the trajectory's atom count");
  std::vector<float> buf;
  buf.reserve(pos.size() * 3);
  for (const auto& r : pos) {
    buf.push_back(static_cast<float>(r.x));
    buf.push_back(static_cast<float>(r.y));
    buf.push_back(static_cast<float>(r.z));
  }
  out_.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size() * sizeof(float)));
  REPRO_REQUIRE(out_.good(), "trajectory write failed");
  ++frames_;
}

void TrajectoryWriter::flush() { out_.flush(); }

TrajectoryReader::TrajectoryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  REPRO_REQUIRE(in_.good(), "cannot open trajectory file for reading");
  char magic[8];
  in_.read(magic, sizeof(magic));
  REPRO_REQUIRE(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a repro trajectory file");
  std::uint64_t natoms = 0;
  read_pod(in_, natoms);
  natoms_ = static_cast<int>(natoms);
  read_pod(in_, dt_ps_);
  double lx, ly, lz;
  read_pod(in_, lx);
  read_pod(in_, ly);
  read_pod(in_, lz);
  box_ = Box(lx, ly, lz);
  frame0_ = in_.tellg();
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  const std::streamoff frame_bytes =
      static_cast<std::streamoff>(natoms_) * 3 *
      static_cast<std::streamoff>(sizeof(float));
  REPRO_REQUIRE(frame_bytes > 0, "corrupt trajectory header");
  nframes_ = static_cast<int>((end - frame0_) / frame_bytes);
}

void TrajectoryReader::read_frame(int index, std::vector<util::Vec3>& pos) {
  REPRO_REQUIRE(index >= 0 && index < nframes_,
                "trajectory frame index out of range");
  const std::streamoff frame_bytes =
      static_cast<std::streamoff>(natoms_) * 3 *
      static_cast<std::streamoff>(sizeof(float));
  in_.clear();
  in_.seekg(frame0_ + index * frame_bytes);
  std::vector<float> buf(static_cast<std::size_t>(natoms_) * 3);
  in_.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(buf.size() * sizeof(float)));
  REPRO_REQUIRE(in_.good(), "trajectory read failed");
  pos.resize(static_cast<std::size_t>(natoms_));
  for (int i = 0; i < natoms_; ++i) {
    pos[static_cast<std::size_t>(i)] =
        util::Vec3{buf[static_cast<std::size_t>(3 * i)],
                   buf[static_cast<std::size_t>(3 * i + 1)],
                   buf[static_cast<std::size_t>(3 * i + 2)]};
  }
}

}  // namespace repro::md
