#include "md/minimize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace repro::md {

namespace {

double max_component(const std::vector<util::Vec3>& forces) {
  double m = 0.0;
  for (const auto& f : forces) {
    m = std::max({m, std::abs(f.x), std::abs(f.y), std::abs(f.z)});
  }
  return m;
}

}  // namespace

MinimizeResult minimize(const MinimizeOptions& opts,
                        const EnergyFunction& evaluate,
                        std::vector<util::Vec3>& pos) {
  REPRO_REQUIRE(opts.max_steps >= 0, "bad max_steps");
  MinimizeResult res;
  std::vector<util::Vec3> forces(pos.size());
  std::vector<util::Vec3> trial(pos.size());
  std::vector<util::Vec3> trial_forces(pos.size());

  double energy = evaluate(pos, forces);
  res.initial_energy = energy;
  double step = opts.initial_step;

  for (res.steps = 0; res.steps < opts.max_steps; ++res.steps) {
    const double fmax = max_component(forces);
    res.max_force = fmax;
    if (fmax < opts.force_tolerance) {
      res.converged = true;
      break;
    }
    // Displace along the force, capped so no atom moves more than `step`.
    const double scale = step / fmax;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      trial[i] = pos[i] + forces[i] * scale;
    }
    std::fill(trial_forces.begin(), trial_forces.end(), util::Vec3{});
    const double trial_energy = evaluate(trial, trial_forces);
    if (trial_energy < energy) {
      pos.swap(trial);
      forces.swap(trial_forces);
      energy = trial_energy;
      step = std::min(step * 1.2, opts.max_step);
    } else {
      step *= 0.5;
      if (step < 1e-8) break;  // stuck; accept the current structure
    }
  }
  res.final_energy = energy;
  return res;
}

}  // namespace repro::md
