#include "md/nonbonded.hpp"

#include <cmath>
#include <numbers>

#include "util/units.hpp"

namespace repro::md {

namespace {

using util::Vec3;

// One pair interaction: returns (lj_energy, elec_energy) and the scalar
// dE/dr so the caller can form the force. Split out so the listed and the
// reference kernels share the physics exactly.
struct PairResult {
  double lj = 0.0;
  double elec = 0.0;
  double dEdr = 0.0;  // total
};

PairResult pair_interaction(const AtomParams& a, const AtomParams& b,
                            double r, const NonbondedOptions& opts) {
  PairResult out;
  const double rc = opts.cutoff;
  const double ron = opts.switch_on;

  // Lennard-Jones (CHARMM combining rules) with energy switching.
  const double eps = std::sqrt(a.eps * b.eps);
  if (eps > 0.0) {
    const double rmin = a.rmin_half + b.rmin_half;
    // (rmin/r)^6 as a multiply chain on the squared ratio; far cheaper
    // than libm pow on the innermost pair loop.
    const double q = rmin / r;
    const double q2 = q * q;
    const double q6 = q2 * q2 * q2;
    const double q12 = q6 * q6;
    const double elj = eps * (q12 - 2.0 * q6);
    const double dlj = -12.0 * eps * (q12 - q6) / r;
    if (r <= ron) {
      out.lj = elj;
      out.dEdr = dlj;
    } else {
      const double A = rc * rc;
      const double B = ron * ron;
      const double D = (A - B) * (A - B) * (A - B);
      const double u = r * r;
      const double sw = (A - u) * (A - u) * (A + 2.0 * u - 3.0 * B) / D;
      const double dsw = 12.0 * r * (A - u) * (B - u) / D;
      out.lj = elj * sw;
      out.dEdr = dlj * sw + elj * dsw;
    }
  }

  // Electrostatics.
  const double qq = units::kCoulomb * a.charge * b.charge;
  if (qq != 0.0) {
    if (opts.elec == NonbondedOptions::Elec::kShift) {
      const double x = 1.0 - (r * r) / (rc * rc);
      out.elec = qq / r * x * x;
      out.dEdr += -qq / (r * r) * x * (1.0 + 3.0 * (r * r) / (rc * rc));
    } else {
      const double br = opts.beta * r;
      const double erfc_br = std::erfc(br);
      out.elec = qq * erfc_br / r;
      out.dEdr += -qq * (erfc_br / (r * r) +
                         2.0 * opts.beta / std::sqrt(std::numbers::pi) *
                             std::exp(-br * br) / r);
    }
  }
  return out;
}

void accumulate_pair(const Topology& topo, const Box& box,
                     const std::vector<Vec3>& pos,
                     const NonbondedOptions& opts, int i, int j,
                     std::vector<Vec3>& forces, NonbondedWork& work) {
  const Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                               pos[static_cast<std::size_t>(j)]);
  const double r2 = util::norm2(d);
  if (r2 >= opts.cutoff * opts.cutoff) return;
  const double r = std::sqrt(r2);
  const PairResult pr =
      pair_interaction(topo.atom(i), topo.atom(j), r, opts);
  work.lj += pr.lj;
  work.elec += pr.elec;
  ++work.pairs_in_cutoff;
  const Vec3 f = d * (-pr.dEdr / r);
  forces[static_cast<std::size_t>(i)] += f;
  forces[static_cast<std::size_t>(j)] -= f;
}

}  // namespace

NonbondedWork nonbonded_energy(const Topology& topo, const Box& box,
                               const std::vector<Vec3>& pos,
                               const NeighborList& nbl,
                               const NonbondedOptions& opts,
                               std::vector<Vec3>& forces,
                               EnergyTerms& energy, int shard, int stride) {
  REPRO_REQUIRE(stride >= 1 && shard >= 0 && shard < stride,
                "bad shard/stride");
  REPRO_REQUIRE(nbl.cutoff() >= opts.cutoff,
                "neighbor list built with a smaller cutoff");
  NonbondedWork work;
  const auto& offsets = nbl.offsets();
  const auto& neigh = nbl.neighbors();
  for (int i = shard; i < topo.natoms(); i += stride) {
    const std::size_t b = offsets[static_cast<std::size_t>(i)];
    const std::size_t e = offsets[static_cast<std::size_t>(i) + 1];
    for (std::size_t t = b; t < e; ++t) {
      accumulate_pair(topo, box, pos, opts, i, neigh[t], forces, work);
      ++work.pairs_listed;
    }
  }
  energy.lj += work.lj;
  energy.elec += work.elec;
  return work;
}

NonbondedWork nonbonded_energy_blocked(const Topology& topo, const Box& box,
                                       const std::vector<Vec3>& pos,
                                       const NeighborList& nbl,
                                       const NonbondedOptions& opts,
                                       const std::vector<int>& block,
                                       int owner, int nowners,
                                       std::vector<Vec3>& forces,
                                       EnergyTerms& energy) {
  REPRO_REQUIRE(nowners >= 1 && owner >= 0 && owner < nowners,
                "bad owner/nowners");
  REPRO_REQUIRE(block.size() == static_cast<std::size_t>(topo.natoms()),
                "block map must cover every atom");
  REPRO_REQUIRE(nbl.cutoff() >= opts.cutoff,
                "neighbor list built with a smaller cutoff");
  NonbondedWork work;
  const auto& offsets = nbl.offsets();
  const auto& neigh = nbl.neighbors();
  for (int i = 0; i < topo.natoms(); ++i) {
    const int bi = block[static_cast<std::size_t>(i)];
    const std::size_t b = offsets[static_cast<std::size_t>(i)];
    const std::size_t e = offsets[static_cast<std::size_t>(i) + 1];
    for (std::size_t t = b; t < e; ++t) {
      const int j = neigh[t];
      if ((bi + block[static_cast<std::size_t>(j)]) % nowners != owner) {
        continue;
      }
      accumulate_pair(topo, box, pos, opts, i, j, forces, work);
      ++work.pairs_listed;
    }
  }
  energy.lj += work.lj;
  energy.elec += work.elec;
  return work;
}

NonbondedWork nonbonded_energy_reference(const Topology& topo, const Box& box,
                                         const std::vector<Vec3>& pos,
                                         const NonbondedOptions& opts,
                                         std::vector<Vec3>& forces,
                                         EnergyTerms& energy) {
  NonbondedWork work;
  for (int i = 0; i < topo.natoms(); ++i) {
    for (int j = i + 1; j < topo.natoms(); ++j) {
      if (topo.excluded(i, j)) continue;
      accumulate_pair(topo, box, pos, opts, i, j, forces, work);
      ++work.pairs_listed;
    }
  }
  energy.lj += work.lj;
  energy.elec += work.elec;
  return work;
}

}  // namespace repro::md
