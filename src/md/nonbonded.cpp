#include "md/nonbonded.hpp"

#include <cmath>
#include <map>
#include <numbers>
#include <utility>

#include "util/units.hpp"

namespace repro::md {

namespace {

using util::Vec3;

// One pair interaction: returns (lj_energy, elec_energy) and the scalar
// dE/dr so the caller can form the force. Split out so the listed and the
// reference kernels share the physics exactly. eps/rmin are the mixed LJ
// parameters (sqrt(eps_i eps_j), rmin_half_i + rmin_half_j) and qq the
// Coulomb prefactor kCoulomb qi qj, all precomputed by the caller.
struct PairResult {
  double lj = 0.0;
  double elec = 0.0;
  double dEdr = 0.0;  // total
};

PairResult pair_interaction(double eps, double rmin, double qq, double r,
                            const NonbondedOptions& opts) {
  PairResult out;
  const double rc = opts.cutoff;
  const double ron = opts.switch_on;

  // Lennard-Jones (CHARMM combining rules) with energy switching.
  if (eps > 0.0) {
    // (rmin/r)^6 as a multiply chain on the squared ratio; far cheaper
    // than libm pow on the innermost pair loop.
    const double q = rmin / r;
    const double q2 = q * q;
    const double q6 = q2 * q2 * q2;
    const double q12 = q6 * q6;
    const double elj = eps * (q12 - 2.0 * q6);
    const double dlj = -12.0 * eps * (q12 - q6) / r;
    if (r <= ron) {
      out.lj = elj;
      out.dEdr = dlj;
    } else {
      const double A = rc * rc;
      const double B = ron * ron;
      const double D = (A - B) * (A - B) * (A - B);
      const double u = r * r;
      const double sw = (A - u) * (A - u) * (A + 2.0 * u - 3.0 * B) / D;
      const double dsw = 12.0 * r * (A - u) * (B - u) / D;
      out.lj = elj * sw;
      out.dEdr = dlj * sw + elj * dsw;
    }
  }

  // Electrostatics.
  if (qq != 0.0) {
    if (opts.elec == NonbondedOptions::Elec::kShift) {
      const double x = 1.0 - (r * r) / (rc * rc);
      out.elec = qq / r * x * x;
      out.dEdr += -qq / (r * r) * x * (1.0 + 3.0 * (r * r) / (rc * rc));
    } else {
      const double br = opts.beta * r;
      const double erfc_br = std::erfc(br);
      out.elec = qq * erfc_br / r;
      out.dEdr += -qq * (erfc_br / (r * r) +
                         2.0 * opts.beta / std::sqrt(std::numbers::pi) *
                             std::exp(-br * br) / r);
    }
  }
  return out;
}

void accumulate_pair(const PairTable& pt, const Box& box,
                     const std::vector<Vec3>& pos,
                     const NonbondedOptions& opts, int i, int j,
                     std::vector<Vec3>& forces, NonbondedWork& work) {
  const Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                               pos[static_cast<std::size_t>(j)]);
  const double r2 = util::norm2(d);
  if (r2 >= opts.cutoff * opts.cutoff) return;
  const double r = std::sqrt(r2);
  const std::size_t si = static_cast<std::size_t>(i);
  const std::size_t sj = static_cast<std::size_t>(j);
  const int ti = pt.type_of[si];
  const int tj = pt.type_of[sj];
  const std::size_t tij =
      static_cast<std::size_t>(ti) * static_cast<std::size_t>(pt.ntypes) +
      static_cast<std::size_t>(tj);
  const double qq = units::kCoulomb * pt.charge[si] * pt.charge[sj];
  const PairResult pr =
      pair_interaction(pt.eps[tij], pt.rmin[tij], qq, r, opts);
  work.lj += pr.lj;
  work.elec += pr.elec;
  ++work.pairs_in_cutoff;
  const Vec3 f = d * (-pr.dEdr / r);
  forces[si] += f;
  forces[sj] -= f;
}

// Resolves the mixing table: use the caller-provided one, or build a
// throwaway (cheap next to the pair loop, but per-step callers should set
// NonbondedOptions::table once at setup).
const PairTable* resolve_table(const NonbondedOptions& opts,
                               const Topology& topo,
                               std::shared_ptr<const PairTable>& hold) {
  if (opts.table) {
    REPRO_REQUIRE(opts.table->type_of.size() ==
                      static_cast<std::size_t>(topo.natoms()),
                  "pair table built for a different topology");
    return opts.table.get();
  }
  hold = build_pair_table(topo);
  return hold.get();
}

// ---------------------------------------------------------------------------
// SIMD variant.
//
// Structure per i-row: a scalar gather/compact pass walks the neighbor
// list, applies the minimum-image convention and the cutoff test, and
// packs surviving pairs into SoA lanes (displacement, r^2, mixed LJ
// parameters, partner charge). Once a chunk fills, a branch-free
// #pragma omp simd pass evaluates the physics for every lane, and a short
// scalar pass scatters forces and sums energies in fixed lane order (so
// the simd path is deterministic across reruns by construction).
//
// erfc(beta r) and exp(-(beta r)^2) — the libm calls that dominate the
// scalar Ewald-direct kernel — are replaced by cubic Hermite interpolation
// on 1/512-spaced tables over [0, 8] (absolute error ~1e-13, well inside
// the 1e-10 invariance tolerance).

constexpr int kChunk = 128;

constexpr double kTabMax = 8.0;
constexpr int kTabN = 4096;  // intervals; node spacing 1/512
constexpr double kTabH = kTabMax / kTabN;

struct ErfcTable {
  std::vector<double> erfc_v, erfc_d;    // erfc(x) and its derivative
  std::vector<double> gauss_v, gauss_d;  // exp(-x^2) and its derivative
};

const ErfcTable& erfc_table() {
  static const ErfcTable table = [] {
    ErfcTable t;
    const std::size_t n = kTabN + 1;
    t.erfc_v.resize(n);
    t.erfc_d.resize(n);
    t.gauss_v.resize(n);
    t.gauss_d.resize(n);
    const double c = 2.0 / std::sqrt(std::numbers::pi);
    for (std::size_t k = 0; k < n; ++k) {
      const double x = static_cast<double>(k) * kTabH;
      const double g = std::exp(-x * x);
      t.erfc_v[k] = std::erfc(x);
      t.erfc_d[k] = -c * g;
      t.gauss_v[k] = g;
      t.gauss_d[k] = -2.0 * x * g;
    }
    return t;
  }();
  return table;
}

struct SimdScratch {
  int j[kChunk];
  double dx[kChunk], dy[kChunk], dz[kChunk], r2[kChunk];
  double eps[kChunk], rmn[kChunk], qj[kChunk];
  double fs[kChunk];  // force scale -dEdr / r
  double lj[kChunk], el[kChunk];
};

SimdScratch& simd_scratch() {
  static thread_local SimdScratch s;
  return s;
}

// Per-call constants and chunk state for the simd row kernel.
class SimdRowKernel {
 public:
  SimdRowKernel(const Box& box, const NonbondedOptions& opts,
                const PairTable& pt, const std::vector<Vec3>& pos,
                std::vector<Vec3>& forces)
      : box_(box),
        pt_(pt),
        pos_(pos),
        forces_(forces),
        s_(simd_scratch()),
        ewald_(opts.elec == NonbondedOptions::Elec::kEwaldDirect),
        rc2_(opts.cutoff * opts.cutoff),
        inv_rc2_(1.0 / (opts.cutoff * opts.cutoff)),
        ron_(opts.switch_on),
        A_(opts.cutoff * opts.cutoff),
        B_(opts.switch_on * opts.switch_on),
        beta_(opts.beta),
        bspi_(2.0 * opts.beta / std::sqrt(std::numbers::pi)) {
    const double d = (A_ - B_) * (A_ - B_) * (A_ - B_);
    inv_d_ = d != 0.0 ? 1.0 / d : 0.0;
  }

  // Evaluates atom i against the Keep-filtered neighbors, accumulating
  // forces on both sides and energies/counters into work.
  template <class Keep>
  void row(int i, const int* neigh, std::size_t count, Keep keep,
           NonbondedWork& work) {
    const std::size_t si = static_cast<std::size_t>(i);
    xi_ = pos_[si];
    qqi_ = units::kCoulomb * pt_.charge[si];
    const std::size_t row_base = static_cast<std::size_t>(pt_.type_of[si]) *
                                 static_cast<std::size_t>(pt_.ntypes);
    const double* eps_row = pt_.eps.data() + row_base;
    const double* rmin_row = pt_.rmin.data() + row_base;
    fi_ = Vec3{};
    m_ = 0;
    for (std::size_t t = 0; t < count; ++t) {
      const int j = neigh[t];
      if (!keep(j)) continue;
      ++work.pairs_listed;
      const std::size_t sj = static_cast<std::size_t>(j);
      const Vec3 d = box_.min_image(xi_ - pos_[sj]);
      const double r2 = util::norm2(d);
      if (r2 >= rc2_) continue;
      const int tj = pt_.type_of[sj];
      s_.j[m_] = j;
      s_.dx[m_] = d.x;
      s_.dy[m_] = d.y;
      s_.dz[m_] = d.z;
      s_.r2[m_] = r2;
      s_.eps[m_] = eps_row[tj];
      s_.rmn[m_] = rmin_row[tj];
      s_.qj[m_] = pt_.charge[sj];
      if (++m_ == kChunk) flush(work);
    }
    flush(work);
    forces_[si] += fi_;
  }

 private:
  void flush(NonbondedWork& work) {
    if (m_ == 0) return;
    if (ewald_) {
      physics_ewald();
    } else {
      physics_shift();
    }
    // Fixed-order scatter + energy sums keep the variant deterministic.
    for (int k = 0; k < m_; ++k) {
      const Vec3 f{s_.dx[k] * s_.fs[k], s_.dy[k] * s_.fs[k],
                   s_.dz[k] * s_.fs[k]};
      fi_ += f;
      forces_[static_cast<std::size_t>(s_.j[k])] -= f;
      work.lj += s_.lj[k];
      work.elec += s_.el[k];
    }
    work.pairs_in_cutoff += static_cast<std::size_t>(m_);
    m_ = 0;
  }

  void physics_shift() {
    SimdScratch& s = s_;
    const double A = A_, B = B_, inv_d = inv_d_, ron = ron_;
    const double inv_rc2 = inv_rc2_, qqi = qqi_;
#pragma omp simd
    for (int k = 0; k < m_; ++k) {
      const double r2 = s.r2[k];
      const double r = std::sqrt(r2);
      const double inv_r = 1.0 / r;
      double lj, dE;
      lj_term(s.eps[k], s.rmn[k], r, r2, inv_r, A, B, inv_d, ron, lj, dE);
      const double qq = qqi * s.qj[k];
      const double x = 1.0 - r2 * inv_rc2;
      s.el[k] = qq * inv_r * x * x;
      dE += -qq * inv_r * inv_r * x * (1.0 + 3.0 * r2 * inv_rc2);
      s.lj[k] = lj;
      s.fs[k] = -dE * inv_r;
    }
  }

  void physics_ewald() {
    SimdScratch& s = s_;
    const ErfcTable& tab = erfc_table();
    const double* ev = tab.erfc_v.data();
    const double* ed = tab.erfc_d.data();
    const double* gv = tab.gauss_v.data();
    const double* gd = tab.gauss_d.data();
    const double A = A_, B = B_, inv_d = inv_d_, ron = ron_;
    const double beta = beta_, bspi = bspi_, qqi = qqi_;
    const double inv_h = 1.0 / kTabH;
#pragma omp simd
    for (int k = 0; k < m_; ++k) {
      const double r2 = s.r2[k];
      const double r = std::sqrt(r2);
      const double inv_r = 1.0 / r;
      double lj, dE;
      lj_term(s.eps[k], s.rmn[k], r, r2, inv_r, A, B, inv_d, ron, lj, dE);
      const double qq = qqi * s.qj[k];
      // Hermite-table erfc(beta r) and exp(-(beta r)^2).
      const double br = beta * r;
      const double xs = br * inv_h;
      int idx = static_cast<int>(xs);
      const bool over = idx >= kTabN;
      idx = over ? kTabN - 1 : idx;
      const double t = xs - static_cast<double>(idx);
      const double t2 = t * t;
      const double t3 = t2 * t;
      const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
      const double h10 = (t3 - 2.0 * t2 + t) * kTabH;
      const double h01 = 3.0 * t2 - 2.0 * t3;
      const double h11 = (t3 - t2) * kTabH;
      double efc = h00 * ev[idx] + h10 * ed[idx] + h01 * ev[idx + 1] +
                   h11 * ed[idx + 1];
      double gau = h00 * gv[idx] + h10 * gd[idx] + h01 * gv[idx + 1] +
                   h11 * gd[idx + 1];
      efc = over ? 0.0 : efc;
      gau = over ? 0.0 : gau;
      s.el[k] = qq * efc * inv_r;
      dE += -qq * (efc * inv_r * inv_r + bspi * gau * inv_r);
      s.lj[k] = lj;
      s.fs[k] = -dE * inv_r;
    }
  }

  // Branch-free LJ + VSWITCH term shared by both electrostatics loops.
  // eps == 0 lanes fall out naturally (rmin is 0 too, so every power of q
  // is 0); out-of-switch lanes select the switched value via blends.
  static inline void lj_term(double eps, double rmin, double r, double r2,
                             double inv_r, double A, double B, double inv_d,
                             double ron, double& lj, double& dE) {
    const double q = rmin * inv_r;
    const double q2 = q * q;
    const double q6 = q2 * q2 * q2;
    const double q12 = q6 * q6;
    const double elj = eps * (q12 - 2.0 * q6);
    const double dlj = -12.0 * eps * (q12 - q6) * inv_r;
    const double amu = A - r2;
    const double sw = amu * amu * (A + 2.0 * r2 - 3.0 * B) * inv_d;
    const double dsw = 12.0 * r * amu * (B - r2) * inv_d;
    const bool inner = r <= ron;
    const double swv = inner ? 1.0 : sw;
    const double dswv = inner ? 0.0 : dsw;
    lj = elj * swv;
    dE = dlj * swv + elj * dswv;
  }

  const Box& box_;
  const PairTable& pt_;
  const std::vector<Vec3>& pos_;
  std::vector<Vec3>& forces_;
  SimdScratch& s_;
  const bool ewald_;
  const double rc2_, inv_rc2_, ron_, A_, B_, beta_, bspi_;
  double inv_d_ = 0.0;
  Vec3 xi_{};
  double qqi_ = 0.0;
  Vec3 fi_{};
  int m_ = 0;
};

struct KeepAll {
  bool operator()(int) const { return true; }
};

}  // namespace

std::shared_ptr<const PairTable> build_pair_table(const Topology& topo) {
  auto table = std::make_shared<PairTable>();
  const std::size_t natoms = static_cast<std::size_t>(topo.natoms());
  table->type_of.resize(natoms);
  table->charge.resize(natoms);
  std::map<std::pair<double, double>, int> ids;
  std::vector<std::pair<double, double>> params;  // (eps, rmin_half) per type
  for (std::size_t i = 0; i < natoms; ++i) {
    const AtomParams& a = topo.atom(static_cast<int>(i));
    table->charge[i] = a.charge;
    const std::pair<double, double> key{a.eps, a.rmin_half};
    auto [it, inserted] = ids.emplace(key, static_cast<int>(params.size()));
    if (inserted) params.push_back(key);
    table->type_of[i] = it->second;
  }
  table->ntypes = static_cast<int>(params.size());
  const std::size_t nt = params.size();
  table->eps.resize(nt * nt);
  table->rmin.resize(nt * nt);
  for (std::size_t a = 0; a < nt; ++a) {
    for (std::size_t b = 0; b < nt; ++b) {
      table->eps[a * nt + b] = std::sqrt(params[a].first * params[b].first);
      table->rmin[a * nt + b] = params[a].second + params[b].second;
    }
  }
  return table;
}

NonbondedWork nonbonded_energy(const Topology& topo, const Box& box,
                               const std::vector<Vec3>& pos,
                               const NeighborList& nbl,
                               const NonbondedOptions& opts,
                               std::vector<Vec3>& forces,
                               EnergyTerms& energy, int shard, int stride) {
  REPRO_REQUIRE(stride >= 1 && shard >= 0 && shard < stride,
                "bad shard/stride");
  REPRO_REQUIRE(nbl.cutoff() >= opts.cutoff,
                "neighbor list built with a smaller cutoff");
  std::shared_ptr<const PairTable> hold;
  const PairTable& pt = *resolve_table(opts, topo, hold);
  NonbondedWork work;
  const auto& offsets = nbl.offsets();
  const auto& neigh = nbl.neighbors();
  if (opts.kernel == util::KernelKind::kSimd) {
    SimdRowKernel kernel(box, opts, pt, pos, forces);
    for (int i = shard; i < topo.natoms(); i += stride) {
      const std::size_t b = offsets[static_cast<std::size_t>(i)];
      const std::size_t e = offsets[static_cast<std::size_t>(i) + 1];
      kernel.row(i, neigh.data() + b, e - b, KeepAll{}, work);
    }
  } else {
    for (int i = shard; i < topo.natoms(); i += stride) {
      const std::size_t b = offsets[static_cast<std::size_t>(i)];
      const std::size_t e = offsets[static_cast<std::size_t>(i) + 1];
      for (std::size_t t = b; t < e; ++t) {
        accumulate_pair(pt, box, pos, opts, i, neigh[t], forces, work);
        ++work.pairs_listed;
      }
    }
  }
  energy.lj += work.lj;
  energy.elec += work.elec;
  return work;
}

NonbondedWork nonbonded_energy_blocked(const Topology& topo, const Box& box,
                                       const std::vector<Vec3>& pos,
                                       const NeighborList& nbl,
                                       const NonbondedOptions& opts,
                                       const std::vector<int>& block,
                                       int owner, int nowners,
                                       std::vector<Vec3>& forces,
                                       EnergyTerms& energy) {
  REPRO_REQUIRE(nowners >= 1 && owner >= 0 && owner < nowners,
                "bad owner/nowners");
  REPRO_REQUIRE(block.size() == static_cast<std::size_t>(topo.natoms()),
                "block map must cover every atom");
  REPRO_REQUIRE(nbl.cutoff() >= opts.cutoff,
                "neighbor list built with a smaller cutoff");
  std::shared_ptr<const PairTable> hold;
  const PairTable& pt = *resolve_table(opts, topo, hold);
  NonbondedWork work;
  const auto& offsets = nbl.offsets();
  const auto& neigh = nbl.neighbors();
  if (opts.kernel == util::KernelKind::kSimd) {
    SimdRowKernel kernel(box, opts, pt, pos, forces);
    for (int i = 0; i < topo.natoms(); ++i) {
      const int bi = block[static_cast<std::size_t>(i)];
      const std::size_t b = offsets[static_cast<std::size_t>(i)];
      const std::size_t e = offsets[static_cast<std::size_t>(i) + 1];
      const auto owned = [&](int j) {
        return (bi + block[static_cast<std::size_t>(j)]) % nowners == owner;
      };
      kernel.row(i, neigh.data() + b, e - b, owned, work);
    }
  } else {
    for (int i = 0; i < topo.natoms(); ++i) {
      const int bi = block[static_cast<std::size_t>(i)];
      const std::size_t b = offsets[static_cast<std::size_t>(i)];
      const std::size_t e = offsets[static_cast<std::size_t>(i) + 1];
      for (std::size_t t = b; t < e; ++t) {
        const int j = neigh[t];
        if ((bi + block[static_cast<std::size_t>(j)]) % nowners != owner) {
          continue;
        }
        accumulate_pair(pt, box, pos, opts, i, j, forces, work);
        ++work.pairs_listed;
      }
    }
  }
  energy.lj += work.lj;
  energy.elec += work.elec;
  return work;
}

NonbondedWork nonbonded_energy_reference(const Topology& topo, const Box& box,
                                         const std::vector<Vec3>& pos,
                                         const NonbondedOptions& opts,
                                         std::vector<Vec3>& forces,
                                         EnergyTerms& energy) {
  std::shared_ptr<const PairTable> hold;
  const PairTable& pt = *resolve_table(opts, topo, hold);
  NonbondedWork work;
  for (int i = 0; i < topo.natoms(); ++i) {
    for (int j = i + 1; j < topo.natoms(); ++j) {
      if (topo.excluded(i, j)) continue;
      accumulate_pair(pt, box, pos, opts, i, j, forces, work);
      ++work.pairs_listed;
    }
  }
  energy.lj += work.lj;
  energy.elec += work.elec;
  return work;
}

}  // namespace repro::md
