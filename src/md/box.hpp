// Orthorhombic periodic box with minimum-image convention.
#pragma once

#include <cmath>

#include "util/error.hpp"
#include "util/vec3.hpp"

namespace repro::md {

using util::Vec3;

class Box {
 public:
  Box() = default;
  Box(double lx, double ly, double lz) : l_{lx, ly, lz} {
    REPRO_REQUIRE(lx > 0 && ly > 0 && lz > 0, "box lengths must be positive");
  }

  double lx() const { return l_.x; }
  double ly() const { return l_.y; }
  double lz() const { return l_.z; }
  Vec3 lengths() const { return l_; }
  double volume() const { return l_.x * l_.y * l_.z; }
  double min_length() const {
    return std::min(l_.x, std::min(l_.y, l_.z));
  }

  // Minimum-image displacement of d (valid when |d| components < 1.5 L).
  Vec3 min_image(Vec3 d) const {
    d.x -= l_.x * std::nearbyint(d.x / l_.x);
    d.y -= l_.y * std::nearbyint(d.y / l_.y);
    d.z -= l_.z * std::nearbyint(d.z / l_.z);
    return d;
  }

  // Wraps a position into [0, L) per dimension.
  Vec3 wrap(Vec3 r) const {
    r.x -= l_.x * std::floor(r.x / l_.x);
    r.y -= l_.y * std::floor(r.y / l_.y);
    r.z -= l_.z * std::floor(r.z / l_.z);
    return r;
  }

 private:
  Vec3 l_{1.0, 1.0, 1.0};
};

}  // namespace repro::md
