#include "md/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace repro::md {

RdfResult radial_distribution(const Box& box,
                              const std::vector<util::Vec3>& pos,
                              const std::vector<int>& selection_a,
                              const std::vector<int>& selection_b,
                              double r_max, int bins) {
  REPRO_REQUIRE(r_max > 0.0 && bins > 0, "bad RDF binning");
  REPRO_REQUIRE(2.0 * r_max <= box.min_length() * 1.5,
                "RDF range too large for the box (minimum image)");
  const bool self = &selection_a == &selection_b ||
                    selection_a == selection_b;
  RdfResult out;
  out.r.resize(static_cast<std::size_t>(bins));
  out.g.assign(static_cast<std::size_t>(bins), 0.0);
  const double dr = r_max / bins;
  for (int b = 0; b < bins; ++b) {
    out.r[static_cast<std::size_t>(b)] = (b + 0.5) * dr;
  }

  std::vector<double> counts(static_cast<std::size_t>(bins), 0.0);
  for (std::size_t ia = 0; ia < selection_a.size(); ++ia) {
    const std::size_t jb0 = self ? ia + 1 : 0;
    for (std::size_t jb = jb0; jb < selection_b.size(); ++jb) {
      const int i = selection_a[ia];
      const int j = selection_b[jb];
      if (i == j) continue;
      const double r = util::norm(box.min_image(
          pos[static_cast<std::size_t>(i)] -
          pos[static_cast<std::size_t>(j)]));
      if (r >= r_max) continue;
      const int bin = std::min(static_cast<int>(r / dr), bins - 1);
      counts[static_cast<std::size_t>(bin)] += self ? 2.0 : 1.0;
      ++out.pairs;
    }
  }

  // Normalize by the ideal-gas expectation.
  const double na = static_cast<double>(selection_a.size());
  const double nb = static_cast<double>(selection_b.size());
  const double pair_density =
      (self ? na * (na - 1.0) : na * nb) / box.volume();
  for (int b = 0; b < bins; ++b) {
    const double r_lo = b * dr;
    const double r_hi = (b + 1) * dr;
    const double shell = 4.0 / 3.0 * std::numbers::pi *
                         (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double expected = pair_density * shell;
    // Self-RDF counts each unordered pair twice, matching the ordered
    // na*(na-1) normalization.
    out.g[static_cast<std::size_t>(b)] =
        expected > 0.0 ? counts[static_cast<std::size_t>(b)] / expected
                       : 0.0;
  }
  return out;
}

double mean_squared_displacement(const std::vector<util::Vec3>& frame0,
                                 const std::vector<util::Vec3>& frame1,
                                 const std::vector<int>& selection) {
  REPRO_REQUIRE(frame0.size() == frame1.size(),
                "MSD frames differ in size");
  REPRO_REQUIRE(!selection.empty(), "MSD needs a non-empty selection");
  double acc = 0.0;
  for (int i : selection) {
    acc += util::norm2(frame1[static_cast<std::size_t>(i)] -
                       frame0[static_cast<std::size_t>(i)]);
  }
  return acc / static_cast<double>(selection.size());
}

util::Vec3 center_of_mass(const Topology& topo,
                          const std::vector<util::Vec3>& pos,
                          const std::vector<int>& selection) {
  REPRO_REQUIRE(!selection.empty(), "COM needs a non-empty selection");
  util::Vec3 com;
  double mass = 0.0;
  for (int i : selection) {
    com += pos[static_cast<std::size_t>(i)] * topo.atom(i).mass;
    mass += topo.atom(i).mass;
  }
  return com / mass;
}

double radius_of_gyration(const Topology& topo,
                          const std::vector<util::Vec3>& pos,
                          const std::vector<int>& selection) {
  const util::Vec3 com = center_of_mass(topo, pos, selection);
  double acc = 0.0;
  double mass = 0.0;
  for (int i : selection) {
    acc += topo.atom(i).mass *
           util::norm2(pos[static_cast<std::size_t>(i)] - com);
    mass += topo.atom(i).mass;
  }
  return std::sqrt(acc / mass);
}

std::vector<int> select_all(const Topology& topo) {
  std::vector<int> out(static_cast<std::size_t>(topo.natoms()));
  for (int i = 0; i < topo.natoms(); ++i) {
    out[static_cast<std::size_t>(i)] = i;
  }
  return out;
}

std::vector<int> select_heavy_atoms(const Topology& topo) {
  std::vector<int> out;
  for (int i = 0; i < topo.natoms(); ++i) {
    if (topo.atom(i).mass >= 2.0) out.push_back(i);
  }
  return out;
}

std::vector<int> select_water_oxygens(const Topology& topo) {
  const auto n = static_cast<std::size_t>(topo.natoms());
  std::vector<int> hydrogens(n, 0);
  std::vector<int> degree(n, 0);
  for (const Bond& b : topo.bonds()) {
    ++degree[static_cast<std::size_t>(b.i)];
    ++degree[static_cast<std::size_t>(b.j)];
    if (topo.atom(b.j).mass < 2.0) {
      ++hydrogens[static_cast<std::size_t>(b.i)];
    }
    if (topo.atom(b.i).mass < 2.0) {
      ++hydrogens[static_cast<std::size_t>(b.j)];
    }
  }
  std::vector<int> out;
  for (int i = 0; i < topo.natoms(); ++i) {
    const auto s = static_cast<std::size_t>(i);
    if (topo.atom(i).mass > 10.0 && topo.atom(i).mass < 20.0 &&
        degree[s] == 2 && hydrogens[s] == 2) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace repro::md
