// Synthetic molecular systems.
//
// The paper's workload is myoglobin (153-residue all-alpha protein) + CO +
// 337 waters + a sulfate ion: 3552 atoms in a box whose PME grid is
// 80 x 36 x 48. The original PSC input files are not redistributable, so
// build_myoglobin_like() constructs a synthetic equivalent with the same
// atom count, composition, density and charge structure: an all-atom
// 4-segment alpha-helical bundle (2534 protein atoms), TIP3P-like waters in
// a solvation shell, CO and SO4(2-) near the surface, net charge zero.
//
// Bonded parameters use standard force constants with equilibrium values
// taken from the as-built geometry ("self-consistent parameterization"),
// so the structure starts near a minimum — which is what matters for a
// workload study: realistic term counts, pair counts and force magnitudes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::sysbuild {

struct BuiltSystem {
  md::Topology topo;
  md::Box box;
  std::vector<util::Vec3> positions;
  std::string name;

  BuiltSystem(int natoms, const md::Box& b, std::string n)
      : topo(natoms), box(b), name(std::move(n)) {}
};

// Composition constants of the paper's molecular system.
inline constexpr int kProteinResidues = 153;
inline constexpr int kProteinAtoms = 2534;
inline constexpr int kWaterCount = 337;
inline constexpr int kTotalAtoms = 3552;  // protein + CO(2) + waters + SO4(5)

// The full 3552-atom system in the 80 x 36 x 48 Å box.
BuiltSystem build_myoglobin_like(std::uint64_t seed = 2002);

// A cubic lattice water box (n^3 waters, TIP3P-like), for NVE and
// integrator tests.
BuiltSystem build_water_box(int waters_per_side, double spacing = 3.106);

// n point charges (no bonds, neutral overall) in the given box — the Ewald
// validation workload.
BuiltSystem build_random_charges(int n, const md::Box& box,
                                 std::uint64_t seed);

// A single flexible chain molecule (bonds/angles/dihedrals/impropers), for
// bonded-kernel and gradient tests.
BuiltSystem build_test_chain(int natoms, std::uint64_t seed);

}  // namespace repro::sysbuild
