#include "sysbuild/builder.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::sysbuild {

namespace {

using md::Box;
using md::Topology;
using util::Rng;
using util::Vec3;

constexpr double kPi = std::numbers::pi;
constexpr double kDeg = kPi / 180.0;

// --- spatial hash for clash checks ----------------------------------------

class HashGrid {
 public:
  // Periodic spatial hash over `box`; all distances use minimum image so
  // clash checks agree with what the force field will later see.
  HashGrid(const Box& box, double cell) : box_(box) {
    nc_[0] = std::max(3, static_cast<int>(box.lx() / cell));
    nc_[1] = std::max(3, static_cast<int>(box.ly() / cell));
    nc_[2] = std::max(3, static_cast<int>(box.lz() / cell));
  }

  void insert(const Vec3& r, int id) {
    cells_[key(box_.wrap(r))].emplace_back(id, box_.wrap(r));
  }

  // Distance from r to the nearest inserted point, ignoring ids in `skip`
  // (a short list of bonded partners). Huge when nothing is nearby.
  double nearest(const Vec3& r, const std::vector<int>& skip = {}) const {
    Vec3 unused;
    return nearest_with_pos(r, skip, unused);
  }

  double nearest_with_pos(const Vec3& r, const std::vector<int>& skip,
                          Vec3& nearest_pos) const {
    double best = 1e30;
    const Vec3 rw = box_.wrap(r);
    const auto [cx, cy, cz] = coords(rw);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const auto it =
              cells_.find(pack((cx + dx + nc_[0]) % nc_[0],
                               (cy + dy + nc_[1]) % nc_[1],
                               (cz + dz + nc_[2]) % nc_[2]));
          if (it == cells_.end()) continue;
          for (const auto& [id, p] : it->second) {
            if (std::find(skip.begin(), skip.end(), id) != skip.end()) {
              continue;
            }
            const double d = util::norm(box_.min_image(p - rw));
            if (d < best) {
              best = d;
              nearest_pos = p;
            }
          }
        }
      }
    }
    return best;
  }

 private:
  std::tuple<int, int, int> coords(const Vec3& rw) const {
    auto idx = [](double x, double len, int n) {
      int c = static_cast<int>(x / len * n);
      return std::clamp(c, 0, n - 1);
    };
    return {idx(rw.x, box_.lx(), nc_[0]), idx(rw.y, box_.ly(), nc_[1]),
            idx(rw.z, box_.lz(), nc_[2])};
  }
  static long long pack(int x, int y, int z) {
    return (static_cast<long long>(x) << 42) |
           (static_cast<long long>(y) << 21) | z;
  }
  long long key(const Vec3& rw) const {
    const auto [x, y, z] = coords(rw);
    return pack(x, y, z);
  }

  Box box_;
  int nc_[3];
  std::unordered_map<long long, std::vector<std::pair<int, Vec3>>> cells_;
};

// --- planned system ---------------------------------------------------------

struct PlannedAtom {
  Vec3 pos;
  double mass = 12.011;
  double charge = 0.0;
  double eps = 0.08;
  double rmin_half = 2.0;
  bool hydrogen = false;
};

struct Plan {
  std::vector<PlannedAtom> atoms;
  std::vector<std::pair<int, int>> bonds;

  int add(const PlannedAtom& a) {
    atoms.push_back(a);
    return static_cast<int>(atoms.size()) - 1;
  }
  void bond(int i, int j) { bonds.emplace_back(i, j); }
};

PlannedAtom heavy_atom(const Vec3& pos, double mass = 12.011,
                       double rmin_half = 2.0, double eps = 0.08) {
  PlannedAtom a;
  a.pos = pos;
  a.mass = mass;
  a.rmin_half = rmin_half;
  a.eps = eps;
  return a;
}

PlannedAtom h_atom(const Vec3& pos) {
  PlannedAtom a;
  a.pos = pos;
  a.mass = 1.008;
  a.eps = 0.035;
  a.rmin_half = 0.95;
  a.hydrogen = true;
  return a;
}

Vec3 random_unit(Rng& rng) {
  for (;;) {
    const Vec3 v{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const double n2 = util::norm2(v);
    if (n2 > 0.01 && n2 < 1.0) return v / std::sqrt(n2);
  }
}

// Places a new atom bonded to `anchor` at the given bond length, preferring
// the direction `bias` but retrying with random perturbations until it is
// at least `min_dist` from every non-partner atom.
Vec3 place_bonded(Rng& rng, const HashGrid& grid, const Vec3& anchor,
                  const Vec3& bias, double bond_len, double min_dist,
                  const std::vector<int>& skip) {
  Vec3 best_pos = anchor + util::normalized(bias) * bond_len;
  double best_sep = -1.0;
  for (int attempt = 0; attempt < 48; ++attempt) {
    // First try the biased direction, then increasingly random ones.
    const double mix = attempt == 0 ? 0.0 : (attempt < 24 ? 0.8 : 2.5);
    const Vec3 dir = util::normalized(bias + random_unit(rng) * mix);
    const Vec3 cand = anchor + dir * bond_len;
    const double sep = grid.nearest(cand, skip);
    if (sep > best_sep) {
      best_sep = sep;
      best_pos = cand;
    }
    if (sep >= min_dist) break;
  }
  // Hard floor: a crowded pocket must never produce a near-overlap (the
  // r^-12 wall would dominate the whole system energy). Nudge away from
  // the closest non-partner atom until a safe separation is reached.
  for (int pass = 0; pass < 60 && best_sep < 1.5; ++pass) {
    Vec3 npos;
    best_sep = grid.nearest_with_pos(best_pos, skip, npos);
    if (best_sep >= 1.5) break;
    Vec3 away = best_pos - npos;
    if (util::norm(away) < 1e-9) away = random_unit(rng);
    // The random kick and the outward drift from the anchor break the
    // oscillation between two crowding neighbors; stretching the bond is
    // harmless because equilibrium lengths come from the built geometry.
    best_pos += util::normalized(away) * (1.5 - best_sep + 0.05) +
                random_unit(rng) * 0.08 +
                util::normalized(best_pos - anchor) * 0.04;
  }
  return best_pos;
}

// --- bonded-term derivation -------------------------------------------------

// Generates angles, dihedrals and equilibrium values from the bond graph
// and the as-built geometry. Backbone carbonyl impropers are added by the
// protein builder separately.
void derive_bonded_terms(Topology& topo, const Box& box,
                         const std::vector<Vec3>& pos) {
  const auto n = static_cast<std::size_t>(topo.natoms());
  std::vector<std::vector<int>> adj(n);
  for (auto& b : topo.bonds()) {
    adj[static_cast<std::size_t>(b.i)].push_back(b.j);
    adj[static_cast<std::size_t>(b.j)].push_back(b.i);
    // Equilibrium bond length from the built geometry.
    b.b0 = util::norm(box.min_image(pos[static_cast<std::size_t>(b.i)] -
                                    pos[static_cast<std::size_t>(b.j)]));
  }

  auto angle_value = [&](int i, int j, int k) {
    const Vec3 rij = box.min_image(pos[static_cast<std::size_t>(i)] -
                                   pos[static_cast<std::size_t>(j)]);
    const Vec3 rkj = box.min_image(pos[static_cast<std::size_t>(k)] -
                                   pos[static_cast<std::size_t>(j)]);
    const double c = std::clamp(
        util::dot(rij, rkj) / (util::norm(rij) * util::norm(rkj)), -1.0, 1.0);
    return std::acos(c);
  };
  auto torsion_value = [&](int i, int j, int k, int l) {
    const Vec3 b1 = box.min_image(pos[static_cast<std::size_t>(j)] -
                                  pos[static_cast<std::size_t>(i)]);
    const Vec3 b2 = box.min_image(pos[static_cast<std::size_t>(k)] -
                                  pos[static_cast<std::size_t>(j)]);
    const Vec3 b3 = box.min_image(pos[static_cast<std::size_t>(l)] -
                                  pos[static_cast<std::size_t>(k)]);
    const Vec3 m = util::cross(b1, b2);
    const Vec3 nn = util::cross(b2, b3);
    return std::atan2(util::dot(util::cross(m, nn), b2) / util::norm(b2),
                      util::dot(m, nn));
  };

  for (int j = 0; j < topo.natoms(); ++j) {
    const auto& nb = adj[static_cast<std::size_t>(j)];
    for (std::size_t a = 0; a < nb.size(); ++a) {
      for (std::size_t b = a + 1; b < nb.size(); ++b) {
        md::Angle ang;
        ang.i = nb[a];
        ang.j = j;
        ang.k = nb[b];
        const bool has_h = topo.atom(ang.i).mass < 2.0 ||
                           topo.atom(ang.k).mass < 2.0;
        ang.ktheta = has_h ? 38.0 : 52.0;
        ang.theta0 = angle_value(ang.i, ang.j, ang.k);
        topo.angles().push_back(ang);
      }
    }
  }

  for (const auto& b : topo.bonds()) {
    for (int i : adj[static_cast<std::size_t>(b.i)]) {
      if (i == b.j) continue;
      for (int l : adj[static_cast<std::size_t>(b.j)]) {
        if (l == b.i || l == i) continue;
        md::Dihedral d;
        d.i = i;
        d.j = b.i;
        d.k = b.j;
        d.l = l;
        d.kchi = 0.20;
        d.n = 3;
        // Phase chosen so the built conformation is a minimum:
        // cos(n phi - delta) = -1  =>  delta = n phi - pi.
        double delta = 3.0 * torsion_value(i, b.i, b.j, l) - kPi;
        while (delta > kPi) delta -= 2.0 * kPi;
        while (delta <= -kPi) delta += 2.0 * kPi;
        d.delta = delta;
        topo.dihedrals().push_back(d);
      }
    }
  }
}

// --- myoglobin-like system ---------------------------------------------------

struct ProteinLayout {
  std::vector<int> residue_first_atom;
  std::vector<int> ca_index;   // per residue
  std::vector<int> n_index;    // per residue
  std::vector<int> c_index;    // per residue
  std::vector<int> o_index;    // per residue
};

// Builds the 153-residue helical-bundle protein into `plan`; returns layout
// bookkeeping for impropers and charges.
ProteinLayout build_protein(Plan& plan, Rng& rng, const Vec3& center,
                            HashGrid& grid) {
  ProteinLayout layout;

  // Side-chain sizes: total protein atoms must hit kProteinAtoms exactly.
  const int backbone_per_res = 6;  // N, HN, CA, HA, C, O
  const int sidechain_total =
      kProteinAtoms - kProteinResidues * backbone_per_res;
  std::vector<int> sc_size(kProteinResidues);
  int assigned = 0;
  for (int r = 0; r < kProteinResidues; ++r) {
    sc_size[static_cast<std::size_t>(r)] =
        4 + static_cast<int>(rng.uniform_index(13));  // 4..16
    assigned += sc_size[static_cast<std::size_t>(r)];
  }
  // Adjust until the total is exact, keeping sizes within [1, 18].
  int idx = 0;
  while (assigned != sidechain_total) {
    auto& s = sc_size[static_cast<std::size_t>(idx % kProteinResidues)];
    if (assigned < sidechain_total && s < 18) {
      ++s;
      ++assigned;
    } else if (assigned > sidechain_total && s > 1) {
      --s;
      --assigned;
    }
    ++idx;
  }

  // Four antiparallel helical segments in a bundle along x.
  const int seg_sizes[4] = {39, 38, 38, 38};
  const double bundle_off = 5.6;
  const Vec3 seg_offsets[4] = {{0, -bundle_off, -bundle_off},
                               {0, -bundle_off, bundle_off},
                               {0, bundle_off, -bundle_off},
                               {0, bundle_off, bundle_off}};

  // Helix geometry: 1.5 Å rise, 100 deg twist, 2.3 Å CA radius.
  std::vector<Vec3> ca(kProteinResidues);
  std::vector<int> seg_of(kProteinResidues);
  {
    int res = 0;
    for (int s = 0; s < 4; ++s) {
      const int nres = seg_sizes[s];
      const double dir = (s % 2 == 0) ? 1.0 : -1.0;
      const double len = 1.5 * (nres - 1);
      const Vec3 base = center + seg_offsets[s] - Vec3{dir * len / 2, 0, 0};
      for (int i = 0; i < nres; ++i, ++res) {
        const double t = 1.5 * i;
        const double ang = 100.0 * kDeg * i;
        ca[static_cast<std::size_t>(res)] =
            base + Vec3{dir * t, 2.3 * std::cos(ang), 2.3 * std::sin(ang)};
        seg_of[static_cast<std::size_t>(res)] = s;
      }
    }
  }

  // Atom index layout per residue: [N, HN, CA, HA, C, O, side chain...].
  std::vector<int> first_atom(kProteinResidues + 1);
  first_atom[0] = static_cast<int>(plan.atoms.size());
  for (int r = 0; r < kProteinResidues; ++r) {
    first_atom[static_cast<std::size_t>(r) + 1] =
        first_atom[static_cast<std::size_t>(r)] + 6 +
        sc_size[static_cast<std::size_t>(r)];
  }

  // Pass A: place and register the whole backbone first, so side chains can
  // never collide with a backbone atom that has not been built yet.
  struct Frame {
    Vec3 n, hn, ca, ha, c, o;
    Vec3 radial, binormal;
  };
  std::vector<Frame> frames(kProteinResidues);
  for (int r = 0; r < kProteinResidues; ++r) {
    const Vec3 ca_r = ca[static_cast<std::size_t>(r)];
    // Tangents are computed within the residue's own helical segment; a
    // neighbor across a segment boundary lies on the far side of the
    // bundle and would degenerate the local frame.
    const bool has_prev =
        r > 0 && seg_of[static_cast<std::size_t>(r - 1)] ==
                     seg_of[static_cast<std::size_t>(r)];
    const bool has_next =
        r + 1 < kProteinResidues &&
        seg_of[static_cast<std::size_t>(r + 1)] ==
            seg_of[static_cast<std::size_t>(r)];
    Vec3 t_pre = has_prev ? util::normalized(
                                ca_r - ca[static_cast<std::size_t>(r - 1)])
                          : Vec3{};
    Vec3 t_next = has_next
                      ? util::normalized(
                            ca[static_cast<std::size_t>(r + 1)] - ca_r)
                      : Vec3{};
    if (!has_prev) t_pre = t_next;
    if (!has_next) t_next = t_pre;
    Vec3 seg_center = ca_r;
    seg_center.y = center.y + ((ca_r.y > center.y) ? bundle_off : -bundle_off);
    seg_center.z = center.z + ((ca_r.z > center.z) ? bundle_off : -bundle_off);
    Vec3 radial = ca_r - seg_center;
    radial.x = 0;
    if (util::norm(radial) < 0.2) radial = Vec3{0, 1, 0};
    radial = util::normalized(radial);
    const Vec3 binormal = util::normalized(util::cross(t_next, radial));

    // Orthonormal local frame: e1 along the chain, e2 radially outward
    // (orthogonalized), e3 completing it. Using an orthogonal basis keeps
    // the intra-residue geometry identical for every residue regardless of
    // the helix twist phase.
    const Vec3 e1 = util::normalized(t_pre + t_next);
    Vec3 e2 = radial - e1 * util::dot(radial, e1);
    if (util::norm(e2) < 0.2) e2 = binormal;
    e2 = util::normalized(e2);
    const Vec3 e3 = util::cross(e1, e2);

    Frame& f = frames[static_cast<std::size_t>(r)];
    f.radial = e2;
    f.binormal = e3;
    f.n = ca_r - e1 * 1.46 + e2 * 0.30;
    f.hn = f.n - e3 * 1.0;
    f.ca = ca_r;
    f.ha = ca_r + e3 * 1.09;
    f.c = ca_r + e1 * 1.52 + e2 * 0.30;
    f.o = f.c + util::normalized(e2 + e3 * 0.4) * 1.23;

    const int base = first_atom[static_cast<std::size_t>(r)];
    grid.insert(f.n, base);
    grid.insert(f.hn, base + 1);
    grid.insert(f.ca, base + 2);
    grid.insert(f.ha, base + 3);
    grid.insert(f.c, base + 4);
    grid.insert(f.o, base + 5);
  }

  // Pass B: materialize atoms residue by residue, growing side chains with
  // clash checks against everything placed so far (full backbone included).
  for (int r = 0; r < kProteinResidues; ++r) {
    layout.residue_first_atom.push_back(static_cast<int>(plan.atoms.size()));
    const Frame& f = frames[static_cast<std::size_t>(r)];

    const int n_i = plan.add(heavy_atom(f.n, 14.007, 1.85, 0.2));
    const int hn_i = plan.add(h_atom(f.hn));
    const int ca_i = plan.add(heavy_atom(f.ca, 12.011, 2.27, 0.02));
    const int ha_i = plan.add(h_atom(f.ha));
    const int c_i = plan.add(heavy_atom(f.c, 12.011, 2.0, 0.11));
    const int o_i = plan.add(heavy_atom(f.o, 15.999, 1.7, 0.12));
    layout.n_index.push_back(n_i);
    layout.ca_index.push_back(ca_i);
    layout.c_index.push_back(c_i);
    layout.o_index.push_back(o_i);

    plan.bond(n_i, hn_i);
    plan.bond(n_i, ca_i);
    plan.bond(ca_i, ha_i);
    plan.bond(ca_i, c_i);
    plan.bond(c_i, o_i);
    if (r > 0) plan.bond(layout.c_index[static_cast<std::size_t>(r - 1)], n_i);

    const int sc = sc_size[static_cast<std::size_t>(r)];
    const int n_heavy = std::max(1, (sc + 1) / 2);
    const int n_hydro = sc - n_heavy;
    std::vector<int> heavies;
    int anchor = ca_i;
    for (int a = 0; a < n_heavy; ++a) {
      if (heavies.size() >= 2 && rng.uniform() < 0.3) {
        anchor = heavies[rng.uniform_index(heavies.size())];
      }
      const Vec3 anchor_pos =
          plan.atoms[static_cast<std::size_t>(anchor)].pos;
      const Vec3 bias = f.radial + random_unit(rng) * 0.6;
      const Vec3 p = place_bonded(rng, grid, anchor_pos, bias, 1.52, 1.9,
                                  {anchor});
      const int id = plan.add(heavy_atom(p, 12.011, 2.05, 0.07));
      plan.bond(anchor, id);
      grid.insert(p, id);
      heavies.push_back(id);
      anchor = id;
    }
    for (int a = 0; a < n_hydro; ++a) {
      const int host = heavies[rng.uniform_index(heavies.size())];
      const Vec3 host_pos = plan.atoms[static_cast<std::size_t>(host)].pos;
      const Vec3 p = place_bonded(rng, grid, host_pos, random_unit(rng), 1.09,
                                  1.6, {host});
      const int id = plan.add(h_atom(p));
      plan.bond(host, id);
      grid.insert(p, id);
    }
  }
  layout.residue_first_atom.push_back(static_cast<int>(plan.atoms.size()));
  return layout;
}

// Assigns per-residue charges: 12 residues at +1, 10 at -1, rest neutral
// (protein net +2, balancing the sulfate's -2).
void assign_protein_charges(Plan& plan, const ProteinLayout& layout,
                            Rng& rng) {
  std::vector<double> target(kProteinResidues, 0.0);
  std::vector<int> order(kProteinResidues);
  for (int r = 0; r < kProteinResidues; ++r) order[static_cast<std::size_t>(r)] = r;
  for (int r = kProteinResidues - 1; r > 0; --r) {
    std::swap(order[static_cast<std::size_t>(r)],
              order[rng.uniform_index(static_cast<std::size_t>(r) + 1)]);
  }
  for (int k = 0; k < 12; ++k) target[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = 1.0;
  for (int k = 12; k < 22; ++k) target[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = -1.0;

  for (int r = 0; r < kProteinResidues; ++r) {
    const int first = layout.residue_first_atom[static_cast<std::size_t>(r)];
    const int last = layout.residue_first_atom[static_cast<std::size_t>(r) + 1];
    double sum = 0.0;
    for (int a = first; a < last; ++a) {
      auto& atom = plan.atoms[static_cast<std::size_t>(a)];
      atom.charge = atom.hydrogen ? 0.09 + 0.15 * rng.uniform()
                                  : -0.25 + 0.25 * rng.uniform();
      sum += atom.charge;
    }
    // Shift so the residue hits its target exactly.
    const double shift =
        (target[static_cast<std::size_t>(r)] - sum) / (last - first);
    for (int a = first; a < last; ++a) {
      plan.atoms[static_cast<std::size_t>(a)].charge += shift;
    }
  }
}

// TIP3P-like water at `origin`. When a grid is given, the orientation is
// re-drawn until both hydrogens keep a safe distance from existing atoms.
void add_water(Plan& plan, Rng& rng, const Vec3& origin,
               const HashGrid* grid = nullptr) {
  PlannedAtom o;
  o.pos = origin;
  o.mass = 15.999;
  o.charge = -0.834;
  o.eps = 0.1521;
  o.rmin_half = 1.7682;
  const int oi = plan.add(o);

  const double half = 0.5 * 104.52 * kDeg;
  const double d = 0.9572;
  Vec3 h1_pos, h2_pos;
  double best_sep = -1.0;
  for (int attempt = 0; attempt < 20; ++attempt) {
    const Vec3 u = random_unit(rng);
    Vec3 v = util::cross(u, random_unit(rng));
    if (util::norm(v) < 0.1) v = util::cross(u, Vec3{0, 0, 1});
    v = util::normalized(v);
    const Vec3 a = origin + (u * std::cos(half) + v * std::sin(half)) * d;
    const Vec3 b = origin + (u * std::cos(half) - v * std::sin(half)) * d;
    if (grid == nullptr) {
      h1_pos = a;
      h2_pos = b;
      break;
    }
    const double sep = std::min(grid->nearest(a), grid->nearest(b));
    if (sep > best_sep) {
      best_sep = sep;
      h1_pos = a;
      h2_pos = b;
    }
    if (sep >= 1.7) break;
  }
  auto make_h = [&](const Vec3& pos) {
    PlannedAtom h;
    h.pos = pos;
    h.mass = 1.008;
    h.charge = 0.417;
    h.eps = 0.046;
    h.rmin_half = 0.2245;
    h.hydrogen = true;
    return h;
  };
  const int h1 = plan.add(make_h(h1_pos));
  const int h2 = plan.add(make_h(h2_pos));
  plan.bond(oi, h1);
  plan.bond(oi, h2);
}

}  // namespace

BuiltSystem build_myoglobin_like(std::uint64_t seed) {
  Rng rng(util::mix_seed(seed, 0x6d796f67));
  const Box box(80.0, 36.0, 48.0);
  const Vec3 center{40.0, 18.0, 24.0};

  Plan plan;
  HashGrid grid(box, 3.0);
  const ProteinLayout layout = build_protein(plan, rng, center, grid);
  REPRO_REQUIRE(static_cast<int>(plan.atoms.size()) == kProteinAtoms,
                "protein atom count drifted from the paper's 2534");
  assign_protein_charges(plan, layout, rng);
  const int protein_end = static_cast<int>(plan.atoms.size());

  // Carbonmonoxide near the bundle core (myoglobin's ligand).
  {
    const Vec3 c_pos = place_bonded(rng, grid, center, random_unit(rng), 2.8,
                                    2.3, {});
    PlannedAtom c = heavy_atom(c_pos, 12.011, 2.0, 0.1);
    c.charge = 0.021;
    const int ci = plan.add(c);
    grid.insert(c_pos, ci);
    const Vec3 o_pos = place_bonded(rng, grid, c_pos, random_unit(rng), 1.128,
                                    1.0, {ci});
    PlannedAtom o = heavy_atom(o_pos, 15.999, 1.7, 0.12);
    o.charge = -0.021;
    const int oi = plan.add(o);
    grid.insert(o_pos, oi);
    plan.bond(ci, oi);
  }

  // Sulfate ion (net -2) near the protein surface.
  {
    Vec3 s_pos;
    for (int attempt = 0;; ++attempt) {
      s_pos = center + random_unit(rng) * rng.uniform(14.0, 17.0);
      if (grid.nearest(s_pos) > 3.2 || attempt > 200) break;
    }
    PlannedAtom s = heavy_atom(s_pos, 32.06, 2.2, 0.45);
    s.charge = 1.0;
    const int si = plan.add(s);
    grid.insert(s_pos, si);
    const Vec3 t1 = random_unit(rng);
    Vec3 t2 = util::normalized(util::cross(t1, random_unit(rng)));
    const Vec3 t3 = util::cross(t1, t2);
    const Vec3 dirs[4] = {t1, -t1 * (1.0 / 3.0) + t2 * (2.0 * std::sqrt(2.0) / 3.0),
                          -t1 * (1.0 / 3.0) - t2 * (std::sqrt(2.0) / 3.0) +
                              t3 * (std::sqrt(2.0 / 3.0)),
                          -t1 * (1.0 / 3.0) - t2 * (std::sqrt(2.0) / 3.0) -
                              t3 * (std::sqrt(2.0 / 3.0))};
    for (const Vec3& d : dirs) {
      PlannedAtom o = heavy_atom(s_pos + util::normalized(d) * 1.49, 15.999,
                                 1.7, 0.12);
      o.charge = -0.75;
      const int oi = plan.add(o);
      grid.insert(o.pos, oi);
      plan.bond(si, oi);
    }
  }

  // 337 waters in a solvation shell around the protein.
  {
    int placed = 0;
    double shell_max = 6.5;
    int attempts = 0;
    while (placed < kWaterCount) {
      ++attempts;
      if (attempts % 40000 == 0) shell_max += 1.0;  // widen if crowded
      const Vec3 cand{rng.uniform(0, box.lx()), rng.uniform(0, box.ly()),
                      rng.uniform(0, box.lz())};
      const double sep = grid.nearest(cand);
      if (sep < 2.75 || sep > shell_max) continue;
      const int first = static_cast<int>(plan.atoms.size());
      add_water(plan, rng, cand, &grid);
      for (int a = first; a < static_cast<int>(plan.atoms.size()); ++a) {
        grid.insert(plan.atoms[static_cast<std::size_t>(a)].pos, a);
      }
      ++placed;
    }
  }

  REPRO_REQUIRE(static_cast<int>(plan.atoms.size()) == kTotalAtoms,
                "total atom count drifted from the paper's 3552");

  // Materialize the topology.
  BuiltSystem sys(kTotalAtoms, box, "myoglobin-like");
  for (int i = 0; i < kTotalAtoms; ++i) {
    const auto& a = plan.atoms[static_cast<std::size_t>(i)];
    sys.topo.atom(i) = md::AtomParams{a.mass, a.charge, a.eps, a.rmin_half};
    sys.positions.push_back(box.wrap(a.pos));
  }
  for (const auto& [i, j] : plan.bonds) {
    md::Bond b;
    b.i = i;
    b.j = j;
    const bool has_h = plan.atoms[static_cast<std::size_t>(i)].hydrogen ||
                       plan.atoms[static_cast<std::size_t>(j)].hydrogen;
    b.kb = has_h ? 380.0 : 300.0;
    sys.topo.bonds().push_back(b);
  }
  derive_bonded_terms(sys.topo, box, sys.positions);

  // Backbone carbonyl planarity impropers (C; CA, N_next, O).
  for (int r = 0; r + 1 < kProteinResidues; ++r) {
    md::Improper im;
    im.i = layout.c_index[static_cast<std::size_t>(r)];
    im.j = layout.ca_index[static_cast<std::size_t>(r)];
    im.k = layout.n_index[static_cast<std::size_t>(r + 1)];
    im.l = layout.o_index[static_cast<std::size_t>(r)];
    im.kpsi = 45.0;
    // psi0 from the as-built geometry: recompute with the same torsion
    // convention used by the bonded kernel.
    {
      const auto& p = sys.positions;
      const Vec3 b1 = box.min_image(p[static_cast<std::size_t>(im.j)] -
                                    p[static_cast<std::size_t>(im.i)]);
      const Vec3 b2 = box.min_image(p[static_cast<std::size_t>(im.k)] -
                                    p[static_cast<std::size_t>(im.j)]);
      const Vec3 b3 = box.min_image(p[static_cast<std::size_t>(im.l)] -
                                    p[static_cast<std::size_t>(im.k)]);
      const Vec3 m = util::cross(b1, b2);
      const Vec3 nn = util::cross(b2, b3);
      im.psi0 = std::atan2(
          util::dot(util::cross(m, nn), b2) / util::norm(b2),
          util::dot(m, nn));
    }
    sys.topo.impropers().push_back(im);
  }
  (void)protein_end;

  sys.topo.build_exclusions();
  return sys;
}

BuiltSystem build_water_box(int waters_per_side, double spacing) {
  REPRO_REQUIRE(waters_per_side >= 1, "need at least one water");
  Rng rng(util::mix_seed(7, 0x77626f78));
  const int n = waters_per_side;
  const double len = n * spacing;
  const Box box(len, len, len);

  Plan plan;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      for (int z = 0; z < n; ++z) {
        const Vec3 origin{(x + 0.5) * spacing, (y + 0.5) * spacing,
                          (z + 0.5) * spacing};
        add_water(plan, rng, origin);
      }
    }
  }

  BuiltSystem sys(static_cast<int>(plan.atoms.size()), box, "water-box");
  for (std::size_t i = 0; i < plan.atoms.size(); ++i) {
    const auto& a = plan.atoms[i];
    sys.topo.atom(static_cast<int>(i)) =
        md::AtomParams{a.mass, a.charge, a.eps, a.rmin_half};
    sys.positions.push_back(a.pos);
  }
  for (const auto& [i, j] : plan.bonds) {
    md::Bond b;
    b.i = i;
    b.j = j;
    b.kb = 450.0;
    sys.topo.bonds().push_back(b);
  }
  derive_bonded_terms(sys.topo, box, sys.positions);
  sys.topo.build_exclusions();
  return sys;
}

BuiltSystem build_random_charges(int n, const md::Box& box,
                                 std::uint64_t seed) {
  REPRO_REQUIRE(n % 2 == 0, "random charge system must be even (neutral)");
  Rng rng(util::mix_seed(seed, 0x63686172));
  BuiltSystem sys(n, box, "random-charges");
  for (int i = 0; i < n; ++i) {
    const double q = (i % 2 == 0 ? 1.0 : -1.0) * rng.uniform(0.3, 1.0);
    sys.topo.atom(i) = md::AtomParams{10.0, q, 0.0, 1.0};
    sys.positions.push_back(Vec3{rng.uniform(0, box.lx()),
                                 rng.uniform(0, box.ly()),
                                 rng.uniform(0, box.lz())});
  }
  // Enforce exact neutrality (pairs are sampled with unequal magnitudes).
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += sys.topo.atom(i).charge;
  for (int i = 0; i < n; ++i) {
    sys.topo.atom(i).charge -= total / n;
  }
  sys.topo.build_exclusions();
  return sys;
}

BuiltSystem build_test_chain(int natoms, std::uint64_t seed) {
  REPRO_REQUIRE(natoms >= 4, "chain needs at least 4 atoms");
  Rng rng(util::mix_seed(seed, 0x636861696e));
  const Box box(100.0, 100.0, 100.0);
  BuiltSystem sys(natoms, box, "test-chain");

  Vec3 at{50.0, 50.0, 50.0};
  Vec3 dir{1.0, 0.0, 0.0};
  for (int i = 0; i < natoms; ++i) {
    sys.topo.atom(i) = md::AtomParams{12.011, (i % 2 ? 0.1 : -0.1), 0.08, 2.0};
    sys.positions.push_back(at);
    dir = util::normalized(dir + random_unit(rng) * 0.7);
    at += dir * 1.52;
  }
  for (int i = 0; i + 1 < natoms; ++i) {
    md::Bond b;
    b.i = i;
    b.j = i + 1;
    b.kb = 300.0;
    sys.topo.bonds().push_back(b);
  }
  derive_bonded_terms(sys.topo, box, sys.positions);
  if (natoms >= 4) {
    md::Improper im;
    im.i = 0;
    im.j = 1;
    im.k = 2;
    im.l = 3;
    im.kpsi = 40.0;
    im.psi0 = 0.3;
    sys.topo.impropers().push_back(im);
  }
  sys.topo.build_exclusions();
  return sys;
}

}  // namespace repro::sysbuild
