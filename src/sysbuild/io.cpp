#include "sysbuild/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace repro::sysbuild {

namespace {

// Full round-trip precision for doubles.
std::ostream& prec(std::ostream& out) {
  return out << std::setprecision(17);
}

std::string expect_section(std::istream& in, const std::string& name) {
  std::string token;
  in >> token;
  REPRO_REQUIRE(in.good() && token == name,
                "system file: expected section '" + name + "', got '" +
                    token + "'");
  return token;
}

}  // namespace

void write_system(std::ostream& out, const BuiltSystem& sys) {
  prec(out);
  out << "RSYS 1\n";
  out << "name " << (sys.name.empty() ? "unnamed" : sys.name) << "\n";
  out << "box " << sys.box.lx() << " " << sys.box.ly() << " " << sys.box.lz()
      << "\n";
  out << "atoms " << sys.topo.natoms() << "\n";
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    const md::AtomParams& a = sys.topo.atom(i);
    const util::Vec3& r = sys.positions[static_cast<std::size_t>(i)];
    out << a.mass << " " << a.charge << " " << a.eps << " " << a.rmin_half
        << " " << r.x << " " << r.y << " " << r.z << "\n";
  }
  out << "bonds " << sys.topo.bonds().size() << "\n";
  for (const auto& b : sys.topo.bonds()) {
    out << b.i << " " << b.j << " " << b.kb << " " << b.b0 << "\n";
  }
  out << "angles " << sys.topo.angles().size() << "\n";
  for (const auto& a : sys.topo.angles()) {
    out << a.i << " " << a.j << " " << a.k << " " << a.ktheta << " "
        << a.theta0 << " " << a.kub << " " << a.s0 << "\n";
  }
  out << "dihedrals " << sys.topo.dihedrals().size() << "\n";
  for (const auto& d : sys.topo.dihedrals()) {
    out << d.i << " " << d.j << " " << d.k << " " << d.l << " " << d.kchi
        << " " << d.n << " " << d.delta << "\n";
  }
  out << "impropers " << sys.topo.impropers().size() << "\n";
  for (const auto& im : sys.topo.impropers()) {
    out << im.i << " " << im.j << " " << im.k << " " << im.l << " "
        << im.kpsi << " " << im.psi0 << "\n";
  }
  out << "end\n";
}

void save_system(const std::string& path, const BuiltSystem& sys) {
  std::ofstream out(path);
  REPRO_REQUIRE(out.good(), "cannot open system file for writing: " + path);
  write_system(out, sys);
  REPRO_REQUIRE(out.good(), "system file write failed: " + path);
}

BuiltSystem read_system(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  REPRO_REQUIRE(magic == "RSYS" && version == 1,
                "not an RSYS version-1 system file");
  expect_section(in, "name");
  std::string name;
  in >> name;
  expect_section(in, "box");
  double lx, ly, lz;
  in >> lx >> ly >> lz;
  expect_section(in, "atoms");
  int natoms = 0;
  in >> natoms;
  REPRO_REQUIRE(in.good() && natoms > 0, "system file: bad atom count");

  BuiltSystem sys(natoms, md::Box(lx, ly, lz), name);
  sys.positions.resize(static_cast<std::size_t>(natoms));
  for (int i = 0; i < natoms; ++i) {
    md::AtomParams& a = sys.topo.atom(i);
    util::Vec3& r = sys.positions[static_cast<std::size_t>(i)];
    in >> a.mass >> a.charge >> a.eps >> a.rmin_half >> r.x >> r.y >> r.z;
  }
  expect_section(in, "bonds");
  std::size_t count = 0;
  in >> count;
  for (std::size_t t = 0; t < count; ++t) {
    md::Bond b;
    in >> b.i >> b.j >> b.kb >> b.b0;
    sys.topo.bonds().push_back(b);
  }
  expect_section(in, "angles");
  in >> count;
  for (std::size_t t = 0; t < count; ++t) {
    md::Angle a;
    in >> a.i >> a.j >> a.k >> a.ktheta >> a.theta0 >> a.kub >> a.s0;
    sys.topo.angles().push_back(a);
  }
  expect_section(in, "dihedrals");
  in >> count;
  for (std::size_t t = 0; t < count; ++t) {
    md::Dihedral d;
    in >> d.i >> d.j >> d.k >> d.l >> d.kchi >> d.n >> d.delta;
    sys.topo.dihedrals().push_back(d);
  }
  expect_section(in, "impropers");
  in >> count;
  for (std::size_t t = 0; t < count; ++t) {
    md::Improper im;
    in >> im.i >> im.j >> im.k >> im.l >> im.kpsi >> im.psi0;
    sys.topo.impropers().push_back(im);
  }
  expect_section(in, "end");
  REPRO_REQUIRE(!in.fail(), "system file: truncated or malformed");
  sys.topo.build_exclusions();
  return sys;
}

BuiltSystem load_system(const std::string& path) {
  std::ifstream in(path);
  REPRO_REQUIRE(in.good(), "cannot open system file for reading: " + path);
  return read_system(in);
}

namespace {

const char* element_from_mass(double mass) {
  if (mass < 2.0) return " H";
  if (mass < 13.0) return " C";
  if (mass < 15.0) return " N";
  if (mass < 17.0) return " O";
  if (mass < 33.0) return " S";
  return " X";
}

}  // namespace

void write_pdb(std::ostream& out, const BuiltSystem& sys) {
  char line[96];
  std::snprintf(line, sizeof(line),
                "CRYST1%9.3f%9.3f%9.3f  90.00  90.00  90.00 P 1\n",
                sys.box.lx(), sys.box.ly(), sys.box.lz());
  out << line;
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    const util::Vec3& r = sys.positions[static_cast<std::size_t>(i)];
    const char* element = element_from_mass(sys.topo.atom(i).mass);
    // PDB atom serials are 5 columns wide; wrap like the big-system tools.
    std::snprintf(line, sizeof(line),
                  "ATOM  %5d %2s   MOL A   1    %8.3f%8.3f%8.3f  1.00  "
                  "0.00          %2s\n",
                  (i % 99999) + 1, element + 1, r.x, r.y, r.z, element);
    out << line;
  }
  // CONECT records only fit 5-digit serials; emit while within range.
  for (const auto& b : sys.topo.bonds()) {
    if (b.i >= 99999 || b.j >= 99999) continue;
    std::snprintf(line, sizeof(line), "CONECT%5d%5d\n", b.i + 1, b.j + 1);
    out << line;
  }
  out << "END\n";
}

void save_pdb(const std::string& path, const BuiltSystem& sys) {
  std::ofstream out(path);
  REPRO_REQUIRE(out.good(), "cannot open PDB file for writing: " + path);
  write_pdb(out, sys);
  REPRO_REQUIRE(out.good(), "PDB write failed: " + path);
}

}  // namespace repro::sysbuild
