// Text serialization of built systems — a PSF/CRD-flavoured format so a
// generated system can be exported, inspected, version-controlled, and
// re-imported bit-exactly (topology and parameters included).
#pragma once

#include <iosfwd>
#include <string>

#include "sysbuild/builder.hpp"

namespace repro::sysbuild {

// Writes the full system (box, atoms with parameters, bonded terms,
// positions) in the "RSYS 1" text format.
void write_system(std::ostream& out, const BuiltSystem& sys);
void save_system(const std::string& path, const BuiltSystem& sys);

// Reads a system previously written by write_system. Exclusions are
// rebuilt from the bond list.
BuiltSystem read_system(std::istream& in);
BuiltSystem load_system(const std::string& path);

// Exports ATOM/CONECT records in PDB format for visualization tools.
// Element is guessed from the mass; the chain is a single segment.
void write_pdb(std::ostream& out, const BuiltSystem& sys);
void save_pdb(const std::string& path, const BuiltSystem& sys);

}  // namespace repro::sysbuild
