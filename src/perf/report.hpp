// Aggregation of per-rank recorders into run-level results.
#pragma once

#include <vector>

#include "perf/recorder.hpp"
#include "util/stats.hpp"

namespace repro::perf {

// Communication-speed statistics per node (Figure 7): for every MD step and
// node, speed = bytes moved by the node's ranks / their transfer time.
struct CommSpeedStats {
  double avg_mb_per_s = 0.0;
  double min_mb_per_s = 0.0;
  double max_mb_per_s = 0.0;
  std::size_t samples = 0;
};

struct RunBreakdown {
  // Wall clock = max over ranks of the component's total (the slowest rank
  // determines the observed time, as with real wall-clock timing).
  Breakdown classic_wall;
  Breakdown pme_wall;
  // Mean over ranks, used for the percentage charts (the paper reports one
  // percentage split per configuration).
  Breakdown classic_mean;
  Breakdown pme_mean;

  Breakdown total_wall() const { return classic_wall + pme_wall; }
  Breakdown total_mean() const { return classic_mean + pme_mean; }

  CommSpeedStats comm_speed;
  double total_bytes = 0.0;
  int nranks = 1;
};

// Aggregates rank recorders; `cpus_per_node` controls how ranks are grouped
// into nodes for the per-node communication-speed statistics.
RunBreakdown aggregate(const std::vector<RankRecorder>& recorders,
                       int cpus_per_node);

}  // namespace repro::perf
