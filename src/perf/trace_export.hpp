// Chrome trace-event JSON export of per-rank timelines.
//
// Serializes the virtual-time timelines into the Trace Event Format that
// chrome://tracing and Perfetto (ui.perfetto.dev) load directly: one track
// (tid) per rank, one complete ("ph":"X") slice per recorded interval,
// color-coded by kind (computation / communication / synchronization) and
// carrying component, kind, MD step and operation label in the slice args.
// Virtual seconds are exported as trace microseconds.
#pragma once

#include <string>
#include <vector>

#include "perf/metrics.hpp"
#include "perf/timeline.hpp"

namespace repro::perf {

// Renders the whole trace as one JSON object ({"traceEvents": [...], ...}).
// Timeline index is used as the rank when a timeline has no rank assigned.
// When `faults` is non-null and enabled, a global instant event carrying
// the injected-fault counters is added at t=0 so the perturbation context
// is visible alongside the slices.
std::string chrome_trace_json(const std::vector<Timeline>& timelines,
                              const FaultMetrics* faults = nullptr);

// Writes chrome_trace_json() to `path`. Throws util::Error on I/O failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<Timeline>& timelines,
                        const FaultMetrics* faults = nullptr);

}  // namespace repro::perf
