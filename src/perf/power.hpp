// Per-phase energy-to-solution model.
//
// The paper's clusters traded machine cost against time-to-solution; the
// natural third axis is energy. This model converts a run's virtual-time
// accounting into joules with the standard two-component abstraction:
//
//   E = P_static * nodes * makespan                      (idle/leakage draw)
//     + sum_phase P_dyn(phase) * rank_seconds(phase)     (active compute)
//
// Static power is charged per node for the whole makespan (a node burns
// its idle wattage whether its ranks are waiting or working). Dynamic
// power is charged per rank-second of recorded phase time, with optional
// per-phase overrides (e.g. the FFT's transpose phases are memory-bound
// and draw less than the pair loop's FPU-saturated watts).
//
// The model is a pure post-processing step over RunMetrics::phase_seconds
// and the makespan — arming it cannot perturb the simulated run.
#pragma once

#include <map>
#include <string>

namespace repro::perf {

struct PowerModel {
  double static_watts_per_node = 0.0;
  double dynamic_watts = 0.0;  // default draw for phases without an override
  std::map<std::string, double> phase_watts;
};

// Round-trips parse_power_spec: "static=S,dynamic=D[,phase:NAME=W]...".
std::string to_string(const PowerModel& model);

// Parses "static=S,dynamic=D[,phase:NAME=W]..." (watts, non-negative
// finite decimals; both static= and dynamic= are required, phase
// overrides may repeat with distinct names). Throws util::Error on
// anything else — trailing garbage, duplicate keys, negative watts.
PowerModel parse_power_spec(const std::string& text);

}  // namespace repro::perf
