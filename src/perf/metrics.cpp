#include "perf/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace repro::perf {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void emit_breakdown(std::ostringstream& os, const char* key,
                    const Breakdown& b) {
  os << "\"" << key << "\":{\"comp\":" << num(b.comp)
     << ",\"comm\":" << num(b.comm) << ",\"sync\":" << num(b.sync)
     << ",\"total\":" << num(b.total()) << "}";
}

}  // namespace

double RunMetrics::mean_queue_wait() const {
  double wait = 0.0;
  std::uint64_t n = 0;
  for (const auto& r : resources) {
    wait += r.queue_wait;
    n += r.acquisitions;
  }
  return n > 0 ? wait / static_cast<double>(n) : 0.0;
}

double RunMetrics::max_queue_wait() const {
  double m = 0.0;
  for (const auto& r : resources) m = std::max(m, r.max_queue_wait);
  return m;
}

double RunMetrics::total_stall_time() const {
  double s = 0.0;
  for (const auto& c : channels) s += c.stall_time;
  return s;
}

const ResourceMetrics* RunMetrics::incast_hot_spot() const {
  const ResourceMetrics* hot = nullptr;
  for (const auto& r : resources) {
    if (r.name.find("nic_rx") == std::string::npos) continue;
    if (r.acquisitions == 0) continue;
    if (hot == nullptr || r.queue_wait > hot->queue_wait) hot = &r;
  }
  return hot;
}

std::string metrics_json(const RunMetrics& metrics) {
  std::ostringstream os;
  os << "{\n";
  os << "\"nranks\":" << metrics.breakdown.nranks << ",\n";
  os << "\"makespan_s\":" << num(metrics.makespan) << ",\n";

  os << "\"breakdown\":{";
  emit_breakdown(os, "classic_wall", metrics.breakdown.classic_wall);
  os << ",";
  emit_breakdown(os, "pme_wall", metrics.breakdown.pme_wall);
  os << ",";
  emit_breakdown(os, "classic_mean", metrics.breakdown.classic_mean);
  os << ",";
  emit_breakdown(os, "pme_mean", metrics.breakdown.pme_mean);
  os << ",";
  emit_breakdown(os, "total_wall", metrics.breakdown.total_wall());
  os << "},\n";

  os << "\"comm_speed_mb_per_s\":{\"avg\":"
     << num(metrics.breakdown.comm_speed.avg_mb_per_s)
     << ",\"min\":" << num(metrics.breakdown.comm_speed.min_mb_per_s)
     << ",\"max\":" << num(metrics.breakdown.comm_speed.max_mb_per_s)
     << ",\"samples\":" << metrics.breakdown.comm_speed.samples << "},\n";
  os << "\"total_bytes\":" << num(metrics.breakdown.total_bytes) << ",\n";

  os << "\"resources\":[";
  for (std::size_t i = 0; i < metrics.resources.size(); ++i) {
    const auto& r = metrics.resources[i];
    if (i > 0) os << ",";
    os << "\n{\"name\":\"" << json_escape(r.name) << "\""
       << ",\"busy_s\":" << num(r.busy_time)
       << ",\"utilization\":" << num(r.utilization)
       << ",\"queue_wait_s\":" << num(r.queue_wait)
       << ",\"max_queue_wait_s\":" << num(r.max_queue_wait)
       << ",\"acquisitions\":" << r.acquisitions << "}";
  }
  os << "\n],\n";

  os << "\"channels\":[";
  for (std::size_t i = 0; i < metrics.channels.size(); ++i) {
    const auto& c = metrics.channels[i];
    if (i > 0) os << ",";
    os << "\n{\"src\":" << c.src << ",\"dst\":" << c.dst
       << ",\"messages\":" << c.messages << ",\"bytes\":" << num(c.bytes)
       << ",\"stall_s\":" << num(c.stall_time)
       << ",\"wire_s\":" << num(c.wire_time) << "}";
  }
  os << "\n],\n";

  if (metrics.faults.enabled) {
    const FaultMetrics& f = metrics.faults;
    os << "\"faults\":{"
       << "\"packets_lost\":" << f.packets_lost
       << ",\"retransmits\":" << f.retransmits
       << ",\"retransmitted_bytes\":" << num(f.retransmitted_bytes)
       << ",\"retransmit_delay_s\":" << num(f.retransmit_delay)
       << ",\"degraded_messages\":" << f.degraded_messages
       << ",\"degradation_delay_s\":" << num(f.degradation_delay)
       << ",\"noise_bursts\":" << f.noise_bursts
       << ",\"noise_delay_s\":" << num(f.noise_delay)
       << ",\"straggler_delay_s\":" << num(f.straggler_delay)
       << ",\"stall_events\":" << f.stall_events
       << ",\"stall_delay_s\":" << num(f.stall_delay)
       << ",\"total_delay_s\":" << num(f.total_delay())
       << ",\"absorbed_delay_s\":{\"classic\":" << num(f.absorbed_classic)
       << ",\"pme\":" << num(f.absorbed_pme)
       << ",\"other\":" << num(f.absorbed_other) << "}},\n";
  }

  if (!metrics.phase_seconds.empty()) {
    os << "\"phases\":{";
    bool first = true;
    for (const auto& [name, seconds] : metrics.phase_seconds) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":" << num(seconds);
    }
    os << "},\n";
  }

  if (metrics.power.enabled) {
    const PowerMetrics& pw = metrics.power;
    os << "\"power\":{"
       << "\"static_watts_per_node\":" << num(pw.static_watts_per_node)
       << ",\"dynamic_watts\":" << num(pw.dynamic_watts)
       << ",\"nodes\":" << pw.nodes
       << ",\"static_joules\":" << num(pw.static_joules)
       << ",\"dynamic_joules\":" << num(pw.dynamic_joules)
       << ",\"total_joules\":" << num(pw.total_joules())
       << ",\"phase_joules\":{";
    bool first = true;
    for (const auto& [name, joules] : pw.phase_joules) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":" << num(joules);
    }
    os << "}},\n";
  }

  if (!metrics.phase_imbalance.empty()) {
    auto emit_imbalance = [&os](const ImbalanceMetrics& im) {
      os << "{\"max_s\":" << num(im.max_seconds)
         << ",\"mean_s\":" << num(im.mean_seconds)
         << ",\"factor\":" << num(im.factor()) << "}";
    };
    os << "\"imbalance\":{\"compute\":";
    emit_imbalance(metrics.compute_imbalance);
    os << ",\"phases\":{";
    bool first = true;
    for (const auto& [name, im] : metrics.phase_imbalance) {
      if (!first) os << ",";
      first = false;
      os << "\"" << json_escape(name) << "\":";
      emit_imbalance(im);
    }
    os << "}},\n";
  }

  os << "\"summary\":{"
     << "\"mean_queue_wait_s\":" << num(metrics.mean_queue_wait())
     << ",\"max_queue_wait_s\":" << num(metrics.max_queue_wait())
     << ",\"total_stall_s\":" << num(metrics.total_stall_time());
  if (const ResourceMetrics* hot = metrics.incast_hot_spot()) {
    os << ",\"incast_hot_spot\":{\"name\":\"" << json_escape(hot->name)
       << "\",\"queue_wait_s\":" << num(hot->queue_wait)
       << ",\"utilization\":" << num(hot->utilization) << "}";
  }
  os << "}\n";
  os << "}\n";
  return os.str();
}

void write_metrics(const std::string& path, const RunMetrics& metrics) {
  std::ofstream out(path);
  REPRO_REQUIRE(out.good(), "cannot open metrics output file: " + path);
  out << metrics_json(metrics);
  REPRO_REQUIRE(out.good(), "failed writing metrics output file: " + path);
}

}  // namespace repro::perf
