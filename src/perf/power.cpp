#include "perf/power.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace repro::perf {

namespace {

// Strict non-negative watts parse (same discipline as the decomposition
// spec's integer parser): std::strtod accepts trailing garbage and
// locale-dependent forms — require a fully consumed, finite, non-negative
// plain decimal instead.
double parse_watts(const std::string& value, const std::string& what,
                   const std::string& text) {
  REPRO_REQUIRE(!value.empty() && value.find_first_not_of("0123456789.") ==
                                      std::string::npos,
                "bad " + what + " in power spec (expected a non-negative "
                "decimal watt value): " + text);
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  REPRO_REQUIRE(end == value.c_str() + value.size() && std::isfinite(v) &&
                    v >= 0.0,
                "bad " + what + " in power spec (expected a non-negative "
                "decimal watt value): " + text);
  return v;
}

std::string format_watts(double w) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", w);
  return buf;
}

}  // namespace

std::string to_string(const PowerModel& model) {
  std::string out = "static=" + format_watts(model.static_watts_per_node) +
                    ",dynamic=" + format_watts(model.dynamic_watts);
  for (const auto& [name, watts] : model.phase_watts) {
    out += ",phase:" + name + "=" + format_watts(watts);
  }
  return out;
}

PowerModel parse_power_spec(const std::string& text) {
  PowerModel model;
  bool seen_static = false;
  bool seen_dynamic = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t next = text.find(',', pos);
    const std::string opt = text.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next == std::string::npos ? text.size() + 1 : next + 1;
    if (opt.rfind("static=", 0) == 0) {
      REPRO_REQUIRE(!seen_static, "duplicate static= in power spec: " + text);
      seen_static = true;
      model.static_watts_per_node =
          parse_watts(opt.substr(7), "static node power", text);
    } else if (opt.rfind("dynamic=", 0) == 0) {
      REPRO_REQUIRE(!seen_dynamic,
                    "duplicate dynamic= in power spec: " + text);
      seen_dynamic = true;
      model.dynamic_watts =
          parse_watts(opt.substr(8), "dynamic power", text);
    } else if (opt.rfind("phase:", 0) == 0) {
      const std::size_t eq = opt.find('=');
      const std::string name =
          eq == std::string::npos ? "" : opt.substr(6, eq - 6);
      REPRO_REQUIRE(eq != std::string::npos && !name.empty(),
                    "bad phase override '" + opt +
                        "' in power spec (expected phase:NAME=W): " + text);
      REPRO_REQUIRE(model.phase_watts.find(name) == model.phase_watts.end(),
                    "duplicate phase override '" + name +
                        "' in power spec: " + text);
      model.phase_watts[name] =
          parse_watts(opt.substr(eq + 1), "phase power", text);
    } else {
      util::fail("bad power option '" + opt +
                     "' (expected static=S,dynamic=D[,phase:NAME=W]...): " +
                     text,
                 __FILE__, __LINE__);
    }
  }
  REPRO_REQUIRE(seen_static && seen_dynamic,
                "power spec must set both static= and dynamic=: " + text);
  return model;
}

}  // namespace repro::perf
