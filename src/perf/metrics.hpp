// Run-level resource-utilization metrics and their JSON report.
//
// RunMetrics extends the paper's comp/comm/sync decomposition
// (perf::RunBreakdown) with the machine's view of the same run: how busy
// each simulated resource (NIC tx/rx links, interrupt CPUs) was, how long
// acquirers queued behind each other (incast hot-spots show up as inbound
// links with long queue waits), and per src→dst channel traffic counters.
// The JSON form is what `charmm_cluster_cli run --metrics-out=FILE` emits,
// so ablation benches can diff utilization profiles instead of just wall
// clocks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "perf/report.hpp"

namespace repro::perf {

// Snapshot of one sim::Resource at the end of a run.
struct ResourceMetrics {
  std::string name;
  double busy_time = 0.0;
  double queue_wait = 0.0;      // total time acquirers spent queued
  double max_queue_wait = 0.0;  // worst single wait
  std::uint64_t acquisitions = 0;
  double utilization = 0.0;  // busy_time / run makespan, in [0, 1]
};

// Traffic counters for one src→dst rank pair (only pairs that carried
// messages are reported).
struct ChannelMetrics {
  int src = 0;
  int dst = 0;
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double stall_time = 0.0;  // sender back-pressure (synchronization)
  double wire_time = 0.0;   // link occupancy
};

// Injected-fault counters of one run, mirroring net::FaultCounters
// without a dependency on the net layer. Only meaningful when the
// experiment armed a fault spec (enabled == true); disabled runs
// serialize without a "faults" key, so fault-free metrics JSON stays
// byte-identical to pre-fault-subsystem output.
struct FaultMetrics {
  bool enabled = false;
  std::uint64_t packets_lost = 0;
  std::uint64_t retransmits = 0;
  double retransmitted_bytes = 0.0;
  double retransmit_delay = 0.0;
  std::uint64_t degraded_messages = 0;
  double degradation_delay = 0.0;
  std::uint64_t noise_bursts = 0;
  double noise_delay = 0.0;
  double straggler_delay = 0.0;
  std::uint64_t stall_events = 0;
  double stall_delay = 0.0;
  // Injected delay attributed to the component that absorbed it.
  double absorbed_classic = 0.0;
  double absorbed_pme = 0.0;
  double absorbed_other = 0.0;

  double total_delay() const {
    return retransmit_delay + degradation_delay + noise_delay +
           straggler_delay + stall_delay;
  }
};

// Energy-to-solution of one run under a perf::PowerModel. Only
// meaningful when the experiment armed a power spec (enabled == true);
// disabled runs serialize without a "power" key, so power-free metrics
// JSON stays byte-identical to pre-power-model output.
struct PowerMetrics {
  bool enabled = false;
  double static_watts_per_node = 0.0;
  double dynamic_watts = 0.0;
  int nodes = 0;
  double static_joules = 0.0;   // static_watts_per_node * nodes * makespan
  double dynamic_joules = 0.0;  // sum of phase_joules
  // Joules per schedule phase: watts(phase) * rank-seconds in the phase.
  std::map<std::string, double> phase_joules;

  double total_joules() const { return static_joules + dynamic_joules; }
};

// Load imbalance of one per-rank time series: max vs mean of the ranks'
// seconds. factor() == 1.0 is perfect balance, and its reciprocal is the
// efficiency ceiling of a bulk-synchronous step (every rank waits for
// the slowest, so efficiency <= mean/max).
struct ImbalanceMetrics {
  double max_seconds = 0.0;
  double mean_seconds = 0.0;  // mean over all ranks, idle ones included
  double factor() const {
    return mean_seconds > 0.0 ? max_seconds / mean_seconds : 0.0;
  }
};

struct RunMetrics {
  RunBreakdown breakdown;
  double makespan = 0.0;  // slowest rank's total virtual time
  std::vector<ResourceMetrics> resources;
  std::vector<ChannelMetrics> channels;
  FaultMetrics faults;  // enabled only when a FaultSpec was armed
  // Virtual time summed across ranks per schedule phase (the labels the
  // decomposition sets via perf::RankRecorder::set_phase, e.g. "bonded",
  // "fold", "pme_recip"). Empty when the workload sets no phases.
  std::map<std::string, double> phase_seconds;
  // Per-rank load-imbalance factors: compute (busy) time overall, and
  // total time inside each schedule phase. Populated only for multi-rank
  // runs that set phase labels; empty phase_imbalance leaves the JSON
  // report byte-identical to the pre-imbalance output.
  ImbalanceMetrics compute_imbalance;
  std::map<std::string, ImbalanceMetrics> phase_imbalance;
  // Energy-to-solution under the armed power model (enabled only when an
  // experiment set ExperimentSpec::power).
  PowerMetrics power;

  // --- derived summaries ------------------------------------------------
  double mean_queue_wait() const;
  double max_queue_wait() const;
  double total_stall_time() const;
  // The most contended inbound link (largest queue wait among resources
  // whose name contains "nic_rx") — the incast hot-spot. nullptr when no
  // inbound link saw traffic.
  const ResourceMetrics* incast_hot_spot() const;
};

// Serializes the metrics (breakdown, comm speed, resources, channels and
// the derived summaries) as a JSON object.
std::string metrics_json(const RunMetrics& metrics);

// Writes metrics_json() to `path`. Throws util::Error on I/O failure.
void write_metrics(const std::string& path, const RunMetrics& metrics);

}  // namespace repro::perf
