#include "perf/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace repro::perf {

namespace {

// Escapes a string for inclusion in a JSON string literal. Labels are
// static identifiers today, but the exporter must stay valid JSON for any
// input.
std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Numeric JSON field (%.9g keeps full useful precision and stays a valid
// JSON number).
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// chrome://tracing reserved color names; Perfetto ignores them but still
// loads the file. Chosen so overheads stand out: computation green,
// communication orange, synchronization red.
const char* color_for(Kind k) {
  switch (k) {
    case Kind::kComp:
      return "thread_state_running";
    case Kind::kComm:
      return "thread_state_iowait";
    case Kind::kSync:
      return "terrible";
  }
  return "generic_work";
}

}  // namespace

std::string chrome_trace_json(const std::vector<Timeline>& timelines,
                              const FaultMetrics* faults) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
       "\"args\":{\"name\":\"simulated cluster\"}}");
  if (faults != nullptr && faults->enabled) {
    std::ostringstream ev;
    ev << "{\"ph\":\"i\",\"name\":\"injected faults\",\"s\":\"g\""
       << ",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{"
       << "\"packets_lost\":" << faults->packets_lost
       << ",\"retransmits\":" << faults->retransmits
       << ",\"retransmitted_bytes\":" << num(faults->retransmitted_bytes)
       << ",\"total_delay_s\":" << num(faults->total_delay())
       << ",\"absorbed_classic_s\":" << num(faults->absorbed_classic)
       << ",\"absorbed_pme_s\":" << num(faults->absorbed_pme)
       << ",\"absorbed_other_s\":" << num(faults->absorbed_other) << "}}";
    emit(ev.str());
  }
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    const int rank = timelines[i].rank() >= 0 ? timelines[i].rank()
                                              : static_cast<int>(i);
    std::ostringstream ev;
    ev << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << rank
       << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
    emit(ev.str());
    ev.str("");
    ev << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":"
       << rank << ",\"args\":{\"sort_index\":" << rank << "}}";
    emit(ev.str());
  }

  constexpr double kToMicros = 1e6;  // virtual seconds -> trace microseconds
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    const int rank = timelines[i].rank() >= 0 ? timelines[i].rank()
                                              : static_cast<int>(i);
    for (const auto& e : timelines[i].events()) {
      std::ostringstream ev;
      const char* label = (e.label != nullptr && e.label[0] != '\0')
                              ? e.label
                              : to_string(e.kind);
      ev << "{\"ph\":\"X\",\"name\":\"" << json_escape(label) << "\""
         << ",\"cat\":\"" << to_string(e.component) << ","
         << to_string(e.kind) << "\""
         << ",\"ts\":" << num(e.begin * kToMicros)
         << ",\"dur\":" << num((e.end - e.begin) * kToMicros)
         << ",\"pid\":0,\"tid\":" << rank
         << ",\"cname\":\"" << color_for(e.kind) << "\""
         << ",\"args\":{\"component\":\"" << to_string(e.component) << "\""
         << ",\"kind\":\"" << to_string(e.kind) << "\""
         << ",\"step\":" << e.step << "}}";
      emit(ev.str());
    }
  }
  os << "\n]}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Timeline>& timelines,
                        const FaultMetrics* faults) {
  std::ofstream out(path);
  REPRO_REQUIRE(out.good(), "cannot open trace output file: " + path);
  out << chrome_trace_json(timelines, faults);
  REPRO_REQUIRE(out.good(), "failed writing trace output file: " + path);
}

}  // namespace repro::perf
