#include "perf/report.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace repro::perf {

const char* to_string(Component c) {
  switch (c) {
    case Component::kClassic:
      return "classic";
    case Component::kPme:
      return "pme";
    case Component::kOther:
      return "other";
  }
  return "?";
}

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kComp:
      return "comp";
    case Kind::kComm:
      return "comm";
    case Kind::kSync:
      return "sync";
  }
  return "?";
}

namespace {

// "Wall" semantics: the component is as slow as its slowest rank; we report
// that rank's own comp/comm/sync split so the parts always sum to the
// total (taking per-kind maxima across ranks would double-count skew).
void max_into(Breakdown& acc, const Breakdown& b) {
  if (b.total() > acc.total()) acc = b;
}

}  // namespace

RunBreakdown aggregate(const std::vector<RankRecorder>& recorders,
                       int cpus_per_node) {
  REPRO_REQUIRE(!recorders.empty(), "no recorders to aggregate");
  REPRO_REQUIRE(cpus_per_node >= 1, "bad cpus_per_node");

  RunBreakdown out;
  out.nranks = static_cast<int>(recorders.size());

  for (const auto& rec : recorders) {
    const Breakdown c = rec.breakdown(Component::kClassic);
    const Breakdown p = rec.breakdown(Component::kPme);
    max_into(out.classic_wall, c);
    max_into(out.pme_wall, p);
    out.classic_mean += c;
    out.pme_mean += p;
    out.total_bytes += rec.total_bytes();
  }
  const double inv_n = 1.0 / static_cast<double>(recorders.size());
  out.classic_mean.comp *= inv_n;
  out.classic_mean.comm *= inv_n;
  out.classic_mean.sync *= inv_n;
  out.pme_mean.comp *= inv_n;
  out.pme_mean.comm *= inv_n;
  out.pme_mean.sync *= inv_n;

  // Per-node per-step communication speed. A node's sample for a step sums
  // the bytes and transfer times of all its ranks.
  const int nranks = out.nranks;
  const int nnodes = (nranks + cpus_per_node - 1) / cpus_per_node;
  std::size_t nsteps = recorders.front().steps().size();
  for (const auto& rec : recorders) {
    nsteps = std::min(nsteps, rec.steps().size());
  }
  util::RunningStats stats;
  for (std::size_t s = 0; s < nsteps; ++s) {
    for (int node = 0; node < nnodes; ++node) {
      StepComm agg;
      for (int r = node * cpus_per_node;
           r < std::min(nranks, (node + 1) * cpus_per_node); ++r) {
        agg.bytes += recorders[static_cast<std::size_t>(r)].steps()[s].bytes;
        agg.comm_time +=
            recorders[static_cast<std::size_t>(r)].steps()[s].comm_time;
      }
      if (agg.bytes > 0.0 && agg.comm_time > 0.0) {
        stats.add(agg.speed_mb_per_s());
      }
    }
  }
  out.comm_speed.samples = stats.count();
  out.comm_speed.avg_mb_per_s = stats.mean();
  out.comm_speed.min_mb_per_s = stats.min();
  out.comm_speed.max_mb_per_s = stats.max();
  return out;
}

}  // namespace repro::perf
