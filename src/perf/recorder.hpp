// Virtual-time accounting in the paper's terms.
//
// The paper decomposes each component of the energy calculation (classic,
// PME) into:
//   computation     — CPU time in the force/energy kernels,
//   communication   — time spent transferring data (host protocol work,
//                     copies, wire occupancy charged to the process),
//   synchronization — time spent in control transfer: barriers, waiting
//                     for matching messages, back-pressure stalls.
//
// Every simulated rank owns a RankRecorder. The application marks which
// component is active; the SimMPI layer classifies its own costs as
// communication or synchronization; kernels charge computation.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace repro::perf {

enum class Component : int { kClassic = 0, kPme = 1, kOther = 2 };
enum class Kind : int { kComp = 0, kComm = 1, kSync = 2 };

inline constexpr int kNumComponents = 3;
inline constexpr int kNumKinds = 3;

const char* to_string(Component c);
const char* to_string(Kind k);

// One component's time split.
struct Breakdown {
  double comp = 0.0;
  double comm = 0.0;
  double sync = 0.0;

  double total() const { return comp + comm + sync; }
  double overhead() const { return comm + sync; }
  double overhead_fraction() const {
    const double t = total();
    return t > 0.0 ? overhead() / t : 0.0;
  }
  Breakdown& operator+=(const Breakdown& o) {
    comp += o.comp;
    comm += o.comm;
    sync += o.sync;
    return *this;
  }
  friend Breakdown operator+(Breakdown a, const Breakdown& b) {
    return a += b;
  }
};

// Communication volume/time of one rank during one MD step, the raw
// material for the paper's Figure 7 (per-node communication speed and its
// variability).
struct StepComm {
  double bytes = 0.0;
  double comm_time = 0.0;

  // MB/s as plotted by the paper (0 when the step had no transfer time).
  double speed_mb_per_s() const {
    return comm_time > 0.0 ? bytes / comm_time / 1.0e6 : 0.0;
  }
};

class Timeline;

class RankRecorder {
 public:
  void set_component(Component c) { current_ = c; }
  Component component() const { return current_; }

  // Optional phase attribution: while a phase label is set (a static
  // string naming a step of the decomposition's schedule, e.g. "fold",
  // "pme_recip"), all recorded time is additionally accumulated under
  // that name, and the communication layer tags timeline events with it
  // instead of the generic operation name. nullptr (the default) turns
  // attribution off, keeping pre-existing behaviour untouched.
  void set_phase(const char* name) { phase_ = name; }
  const char* phase() const { return phase_; }
  const std::map<std::string, double>& phase_times() const {
    return phase_times_;
  }

  // Optional timeline sink (see perf/timeline.hpp): when attached, the
  // communication layer also records each charged interval with its
  // virtual start/end time.
  void attach_timeline(Timeline* timeline) { timeline_ = timeline; }
  Timeline* timeline() const { return timeline_; }

  void record(Kind kind, double dt) {
    REPRO_REQUIRE(dt >= 0.0, "cannot record negative time");
    times_[static_cast<std::size_t>(current_)]
          [static_cast<std::size_t>(kind)] += dt;
    if (kind == Kind::kComm) step_.comm_time += dt;
    if (phase_ != nullptr) phase_times_[phase_] += dt;
  }

  // Books a back-pressure stall. Taxonomically the stall is control
  // transfer (the sender is blocked on the NIC queue draining), so it
  // lands in the synchronization column; but it still elapses *inside*
  // the data-transfer call, so it stays part of the step's transfer time
  // — Figure 7 measures per-node speed over time spent in transfer calls.
  void record_stall(double dt) {
    record(Kind::kSync, dt);
    step_.comm_time += dt;
  }

  void record_bytes(double bytes) {
    step_.bytes += bytes;
    total_bytes_ += bytes;
  }

  // Closes the current MD step's communication sample.
  void end_step() {
    steps_.push_back(step_);
    step_ = StepComm{};
  }

  // Index of the MD step currently being recorded (number of closed
  // steps); used to stamp timeline events with their step.
  int step_index() const { return static_cast<int>(steps_.size()); }

  double time(Component c, Kind k) const {
    return times_[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
  }
  Breakdown breakdown(Component c) const {
    return Breakdown{time(c, Kind::kComp), time(c, Kind::kComm),
                     time(c, Kind::kSync)};
  }
  Breakdown total_breakdown() const {
    Breakdown b;
    for (int c = 0; c < kNumComponents; ++c) {
      b += breakdown(static_cast<Component>(c));
    }
    return b;
  }

  const std::vector<StepComm>& steps() const { return steps_; }
  double total_bytes() const { return total_bytes_; }

 private:
  Component current_ = Component::kOther;
  const char* phase_ = nullptr;
  Timeline* timeline_ = nullptr;
  std::array<std::array<double, kNumKinds>, kNumComponents> times_{};
  std::map<std::string, double> phase_times_;
  StepComm step_;
  std::vector<StepComm> steps_;
  double total_bytes_ = 0.0;
};

// RAII helper to scope a phase label (see RankRecorder::set_phase).
class PhaseScope {
 public:
  PhaseScope(RankRecorder& rec, const char* name)
      : rec_(rec), saved_(rec.phase()) {
    rec_.set_phase(name);
  }
  ~PhaseScope() { rec_.set_phase(saved_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  RankRecorder& rec_;
  const char* saved_;
};

// RAII helper to scope a component region.
class ComponentScope {
 public:
  ComponentScope(RankRecorder& rec, Component c)
      : rec_(rec), saved_(rec.component()) {
    rec_.set_component(c);
  }
  ~ComponentScope() { rec_.set_component(saved_); }
  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

 private:
  RankRecorder& rec_;
  Component saved_;
};

}  // namespace repro::perf
