// Per-rank virtual-time timelines.
//
// When attached to a RankRecorder, every charged interval (computation,
// data transfer, synchronization) is also stored as a timeline event with
// its virtual start/end. The renderer turns the per-rank event streams
// into an ASCII Gantt chart — the visual form of the paper's
// computation / communication / synchronization decomposition, useful for
// seeing *where* in the step the overheads sit (e.g. the two PME
// transposes vs. the final force reduction).
#pragma once

#include <string>
#include <vector>

#include "perf/recorder.hpp"

namespace repro::perf {

struct TimelineEvent {
  double begin = 0.0;
  double end = 0.0;
  Component component = Component::kOther;
  Kind kind = Kind::kComp;
  // Metadata for structured export (see perf/trace_export.hpp): the MD
  // step the interval belongs to (-1 when unknown) and a short static
  // label naming the operation ("compute", "send", "stall", "recv").
  int step = -1;
  const char* label = "";
};

class Timeline {
 public:
  void add(double begin, double end, Component c, Kind k,
           const char* label = "", int step = -1) {
    if (end > begin) {
      events_.push_back(TimelineEvent{begin, end, c, k, step, label});
    }
  }
  const std::vector<TimelineEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  double span_end() const;

  // The rank this timeline belongs to (set by whoever owns the per-rank
  // timeline vector; -1 when unassigned).
  void set_rank(int rank) { rank_ = rank; }
  int rank() const { return rank_; }

 private:
  std::vector<TimelineEvent> events_;
  int rank_ = -1;
};

struct RenderOptions {
  int columns = 100;          // characters across the time axis
  double begin = 0.0;         // time window start
  double end = -1.0;          // window end (<0: max over timelines)
};

// Renders one row per rank. Glyphs: '#' computation, '=' communication,
// '~' synchronization, '.' idle/blocked outside recorded intervals. When
// several kinds fall into one column, the most severe (sync > comm > comp)
// wins, making overhead bands stand out.
std::string render_timelines(const std::vector<Timeline>& timelines,
                             const RenderOptions& options = {});

}  // namespace repro::perf
