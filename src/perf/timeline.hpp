// Per-rank virtual-time timelines.
//
// When attached to a RankRecorder, every charged interval (computation,
// data transfer, synchronization) is also stored as a timeline event with
// its virtual start/end. The renderer turns the per-rank event streams
// into an ASCII Gantt chart — the visual form of the paper's
// computation / communication / synchronization decomposition, useful for
// seeing *where* in the step the overheads sit (e.g. the two PME
// transposes vs. the final force reduction).
#pragma once

#include <string>
#include <vector>

#include "perf/recorder.hpp"

namespace repro::perf {

struct TimelineEvent {
  double begin = 0.0;
  double end = 0.0;
  Component component = Component::kOther;
  Kind kind = Kind::kComp;
};

class Timeline {
 public:
  void add(double begin, double end, Component c, Kind k) {
    if (end > begin) events_.push_back(TimelineEvent{begin, end, c, k});
  }
  const std::vector<TimelineEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  double span_end() const;

 private:
  std::vector<TimelineEvent> events_;
};

struct RenderOptions {
  int columns = 100;          // characters across the time axis
  double begin = 0.0;         // time window start
  double end = -1.0;          // window end (<0: max over timelines)
};

// Renders one row per rank. Glyphs: '#' computation, '=' communication,
// '~' synchronization, '.' idle/blocked outside recorded intervals. When
// several kinds fall into one column, the most severe (sync > comm > comp)
// wins, making overhead bands stand out.
std::string render_timelines(const std::vector<Timeline>& timelines,
                             const RenderOptions& options = {});

}  // namespace repro::perf
