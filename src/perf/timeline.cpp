#include "perf/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace repro::perf {

double Timeline::span_end() const {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.end);
  return end;
}

std::string render_timelines(const std::vector<Timeline>& timelines,
                             const RenderOptions& options) {
  REPRO_REQUIRE(options.columns > 0, "timeline needs at least one column");
  double end = options.end;
  if (end < 0.0) {
    for (const auto& t : timelines) end = std::max(end, t.span_end());
  }
  const double begin = options.begin;
  if (end <= begin) return "(empty timeline)\n";
  const double dt = (end - begin) / options.columns;

  auto severity = [](Kind k) {
    switch (k) {
      case Kind::kComp:
        return 1;
      case Kind::kComm:
        return 2;
      case Kind::kSync:
        return 3;
    }
    return 0;
  };
  auto glyph = [](int sev) {
    switch (sev) {
      case 1:
        return '#';
      case 2:
        return '=';
      case 3:
        return '~';
      default:
        return '.';
    }
  };

  std::ostringstream os;
  os << "time " << begin << " .. " << end << " s   ('#' comp, '=' comm, "
     << "'~' sync, '.' idle)\n";
  for (std::size_t r = 0; r < timelines.size(); ++r) {
    std::vector<int> cells(static_cast<std::size_t>(options.columns), 0);
    for (const auto& e : timelines[r].events()) {
      if (e.end <= begin || e.begin >= end) continue;
      const int c0 = std::clamp(
          static_cast<int>((e.begin - begin) / dt), 0, options.columns - 1);
      const int c1 = std::clamp(static_cast<int>((e.end - begin) / dt), c0,
                                options.columns - 1);
      for (int c = c0; c <= c1; ++c) {
        cells[static_cast<std::size_t>(c)] =
            std::max(cells[static_cast<std::size_t>(c)], severity(e.kind));
      }
    }
    os << "rank " << r << (r < 10 ? "  |" : " |");
    for (int cell : cells) os << glyph(cell);
    os << "|\n";
  }
  return os.str();
}

}  // namespace repro::perf
