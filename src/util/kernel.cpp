#include "util/kernel.hpp"

#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace repro::util {

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kSimd:
      return "simd";
  }
  return "?";
}

KernelKind parse_kernel_kind(std::string_view name) {
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "simd") return KernelKind::kSimd;
  throw Error("unknown kernel variant '" + std::string(name) +
              "' (expected scalar or simd)");
}

KernelKind default_kernel_kind() {
  if (const char* env = std::getenv("REPRO_KERNEL")) {
    return parse_kernel_kind(env);
  }
  return KernelKind::kScalar;
}

}  // namespace repro::util
