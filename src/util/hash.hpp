// Byte hashing for the kernel memoization caches (neighbor-list build,
// parallel-FFT local stages, bonded terms). The hash is only ever a cheap
// pre-filter: cache hits are decided by exact byte comparison of the full
// inputs, so a collision can cost a memcmp, never a wrong result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace repro::util {

// FNV-1a processed 8 bytes at a time (tail bytes folded one at a time).
// Not the canonical byte-wise FNV stream — a fixed, process-local variant
// chosen for speed on multi-megabyte buffers.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t nbytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  std::size_t i = 0;
  for (; i + 8 <= nbytes; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= 1099511628211ULL;
  }
  for (; i < nbytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Mixes a second hash (or any 64-bit tag) into an existing one.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace repro::util
