#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace repro::util {

double Rng::normal() {
  // Box-Muller; uniform() never returns 0 exactly because the mantissa draw
  // of 0 maps to 0.0, so guard the log argument.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  // One round of a SplitMix-style finalizer over a combination of the
  // inputs; quality only needs to be "streams do not obviously collide".
  std::uint64_t z = a * 0x9e3779b97f4a7c15ULL + b * 0xc2b2ae3d27d4eb4fULL +
                    c * 0x165667b19e3779f9ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace repro::util
