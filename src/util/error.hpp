// Error handling helpers.
//
// REPRO_REQUIRE is for conditions that indicate misuse of a public API or a
// broken invariant; it throws so tests can assert on failures and callers
// can recover. It is always on (not compiled out in release builds) because
// none of the guarded checks sit on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace repro::util {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& message, const char* file,
                              int line) {
  std::ostringstream os;
  os << file << ":" << line << ": " << message;
  throw Error(os.str());
}

}  // namespace repro::util

#define REPRO_REQUIRE(cond, message)                              \
  do {                                                            \
    if (!(cond)) {                                                \
      ::repro::util::fail(std::string("requirement failed: ") +   \
                              #cond + " — " + (message),          \
                          __FILE__, __LINE__);                    \
    }                                                             \
  } while (0)

#define REPRO_UNREACHABLE(message) \
  ::repro::util::fail(std::string("unreachable: ") + (message), __FILE__, \
                      __LINE__)
