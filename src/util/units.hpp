// Physical constants and unit conventions.
//
// The MD engine uses the AKMA-style unit system of CHARMM:
//   length  : Angstrom (Å)
//   energy  : kcal/mol
//   mass    : atomic mass unit (g/mol)
//   charge  : elementary charge (e)
//   time    : picosecond (ps) at the public API; internally the integrator
//             converts with the AKMA time factor so that
//             kcal/mol = amu * Å^2 / akma_time^2.
#pragma once

namespace repro::units {

// Coulomb conversion: E[kcal/mol] = kCoulomb * q1*q2 / r[Å].
inline constexpr double kCoulomb = 332.0636;

// Boltzmann constant in kcal/(mol*K).
inline constexpr double kBoltzmann = 0.0019872041;

// 1 AKMA time unit in picoseconds: sqrt(amu * Å^2 / (kcal/mol)).
inline constexpr double kAkmaPs = 0.04888821;

// Converts force/mass to acceleration in Å/ps^2:
//   a[Å/ps^2] = kForceToAccel * F[kcal/mol/Å] / m[amu].
// (1 kcal/mol = 4184 J/mol; 1 amu Å^2/ps^2 = 10.0003 J/mol.)
inline constexpr double kForceToAccel = 418.4 / 1.00003;

}  // namespace repro::units
