// Deterministic, seedable pseudo-random number generation.
//
// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
// reimplemented here so that simulator runs are reproducible across
// platforms and standard-library versions (std::mt19937 distributions are
// not bit-portable).
#pragma once

#include <cstdint>

namespace repro::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words; this is
    // the initialization recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  // Standard normal via Box-Muller (polar rejection-free variant using both
  // trig branches would cache one value; keep it stateless and simple).
  double normal();

  // Exponential with the given mean.
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

// Mixes several integers into one seed, for making independent per-entity
// streams (e.g. per (run, src, dst) message jitter) from a master seed.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b = 0x243f6a8885a308d3ULL,
                       std::uint64_t c = 0x13198a2e03707344ULL);

}  // namespace repro::util
