// Vec3 <-> flat double-array packing.
//
// Every decomposition's force reduction ships the per-atom Vec3 forces as
// a contiguous double array (the shape the reduction collectives and the
// fold/expand schedules operate on). Shared here so the layouts agree
// byte-for-byte across the charmm decompositions and the tests.
#pragma once

#include <cstddef>
#include <vector>

#include "util/vec3.hpp"

namespace repro::util {

// [v0.x, v0.y, v0.z, v1.x, ...]; resizes `out` to 3*v.size().
inline void flatten(const std::vector<Vec3>& v, std::vector<double>& out) {
  out.resize(3 * v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[3 * i] = v[i].x;
    out[3 * i + 1] = v[i].y;
    out[3 * i + 2] = v[i].z;
  }
}

// Inverse of flatten; `in` must hold at least 3*v.size() doubles.
inline void unflatten(const std::vector<double>& in, std::vector<Vec3>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = Vec3{in[3 * i], in[3 * i + 1], in[3 * i + 2]};
  }
}

}  // namespace repro::util
