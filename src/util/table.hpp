// Plain-text table formatting for benchmark/figure output.
//
// The figure harnesses print the same rows/series the paper plots; a small
// fixed-width table keeps that output readable and diffable.
#pragma once

#include <string>
#include <vector>

namespace repro::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; the row must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  // Renders with aligned columns and a separator under the header.
  std::string to_string() const;

  // Renders as CSV (for plotting).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace repro::util
