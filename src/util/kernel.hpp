// Kernel-variant selection: every physics hot path (nonbonded pair loop,
// B-spline spread/interpolate, FFT butterflies) ships a scalar reference
// implementation and an explicitly vectorized variant. The scalar path is
// the bit-identical golden reference; the simd path is pinned by
// tolerance-based invariance tests (tests/kernel_variant_test.cpp).
//
// Selection is a runtime swept factor (--kernel=scalar|simd on the CLI,
// REPRO_KERNEL in the environment), mirroring the engine-backend factor in
// sim/engine.hpp. Both variants feed identical work counters into the cost
// model, so simulated timings are kernel-independent by construction —
// the variants differ only in host-side wall clock (bench/kernels_*).
#pragma once

#include <string_view>

namespace repro::util {

enum class KernelKind {
  kScalar,  // straight-line reference kernels; golden byte-identity
  kSimd,    // width-agnostic vector lanes (#pragma omp simd, SoA staging)
};

const char* to_string(KernelKind kind);

// Strict parse: exactly "scalar" or "simd", anything else throws
// util::Error (trailing garbage included — "simd2" is rejected).
KernelKind parse_kernel_kind(std::string_view name);

// REPRO_KERNEL=scalar|simd overrides the compiled-in default (scalar).
// The env var is the kill switch: it rewires every default-constructed
// config without touching call sites.
KernelKind default_kernel_kind();

}  // namespace repro::util
