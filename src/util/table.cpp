#include "util/table.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace repro::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  REPRO_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  REPRO_REQUIRE(row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c], '-');
    if (c + 1 < header_.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace repro::util
