#include "pme/ewald_ref.hpp"

#include "pme/pme.hpp"

#include <cmath>
#include <numbers>

#include "util/units.hpp"

namespace repro::pme {

using util::Vec3;

EwaldRefResult ewald_reference(const md::Topology& topo, const md::Box& box,
                               const std::vector<Vec3>& pos,
                               const EwaldRefOptions& opts,
                               std::vector<Vec3>* direct_forces,
                               std::vector<Vec3>* recip_forces) {
  const int n = topo.natoms();
  const double beta = opts.beta;
  const double sqrt_pi = std::sqrt(std::numbers::pi);
  EwaldRefResult res;

  // Direct sum, minimum image (beta must be large enough that erfc decays
  // within half the box).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double qq = units::kCoulomb * topo.atom(i).charge *
                        topo.atom(j).charge;
      if (qq == 0.0) continue;
      const Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                                   pos[static_cast<std::size_t>(j)]);
      const double r = util::norm(d);
      const double br = beta * r;
      res.direct += qq * std::erfc(br) / r;
      if (direct_forces != nullptr) {
        const double dEdr = -qq * (std::erfc(br) / (r * r) +
                                   2.0 * beta / sqrt_pi *
                                       std::exp(-br * br) / r);
        const Vec3 f = d * (-dEdr / r);
        (*direct_forces)[static_cast<std::size_t>(i)] += f;
        (*direct_forces)[static_cast<std::size_t>(j)] -= f;
      }
    }
  }

  // Reciprocal sum over k = 2 pi (mx/Lx, my/Ly, mz/Lz).
  const double vol = box.volume();
  const double two_pi = 2.0 * std::numbers::pi;
  for (int mx = -opts.kmax; mx <= opts.kmax; ++mx) {
    for (int my = -opts.kmax; my <= opts.kmax; ++my) {
      for (int mz = -opts.kmax; mz <= opts.kmax; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        const Vec3 k{two_pi * mx / box.lx(), two_pi * my / box.ly(),
                     two_pi * mz / box.lz()};
        const double k2 = util::norm2(k);
        const double ak = std::exp(-k2 / (4.0 * beta * beta)) / k2;
        double sr = 0.0;
        double si = 0.0;
        for (int i = 0; i < n; ++i) {
          const double phase = util::dot(k, pos[static_cast<std::size_t>(i)]);
          sr += topo.atom(i).charge * std::cos(phase);
          si += topo.atom(i).charge * std::sin(phase);
        }
        const double s2 = sr * sr + si * si;
        const double pref = units::kCoulomb * two_pi / vol;
        res.reciprocal += pref * ak * s2;
        if (recip_forces != nullptr) {
          for (int i = 0; i < n; ++i) {
            const double qi = topo.atom(i).charge;
            const double phase =
                util::dot(k, pos[static_cast<std::size_t>(i)]);
            // F_i = -dE/dr_i; E term = pref*ak*|S|^2 with
            // S = sum q e^{i k.r}; dE/dr_i = 2 pref ak q_i
            //   (-sin(kr) sr + cos(kr) si) k.
            const double g =
                2.0 * pref * ak * qi *
                (-std::sin(phase) * sr + std::cos(phase) * si);
            (*recip_forces)[static_cast<std::size_t>(i)] -= k * g;
          }
        }
      }
    }
  }

  res.self = ewald_self_energy(topo, beta);
  return res;
}

}  // namespace repro::pme
