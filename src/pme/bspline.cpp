#include "pme/bspline.hpp"

#include <cmath>
#include <complex>
#include <numbers>

namespace repro::pme {

void bspline_weights(int order, double w, double* vals, double* derivs) {
  REPRO_REQUIRE(order >= 2 && order <= kMaxOrder, "unsupported spline order");
  REPRO_REQUIRE(w >= 0.0 && w < 1.0, "fractional offset outside [0,1)");
  // Build up from M_2: M_2(w) = w, M_2(w+1) = 1 - w (support [0,2]).
  vals[0] = w;
  vals[1] = 1.0 - w;
  for (int j = 2; j < order; ++j) vals[j] = 0.0;
  // Raise the order: M_k(x) = [x M_{k-1}(x) + (k - x) M_{k-1}(x-1)]/(k-1).
  for (int k = 3; k <= order; ++k) {
    if (k == order && derivs != nullptr) {
      // M_n'(x) = M_{n-1}(x) - M_{n-1}(x-1); vals currently hold M_{n-1}.
      for (int j = order - 1; j >= 0; --j) {
        derivs[j] = vals[j] - (j > 0 ? vals[j - 1] : 0.0);
      }
    }
    const double div = 1.0 / static_cast<double>(k - 1);
    for (int j = k - 1; j >= 0; --j) {
      const double x = w + static_cast<double>(j);
      const double prev = j > 0 ? vals[j - 1] : 0.0;
      vals[j] = div * (x * vals[j] + (static_cast<double>(k) - x) * prev);
    }
  }
  if (order == 2 && derivs != nullptr) {
    derivs[0] = 1.0;
    derivs[1] = -1.0;
  }
}

void bspline_weights_batch(int order, const double* w, std::size_t nw,
                           double* vals, double* derivs) {
  REPRO_REQUIRE(order >= 2 && order <= kMaxOrder, "unsupported spline order");
  // Same recurrence as bspline_weights with the atom index innermost: each
  // j-row is a contiguous lane array, so the order-raising update is a
  // pure elementwise loop over atoms.
#pragma omp simd
  for (std::size_t a = 0; a < nw; ++a) {
    vals[a] = w[a];
    vals[nw + a] = 1.0 - w[a];
  }
  for (int j = 2; j < order; ++j) {
    for (std::size_t a = 0; a < nw; ++a) {
      vals[static_cast<std::size_t>(j) * nw + a] = 0.0;
    }
  }
  for (int k = 3; k <= order; ++k) {
    if (k == order && derivs != nullptr) {
      for (int j = order - 1; j >= 0; --j) {
        double* dj = derivs + static_cast<std::size_t>(j) * nw;
        const double* vj = vals + static_cast<std::size_t>(j) * nw;
        const double* vp =
            j > 0 ? vals + static_cast<std::size_t>(j - 1) * nw : nullptr;
#pragma omp simd
        for (std::size_t a = 0; a < nw; ++a) {
          dj[a] = vj[a] - (vp != nullptr ? vp[a] : 0.0);
        }
      }
    }
    const double div = 1.0 / static_cast<double>(k - 1);
    for (int j = k - 1; j >= 0; --j) {
      double* vj = vals + static_cast<std::size_t>(j) * nw;
      const double* vp =
          j > 0 ? vals + static_cast<std::size_t>(j - 1) * nw : nullptr;
#pragma omp simd
      for (std::size_t a = 0; a < nw; ++a) {
        const double x = w[a] + static_cast<double>(j);
        const double prev = vp != nullptr ? vp[a] : 0.0;
        vj[a] = div * (x * vj[a] + (static_cast<double>(k) - x) * prev);
      }
    }
  }
  if (order == 2 && derivs != nullptr) {
#pragma omp simd
    for (std::size_t a = 0; a < nw; ++a) {
      derivs[a] = 1.0;
      derivs[nw + a] = -1.0;
    }
  }
}

std::vector<double> bspline_moduli(std::size_t n, int order) {
  REPRO_REQUIRE(n >= static_cast<std::size_t>(order),
                "grid dimension smaller than the spline order");
  // Spline values at the integers: M_order(1..order-1).
  double vals[kMaxOrder];
  bspline_weights(order, 0.0, vals, nullptr);
  // vals[j] = M_order(j); M_order(0) == 0.

  std::vector<double> mod(n, 0.0);
  for (std::size_t m = 0; m < n; ++m) {
    std::complex<double> d(0.0, 0.0);
    for (int k = 1; k < order; ++k) {
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(m) *
                           static_cast<double>(k) / static_cast<double>(n);
      d += vals[k] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    const double den = std::norm(d);
    mod[m] = den > 1e-10 ? 1.0 / den : 0.0;
  }
  // Even orders make |b|^2 blow up where the denominator vanishes; the
  // conventional patch interpolates from the neighbors.
  for (std::size_t m = 0; m < n; ++m) {
    if (mod[m] == 0.0) {
      const double left = mod[(m + n - 1) % n];
      const double right = mod[(m + 1) % n];
      mod[m] = 0.5 * (left + right);
    }
  }
  return mod;
}

}  // namespace repro::pme
