// Cardinal B-splines for smooth particle-mesh Ewald (Essmann et al. 1995).
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace repro::pme {

// Maximum supported interpolation order (CHARMM uses 4 or 6).
inline constexpr int kMaxOrder = 8;

// Computes vals[j] = M_n(w + j) and derivs[j] = M_n'(w + j) for
// j = 0 .. order-1, where M_n is the cardinal B-spline of order n and
// w in [0, 1) is the fractional offset. A point charge at fractional grid
// coordinate u = k0 + w (k0 = floor(u)) spreads onto grid lines
// (k0 - j) mod N with weight vals[j].
void bspline_weights(int order, double w, double* vals, double* derivs);

// Batched variant for the simd PME path: computes the same weights for nw
// fractional offsets at once, vectorizing the order-raising recurrence
// across atoms. vals/derivs use an SoA [kMaxOrder][nw] layout:
// vals[j * nw + a] = M_order(w[a] + j). Each lane runs the identical
// floating-point sequence as bspline_weights, so results are bit-identical
// to the scalar call per atom.
void bspline_weights_batch(int order, const double* w, std::size_t nw,
                           double* vals, double* derivs);

// |b(m)|^2 Euler-spline moduli for one dimension of length n and the given
// interpolation order, including the standard fix-up for even orders where
// the denominator vanishes (m = n/2).
std::vector<double> bspline_moduli(std::size_t n, int order);

}  // namespace repro::pme
