// Smooth particle-mesh Ewald (Essmann et al., J. Chem. Phys. 103:8577).
//
// The total electrostatic energy under PME is
//   E = E_direct (erfc, in the short-range non-bonded loop)
//     + E_reciprocal (charge mesh + 3-D FFT convolution, here)
//     + E_self + E_exclusion-correction (analytic, here).
//
// Two implementations share the spline/influence machinery:
//  - SerialPme: full grid + sequential 3-D FFT (reference, examples).
//  - ParallelPme: x-slab decomposition on top of ParallelFft3D; the only
//    communication is the two all-to-all personalized transposes inside
//    the forward/backward FFTs, matching the structure in the paper's
//    Figure 2. Per-rank partial energies/forces are combined by the
//    caller's global reduction (the classic part's collective).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "fft/fft.hpp"
#include "fft/parallel_fft.hpp"
#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::pme {

struct PmeParams {
  std::size_t nx = 32, ny = 32, nz = 32;
  int order = 4;       // B-spline interpolation order
  double beta = 0.34;  // Ewald splitting parameter (1/Å)
};

// Work counters for the simulator's compute-cost model.
struct PmeWork {
  std::size_t atoms_spread = 0;       // atoms this rank spread/interpolated
  std::size_t stencil_points = 0;     // grid points touched (spread+interp)
  std::size_t mesh_points = 0;        // k-space points convolved
  double fft_flops = 0.0;
};

// E_self = -kCoulomb * beta/sqrt(pi) * sum q_i^2.
double ewald_self_energy(const md::Topology& topo, double beta);

// Correction for excluded pairs (whose full interaction is contained in the
// mesh term): subtracts kCoulomb q_i q_j erf(beta r)/r with forces. Shard
// semantics as in the md kernels. Returns the energy contribution.
double ewald_exclusion_correction(const md::Topology& topo,
                                  const md::Box& box,
                                  const std::vector<util::Vec3>& pos,
                                  double beta,
                                  std::vector<util::Vec3>& forces,
                                  int shard = 0, int stride = 1);

// Spatial-decomposition variant: only pairs whose FIRST atom has
// owned_mask set are corrected (excluded pairs are bonded-graph local, so
// the partner is always resident as owned or ghost). Disjoint masks
// partition the pair set exactly as shard/stride does for the replicated
// kernels.
double ewald_exclusion_correction_owned(
    const md::Topology& topo, const md::Box& box,
    const std::vector<util::Vec3>& pos,
    const std::vector<std::uint8_t>& owned_mask, double beta,
    std::vector<util::Vec3>& forces);

class SerialPme {
 public:
  // The simd kernel variant batches the B-spline weight recurrence across
  // atoms (bspline_weights_batch), spreads/interpolates through a real
  // staging grid with contiguous z-tap inner loops, and runs the
  // table-combine FFT. Every lane executes the scalar arithmetic in the
  // same order, so both variants produce bit-identical results — the
  // switch only changes wall-clock.
  SerialPme(const PmeParams& params, const md::Box& box,
            util::KernelKind kind = util::default_kernel_kind());

  // Computes the reciprocal-space energy and accumulates forces on all
  // atoms. Positions may lie outside the box (wrapped internally).
  double reciprocal(const md::Topology& topo,
                    const std::vector<util::Vec3>& pos,
                    std::vector<util::Vec3>& forces, PmeWork* work = nullptr);

  const PmeParams& params() const { return params_; }
  util::KernelKind kernel() const { return kind_; }

 private:
  // Convolution + energy over the full k-space grid (shared verbatim by
  // both kernel variants).
  double convolve_energy();
  double reciprocal_simd(const md::Topology& topo,
                         const std::vector<util::Vec3>& pos,
                         std::vector<util::Vec3>& forces, PmeWork* work);

  PmeParams params_;
  md::Box box_;
  util::KernelKind kind_;
  fft::Fft3D fft_;
  std::vector<double> modx_, mody_, modz_;
  std::vector<fft::Complex> grid_;
  // Simd-path scratch: real staging grid and SoA spline data per dimension.
  std::vector<double> rgrid_;
  std::vector<double> sw_[3], sdw_[3], sfrac_[3];
  std::vector<int> sk0_[3];
};

// --- Pencil-decomposed PME --------------------------------------------------

// A wrapped box of grid planes: the axis-aligned region of the charge
// grid one spatial rank's atoms can touch. Each dimension is an interval
// [start, start+count) taken modulo n (count == n means the whole
// dimension). Empty when any count is zero (a rank that owns no cells).
struct GridRegion {
  std::size_t x0 = 0, cx = 0;
  std::size_t y0 = 0, cy = 0;
  std::size_t z0 = 0, cz = 0;

  bool empty() const { return cx == 0 || cy == 0 || cz == 0; }
  bool operator==(const GridRegion&) const = default;
};

// Number of k in [0, count) whose wrapped plane index (start + k) mod n
// falls in [b, e). The block-size primitive shared by the pencil plane
// exchange and the predictor that pins it.
std::size_t wrapped_overlap(std::size_t start, std::size_t count,
                            std::size_t n, std::size_t b, std::size_t e);

// Pencil-parallel PME: the charge grid is distributed over a Py x Pz
// pencil process grid (fft::PencilGrid) and the spatial decomposition
// feeds it locally instead of replicating positions:
//
//   spread (owned atoms -> my region planes)
//   == charge plane exchange: region blocks -> stage-1 pencil owners ==
//   pencil forward FFT (X -> Y -> Z with grouped pairwise transposes)
//   convolution + partial energy over my stage-3 pencils
//   pencil backward FFT
//   == potential plane exchange: stage-1 owners -> region blocks ==
//   interpolate forces for owned atoms (whole stencil is in-region)
//
// Regions are static for a run (the cell -> rank map never changes), so
// the message schedule is a fixed function of the layout and the
// predictor can pin it exactly. Runs over the raw Comm with a
// caller-owned tag base, like the decomposition's other schedules.
class PencilPme {
 public:
  // `regions[r]` is rank r's spread/interpolation region (empty for
  // cell-less ranks); every rank passes the same vector. `py * pz` ranks
  // participate in the FFT; the rest only ship their region blocks.
  // `kind` selects the FFT kernel variant (the grid-local spread and
  // interpolation loops are already region-local short stencils; the simd
  // factor's FFT combine tables are where the pencil path spends its
  // vectorizable time). Bit-identical either way.
  PencilPme(const PmeParams& params, const md::Box& box, mpi::Comm& comm,
            int py, int pz, std::vector<GridRegion> regions,
            std::function<void(double flops)> charge_compute = {},
            util::KernelKind kind = util::default_kernel_kind());

  // Reciprocal sum for the owned atoms. Returns this rank's partial
  // energy (each wavevector is counted on exactly one stage-3 owner);
  // forces on owned atoms are complete — no reciprocal-force reduction
  // is needed. Uses tags tag_base + 0..5: charge plane exchange, X->Y
  // and Y->Z forward transposes, Z->Y and Y->X backward transposes,
  // potential plane exchange.
  double reciprocal(const md::Topology& topo,
                    const std::vector<util::Vec3>& pos,
                    const std::vector<int>& owned,
                    std::vector<util::Vec3>& forces, int tag_base,
                    PmeWork* work = nullptr);

  const PmeParams& params() const { return params_; }
  const fft::PencilGrid& grid() const { return pfft_.grid(); }
  const GridRegion& my_region() const {
    return regions_[static_cast<std::size_t>(comm_.rank())];
  }

 private:
  void charge(double flops) const {
    if (charge_) charge_(flops);
  }
  // Region blocks <-> stage-1 pencil slabs. `gather` accumulates charges
  // into stage-1 (+=); `scatter` returns potentials into the region (=).
  void exchange_charges(int tag);
  void return_potential(int tag);

  PmeParams params_;
  md::Box box_;
  mpi::Comm& comm_;
  std::function<void(double)> charge_;
  fft::PencilFft3D pfft_;
  std::vector<GridRegion> regions_;
  std::vector<double> modx_, mody_, modz_;
  std::vector<double> region_;         // [cx][cy][cz] charges / potentials
  std::vector<fft::Complex> stage1_;   // [ly1][lz1][nx]
  std::vector<fft::Complex> stage3_;   // [lx2][ly3][nz]
  std::vector<double> msgbuf_;         // plane-exchange pack/unpack scratch
};

class ParallelPme {
 public:
  // `charge_compute` converts flops to simulated time (may be empty).
  // `kind` selects the FFT kernel variant, as in PencilPme.
  ParallelPme(const PmeParams& params, const md::Box& box,
              middleware::Middleware& mw,
              std::function<void(double flops)> charge_compute = {},
              util::KernelKind kind = util::default_kernel_kind());

  // Slab-parallel reciprocal sum. Returns this rank's *partial* energy;
  // forces accumulated are partial too — both become total after the
  // caller's global sum. Work counters let the caller charge spread/
  // interpolation cost (FFT cost is charged internally via the hook).
  double reciprocal(const md::Topology& topo,
                    const std::vector<util::Vec3>& pos,
                    std::vector<util::Vec3>& forces, PmeWork* work = nullptr);

  const PmeParams& params() const { return params_; }

 private:
  PmeParams params_;
  md::Box box_;
  middleware::Middleware& mw_;
  std::function<void(double)> charge_;
  fft::ParallelFft3D pfft_;
  std::vector<double> modx_, mody_, modz_;
  std::vector<fft::Complex> xslab_;
  std::vector<fft::Complex> zslab_;
};

}  // namespace repro::pme
