// Brute-force Ewald summation — the slow, assumption-free reference used
// to validate PME (energies and forces) on small systems.
#pragma once

#include <vector>

#include "md/box.hpp"
#include "md/topology.hpp"
#include "util/vec3.hpp"

namespace repro::pme {

struct EwaldRefOptions {
  double beta = 0.5;  // splitting parameter (1/Å)
  int kmax = 12;      // reciprocal images per dimension
};

struct EwaldRefResult {
  double direct = 0.0;      // erfc sum over minimum-image pairs
  double reciprocal = 0.0;  // structure-factor k-sum
  double self = 0.0;
  double total() const { return direct + reciprocal + self; }
};

// Full electrostatic Ewald energy of the point charges in `topo` (no
// exclusions applied). Optionally accumulates the reciprocal+self forces
// into recip_forces and the direct-space forces into direct_forces.
EwaldRefResult ewald_reference(const md::Topology& topo, const md::Box& box,
                               const std::vector<util::Vec3>& pos,
                               const EwaldRefOptions& opts,
                               std::vector<util::Vec3>* direct_forces = nullptr,
                               std::vector<util::Vec3>* recip_forces = nullptr);

}  // namespace repro::pme
