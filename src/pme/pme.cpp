#include "pme/pme.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "pme/bspline.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace repro::pme {

namespace {

using md::Box;
using md::Topology;
using util::Vec3;

// Per-atom spline data in the three dimensions.
struct AtomSpline {
  int k0[3];                      // floor of the fractional grid coordinate
  double w[3][kMaxOrder];         // weights per dimension
  double dw[3][kMaxOrder];        // derivatives per dimension
};

// Fractional grid coordinate in [0, n).
double frac_coord(double x, double box_len, std::size_t n) {
  double u = x / box_len * static_cast<double>(n);
  u -= std::floor(u / static_cast<double>(n)) * static_cast<double>(n);
  if (u >= static_cast<double>(n)) u -= static_cast<double>(n);
  return u;
}

AtomSpline make_spline(const PmeParams& p, const Box& box, const Vec3& r) {
  AtomSpline s;
  const double lens[3] = {box.lx(), box.ly(), box.lz()};
  const std::size_t dims[3] = {p.nx, p.ny, p.nz};
  const double coords[3] = {r.x, r.y, r.z};
  for (int d = 0; d < 3; ++d) {
    const double u = frac_coord(coords[d], lens[d], dims[d]);
    const double k0 = std::floor(u);
    s.k0[d] = static_cast<int>(k0);
    bspline_weights(p.order, u - k0, s.w[d], s.dw[d]);
  }
  return s;
}

// Grid line index of stencil point j in dimension d.
inline std::size_t line(const AtomSpline& s, int d, int j, std::size_t n) {
  int k = s.k0[d] - j;
  if (k < 0) k += static_cast<int>(n);
  return static_cast<std::size_t>(k);
}

// Influence factor for wavevector (mx, my, mz):
//   kCoulomb/(pi V) * exp(-pi^2 mhat^2 / beta^2) / mhat^2 * B(m),
// the multiplier applied to |Q^(m)|^2 / 2 for the energy (Essmann eq. 4.7).
struct Influence {
  Influence(const PmeParams& p, const Box& box, const std::vector<double>& bx,
            const std::vector<double>& by, const std::vector<double>& bz)
      : p_(p), box_(box), bx_(bx), by_(by), bz_(bz) {}

  double operator()(std::size_t mx, std::size_t my, std::size_t mz) const {
    if (mx == 0 && my == 0 && mz == 0) return 0.0;
    auto wrap = [](std::size_t m, std::size_t n) {
      const auto mi = static_cast<double>(m);
      return m > n / 2 ? mi - static_cast<double>(n) : mi;
    };
    const double hx = wrap(mx, p_.nx) / box_.lx();
    const double hy = wrap(my, p_.ny) / box_.ly();
    const double hz = wrap(mz, p_.nz) / box_.lz();
    const double m2 = hx * hx + hy * hy + hz * hz;
    const double pi = std::numbers::pi;
    const double expo = std::exp(-pi * pi * m2 / (p_.beta * p_.beta));
    return units::kCoulomb / (pi * box_.volume()) * expo / m2 * bx_[mx] *
           by_[my] * bz_[mz];
  }

 private:
  const PmeParams& p_;
  const Box& box_;
  const std::vector<double>& bx_;
  const std::vector<double>& by_;
  const std::vector<double>& bz_;
};

}  // namespace

std::size_t wrapped_overlap(std::size_t start, std::size_t count,
                            std::size_t n, std::size_t b, std::size_t e) {
  if (count >= n) return e - b;  // whole dimension: plain interval size
  auto seg = [&](std::size_t s0, std::size_t s1) {
    const std::size_t lo = std::max(s0, b);
    const std::size_t hi = std::min(s1, e);
    return hi > lo ? hi - lo : std::size_t{0};
  };
  const std::size_t end = start + count;
  if (end <= n) return seg(start, end);
  return seg(start, n) + seg(0, end - n);
}

double ewald_self_energy(const Topology& topo, double beta) {
  double q2 = 0.0;
  for (int i = 0; i < topo.natoms(); ++i) {
    const double q = topo.atom(i).charge;
    q2 += q * q;
  }
  return -units::kCoulomb * beta / std::sqrt(std::numbers::pi) * q2;
}

double ewald_exclusion_correction(const Topology& topo, const Box& box,
                                  const std::vector<Vec3>& pos, double beta,
                                  std::vector<Vec3>& forces, int shard,
                                  int stride) {
  REPRO_REQUIRE(stride >= 1 && shard >= 0 && shard < stride,
                "bad shard/stride");
  double energy = 0.0;
  const auto& pairs = topo.excluded_pairs();
  for (std::size_t t = static_cast<std::size_t>(shard); t < pairs.size();
       t += static_cast<std::size_t>(stride)) {
    const auto [i, j] = pairs[t];
    const double qq =
        units::kCoulomb * topo.atom(i).charge * topo.atom(j).charge;
    if (qq == 0.0) continue;
    const Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                                 pos[static_cast<std::size_t>(j)]);
    const double r = util::norm(d);
    const double br = beta * r;
    const double erf_br = std::erf(br);
    energy -= qq * erf_br / r;
    // E = -qq erf(br)/r; dE/dr = -qq [2b/sqrt(pi) e^{-b^2r^2}/r - erf/r^2].
    const double dEdr =
        -qq * (2.0 * beta / std::sqrt(std::numbers::pi) *
                   std::exp(-br * br) / r -
               erf_br / (r * r));
    const Vec3 f = d * (-dEdr / r);
    forces[static_cast<std::size_t>(i)] += f;
    forces[static_cast<std::size_t>(j)] -= f;
  }
  return energy;
}

double ewald_exclusion_correction_owned(
    const Topology& topo, const Box& box, const std::vector<Vec3>& pos,
    const std::vector<std::uint8_t>& owned_mask, double beta,
    std::vector<Vec3>& forces) {
  REPRO_REQUIRE(owned_mask.size() == pos.size(),
                "ownership mask size mismatch");
  double energy = 0.0;
  for (const auto& [i, j] : topo.excluded_pairs()) {
    if (!owned_mask[static_cast<std::size_t>(i)]) continue;
    const double qq =
        units::kCoulomb * topo.atom(i).charge * topo.atom(j).charge;
    if (qq == 0.0) continue;
    const Vec3 d = box.min_image(pos[static_cast<std::size_t>(i)] -
                                 pos[static_cast<std::size_t>(j)]);
    const double r = util::norm(d);
    const double br = beta * r;
    const double erf_br = std::erf(br);
    energy -= qq * erf_br / r;
    const double dEdr =
        -qq * (2.0 * beta / std::sqrt(std::numbers::pi) *
                   std::exp(-br * br) / r -
               erf_br / (r * r));
    const Vec3 f = d * (-dEdr / r);
    forces[static_cast<std::size_t>(i)] += f;
    forces[static_cast<std::size_t>(j)] -= f;
  }
  return energy;
}

// --- SerialPme --------------------------------------------------------------

SerialPme::SerialPme(const PmeParams& params, const Box& box,
                     util::KernelKind kind)
    : params_(params),
      box_(box),
      kind_(kind),
      fft_(params.nx, params.ny, params.nz, kind),
      modx_(bspline_moduli(params.nx, params.order)),
      mody_(bspline_moduli(params.ny, params.order)),
      modz_(bspline_moduli(params.nz, params.order)),
      grid_(params.nx * params.ny * params.nz) {}

double SerialPme::convolve_energy() {
  const auto K = static_cast<double>(grid_.size());
  const Influence fac(params_, box_, modx_, mody_, modz_);
  double energy = 0.0;
  for (std::size_t mx = 0; mx < params_.nx; ++mx) {
    for (std::size_t my = 0; my < params_.ny; ++my) {
      for (std::size_t mz = 0; mz < params_.nz; ++mz) {
        const std::size_t idx = (mx * params_.ny + my) * params_.nz + mz;
        const double f = fac(mx, my, mz);
        energy += 0.5 * f * std::norm(grid_[idx]);
        // K compensates the normalized inverse so the real-space grid is
        // the unnormalized convolution (the potential phi).
        grid_[idx] *= f * K;
      }
    }
  }
  return energy;
}

double SerialPme::reciprocal(const Topology& topo,
                             const std::vector<Vec3>& pos,
                             std::vector<Vec3>& forces, PmeWork* work) {
  const auto n = static_cast<std::size_t>(topo.natoms());
  REPRO_REQUIRE(pos.size() == n, "position array size mismatch");
  if (kind_ == util::KernelKind::kSimd) {
    return reciprocal_simd(topo, pos, forces, work);
  }
  const int order = params_.order;

  std::vector<AtomSpline> splines(n);
  for (std::size_t i = 0; i < n; ++i) {
    splines[i] = make_spline(params_, box_, pos[i]);
  }

  // Charge spreading.
  std::fill(grid_.begin(), grid_.end(), fft::Complex(0, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const double q = topo.atom(static_cast<int>(i)).charge;
    if (q == 0.0) continue;
    const AtomSpline& s = splines[i];
    for (int jx = 0; jx < order; ++jx) {
      const std::size_t kx = line(s, 0, jx, params_.nx);
      for (int jy = 0; jy < order; ++jy) {
        const std::size_t ky = line(s, 1, jy, params_.ny);
        const double wxy = q * s.w[0][jx] * s.w[1][jy];
        for (int jz = 0; jz < order; ++jz) {
          const std::size_t kz = line(s, 2, jz, params_.nz);
          grid_[(kx * params_.ny + ky) * params_.nz + kz] +=
              wxy * s.w[2][jz];
        }
      }
    }
  }

  fft_.forward(grid_.data());

  // Convolution + energy.
  const double energy = convolve_energy();

  fft_.inverse(grid_.data());

  // Force interpolation: F_i = -q_i sum_k (dQ/dr_i) phi(k).
  const double sx = static_cast<double>(params_.nx) / box_.lx();
  const double sy = static_cast<double>(params_.ny) / box_.ly();
  const double sz = static_cast<double>(params_.nz) / box_.lz();
  for (std::size_t i = 0; i < n; ++i) {
    const double q = topo.atom(static_cast<int>(i)).charge;
    if (q == 0.0) continue;
    const AtomSpline& s = splines[i];
    Vec3 f{};
    for (int jx = 0; jx < order; ++jx) {
      const std::size_t kx = line(s, 0, jx, params_.nx);
      for (int jy = 0; jy < order; ++jy) {
        const std::size_t ky = line(s, 1, jy, params_.ny);
        for (int jz = 0; jz < order; ++jz) {
          const std::size_t kz = line(s, 2, jz, params_.nz);
          const double phi =
              grid_[(kx * params_.ny + ky) * params_.nz + kz].real();
          f.x += s.dw[0][jx] * s.w[1][jy] * s.w[2][jz] * phi;
          f.y += s.w[0][jx] * s.dw[1][jy] * s.w[2][jz] * phi;
          f.z += s.w[0][jx] * s.w[1][jy] * s.dw[2][jz] * phi;
        }
      }
    }
    forces[i] -= Vec3{f.x * sx, f.y * sy, f.z * sz} * q;
  }

  if (work != nullptr) {
    work->atoms_spread += n;
    work->stencil_points +=
        2 * n * static_cast<std::size_t>(order * order * order);
    work->mesh_points += grid_.size();
    work->fft_flops += 2.0 * fft_.flops();
  }
  return energy;
}

// Simd variant: batched spline construction (SoA lanes across atoms via
// bspline_weights_batch), a real staging grid so spread/interpolation
// touch contiguous doubles instead of Complex real parts, and contiguous
// descending z-tap inner loops when the stencil does not wrap. Every
// floating-point operation matches the scalar path in value and order, so
// the result is bit-identical (pinned by kernel_variant_test).
double SerialPme::reciprocal_simd(const Topology& topo,
                                  const std::vector<Vec3>& pos,
                                  std::vector<Vec3>& forces, PmeWork* work) {
  const auto n = static_cast<std::size_t>(topo.natoms());
  const int order = params_.order;
  const std::size_t dims[3] = {params_.nx, params_.ny, params_.nz};
  const double lens[3] = {box_.lx(), box_.ly(), box_.lz()};
  const std::size_t ny = params_.ny;
  const std::size_t nz = params_.nz;

  for (int d = 0; d < 3; ++d) {
    sfrac_[d].resize(n);
    sk0_[d].resize(n);
    sw_[d].resize(static_cast<std::size_t>(kMaxOrder) * n);
    sdw_[d].resize(static_cast<std::size_t>(kMaxOrder) * n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double coords[3] = {pos[i].x, pos[i].y, pos[i].z};
    for (int d = 0; d < 3; ++d) {
      const double u = frac_coord(coords[d], lens[d], dims[d]);
      const double k0 = std::floor(u);
      sk0_[d][i] = static_cast<int>(k0);
      sfrac_[d][i] = u - k0;
    }
  }
  for (int d = 0; d < 3; ++d) {
    bspline_weights_batch(order, sfrac_[d].data(), n, sw_[d].data(),
                          sdw_[d].data());
  }

  // Charge spreading through the real staging grid.
  rgrid_.assign(grid_.size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = topo.atom(static_cast<int>(i)).charge;
    if (q == 0.0) continue;
    const int k0z = sk0_[2][i];
    double wz[kMaxOrder];
    for (int jz = 0; jz < order; ++jz) {
      wz[jz] = sw_[2][static_cast<std::size_t>(jz) * n + i];
    }
    for (int jx = 0; jx < order; ++jx) {
      int kx = sk0_[0][i] - jx;
      if (kx < 0) kx += static_cast<int>(dims[0]);
      const double wxv = sw_[0][static_cast<std::size_t>(jx) * n + i];
      for (int jy = 0; jy < order; ++jy) {
        int ky = sk0_[1][i] - jy;
        if (ky < 0) ky += static_cast<int>(dims[1]);
        const double wxy =
            q * wxv * sw_[1][static_cast<std::size_t>(jy) * n + i];
        double* row =
            rgrid_.data() +
            (static_cast<std::size_t>(kx) * ny + static_cast<std::size_t>(ky)) *
                nz;
        if (k0z >= order - 1) {
          // Non-wrapping stencil: taps k0z, k0z-1, ... are contiguous.
          double* tap = row + k0z;
#pragma omp simd
          for (int jz = 0; jz < order; ++jz) tap[-jz] += wxy * wz[jz];
        } else {
          for (int jz = 0; jz < order; ++jz) {
            int kz = k0z - jz;
            if (kz < 0) kz += static_cast<int>(nz);
            row[kz] += wxy * wz[jz];
          }
        }
      }
    }
  }
#pragma omp simd
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    grid_[i] = fft::Complex(rgrid_[i], 0.0);
  }

  fft_.forward(grid_.data());
  const double energy = convolve_energy();
  fft_.inverse(grid_.data());

#pragma omp simd
  for (std::size_t i = 0; i < grid_.size(); ++i) rgrid_[i] = grid_[i].real();

  // Force interpolation from the real potential grid. The jz accumulation
  // stays a plain loop (no reduction pragma) so the three force sums add
  // in exactly the scalar order.
  const double sx = static_cast<double>(params_.nx) / box_.lx();
  const double sy = static_cast<double>(params_.ny) / box_.ly();
  const double sz = static_cast<double>(params_.nz) / box_.lz();
  for (std::size_t i = 0; i < n; ++i) {
    const double q = topo.atom(static_cast<int>(i)).charge;
    if (q == 0.0) continue;
    const int k0z = sk0_[2][i];
    double wz[kMaxOrder];
    double dwz[kMaxOrder];
    for (int jz = 0; jz < order; ++jz) {
      wz[jz] = sw_[2][static_cast<std::size_t>(jz) * n + i];
      dwz[jz] = sdw_[2][static_cast<std::size_t>(jz) * n + i];
    }
    Vec3 f{};
    for (int jx = 0; jx < order; ++jx) {
      int kx = sk0_[0][i] - jx;
      if (kx < 0) kx += static_cast<int>(dims[0]);
      const double wxv = sw_[0][static_cast<std::size_t>(jx) * n + i];
      const double dwxv = sdw_[0][static_cast<std::size_t>(jx) * n + i];
      for (int jy = 0; jy < order; ++jy) {
        int ky = sk0_[1][i] - jy;
        if (ky < 0) ky += static_cast<int>(dims[1]);
        const double wyv = sw_[1][static_cast<std::size_t>(jy) * n + i];
        const double dwyv = sdw_[1][static_cast<std::size_t>(jy) * n + i];
        const double* row =
            rgrid_.data() +
            (static_cast<std::size_t>(kx) * ny + static_cast<std::size_t>(ky)) *
                nz;
        if (k0z >= order - 1) {
          const double* tap = row + k0z;
          for (int jz = 0; jz < order; ++jz) {
            const double phi = tap[-jz];
            f.x += dwxv * wyv * wz[jz] * phi;
            f.y += wxv * dwyv * wz[jz] * phi;
            f.z += wxv * wyv * dwz[jz] * phi;
          }
        } else {
          for (int jz = 0; jz < order; ++jz) {
            int kz = k0z - jz;
            if (kz < 0) kz += static_cast<int>(nz);
            const double phi = row[kz];
            f.x += dwxv * wyv * wz[jz] * phi;
            f.y += wxv * dwyv * wz[jz] * phi;
            f.z += wxv * wyv * dwz[jz] * phi;
          }
        }
      }
    }
    forces[i] -= Vec3{f.x * sx, f.y * sy, f.z * sz} * q;
  }

  if (work != nullptr) {
    work->atoms_spread += n;
    work->stencil_points +=
        2 * n * static_cast<std::size_t>(order * order * order);
    work->mesh_points += grid_.size();
    work->fft_flops += 2.0 * fft_.flops();
  }
  return energy;
}

// --- ParallelPme -------------------------------------------------------------

ParallelPme::ParallelPme(const PmeParams& params, const Box& box,
                         middleware::Middleware& mw,
                         std::function<void(double)> charge_compute,
                         util::KernelKind kind)
    : params_(params),
      box_(box),
      mw_(mw),
      charge_(std::move(charge_compute)),
      pfft_(params.nx, params.ny, params.nz, mw, charge_, kind),
      modx_(bspline_moduli(params.nx, params.order)),
      mody_(bspline_moduli(params.ny, params.order)),
      modz_(bspline_moduli(params.nz, params.order)),
      xslab_(pfft_.x_slab_size()),
      zslab_(pfft_.z_slab_size()) {}

double ParallelPme::reciprocal(const Topology& topo,
                               const std::vector<Vec3>& pos,
                               std::vector<Vec3>& forces, PmeWork* work) {
  const auto n = static_cast<std::size_t>(topo.natoms());
  REPRO_REQUIRE(pos.size() == n, "position array size mismatch");
  const int order = params_.order;
  const int me = mw_.rank();
  const std::size_t xb = pfft_.x_slabs().begin(me);
  const std::size_t xe = pfft_.x_slabs().end(me);
  const auto K =
      static_cast<double>(params_.nx * params_.ny * params_.nz);

  // Spread the charges of every atom whose x-stencil intersects my slab,
  // onto the owned x-planes only. Positions are replicated, so no
  // communication is needed here; boundary atoms are handled by the slabs
  // on both sides, each accumulating its own planes.
  std::fill(xslab_.begin(), xslab_.end(), fft::Complex(0, 0));
  std::size_t atoms_touched = 0;
  std::size_t stencil = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double q = topo.atom(static_cast<int>(i)).charge;
    if (q == 0.0) continue;
    // Cheap rejection on the x-coordinate before computing full splines.
    const double ux = frac_coord(pos[i].x, box_.lx(), params_.nx);
    const int k0x = static_cast<int>(std::floor(ux));
    bool touches = false;
    for (int jx = 0; jx < order && !touches; ++jx) {
      int kx = k0x - jx;
      if (kx < 0) kx += static_cast<int>(params_.nx);
      touches = static_cast<std::size_t>(kx) >= xb &&
                static_cast<std::size_t>(kx) < xe;
    }
    if (!touches) continue;
    ++atoms_touched;
    const AtomSpline s = make_spline(params_, box_, pos[i]);
    for (int jx = 0; jx < order; ++jx) {
      const std::size_t kx = line(s, 0, jx, params_.nx);
      if (kx < xb || kx >= xe) continue;
      const std::size_t lx = kx - xb;
      for (int jy = 0; jy < order; ++jy) {
        const std::size_t ky = line(s, 1, jy, params_.ny);
        const double wxy = q * s.w[0][jx] * s.w[1][jy];
        for (int jz = 0; jz < order; ++jz) {
          const std::size_t kz = line(s, 2, jz, params_.nz);
          xslab_[(lx * params_.ny + ky) * params_.nz + kz] +=
              wxy * s.w[2][jz];
          ++stencil;
        }
      }
    }
  }
  if (charge_) {
    // ~6 flops per atom for the rejection test, ~20 per stencil update.
    charge_(6.0 * static_cast<double>(n) + 20.0 * static_cast<double>(stencil));
  }

  pfft_.forward(xslab_.data(), zslab_.data());

  // Convolution over my z-planes of k-space; z-slab layout is [lz][ny][nx].
  const Influence fac(params_, box_, modx_, mody_, modz_);
  const std::size_t zb = pfft_.z_slabs().begin(me);
  const std::size_t lz = pfft_.local_z_count();
  double energy = 0.0;
  for (std::size_t zl = 0; zl < lz; ++zl) {
    const std::size_t mz = zb + zl;
    for (std::size_t my = 0; my < params_.ny; ++my) {
      for (std::size_t mx = 0; mx < params_.nx; ++mx) {
        const std::size_t idx = (zl * params_.ny + my) * params_.nx + mx;
        const double f = fac(mx, my, mz);
        energy += 0.5 * f * std::norm(zslab_[idx]);
        zslab_[idx] *= f * K;
      }
    }
  }
  if (charge_) {
    charge_(12.0 * static_cast<double>(lz * params_.ny * params_.nx));
  }

  pfft_.backward(zslab_.data(), xslab_.data());

  // Force interpolation over owned x-planes; partial sums are completed by
  // the global force reduction.
  const double sx = static_cast<double>(params_.nx) / box_.lx();
  const double sy = static_cast<double>(params_.ny) / box_.ly();
  const double sz = static_cast<double>(params_.nz) / box_.lz();
  std::size_t interp_stencil = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double q = topo.atom(static_cast<int>(i)).charge;
    if (q == 0.0) continue;
    const double ux = frac_coord(pos[i].x, box_.lx(), params_.nx);
    const int k0x = static_cast<int>(std::floor(ux));
    bool touches = false;
    for (int jx = 0; jx < order && !touches; ++jx) {
      int kx = k0x - jx;
      if (kx < 0) kx += static_cast<int>(params_.nx);
      touches = static_cast<std::size_t>(kx) >= xb &&
                static_cast<std::size_t>(kx) < xe;
    }
    if (!touches) continue;
    const AtomSpline s = make_spline(params_, box_, pos[i]);
    Vec3 f{};
    for (int jx = 0; jx < order; ++jx) {
      const std::size_t kx = line(s, 0, jx, params_.nx);
      if (kx < xb || kx >= xe) continue;
      const std::size_t lx = kx - xb;
      for (int jy = 0; jy < order; ++jy) {
        const std::size_t ky = line(s, 1, jy, params_.ny);
        for (int jz = 0; jz < order; ++jz) {
          const std::size_t kz = line(s, 2, jz, params_.nz);
          const double phi =
              xslab_[(lx * params_.ny + ky) * params_.nz + kz].real();
          f.x += s.dw[0][jx] * s.w[1][jy] * s.w[2][jz] * phi;
          f.y += s.w[0][jx] * s.dw[1][jy] * s.w[2][jz] * phi;
          f.z += s.w[0][jx] * s.w[1][jy] * s.dw[2][jz] * phi;
          ++interp_stencil;
        }
      }
    }
    forces[i] -= Vec3{f.x * sx, f.y * sy, f.z * sz} * q;
  }
  if (charge_) {
    charge_(6.0 * static_cast<double>(n) +
            22.0 * static_cast<double>(interp_stencil));
  }

  if (work != nullptr) {
    work->atoms_spread += atoms_touched;
    work->stencil_points += stencil + interp_stencil;
    work->mesh_points += lz * params_.ny * params_.nx;
  }
  return energy;
}

// --- PencilPme ---------------------------------------------------------------

PencilPme::PencilPme(const PmeParams& params, const Box& box, mpi::Comm& comm,
                     int py, int pz, std::vector<GridRegion> regions,
                     std::function<void(double)> charge_compute,
                     util::KernelKind kind)
    : params_(params),
      box_(box),
      comm_(comm),
      charge_(std::move(charge_compute)),
      pfft_(fft::PencilGrid(params.nx, params.ny, params.nz, py, pz), comm,
            charge_, kind),
      regions_(std::move(regions)),
      modx_(bspline_moduli(params.nx, params.order)),
      mody_(bspline_moduli(params.ny, params.order)),
      modz_(bspline_moduli(params.nz, params.order)) {
  REPRO_REQUIRE(regions_.size() == static_cast<std::size_t>(comm_.size()),
                "pencil PME needs one grid region per rank");
  REPRO_REQUIRE(py * pz <= comm_.size(),
                "pencil process grid needs more ranks than the run has");
  const int me = comm_.rank();
  const GridRegion& reg = my_region();
  region_.resize(reg.cx * reg.cy * reg.cz);
  stage1_.resize(pfft_.grid().stage1_size(me));
  stage3_.resize(pfft_.grid().stage3_size(me));
}

// Charge plane exchange: every rank ships, for each stage-1 pencil owner
// q, the part of its spread region that lands on q's (y, z) planes — all
// of the region's x extent, the y/z overlap with q's pencil. Elements are
// enumerated in region-local (x, y, z) order filtered by membership, the
// same loop on the packing, unpacking, and predicting sides. Receivers
// ACCUMULATE: neighbor regions overlap by the stencil pad, and each atom
// is spread exactly once (by its owner), so summing the blocks
// reconstructs the full charge grid. Self blocks are local copies; the
// all-sends-then-all-recvs order is deadlock-free under eager sends.
void PencilPme::exchange_charges(int tag) {
  const int me = comm_.rank();
  const int nprocs = comm_.size();
  const fft::PencilGrid& g = pfft_.grid();
  const GridRegion& reg = my_region();
  std::fill(stage1_.begin(), stage1_.end(), fft::Complex(0, 0));
  std::size_t moved = 0;

  // Pack my region's block for pencil owner q (or accumulate directly
  // when q == me).
  auto pack_or_self = [&](int q, bool self) {
    const std::size_t yb = g.ypart.begin(g.ycoord(q));
    const std::size_t ye = g.ypart.end(g.ycoord(q));
    const std::size_t zb = g.zpart.begin(g.zcoord(q));
    const std::size_t ze = g.zpart.end(g.zcoord(q));
    const std::size_t lz1 = g.zpart.count(g.zcoord(me));
    std::size_t at = 0;
    for (std::size_t xl = 0; xl < reg.cx; ++xl) {
      const std::size_t x = (reg.x0 + xl) % g.nx;
      for (std::size_t yl = 0; yl < reg.cy; ++yl) {
        const std::size_t y = (reg.y0 + yl) % g.ny;
        if (y < yb || y >= ye) continue;
        for (std::size_t zl = 0; zl < reg.cz; ++zl) {
          const std::size_t z = (reg.z0 + zl) % g.nz;
          if (z < zb || z >= ze) continue;
          const double v = region_[(xl * reg.cy + yl) * reg.cz + zl];
          if (self) {
            stage1_[((y - yb) * lz1 + (z - zb)) * g.nx + x] += v;
          } else {
            if (msgbuf_.size() <= at) msgbuf_.resize(at + 1);
            msgbuf_[at] = v;
          }
          ++at;
        }
      }
    }
    return at;
  };
  // Unpack rank r's block into my stage-1 pencils.
  auto unpack_from = [&](int r) {
    const GridRegion& rr = regions_[static_cast<std::size_t>(r)];
    const std::size_t yb = g.ypart.begin(g.ycoord(me));
    const std::size_t ye = g.ypart.end(g.ycoord(me));
    const std::size_t zb = g.zpart.begin(g.zcoord(me));
    const std::size_t ze = g.zpart.end(g.zcoord(me));
    const std::size_t lz1 = g.zpart.count(g.zcoord(me));
    std::size_t i = 0;
    for (std::size_t xl = 0; xl < rr.cx; ++xl) {
      const std::size_t x = (rr.x0 + xl) % g.nx;
      for (std::size_t yl = 0; yl < rr.cy; ++yl) {
        const std::size_t y = (rr.y0 + yl) % g.ny;
        if (y < yb || y >= ye) continue;
        for (std::size_t zl = 0; zl < rr.cz; ++zl) {
          const std::size_t z = (rr.z0 + zl) % g.nz;
          if (z < zb || z >= ze) continue;
          stage1_[((y - yb) * lz1 + (z - zb)) * g.nx + x] += msgbuf_[i++];
        }
      }
    }
    return i;
  };
  auto block_elems = [&](const GridRegion& rr, int q) {
    if (rr.empty() || !g.participates(q)) return std::size_t{0};
    const int yc = g.ycoord(q);
    const int zc = g.zcoord(q);
    return rr.cx *
           wrapped_overlap(rr.y0, rr.cy, g.ny, g.ypart.begin(yc),
                           g.ypart.end(yc)) *
           wrapped_overlap(rr.z0, rr.cz, g.nz, g.zpart.begin(zc),
                           g.zpart.end(zc));
  };

  if (g.participates(me) && !reg.empty()) {
    moved += 2 * pack_or_self(me, /*self=*/true);
  }
  if (!reg.empty()) {
    for (int q = 0; q < nprocs; ++q) {
      if (q == me || block_elems(reg, q) == 0) continue;
      const std::size_t n = pack_or_self(q, /*self=*/false);
      comm_.send(q, tag, msgbuf_.data(), n * sizeof(double));
      moved += n;
    }
  }
  if (g.participates(me)) {
    for (int r = 0; r < nprocs; ++r) {
      if (r == me) continue;
      const std::size_t n =
          block_elems(regions_[static_cast<std::size_t>(r)], me);
      if (n == 0) continue;
      if (msgbuf_.size() < n) msgbuf_.resize(n);
      comm_.recv(r, tag, msgbuf_.data(), n * sizeof(double));
      moved += unpack_from(r);
    }
  }
  charge(static_cast<double>(moved));  // ~1 flop per packed/unpacked element
}

// Potential plane exchange: the reverse direction with identical block
// geometry — each stage-1 owner returns the real part of the transformed
// grid to every region that overlaps its pencils. The (y, z) pencils tile
// the grid, so every region point is WRITTEN by exactly one owner and the
// receiver assigns instead of accumulating.
void PencilPme::return_potential(int tag) {
  const int me = comm_.rank();
  const int nprocs = comm_.size();
  const fft::PencilGrid& g = pfft_.grid();
  const GridRegion& reg = my_region();
  std::size_t moved = 0;

  // Pack the block of rank r's region that my stage-1 pencils own (or
  // write it straight into my own region when r == me).
  auto pack_or_self = [&](int r, bool self) {
    const GridRegion& rr = regions_[static_cast<std::size_t>(r)];
    const std::size_t yb = g.ypart.begin(g.ycoord(me));
    const std::size_t ye = g.ypart.end(g.ycoord(me));
    const std::size_t zb = g.zpart.begin(g.zcoord(me));
    const std::size_t ze = g.zpart.end(g.zcoord(me));
    const std::size_t lz1 = g.zpart.count(g.zcoord(me));
    std::size_t at = 0;
    for (std::size_t xl = 0; xl < rr.cx; ++xl) {
      const std::size_t x = (rr.x0 + xl) % g.nx;
      for (std::size_t yl = 0; yl < rr.cy; ++yl) {
        const std::size_t y = (rr.y0 + yl) % g.ny;
        if (y < yb || y >= ye) continue;
        for (std::size_t zl = 0; zl < rr.cz; ++zl) {
          const std::size_t z = (rr.z0 + zl) % g.nz;
          if (z < zb || z >= ze) continue;
          const double v =
              stage1_[((y - yb) * lz1 + (z - zb)) * g.nx + x].real();
          if (self) {
            region_[(xl * rr.cy + yl) * rr.cz + zl] = v;
          } else {
            if (msgbuf_.size() <= at) msgbuf_.resize(at + 1);
            msgbuf_[at] = v;
          }
          ++at;
        }
      }
    }
    return at;
  };
  // Unpack pencil owner q's block into my region.
  auto unpack_from = [&](int q) {
    const std::size_t yb = g.ypart.begin(g.ycoord(q));
    const std::size_t ye = g.ypart.end(g.ycoord(q));
    const std::size_t zb = g.zpart.begin(g.zcoord(q));
    const std::size_t ze = g.zpart.end(g.zcoord(q));
    std::size_t i = 0;
    for (std::size_t xl = 0; xl < reg.cx; ++xl) {
      for (std::size_t yl = 0; yl < reg.cy; ++yl) {
        const std::size_t y = (reg.y0 + yl) % g.ny;
        if (y < yb || y >= ye) continue;
        for (std::size_t zl = 0; zl < reg.cz; ++zl) {
          const std::size_t z = (reg.z0 + zl) % g.nz;
          if (z < zb || z >= ze) continue;
          region_[(xl * reg.cy + yl) * reg.cz + zl] = msgbuf_[i++];
        }
      }
    }
    return i;
  };
  auto block_elems = [&](const GridRegion& rr, int q) {
    if (rr.empty() || !g.participates(q)) return std::size_t{0};
    const int yc = g.ycoord(q);
    const int zc = g.zcoord(q);
    return rr.cx *
           wrapped_overlap(rr.y0, rr.cy, g.ny, g.ypart.begin(yc),
                           g.ypart.end(yc)) *
           wrapped_overlap(rr.z0, rr.cz, g.nz, g.zpart.begin(zc),
                           g.zpart.end(zc));
  };

  if (g.participates(me) && !reg.empty()) {
    moved += 2 * pack_or_self(me, /*self=*/true);
  }
  if (g.participates(me)) {
    for (int r = 0; r < nprocs; ++r) {
      if (r == me ||
          block_elems(regions_[static_cast<std::size_t>(r)], me) == 0) {
        continue;
      }
      const std::size_t n = pack_or_self(r, /*self=*/false);
      comm_.send(r, tag, msgbuf_.data(), n * sizeof(double));
      moved += n;
    }
  }
  if (!reg.empty()) {
    for (int q = 0; q < nprocs; ++q) {
      if (q == me) continue;
      const std::size_t n = block_elems(reg, q);
      if (n == 0) continue;
      if (msgbuf_.size() < n) msgbuf_.resize(n);
      comm_.recv(q, tag, msgbuf_.data(), n * sizeof(double));
      moved += unpack_from(q);
    }
  }
  charge(static_cast<double>(moved));
}

double PencilPme::reciprocal(const Topology& topo,
                             const std::vector<Vec3>& pos,
                             const std::vector<int>& owned,
                             std::vector<Vec3>& forces, int tag_base,
                             PmeWork* work) {
  REPRO_REQUIRE(pos.size() == static_cast<std::size_t>(topo.natoms()),
                "position array size mismatch");
  const int order = params_.order;
  const fft::PencilGrid& g = pfft_.grid();
  const int me = comm_.rank();
  const GridRegion& reg = my_region();
  const auto K = static_cast<double>(params_.nx * params_.ny * params_.nz);
  const std::size_t dims[3] = {params_.nx, params_.ny, params_.nz};
  const std::size_t starts[3] = {reg.x0, reg.y0, reg.z0};
  const std::size_t counts[3] = {reg.cx, reg.cy, reg.cz};

  // Spread the owned atoms onto my region planes. The region was sized so
  // an owned atom's whole stencil fits (cell extent + spline support +
  // skin drift pad); the REQUIRE turns a violated pad into a loud failure
  // instead of silently wrong physics.
  std::fill(region_.begin(), region_.end(), 0.0);
  std::vector<AtomSpline> splines(owned.size());
  std::size_t atoms_touched = 0;
  std::size_t stencil = 0;
  for (std::size_t oi = 0; oi < owned.size(); ++oi) {
    const int i = owned[oi];
    const double q = topo.atom(i).charge;
    if (q == 0.0) continue;
    ++atoms_touched;
    const AtomSpline s =
        make_spline(params_, box_, pos[static_cast<std::size_t>(i)]);
    splines[oi] = s;
    std::size_t off[3][kMaxOrder];
    for (int d = 0; d < 3; ++d) {
      for (int j = 0; j < order; ++j) {
        const std::size_t k = line(s, d, j, dims[d]);
        const std::size_t o = (k + dims[d] - starts[d]) % dims[d];
        REPRO_REQUIRE(o < counts[d],
                      "owned atom's PME stencil left its rank's grid region "
                      "(stencil pad too small for this drift)");
        off[d][j] = o;
      }
    }
    for (int jx = 0; jx < order; ++jx) {
      for (int jy = 0; jy < order; ++jy) {
        const double wxy = q * s.w[0][jx] * s.w[1][jy];
        const std::size_t base = (off[0][jx] * reg.cy + off[1][jy]) * reg.cz;
        for (int jz = 0; jz < order; ++jz) {
          region_[base + off[2][jz]] += wxy * s.w[2][jz];
          ++stencil;
        }
      }
    }
  }
  charge(6.0 * static_cast<double>(owned.size()) +
         20.0 * static_cast<double>(stencil));

  exchange_charges(tag_base + 0);
  pfft_.forward(stage1_.data(), stage3_.data(), tag_base + 1, tag_base + 2);

  // Convolution + partial energy over my stage-3 pencils: x in Xp(yc),
  // y in Y2p(zc), all z — each wavevector on exactly one rank.
  const Influence fac(params_, box_, modx_, mody_, modz_);
  double energy = 0.0;
  std::size_t mesh = 0;
  if (g.participates(me)) {
    const int yc = g.ycoord(me);
    const int zc = g.zcoord(me);
    const std::size_t xb = g.xpart.begin(yc);
    const std::size_t lx2 = g.xpart.count(yc);
    const std::size_t yb = g.y2part.begin(zc);
    const std::size_t ly3 = g.y2part.count(zc);
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t yl = 0; yl < ly3; ++yl) {
        fft::Complex* lin = stage3_.data() + (xl * ly3 + yl) * params_.nz;
        for (std::size_t mz = 0; mz < params_.nz; ++mz) {
          const double f = fac(xb + xl, yb + yl, mz);
          energy += 0.5 * f * std::norm(lin[mz]);
          lin[mz] *= f * K;
        }
      }
    }
    mesh = lx2 * ly3 * params_.nz;
    charge(12.0 * static_cast<double>(mesh));
  }

  pfft_.backward(stage3_.data(), stage1_.data(), tag_base + 3, tag_base + 4);
  return_potential(tag_base + 5);

  // Force interpolation for owned atoms only: the whole stencil is inside
  // the region, so the force on an owned atom is complete right here — no
  // reciprocal-force reduction follows.
  const double sx = static_cast<double>(params_.nx) / box_.lx();
  const double sy = static_cast<double>(params_.ny) / box_.ly();
  const double sz = static_cast<double>(params_.nz) / box_.lz();
  std::size_t interp_stencil = 0;
  for (std::size_t oi = 0; oi < owned.size(); ++oi) {
    const int i = owned[oi];
    const double q = topo.atom(i).charge;
    if (q == 0.0) continue;
    const AtomSpline& s = splines[oi];
    Vec3 f{};
    for (int jx = 0; jx < order; ++jx) {
      const std::size_t ox =
          (line(s, 0, jx, params_.nx) + params_.nx - reg.x0) % params_.nx;
      for (int jy = 0; jy < order; ++jy) {
        const std::size_t oy =
            (line(s, 1, jy, params_.ny) + params_.ny - reg.y0) % params_.ny;
        const std::size_t base = (ox * reg.cy + oy) * reg.cz;
        for (int jz = 0; jz < order; ++jz) {
          const std::size_t oz =
              (line(s, 2, jz, params_.nz) + params_.nz - reg.z0) % params_.nz;
          const double phi = region_[base + oz];
          f.x += s.dw[0][jx] * s.w[1][jy] * s.w[2][jz] * phi;
          f.y += s.w[0][jx] * s.dw[1][jy] * s.w[2][jz] * phi;
          f.z += s.w[0][jx] * s.w[1][jy] * s.dw[2][jz] * phi;
          ++interp_stencil;
        }
      }
    }
    forces[static_cast<std::size_t>(i)] -=
        Vec3{f.x * sx, f.y * sy, f.z * sz} * q;
  }
  charge(6.0 * static_cast<double>(owned.size()) +
         22.0 * static_cast<double>(interp_stencil));

  if (work != nullptr) {
    work->atoms_spread += atoms_touched;
    work->stencil_points += stencil + interp_stencil;
    work->mesh_points += mesh;
    work->fft_flops += 2.0 * pfft_.local_fft_flops();
  }
  return energy;
}

}  // namespace repro::pme
