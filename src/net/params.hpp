// Network stack parameter sets (LogGP-style, plus behavioral flags).
//
// One NetworkParams instance describes one communication stack of the
// paper's factor space. Values are calibrated to published ~2001
// measurements for the CoPs cluster era (see models.cpp for the rationale
// per stack); the *relations* between stacks (latency, per-packet overhead,
// stability, driver architecture) are what the reproduction depends on.
#pragma once

#include <cstddef>
#include <string>

namespace repro::net {

// The paper's "Networking" factor: physical interconnect bundled with its
// system software.
enum class Network {
  kTcpGigE,    // MPICH over TCP/IP on Gigabit Ethernet (reference level)
  kScoreGigE,  // SCore PM on Gigabit Ethernet
  kMyrinetGM,  // MPICH-GM on Myrinet (M2F-PCI32C, LANai coprocessor)
  // The common Beowulf interconnect of the era; the paper's earlier report
  // ([17], summarized in §4.1) found it "has almost the same performance
  // characteristics and the same interactions as Gigabit Ethernet" for
  // this workload — a claim the model reproduces.
  kTcpFastEthernet,
};

std::string to_string(Network net);

struct NetworkParams {
  std::string name;

  // --- per-message host costs (seconds) -------------------------------
  double send_overhead = 0.0;  // fixed CPU cost on the sender per message
  double recv_overhead = 0.0;  // fixed CPU cost on the receiver per message

  // --- per-packet host costs (seconds) --------------------------------
  // TCP pays the protocol stack per MTU-sized packet; offloading NICs
  // (Myrinet's LANai) pay almost nothing on the host.
  double packet_cost_send = 0.0;
  double packet_cost_recv = 0.0;
  std::size_t mtu = 1460;  // payload bytes per packet

  // --- wire ------------------------------------------------------------
  double latency = 0.0;    // switch + wire one-way latency per message
  double bandwidth = 1.0;  // link bandwidth, bytes/second

  // Sender-side kernel/NIC buffering: the sender blocks (back-pressure)
  // once more than this many seconds of traffic are queued on its NIC.
  double send_buffer_time = 0.0;

  // --- intra-node path (two ranks on one dual-CPU node) ----------------
  double shm_overhead = 0.0;    // per-message cost, both sides
  double shm_bandwidth = 1.0;   // memory-copy bandwidth, bytes/second
  bool loopback_through_stack = false;  // TCP: intra-node goes via the
                                        // kernel stack (per-packet costs
                                        // and the interrupt CPU apply)

  // Half-duplex behaviour: 2001-era TCP/GigE NICs and stacks lost most of
  // their throughput under simultaneous send+receive (interrupt pressure,
  // single DMA engine). Messages that are part of a bidirectional exchange
  // (all-to-all transposes, ring shifts) see their wire time multiplied by
  // this factor; one-way traffic (tree reduce/broadcast stages) does not.
  double duplex_exchange_factor = 1.0;

  // --- driver architecture ---------------------------------------------
  // TCP on Linux 2.4: one CPU per node services NIC interrupts; inbound
  // per-packet work serializes there. SCore/Myrinet use user-level or
  // coprocessor paths without that bottleneck.
  bool rx_uses_interrupt_cpu = false;
  // Multiplier on host per-packet costs when two ranks share a node
  // (kernel lock contention / cacheline bouncing on SMP TCP).
  double smp_host_penalty = 1.0;
  // Wire-time divisor when either endpoint node runs two ranks: effective
  // bandwidth collapses when the kernel cannot route interrupts to the
  // right CPU (the §4.3 bottleneck). 1.0 = no effect.
  double smp_bandwidth_factor = 1.0;
  // Compute slowdown for ranks sharing a node (memory-bus contention).
  double smp_compute_penalty = 1.0;

  // --- flow-control instability (TCP) -----------------------------------
  // With >= `jitter_min_ranks` ranks, each cross-node message suffers a
  // bandwidth dip / latency spike with probability
  // jitter_prob_per_rank * (nranks - jitter_min_ranks + 1).
  double jitter_prob_per_rank = 0.0;
  int jitter_min_ranks = 4;
  double jitter_latency_mean = 0.0;   // exponential latency spike (seconds)
  double jitter_slowdown_mean = 0.0;  // exponential extra wire-time factor

  // --- protocol -----------------------------------------------------------
  // Messages of at least this many bytes use a rendezvous handshake
  // (request-to-send / clear-to-send) instead of the eager protocol, as
  // MPICH did for large transfers. 0 disables rendezvous entirely (the
  // calibrated default; see the protocol ablation bench).
  std::size_t rendezvous_threshold = 0;

  // --- receiver copy ----------------------------------------------------
  // User-space copy cost charged to the receiving process when it consumes
  // a message (kernel buffer -> application buffer), bytes/second.
  double copy_bandwidth = 1.0;
};

// Sanity-checks a parameter set: rejects mtu == 0 (packet math would
// divide by zero), non-positive bandwidth / copy_bandwidth / shm_bandwidth
// and negative costs, so future calibration edits fail loudly instead of
// silently producing nonsense timings. Throws util::Error.
void validate_params(const NetworkParams& params);

// Calibrated parameter sets for the three stacks of the paper (validated).
NetworkParams params_for(Network net);

}  // namespace repro::net
