// Fault injection and perturbation for the simulated cluster.
//
// The paper's Figure 7 shows per-node communication speed on the TCP
// stacks swinging over a wide min/max band while SCore and Myrinet stay
// flat. The base model reproduces that with a calibrated stochastic
// jitter knob (NetworkParams::jitter_*); this module models the
// *mechanisms* behind such variability so it can be studied directly:
//
//   packet loss      — per-packet Bernoulli loss on cross-node links,
//                      recovered either by a 2001-era TCP coarse
//                      retransmission timeout with exponential backoff
//                      (hundreds of milliseconds per incident) or by
//                      Myrinet-style link-level flow control (a resend
//                      costs microseconds). Same loss rate, radically
//                      different tail — the TCP variability of Figure 7
//                      emerges from the recovery discipline.
//   link degradation — persistent bandwidth/latency derating of chosen
//                      node pairs (a renegotiated duplex link, a bad
//                      cable), applied to every message between them.
//   stragglers       — per-node compute slowdown and/or periodic OS-noise
//                      bursts (daemon wakeups) that stretch compute
//                      regions on that node.
//   node stalls      — transient freezes: during [at, at + duration] the
//                      node neither computes nor sends, and inbound
//                      messages are not consumed until the window ends.
//
// All randomness comes from one xoshiro stream seeded from the cluster
// seed, so fault sequences are bit-reproducible per seed and independent
// of sweep concurrency. Faults only ever *delay* traffic — payload bytes
// are never dropped or corrupted, so collective results are unchanged and
// only timing moves (the property tests pin this).
//
// Accounting: every injected delay is attributed to the component
// (classic / PME / other) that was active on the issuing rank, so a run
// reports which part of the energy calculation absorbed the perturbation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace repro::net {

// Per-link packet loss with a recovery discipline.
struct PacketLossFault {
  // How a lost packet is recovered.
  enum class Recovery {
    // TCP on Linux 2.4: the coarse retransmission timer fires after
    // `rto` seconds; successive losses of the same packet back off
    // exponentially. The link sits idle during the wait.
    kTimeoutRetransmit,
    // Myrinet/SCore-style link-level flow control: the hardware resends
    // after one link round trip; the host never notices.
    kLinkLevel,
  };

  double loss_prob = 0.0;  // per-packet loss probability, [0, 1)
  Recovery recovery = Recovery::kTimeoutRetransmit;
  double rto = 0.2;         // initial retransmission timeout (seconds)
  double rto_backoff = 2.0; // RTO multiplier per successive loss
  int max_retries = 16;     // per packet; further losses deliver anyway
};

// Persistent degradation of the link between two nodes (both directions).
struct LinkDegradation {
  int node_a = 0;
  int node_b = 0;
  double bandwidth_factor = 1.0;  // effective bandwidth multiplier, (0, 1]
  double extra_latency = 0.0;     // added one-way latency (seconds)
};

// A straggler node: uniformly slow compute and/or periodic OS noise.
struct Straggler {
  int node = 0;
  double compute_factor = 1.0;  // multiplier on compute time, >= 1
  double noise_period = 0.0;    // a burst every `period` virtual seconds
  double noise_duration = 0.0;  // each burst steals this much CPU time
};

// A transient full-node stall (kernel hiccup, checkpoint pause).
struct NodeStall {
  int node = 0;
  double at = 0.0;        // window start (virtual seconds)
  double duration = 0.0;  // window length
};

struct FaultSpec {
  std::vector<PacketLossFault> packet_loss;  // 0 or 1 entries in practice
  std::vector<LinkDegradation> degraded_links;
  std::vector<Straggler> stragglers;
  std::vector<NodeStall> stalls;

  bool any() const {
    return !packet_loss.empty() || !degraded_links.empty() ||
           !stragglers.empty() || !stalls.empty();
  }

  // Throws util::Error when a parameter is out of range (probabilities,
  // factors, windows) or, when nnodes >= 0, when a node index does not
  // exist on the cluster.
  void validate(int nnodes = -1) const;
};

// Parses the CLI mini-language (see docs/FAULTS.md):
//   loss=P[,rto=S][,backoff=B][,retries=N][,recovery=timeout|linklevel]
//   degrade=A-B[,bw=F][,lat=S]
//   straggler=N[,x=F][,period=S][,dur=S]
//   stall=N[,at=S][,dur=S]
// Clauses are separated by ';'. Throws util::Error on malformed input.
FaultSpec parse_fault_spec(const std::string& text);

// Canonical spec string (round-trips through parse_fault_spec).
std::string to_string(const FaultSpec& spec);

// Absorbed-delay classes, mirroring perf::Component (classic, pme, other)
// without a dependency on the perf layer.
inline constexpr int kFaultAbsorbClasses = 3;

// Cumulative injected-fault counters for one run.
struct FaultCounters {
  std::uint64_t packets_lost = 0;      // lost transmissions (incl. retries)
  std::uint64_t retransmits = 0;       // recovery rounds triggered
  double retransmitted_bytes = 0.0;    // payload bytes sent again
  double retransmit_delay = 0.0;       // recovery waits injected (seconds)
  std::uint64_t degraded_messages = 0; // messages over a degraded link
  double degradation_delay = 0.0;
  std::uint64_t noise_bursts = 0;      // OS-noise bursts absorbed
  double noise_delay = 0.0;
  double straggler_delay = 0.0;        // extra compute from slow nodes
  std::uint64_t stall_events = 0;      // stall windows hit
  double stall_delay = 0.0;
  // Injected delay attributed to the component active when it was
  // absorbed, indexed like perf::Component (classic, pme, other).
  std::array<double, kFaultAbsorbClasses> absorbed{};

  double total_delay() const {
    return retransmit_delay + degradation_delay + noise_delay +
           straggler_delay + stall_delay;
  }
};

// Seed-deterministic fault state for one simulated run. Owned by the
// ClusterNetwork; all calls happen on the serialized engine path, so no
// locking is needed (same contract as the jitter RNG).
class FaultInjector {
 public:
  // Validates the spec against the node count; throws util::Error on a
  // bad spec. `seed` should derive from the cluster seed (mix_seed) so
  // fault streams differ per run but are reproducible.
  FaultInjector(const FaultSpec& spec, std::uint64_t seed, int nnodes);

  const FaultSpec& spec() const { return spec_; }
  const FaultCounters& counters() const { return counters_; }

  // Effect of loss + degradation on one cross-node message of `bytes`
  // payload in `packets` MTU-sized packets over a link of nominal
  // `bandwidth` (bytes/s) whose unperturbed transmission would occupy the
  // wire for `nominal_wire` seconds. Draws from the fault RNG and
  // accumulates counters.
  struct LinkEffect {
    double extra_wire = 0.0;     // additional link occupancy (seconds)
    double extra_latency = 0.0;  // additional arrival delay (seconds)
    double retrans_bytes = 0.0;
    std::uint32_t retransmits = 0;
    double total_delay() const { return extra_wire + extra_latency; }
  };
  LinkEffect perturb_link(int src_node, int dst_node, std::size_t bytes,
                          std::size_t packets, std::size_t mtu,
                          double bandwidth, double latency,
                          double nominal_wire);

  // Earliest time >= t at which `node` is not frozen by a stall window.
  // Accumulates stall counters when t falls inside a window.
  double stall_release(int node, double t);

  // Extra time a compute region of `duration` starting at `t` on `node`
  // absorbs: straggler slowdown, OS-noise bursts inside the window, and
  // stall windows overlapping it.
  double perturb_compute(int node, double t, double duration);

  // Attributes `delay` seconds of injected perturbation to a component
  // class (perf::Component value as int).
  void attribute(int component_class, double delay);

 private:
  const LinkDegradation* degradation_for(int a, int b) const;

  FaultSpec spec_;
  int nnodes_ = 0;
  util::Rng rng_;
  FaultCounters counters_;
  // Per-node straggler lookup (nullptr when the node is healthy).
  std::vector<const Straggler*> straggler_of_;
};

}  // namespace repro::net
