#include "net/topology.hpp"

#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace repro::net {

namespace {

const char* kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSingleSwitch:
      return "single";
    case TopologyKind::kFatTree:
      return "fattree";
    case TopologyKind::kTorus:
      return "torus";
  }
  return "?";
}

// Strict numeric field parsers, mirroring the fault-spec mini-language:
// a typo must fail loudly, not silently pick a default.
long parse_long(const std::string& what, const std::string& text) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw util::Error("topology spec: bad " + what + " value '" + text + "'");
  }
  return v;
}

double parse_double(const std::string& what, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw util::Error("topology spec: bad " + what + " value '" + text + "'");
  }
  return v;
}

}  // namespace

void TopologySpec::validate(int nnodes) const {
  switch (kind) {
    case TopologyKind::kSingleSwitch:
      return;
    case TopologyKind::kFatTree:
      REPRO_REQUIRE(radix >= 1, "fat-tree radix must be >= 1");
      REPRO_REQUIRE(oversubscription >= 1.0,
                    "fat-tree oversubscription must be >= 1 (1 = full "
                    "bisection bandwidth)");
      return;
    case TopologyKind::kTorus: {
      REPRO_REQUIRE(torus_x >= 0 && torus_y >= 0 && torus_z >= 0,
                    "torus extents must be nonnegative (0 = derive)");
      const bool fixed = torus_x > 0 || torus_y > 0 || torus_z > 0;
      if (fixed && nnodes >= 0) {
        const long cap = static_cast<long>(std::max(torus_x, 1)) *
                         std::max(torus_y, 1) * std::max(torus_z, 1);
        REPRO_REQUIRE(cap >= nnodes,
                      "torus grid is smaller than the cluster (" +
                          std::to_string(cap) + " slots for " +
                          std::to_string(nnodes) + " nodes)");
      }
      return;
    }
  }
}

TopologySpec parse_topology_spec(const std::string& text) {
  TopologySpec spec;
  const std::size_t colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  if (kind == "single") {
    spec.kind = TopologyKind::kSingleSwitch;
  } else if (kind == "fattree") {
    spec.kind = TopologyKind::kFatTree;
  } else if (kind == "torus") {
    spec.kind = TopologyKind::kTorus;
  } else {
    throw util::Error("topology spec: unknown kind '" + kind +
                      "' (expected single, fattree or torus)");
  }
  if (colon == std::string::npos) {
    spec.validate();
    return spec;
  }
  REPRO_REQUIRE(!spec.single(), "topology spec: 'single' takes no options");

  std::string rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string clause = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw util::Error("topology spec: expected key=value, got '" + clause +
                        "'");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (spec.kind == TopologyKind::kFatTree && key == "radix") {
      spec.radix = static_cast<int>(parse_long(key, value));
    } else if (spec.kind == TopologyKind::kFatTree && key == "over") {
      spec.oversubscription = parse_double(key, value);
    } else if (spec.kind == TopologyKind::kTorus && key == "x") {
      spec.torus_x = static_cast<int>(parse_long(key, value));
    } else if (spec.kind == TopologyKind::kTorus && key == "y") {
      spec.torus_y = static_cast<int>(parse_long(key, value));
    } else if (spec.kind == TopologyKind::kTorus && key == "z") {
      spec.torus_z = static_cast<int>(parse_long(key, value));
    } else {
      throw util::Error("topology spec: unknown option '" + key + "' for " +
                        kind_name(spec.kind));
    }
  }
  spec.validate();
  return spec;
}

std::string to_string(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::kSingleSwitch:
      return "single";
    case TopologyKind::kFatTree: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "fattree:radix=%d,over=%g", spec.radix,
                    spec.oversubscription);
      return buf;
    }
    case TopologyKind::kTorus: {
      if (spec.torus_x == 0 && spec.torus_y == 0 && spec.torus_z == 0) {
        return "torus";
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "torus:x=%d,y=%d,z=%d", spec.torus_x,
                    spec.torus_y, spec.torus_z);
      return buf;
    }
  }
  return "?";
}

Topology::Topology(const TopologySpec& spec, int nnodes)
    : spec_(spec), nnodes_(nnodes) {
  spec_.validate(nnodes);
  REPRO_REQUIRE(nnodes >= 1, "topology needs at least one node");
  switch (spec_.kind) {
    case TopologyKind::kSingleSwitch:
      return;
    case TopologyKind::kFatTree: {
      const int nswitches = (nnodes + spec_.radix - 1) / spec_.radix;
      link_storage_.reserve(static_cast<std::size_t>(nswitches) * 2);
      for (int s = 0; s < nswitches; ++s) {
        const std::string prefix = "sw" + std::to_string(s) + "/";
        link_storage_.push_back(
            std::make_unique<sim::Resource>(prefix + "up"));
        link_storage_.push_back(
            std::make_unique<sim::Resource>(prefix + "down"));
      }
      break;
    }
    case TopologyKind::kTorus: {
      // Resolve the grid: derived tori are near-square and 2-D, which
      // keeps link counts and route lengths predictable.
      tx_ = spec_.torus_x;
      ty_ = spec_.torus_y;
      tz_ = spec_.torus_z;
      if (tx_ == 0 && ty_ == 0 && tz_ == 0) {
        tx_ = static_cast<int>(
            std::ceil(std::sqrt(static_cast<double>(nnodes))));
        ty_ = (nnodes + tx_ - 1) / tx_;
        tz_ = 1;
      } else {
        tx_ = std::max(tx_, 1);
        ty_ = std::max(ty_, 1);
        tz_ = std::max(tz_, 1);
      }
      // 6 directed links per grid slot (+x,-x,+y,-y,+z,-z). Links exist
      // for every slot, not just populated nodes: a route between real
      // nodes may pass through an empty slot of a non-full grid (its
      // switch hardware exists even when no node is attached). Unused
      // directions in flat dimensions simply never see traffic.
      const int slots = tx_ * ty_ * tz_;
      link_storage_.reserve(static_cast<std::size_t>(slots) * 6);
      static const char* kDir[6] = {"+x", "-x", "+y", "-y", "+z", "-z"};
      for (int n = 0; n < slots; ++n) {
        const std::string prefix = "torus/n" + std::to_string(n) + "/";
        for (int d = 0; d < 6; ++d) {
          link_storage_.push_back(
              std::make_unique<sim::Resource>(prefix + kDir[d]));
        }
      }
      break;
    }
  }
  links_.reserve(link_storage_.size());
  for (const auto& l : link_storage_) links_.push_back(l.get());
}

sim::Resource& Topology::link(std::size_t index) {
  return *link_storage_[index];
}

int Topology::hops(int src_node, int dst_node) const {
  if (src_node == dst_node) return 0;
  switch (spec_.kind) {
    case TopologyKind::kSingleSwitch:
      return 0;
    case TopologyKind::kFatTree:
      return edge_switch_of(src_node) == edge_switch_of(dst_node) ? 0 : 2;
    case TopologyKind::kTorus: {
      int total = 0;
      int a = src_node;
      int b = dst_node;
      const int dims[3] = {tx_, ty_, tz_};
      for (int k : dims) {
        const int ca = a % k;
        const int cb = b % k;
        a /= k;
        b /= k;
        const int fwd = (cb - ca + k) % k;
        total += std::min(fwd, k - fwd);
      }
      return total;
    }
  }
  return 0;
}

Topology::Traverse Topology::traverse(int src_node, int dst_node,
                                      double start, double wire,
                                      double hop_latency) {
  Traverse t;
  t.ready = start;
  if (src_node == dst_node) return t;
  switch (spec_.kind) {
    case TopologyKind::kSingleSwitch:
      return t;
    case TopologyKind::kFatTree: {
      const int s1 = edge_switch_of(src_node);
      const int s2 = edge_switch_of(dst_node);
      // Same edge switch: one crossbar hop, identical to the single-switch
      // model (its latency is already folded into NetworkParams::latency).
      if (s1 == s2) return t;
      // Up through the (oversubscribed) uplink, across the core, down
      // through the destination switch's downlink. Store-and-forward: each
      // stage begins one switch latency after the previous stage's last
      // bit.
      const double up_wire = wire * spec_.oversubscription;
      const sim::Interval up =
          link(static_cast<std::size_t>(s1) * 2)
              .acquire(t.ready + hop_latency, up_wire);
      const sim::Interval down =
          link(static_cast<std::size_t>(s2) * 2 + 1)
              .acquire(up.end + hop_latency, wire);
      t.ready = down.end;
      t.hop_wire = up_wire + wire;
      t.hops = 2;
      return t;
    }
    case TopologyKind::kTorus: {
      // Dimension-ordered routing: correct x, then y, then z, taking the
      // shorter way around each ring (positive direction on an exact tie).
      int cur = src_node;
      int cx = cur % tx_;
      int cy = (cur / tx_) % ty_;
      int cz = cur / (tx_ * ty_);
      int dx = dst_node % tx_;
      int dy = (dst_node / tx_) % ty_;
      int dz = dst_node / (tx_ * ty_);
      struct Dim {
        int* cur;
        int dst;
        int extent;
        int plus_dir;  // link index offset for the positive direction
        int stride;    // node-index stride of one positive step
      };
      int strides[3] = {1, tx_, tx_ * ty_};
      Dim dims[3] = {{&cx, dx, tx_, 0, strides[0]},
                     {&cy, dy, ty_, 2, strides[1]},
                     {&cz, dz, tz_, 4, strides[2]}};
      for (const Dim& d : dims) {
        while (*d.cur != d.dst) {
          const int fwd = (d.dst - *d.cur + d.extent) % d.extent;
          const bool positive = fwd <= d.extent - fwd;
          const int dir = d.plus_dir + (positive ? 0 : 1);
          const sim::Interval hop =
              link(static_cast<std::size_t>(cur) * 6 +
                   static_cast<std::size_t>(dir))
                  .acquire(t.ready + hop_latency, wire);
          t.ready = hop.end;
          t.hop_wire += wire;
          ++t.hops;
          *d.cur = positive ? (*d.cur + 1) % d.extent
                            : (*d.cur - 1 + d.extent) % d.extent;
          cur += positive ? d.stride : -d.stride;
          if (positive && *d.cur == 0) cur -= d.extent * d.stride;
          if (!positive && *d.cur == d.extent - 1) cur += d.extent * d.stride;
        }
      }
      return t;
    }
  }
  return t;
}

}  // namespace repro::net
