#include "net/cluster.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace repro::net {

ClusterNetwork::ClusterNetwork(const ClusterConfig& config,
                               const NetworkParams& params)
    : config_(config),
      params_(params),
      jitter_rng_(util::mix_seed(config.seed, 0x6e657477,
                                 static_cast<std::uint64_t>(config.nranks))) {
  REPRO_REQUIRE(config.nranks >= 1, "cluster needs at least one rank");
  REPRO_REQUIRE(config.cpus_per_node >= 1 && config.cpus_per_node <= 2,
                "CoPs nodes are uni- or dual-processor");
  validate_params(params_);
  nnodes_ = (config.nranks + config.cpus_per_node - 1) / config.cpus_per_node;
  nodes_.resize(static_cast<std::size_t>(nnodes_));
  for (int n = 0; n < nnodes_; ++n) {
    auto& node = nodes_[static_cast<std::size_t>(n)];
    const std::string prefix = "node" + std::to_string(n) + "/";
    node.nic_tx = sim::Resource(prefix + "nic_tx");
    node.nic_rx = sim::Resource(prefix + "nic_rx");
    node.irq_cpu = sim::Resource(prefix + "irq_cpu");
    registry_.push_back(&node.nic_tx);
    registry_.push_back(&node.nic_rx);
    registry_.push_back(&node.irq_cpu);
  }
  // Validates the topology spec against the node count (throws on a torus
  // grid too small for the cluster, etc).
  topology_ = std::make_unique<Topology>(config_.topology, nnodes_);
}

ClusterNetwork::ClusterNetwork(const ClusterConfig& config,
                               const NetworkParams& params,
                               const FaultSpec& faults)
    : ClusterNetwork(config, params) {
  // An empty spec leaves faults_ null: the no-fault path draws nothing
  // from the fault RNG and stays byte-identical to the two-argument form.
  if (faults.any()) {
    faults_ = std::make_unique<FaultInjector>(faults, config.seed, nnodes_);
  }
}

double ClusterNetwork::host_packet_factor(int node) const {
  // Two active ranks on the node contend for the kernel stack.
  const int first_rank = node * config_.cpus_per_node;
  const int ranks_on_node =
      std::min(config_.cpus_per_node, config_.nranks - first_rank);
  return ranks_on_node >= 2 ? params_.smp_host_penalty : 1.0;
}

MessageTiming ClusterNetwork::intra_node(int src, int dst, std::size_t bytes,
                                         double t_send) {
  MessageTiming t;
  if (params_.loopback_through_stack) {
    // TCP loopback: the kernel stack is exercised end-to-end, including
    // per-packet costs and the interrupt CPU, just without the wire.
    const double factor = host_packet_factor(node_of(src));
    const auto packets = static_cast<double>(packets_for(bytes));
    t.sender_busy = factor * (params_.send_overhead +
                              packets * params_.packet_cost_send) +
                    static_cast<double>(bytes) / params_.shm_bandwidth;
    const double rx_cost =
        factor *
        (params_.recv_overhead + packets * params_.packet_cost_recv);
    auto& irq = nodes_[static_cast<std::size_t>(node_of(dst))].irq_cpu;
    const sim::Interval rx = irq.acquire(t_send + t.sender_busy, rx_cost);
    t.arrival = rx.end;
  } else {
    // Shared-memory driver (SCore, GM): a handshake plus a memcpy.
    t.sender_busy = params_.shm_overhead +
                    static_cast<double>(bytes) / params_.shm_bandwidth;
    t.arrival = t_send + t.sender_busy + params_.shm_overhead;
  }
  t.recv_copy = static_cast<double>(bytes) / params_.copy_bandwidth;
  (void)src;
  (void)dst;
  return t;
}

MessageTiming ClusterNetwork::cross_node(int src, int dst, std::size_t bytes,
                                         double t_send, bool exchange) {
  MessageTiming t;
  const int src_node = node_of(src);
  const int dst_node = node_of(dst);
  auto& sres = nodes_[static_cast<std::size_t>(src_node)];
  auto& dres = nodes_[static_cast<std::size_t>(dst_node)];
  const auto packets = static_cast<double>(packets_for(bytes));

  // Sender host work (protocol stack / descriptor posting).
  const double send_factor = host_packet_factor(src_node);
  t.sender_busy =
      send_factor *
      (params_.send_overhead + packets * params_.packet_cost_send);

  // Outbound link occupancy. Wire time may be inflated by a flow-control
  // incident (TCP only) and by the SMP interrupt-routing bottleneck when
  // either endpoint node runs two ranks.
  double wire = static_cast<double>(bytes) / params_.bandwidth;
  if (exchange) wire *= params_.duplex_exchange_factor;
  if (params_.smp_bandwidth_factor < 1.0 &&
      (host_packet_factor(src_node) > 1.0 ||
       host_packet_factor(dst_node) > 1.0)) {
    wire /= params_.smp_bandwidth_factor;
  }
  double extra_latency = 0.0;
  if (params_.jitter_prob_per_rank > 0.0 &&
      config_.nranks >= params_.jitter_min_ranks) {
    const double prob = params_.jitter_prob_per_rank *
                        (config_.nranks - params_.jitter_min_ranks + 1);
    if (jitter_rng_.uniform() < std::min(prob, 0.9)) {
      wire *= 1.0 + jitter_rng_.exponential(params_.jitter_slowdown_mean);
      extra_latency = jitter_rng_.exponential(params_.jitter_latency_mean);
    }
  }
  if (faults_) {
    // Loss recovery and link degradation: retransmitted copies re-occupy
    // the wire (extra_wire), recovery waits and added latency delay the
    // arrival without holding the link (extra_latency).
    const FaultInjector::LinkEffect fx = faults_->perturb_link(
        src_node, dst_node, bytes, packets_for(bytes), params_.mtu,
        params_.bandwidth, params_.latency, wire);
    wire += fx.extra_wire;
    extra_latency += fx.extra_latency;
    t.fault_delay += fx.total_delay();
    t.retrans_bytes = fx.retrans_bytes;
    t.retransmits = fx.retransmits;
  }

  const double cpu_done = t_send + t.sender_busy;
  const sim::Interval tx = sres.nic_tx.acquire(cpu_done, wire);
  // Back-pressure: the sender's send() blocks until the NIC queue drains
  // below the socket-buffer window.
  t.sender_stall =
      std::max(0.0, tx.begin - cpu_done - params_.send_buffer_time);

  // Fabric traversal between the sender's and receiver's edge (fat-tree
  // uplink/downlink, torus hop chain). On the single switch this is a
  // no-op — fabric_end == tx.end and t.wire_time stays the nominal wire
  // occupancy — so the paper's model is bit-identical.
  double fabric_end = tx.end;
  double fabric_wire = 0.0;
  if (!topology_->single()) {
    const Topology::Traverse tv = topology_->traverse(
        src_node, dst_node, tx.end, wire, params_.latency);
    fabric_end = tv.ready;
    fabric_wire = tv.hop_wire;
  }

  // Inbound link occupancy at the destination models incast contention:
  // concurrent senders serialize on the receiver's link. The occupancy
  // request is the first-bit arrival; clamp it so inbound occupancy can
  // never begin before the first bit left the sender (tx.begin), whatever
  // the latency/jitter arithmetic produced.
  const double rx_wire_start = fabric_end + params_.latency + extra_latency;
  const sim::Interval rx_wire =
      dres.nic_rx.acquire(std::max(rx_wire_start - wire, tx.begin), wire);
  // rx_wire.end >= tx.end + latency; equality when the inbound link is idle.

  // Receiver-side protocol work. For TCP this serializes on the node's
  // interrupt-handling CPU (only one CPU services NIC interrupts).
  const double recv_factor = host_packet_factor(dst_node);
  const double rx_cost =
      recv_factor *
      (params_.recv_overhead + packets * params_.packet_cost_recv);
  if (params_.rx_uses_interrupt_cpu) {
    const sim::Interval rx = dres.irq_cpu.acquire(rx_wire.end, rx_cost);
    t.arrival = rx.end;
  } else {
    t.arrival = rx_wire.end + rx_cost;
  }
  t.recv_copy = static_cast<double>(bytes) / params_.copy_bandwidth;
  t.wire_time = wire + fabric_wire;
  return t;
}

MessageTiming ClusterNetwork::message(int src, int dst, std::size_t bytes,
                                      double t_send, bool exchange) {
  REPRO_REQUIRE(src >= 0 && src < config_.nranks, "message: bad src rank");
  REPRO_REQUIRE(dst >= 0 && dst < config_.nranks, "message: bad dst rank");
  REPRO_REQUIRE(src != dst, "message: src == dst (self-sends are local)");
  ++messages_;
  bytes_ += static_cast<double>(bytes);
  // A stalled sender cannot issue the send until its node unfreezes; the
  // wait is back-pressure-like from the caller's point of view.
  double t_start = t_send;
  if (faults_) {
    t_start = faults_->stall_release(node_of(src), t_send);
  }
  MessageTiming t = same_node(src, dst)
                        ? intra_node(src, dst, bytes, t_start)
                        : cross_node(src, dst, bytes, t_start, exchange);
  if (t_start > t_send) {
    t.sender_stall += t_start - t_send;
    t.fault_delay += t_start - t_send;
  }
  if (faults_) {
    // A stalled receiver does not drain its NIC: the message only becomes
    // matchable once the destination node unfreezes.
    const double released = faults_->stall_release(node_of(dst), t.arrival);
    if (released > t.arrival) {
      t.fault_delay += released - t.arrival;
      t.arrival = released;
    }
  }
  REPRO_REQUIRE(t.arrival >= t_send, "message arrival precedes send");
  ChannelState& ch = channels_[channel_key(src, dst)];
  ++ch.stats.messages;
  ch.stats.bytes += static_cast<double>(bytes);
  ch.stats.stall_time += t.sender_stall;
  ch.stats.wire_time += t.wire_time;
  if (t.arrival <= ch.last_arrival) t.arrival = ch.last_arrival + 1e-12;
  ch.last_arrival = t.arrival;
  return t;
}

void ClusterNetwork::for_each_channel(
    const std::function<void(int src, int dst, const ChannelStats&)>& fn)
    const {
  std::vector<std::uint64_t> keys;
  keys.reserve(channels_.size());
  for (const auto& [key, state] : channels_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    fn(static_cast<int>(key >> 32),
       static_cast<int>(key & 0xffffffffu),
       channels_.at(key).stats);
  }
}

}  // namespace repro::net
