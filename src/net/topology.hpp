// Hierarchical cluster topologies: how cross-node messages travel between
// nodes, beyond the paper's single 16-port switch.
//
// The 2002 study stops at 16 nodes on one switch, where every node pair is
// one switch hop apart and the only shared resources are the endpoint NICs.
// Scaling the simulated cluster to hundreds or thousands of nodes makes the
// *fabric* a first-class factor: a two-level fat-tree shares oversubscribed
// uplinks between edge switches, and a torus routes messages over chains of
// node-to-node links. Both are modeled as per-hop sim::Resource occupancy
// between the sender's NIC and the receiver's NIC, so fabric contention
// (uplink saturation, torus path collisions) emerges from the same FIFO
// resource model as NIC back-pressure and incast.
//
// The single-switch topology is the default and is *bit-identical* to the
// pre-topology model: no hop resources exist and the message timing
// arithmetic is untouched (fig2–fig9 goldens pin this).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/resource.hpp"

namespace repro::net {

enum class TopologyKind {
  kSingleSwitch,  // every node one hop from every other (the paper's CoPs)
  kFatTree,       // two-level: edge switches + oversubscribed core uplinks
  kTorus,         // k-ary n-cube, dimension-ordered routing with wraparound
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::kSingleSwitch;

  // --- fat-tree ---------------------------------------------------------
  int radix = 16;  // nodes per edge switch (downlink ports)
  // Uplink oversubscription: the edge→core uplink carries the traffic of
  // `radix` nodes over bandwidth/oversubscription, so a message crossing
  // switches occupies the uplink for oversubscription × its wire time.
  // 1.0 = full bisection bandwidth.
  double oversubscription = 1.0;

  // --- torus ------------------------------------------------------------
  // Grid extents. 0 means "derive": x = ceil(sqrt(nnodes)), y = what is
  // needed to cover nnodes, z = 1 (a 2-D torus).
  int torus_x = 0;
  int torus_y = 0;
  int torus_z = 0;

  bool single() const { return kind == TopologyKind::kSingleSwitch; }

  // Throws util::Error when a parameter is out of range, or (when
  // nnodes >= 0) when a fixed torus grid is too small for the cluster.
  void validate(int nnodes = -1) const;
};

// Parses the CLI mini-language:
//   single
//   fattree[:radix=N][,over=F]
//   torus[:x=N][,y=N][,z=N]
// Throws util::Error on malformed input.
TopologySpec parse_topology_spec(const std::string& text);

// Canonical spec string (round-trips through parse_topology_spec).
std::string to_string(const TopologySpec& spec);

// The fabric of one simulated cluster: owns the per-hop link resources and
// computes the path of a cross-node message. Constructed by ClusterNetwork;
// all calls happen on the serialized engine path (no locking, FIFO
// resources exact — same contract as the NIC resources).
class Topology {
 public:
  // Validates the spec against the node count; throws util::Error.
  Topology(const TopologySpec& spec, int nnodes);

  const TopologySpec& spec() const { return spec_; }
  bool single() const { return spec_.single(); }

  // Number of fabric hops between two distinct nodes (0 on the single
  // switch, where the one crossbar hop is folded into the wire latency;
  // 0 within a fat-tree edge switch, 2 across; Manhattan wrap distance on
  // the torus).
  int hops(int src_node, int dst_node) const;

  // Routes one message through the fabric: occupies every hop link in
  // path order (store-and-forward: each hop starts one `hop_latency`
  // after the previous hop's last bit) and returns when the last bit
  // clears the final hop, plus the total extra link occupancy incurred.
  // `wire` is the message's nominal single-link occupancy. On the single
  // switch this is a no-op returning {start, 0, 0}.
  struct Traverse {
    double ready = 0.0;     // when the last bit clears the final hop
    double hop_wire = 0.0;  // summed fabric-link occupancy (seconds)
    int hops = 0;
  };
  Traverse traverse(int src_node, int dst_node, double start, double wire,
                    double hop_latency);

  // Per-hop fabric links (edge-switch uplinks/downlinks, torus links) for
  // utilization reporting; empty on the single switch. Pointers stay valid
  // for the topology's lifetime.
  const std::vector<const sim::Resource*>& links() const { return links_; }

  // Edge switch of a node (fat-tree), torus coordinates of a node.
  int edge_switch_of(int node) const { return node / spec_.radix; }

 private:
  sim::Resource& link(std::size_t index);

  TopologySpec spec_;
  int nnodes_ = 0;
  // Resolved torus extents (spec zeros replaced by derived values).
  int tx_ = 1;
  int ty_ = 1;
  int tz_ = 1;
  // Link storage. Fat-tree: [2 * s] = switch s uplink, [2 * s + 1] =
  // switch s downlink. Torus: [6 * node + d] with d in {+x,-x,+y,-y,+z,-z}.
  std::vector<std::unique_ptr<sim::Resource>> link_storage_;
  std::vector<const sim::Resource*> links_;
};

}  // namespace repro::net
