#include "net/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace repro::net {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void FaultSpec::validate(int nnodes) const {
  auto check_node = [nnodes](int node, const char* what) {
    REPRO_REQUIRE(node >= 0, std::string(what) + ": negative node index");
    REPRO_REQUIRE(nnodes < 0 || node < nnodes,
                  std::string(what) + ": node index beyond the cluster");
  };
  for (const PacketLossFault& f : packet_loss) {
    REPRO_REQUIRE(f.loss_prob >= 0.0 && f.loss_prob < 1.0,
                  "packet loss probability must be in [0, 1)");
    REPRO_REQUIRE(f.rto > 0.0, "retransmission timeout must be positive");
    REPRO_REQUIRE(f.rto_backoff >= 1.0, "RTO backoff must be >= 1");
    REPRO_REQUIRE(f.max_retries >= 1 && f.max_retries <= 64,
                  "max_retries must be in [1, 64]");
  }
  for (const LinkDegradation& d : degraded_links) {
    check_node(d.node_a, "degraded link");
    check_node(d.node_b, "degraded link");
    REPRO_REQUIRE(d.bandwidth_factor > 0.0 && d.bandwidth_factor <= 1.0,
                  "degradation bandwidth factor must be in (0, 1]");
    REPRO_REQUIRE(d.extra_latency >= 0.0,
                  "degradation extra latency must be nonnegative");
  }
  for (const Straggler& s : stragglers) {
    check_node(s.node, "straggler");
    REPRO_REQUIRE(s.compute_factor >= 1.0,
                  "straggler compute factor must be >= 1");
    REPRO_REQUIRE(s.noise_period >= 0.0 && s.noise_duration >= 0.0,
                  "straggler noise period/duration must be nonnegative");
    REPRO_REQUIRE(s.noise_duration == 0.0 || s.noise_period > 0.0,
                  "straggler noise duration needs a positive period");
  }
  for (const NodeStall& s : stalls) {
    check_node(s.node, "node stall");
    REPRO_REQUIRE(s.at >= 0.0, "stall window start must be nonnegative");
    REPRO_REQUIRE(s.duration > 0.0, "stall window must have positive length");
  }
}

FaultInjector::FaultInjector(const FaultSpec& spec, std::uint64_t seed,
                             int nnodes)
    : spec_(spec),
      nnodes_(nnodes),
      rng_(util::mix_seed(seed, 0x6661756c74ULL /* "fault" */,
                          static_cast<std::uint64_t>(nnodes))) {
  REPRO_REQUIRE(nnodes >= 1, "fault injector needs at least one node");
  spec_.validate(nnodes);
  straggler_of_.assign(static_cast<std::size_t>(nnodes), nullptr);
  for (const Straggler& s : spec_.stragglers) {
    straggler_of_[static_cast<std::size_t>(s.node)] = &s;
  }
}

const LinkDegradation* FaultInjector::degradation_for(int a, int b) const {
  for (const LinkDegradation& d : spec_.degraded_links) {
    if ((d.node_a == a && d.node_b == b) ||
        (d.node_a == b && d.node_b == a)) {
      return &d;
    }
  }
  return nullptr;
}

FaultInjector::LinkEffect FaultInjector::perturb_link(
    int src_node, int dst_node, std::size_t bytes, std::size_t packets,
    std::size_t mtu, double bandwidth, double latency, double nominal_wire) {
  LinkEffect fx;

  // Persistent degradation first: it also slows retransmitted packets.
  double eff_bandwidth = bandwidth;
  if (const LinkDegradation* d = degradation_for(src_node, dst_node)) {
    eff_bandwidth = bandwidth * d->bandwidth_factor;
    fx.extra_wire += nominal_wire * (1.0 / d->bandwidth_factor - 1.0);
    fx.extra_latency += d->extra_latency;
    ++counters_.degraded_messages;
    counters_.degradation_delay += fx.extra_wire + d->extra_latency;
  }

  for (const PacketLossFault& loss : spec_.packet_loss) {
    if (loss.loss_prob <= 0.0) continue;
    for (std::size_t k = 0; k < packets; ++k) {
      // Payload of this packet (the tail packet may be short).
      const std::size_t pkt_bytes =
          std::min(mtu, bytes > k * mtu ? bytes - k * mtu : std::size_t{0});
      double rto = loss.rto;
      for (int attempt = 0; attempt < loss.max_retries; ++attempt) {
        if (rng_.uniform() >= loss.loss_prob) break;  // delivered
        ++counters_.packets_lost;
        ++counters_.retransmits;
        ++fx.retransmits;
        const double resent = static_cast<double>(std::max<std::size_t>(
            pkt_bytes, 1));
        counters_.retransmitted_bytes += resent;
        fx.retrans_bytes += resent;
        // The retransmitted copy re-occupies the wire...
        fx.extra_wire += resent / eff_bandwidth;
        // ...after the recovery discipline noticed the loss.
        double wait = 0.0;
        switch (loss.recovery) {
          case PacketLossFault::Recovery::kTimeoutRetransmit:
            wait = rto;
            rto *= loss.rto_backoff;
            break;
          case PacketLossFault::Recovery::kLinkLevel:
            // One link round trip: the NACK comes back, the source
            // hardware resends. The host never blocks.
            wait = 2.0 * latency;
            break;
        }
        fx.extra_latency += wait;
        counters_.retransmit_delay += wait + resent / eff_bandwidth;
      }
    }
  }
  return fx;
}

double FaultInjector::stall_release(int node, double t) {
  // Fixed point over the (unsorted) windows: leaving one window may land
  // inside another, so rescan until the release time stops moving.
  double release = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const NodeStall& s : spec_.stalls) {
      if (s.node != node) continue;
      const double end = s.at + s.duration;
      if (release >= s.at && release < end) {
        ++counters_.stall_events;
        counters_.stall_delay += end - release;
        release = end;
        moved = true;
      }
    }
  }
  return release;
}

double FaultInjector::perturb_compute(int node, double t, double duration) {
  double extra = 0.0;
  if (const Straggler* s = straggler_of_[static_cast<std::size_t>(node)]) {
    if (s->compute_factor > 1.0) {
      const double slow = duration * (s->compute_factor - 1.0);
      extra += slow;
      counters_.straggler_delay += slow;
    }
    if (s->noise_period > 0.0 && s->noise_duration > 0.0) {
      // Bursts tick at k * period, phase-shifted per node so stragglers
      // do not pause in lockstep (that would be a barrier, not noise).
      const double phase =
          s->noise_period *
          (static_cast<double>(node % 7) / 7.0);
      const double begin = t - phase;
      const double end = t + duration + extra - phase;
      const auto first =
          static_cast<std::int64_t>(std::ceil(begin / s->noise_period));
      const auto last =
          static_cast<std::int64_t>(std::floor(end / s->noise_period));
      if (last >= first) {
        const auto bursts = static_cast<std::uint64_t>(last - first + 1);
        counters_.noise_bursts += bursts;
        const double stolen = static_cast<double>(bursts) * s->noise_duration;
        counters_.noise_delay += stolen;
        extra += stolen;
      }
    }
  }
  // A stall window overlapping the region freezes it for the overlap.
  for (const NodeStall& s : spec_.stalls) {
    if (s.node != node) continue;
    const double end = t + duration + extra;
    const double overlap =
        std::min(end, s.at + s.duration) - std::max(t, s.at);
    if (overlap > 0.0) {
      ++counters_.stall_events;
      counters_.stall_delay += overlap;
      extra += overlap;
    }
  }
  return extra;
}

void FaultInjector::attribute(int component_class, double delay) {
  REPRO_REQUIRE(component_class >= 0 && component_class < kFaultAbsorbClasses,
                "fault attribution: bad component class");
  counters_.absorbed[static_cast<std::size_t>(component_class)] += delay;
}

// --- spec parsing ----------------------------------------------------------

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    REPRO_REQUIRE(used == text.size(), "trailing garbage");
    return v;
  } catch (const std::exception&) {
    throw util::Error("fault spec: bad number for " + what + ": '" + text +
                      "'");
  }
}

int parse_int(const std::string& text, const std::string& what) {
  const double v = parse_double(text, what);
  REPRO_REQUIRE(v == std::floor(v), "fault spec: " + what +
                                        " must be an integer: '" + text + "'");
  return static_cast<int>(v);
}

// "key=value" -> {key, value}; a bare word parses as {word, ""}.
std::pair<std::string, std::string> key_value(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  for (const std::string& clause : split(text, ';')) {
    if (clause.empty()) continue;
    const std::vector<std::string> tokens = split(clause, ',');
    const auto [head, head_value] = key_value(tokens[0]);

    auto modifiers = [&](auto&& handle) {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = key_value(tokens[i]);
        REPRO_REQUIRE(handle(key, value),
                      "fault spec: unknown modifier '" + key + "' in '" +
                          clause + "'");
      }
    };

    if (head == "loss") {
      PacketLossFault f;
      f.loss_prob = parse_double(head_value, "loss probability");
      modifiers([&](const std::string& key, const std::string& value) {
        if (key == "rto") {
          f.rto = parse_double(value, "rto");
        } else if (key == "backoff") {
          f.rto_backoff = parse_double(value, "backoff");
        } else if (key == "retries") {
          f.max_retries = parse_int(value, "retries");
        } else if (key == "recovery") {
          if (value == "timeout") {
            f.recovery = PacketLossFault::Recovery::kTimeoutRetransmit;
          } else if (value == "linklevel") {
            f.recovery = PacketLossFault::Recovery::kLinkLevel;
          } else {
            throw util::Error("fault spec: recovery must be 'timeout' or "
                              "'linklevel', got '" + value + "'");
          }
        } else {
          return false;
        }
        return true;
      });
      spec.packet_loss.push_back(f);
    } else if (head == "degrade") {
      LinkDegradation d;
      const std::size_t dash = head_value.find('-');
      REPRO_REQUIRE(dash != std::string::npos,
                    "fault spec: degrade needs a node pair A-B, got '" +
                        head_value + "'");
      d.node_a = parse_int(head_value.substr(0, dash), "degrade node");
      d.node_b = parse_int(head_value.substr(dash + 1), "degrade node");
      modifiers([&](const std::string& key, const std::string& value) {
        if (key == "bw") {
          d.bandwidth_factor = parse_double(value, "bw");
        } else if (key == "lat") {
          d.extra_latency = parse_double(value, "lat");
        } else {
          return false;
        }
        return true;
      });
      spec.degraded_links.push_back(d);
    } else if (head == "straggler") {
      Straggler s;
      s.node = parse_int(head_value, "straggler node");
      modifiers([&](const std::string& key, const std::string& value) {
        if (key == "x") {
          s.compute_factor = parse_double(value, "straggler factor");
        } else if (key == "period") {
          s.noise_period = parse_double(value, "noise period");
        } else if (key == "dur") {
          s.noise_duration = parse_double(value, "noise duration");
        } else {
          return false;
        }
        return true;
      });
      spec.stragglers.push_back(s);
    } else if (head == "stall") {
      NodeStall s;
      s.node = parse_int(head_value, "stall node");
      modifiers([&](const std::string& key, const std::string& value) {
        if (key == "at") {
          s.at = parse_double(value, "stall start");
        } else if (key == "dur") {
          s.duration = parse_double(value, "stall duration");
        } else {
          return false;
        }
        return true;
      });
      spec.stalls.push_back(s);
    } else {
      throw util::Error("fault spec: unknown clause '" + head +
                        "' (expected loss/degrade/straggler/stall)");
    }
  }
  spec.validate();
  return spec;
}

std::string to_string(const FaultSpec& spec) {
  std::string out;
  auto clause = [&](const std::string& s) {
    if (!out.empty()) out += ';';
    out += s;
  };
  for (const PacketLossFault& f : spec.packet_loss) {
    std::string s = "loss=" + num(f.loss_prob) + ",rto=" + num(f.rto) +
                    ",backoff=" + num(f.rto_backoff) +
                    ",retries=" + std::to_string(f.max_retries) +
                    ",recovery=";
    s += f.recovery == PacketLossFault::Recovery::kTimeoutRetransmit
             ? "timeout"
             : "linklevel";
    clause(s);
  }
  for (const LinkDegradation& d : spec.degraded_links) {
    clause("degrade=" + std::to_string(d.node_a) + "-" +
           std::to_string(d.node_b) + ",bw=" + num(d.bandwidth_factor) +
           ",lat=" + num(d.extra_latency));
  }
  for (const Straggler& s : spec.stragglers) {
    clause("straggler=" + std::to_string(s.node) + ",x=" +
           num(s.compute_factor) + ",period=" + num(s.noise_period) +
           ",dur=" + num(s.noise_duration));
  }
  for (const NodeStall& s : spec.stalls) {
    clause("stall=" + std::to_string(s.node) + ",at=" + num(s.at) +
           ",dur=" + num(s.duration));
  }
  return out;
}

}  // namespace repro::net
