// Simulated cluster: node topology, per-node resources and message timing.
//
// ClusterNetwork turns a message description (src rank, dst rank, bytes,
// send time) into a MessageTiming using the configured NetworkParams and
// the shared per-node resources (NIC tx/rx link occupancy, the interrupt
// CPU). It is shared by all simulated ranks; the discrete-event engine
// serializes access and guarantees nondecreasing request times, so no
// locking is needed and Resource's FIFO model is exact.
#pragma once

#include <cstddef>
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/faults.hpp"
#include "net/params.hpp"
#include "net/topology.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace repro::net {

// Placement of ranks onto physical nodes. Ranks are placed in blocks:
// node = rank / cpus_per_node, mirroring how mpirun filled the CoPs
// cluster's process slots.
struct ClusterConfig {
  int nranks = 1;
  int cpus_per_node = 1;
  Network network = Network::kTcpGigE;
  std::uint64_t seed = 0x5eed;
  // Fabric between the nodes. The single-switch default reproduces the
  // paper's cluster bit-identically; fat-tree/torus route cross-node
  // messages through per-hop link resources (see net/topology.hpp).
  TopologySpec topology;
};

// How one message spends its time, as computed at send time.
struct MessageTiming {
  double sender_busy = 0.0;   // sender CPU time (communication)
  double sender_stall = 0.0;  // back-pressure wait (synchronization)
  double arrival = 0.0;       // when the message becomes matchable at dst
  double recv_copy = 0.0;     // receiver CPU time on consume (communication)
  double wire_time = 0.0;     // link occupancy (0 for intra-node messages)
  // Injected-fault footprint of this message (all zero without faults):
  // total delay added by loss recovery / degradation / stalls, and the
  // retransmission traffic it triggered.
  double fault_delay = 0.0;
  double retrans_bytes = 0.0;
  std::uint32_t retransmits = 0;
};

// Cumulative traffic counters for one src→dst rank pair.
struct ChannelStats {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double stall_time = 0.0;  // sender back-pressure accumulated on this pair
  double wire_time = 0.0;   // link occupancy accumulated on this pair
};

class ClusterNetwork {
 public:
  ClusterNetwork(const ClusterConfig& config, const NetworkParams& params);
  explicit ClusterNetwork(const ClusterConfig& config)
      : ClusterNetwork(config, params_for(config.network)) {}
  // With perturbations: faults.any() arms a seed-deterministic
  // FaultInjector (seeded from config.seed, independent of the jitter
  // stream). An empty spec behaves exactly like the two-argument form.
  ClusterNetwork(const ClusterConfig& config, const NetworkParams& params,
                 const FaultSpec& faults);

  int nranks() const { return config_.nranks; }
  int nnodes() const { return nnodes_; }
  int node_of(int rank) const { return rank / config_.cpus_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  const NetworkParams& params() const { return params_; }
  const ClusterConfig& config() const { return config_; }

  // Computes the timing of one message sent at `t_send`. Mutates shared
  // resource state (NIC occupancy, jitter RNG); call exactly once per
  // message, in nondecreasing t_send order (the engine guarantees this
  // when called right after RankCtx::checkpoint()).
  // `exchange` marks messages belonging to a bidirectional exchange
  // pattern (both directions concurrently active on the endpoints).
  MessageTiming message(int src, int dst, std::size_t bytes, double t_send,
                        bool exchange = false);

  // Compute-time multiplier for a rank (memory-bus contention on dual-CPU
  // nodes; 1.0 on uni-processor nodes). Fault perturbations are separate:
  // see compute_perturbation().
  double compute_factor(int rank) const {
    const int node = node_of(rank);
    const int first = node * config_.cpus_per_node;
    const int on_node = std::min(config_.cpus_per_node,
                                 config_.nranks - first);
    return on_node >= 2 ? params_.smp_compute_penalty : 1.0;
  }

  // --- fault injection -------------------------------------------------
  bool faults_enabled() const { return faults_ != nullptr; }
  // Cumulative injected-fault counters; nullptr when no faults are armed.
  const FaultCounters* fault_counters() const {
    return faults_ ? &faults_->counters() : nullptr;
  }
  // Extra virtual time a compute region of `duration` seconds starting at
  // `t_start` on `rank`'s node absorbs (straggler slowdown, OS-noise
  // bursts, stall overlap). 0 without faults. Mutates fault counters;
  // call once per region, on the serialized engine path.
  double compute_perturbation(int rank, double t_start, double duration) {
    return faults_ ? faults_->perturb_compute(node_of(rank), t_start,
                                              duration)
                   : 0.0;
  }
  // Attributes injected delay to the perf component (as int) that
  // absorbed it; no-op without faults.
  void attribute_fault_delay(int component_class, double delay) {
    if (faults_ && delay > 0.0) faults_->attribute(component_class, delay);
  }

  // Diagnostics.
  std::uint64_t messages_sent() const { return messages_; }
  double bytes_sent() const { return bytes_; }

  // Registry of the shared per-node resources ("nodeN/nic_tx",
  // "nodeN/nic_rx", "nodeN/irq_cpu"), for utilization reporting. Pointers
  // stay valid for the network's lifetime.
  const std::vector<const sim::Resource*>& resources() const {
    return registry_;
  }

  // Cumulative per-channel traffic counters (messages, bytes, stall and
  // wire time accumulated on the src→dst pair). Storage is sparse — most
  // of the p² rank pairs never exchange a message in the nearest-neighbor
  // and ring patterns — so an untouched pair returns a zero ChannelStats.
  const ChannelStats& channel(int src, int dst) const {
    REPRO_REQUIRE(src >= 0 && src < config_.nranks, "channel: bad src rank");
    REPRO_REQUIRE(dst >= 0 && dst < config_.nranks, "channel: bad dst rank");
    const auto it = channels_.find(channel_key(src, dst));
    if (it == channels_.end()) {
      static const ChannelStats kEmpty{};
      return kEmpty;
    }
    return it->second.stats;
  }

  // Visits every channel that carried at least one message, in
  // deterministic (src, dst) order — use this instead of scanning all
  // p² pairs through channel().
  void for_each_channel(
      const std::function<void(int src, int dst, const ChannelStats&)>& fn)
      const;

  // The fabric between the nodes (single switch unless configured).
  const Topology& topology() const { return *topology_; }
  // Per-hop fabric link resources (empty on the single switch).
  const std::vector<const sim::Resource*>& fabric_links() const {
    return topology_->links();
  }

 private:
  std::size_t packets_for(std::size_t bytes) const {
    return bytes == 0 ? 1 : (bytes + params_.mtu - 1) / params_.mtu;
  }
  double host_packet_factor(int node) const;

  MessageTiming intra_node(int src, int dst, std::size_t bytes,
                           double t_send);
  MessageTiming cross_node(int src, int dst, std::size_t bytes,
                           double t_send, bool exchange);

  ClusterConfig config_;
  NetworkParams params_;
  int nnodes_ = 0;

  struct NodeResources {
    sim::Resource nic_tx;   // outbound link occupancy
    sim::Resource nic_rx;   // inbound link occupancy (incast contention)
    sim::Resource irq_cpu;  // interrupt-handling CPU (TCP only)
  };
  std::vector<NodeResources> nodes_;

  util::Rng jitter_rng_;
  std::unique_ptr<FaultInjector> faults_;  // null unless a FaultSpec is set
  std::unique_ptr<Topology> topology_;
  std::vector<const sim::Resource*> registry_;

  // Sparse per-(src,dst) channel accounting, keyed by the packed pair.
  // last_arrival enforces per-channel FIFO delivery: every real stack here
  // (TCP, PM, GM) delivers in order per channel, and the ring/pairwise
  // collective algorithms depend on that, so arrivals are clamped.
  struct ChannelState {
    ChannelStats stats;
    double last_arrival = 0.0;
  };
  static std::uint64_t channel_key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }
  std::unordered_map<std::uint64_t, ChannelState> channels_;
  std::uint64_t messages_ = 0;
  double bytes_ = 0.0;
};

}  // namespace repro::net
