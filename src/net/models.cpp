// Calibrated parameter sets for the three communication stacks.
//
// Calibration anchors (2001-era measurements on comparable hardware; see
// DESIGN.md §6):
//  - MPICH/TCP on Gigabit Ethernet, Linux 2.4, PIII-1GHz: zero-byte MPI
//    latency ~ 60-120 us, effective point-to-point bandwidth 30-50 MB/s,
//    per-1500B-packet host cost ~ 5-15 us/side, unstable under concurrent
//    flows (flow control / coarse retransmit interactions).
//  - SCore PM/Ethernet: user-level reliable protocol on the same NIC:
//    latency ~ 20 us, stable ~ 70-100 MB/s, small per-packet cost.
//  - MPICH-GM on Myrinet M2F-PCI32C (LANai 4): latency ~ 11-15 us,
//    100-130 MB/s (PCI32-limited), host nearly free (coprocessor handles
//    segmentation/reassembly), large link-level packets.
//
// The absolute values below were then fine-tuned so that the simulated
// reference case reproduces the *scale* of Figure 3 (see EXPERIMENTS.md);
// all qualitative results depend only on the ordering of the stacks.
#include "net/params.hpp"

#include "util/error.hpp"

namespace repro::net {

std::string to_string(Network net) {
  switch (net) {
    case Network::kTcpGigE:
      return "TCP/IP on GigE";
    case Network::kScoreGigE:
      return "SCore on GigE";
    case Network::kMyrinetGM:
      return "Myrinet";
    case Network::kTcpFastEthernet:
      return "TCP/IP on FastE";
  }
  REPRO_UNREACHABLE("bad Network enum value");
}

namespace {

NetworkParams tcp_gige() {
  NetworkParams p;
  p.name = "tcp-gige";
  p.send_overhead = 35e-6;
  p.recv_overhead = 35e-6;
  p.packet_cost_send = 6e-6;
  p.packet_cost_recv = 13e-6;  // interrupt + protocol work per packet
  p.mtu = 1460;
  p.latency = 60e-6;
  // Effective MPICH/TCP streaming rate, not the wire rate: the paper's own
  // finding is that Gigabit Ethernet "did not perform much better than
  // Fast Ethernet" for CHARMM under the TCP stack of the day (§4.1).
  // One-way streaming reaches ~13 MB/s; bidirectional exchanges halve it
  // (duplex_exchange_factor), matching the low per-node rates of Figure 7.
  p.bandwidth = 13e6;
  p.send_buffer_time = 64e3 / 13e6;  // ~64 KB socket buffer
  p.duplex_exchange_factor = 2.0;
  p.shm_overhead = 0.0;               // unused: loopback goes via the stack
  p.shm_bandwidth = 150e6;
  p.loopback_through_stack = true;
  p.rx_uses_interrupt_cpu = true;
  p.smp_host_penalty = 1.9;  // SMP kernel stack contention (Linux 2.4)
  p.smp_bandwidth_factor = 0.35;  // interrupt routing to the wrong CPU
  p.smp_compute_penalty = 1.10;   // shared memory bus
  p.jitter_prob_per_rank = 0.06;
  p.jitter_min_ranks = 4;
  p.jitter_latency_mean = 500e-6;
  p.jitter_slowdown_mean = 2.3;
  p.copy_bandwidth = 150e6;
  return p;
}

NetworkParams score_gige() {
  NetworkParams p;
  p.name = "score-gige";
  p.send_overhead = 9e-6;
  p.recv_overhead = 9e-6;
  p.packet_cost_send = 1.5e-6;
  p.packet_cost_recv = 1.5e-6;
  p.mtu = 1460;
  p.latency = 16e-6;
  p.bandwidth = 55e6;
  p.send_buffer_time = 256e3 / 55e6;
  p.shm_overhead = 2e-6;  // shared-memory driver for intra-node
  p.shm_bandwidth = 280e6;
  p.loopback_through_stack = false;
  p.rx_uses_interrupt_cpu = false;  // user-level protocol, polling
  p.smp_host_penalty = 1.05;
  p.smp_compute_penalty = 1.03;
  p.jitter_prob_per_rank = 0.0;  // reliable PM protocol: stable
  p.copy_bandwidth = 250e6;
  return p;
}

NetworkParams myrinet_gm() {
  NetworkParams p;
  p.name = "myrinet-gm";
  p.send_overhead = 4e-6;
  p.recv_overhead = 4e-6;
  p.packet_cost_send = 0.3e-6;  // LANai coprocessor does the work
  p.packet_cost_recv = 0.3e-6;
  p.mtu = 4096;  // large link-level packets
  p.latency = 11e-6;
  p.bandwidth = 120e6;  // PCI32-limited
  p.send_buffer_time = 1e6 / 120e6;
  p.shm_overhead = 2e-6;  // GM shared-memory intra-node path
  p.shm_bandwidth = 280e6;
  p.loopback_through_stack = false;
  p.rx_uses_interrupt_cpu = false;
  p.smp_host_penalty = 1.05;
  p.smp_compute_penalty = 1.03;
  p.jitter_prob_per_rank = 0.0;  // link-level flow control: stable
  p.copy_bandwidth = 250e6;
  return p;
}

NetworkParams tcp_fast_ethernet() {
  // 100 Mbit/s Ethernet under the same MPICH/TCP stack. The wire tops out
  // at 12.5 MB/s, but the protocol path is identical to the GigE case —
  // and since that path (not the wire) dominates the effective MPI rate,
  // the two behave almost identically for CHARMM (§4.1).
  NetworkParams p = tcp_gige();
  p.name = "tcp-fast-ethernet";
  p.bandwidth = 10.5e6;  // TCP stream on 100 Mbit/s
  p.send_buffer_time = 64e3 / 10.5e6;
  p.latency = 70e-6;
  return p;
}

}  // namespace

void validate_params(const NetworkParams& params) {
  const std::string who =
      params.name.empty() ? std::string("<unnamed>") : params.name;
  REPRO_REQUIRE(params.mtu > 0, "network params '" + who + "': mtu == 0");
  REPRO_REQUIRE(params.bandwidth > 0.0,
                "network params '" + who + "': non-positive bandwidth");
  REPRO_REQUIRE(params.copy_bandwidth > 0.0,
                "network params '" + who + "': non-positive copy_bandwidth");
  REPRO_REQUIRE(params.shm_bandwidth > 0.0,
                "network params '" + who + "': non-positive shm_bandwidth");
  REPRO_REQUIRE(params.latency >= 0.0 && params.send_overhead >= 0.0 &&
                    params.recv_overhead >= 0.0 &&
                    params.packet_cost_send >= 0.0 &&
                    params.packet_cost_recv >= 0.0 &&
                    params.shm_overhead >= 0.0 &&
                    params.send_buffer_time >= 0.0,
                "network params '" + who + "': negative cost");
  REPRO_REQUIRE(params.duplex_exchange_factor >= 1.0,
                "network params '" + who + "': duplex factor < 1");
  REPRO_REQUIRE(params.smp_host_penalty >= 1.0 &&
                    params.smp_compute_penalty >= 1.0,
                "network params '" + who + "': SMP penalty < 1");
  REPRO_REQUIRE(params.smp_bandwidth_factor > 0.0 &&
                    params.smp_bandwidth_factor <= 1.0,
                "network params '" + who +
                    "': smp_bandwidth_factor outside (0, 1]");
  REPRO_REQUIRE(params.jitter_prob_per_rank >= 0.0 &&
                    params.jitter_prob_per_rank <= 1.0,
                "network params '" + who + "': jitter probability outside "
                "[0, 1]");
  REPRO_REQUIRE(params.jitter_latency_mean >= 0.0 &&
                    params.jitter_slowdown_mean >= 0.0,
                "network params '" + who + "': negative jitter mean");
}

NetworkParams params_for(Network net) {
  NetworkParams p;
  switch (net) {
    case Network::kTcpGigE:
      p = tcp_gige();
      break;
    case Network::kScoreGigE:
      p = score_gige();
      break;
    case Network::kMyrinetGM:
      p = myrinet_gm();
      break;
    case Network::kTcpFastEthernet:
      p = tcp_fast_ethernet();
      break;
    default:
      REPRO_UNREACHABLE("bad Network enum value");
  }
  validate_params(p);
  return p;
}

}  // namespace repro::net
