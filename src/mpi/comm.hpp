// SimMPI: an MPI-like message-passing layer running on the simulated
// cluster.
//
// Point-to-point semantics follow MPI with eager (buffered) sends: send()
// never waits for a matching receive, but pays host costs and NIC
// back-pressure per the network model. Collectives are built from
// point-to-point using the algorithms of MPICH-1-era implementations
// (binomial trees, dissemination barrier, ring allgather, pairwise
// all-to-all), so their cost structure emerges from the network model
// rather than being modeled directly.
//
// Time accounting: time inside data-transfer calls (host protocol work,
// copies, blocked receive waits) is recorded as communication; control
// transfer — everything inside barrier() and sender back-pressure stalls
// — as synchronization. This matches the paper's split of "general
// communication overhead" into data transfer and control transfer (see
// perf/recorder.hpp for the full taxonomy).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "net/cluster.hpp"
#include "perf/recorder.hpp"
#include "perf/timeline.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace repro::mpi {

inline constexpr int kAnySource = -1;

// Collective algorithm selection. MPICH-1 (the era default) implemented
// allreduce as reduce-to-root + broadcast; later libraries switched to
// recursive doubling (latency-bound) or ring/Rabenseifner schemes
// (bandwidth-bound). Exposed so the middleware/ablation layers can study
// how much the algorithm (i.e. communication *software*) matters.
enum class AllreduceAlgorithm {
  kReduceBcast,        // MPICH-1 default: binomial reduce + binomial bcast
  kRecursiveDoubling,  // log2(p) full-vector exchanges
  kRing,               // reduce-scatter + allgather rings (bandwidth-optimal)
};

enum class BcastAlgorithm {
  kBinomialTree,  // MPICH-1 default
  kRingPipeline,  // pipelined around the ring
};

struct CollectiveConfig {
  AllreduceAlgorithm allreduce = AllreduceAlgorithm::kReduceBcast;
  BcastAlgorithm bcast = BcastAlgorithm::kBinomialTree;
};

// Message bytes with small-buffer storage. The high-frequency messages of
// the CHARMM workload are tiny — zero-byte barrier signals and 8-byte
// rendezvous control tokens — so they live inline and a send allocates
// nothing; larger messages fall back to a shared heap buffer.
class MsgBuf {
 public:
  static constexpr std::size_t kInline = 16;

  MsgBuf() = default;
  MsgBuf(const void* src, std::size_t n) : size_(n) {
    if (n <= kInline) {
      if (n > 0) std::memcpy(inline_, src, n);
    } else {
      heap_ = std::make_shared<std::vector<unsigned char>>(
          static_cast<const unsigned char*>(src),
          static_cast<const unsigned char*>(src) + n);
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const unsigned char* data() const {
    return size_ <= kInline ? inline_ : heap_->data();
  }

 private:
  std::size_t size_ = 0;
  unsigned char inline_[kInline] = {};
  std::shared_ptr<std::vector<unsigned char>> heap_;
};

// Payload stored in the engine inbox.
struct Packet {
  int src = 0;
  int tag = 0;
  MsgBuf data;
  double recv_copy = 0.0;  // receiver CPU cost on consume
  double sent_at = 0.0;    // sender virtual time at the send call
};

// The whole point of sim::Payload's buffer size: a Packet (the payload of
// every simulated message) must travel through the event heap and inboxes
// without heap allocation.
static_assert(sim::Payload::fits_inline<Packet>(),
              "Packet must fit Payload's inline buffer");

struct Request {
  enum class Op { kSend, kRecv } op = Op::kSend;
  bool done = false;
  // receive parameters (kRecv only)
  int src = kAnySource;
  int tag = 0;
  void* buf = nullptr;
  std::size_t max_bytes = 0;
  std::size_t received = 0;
};

class Comm {
 public:
  Comm(sim::RankCtx& ctx, net::ClusterNetwork& net, perf::RankRecorder& rec,
       const CollectiveConfig& collectives = {})
      : ctx_(ctx), net_(net), rec_(rec), collectives_(collectives) {}

  const CollectiveConfig& collectives() const { return collectives_; }

  int rank() const { return ctx_.rank(); }
  int size() const { return ctx_.size(); }
  double now() const { return ctx_.now(); }
  perf::RankRecorder& recorder() { return rec_; }
  sim::RankCtx& ctx() { return ctx_; }

  // Charges modeled computation time to the active component (scaled by
  // the node's SMP contention factor on dual-CPU nodes; stretched further
  // by injected stragglers / OS noise / stalls when faults are armed).
  void compute(double seconds) {
    const double t = seconds * net_.compute_factor(rank());
    const double t0 = ctx_.now();
    const double perturb = net_.compute_perturbation(rank(), t0, t);
    if (perturb > 0.0) {
      net_.attribute_fault_delay(static_cast<int>(rec_.component()), perturb);
    }
    rec_.record(perf::Kind::kComp, t + perturb);
    ctx_.advance(t + perturb);
    if (rec_.timeline() != nullptr) {
      rec_.timeline()->add(t0, t0 + t, rec_.component(), perf::Kind::kComp,
                           event_label("compute"), rec_.step_index());
      if (perturb > 0.0) {
        rec_.timeline()->add(t0 + t, ctx_.now(), rec_.component(),
                             perf::Kind::kComp, "os_noise",
                             rec_.step_index());
      }
    }
  }

  // --- point to point --------------------------------------------------
  // `exchange` marks sends that are half of a bidirectional exchange (the
  // network model may apply a duplex penalty; see NetworkParams).
  void send(int dst, int tag, const void* data, std::size_t bytes,
            bool exchange = false);
  // Returns the number of bytes received (<= max_bytes).
  std::size_t recv(int src, int tag, void* data, std::size_t max_bytes);

  Request isend(int dst, int tag, const void* data, std::size_t bytes,
                bool exchange = false);
  Request irecv(int src, int tag, void* data, std::size_t max_bytes);
  void wait(Request& req);
  void wait_all(std::vector<Request>& reqs);

  void sendrecv(int dst, int send_tag, const void* send_data,
                std::size_t send_bytes, int src, int recv_tag,
                void* recv_data, std::size_t recv_bytes);

  // --- collectives (MPICH-1-era algorithms) ----------------------------
  void barrier();  // dissemination; time counted as synchronization
  void bcast(void* data, std::size_t bytes, int root);
  void reduce_sum(double* data, std::size_t n, int root);
  // Algorithm chosen by the CollectiveConfig (MPICH-1 reduce+bcast by
  // default); all variants produce identical results on every rank.
  void allreduce_sum(double* data, std::size_t n);
  // Gathers variable-size byte blocks from all ranks into recv (ring
  // algorithm). counts[r] is rank r's block size; displs[r] its offset.
  void allgatherv(const void* send_buf, std::size_t send_bytes,
                  void* recv_buf, const std::vector<std::size_t>& counts,
                  const std::vector<std::size_t>& displs);
  // Personalized all-to-all over byte blocks (pairwise exchange).
  // send_counts/send_displs index into `send`; recv sides likewise.
  void alltoallv(const void* send, const std::vector<std::size_t>& send_counts,
                 const std::vector<std::size_t>& send_displs, void* recv_buf,
                 const std::vector<std::size_t>& recv_counts,
                 const std::vector<std::size_t>& recv_displs);

  // While a SyncScope is active, all point-to-point time (and the bytes) of
  // this rank is recorded as synchronization — used for barriers and for
  // middleware-level synchronization traffic.
  class SyncScope {
   public:
    explicit SyncScope(Comm& comm) : comm_(comm), saved_(comm.sync_mode_) {
      comm_.sync_mode_ = true;
    }
    ~SyncScope() { comm_.sync_mode_ = saved_; }
    SyncScope(const SyncScope&) = delete;
    SyncScope& operator=(const SyncScope&) = delete;

   private:
    Comm& comm_;
    bool saved_;
  };

 private:
  friend class SyncScope;

  perf::Kind transfer_kind() const {
    return sync_mode_ ? perf::Kind::kSync : perf::Kind::kComm;
  }
  // Timeline event name: the decomposition's phase label when one is
  // active (see perf::RankRecorder::set_phase), the generic operation
  // name otherwise.
  const char* event_label(const char* fallback) const {
    return rec_.phase() != nullptr ? rec_.phase() : fallback;
  }
  // Fresh tag for one collective operation; all ranks call collectives in
  // the same order, so counters stay aligned. Tags must never repeat within
  // a run: a wrapped sequence would let a slow rank's round-k packet match
  // a fast rank's round-(k + window) receive and silently corrupt the
  // collective. The window is far beyond any realistic run (the CHARMM
  // workload issues a handful of collectives per step), so instead of
  // wrapping we fail loudly if it is ever exhausted.
  int next_collective_tag() {
    REPRO_REQUIRE(coll_seq_ < kCollectiveTagWindow,
                  "collective tag space exhausted; tags would alias");
    return kCollectiveTagBase + static_cast<int>(coll_seq_++);
  }

  bool matches(const Packet& p, int src, int tag) const {
    return (src == kAnySource || p.src == src) && p.tag == tag;
  }
  // Removes and returns the earliest-arriving matching packet, if any.
  bool try_match(int src, int tag, Packet& out, double& arrival);

  void bcast_binomial(void* data, std::size_t bytes, int root, int tag);
  void bcast_ring(void* data, std::size_t bytes, int root, int tag);
  void allreduce_recursive_doubling(double* data, std::size_t n);
  void allreduce_ring(double* data, std::size_t n);

 public:
  // Base of the collective tag space. Application-level point-to-point
  // schedules (e.g. the charmm decomposition layer) must keep their tags
  // below this so they can never collide with a collective round.
  static constexpr int kCollectiveTagBase = 1 << 20;

 private:
  // One unique tag per collective for the lifetime of a Comm. The window
  // must stay clear of the rendezvous control tags above it.
  static constexpr unsigned kCollectiveTagWindow = 1u << 21;
  static_assert(kCollectiveTagBase + static_cast<int>(kCollectiveTagWindow) <=
                    (1 << 22),
                "collective tag window overlaps the control-channel tags");

 public:
  // Rendezvous control channel (never visible to user matching). Public so
  // protocol-robustness tests can forge control packets.
  static constexpr int kRtsTag = 1 << 22;
  static constexpr int kCtsTag = (1 << 22) + 1;

 private:

  struct RendezvousToken {
    int orig_tag = 0;
    unsigned token = 0;
  };

  void send_control(int dst, int tag, const RendezvousToken& body);
  // Replies CTS to every pending RTS in the inbox (progress while blocked
  // inside a wait, mirroring MPI's inside-the-library progress rule).
  void service_rendezvous_requests();
  // Blocks until the CTS for `token` arrives from dst.
  void await_clear_to_send(int dst, unsigned token);

  sim::RankCtx& ctx_;
  net::ClusterNetwork& net_;
  perf::RankRecorder& rec_;
  CollectiveConfig collectives_;
  bool sync_mode_ = false;
  unsigned coll_seq_ = 0;
  unsigned rendezvous_seq_ = 0;
};

}  // namespace repro::mpi
