#include "mpi/comm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace repro::mpi {

bool Comm::try_match(int src, int tag, Packet& out, double& arrival) {
  auto& inbox = ctx_.inbox();
  // Deliveries sit in (time, seq) order, so the first match is the
  // earliest-arriving one — the MPI matching rule for a given (src, tag).
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    auto* pkt = it->payload.get_if<Packet>();
    REPRO_REQUIRE(pkt != nullptr, "foreign payload in MPI inbox");
    if (matches(*pkt, src, tag)) {
      out = std::move(*pkt);
      arrival = it->time;
      inbox.erase(it);
      return true;
    }
  }
  return false;
}

void Comm::send_control(int dst, int tag, const RendezvousToken& body) {
  // Control messages are tiny eager sends on the reserved tags; their cost
  // flows through the normal network model.
  MsgBuf payload(&body, sizeof(body));
  const double sent_at = ctx_.now();
  const net::MessageTiming t =
      net_.message(rank(), dst, sizeof(body), ctx_.now(), false);
  if (t.fault_delay > 0.0) {
    net_.attribute_fault_delay(static_cast<int>(rec_.component()),
                               t.fault_delay);
  }
  rec_.record(transfer_kind(), t.sender_busy);
  // Back-pressure on the control channel is control transfer, like any
  // other stall (see perf/recorder.hpp's taxonomy).
  rec_.record_stall(t.sender_stall);
  ctx_.advance(t.sender_busy + t.sender_stall);
  ctx_.post(t.arrival, dst,
            Packet{rank(), tag, std::move(payload), t.recv_copy, sent_at});
}

void Comm::service_rendezvous_requests() {
  for (;;) {
    Packet rts;
    double arrival = 0.0;
    if (!try_match(kAnySource, kRtsTag, rts, arrival)) return;
    RendezvousToken body;
    REPRO_REQUIRE(rts.data.size() == sizeof(body),
                  "malformed rendezvous request");
    std::memcpy(&body, rts.data.data(), sizeof(body));
    send_control(rts.src, kCtsTag, body);
  }
}

void Comm::await_clear_to_send(int dst, unsigned token) {
  const double t0 = ctx_.now();
  for (;;) {
    service_rendezvous_requests();  // avoid exchange deadlocks
    auto& inbox = ctx_.inbox();
    bool found = false;
    for (auto it = inbox.begin(); it != inbox.end(); ++it) {
      const auto* pkt = it->payload.get_if<Packet>();
      if (pkt == nullptr || pkt->src != dst || pkt->tag != kCtsTag) continue;
      // A CTS carries exactly one RendezvousToken; anything else on the
      // control tag is a protocol violation — reject it before reading
      // (the payload may be short).
      REPRO_REQUIRE(pkt->data.size() == sizeof(RendezvousToken),
                    "malformed clear-to-send packet");
      RendezvousToken body;
      std::memcpy(&body, pkt->data.data(), sizeof(body));
      if (body.token != token) continue;
      inbox.erase(it);
      found = true;
      break;
    }
    if (found) break;
    ctx_.block();
  }
  // The handshake wait happens inside the send call: data-transfer time.
  rec_.record(transfer_kind(), ctx_.now() - t0);
}

void Comm::send(int dst, int tag, const void* data, std::size_t bytes,
                bool exchange) {
  REPRO_REQUIRE(dst >= 0 && dst < size(), "send: bad destination");
  ctx_.checkpoint();
  const std::size_t rndv = net_.params().rendezvous_threshold;
  if (rndv > 0 && bytes >= rndv && dst != rank()) {
    const RendezvousToken body{tag, rendezvous_seq_++};
    send_control(dst, kRtsTag, body);
    await_clear_to_send(dst, body.token);
  }
  MsgBuf payload(data, bytes);

  const perf::Kind kind = transfer_kind();
  const double sent_at = ctx_.now();
  if (dst == rank()) {
    // Self-send: a local copy, available immediately.
    const double copy =
        static_cast<double>(bytes) / net_.params().copy_bandwidth;
    rec_.record(kind, copy);
    ctx_.advance(copy);
    if (rec_.timeline() != nullptr) {
      rec_.timeline()->add(sent_at, ctx_.now(), rec_.component(), kind,
                           event_label("copy"), rec_.step_index());
    }
    ctx_.post(ctx_.now(), dst,
              Packet{rank(), tag, std::move(payload), copy, sent_at});
    return;
  }

  const net::MessageTiming t =
      net_.message(rank(), dst, bytes, ctx_.now(), exchange);
  // Injected-fault delay is attributed to the component issuing the send:
  // that is the code path stretched by the perturbation.
  if (t.fault_delay > 0.0) {
    net_.attribute_fault_delay(static_cast<int>(rec_.component()),
                               t.fault_delay);
  }
  rec_.record(kind, t.sender_busy);
  // Back-pressure stalls are control transfer (the sender blocks until the
  // NIC queue drains): synchronization, per perf/recorder.hpp's taxonomy.
  rec_.record_stall(t.sender_stall);
  if (!sync_mode_) rec_.record_bytes(static_cast<double>(bytes));
  ctx_.advance(t.sender_busy + t.sender_stall);
  if (rec_.timeline() != nullptr) {
    const double busy_end = sent_at + t.sender_busy;
    rec_.timeline()->add(sent_at, busy_end, rec_.component(), kind,
                         event_label("send"), rec_.step_index());
    rec_.timeline()->add(busy_end, ctx_.now(), rec_.component(),
                         perf::Kind::kSync, "stall", rec_.step_index());
  }
  ctx_.post(t.arrival, dst,
            Packet{rank(), tag, std::move(payload), t.recv_copy, sent_at});
}

std::size_t Comm::recv(int src, int tag, void* data, std::size_t max_bytes) {
  ctx_.checkpoint();
  const double t0 = ctx_.now();
  Packet pkt;
  double arrival = 0.0;
  for (;;) {
    if (net_.params().rendezvous_threshold > 0) {
      service_rendezvous_requests();
    }
    if (try_match(src, tag, pkt, arrival)) break;
    ctx_.block();
  }
  // Classification follows the paper's instrumentation: all time inside a
  // data-transfer call (including the blocked wait for the message) is
  // communication; control transfer shows up only in the explicit
  // synchronization operations (barriers, CMPI's one-byte exchanges),
  // which is where load imbalance is absorbed because CHARMM synchronizes
  // before its global operations.
  const double waited = ctx_.now() - t0;
  const perf::Kind kind = transfer_kind();
  rec_.record(kind, waited);
  rec_.record(kind, pkt.recv_copy);
  // Byte accounting must mirror the send side: self-sends are local copies,
  // not network traffic, so they book no Figure-7 bytes on either end.
  if (!sync_mode_ && pkt.src != rank()) {
    rec_.record_bytes(static_cast<double>(pkt.data.size()));
  }
  ctx_.advance(pkt.recv_copy);
  if (rec_.timeline() != nullptr) {
    rec_.timeline()->add(t0, ctx_.now(), rec_.component(), kind,
                         event_label("recv"), rec_.step_index());
  }

  const std::size_t n = pkt.data.size();
  REPRO_REQUIRE(n <= max_bytes, "recv: message larger than buffer");
  if (n > 0) std::memcpy(data, pkt.data.data(), n);
  return n;
}

Request Comm::isend(int dst, int tag, const void* data, std::size_t bytes,
                    bool exchange) {
  // Eager send: the transfer is initiated (and paid for) immediately; the
  // request completes at once. Matches MPICH eager-protocol behaviour for
  // the message sizes CHARMM uses with buffered sends.
  send(dst, tag, data, bytes, exchange);
  Request req;
  req.op = Request::Op::kSend;
  req.done = true;
  return req;
}

Request Comm::irecv(int src, int tag, void* data, std::size_t max_bytes) {
  Request req;
  req.op = Request::Op::kRecv;
  req.src = src;
  req.tag = tag;
  req.buf = data;
  req.max_bytes = max_bytes;
  return req;
}

void Comm::wait(Request& req) {
  if (req.done) return;
  if (req.op == Request::Op::kRecv) {
    req.received = recv(req.src, req.tag, req.buf, req.max_bytes);
  }
  req.done = true;
}

void Comm::wait_all(std::vector<Request>& reqs) {
  for (auto& r : reqs) wait(r);
}

void Comm::sendrecv(int dst, int send_tag, const void* send_data,
                    std::size_t send_bytes, int src, int recv_tag,
                    void* recv_data, std::size_t recv_bytes) {
  send(dst, send_tag, send_data, send_bytes, /*exchange=*/true);
  recv(src, recv_tag, recv_data, recv_bytes);
}

void Comm::barrier() {
  if (size() == 1) return;
  SyncScope sync(*this);
  const int tag = next_collective_tag();
  const int p = size();
  const int r = rank();
  // Dissemination barrier: ceil(log2 p) rounds; in round k each rank
  // signals (rank + k) and waits for (rank - k).
  for (int k = 1; k < p; k <<= 1) {
    send((r + k) % p, tag, nullptr, 0);
    recv((r - k + p) % p, tag, nullptr, 0);
  }
}

void Comm::bcast(void* data, std::size_t bytes, int root) {
  if (size() == 1) return;
  const int tag = next_collective_tag();
  switch (collectives_.bcast) {
    case BcastAlgorithm::kBinomialTree:
      bcast_binomial(data, bytes, root, tag);
      return;
    case BcastAlgorithm::kRingPipeline:
      bcast_ring(data, bytes, root, tag);
      return;
  }
  REPRO_UNREACHABLE("bad bcast algorithm");
}

void Comm::bcast_binomial(void* data, std::size_t bytes, int root, int tag) {
  const int p = size();
  const int vrank = (rank() - root + p) % p;
  // Binomial tree (MPICH-1): receive from the parent, then forward to
  // children in decreasing subtree order.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % p;
      recv(parent, tag, data, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child = (vrank + mask + root) % p;
      send(child, tag, data, bytes);
    }
    mask >>= 1;
  }
}

void Comm::bcast_ring(void* data, std::size_t bytes, int root, int tag) {
  // Pipelined around the ring in fixed segments: each rank forwards a
  // segment as soon as it arrives, so large messages stream.
  const int p = size();
  const int r = rank();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  constexpr std::size_t kSegment = 16 * 1024;
  auto* bytes_ptr = static_cast<unsigned char*>(data);
  for (std::size_t at = 0; at < bytes || at == 0; at += kSegment) {
    const std::size_t n = std::min(kSegment, bytes - at);
    if (r != root) recv(left, tag, bytes_ptr + at, n);
    if (right != root) send(right, tag, bytes_ptr + at, n);
    if (bytes == 0) break;
  }
}

void Comm::reduce_sum(double* data, std::size_t n, int root) {
  if (size() == 1) return;
  const int tag = next_collective_tag();
  const int p = size();
  const int vrank = (rank() - root + p) % p;
  std::vector<double> tmp(n);
  // Binomial tree, leaves to root, full vector per hop (as MPICH-1 did).
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int peer = vrank | mask;
      if (peer < p) {
        recv((peer + root) % p, tag, tmp.data(), n * sizeof(double));
        for (std::size_t i = 0; i < n; ++i) data[i] += tmp[i];
      }
    } else {
      const int peer = ((vrank & ~mask) + root) % p;
      send(peer, tag, data, n * sizeof(double));
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduce_sum(double* data, std::size_t n) {
  if (size() == 1) return;
  switch (collectives_.allreduce) {
    case AllreduceAlgorithm::kReduceBcast:
      // MPICH-1 allreduce: reduce to rank 0, then broadcast the result.
      reduce_sum(data, n, 0);
      bcast(data, n * sizeof(double), 0);
      return;
    case AllreduceAlgorithm::kRecursiveDoubling:
      allreduce_recursive_doubling(data, n);
      return;
    case AllreduceAlgorithm::kRing:
      allreduce_ring(data, n);
      return;
  }
  REPRO_UNREACHABLE("bad allreduce algorithm");
}

void Comm::allreduce_recursive_doubling(double* data, std::size_t n) {
  const int p = size();
  const int r = rank();
  const int tag = next_collective_tag();
  std::vector<double> tmp(n);
  // Power-of-two core: non-power ranks fold into a lower partner first
  // (the standard pre/post step), then log2(p') full-vector exchanges.
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      send(r + 1, tag, data, n * sizeof(double));
      newrank = -1;  // idle during the core exchange
    } else {
      recv(r - 1, tag, tmp.data(), n * sizeof(double));
      for (std::size_t i = 0; i < n; ++i) data[i] += tmp[i];
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }
  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int newpeer = newrank ^ mask;
      const int peer = newpeer < rem ? newpeer * 2 + 1 : newpeer + rem;
      sendrecv(peer, tag, data, n * sizeof(double), peer, tag, tmp.data(),
               n * sizeof(double));
      for (std::size_t i = 0; i < n; ++i) data[i] += tmp[i];
    }
  }
  if (r < 2 * rem) {
    if (r % 2 == 1) {
      send(r - 1, tag, data, n * sizeof(double));
    } else {
      recv(r + 1, tag, data, n * sizeof(double));
    }
  }
}

void Comm::allreduce_ring(double* data, std::size_t n) {
  const int p = size();
  const int r = rank();
  if (n < static_cast<std::size_t>(p)) {
    // Too small to segment; fall back to the tree scheme.
    reduce_sum(data, n, 0);
    bcast(data, n * sizeof(double), 0);
    return;
  }
  const int tag = next_collective_tag();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  // Segment boundaries (p chunks, front-loaded remainder).
  std::vector<std::size_t> begin(static_cast<std::size_t>(p) + 1, 0);
  for (int c = 0; c < p; ++c) {
    begin[static_cast<std::size_t>(c) + 1] =
        begin[static_cast<std::size_t>(c)] + n / static_cast<std::size_t>(p) +
        (static_cast<std::size_t>(c) < n % static_cast<std::size_t>(p) ? 1
                                                                       : 0);
  }
  std::vector<double> tmp(n);
  // Reduce-scatter phase: after p-1 steps rank r owns the full sum of
  // chunk (r+1) mod p.
  for (int step = 0; step < p - 1; ++step) {
    const auto send_chunk = static_cast<std::size_t>((r - step + p) % p);
    const auto recv_chunk = static_cast<std::size_t>((r - step - 1 + 2 * p) % p);
    const std::size_t sb = begin[send_chunk];
    const std::size_t rb = begin[recv_chunk];
    const std::size_t sn = begin[send_chunk + 1] - sb;
    const std::size_t rn = begin[recv_chunk + 1] - rb;
    sendrecv(right, tag, data + sb, sn * sizeof(double), left, tag,
             tmp.data(), rn * sizeof(double));
    for (std::size_t i = 0; i < rn; ++i) data[rb + i] += tmp[i];
  }
  // Allgather phase: circulate the finished chunks.
  for (int step = 0; step < p - 1; ++step) {
    const auto send_chunk = static_cast<std::size_t>((r + 1 - step + 2 * p) % p);
    const auto recv_chunk = static_cast<std::size_t>((r - step + 2 * p) % p);
    const std::size_t sb = begin[send_chunk];
    const std::size_t rb = begin[recv_chunk];
    sendrecv(right, tag, data + sb,
             (begin[send_chunk + 1] - sb) * sizeof(double), left, tag,
             data + rb, (begin[recv_chunk + 1] - rb) * sizeof(double));
  }
}

void Comm::allgatherv(const void* send_buf, std::size_t send_bytes,
                      void* recv_buf,
                      const std::vector<std::size_t>& counts,
                      const std::vector<std::size_t>& displs) {
  const int p = size();
  const int r = rank();
  REPRO_REQUIRE(counts.size() == static_cast<std::size_t>(p) &&
                    displs.size() == static_cast<std::size_t>(p),
                "allgatherv: counts/displs must have one entry per rank");
  REPRO_REQUIRE(send_bytes == counts[static_cast<std::size_t>(r)],
                "allgatherv: my block size disagrees with counts[rank]");
  auto* out = static_cast<unsigned char*>(recv_buf);
  // Zero-length blocks are legal (and exercised by the property tests);
  // memcpy with a null source is UB even at n == 0.
  if (send_bytes > 0) {
    std::memcpy(out + displs[static_cast<std::size_t>(r)], send_buf,
                send_bytes);
  }
  if (p == 1) return;

  const int tag = next_collective_tag();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  // Ring: in step s, forward the block that arrived in step s-1 (starting
  // with our own); after p-1 steps every rank holds every block.
  for (int s = 1; s < p; ++s) {
    const auto send_block = static_cast<std::size_t>((r - s + 1 + p) % p);
    const auto recv_block = static_cast<std::size_t>((r - s + p) % p);
    send(right, tag, out + displs[send_block], counts[send_block],
         /*exchange=*/true);
    recv(left, tag, out + displs[recv_block], counts[recv_block]);
  }
}

void Comm::alltoallv(const void* send_buf,
                     const std::vector<std::size_t>& send_counts,
                     const std::vector<std::size_t>& send_displs,
                     void* recv_buf,
                     const std::vector<std::size_t>& recv_counts,
                     const std::vector<std::size_t>& recv_displs) {
  const int p = size();
  const int r = rank();
  REPRO_REQUIRE(send_counts.size() == static_cast<std::size_t>(p) &&
                    recv_counts.size() == static_cast<std::size_t>(p),
                "alltoallv: counts must have one entry per rank");
  const auto* in = static_cast<const unsigned char*>(send_buf);
  auto* out = static_cast<unsigned char*>(recv_buf);
  // Local block (skipped when empty: memcpy/pointer arithmetic on a null
  // buffer is UB even for zero bytes).
  if (send_counts[static_cast<std::size_t>(r)] > 0) {
    std::memcpy(out + recv_displs[static_cast<std::size_t>(r)],
                in + send_displs[static_cast<std::size_t>(r)],
                send_counts[static_cast<std::size_t>(r)]);
  }
  if (p == 1) return;

  const int tag = next_collective_tag();
  // Pairwise exchange: in step k, talk to ranks at distance k.
  for (int k = 1; k < p; ++k) {
    const auto dst = static_cast<std::size_t>((r + k) % p);
    const auto src = static_cast<std::size_t>((r - k + p) % p);
    send(static_cast<int>(dst), tag, in + send_displs[dst],
         send_counts[dst], /*exchange=*/true);
    recv(static_cast<int>(src), tag, out + recv_displs[src],
         recv_counts[src]);
  }
}

}  // namespace repro::mpi
