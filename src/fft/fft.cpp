#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace repro::fft {

namespace {

// Factor n into small radixes (largest useful radix first keeps recursion
// shallow). Returns empty when a prime factor > 31 remains, signalling the
// Bluestein path.
std::vector<std::size_t> factorize(std::size_t n) {
  std::vector<std::size_t> factors;
  for (std::size_t radix : {8, 4, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}) {
    while (n % radix == 0) {
      factors.push_back(radix);
      n /= radix;
    }
    if (n == 1) break;
  }
  if (n != 1) return {};
  return factors;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

struct Fft1D::BluesteinPlan {
  BluesteinPlan(std::size_t n, util::KernelKind kind)
      : m(next_pow2(2 * n - 1)), fft_m(m, kind), chirp(n), b_fwd(m), b_inv(m) {
    // chirp[k] = exp(-i pi k^2 / n); the quadratic phase of the chirp-z
    // identity jk = (j^2 + k^2 - (k-j)^2) / 2.
    for (std::size_t k = 0; k < n; ++k) {
      // k^2 mod 2n keeps the angle argument small for large n.
      const auto k2 = static_cast<double>((k * k) % (2 * n));
      const double angle = std::numbers::pi * k2 / static_cast<double>(n);
      chirp[k] = Complex(std::cos(angle), -std::sin(angle));
    }
    // b[j] = conj(chirp[|j|]) zero-padded and wrapped, pre-transformed.
    std::vector<Complex> b(m, Complex(0, 0));
    for (std::size_t k = 0; k < n; ++k) {
      b[k] = std::conj(chirp[k]);
      if (k > 0) b[m - k] = std::conj(chirp[k]);
    }
    b_fwd = b;
    fft_m.forward(b_fwd.data());
    // For the inverse transform the chirp conjugates; precompute that too.
    std::vector<Complex> bi(m, Complex(0, 0));
    for (std::size_t k = 0; k < n; ++k) {
      bi[k] = chirp[k];
      if (k > 0) bi[m - k] = chirp[k];
    }
    b_inv = bi;
    fft_m.forward(b_inv.data());
  }

  std::size_t m;
  Fft1D fft_m;  // power-of-two helper plan (never recurses into Bluestein)
  std::vector<Complex> chirp;
  std::vector<Complex> b_fwd;
  std::vector<Complex> b_inv;
};

Fft1D::Fft1D(std::size_t n, util::KernelKind kind) : n_(n), kind_(kind) {
  REPRO_REQUIRE(n >= 1, "FFT size must be positive");
  factors_ = factorize(n);
  twiddle_.resize(n);
  if (n == 1) return;  // identity transform; no radixes or Bluestein needed
  twiddle_conj_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    twiddle_[k] = Complex(std::cos(angle), std::sin(angle));
    // Precomputed conjugates let the inverse transform index a table
    // instead of branching per pair in the combine loop; std::conj only
    // flips a sign bit, so the values are exactly those the branch made.
    twiddle_conj_[k] = std::conj(twiddle_[k]);
  }
  if (factors_.empty()) {
    // Large prime factor: Bluestein's chirp-z (the helper plan is a power
    // of two, so this never recurses more than one level).
    blue_ = std::make_shared<BluesteinPlan>(n, kind);
  } else if (kind_ == util::KernelKind::kSimd) {
    // Expand the per-level combine tables. Every entry is copied from the
    // root twiddle table, so the simd combine loads exactly the doubles
    // the scalar exponent-counter path loads.
    std::size_t level_n = n_;
    while (level_n > 1) {
      std::size_t r = 0;
      for (std::size_t f : factors_) {
        if (level_n % f == 0) {
          r = f;
          break;
        }
      }
      REPRO_REQUIRE(r != 0, "internal: lost radix during FFT table build");
      LevelTable lvl;
      lvl.n = level_n;
      lvl.r = r;
      lvl.m = level_n / r;
      lvl.fwd.resize(r * level_n);
      lvl.inv.resize(r * level_n);
      const std::size_t tw_step = n_ / level_n;
      for (std::size_t j = 0; j < r; ++j) {
        for (std::size_t k = 0; k < level_n; ++k) {
          const std::size_t t = (j * k) % level_n;
          lvl.fwd[j * level_n + k] = twiddle_[t * tw_step];
          lvl.inv[j * level_n + k] = twiddle_conj_[t * tw_step];
        }
      }
      levels_.push_back(std::move(lvl));
      level_n /= r;
    }
  }
}

double Fft1D::flops() const {
  if (n_ <= 1) return 0.0;
  const double n = static_cast<double>(n_);
  double work = 5.0 * n * std::log2(n);
  if (blue_) work *= 4.0;  // three pow-2 transforms of ~2n plus chirps
  return work;
}

void Fft1D::forward(Complex* data) const { transform(data, +1); }

void Fft1D::inverse(Complex* data) const {
  transform(data, -1);
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
}

void Fft1D::transform(Complex* data, int sign) const {
  if (n_ == 1) return;
  if (blue_) {
    bluestein(data, sign);
    return;
  }
  // Persistent per-thread scratch: transform() runs once per grid pencil,
  // so per-call allocation dominated small-n transforms. rec() writes each
  // sub-result fully before reading it, and the only nested transform
  // (Bluestein's helper) uses its own buffer, so reuse is safe.
  static thread_local std::vector<Complex> out_buf;
  static thread_local std::vector<Complex> scratch_buf;
  if (out_buf.size() < n_) {
    out_buf.resize(n_);
    scratch_buf.resize(n_);
  }
  if (kind_ == util::KernelKind::kSimd) {
    rec_simd(0, 1, data, out_buf.data(), scratch_buf.data(), sign);
  } else {
    rec(n_, 1, data, out_buf.data(), scratch_buf.data(), sign);
  }
  for (std::size_t i = 0; i < n_; ++i) data[i] = out_buf[i];
}

void Fft1D::rec(std::size_t n, std::size_t stride, const Complex* in,
                Complex* out, Complex* scratch, int sign) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  // Pick the radix for this level: factors_ is a flat list, so recompute
  // the first factor of this n (all n values on the path divide n_, so a
  // factor always exists among the plan's radixes).
  std::size_t r = 0;
  for (std::size_t f : factors_) {
    if (n % f == 0) {
      r = f;
      break;
    }
  }
  REPRO_REQUIRE(r != 0, "internal: lost radix during FFT recursion");
  const std::size_t m = n / r;

  // Sub-transform j handles inputs j, j+r, j+2r, ... (decimation in time).
  if (m == 1) {
    // Leaf level: each sub-transform is a single element; gather directly
    // instead of r one-point recursive calls.
    for (std::size_t j = 0; j < r; ++j) scratch[j] = in[j * stride];
  } else {
    for (std::size_t j = 0; j < r; ++j) {
      rec(m, stride * r, in + j * stride, scratch + j * m, out + j * m, sign);
    }
  }
  // Combine: X[k2 + m*k1] = sum_j W_n^{j*(k2 + m*k1)} * Y_j[k2].
  // Twiddles come from the root table: W_n^t == twiddle_[t * (n_/n) % n_].
  // The exponents advance arithmetically in k — t_j(k) = (j*k) mod n steps
  // by j with one wrap, and k2 = k mod m steps by one — so the inner loop
  // carries counters instead of computing two modulos per pair. The
  // conjugate table replaces the per-pair sign branch. Both changes are
  // integer/table bookkeeping only: every loaded twiddle and every
  // floating-point operation is bit-identical to the naive form.
  const std::size_t tw_step = n_ / n;
  const Complex* tw = sign < 0 ? twiddle_conj_.data() : twiddle_.data();
  std::size_t tvals[32] = {};  // per-j exponent; factorize() caps r at 31
  std::size_t k2 = 0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < r; ++j) {
      acc += tw[tvals[j] * tw_step] * scratch[j * m + k2];
      tvals[j] += j;  // j < n, so a single conditional wrap suffices
      if (tvals[j] >= n) tvals[j] -= n;
    }
    out[k] = acc;
    if (++k2 == m) k2 = 0;
  }
}

void Fft1D::rec_simd(std::size_t level, std::size_t stride, const Complex* in,
                     Complex* out, Complex* scratch, int sign) const {
  const LevelTable& lvl = levels_[level];
  const std::size_t n = lvl.n;
  const std::size_t r = lvl.r;
  const std::size_t m = lvl.m;
  if (m == 1) {
    for (std::size_t j = 0; j < r; ++j) scratch[j] = in[j * stride];
  } else {
    for (std::size_t j = 0; j < r; ++j) {
      rec_simd(level + 1, stride * r, in + j * stride, scratch + j * m,
               out + j * m, sign);
    }
  }
  // Table-driven combine: out[k] accumulates its r terms in ascending j —
  // the same order, twiddle values, and complex multiplies as rec(), so
  // the result is bit-identical. The j-outer/k-inner shape turns the hot
  // loop into contiguous multiply-accumulate streams with no index
  // arithmetic beyond the induction variable. j == 0 multiplies by the
  // table's W^0 entry instead of special-casing it, preserving the scalar
  // path's signed-zero behavior exactly.
  const Complex* table = sign < 0 ? lvl.inv.data() : lvl.fwd.data();
  for (std::size_t j = 0; j < r; ++j) {
    const Complex* tj = table + j * n;
    const Complex* sj = scratch + j * m;
    for (std::size_t k1 = 0; k1 < r; ++k1) {
      Complex* o = out + k1 * m;
      const Complex* t = tj + k1 * m;
      if (j == 0) {
#pragma omp simd
        for (std::size_t k2 = 0; k2 < m; ++k2) o[k2] = t[k2] * sj[k2];
      } else {
#pragma omp simd
        for (std::size_t k2 = 0; k2 < m; ++k2) o[k2] += t[k2] * sj[k2];
      }
    }
  }
}

void Fft1D::bluestein(Complex* data, int sign) const {
  const BluesteinPlan& bp = *blue_;
  const std::size_t m = bp.m;
  // Separate from transform()'s buffers: bp.fft_m's transforms below run
  // while `a` is live. The helper plan is a power of two, so it never
  // reaches this function recursively.
  static thread_local std::vector<Complex> a;
  a.assign(m, Complex(0, 0));
  for (std::size_t k = 0; k < n_; ++k) {
    const Complex c = sign > 0 ? bp.chirp[k] : std::conj(bp.chirp[k]);
    a[k] = data[k] * c;
  }
  bp.fft_m.forward(a.data());
  const auto& b = sign > 0 ? bp.b_fwd : bp.b_inv;
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  bp.fft_m.inverse(a.data());
  for (std::size_t k = 0; k < n_; ++k) {
    const Complex c = sign > 0 ? bp.chirp[k] : std::conj(bp.chirp[k]);
    data[k] = a[k] * c;
  }
}

// --- 3-D -------------------------------------------------------------------

Fft3D::Fft3D(std::size_t nx, std::size_t ny, std::size_t nz,
             util::KernelKind kind)
    : nx_(nx), ny_(ny), nz_(nz), fx_(nx, kind), fy_(ny, kind),
      fz_(nz, kind) {}

double Fft3D::flops() const {
  const auto dx = static_cast<double>(nx_);
  const auto dy = static_cast<double>(ny_);
  const auto dz = static_cast<double>(nz_);
  return dy * dz * fx_.flops() + dx * dz * fy_.flops() + dx * dy * fz_.flops();
}

void Fft3D::axis_z(Complex* grid, bool fwd) const {
  for (std::size_t x = 0; x < nx_; ++x) {
    for (std::size_t y = 0; y < ny_; ++y) {
      Complex* row = grid + (x * ny_ + y) * nz_;
      fwd ? fz_.forward(row) : fz_.inverse(row);
    }
  }
}

void Fft3D::axis_y(Complex* grid, bool fwd) const {
  std::vector<Complex> pencil(ny_);
  for (std::size_t x = 0; x < nx_; ++x) {
    for (std::size_t z = 0; z < nz_; ++z) {
      Complex* base = grid + x * ny_ * nz_ + z;
      for (std::size_t y = 0; y < ny_; ++y) pencil[y] = base[y * nz_];
      fwd ? fy_.forward(pencil.data()) : fy_.inverse(pencil.data());
      for (std::size_t y = 0; y < ny_; ++y) base[y * nz_] = pencil[y];
    }
  }
}

void Fft3D::axis_x(Complex* grid, bool fwd) const {
  std::vector<Complex> pencil(nx_);
  const std::size_t stride = ny_ * nz_;
  for (std::size_t y = 0; y < ny_; ++y) {
    for (std::size_t z = 0; z < nz_; ++z) {
      Complex* base = grid + y * nz_ + z;
      for (std::size_t x = 0; x < nx_; ++x) pencil[x] = base[x * stride];
      fwd ? fx_.forward(pencil.data()) : fx_.inverse(pencil.data());
      for (std::size_t x = 0; x < nx_; ++x) base[x * stride] = pencil[x];
    }
  }
}

void Fft3D::forward(Complex* grid) const {
  axis_z(grid, true);
  axis_y(grid, true);
  axis_x(grid, true);
}

void Fft3D::inverse(Complex* grid) const {
  axis_x(grid, false);
  axis_y(grid, false);
  axis_z(grid, false);
}

}  // namespace repro::fft
