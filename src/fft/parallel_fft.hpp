// Slab-decomposed parallel 3-D FFT (the PME communication kernel).
//
// The grid is distributed in x-slabs: rank r owns x-planes
// [x_begin(r), x_end(r)) of a row-major [nx][ny][nz] grid. A forward
// transform does the (y,z) 2-D FFTs locally per owned plane, then performs
// an all-to-all personalized transpose into z-slabs (layout [lz][ny][nx])
// and finishes with the x-direction FFTs. This is exactly the structure
// the paper attributes to PME: "a FFT adds a communication step with an
// all-to-all personalized communication pattern."
//
// Computation is charged through a caller-provided hook (flops -> virtual
// time); communication goes through the Middleware so the middleware factor
// of the experiment shapes the transpose.
#pragma once

#include <functional>
#include <vector>

#include "fft/fft.hpp"
#include "middleware/middleware.hpp"
#include "mpi/comm.hpp"

namespace repro::fft {

// Plane partition of n planes over p ranks: front ranks get the remainder.
struct SlabPartition {
  SlabPartition(std::size_t n, int p);

  std::size_t begin(int rank) const {
    return begins_[static_cast<std::size_t>(rank)];
  }
  std::size_t end(int rank) const {
    return begins_[static_cast<std::size_t>(rank) + 1];
  }
  std::size_t count(int rank) const { return end(rank) - begin(rank); }
  int owner(std::size_t plane) const;

 private:
  std::vector<std::size_t> begins_;
};

class ParallelFft3D {
 public:
  // `charge` converts kernel flops into simulated compute time; it may be
  // empty (tests that only check numerics).
  ParallelFft3D(std::size_t nx, std::size_t ny, std::size_t nz,
                middleware::Middleware& mw,
                std::function<void(double flops)> charge = {},
                util::KernelKind kind = util::default_kernel_kind());

  const SlabPartition& x_slabs() const { return xpart_; }
  const SlabPartition& z_slabs() const { return zpart_; }
  std::size_t local_x_count() const { return xpart_.count(mw_.rank()); }
  std::size_t local_z_count() const { return zpart_.count(mw_.rank()); }

  // x-slab buffer: [local_x][ny][nz]; z-slab buffer: [local_z][ny][nx].
  std::size_t x_slab_size() const { return local_x_count() * ny_ * nz_; }
  std::size_t z_slab_size() const { return local_z_count() * ny_ * nx_; }

  // Forward: x-slab (real-space) -> z-slab (k-space). In-place semantics on
  // separate buffers; `zslab` must hold z_slab_size() elements.
  void forward(const Complex* xslab, Complex* zslab);
  // Backward: z-slab (k-space) -> x-slab (real-space), including the 1/N
  // normalization so backward(forward(x)) == x.
  void backward(const Complex* zslab, Complex* xslab);

 private:
  void charge(double flops) const {
    if (charge_) charge_(flops);
  }
  // Packs my x-slab into per-destination blocks ordered (z, y, x) and
  // exchanges; unpacks into the z-slab layout. `forward` direction.
  void transpose_xz(const Complex* xslab, Complex* zslab);
  void transpose_zx(const Complex* zslab, Complex* xslab);

  std::size_t nx_, ny_, nz_;
  middleware::Middleware& mw_;
  std::function<void(double)> charge_;
  SlabPartition xpart_;
  SlabPartition zpart_;
  Fft1D fx_, fy_, fz_;
  std::vector<Complex> sendbuf_;
  std::vector<Complex> recvbuf_;
};

// --- 2-D pencil decomposition -----------------------------------------------
//
// The slab transform above runs out of parallelism at p = min(nx, nz)
// ranks and its transpose is a full p x p all-to-all. The pencil plan
// distributes the grid over a Py x Pz process grid instead (the
// GROMACS-era fix for the PME wall): rank q < Py*Pz sits at pencil
// coordinate (yc, zc) = (q / Pz, q % Pz) and the transform moves through
// three 1-D stages, each followed by a transpose confined to one row or
// column of the process grid:
//
//   stage 1 (x-pencils): owns y in Yp(yc), z in Zp(zc), all x
//       local 1-D FFTs along x
//   == X<->Y transpose, Py-rank group sharing zc, pairwise rounds ==
//   stage 2 (y-pencils): owns x in Xp(yc), z in Zp(zc), all y
//       local 1-D FFTs along y
//   == Y<->Z transpose, Pz-rank group sharing yc, pairwise rounds ==
//   stage 3 (z-pencils): owns x in Xp(yc), y in Y2p(zc), all z
//       local 1-D FFTs along z
//
// so each transpose exchanges only 1/Pz (or 1/Py) of the grid in groups
// of Py (or Pz) ranks, instead of the slab's whole-grid p x p exchange.
// Ranks >= Py*Pz own nothing and all calls no-op on them.
struct PencilGrid {
  PencilGrid(std::size_t nx, std::size_t ny, std::size_t nz, int py, int pz);

  std::size_t nx, ny, nz;
  int py, pz;
  SlabPartition ypart;   // ny planes over the Py process-grid rows
  SlabPartition zpart;   // nz planes over the Pz process-grid columns
  SlabPartition xpart;   // nx planes over Py (stage-2/3 x ownership)
  SlabPartition y2part;  // ny planes over Pz (stage-3 y ownership)

  bool participates(int rank) const { return rank < py * pz; }
  int ycoord(int rank) const { return rank / pz; }
  int zcoord(int rank) const { return rank % pz; }
  int rank_of(int yc, int zc) const { return yc * pz + zc; }

  // Per-rank stage extents (all zero for non-participants).
  // Stage-1 buffer layout: [ly1][lz1][nx], x contiguous.
  std::size_t stage1_size(int rank) const;
  // Stage-2 buffer layout: [lx2][lz1][ny], y contiguous.
  std::size_t stage2_size(int rank) const;
  // Stage-3 buffer layout: [lx2][ly3][nz], z contiguous.
  std::size_t stage3_size(int rank) const;
};

// Pencil-decomposed 3-D FFT over the raw Comm (the decomposition's
// explicit-tag schedule idiom: the caller owns the tag space, so the
// predictor can pin every message). No memoization — pencil stages are
// cheap per rank and the buffers differ per pencil coordinate.
class PencilFft3D {
 public:
  PencilFft3D(const PencilGrid& grid, mpi::Comm& comm,
              std::function<void(double flops)> charge = {},
              util::KernelKind kind = util::default_kernel_kind());

  const PencilGrid& grid() const { return grid_; }

  // Forward: stage-1 x-pencils (real space) -> stage-3 z-pencils
  // (k-space). `tag_xy` / `tag_yz` tag the two transposes' messages.
  void forward(const Complex* stage1, Complex* stage3, int tag_xy,
               int tag_yz);
  // Backward: stage-3 -> stage-1, including the 1/N normalization so
  // backward(forward(x)) == x.
  void backward(const Complex* stage3, Complex* stage1, int tag_zy,
                int tag_yx);

  // The four grouped pairwise transposes, public for the property-test
  // harness. Buffers use the stage layouts documented on PencilGrid.
  void transpose_xy(const Complex* stage1, Complex* stage2, int tag);
  void transpose_yx(const Complex* stage2, Complex* stage1, int tag);
  void transpose_yz(const Complex* stage2, Complex* stage3, int tag);
  void transpose_zy(const Complex* stage3, Complex* stage2, int tag);

  // Total 1-D FFT flops this rank charges for one forward (== one
  // backward) pass; the predictor's compute model uses the same value.
  double local_fft_flops() const;

 private:
  void charge(double flops) const {
    if (charge_) charge_(flops);
  }

  PencilGrid grid_;
  mpi::Comm& comm_;
  std::function<void(double)> charge_;
  Fft1D fx_, fy_, fz_;
  std::vector<Complex> sendbuf_;
  std::vector<Complex> recvbuf_;
};

}  // namespace repro::fft
