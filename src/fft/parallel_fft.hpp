// Slab-decomposed parallel 3-D FFT (the PME communication kernel).
//
// The grid is distributed in x-slabs: rank r owns x-planes
// [x_begin(r), x_end(r)) of a row-major [nx][ny][nz] grid. A forward
// transform does the (y,z) 2-D FFTs locally per owned plane, then performs
// an all-to-all personalized transpose into z-slabs (layout [lz][ny][nx])
// and finishes with the x-direction FFTs. This is exactly the structure
// the paper attributes to PME: "a FFT adds a communication step with an
// all-to-all personalized communication pattern."
//
// Computation is charged through a caller-provided hook (flops -> virtual
// time); communication goes through the Middleware so the middleware factor
// of the experiment shapes the transpose.
#pragma once

#include <functional>
#include <vector>

#include "fft/fft.hpp"
#include "middleware/middleware.hpp"

namespace repro::fft {

// Plane partition of n planes over p ranks: front ranks get the remainder.
struct SlabPartition {
  SlabPartition(std::size_t n, int p);

  std::size_t begin(int rank) const {
    return begins_[static_cast<std::size_t>(rank)];
  }
  std::size_t end(int rank) const {
    return begins_[static_cast<std::size_t>(rank) + 1];
  }
  std::size_t count(int rank) const { return end(rank) - begin(rank); }
  int owner(std::size_t plane) const;

 private:
  std::vector<std::size_t> begins_;
};

class ParallelFft3D {
 public:
  // `charge` converts kernel flops into simulated compute time; it may be
  // empty (tests that only check numerics).
  ParallelFft3D(std::size_t nx, std::size_t ny, std::size_t nz,
                middleware::Middleware& mw,
                std::function<void(double flops)> charge = {});

  const SlabPartition& x_slabs() const { return xpart_; }
  const SlabPartition& z_slabs() const { return zpart_; }
  std::size_t local_x_count() const { return xpart_.count(mw_.rank()); }
  std::size_t local_z_count() const { return zpart_.count(mw_.rank()); }

  // x-slab buffer: [local_x][ny][nz]; z-slab buffer: [local_z][ny][nx].
  std::size_t x_slab_size() const { return local_x_count() * ny_ * nz_; }
  std::size_t z_slab_size() const { return local_z_count() * ny_ * nx_; }

  // Forward: x-slab (real-space) -> z-slab (k-space). In-place semantics on
  // separate buffers; `zslab` must hold z_slab_size() elements.
  void forward(const Complex* xslab, Complex* zslab);
  // Backward: z-slab (k-space) -> x-slab (real-space), including the 1/N
  // normalization so backward(forward(x)) == x.
  void backward(const Complex* zslab, Complex* xslab);

 private:
  void charge(double flops) const {
    if (charge_) charge_(flops);
  }
  // Packs my x-slab into per-destination blocks ordered (z, y, x) and
  // exchanges; unpacks into the z-slab layout. `forward` direction.
  void transpose_xz(const Complex* xslab, Complex* zslab);
  void transpose_zx(const Complex* zslab, Complex* xslab);

  std::size_t nx_, ny_, nz_;
  middleware::Middleware& mw_;
  std::function<void(double)> charge_;
  SlabPartition xpart_;
  SlabPartition zpart_;
  Fft1D fx_, fy_, fz_;
  std::vector<Complex> sendbuf_;
  std::vector<Complex> recvbuf_;
};

}  // namespace repro::fft
