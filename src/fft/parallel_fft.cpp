#include "fft/parallel_fft.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace repro::fft {

namespace {

// --- Local-stage memoization ------------------------------------------------
//
// A factorial sweep re-runs the same deterministic trajectory for every
// network/middleware cell, so each rank's slab holds bit-identical data
// across those cells and the local FFT stages recompute identical
// results. The two pure stages of forward()/backward() (before and after
// the transpose) are memoized on their exact input bytes; the transpose
// itself and every charge() call still run, so simulated time, bytes and
// traffic are untouched — only redundant host-side arithmetic is skipped.
// A hit requires the full input slab to match byte-for-byte (the hash is
// a pre-filter), so outputs are the exact arrays the computation would
// have produced. Disable with REPRO_FFT_MEMO=0.
struct StageEntry {
  int stage;  // which of the four pure stages (see StageId)
  std::size_t nx, ny, nz;
  std::size_t count;  // input element count (slab-size, rank-dependent)
  std::uint64_t hash;
  std::vector<Complex> in;
  std::vector<Complex> out;
};

enum StageId : int {
  kForwardYZ = 0,  // forward: per-plane (y,z) 2-D FFTs on the x-slab
  kForwardX = 1,   // forward: x-direction FFTs on the z-slab
  kBackwardX = 2,  // backward: inverse x FFTs on the z-slab
  kBackwardYZ = 3, // backward: per-plane inverse (y,z) FFTs on the x-slab
};

constexpr std::size_t kStageMemoCap = 1024;  // FIFO; bounds worst-case RAM

std::mutex stage_memo_mu;  // SweepRunner workers transform concurrently

std::deque<std::shared_ptr<const StageEntry>>& stage_memo() {
  static std::deque<std::shared_ptr<const StageEntry>> memo;
  return memo;
}

bool stage_memo_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("REPRO_FFT_MEMO");
    return env == nullptr || env[0] != '0';
  }();
  return on;
}

std::uint64_t hash_complex(const Complex* data, std::size_t count) {
  return util::fnv1a_bytes(data, count * sizeof(Complex));
}

std::shared_ptr<const StageEntry> stage_lookup(int stage, std::size_t nx,
                                               std::size_t ny, std::size_t nz,
                                               const Complex* in,
                                               std::size_t count,
                                               std::uint64_t hash) {
  if (count == 0) return nullptr;  // empty slabs are never cached
  std::lock_guard<std::mutex> lock(stage_memo_mu);
  for (const auto& e : stage_memo()) {
    if (e->stage == stage && e->nx == nx && e->ny == ny && e->nz == nz &&
        e->count == count && e->hash == hash &&
        std::memcmp(e->in.data(), in, count * sizeof(Complex)) == 0) {
      return e;
    }
  }
  return nullptr;
}

void stage_insert(int stage, std::size_t nx, std::size_t ny, std::size_t nz,
                  const Complex* in, std::size_t count, std::uint64_t hash,
                  const Complex* out) {
  // An empty slab (rank owns no planes) has a null data pointer and nothing
  // worth caching; skipping keeps memcmp/memcpy away from null entirely.
  if (count == 0) return;
  auto entry = std::make_shared<StageEntry>();
  entry->stage = stage;
  entry->nx = nx;
  entry->ny = ny;
  entry->nz = nz;
  entry->count = count;
  entry->hash = hash;
  entry->in.assign(in, in + count);
  entry->out.assign(out, out + count);
  std::lock_guard<std::mutex> lock(stage_memo_mu);
  if (stage_memo().size() >= kStageMemoCap) stage_memo().pop_front();
  stage_memo().push_back(std::move(entry));
}

}  // namespace

SlabPartition::SlabPartition(std::size_t n, int p) {
  REPRO_REQUIRE(p >= 1, "partition needs at least one rank");
  begins_.resize(static_cast<std::size_t>(p) + 1);
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t rem = n % static_cast<std::size_t>(p);
  std::size_t at = 0;
  for (int r = 0; r < p; ++r) {
    begins_[static_cast<std::size_t>(r)] = at;
    at += base + (static_cast<std::size_t>(r) < rem ? 1 : 0);
  }
  begins_[static_cast<std::size_t>(p)] = at;
}

int SlabPartition::owner(std::size_t plane) const {
  for (std::size_t r = 0; r + 1 < begins_.size(); ++r) {
    if (plane >= begins_[r] && plane < begins_[r + 1]) {
      return static_cast<int>(r);
    }
  }
  REPRO_UNREACHABLE("plane outside partition");
}

ParallelFft3D::ParallelFft3D(std::size_t nx, std::size_t ny, std::size_t nz,
                             middleware::Middleware& mw,
                             std::function<void(double)> charge,
                             util::KernelKind kind)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      mw_(mw),
      charge_(std::move(charge)),
      xpart_(nx, mw.size()),
      zpart_(nz, mw.size()),
      fx_(nx, kind),
      fy_(ny, kind),
      fz_(nz, kind) {
  const std::size_t cap = std::max(x_slab_size(), z_slab_size());
  sendbuf_.resize(cap);
  recvbuf_.resize(cap);
}

void ParallelFft3D::transpose_xz(const Complex* xslab, Complex* zslab) {
  const int p = mw_.size();
  const int me = mw_.rank();
  const std::size_t lx = xpart_.count(me);

  // Pack per-destination blocks, ordered (z, y, x) with x innermost over my
  // x-range, so the receiver can place runs contiguously in [lz][ny][nx].
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> send_displs(static_cast<std::size_t>(p));
  std::vector<std::size_t> recv_counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> recv_displs(static_cast<std::size_t>(p));
  std::size_t at = 0;
  for (int d = 0; d < p; ++d) {
    send_displs[static_cast<std::size_t>(d)] = at * sizeof(Complex);
    const std::size_t lz = zpart_.count(d);
    send_counts[static_cast<std::size_t>(d)] =
        lx * ny_ * lz * sizeof(Complex);
    for (std::size_t z = zpart_.begin(d); z < zpart_.end(d); ++z) {
      for (std::size_t y = 0; y < ny_; ++y) {
        for (std::size_t x = 0; x < lx; ++x) {
          sendbuf_[at++] = xslab[(x * ny_ + y) * nz_ + z];
        }
      }
    }
  }
  std::size_t rat = 0;
  for (int s = 0; s < p; ++s) {
    recv_displs[static_cast<std::size_t>(s)] = rat * sizeof(Complex);
    const std::size_t c = xpart_.count(s) * ny_ * zpart_.count(me);
    recv_counts[static_cast<std::size_t>(s)] = c * sizeof(Complex);
    rat += c;
  }
  charge(static_cast<double>(at + rat));  // ~1 flop per packed element
  mw_.transpose(sendbuf_.data(), send_counts, send_displs, recvbuf_.data(),
                recv_counts, recv_displs);

  // Unpack: block from src s covers x in [s.x0, s.x1), all y, z in my
  // z-range, ordered (z, y, x).
  for (int s = 0; s < p; ++s) {
    const Complex* in =
        recvbuf_.data() + recv_displs[static_cast<std::size_t>(s)] /
                              sizeof(Complex);
    const std::size_t sx0 = xpart_.begin(s);
    const std::size_t slx = xpart_.count(s);
    std::size_t i = 0;
    for (std::size_t zl = 0; zl < zpart_.count(me); ++zl) {
      for (std::size_t y = 0; y < ny_; ++y) {
        Complex* out = zslab + (zl * ny_ + y) * nx_ + sx0;
        for (std::size_t x = 0; x < slx; ++x) out[x] = in[i++];
      }
    }
  }
}

void ParallelFft3D::transpose_zx(const Complex* zslab, Complex* xslab) {
  const int p = mw_.size();
  const int me = mw_.rank();
  const std::size_t lz = zpart_.count(me);

  std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> send_displs(static_cast<std::size_t>(p));
  std::vector<std::size_t> recv_counts(static_cast<std::size_t>(p));
  std::vector<std::size_t> recv_displs(static_cast<std::size_t>(p));
  // Pack for dst d: x in d's range, all y, z in my range; ordered
  // (x, y, z) with z innermost so the receiver writes contiguous z-runs.
  std::size_t at = 0;
  for (int d = 0; d < p; ++d) {
    send_displs[static_cast<std::size_t>(d)] = at * sizeof(Complex);
    send_counts[static_cast<std::size_t>(d)] =
        xpart_.count(d) * ny_ * lz * sizeof(Complex);
    for (std::size_t x = xpart_.begin(d); x < xpart_.end(d); ++x) {
      for (std::size_t y = 0; y < ny_; ++y) {
        for (std::size_t zl = 0; zl < lz; ++zl) {
          sendbuf_[at++] = zslab[(zl * ny_ + y) * nx_ + x];
        }
      }
    }
  }
  std::size_t rat = 0;
  for (int s = 0; s < p; ++s) {
    recv_displs[static_cast<std::size_t>(s)] = rat * sizeof(Complex);
    const std::size_t c = xpart_.count(me) * ny_ * zpart_.count(s);
    recv_counts[static_cast<std::size_t>(s)] = c * sizeof(Complex);
    rat += c;
  }
  charge(static_cast<double>(at + rat));
  mw_.transpose(sendbuf_.data(), send_counts, send_displs, recvbuf_.data(),
                recv_counts, recv_displs);

  for (int s = 0; s < p; ++s) {
    const Complex* in =
        recvbuf_.data() + recv_displs[static_cast<std::size_t>(s)] /
                              sizeof(Complex);
    std::size_t i = 0;
    for (std::size_t x = 0; x < xpart_.count(me); ++x) {
      for (std::size_t y = 0; y < ny_; ++y) {
        Complex* out = xslab + (x * ny_ + y) * nz_ + zpart_.begin(s);
        for (std::size_t z = 0; z < zpart_.count(s); ++z) out[z] = in[i++];
      }
    }
  }
}

void ParallelFft3D::forward(const Complex* xslab, Complex* zslab) {
  const std::size_t lx = local_x_count();
  const std::size_t xn = x_slab_size();
  const bool memo = stage_memo_enabled();
  // Local 2-D transforms over (y, z) for each owned x-plane; work on a copy
  // so the caller's real-space slab stays intact.
  std::vector<Complex> work;
  std::uint64_t h = 0;
  std::shared_ptr<const StageEntry> hit;
  if (memo) {
    h = hash_complex(xslab, xn);
    hit = stage_lookup(kForwardYZ, nx_, ny_, nz_, xslab, xn, h);
  }
  if (hit) {
    work = hit->out;
  } else {
    work.assign(xslab, xslab + xn);
    std::vector<Complex> pencil(ny_);
    for (std::size_t x = 0; x < lx; ++x) {
      Complex* plane = work.data() + x * ny_ * nz_;
      for (std::size_t y = 0; y < ny_; ++y) fz_.forward(plane + y * nz_);
      for (std::size_t z = 0; z < nz_; ++z) {
        for (std::size_t y = 0; y < ny_; ++y) pencil[y] = plane[y * nz_ + z];
        fy_.forward(pencil.data());
        for (std::size_t y = 0; y < ny_; ++y) plane[y * nz_ + z] = pencil[y];
      }
    }
    if (memo) {
      stage_insert(kForwardYZ, nx_, ny_, nz_, xslab, xn, h, work.data());
    }
  }
  charge(static_cast<double>(lx) *
         (static_cast<double>(ny_) * fz_.flops() +
          static_cast<double>(nz_) * fy_.flops()));

  transpose_xz(work.data(), zslab);

  // Finish with x-direction transforms (x is contiguous in the z-slab).
  const std::size_t lz = local_z_count();
  const std::size_t zn = z_slab_size();
  hit.reset();
  if (memo) {
    h = hash_complex(zslab, zn);
    hit = stage_lookup(kForwardX, nx_, ny_, nz_, zslab, zn, h);
  }
  if (hit) {
    std::memcpy(zslab, hit->out.data(), zn * sizeof(Complex));
  } else {
    std::vector<Complex> pre;
    if (memo) pre.assign(zslab, zslab + zn);
    for (std::size_t zl = 0; zl < lz; ++zl) {
      for (std::size_t y = 0; y < ny_; ++y) {
        fx_.forward(zslab + (zl * ny_ + y) * nx_);
      }
    }
    if (memo) {
      stage_insert(kForwardX, nx_, ny_, nz_, pre.data(), zn, h, zslab);
    }
  }
  charge(static_cast<double>(lz * ny_) * fx_.flops());
}

void ParallelFft3D::backward(const Complex* zslab, Complex* xslab) {
  const std::size_t lz = local_z_count();
  const std::size_t zn = z_slab_size();
  const bool memo = stage_memo_enabled();
  std::vector<Complex> work;
  std::uint64_t h = 0;
  std::shared_ptr<const StageEntry> hit;
  if (memo) {
    h = hash_complex(zslab, zn);
    hit = stage_lookup(kBackwardX, nx_, ny_, nz_, zslab, zn, h);
  }
  if (hit) {
    work = hit->out;
  } else {
    work.assign(zslab, zslab + zn);
    for (std::size_t zl = 0; zl < lz; ++zl) {
      for (std::size_t y = 0; y < ny_; ++y) {
        fx_.inverse(work.data() + (zl * ny_ + y) * nx_);
      }
    }
    if (memo) {
      stage_insert(kBackwardX, nx_, ny_, nz_, zslab, zn, h, work.data());
    }
  }
  charge(static_cast<double>(lz * ny_) * fx_.flops());

  transpose_zx(work.data(), xslab);

  const std::size_t lx = local_x_count();
  const std::size_t xn = x_slab_size();
  hit.reset();
  if (memo) {
    h = hash_complex(xslab, xn);
    hit = stage_lookup(kBackwardYZ, nx_, ny_, nz_, xslab, xn, h);
  }
  if (hit) {
    std::memcpy(xslab, hit->out.data(), xn * sizeof(Complex));
  } else {
    std::vector<Complex> pre;
    if (memo) pre.assign(xslab, xslab + xn);
    std::vector<Complex> pencil(ny_);
    for (std::size_t x = 0; x < lx; ++x) {
      Complex* plane = xslab + x * ny_ * nz_;
      for (std::size_t z = 0; z < nz_; ++z) {
        for (std::size_t y = 0; y < ny_; ++y) pencil[y] = plane[y * nz_ + z];
        fy_.inverse(pencil.data());
        for (std::size_t y = 0; y < ny_; ++y) plane[y * nz_ + z] = pencil[y];
      }
      for (std::size_t y = 0; y < ny_; ++y) fz_.inverse(plane + y * nz_);
    }
    if (memo) {
      stage_insert(kBackwardYZ, nx_, ny_, nz_, pre.data(), xn, h, xslab);
    }
  }
  charge(static_cast<double>(lx) *
         (static_cast<double>(ny_) * fz_.flops() +
          static_cast<double>(nz_) * fy_.flops()));
}

// --- 2-D pencil decomposition -----------------------------------------------

PencilGrid::PencilGrid(std::size_t nx_, std::size_t ny_, std::size_t nz_,
                       int py_, int pz_)
    : nx(nx_),
      ny(ny_),
      nz(nz_),
      py(py_),
      pz(pz_),
      ypart(ny_, py_),
      zpart(nz_, pz_),
      xpart(nx_, py_),
      y2part(ny_, pz_) {
  REPRO_REQUIRE(py >= 1 && pz >= 1, "pencil grid needs positive dimensions");
  REPRO_REQUIRE(static_cast<std::size_t>(py) <= ny,
                "pencil grid Py exceeds the y plane count");
  REPRO_REQUIRE(static_cast<std::size_t>(pz) <= nz,
                "pencil grid Pz exceeds the z plane count");
}

std::size_t PencilGrid::stage1_size(int rank) const {
  if (!participates(rank)) return 0;
  return ypart.count(ycoord(rank)) * zpart.count(zcoord(rank)) * nx;
}

std::size_t PencilGrid::stage2_size(int rank) const {
  if (!participates(rank)) return 0;
  return xpart.count(ycoord(rank)) * zpart.count(zcoord(rank)) * ny;
}

std::size_t PencilGrid::stage3_size(int rank) const {
  if (!participates(rank)) return 0;
  return xpart.count(ycoord(rank)) * y2part.count(zcoord(rank)) * nz;
}

PencilFft3D::PencilFft3D(const PencilGrid& grid, mpi::Comm& comm,
                         std::function<void(double)> charge,
                         util::KernelKind kind)
    : grid_(grid),
      comm_(comm),
      charge_(std::move(charge)),
      fx_(grid.nx, kind),
      fy_(grid.ny, kind),
      fz_(grid.nz, kind) {
  const int me = comm_.rank();
  const std::size_t cap =
      std::max({grid_.stage1_size(me), grid_.stage2_size(me),
                grid_.stage3_size(me)});
  sendbuf_.resize(cap);
  recvbuf_.resize(cap);
}

// X<->Y transpose, forward direction: stage-1 x-pencils -> stage-2
// y-pencils within the Py-rank group sharing my z coordinate. Pairwise
// rounds k = 1..Py-1 send to row (yc+k) mod Py while receiving from row
// (yc-k) mod Py; the diagonal block is a local copy. All sends are eager
// (buffered), so send-then-recv per round cannot deadlock.
void PencilFft3D::transpose_xy(const Complex* stage1, Complex* stage2,
                               int tag) {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  const std::size_t ly1 = grid_.ypart.count(yc);
  const std::size_t lx2 = grid_.xpart.count(yc);

  // Block I ship to row b: {x in Xp(b), y in Yp(yc), z in Zp(zc)}, packed
  // (x, z, y) with y innermost so the receiver writes contiguous y-runs.
  auto pack_to = [&](int b) {
    const std::size_t bx0 = grid_.xpart.begin(b);
    const std::size_t bxc = grid_.xpart.count(b);
    std::size_t at = 0;
    for (std::size_t xl = 0; xl < bxc; ++xl) {
      for (std::size_t zl = 0; zl < lz; ++zl) {
        for (std::size_t yl = 0; yl < ly1; ++yl) {
          sendbuf_[at++] = stage1[(yl * lz + zl) * grid_.nx + bx0 + xl];
        }
      }
    }
    return at;
  };
  // Block row a ships to me: {x in Xp(yc), y in Yp(a), z in Zp(zc)}.
  auto unpack_from = [&](int a, const Complex* in) {
    const std::size_t ay0 = grid_.ypart.begin(a);
    const std::size_t ayc = grid_.ypart.count(a);
    std::size_t i = 0;
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t zl = 0; zl < lz; ++zl) {
        Complex* out = stage2 + (xl * lz + zl) * grid_.ny + ay0;
        for (std::size_t yl = 0; yl < ayc; ++yl) out[yl] = in[i++];
      }
    }
    return i;
  };

  if (const std::size_t n = pack_to(yc)) unpack_from(yc, sendbuf_.data());
  for (int k = 1; k < grid_.py; ++k) {
    const int b = (yc + k) % grid_.py;
    const int a = (yc - k + grid_.py) % grid_.py;
    const std::size_t sn = pack_to(b);
    if (sn > 0) {
      comm_.send(grid_.rank_of(b, zc), tag, sendbuf_.data(),
                 sn * sizeof(Complex), /*exchange=*/true);
    }
    const std::size_t rn = lx2 * grid_.ypart.count(a) * lz;
    if (rn > 0) {
      comm_.recv(grid_.rank_of(a, zc), tag, recvbuf_.data(),
                 rn * sizeof(Complex));
      unpack_from(a, recvbuf_.data());
    }
  }
  charge(static_cast<double>(ly1 * lz * grid_.nx + lx2 * lz * grid_.ny));
}

// X<->Y transpose, inverse direction: stage-2 -> stage-1.
void PencilFft3D::transpose_yx(const Complex* stage2, Complex* stage1,
                               int tag) {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  const std::size_t ly1 = grid_.ypart.count(yc);
  const std::size_t lx2 = grid_.xpart.count(yc);

  // Block I ship to row b: {x in Xp(yc), y in Yp(b), z in Zp(zc)}, packed
  // (y, z, x) with x innermost so the receiver writes contiguous x-runs.
  auto pack_to = [&](int b) {
    const std::size_t by0 = grid_.ypart.begin(b);
    const std::size_t byc = grid_.ypart.count(b);
    std::size_t at = 0;
    for (std::size_t yl = 0; yl < byc; ++yl) {
      for (std::size_t zl = 0; zl < lz; ++zl) {
        for (std::size_t xl = 0; xl < lx2; ++xl) {
          sendbuf_[at++] = stage2[(xl * lz + zl) * grid_.ny + by0 + yl];
        }
      }
    }
    return at;
  };
  auto unpack_from = [&](int a, const Complex* in) {
    const std::size_t ax0 = grid_.xpart.begin(a);
    const std::size_t axc = grid_.xpart.count(a);
    std::size_t i = 0;
    for (std::size_t yl = 0; yl < ly1; ++yl) {
      for (std::size_t zl = 0; zl < lz; ++zl) {
        Complex* out = stage1 + (yl * lz + zl) * grid_.nx + ax0;
        for (std::size_t xl = 0; xl < axc; ++xl) out[xl] = in[i++];
      }
    }
    return i;
  };

  if (const std::size_t n = pack_to(yc)) unpack_from(yc, sendbuf_.data());
  for (int k = 1; k < grid_.py; ++k) {
    const int b = (yc + k) % grid_.py;
    const int a = (yc - k + grid_.py) % grid_.py;
    const std::size_t sn = pack_to(b);
    if (sn > 0) {
      comm_.send(grid_.rank_of(b, zc), tag, sendbuf_.data(),
                 sn * sizeof(Complex), /*exchange=*/true);
    }
    const std::size_t rn = ly1 * grid_.xpart.count(a) * lz;
    if (rn > 0) {
      comm_.recv(grid_.rank_of(a, zc), tag, recvbuf_.data(),
                 rn * sizeof(Complex));
      unpack_from(a, recvbuf_.data());
    }
  }
  charge(static_cast<double>(lx2 * lz * grid_.ny + ly1 * lz * grid_.nx));
}

// Y<->Z transpose, forward direction: stage-2 y-pencils -> stage-3
// z-pencils within the Pz-rank group sharing my y coordinate.
void PencilFft3D::transpose_yz(const Complex* stage2, Complex* stage3,
                               int tag) {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  const std::size_t lx2 = grid_.xpart.count(yc);
  const std::size_t ly3 = grid_.y2part.count(zc);

  // Block I ship to column d: {x in Xp(yc), y in Y2p(d), z in Zp(zc)},
  // packed (x, y, z) with z innermost for contiguous z-runs.
  auto pack_to = [&](int d) {
    const std::size_t dy0 = grid_.y2part.begin(d);
    const std::size_t dyc = grid_.y2part.count(d);
    std::size_t at = 0;
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t yl = 0; yl < dyc; ++yl) {
        for (std::size_t zl = 0; zl < lz; ++zl) {
          sendbuf_[at++] = stage2[(xl * lz + zl) * grid_.ny + dy0 + yl];
        }
      }
    }
    return at;
  };
  // Block column c ships to me: {x in Xp(yc), y in Y2p(zc), z in Zp(c)}.
  auto unpack_from = [&](int c, const Complex* in) {
    const std::size_t cz0 = grid_.zpart.begin(c);
    const std::size_t czc = grid_.zpart.count(c);
    std::size_t i = 0;
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t yl = 0; yl < ly3; ++yl) {
        Complex* out = stage3 + (xl * ly3 + yl) * grid_.nz + cz0;
        for (std::size_t zl = 0; zl < czc; ++zl) out[zl] = in[i++];
      }
    }
    return i;
  };

  if (const std::size_t n = pack_to(zc)) unpack_from(zc, sendbuf_.data());
  for (int k = 1; k < grid_.pz; ++k) {
    const int d = (zc + k) % grid_.pz;
    const int c = (zc - k + grid_.pz) % grid_.pz;
    const std::size_t sn = pack_to(d);
    if (sn > 0) {
      comm_.send(grid_.rank_of(yc, d), tag, sendbuf_.data(),
                 sn * sizeof(Complex), /*exchange=*/true);
    }
    const std::size_t rn = lx2 * ly3 * grid_.zpart.count(c);
    if (rn > 0) {
      comm_.recv(grid_.rank_of(yc, c), tag, recvbuf_.data(),
                 rn * sizeof(Complex));
      unpack_from(c, recvbuf_.data());
    }
  }
  charge(static_cast<double>(lx2 * lz * grid_.ny + lx2 * ly3 * grid_.nz));
}

// Y<->Z transpose, inverse direction: stage-3 -> stage-2.
void PencilFft3D::transpose_zy(const Complex* stage3, Complex* stage2,
                               int tag) {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  const std::size_t lx2 = grid_.xpart.count(yc);
  const std::size_t ly3 = grid_.y2part.count(zc);

  // Block I ship to column d: {x in Xp(yc), y in Y2p(zc), z in Zp(d)},
  // packed (x, z, y) with y innermost for contiguous y-runs.
  auto pack_to = [&](int d) {
    const std::size_t dz0 = grid_.zpart.begin(d);
    const std::size_t dzc = grid_.zpart.count(d);
    std::size_t at = 0;
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t zl = 0; zl < dzc; ++zl) {
        for (std::size_t yl = 0; yl < ly3; ++yl) {
          sendbuf_[at++] = stage3[(xl * ly3 + yl) * grid_.nz + dz0 + zl];
        }
      }
    }
    return at;
  };
  auto unpack_from = [&](int c, const Complex* in) {
    const std::size_t cy0 = grid_.y2part.begin(c);
    const std::size_t cyc = grid_.y2part.count(c);
    std::size_t i = 0;
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t zl = 0; zl < lz; ++zl) {
        Complex* out = stage2 + (xl * lz + zl) * grid_.ny + cy0;
        for (std::size_t yl = 0; yl < cyc; ++yl) out[yl] = in[i++];
      }
    }
    return i;
  };

  if (const std::size_t n = pack_to(zc)) unpack_from(zc, sendbuf_.data());
  for (int k = 1; k < grid_.pz; ++k) {
    const int d = (zc + k) % grid_.pz;
    const int c = (zc - k + grid_.pz) % grid_.pz;
    const std::size_t sn = pack_to(d);
    if (sn > 0) {
      comm_.send(grid_.rank_of(yc, d), tag, sendbuf_.data(),
                 sn * sizeof(Complex), /*exchange=*/true);
    }
    const std::size_t rn = lx2 * grid_.y2part.count(c) * lz;
    if (rn > 0) {
      comm_.recv(grid_.rank_of(yc, c), tag, recvbuf_.data(),
                 rn * sizeof(Complex));
      unpack_from(c, recvbuf_.data());
    }
  }
  charge(static_cast<double>(lx2 * ly3 * grid_.nz + lx2 * lz * grid_.ny));
}

double PencilFft3D::local_fft_flops() const {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return 0.0;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  return static_cast<double>(grid_.ypart.count(yc) * lz) * fx_.flops() +
         static_cast<double>(grid_.xpart.count(yc) * lz) * fy_.flops() +
         static_cast<double>(grid_.xpart.count(yc) * grid_.y2part.count(zc)) *
             fz_.flops();
}

void PencilFft3D::forward(const Complex* stage1, Complex* stage3, int tag_xy,
                          int tag_yz) {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  const std::size_t ly1 = grid_.ypart.count(yc);
  const std::size_t lx2 = grid_.xpart.count(yc);
  const std::size_t ly3 = grid_.y2part.count(zc);

  std::vector<Complex> work1(stage1, stage1 + grid_.stage1_size(me));
  for (std::size_t i = 0; i < ly1 * lz; ++i) {
    fx_.forward(work1.data() + i * grid_.nx);
  }
  charge(static_cast<double>(ly1 * lz) * fx_.flops());

  std::vector<Complex> work2(grid_.stage2_size(me));
  transpose_xy(work1.data(), work2.data(), tag_xy);
  for (std::size_t i = 0; i < lx2 * lz; ++i) {
    fy_.forward(work2.data() + i * grid_.ny);
  }
  charge(static_cast<double>(lx2 * lz) * fy_.flops());

  transpose_yz(work2.data(), stage3, tag_yz);
  for (std::size_t i = 0; i < lx2 * ly3; ++i) {
    fz_.forward(stage3 + i * grid_.nz);
  }
  charge(static_cast<double>(lx2 * ly3) * fz_.flops());
}

void PencilFft3D::backward(const Complex* stage3, Complex* stage1, int tag_zy,
                           int tag_yx) {
  const int me = comm_.rank();
  if (!grid_.participates(me)) return;
  const int yc = grid_.ycoord(me);
  const int zc = grid_.zcoord(me);
  const std::size_t lz = grid_.zpart.count(zc);
  const std::size_t ly1 = grid_.ypart.count(yc);
  const std::size_t lx2 = grid_.xpart.count(yc);
  const std::size_t ly3 = grid_.y2part.count(zc);

  std::vector<Complex> work3(stage3, stage3 + grid_.stage3_size(me));
  for (std::size_t i = 0; i < lx2 * ly3; ++i) {
    fz_.inverse(work3.data() + i * grid_.nz);
  }
  charge(static_cast<double>(lx2 * ly3) * fz_.flops());

  std::vector<Complex> work2(grid_.stage2_size(me));
  transpose_zy(work3.data(), work2.data(), tag_zy);
  for (std::size_t i = 0; i < lx2 * lz; ++i) {
    fy_.inverse(work2.data() + i * grid_.ny);
  }
  charge(static_cast<double>(lx2 * lz) * fy_.flops());

  transpose_yx(work2.data(), stage1, tag_yx);
  for (std::size_t i = 0; i < ly1 * lz; ++i) {
    fx_.inverse(stage1 + i * grid_.nx);
  }
  charge(static_cast<double>(ly1 * lz) * fx_.flops());
}

}  // namespace repro::fft
