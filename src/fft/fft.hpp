// Complex-to-complex FFTs (from scratch; no external FFT dependency).
//
// Fft1D is a reusable plan for a fixed size n. Any n is supported: mixed
// radix for smooth sizes (the PME grid 80 x 36 x 48 factors into 2/3/5),
// Bluestein's chirp-z algorithm for sizes with large prime factors.
// Fft3D applies 1-D plans along the three axes of a row-major
// [nx][ny][nz] grid.
//
// Plans carry a kernel variant (util::KernelKind). kSimd swaps the
// combine step for per-level contiguous twiddle tables whose inner loops
// are plain elementwise multiply-accumulates (#pragma omp simd): every
// loaded twiddle is the same root-table entry the scalar path loads and
// every out[k] accumulates its radix terms in the same order, so the simd
// transform is bit-identical to the scalar one — the variant only changes
// wall-clock (no modular index bookkeeping in the hot loop, contiguous
// twiddle streams).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/kernel.hpp"

namespace repro::fft {

using Complex = std::complex<double>;

class Fft1D {
 public:
  explicit Fft1D(std::size_t n,
                 util::KernelKind kind = util::default_kernel_kind());

  std::size_t size() const { return n_; }

  // In-place transforms. inverse() includes the 1/n scaling, so
  // inverse(forward(x)) == x.
  void forward(Complex* data) const;
  void inverse(Complex* data) const;

  // Nominal floating-point work of one transform (the classic 5 n log2 n),
  // used by the simulator's compute-cost model.
  double flops() const;

  util::KernelKind kernel() const { return kind_; }

 private:
  void transform(Complex* data, int sign) const;
  // Recursive Cooley-Tukey into `out`, using `scratch` for sub-results.
  void rec(std::size_t n, std::size_t stride, const Complex* in, Complex* out,
           Complex* scratch, int sign) const;
  // Simd variant of rec(): same recursion shape, table-driven combine.
  // `level` indexes levels_ (every same-size call sits at the same depth
  // of the radix chain, so the chain is a flat vector, not a tree).
  void rec_simd(std::size_t level, std::size_t stride, const Complex* in,
                Complex* out, Complex* scratch, int sign) const;
  void bluestein(Complex* data, int sign) const;

  std::size_t n_;
  util::KernelKind kind_;
  std::vector<std::size_t> factors_;   // radix sequence (empty => Bluestein)
  std::vector<Complex> twiddle_;       // exp(-2 pi i k / n), k in [0, n)
  std::vector<Complex> twiddle_conj_;  // conj(twiddle_[k]) (exact), for the
                                       // inverse transform's hot loop
  // Per-recursion-level combine tables (simd variant only): entry
  // [j*n + k] holds W_n^{(j*k) mod n} copied from the root table, so the
  // combine loop streams twiddles contiguously instead of carrying
  // per-radix exponent counters.
  struct LevelTable {
    std::size_t n = 0, r = 0, m = 0;
    std::vector<Complex> fwd, inv;
  };
  std::vector<LevelTable> levels_;
  // Bluestein machinery (only allocated when needed).
  struct BluesteinPlan;
  std::shared_ptr<BluesteinPlan> blue_;
};

class Fft3D {
 public:
  Fft3D(std::size_t nx, std::size_t ny, std::size_t nz,
        util::KernelKind kind = util::default_kernel_kind());

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t volume() const { return nx_ * ny_ * nz_; }

  // In-place transform of a row-major [nx][ny][nz] grid.
  void forward(Complex* grid) const;
  void inverse(Complex* grid) const;

  double flops() const;  // one full 3-D transform

 private:
  void axis_z(Complex* grid, bool fwd) const;
  void axis_y(Complex* grid, bool fwd) const;
  void axis_x(Complex* grid, bool fwd) const;

  std::size_t nx_, ny_, nz_;
  Fft1D fx_, fy_, fz_;
};

}  // namespace repro::fft
