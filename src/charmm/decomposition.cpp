#include "charmm/decomposition.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>

#include "charmm/ldb.hpp"
#include "charmm/spatial.hpp"
#include "fft/parallel_fft.hpp"
#include "md/bonded.hpp"
#include "md/integrator.hpp"
#include "md/neighbor.hpp"
#include "util/flatpack.hpp"
#include "util/hash.hpp"
#include "util/units.hpp"

namespace repro::charmm {

namespace {

using util::Vec3;

// Point-to-point tag spaces of the decomposition schedules. They must stay
// below mpi::Comm's collective tag base (1 << 20) and clear of the CMPI
// middleware's fixed tags (9900..9902, 9990+step); tags are unique per
// step and operation so a jitter-delayed packet from step k can never
// match a receive posted in step k+1.
constexpr int kScheduleTagBase = 1 << 18;
// Twelve tag slots per step: ops 0-4 are fold/expand (force) or
// reduce/exchange (task) or migrate/ghost/position-halo/force-halo/
// pme-gather (spatial); ops 5-10 are the spatial pencil-PME schedule
// (charge plane exchange, X->Y and Y->Z forward transposes, Z->Y and
// Y->X backward transposes, potential plane exchange); op 11 is the
// work-unit handoff of the measurement-driven load balancer.
constexpr int kScheduleTagsPerStep = 12;
// The PME group middleware draws its own fresh tag per operation from
// here up to the collective base.
constexpr int kGroupTagBase = 1 << 19;

int schedule_tag(int step, int op) {
  return kScheduleTagBase + kScheduleTagsPerStep * step + op;
}

void check_tag_budget(const CharmmConfig& config) {
  REPRO_REQUIRE(
      schedule_tag(config.nsteps, 0) <= kGroupTagBase,
      "decomposition schedule tags would overflow into the group tag space");
}

// --------------------------------------------------------------------------
// Replicated-data atom decomposition — the paper's CHARMM parallelization,
// extracted verbatim from the original run_charmm_rank so the default
// behaviour (and every golden file) is preserved to the byte.
// --------------------------------------------------------------------------
class AtomReplicatedDecomposition final : public Decomposition {
 public:
  const char* name() const override { return "atom"; }

  RankRunResult run(const sysbuild::BuiltSystem& sys,
                    const CharmmConfig& config,
                    middleware::Middleware& mw) const override {
    mpi::Comm& comm = mw.comm();
    perf::RankRecorder& rec = comm.recorder();
    const int p = comm.size();
    const int shard = comm.rank();
    const CostModel& cost = config.cost;
    const md::Topology& topo = sys.topo;
    const md::Box& box = sys.box;
    const auto natoms = static_cast<std::size_t>(topo.natoms());

    md::NonbondedOptions nb;
    nb.cutoff = config.cutoff;
    nb.switch_on = config.switch_on;
    nb.elec = config.use_pme ? md::NonbondedOptions::Elec::kEwaldDirect
                             : md::NonbondedOptions::Elec::kShift;
    nb.beta = config.pme.beta;
    nb.kernel = config.kernel;
    nb.table = md::build_pair_table(topo);

    // Replicated state: identical on every rank (the global sum broadcasts
    // bitwise-identical forces, so trajectories never diverge across
    // ranks).
    std::vector<Vec3> pos = sys.positions;
    std::vector<Vec3> vel;
    md::assign_velocities(topo, config.temperature_k, config.seed, vel);
    std::vector<Vec3> forces(natoms);
    std::vector<double> flat;
    md::NeighborList nbl(config.cutoff, config.skin);

    // PME machinery: compute cost flows through the middleware's component
    // recorder, so FFT/spreading time lands in whatever component is
    // active.
    pme::ParallelPme ppme(
        config.pme, box, mw,
        [&](double flops) { comm.compute(flops * cost.seconds_per_flop); },
        config.kernel);

    RankRunResult result;
    for (int step = 0; step < config.nsteps; ++step) {
      // ---------------------------------------------- classic routine --
      rec.set_component(perf::Component::kClassic);
      // Coherency barrier at energy entry (CHARMM synchronizes its
      // parallel energy call).
      if (config.coherency_barriers) mw.synchronize();

      if (step % config.list_rebuild_interval == 0) {
        perf::PhaseScope phase(rec, "list_build");
        nbl.build(topo, box, pos);
        comm.compute(cost.seconds_per_list_pair *
                     static_cast<double>(nbl.npairs()) * 2.0);
      }
      result.pairs_in_list = nbl.npairs();

      std::fill(forces.begin(), forces.end(), Vec3{});
      md::EnergyTerms energy;

      {
        perf::PhaseScope phase(rec, "bonded");
        const md::BondedWork bw =
            md::bonded_energy(topo, box, pos, forces, energy, shard, p);
        comm.compute(cost.seconds_per_bonded_term *
                     static_cast<double>(bw.total()));
      }

      {
        perf::PhaseScope phase(rec, "nonbonded");
        const md::NonbondedWork nw = md::nonbonded_energy(
            topo, box, pos, nbl, nb, forces, energy, shard, p);
        comm.compute(cost.seconds_per_pair *
                     static_cast<double>(nw.pairs_listed));
      }

      if (config.use_pme) {
        // Real-space corrections stay in the classic (time-domain) part.
        {
          perf::PhaseScope phase(rec, "ewald_corr");
          energy.ewald_excl += pme::ewald_exclusion_correction(
              topo, box, pos, config.pme.beta, forces, shard, p);
          comm.compute(cost.seconds_per_bonded_term *
                       static_cast<double>(topo.excluded_pairs().size()) /
                       static_cast<double>(p));
        }
        if (shard == 0) {
          energy.ewald_self += pme::ewald_self_energy(topo, config.pme.beta);
        }

        // ------------------------------------------------ PME routine --
        rec.set_component(perf::Component::kPme);
        // Coherency point before entering the frequency-domain phase.
        if (config.coherency_barriers) mw.synchronize();
        {
          perf::PhaseScope phase(rec, "pme_recip");
          energy.ewald_recip += ppme.reciprocal(topo, pos, forces);
        }
        rec.set_component(perf::Component::kClassic);
      }

      // The all-to-all collective that ends the classic energy
      // calculation: global force reduction plus the (small) energy
      // reduction. CHARMM synchronizes before combining, which is where
      // load imbalance lands.
      if (config.coherency_barriers) mw.synchronize();
      {
        perf::PhaseScope phase(rec, "force_reduce");
        util::flatten(forces, flat);
        mw.global_sum(flat.data(), flat.size());
        util::unflatten(flat, forces);
        std::array<double, md::EnergyTerms::kCount> earr = energy.to_array();
        mw.global_sum(earr.data(), earr.size());
        energy = md::EnergyTerms::from_array(earr);
      }
      result.last_energy = energy;

      // -------------------------------------------------- integration --
      // Not part of the measured energy calculation (the paper times the
      // energy routines); replicated on every rank.
      rec.set_component(perf::Component::kOther);
      {
        perf::PhaseScope phase(rec, "integrate");
        comm.compute(cost.seconds_per_integration_atom *
                     static_cast<double>(natoms));
      }
      const double kick = config.dt_ps * units::kForceToAccel;
      for (std::size_t i = 0; i < natoms; ++i) {
        vel[i] += forces[i] * (kick / topo.atom(static_cast<int>(i)).mass);
        pos[i] += vel[i] * config.dt_ps;
      }
      rec.end_step();
    }

    for (const auto& r : pos) {
      result.position_checksum += r.x + r.y + r.z;
    }
    return result;
  }
};

// --------------------------------------------------------------------------
// Force decomposition (Plimpton-style fold/expand).
//
// Atoms are split into p contiguous blocks; pair (i, j) of the interaction
// matrix belongs to rank (block(i) + block(j)) mod p. Each rank therefore
// produces force partials scattered over the whole array, but the
// reduction no longer needs a full-vector allreduce: a *fold* ships every
// foreign block's partial to the block's owner (a reduce-scatter, 24·N/p
// bytes per message) and an *expand* allgathers the owned totals. The
// per-rank reduction volume shrinks from 2·log2(p)·24N (tree allreduce)
// to 2·(p-1)·24N/p.
// --------------------------------------------------------------------------
class ForceDecomposition final : public Decomposition {
 public:
  const char* name() const override { return "force"; }

  RankRunResult run(const sysbuild::BuiltSystem& sys,
                    const CharmmConfig& config,
                    middleware::Middleware& mw) const override {
    check_tag_budget(config);
    mpi::Comm& comm = mw.comm();
    perf::RankRecorder& rec = comm.recorder();
    const int p = comm.size();
    const int me = comm.rank();
    const CostModel& cost = config.cost;
    const md::Topology& topo = sys.topo;
    const md::Box& box = sys.box;
    const auto natoms = static_cast<std::size_t>(topo.natoms());

    md::NonbondedOptions nb;
    nb.cutoff = config.cutoff;
    nb.switch_on = config.switch_on;
    nb.elec = config.use_pme ? md::NonbondedOptions::Elec::kEwaldDirect
                             : md::NonbondedOptions::Elec::kShift;
    nb.beta = config.pme.beta;
    nb.kernel = config.kernel;
    nb.table = md::build_pair_table(topo);

    // Contiguous atom blocks, one per rank (front-loaded remainder, the
    // same partition shape the slab FFT uses).
    const fft::SlabPartition blocks(natoms, p);
    std::vector<int> block_of(natoms);
    for (int b = 0; b < p; ++b) {
      for (std::size_t i = blocks.begin(b); i < blocks.end(b); ++i) {
        block_of[i] = b;
      }
    }

    std::vector<Vec3> pos = sys.positions;
    std::vector<Vec3> vel;
    md::assign_velocities(topo, config.temperature_k, config.seed, vel);
    std::vector<Vec3> forces(natoms);
    std::vector<double> flat;
    std::vector<double> scratch;
    md::NeighborList nbl(config.cutoff, config.skin);

    pme::ParallelPme ppme(
        config.pme, box, mw,
        [&](double flops) { comm.compute(flops * cost.seconds_per_flop); },
        config.kernel);

    RankRunResult result;
    for (int step = 0; step < config.nsteps; ++step) {
      rec.set_component(perf::Component::kClassic);
      if (config.coherency_barriers) mw.synchronize();

      if (step % config.list_rebuild_interval == 0) {
        perf::PhaseScope phase(rec, "list_build");
        nbl.build(topo, box, pos);
        comm.compute(cost.seconds_per_list_pair *
                     static_cast<double>(nbl.npairs()) * 2.0);
      }
      result.pairs_in_list = nbl.npairs();

      std::fill(forces.begin(), forces.end(), Vec3{});
      md::EnergyTerms energy;

      {
        perf::PhaseScope phase(rec, "bonded");
        const md::BondedWork bw =
            md::bonded_energy(topo, box, pos, forces, energy, me, p);
        comm.compute(cost.seconds_per_bonded_term *
                     static_cast<double>(bw.total()));
      }

      {
        perf::PhaseScope phase(rec, "nonbonded");
        const md::NonbondedWork nw = md::nonbonded_energy_blocked(
            topo, box, pos, nbl, nb, block_of, me, p, forces, energy);
        comm.compute(cost.seconds_per_pair *
                     static_cast<double>(nw.pairs_listed));
      }

      if (config.use_pme) {
        {
          perf::PhaseScope phase(rec, "ewald_corr");
          energy.ewald_excl += pme::ewald_exclusion_correction(
              topo, box, pos, config.pme.beta, forces, me, p);
          comm.compute(cost.seconds_per_bonded_term *
                       static_cast<double>(topo.excluded_pairs().size()) /
                       static_cast<double>(p));
        }
        if (me == 0) {
          energy.ewald_self += pme::ewald_self_energy(topo, config.pme.beta);
        }

        rec.set_component(perf::Component::kPme);
        if (config.coherency_barriers) mw.synchronize();
        {
          perf::PhaseScope phase(rec, "pme_recip");
          energy.ewald_recip += ppme.reciprocal(topo, pos, forces);
        }
        rec.set_component(perf::Component::kClassic);
      }

      if (config.coherency_barriers) mw.synchronize();
      util::flatten(forces, flat);
      fold_expand(comm, blocks, flat, scratch, step);
      util::unflatten(flat, forces);
      {
        // The energy scalars still need a comm-wide reduction; every rank
        // issues it, so the collective tag counters stay aligned.
        perf::PhaseScope phase(rec, "energy_reduce");
        std::array<double, md::EnergyTerms::kCount> earr = energy.to_array();
        mw.global_sum(earr.data(), earr.size());
        energy = md::EnergyTerms::from_array(earr);
      }
      result.last_energy = energy;

      rec.set_component(perf::Component::kOther);
      {
        perf::PhaseScope phase(rec, "integrate");
        comm.compute(cost.seconds_per_integration_atom *
                     static_cast<double>(natoms));
      }
      const double kick = config.dt_ps * units::kForceToAccel;
      for (std::size_t i = 0; i < natoms; ++i) {
        vel[i] += forces[i] * (kick / topo.atom(static_cast<int>(i)).mass);
        pos[i] += vel[i] * config.dt_ps;
      }
      rec.end_step();
    }

    for (const auto& r : pos) {
      result.position_checksum += r.x + r.y + r.z;
    }
    return result;
  }

 private:
  // Fold (reduce-scatter of per-block partials to their owners) followed
  // by expand (allgather of the owned totals). Receives accumulate in a
  // fixed source order, so the summed forces are bit-identical on every
  // rerun and every rank ends with the same full array.
  static void fold_expand(mpi::Comm& comm, const fft::SlabPartition& blocks,
                          std::vector<double>& flat,
                          std::vector<double>& scratch, int step) {
    const int p = comm.size();
    if (p == 1) return;
    const int me = comm.rank();
    const int fold_tag = schedule_tag(step, 0);
    const int expand_tag = schedule_tag(step, 1);
    const std::size_t my_begin = 3 * blocks.begin(me);
    const std::size_t my_count = 3 * blocks.count(me);
    perf::RankRecorder& rec = comm.recorder();
    {
      perf::PhaseScope phase(rec, "fold");
      for (int k = 1; k < p; ++k) {
        const int dst = (me + k) % p;
        comm.send(dst, fold_tag, flat.data() + 3 * blocks.begin(dst),
                  3 * blocks.count(dst) * sizeof(double), /*exchange=*/true);
      }
      scratch.resize(my_count);
      for (int k = 1; k < p; ++k) {
        const int src = (me - k + p) % p;
        comm.recv(src, fold_tag, scratch.data(),
                  my_count * sizeof(double));
        for (std::size_t i = 0; i < my_count; ++i) {
          flat[my_begin + i] += scratch[i];
        }
      }
    }
    {
      perf::PhaseScope phase(rec, "expand");
      for (int k = 1; k < p; ++k) {
        const int dst = (me + k) % p;
        comm.send(dst, expand_tag, flat.data() + my_begin,
                  my_count * sizeof(double), /*exchange=*/true);
      }
      for (int k = 1; k < p; ++k) {
        const int src = (me - k + p) % p;
        comm.recv(src, expand_tag, flat.data() + 3 * blocks.begin(src),
                  3 * blocks.count(src) * sizeof(double));
      }
    }
  }
};

// --------------------------------------------------------------------------
// Task decoupling: dedicated PME ranks.
//
// The last m ranks run only the reciprocal-space PME work (over their own
// m-slab FFT decomposition, presented through a group-restricted
// middleware); the first q = p - m ranks run only the classic routine,
// sharded q ways. The two components — which the default schedule
// serializes through coherency barriers — overlap in virtual time within
// each step. A combine joins the halves: each group binomial-reduces its
// packed forces+energies to its group root, the PME root ships its total
// to rank 0, and a comm-wide broadcast replicates the sum so every rank
// integrates identical forces.
// --------------------------------------------------------------------------
class TaskPmeDecomposition final : public Decomposition {
 public:
  explicit TaskPmeDecomposition(const DecompSpec& spec) : spec_(spec) {}

  const char* name() const override { return "task"; }

  RankRunResult run(const sysbuild::BuiltSystem& sys,
                    const CharmmConfig& config,
                    middleware::Middleware& mw) const override {
    mpi::Comm& comm = mw.comm();
    const int p = comm.size();
    if (p == 1) {
      // Degenerate split: nothing to decouple, run the reference program.
      return AtomReplicatedDecomposition{}.run(sys, config, mw);
    }
    REPRO_REQUIRE(config.use_pme,
                  "task decoupling dedicates ranks to PME; enable use_pme "
                  "or pick another decomposition");
    check_tag_budget(config);
    const int m = resolved_pme_ranks(spec_, p);
    const int q = p - m;
    const int me = comm.rank();
    const bool is_pme = me >= q;
    perf::RankRecorder& rec = comm.recorder();
    const CostModel& cost = config.cost;
    const md::Topology& topo = sys.topo;
    const md::Box& box = sys.box;
    const auto natoms = static_cast<std::size_t>(topo.natoms());

    md::NonbondedOptions nb;
    nb.cutoff = config.cutoff;
    nb.switch_on = config.switch_on;
    nb.elec = md::NonbondedOptions::Elec::kEwaldDirect;
    nb.beta = config.pme.beta;
    nb.kernel = config.kernel;
    nb.table = md::build_pair_table(topo);

    std::vector<Vec3> pos = sys.positions;
    std::vector<Vec3> vel;
    md::assign_velocities(topo, config.temperature_k, config.seed, vel);
    std::vector<Vec3> forces(natoms);
    std::vector<double> flat;
    std::vector<double> combined;
    std::vector<double> scratch;
    md::NeighborList nbl(config.cutoff, config.skin);

    // The PME group's middleware presents ranks [q, p) as a communicator
    // of size m; the slab FFT and spreading inside ParallelPme see only
    // group coordinates. Classic ranks never construct PME machinery.
    std::optional<GroupMiddleware> gmw;
    std::optional<pme::ParallelPme> ppme;
    if (is_pme) {
      gmw.emplace(comm, q, m);
      ppme.emplace(
          config.pme, box, *gmw,
          [&](double flops) { comm.compute(flops * cost.seconds_per_flop); },
          config.kernel);
    }

    const std::size_t nterms = md::EnergyTerms::kCount;
    RankRunResult result;
    for (int step = 0; step < config.nsteps; ++step) {
      rec.set_component(is_pme ? perf::Component::kPme
                               : perf::Component::kClassic);
      // Coherency barrier at energy entry, as in the default schedule —
      // the only synchronization until the two task groups join below.
      if (config.coherency_barriers) mw.synchronize();

      std::fill(forces.begin(), forces.end(), Vec3{});
      md::EnergyTerms energy;

      if (is_pme) {
        perf::PhaseScope phase(rec, "pme_recip");
        energy.ewald_recip += ppme->reciprocal(topo, pos, forces);
      } else {
        if (step % config.list_rebuild_interval == 0) {
          perf::PhaseScope phase(rec, "list_build");
          nbl.build(topo, box, pos);
          comm.compute(cost.seconds_per_list_pair *
                       static_cast<double>(nbl.npairs()) * 2.0);
        }
        result.pairs_in_list = nbl.npairs();

        {
          perf::PhaseScope phase(rec, "bonded");
          const md::BondedWork bw =
              md::bonded_energy(topo, box, pos, forces, energy, me, q);
          comm.compute(cost.seconds_per_bonded_term *
                       static_cast<double>(bw.total()));
        }
        {
          perf::PhaseScope phase(rec, "nonbonded");
          const md::NonbondedWork nw = md::nonbonded_energy(
              topo, box, pos, nbl, nb, forces, energy, me, q);
          comm.compute(cost.seconds_per_pair *
                       static_cast<double>(nw.pairs_listed));
        }
        {
          perf::PhaseScope phase(rec, "ewald_corr");
          energy.ewald_excl += pme::ewald_exclusion_correction(
              topo, box, pos, config.pme.beta, forces, me, q);
          comm.compute(cost.seconds_per_bonded_term *
                       static_cast<double>(topo.excluded_pairs().size()) /
                       static_cast<double>(q));
        }
        if (me == 0) {
          energy.ewald_self += pme::ewald_self_energy(topo, config.pme.beta);
        }
      }

      // Join point: the groups must combine their halves anyway, so the
      // coherency barrier here is where the classic/PME load imbalance
      // lands (as synchronization), mirroring the default schedule's
      // pre-reduction barrier.
      if (config.coherency_barriers) mw.synchronize();

      // Pack forces + energy terms into one buffer so the combine is a
      // single message chain instead of two.
      util::flatten(forces, flat);
      combined.resize(flat.size() + nterms);
      std::memcpy(combined.data(), flat.data(),
                  flat.size() * sizeof(double));
      const std::array<double, md::EnergyTerms::kCount> earr =
          energy.to_array();
      std::memcpy(combined.data() + flat.size(), earr.data(),
                  nterms * sizeof(double));

      // Group-internal binomial reduce to the group root (rank 0 for the
      // classic group, rank q for the PME group) — point-to-point only,
      // so the groups' different programs cannot misalign the comm-wide
      // collective tag counters.
      if (is_pme) {
        perf::PhaseScope phase(rec, "pme_group_reduce");
        group_reduce_sum(comm, q, m, combined, scratch,
                         schedule_tag(step, 1));
      } else {
        perf::PhaseScope phase(rec, "classic_group_reduce");
        group_reduce_sum(comm, 0, q, combined, scratch,
                         schedule_tag(step, 0));
      }

      // The PME root ships its group's total to rank 0, which owns the
      // grand total.
      const std::size_t bytes = combined.size() * sizeof(double);
      if (me == q) {
        perf::PhaseScope phase(rec, "root_exchange");
        comm.send(0, schedule_tag(step, 2), combined.data(), bytes);
      } else if (me == 0) {
        perf::PhaseScope phase(rec, "root_exchange");
        scratch.resize(combined.size());
        comm.recv(q, schedule_tag(step, 2), scratch.data(), bytes);
        for (std::size_t i = 0; i < combined.size(); ++i) {
          combined[i] += scratch[i];
        }
      }

      // Comm-wide broadcast of the grand total — every rank participates,
      // keeping collective tags aligned and forces bit-identical.
      {
        perf::PhaseScope phase(rec, "result_bcast");
        mw.broadcast(combined.data(), bytes, 0);
      }
      std::memcpy(flat.data(), combined.data(),
                  flat.size() * sizeof(double));
      util::unflatten(flat, forces);
      std::array<double, md::EnergyTerms::kCount> total_earr{};
      std::memcpy(total_earr.data(), combined.data() + flat.size(),
                  nterms * sizeof(double));
      energy = md::EnergyTerms::from_array(total_earr);
      result.last_energy = energy;

      rec.set_component(perf::Component::kOther);
      {
        perf::PhaseScope phase(rec, "integrate");
        comm.compute(cost.seconds_per_integration_atom *
                     static_cast<double>(natoms));
      }
      const double kick = config.dt_ps * units::kForceToAccel;
      for (std::size_t i = 0; i < natoms; ++i) {
        vel[i] += forces[i] * (kick / topo.atom(static_cast<int>(i)).mass);
        pos[i] += vel[i] * config.dt_ps;
      }
      rec.end_step();
    }

    for (const auto& r : pos) {
      result.position_checksum += r.x + r.y + r.z;
    }
    return result;
  }

 private:
  // Binomial-tree sum over the rank group [base, base + gsize) to the
  // group root `base` (the same tree Comm::reduce_sum builds), using an
  // explicit tag instead of the comm-wide collective counter.
  static void group_reduce_sum(mpi::Comm& comm, int base, int gsize,
                               std::vector<double>& data,
                               std::vector<double>& scratch, int tag) {
    if (gsize == 1) return;
    const int gr = comm.rank() - base;
    const std::size_t n = data.size();
    scratch.resize(n);
    int mask = 1;
    while (mask < gsize) {
      if ((gr & mask) == 0) {
        const int peer = gr | mask;
        if (peer < gsize) {
          comm.recv(base + peer, tag, scratch.data(), n * sizeof(double));
          for (std::size_t i = 0; i < n; ++i) data[i] += scratch[i];
        }
      } else {
        comm.send(base + (gr & ~mask), tag, data.data(),
                  n * sizeof(double));
        break;
      }
      mask <<= 1;
    }
  }

  // Middleware over the contiguous rank group [base, base + size): rank()
  // and size() report group coordinates; the operations mirror the MPI
  // personality's algorithms but draw point-to-point tags from a private
  // sequence (kGroupTagBase..) instead of the comm-wide collective
  // counter, so the other group's program never has to participate.
  class GroupMiddleware final : public middleware::Middleware {
   public:
    GroupMiddleware(mpi::Comm& comm, int base, int size)
        : Middleware(comm), base_(base), size_(size) {}

    int rank() const override { return comm_.rank() - base_; }
    int size() const override { return size_; }

    void global_sum(double* data, std::size_t n) override {
      if (size_ == 1) return;
      std::vector<double> scratch;
      std::vector<double> vec(data, data + n);
      group_reduce_sum(comm_, base_, size_, vec, scratch, next_tag());
      std::memcpy(data, vec.data(), n * sizeof(double));
      broadcast(data, n * sizeof(double), 0);
    }

    void synchronize() override {
      if (size_ == 1) return;
      mpi::Comm::SyncScope sync(comm_);
      const int tag = next_tag();
      const int gr = rank();
      for (int k = 1; k < size_; k <<= 1) {
        comm_.send(base_ + (gr + k) % size_, tag, nullptr, 0);
        comm_.recv(base_ + (gr - k + size_) % size_, tag, nullptr, 0);
      }
    }

    void transpose(const void* send,
                   const std::vector<std::size_t>& send_counts,
                   const std::vector<std::size_t>& send_displs, void* recv,
                   const std::vector<std::size_t>& recv_counts,
                   const std::vector<std::size_t>& recv_displs) override {
      const int gp = size_;
      const int gr = rank();
      REPRO_REQUIRE(send_counts.size() == static_cast<std::size_t>(gp) &&
                        recv_counts.size() == static_cast<std::size_t>(gp),
                    "group transpose: counts must have one entry per rank");
      const auto* in = static_cast<const unsigned char*>(send);
      auto* out = static_cast<unsigned char*>(recv);
      std::memcpy(out + recv_displs[static_cast<std::size_t>(gr)],
                  in + send_displs[static_cast<std::size_t>(gr)],
                  send_counts[static_cast<std::size_t>(gr)]);
      if (gp == 1) return;
      perf::PhaseScope phase(comm_.recorder(), "pme_transpose");
      const int tag = next_tag();
      for (int k = 1; k < gp; ++k) {
        const auto dst = static_cast<std::size_t>((gr + k) % gp);
        const auto src = static_cast<std::size_t>((gr - k + gp) % gp);
        comm_.send(base_ + static_cast<int>(dst), tag,
                   in + send_displs[dst], send_counts[dst],
                   /*exchange=*/true);
        comm_.recv(base_ + static_cast<int>(src), tag,
                   out + recv_displs[src], recv_counts[src]);
      }
    }

    void broadcast(void* data, std::size_t bytes, int root) override {
      if (size_ == 1) return;
      const int tag = next_tag();
      const int vrank = (rank() - root + size_) % size_;
      int mask = 1;
      while (mask < size_) {
        if (vrank & mask) {
          comm_.recv(base_ + (vrank - mask + root) % size_, tag, data,
                     bytes);
          break;
        }
        mask <<= 1;
      }
      mask >>= 1;
      while (mask > 0) {
        if (vrank + mask < size_) {
          comm_.send(base_ + (vrank + mask + root) % size_, tag, data,
                     bytes);
        }
        mask >>= 1;
      }
    }

   private:
    int next_tag() {
      REPRO_REQUIRE(kGroupTagBase + static_cast<int>(seq_) <
                        mpi::Comm::kCollectiveTagBase,
                    "group tag space exhausted; tags would alias");
      return kGroupTagBase + static_cast<int>(seq_++);
    }

    int base_;
    int size_;
    unsigned seq_ = 0;
  };

  DecompSpec spec_;
};

// --------------------------------------------------------------------------
// Spatial domain decomposition with halo exchange.
//
// Ranks own cells of a 3-D grid (charmm/spatial.hpp); each rank keeps
// current positions/velocities only for its owned atoms plus position
// ghosts of the border cells of its ≤26 neighboring ranks. Per step the
// schedule is: position halo out to the neighbors, owned-row compute
// (bonded/non-bonded/exclusion terms belong to the owner of their first
// atom), force halo folding ghost-row partials back to the owners, and a
// 9-double energy allreduce. At every neighbor-list rebuild after the
// first, atoms that crossed into a foreign cell migrate (id+pos+vel) to
// the new owner and the ghost sets are renegotiated; the epoch is frozen
// in between, which is what makes the halo schedule — and the analytic
// predictor's message/byte counts — exactly reproducible.
//
// PME keeps its full-communication structure (the slab FFT wants every
// position): a pairwise all-to-all position gather precedes the
// reciprocal sum, and the reciprocal forces are combined with one
// full-vector allreduce, of which each rank applies only its owned rows.
//
// With ldb != off the unit of work is a migratable cell block (a work
// unit): the grid is overdecomposed into units ≫ ranks once at startup,
// and at every rebuild after the first the measured per-unit costs and
// per-rank speeds are allreduced, every rank recomputes the same
// unit→rank map, and moved units hand their atoms to the new owner
// before the ghost renegotiation. With ldb=off none of this machinery
// runs and the schedule is byte-identical to the paragraphs above.
// --------------------------------------------------------------------------
class SpatialDecomposition final : public Decomposition {
 public:
  explicit SpatialDecomposition(const DecompSpec& spec) : spec_(spec) {}

  const char* name() const override { return "spatial"; }

  RankRunResult run(const sysbuild::BuiltSystem& sys,
                    const CharmmConfig& config,
                    middleware::Middleware& mw) const override {
    mpi::Comm& comm = mw.comm();
    const int p = comm.size();
    if (p == 1) {
      // One domain is the whole box: run the reference program so the
      // sequential trajectory (and its goldens) is preserved to the byte.
      return AtomReplicatedDecomposition{}.run(sys, config, mw);
    }
    check_tag_budget(config);
    perf::RankRecorder& rec = comm.recorder();
    const int me = comm.rank();
    const CostModel& cost = config.cost;
    const md::Topology& topo = sys.topo;
    const md::Box& box = sys.box;
    const auto natoms = static_cast<std::size_t>(topo.natoms());

    SpatialLayout layout = make_spatial_layout(
        spec_, box, config.cutoff + config.skin, p, &sys.positions);

    // Work-unit overdecomposition (ldb != off). The cell→unit grid is
    // frozen for the run; only the unit→rank map migrates. The cold-start
    // map replaces the packer's cell→rank assignment with a pair-cost
    // weighted one; every later epoch's layout is derived from the map.
    const bool ldb_on = spec_.ldb != LdbPolicy::kOff;
    std::optional<UnitGrid> units;
    std::vector<int> unit_rank;
    std::uint64_t unit_map_hash = 0;
    std::size_t units_moved = 0;
    auto hash_unit_map = [&]() {
      unit_map_hash = util::hash_combine(
          unit_map_hash, util::fnv1a_bytes(unit_rank.data(),
                                           unit_rank.size() * sizeof(int)));
    };
    if (ldb_on) {
      units.emplace(make_unit_grid(
          layout, resolved_units(spec_, p, layout.ncells()), sys.positions));
      unit_rank = initial_unit_map(*units, p);
      layout = layout_from_units(layout, *units, unit_rank);
      hash_unit_map();
    }
    std::vector<int> nbrs =
        layout.rank_neighbors[static_cast<std::size_t>(me)];
    std::size_t nn = nbrs.size();

    md::NonbondedOptions nb;
    nb.cutoff = config.cutoff;
    nb.switch_on = config.switch_on;
    nb.elec = config.use_pme ? md::NonbondedOptions::Elec::kEwaldDirect
                             : md::NonbondedOptions::Elec::kShift;
    nb.beta = config.pme.beta;
    nb.kernel = config.kernel;
    nb.table = md::build_pair_table(topo);

    // Full-size arrays; only owned (pos+vel) and ghost (pos) entries are
    // current. Velocities are assigned replicated so the initial owned
    // slices agree bitwise with the sequential run.
    std::vector<Vec3> pos = sys.positions;
    std::vector<Vec3> vel;
    md::assign_velocities(topo, config.temperature_k, config.seed, vel);
    std::vector<Vec3> forces(natoms);
    std::vector<Vec3> recip_forces;
    std::vector<double> flat;
    md::NeighborList nbl(config.cutoff, config.skin);

    // Slab or pencil PME. Neither constructor communicates or charges
    // compute, so wrapping the slab machinery in an optional leaves the
    // slab path's schedule byte-identical to the unconditional build.
    auto charge_flops = [&](double flops) {
      comm.compute(flops * cost.seconds_per_flop);
    };
    const bool pencil =
        config.use_pme && spec_.pme_mode == PmeMode::kPencil;
    std::optional<pme::ParallelPme> ppme;
    std::optional<pme::PencilPme> pencil_pme;
    int pencil_py = 0;
    int pencil_pz = 0;
    if (pencil) {
      const auto [py, pz] =
          resolved_pencil_grid(spec_, p, config.pme.ny, config.pme.nz);
      pencil_py = py;
      pencil_pz = pz;
      pencil_pme.emplace(config.pme, box, comm, py, pz,
                         make_pme_regions(layout, config.pme, config.skin),
                         charge_flops, config.kernel);
    } else {
      ppme.emplace(config.pme, box, mw, charge_flops, config.kernel);
    }

    // Epoch state, frozen between rebuilds.
    std::vector<int> owned;
    std::vector<std::uint8_t> owned_mask(natoms, 0);
    std::vector<std::vector<int>> send_ids(nn);  // to nbrs[k], sorted
    std::vector<std::vector<int>> recv_ids(nn);  // ghosts from nbrs[k]
    std::vector<int> candidates;
    std::size_t owned_excl = 0;
    std::size_t migrated = 0;

    // Reused wire buffers (payloads are doubles; atom ids are exact in a
    // double far beyond any system size here).
    std::vector<std::vector<double>> out(nn);
    std::vector<double> in(1 + 7 * natoms);
    std::vector<double> gather_buf;

    // ldb measurement state for the current epoch: per-unit work counts
    // and cumulative model-cost accumulators per measured phase. The
    // accumulators mirror the recorder's += sequence exactly (same value,
    // same order, same per-step granularity), so a fault-free rank's
    // measured/model ratio is exactly 1.0 and the analytic predictor's
    // speed-1.0 replay reproduces the balancer's decisions bit-for-bit.
    UnitWork epoch_work;
    std::vector<int> unit_of_row;
    std::array<double, 3> model_cum{};
    std::array<double, 3> model_snap{};
    std::array<double, 3> measured_snap{};
    static constexpr const char* kMeasuredPhases[3] = {"bonded", "nonbonded",
                                                      "ewald_corr"};
    auto measured_cum = [&](int i) {
      const auto& phase_times = rec.phase_times();
      const auto it = phase_times.find(kMeasuredPhases[i]);
      return it == phase_times.end() ? 0.0 : it->second;
    };
    auto begin_measurement = [&]() {
      unit_of_row.assign(natoms, -1);
      for (int i : owned) {
        unit_of_row[static_cast<std::size_t>(i)] =
            units->cell_unit[static_cast<std::size_t>(
                layout.cell_of(pos[static_cast<std::size_t>(i)]))];
      }
      epoch_work = count_unit_work(units->nunits, topo, nbl, unit_of_row);
      for (int i = 0; i < 3; ++i) {
        measured_snap[static_cast<std::size_t>(i)] = measured_cum(i);
        model_snap[static_cast<std::size_t>(i)] =
            model_cum[static_cast<std::size_t>(i)];
      }
    };

    // Step 0: every rank derives the identical global epoch from the
    // replicated initial positions — no communication.
    auto adopt_global_epoch = [&]() {
      const SpatialEpoch epoch = make_global_epoch(layout, pos);
      owned = epoch.owned[static_cast<std::size_t>(me)];
      send_ids = epoch.send[static_cast<std::size_t>(me)];
      for (std::size_t k = 0; k < nn; ++k) {
        const auto s = static_cast<std::size_t>(nbrs[k]);
        const auto& back = layout.rank_neighbors[s];
        const auto it = std::lower_bound(back.begin(), back.end(), me);
        recv_ids[k] =
            epoch.send[s][static_cast<std::size_t>(it - back.begin())];
      }
    };

    auto refresh_derived = [&]() {
      std::fill(owned_mask.begin(), owned_mask.end(), 0);
      for (int i : owned) owned_mask[static_cast<std::size_t>(i)] = 1;
      candidates = owned;
      for (const auto& r : recv_ids) {
        candidates.insert(candidates.end(), r.begin(), r.end());
      }
      owned_excl = 0;
      for (const auto& [i, j] : topo.excluded_pairs()) {
        (void)j;
        if (owned_mask[static_cast<std::size_t>(i)]) ++owned_excl;
      }
    };

    // Atoms that left my cells move (id, pos, vel) to the new owner. An
    // atom drifting a whole cell width (≥ cutoff + skin) past its
    // neighbor shell within one epoch would need velocities far beyond
    // anything this integrator produces; assert rather than deadlock.
    auto migrate = [&](int step) {
      perf::PhaseScope phase(rec, "migrate");
      const int tag = schedule_tag(step, 0);
      for (auto& b : out) {
        b.clear();
        b.push_back(0.0);
      }
      std::vector<int> keep;
      keep.reserve(owned.size());
      for (int i : owned) {
        const auto ui = static_cast<std::size_t>(i);
        const int r = layout.cell_rank[static_cast<std::size_t>(
            layout.cell_of(pos[ui]))];
        if (r == me) {
          keep.push_back(i);
          continue;
        }
        const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), r);
        REPRO_REQUIRE(it != nbrs.end() && *it == r,
                      "atom migrated beyond the neighbor shell in one "
                      "epoch; the list rebuild interval is too long for "
                      "this timestep");
        auto& b = out[static_cast<std::size_t>(it - nbrs.begin())];
        b.push_back(static_cast<double>(i));
        b.push_back(pos[ui].x);
        b.push_back(pos[ui].y);
        b.push_back(pos[ui].z);
        b.push_back(vel[ui].x);
        b.push_back(vel[ui].y);
        b.push_back(vel[ui].z);
        ++migrated;
      }
      for (std::size_t k = 0; k < nn; ++k) {
        out[k][0] = static_cast<double>((out[k].size() - 1) / 7);
        comm.send(nbrs[k], tag, out[k].data(),
                  out[k].size() * sizeof(double), /*exchange=*/true);
      }
      for (std::size_t k = 0; k < nn; ++k) {
        comm.recv(nbrs[k], tag, in.data(), in.size() * sizeof(double));
        const auto n = static_cast<std::size_t>(in[0]);
        for (std::size_t a = 0; a < n; ++a) {
          const double* rec_ptr = in.data() + 1 + 7 * a;
          const int id = static_cast<int>(rec_ptr[0]);
          const auto uid = static_cast<std::size_t>(id);
          pos[uid] = {rec_ptr[1], rec_ptr[2], rec_ptr[3]};
          vel[uid] = {rec_ptr[4], rec_ptr[5], rec_ptr[6]};
          keep.push_back(id);
        }
      }
      std::sort(keep.begin(), keep.end());
      owned = std::move(keep);
    };

    // Renegotiate ghost sets for the new epoch: ship (ids, positions) of
    // my border-cell atoms to each neighbor; what arrives defines my
    // ghosts. Counts are unknown to the receiver, so every neighbor gets
    // a message even when empty.
    auto exchange_ghosts = [&](int step) {
      perf::PhaseScope phase(rec, "ghost_exchange");
      const int tag = schedule_tag(step, 1);
      for (auto& s : send_ids) s.clear();
      for (int i : owned) {
        const auto c = static_cast<std::size_t>(
            layout.cell_of(pos[static_cast<std::size_t>(i)]));
        for (int s : layout.cell_border_ranks[c]) {
          const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), s);
          send_ids[static_cast<std::size_t>(it - nbrs.begin())].push_back(i);
        }
      }
      for (std::size_t k = 0; k < nn; ++k) {
        auto& b = out[k];
        b.clear();
        b.push_back(static_cast<double>(send_ids[k].size()));
        for (int i : send_ids[k]) b.push_back(static_cast<double>(i));
        for (int i : send_ids[k]) {
          const auto ui = static_cast<std::size_t>(i);
          b.push_back(pos[ui].x);
          b.push_back(pos[ui].y);
          b.push_back(pos[ui].z);
        }
        comm.send(nbrs[k], tag, b.data(), b.size() * sizeof(double),
                  /*exchange=*/true);
      }
      for (std::size_t k = 0; k < nn; ++k) {
        comm.recv(nbrs[k], tag, in.data(), in.size() * sizeof(double));
        const auto n = static_cast<std::size_t>(in[0]);
        recv_ids[k].resize(n);
        for (std::size_t a = 0; a < n; ++a) {
          recv_ids[k][a] = static_cast<int>(in[1 + a]);
        }
        for (std::size_t a = 0; a < n; ++a) {
          const double* r = in.data() + 1 + n + 3 * a;
          pos[static_cast<std::size_t>(recv_ids[k][a])] = {r[0], r[1], r[2]};
        }
      }
    };

    // Per-step position halo: both sides know the epoch's counts, so
    // payloads are raw coordinates and empty lists send nothing.
    auto halo_positions = [&](int step) {
      perf::PhaseScope phase(rec, "halo_exchange");
      const int tag = schedule_tag(step, 2);
      for (std::size_t k = 0; k < nn; ++k) {
        if (send_ids[k].empty()) continue;
        auto& b = out[k];
        b.clear();
        for (int i : send_ids[k]) {
          const auto ui = static_cast<std::size_t>(i);
          b.push_back(pos[ui].x);
          b.push_back(pos[ui].y);
          b.push_back(pos[ui].z);
        }
        comm.send(nbrs[k], tag, b.data(), b.size() * sizeof(double),
                  /*exchange=*/true);
      }
      for (std::size_t k = 0; k < nn; ++k) {
        if (recv_ids[k].empty()) continue;
        comm.recv(nbrs[k], tag, in.data(), in.size() * sizeof(double));
        for (std::size_t a = 0; a < recv_ids[k].size(); ++a) {
          const double* r = in.data() + 3 * a;
          pos[static_cast<std::size_t>(recv_ids[k][a])] = {r[0], r[1], r[2]};
        }
      }
    };

    // Reverse halo: partial forces accumulated on my ghost rows go home
    // (byte-symmetric with the position halo), and the partials my
    // neighbors held for my atoms fold into my owned rows.
    auto halo_forces = [&](int step) {
      perf::PhaseScope phase(rec, "halo_fold");
      const int tag = schedule_tag(step, 3);
      for (std::size_t k = 0; k < nn; ++k) {
        if (recv_ids[k].empty()) continue;
        auto& b = out[k];
        b.clear();
        for (int i : recv_ids[k]) {
          const auto ui = static_cast<std::size_t>(i);
          b.push_back(forces[ui].x);
          b.push_back(forces[ui].y);
          b.push_back(forces[ui].z);
        }
        comm.send(nbrs[k], tag, b.data(), b.size() * sizeof(double),
                  /*exchange=*/true);
      }
      for (std::size_t k = 0; k < nn; ++k) {
        if (send_ids[k].empty()) continue;
        comm.recv(nbrs[k], tag, in.data(), in.size() * sizeof(double));
        for (std::size_t a = 0; a < send_ids[k].size(); ++a) {
          const double* r = in.data() + 3 * a;
          forces[static_cast<std::size_t>(send_ids[k][a])] +=
              Vec3{r[0], r[1], r[2]};
        }
      }
    };

    // PME wants every position on every rank (slab spreading): a pairwise
    // all-to-all gather of (count, ids, positions). Every rank sends to
    // every other — owned sets are unknown remotely, and idle ranks must
    // still participate so the schedule cannot deadlock.
    auto gather_positions = [&](int step) {
      perf::PhaseScope phase(rec, "pme_gather");
      const int tag = schedule_tag(step, 4);
      auto& b = gather_buf;
      b.clear();
      b.push_back(static_cast<double>(owned.size()));
      for (int i : owned) b.push_back(static_cast<double>(i));
      for (int i : owned) {
        const auto ui = static_cast<std::size_t>(i);
        b.push_back(pos[ui].x);
        b.push_back(pos[ui].y);
        b.push_back(pos[ui].z);
      }
      for (int k = 1; k < p; ++k) {
        comm.send((me + k) % p, tag, b.data(), b.size() * sizeof(double),
                  /*exchange=*/true);
      }
      for (int k = 1; k < p; ++k) {
        comm.recv((me - k + p) % p, tag, in.data(),
                  in.size() * sizeof(double));
        const auto n = static_cast<std::size_t>(in[0]);
        for (std::size_t a = 0; a < n; ++a) {
          const double* r = in.data() + 1 + n + 3 * a;
          pos[static_cast<std::size_t>(in[1 + a])] = {r[0], r[1], r[2]};
        }
      }
    };

    // Measurement-driven rebalance, run at a rebuild between the drift
    // migration (old map: every owned atom sits in one of my cells, so
    // each unit's atoms are wholly on its old owner) and the ghost
    // renegotiation (new map). Three sub-steps:
    //   ldb_collect : allreduce of K unit costs (each summed by exactly
    //                 one rank, so the sum is v + 0 + ... and
    //                 order-independent) plus p measured rank speeds;
    //   decide      : every rank derives the identical new map;
    //   unit_handoff: the old owner of each moved unit ships its atoms
    //                 [count, (id, pos, vel) x n] to the new owner. All
    //                 sends post before any receive, both sides walk
    //                 moved units in ascending id, so multiple units
    //                 between one pair stay FIFO-aligned on one tag.
    auto rebalance = [&](int step) {
      const int nunits = units->nunits;
      std::vector<double> collect(static_cast<std::size_t>(nunits + p), 0.0);
      double measured = 0.0;
      double model = 0.0;
      for (int i = 0; i < 3; ++i) {
        measured += measured_cum(i) - measured_snap[static_cast<std::size_t>(i)];
        model += model_cum[static_cast<std::size_t>(i)] -
                 model_snap[static_cast<std::size_t>(i)];
      }
      collect[static_cast<std::size_t>(nunits + me)] =
          model > 0.0 ? measured / model : 1.0;
      for (int u = 0; u < nunits; ++u) {
        if (unit_rank[static_cast<std::size_t>(u)] != me) continue;
        const auto su = static_cast<std::size_t>(u);
        collect[su] =
            unit_cost_seconds(cost, epoch_work.pairs[su],
                              epoch_work.bonded[su], epoch_work.excl[su],
                              config.use_pme);
      }
      {
        perf::PhaseScope phase(rec, "ldb_collect");
        mw.global_sum(collect.data(), collect.size());
      }
      const std::vector<double> unit_cost(collect.begin(),
                                          collect.begin() + nunits);
      const std::vector<double> rank_speed(collect.begin() + nunits,
                                           collect.end());
      const std::vector<int> new_map =
          rebalance_units(spec_.ldb, unit_cost, rank_speed, unit_rank);
      std::vector<int> moved;
      for (int u = 0; u < nunits; ++u) {
        if (new_map[static_cast<std::size_t>(u)] !=
            unit_rank[static_cast<std::size_t>(u)]) {
          moved.push_back(u);
        }
      }
      units_moved += moved.size();
      std::vector<int> keep;
      keep.reserve(owned.size());
      {
        perf::PhaseScope phase(rec, "unit_handoff");
        const int tag = schedule_tag(step, 11);
        std::vector<int> my_moved;
        for (int u : moved) {
          if (unit_rank[static_cast<std::size_t>(u)] == me) my_moved.push_back(u);
        }
        std::vector<std::vector<double>> unit_out(my_moved.size());
        for (auto& b : unit_out) b.push_back(0.0);
        for (int i : owned) {
          const auto ui = static_cast<std::size_t>(i);
          const int u = units->cell_unit[static_cast<std::size_t>(
              layout.cell_of(pos[ui]))];
          if (new_map[static_cast<std::size_t>(u)] == me) {
            keep.push_back(i);
            continue;
          }
          const auto it =
              std::lower_bound(my_moved.begin(), my_moved.end(), u);
          REPRO_REQUIRE(it != my_moved.end() && *it == u,
                        "owned atom in a unit this rank does not own");
          auto& b = unit_out[static_cast<std::size_t>(it - my_moved.begin())];
          b.push_back(static_cast<double>(i));
          b.push_back(pos[ui].x);
          b.push_back(pos[ui].y);
          b.push_back(pos[ui].z);
          b.push_back(vel[ui].x);
          b.push_back(vel[ui].y);
          b.push_back(vel[ui].z);
        }
        for (std::size_t k = 0; k < my_moved.size(); ++k) {
          auto& b = unit_out[k];
          b[0] = static_cast<double>((b.size() - 1) / 7);
          comm.send(new_map[static_cast<std::size_t>(my_moved[k])], tag,
                    b.data(), b.size() * sizeof(double), /*exchange=*/true);
        }
        for (int u : moved) {
          if (new_map[static_cast<std::size_t>(u)] != me) continue;
          comm.recv(unit_rank[static_cast<std::size_t>(u)], tag, in.data(),
                    in.size() * sizeof(double));
          const auto n = static_cast<std::size_t>(in[0]);
          for (std::size_t a = 0; a < n; ++a) {
            const double* rec_ptr = in.data() + 1 + 7 * a;
            const int id = static_cast<int>(rec_ptr[0]);
            const auto uid = static_cast<std::size_t>(id);
            pos[uid] = {rec_ptr[1], rec_ptr[2], rec_ptr[3]};
            vel[uid] = {rec_ptr[4], rec_ptr[5], rec_ptr[6]};
            keep.push_back(id);
          }
        }
      }
      std::sort(keep.begin(), keep.end());
      owned = std::move(keep);

      // Adopt the new map: re-derive the epoch topology (neighbor sets,
      // per-neighbor buffers, pencil-PME regions) from the new layout.
      unit_rank = new_map;
      layout = layout_from_units(layout, *units, unit_rank);
      hash_unit_map();
      nbrs = layout.rank_neighbors[static_cast<std::size_t>(me)];
      nn = nbrs.size();
      out.assign(nn, {});
      send_ids.assign(nn, {});
      recv_ids.assign(nn, {});
      if (pencil) {
        pencil_pme.emplace(config.pme, box, comm, pencil_py, pencil_pz,
                           make_pme_regions(layout, config.pme, config.skin),
                           charge_flops);
      }
    };

    RankRunResult result;
    std::size_t local_pairs = 0;
    for (int step = 0; step < config.nsteps; ++step) {
      rec.set_component(perf::Component::kClassic);
      if (config.coherency_barriers) mw.synchronize();

      if (step % config.list_rebuild_interval == 0) {
        if (step == 0) {
          adopt_global_epoch();
        } else {
          migrate(step);
          if (ldb_on) rebalance(step);
          exchange_ghosts(step);
        }
        refresh_derived();
        {
          perf::PhaseScope phase(rec, "list_build");
          nbl.build_subset(topo, box, pos, candidates, owned_mask);
          comm.compute(cost.seconds_per_list_pair *
                       static_cast<double>(nbl.npairs()) * 2.0);
          local_pairs = nbl.npairs();
        }
        if (ldb_on) begin_measurement();
      }

      halo_positions(step);

      std::fill(forces.begin(), forces.end(), Vec3{});
      md::EnergyTerms energy;

      {
        perf::PhaseScope phase(rec, "bonded");
        const md::BondedWork bw = md::bonded_energy_owned(
            topo, box, pos, owned_mask, forces, energy);
        const double sec = cost.seconds_per_bonded_term *
                           static_cast<double>(bw.total());
        comm.compute(sec);
        model_cum[0] += sec;
      }

      {
        perf::PhaseScope phase(rec, "nonbonded");
        const md::NonbondedWork nw = md::nonbonded_energy(
            topo, box, pos, nbl, nb, forces, energy, 0, 1);
        const double sec = cost.seconds_per_pair *
                           static_cast<double>(nw.pairs_listed);
        comm.compute(sec);
        model_cum[1] += sec;
      }

      if (config.use_pme) {
        {
          perf::PhaseScope phase(rec, "ewald_corr");
          energy.ewald_excl += pme::ewald_exclusion_correction_owned(
              topo, box, pos, owned_mask, config.pme.beta, forces);
          const double sec = cost.seconds_per_bonded_term *
                             static_cast<double>(owned_excl);
          comm.compute(sec);
          model_cum[2] += sec;
        }
        if (me == 0) {
          energy.ewald_self += pme::ewald_self_energy(topo, config.pme.beta);
        }

        rec.set_component(perf::Component::kPme);
        if (config.coherency_barriers) mw.synchronize();
        if (pencil) {
          // Pencil PME: charges are spread locally and exchanged as
          // region plane blocks, the FFT transposes within pencil rows/
          // columns, and owned-atom forces come back complete — no
          // position gather and no reciprocal-force allreduce.
          perf::PhaseScope phase(rec, "pme_recip");
          energy.ewald_recip += pencil_pme->reciprocal(
              topo, pos, owned, forces, schedule_tag(step, 5));
        } else {
          gather_positions(step);
          recip_forces.assign(natoms, Vec3{});
          {
            perf::PhaseScope phase(rec, "pme_recip");
            energy.ewald_recip += ppme->reciprocal(topo, pos, recip_forces);
          }
          {
            // The reciprocal force on an atom has contributions from
            // every slab; combine with one full-vector allreduce, of
            // which each rank keeps its owned rows (ghost rows would
            // double-count after the force halo).
            perf::PhaseScope phase(rec, "recip_reduce");
            util::flatten(recip_forces, flat);
            mw.global_sum(flat.data(), flat.size());
            util::unflatten(flat, recip_forces);
          }
          for (int i : owned) {
            const auto ui = static_cast<std::size_t>(i);
            forces[ui] += recip_forces[ui];
          }
        }
        rec.set_component(perf::Component::kClassic);
      }

      halo_forces(step);

      {
        perf::PhaseScope phase(rec, "energy_reduce");
        std::array<double, md::EnergyTerms::kCount> earr = energy.to_array();
        mw.global_sum(earr.data(), earr.size());
        energy = md::EnergyTerms::from_array(earr);
      }
      result.last_energy = energy;

      rec.set_component(perf::Component::kOther);
      {
        perf::PhaseScope phase(rec, "integrate");
        comm.compute(cost.seconds_per_integration_atom *
                     static_cast<double>(owned.size()));
      }
      const double kick = config.dt_ps * units::kForceToAccel;
      for (int i : owned) {
        const auto ui = static_cast<std::size_t>(i);
        vel[ui] += forces[ui] * (kick / topo.atom(i).mass);
        pos[ui] += vel[ui] * config.dt_ps;
      }
      rec.end_step();
    }

    // Distributed state needs one last reduction so every rank reports
    // the identical totals run_experiment asserts on: the coordinate
    // checksum over owners, the global pair count, and the migrations.
    {
      rec.set_component(perf::Component::kOther);
      perf::PhaseScope phase(rec, "result_reduce");
      double partial = 0.0;
      for (int i : owned) {
        const auto ui = static_cast<std::size_t>(i);
        partial += pos[ui].x + pos[ui].y + pos[ui].z;
      }
      double tail[3] = {partial, static_cast<double>(local_pairs),
                        static_cast<double>(migrated)};
      mw.global_sum(tail, 3);
      result.position_checksum = tail[0];
      result.pairs_in_list = static_cast<std::size_t>(tail[1] + 0.5);
      result.atoms_migrated = static_cast<std::size_t>(tail[2] + 0.5);
    }
    // Replicated balancer state: every rank computed the same maps from
    // the same allreduced inputs, so these need no reduction.
    result.units_moved = units_moved;
    result.unit_map_hash = unit_map_hash;
    return result;
  }

 private:
  DecompSpec spec_;
};

}  // namespace

std::unique_ptr<Decomposition> make_decomposition(const DecompSpec& spec) {
  switch (spec.kind) {
    case DecompKind::kAtomReplicated:
      return std::make_unique<AtomReplicatedDecomposition>();
    case DecompKind::kForce:
      return std::make_unique<ForceDecomposition>();
    case DecompKind::kTaskPme:
      return std::make_unique<TaskPmeDecomposition>(spec);
    case DecompKind::kSpatial:
      return std::make_unique<SpatialDecomposition>(spec);
  }
  REPRO_UNREACHABLE("bad decomposition kind");
}

}  // namespace repro::charmm
