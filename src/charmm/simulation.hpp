// Sequential MD engine: the same physics as the parallel energy
// calculation, without the cluster simulator. Used by the examples, the
// validation tests (parallel-vs-sequential) and the NVE checks.
#pragma once

#include <vector>

#include <memory>
#include <optional>

#include "md/constraints.hpp"
#include "md/energy.hpp"
#include "md/integrator.hpp"
#include "md/minimize.hpp"
#include "md/neighbor.hpp"
#include "md/nonbonded.hpp"
#include "md/thermostat.hpp"
#include "pme/pme.hpp"
#include "sysbuild/builder.hpp"

namespace repro::charmm {

// Relaxes a freshly built system in place (steepest descent on the full
// force field, PME included), removing the residual close contacts of the
// synthetic builder. Returns the minimization summary.
md::MinimizeResult relax_system(sysbuild::BuiltSystem& sys, int max_steps);

struct SimulationConfig {
  bool use_pme = true;
  double dt_ps = 0.0005;
  double cutoff = 10.0;
  double switch_on = 8.0;
  double skin = 2.0;
  int list_rebuild_interval = 5;
  pme::PmeParams pme{80, 36, 48, 4, 0.34};

  // SHAKE on hydrogen bonds (CHARMM "SHAKE BONH"): removes the fastest
  // oscillations, enabling ~2 fs steps.
  bool shake_hydrogens = false;
  // Additionally make waters fully rigid (H-H constraint) — the CHARMM
  // convention for TIP3P solvent; implies shake_hydrogens.
  bool rigid_waters = false;

  // Optional temperature control.
  enum class Thermostat { kNone, kBerendsen, kLangevin };
  Thermostat thermostat = Thermostat::kNone;
  double thermostat_target_k = 300.0;
  double berendsen_tau_ps = 0.1;
  double langevin_friction_per_ps = 5.0;
  std::uint64_t thermostat_seed = 11;

  // Kernel variant for the physics hot paths (util/kernel.hpp).
  util::KernelKind kernel = util::default_kernel_kind();
};

// Rejects configurations the engine cannot meaningfully run (throws
// util::Error): non-positive dt/skin, switch_on >= cutoff, degenerate PME
// grid or spline order. Called by the Simulation constructor; the
// CharmmConfig overload lives in charmm/app.hpp.
void validate_config(const SimulationConfig& config);

class Simulation {
 public:
  Simulation(const sysbuild::BuiltSystem& sys, const SimulationConfig& config);

  // Full force/energy evaluation at the current positions.
  const md::EnergyTerms& evaluate();

  // Velocity-Verlet MD steps (forces are kept consistent across calls).
  void step(int nsteps = 1);

  // Steepest-descent relaxation of the current structure.
  md::MinimizeResult minimize(const md::MinimizeOptions& opts);

  void set_velocities_from_temperature(double temperature_k,
                                       std::uint64_t seed);

  const std::vector<util::Vec3>& positions() const { return pos_; }
  std::vector<util::Vec3>& positions() { return pos_; }
  const std::vector<util::Vec3>& velocities() const { return vel_; }
  const std::vector<util::Vec3>& forces() const { return forces_; }
  const md::EnergyTerms& energy() const { return energy_; }
  double kinetic_energy() const;
  double total_energy() const;
  // Instantaneous temperature with the constrained degrees of freedom
  // removed.
  double current_temperature() const;
  int degrees_of_freedom() const;
  std::size_t pairs_in_list() const { return nbl_.npairs(); }
  const md::Shake* shake() const { return shake_ ? &*shake_ : nullptr; }

 private:
  void ensure_list();
  void compute_forces();

  const sysbuild::BuiltSystem& sys_;
  SimulationConfig config_;
  md::NonbondedOptions nb_;
  md::NeighborList nbl_;
  pme::SerialPme pme_;
  md::VelocityVerlet integrator_;
  std::optional<md::Shake> shake_;
  std::optional<md::BerendsenThermostat> berendsen_;
  std::optional<md::LangevinThermostat> langevin_;
  std::vector<util::Vec3> pos_;
  std::vector<util::Vec3> vel_;
  std::vector<util::Vec3> forces_;
  md::EnergyTerms energy_;
  int steps_since_rebuild_ = -1;
};

}  // namespace repro::charmm
