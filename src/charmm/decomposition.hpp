// Decomposition strategies: the per-rank step program behind
// run_charmm_rank.
//
// A Decomposition owns both halves of a parallelization: *work
// partitioning* (which rank computes which interactions) and the *per-step
// communication schedule* (how partial forces/energies become the
// replicated total every rank integrates). Four strategies:
//
//   AtomReplicated — the paper's CHARMM parallelization, extracted
//       verbatim from the original run_charmm_rank: interleaved shards,
//       full-vector allreduce, replicated integration.
//   Force — each rank owns a block of the pair-interaction matrix
//       (pair (i, j) belongs to rank (block(i) + block(j)) mod p); the
//       reduction shrinks to a fold (reduce-scatter of per-block force
//       partials to their owners) + expand (allgather of owned totals).
//   TaskPme — task decoupling: the last `pme_ranks` ranks run only the
//       reciprocal-space PME work while the rest run only the classic
//       routine, overlapping in virtual time the two components the
//       default schedule serializes through coherency barriers; a
//       combine/broadcast joins the halves at the end of each step.
//   Spatial — domain decomposition: ranks own cells of a 3-D grid (cells
//       at least cutoff + skin wide, packed compactly by a minimum-
//       enlargement heuristic; charmm/spatial.hpp), each step exchanges
//       only border-cell positions with the ≤26-neighborhood and folds
//       ghost forces back, and atoms migrate between owners at
//       neighbor-list rebuilds. The only full-vector collectives left are
//       the small energy reduction and, under PME, the position gather +
//       reciprocal-force sum — the locality CHARMM's replicated-data
//       design never had.
//
// The replicated strategies end each step with bit-identical forces on
// all ranks; Spatial keeps state distributed but allreduces its
// energies/checksum, so every rank still reports identical results
// (run_experiment asserts this).
//
// Communication-schedule discipline: comm-wide collectives draw tags from
// a per-Comm sequence counter, so *every* rank must issue them in the same
// order. Strategies whose groups run different programs (TaskPme) may use
// only point-to-point messages inside a group, with tags below the
// collective tag space (mpi::Comm::kCollectiveTagBase); comm-wide
// collectives are reserved for points where all ranks participate.
#pragma once

#include <memory>

#include "charmm/app.hpp"

namespace repro::charmm {

class Decomposition {
 public:
  virtual ~Decomposition() = default;
  virtual const char* name() const = 0;
  // Runs the whole nsteps workload on this rank; see run_charmm_rank.
  virtual RankRunResult run(const sysbuild::BuiltSystem& sys,
                            const CharmmConfig& config,
                            middleware::Middleware& mw) const = 0;
};

// Builds the strategy for `spec` (throws util::Error on specs the factory
// cannot satisfy, e.g. task decoupling with use_pme off at run time).
std::unique_ptr<Decomposition> make_decomposition(const DecompSpec& spec);

}  // namespace repro::charmm
