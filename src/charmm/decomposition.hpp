// Decomposition strategies: the per-rank step program behind
// run_charmm_rank.
//
// A Decomposition owns both halves of a parallelization: *work
// partitioning* (which rank computes which interactions) and the *per-step
// communication schedule* (how partial forces/energies become the
// replicated total every rank integrates). Three strategies:
//
//   AtomReplicated — the paper's CHARMM parallelization, extracted
//       verbatim from the original run_charmm_rank: interleaved shards,
//       full-vector allreduce, replicated integration.
//   Force — each rank owns a block of the pair-interaction matrix
//       (pair (i, j) belongs to rank (block(i) + block(j)) mod p); the
//       reduction shrinks to a fold (reduce-scatter of per-block force
//       partials to their owners) + expand (allgather of owned totals).
//   TaskPme — task decoupling: the last `pme_ranks` ranks run only the
//       reciprocal-space PME work while the rest run only the classic
//       routine, overlapping in virtual time the two components the
//       default schedule serializes through coherency barriers; a
//       combine/broadcast joins the halves at the end of each step.
//
// Every strategy ends each step with bit-identical replicated forces on
// all ranks, so trajectories never diverge (run_experiment asserts this).
//
// Communication-schedule discipline: comm-wide collectives draw tags from
// a per-Comm sequence counter, so *every* rank must issue them in the same
// order. Strategies whose groups run different programs (TaskPme) may use
// only point-to-point messages inside a group, with tags below the
// collective tag space (mpi::Comm::kCollectiveTagBase); comm-wide
// collectives are reserved for points where all ranks participate.
#pragma once

#include <memory>

#include "charmm/app.hpp"

namespace repro::charmm {

class Decomposition {
 public:
  virtual ~Decomposition() = default;
  virtual const char* name() const = 0;
  // Runs the whole nsteps workload on this rank; see run_charmm_rank.
  virtual RankRunResult run(const sysbuild::BuiltSystem& sys,
                            const CharmmConfig& config,
                            middleware::Middleware& mw) const = 0;
};

// Builds the strategy for `spec` (throws util::Error on specs the factory
// cannot satisfy, e.g. task decoupling with use_pme off at run time).
std::unique_ptr<Decomposition> make_decomposition(const DecompSpec& spec);

}  // namespace repro::charmm
