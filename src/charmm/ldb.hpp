// Measurement-driven load balancing of the spatial decomposition's
// migratable work units (CHARM++/NAMD-style: overdecompose into units ≫
// ranks, measure each unit's cost, periodically recompute unit→rank).
//
// Everything here is deterministic pure computation shared by the
// decomposition (charmm/decomposition.cpp) and the analytic predictor
// (core/model.cpp): both must derive bit-identical unit costs and
// identical rebalance decisions from the same inputs, which is what lets
// the predictor pin the migration message/byte schedule exactly. The
// predictor replays with unit rank-speeds of 1.0 and zero drift — the
// fault-free contract under which a simulated run's measured speeds are
// exactly 1.0 too (the recorder accumulates the very seconds the cost
// model charges).
#pragma once

#include <vector>

#include "charmm/cost_model.hpp"
#include "charmm/decomp_spec.hpp"
#include "charmm/spatial.hpp"
#include "md/neighbor.hpp"
#include "md/topology.hpp"

namespace repro::charmm {

// Per-unit integer work counts for one epoch. Every term is attributed
// to the unit of its first (owning) atom's build-time cell — the same
// first-atom ownership rule bonded_energy_owned, the exclusion
// correction, and the subset pair list use — so a unit's cost is counted
// by exactly one rank and survives migration unchanged.
struct UnitWork {
  std::vector<long> pairs;   // neighbor-list CSR rows
  std::vector<long> bonded;  // bond + angle + dihedral + improper terms
  std::vector<long> excl;    // excluded pairs (ewald_corr phase)
};

// Accumulates the counts for rows whose `unit_of_row` entry is >= 0
// (entries of -1 mark atoms outside the caller's view: a rank passes its
// owned atoms only, the predictor passes every atom). The neighbor list
// may be a full build or a subset build — the selected rows' contents
// are identical by build_subset's contract.
UnitWork count_unit_work(int nunits, const md::Topology& topo,
                         const md::NeighborList& nbl,
                         const std::vector<int>& unit_of_row);

// The per-step compute seconds the decomposition charges for a unit's
// share of the bonded/nonbonded/ewald_corr phases. One canonical
// expression — simulator measurement basis and predictor replay must
// agree bitwise.
inline double unit_cost_seconds(const CostModel& cost, long pairs,
                                long bonded, long excl, bool use_pme) {
  return cost.seconds_per_pair * static_cast<double>(pairs) +
         cost.seconds_per_bonded_term *
             static_cast<double>(bonded + (use_pme ? excl : 0));
}

// Recomputes the unit→rank map from measured inputs. `unit_cost` is the
// per-step model cost of each unit; `rank_speed` is each rank's measured
// slowdown (measured busy time / model busy time, 1.0 when healthy, > 1
// for stragglers — a unit on rank r is predicted to take cost · speed).
//   kGreedy: sort units by cost (desc, id tiebreak), assign each to the
//            rank whose speed-scaled finish time is smallest.
//   kRefine: start from `current` and repeatedly move the best unit off
//            the bottleneck rank while that strictly lowers the predicted
//            makespan — fewer migrations, fixed point under steady load.
// Deterministic: identical inputs give identical maps on every rank.
std::vector<int> rebalance_units(LdbPolicy policy,
                                 const std::vector<double>& unit_cost,
                                 const std::vector<double>& rank_speed,
                                 const std::vector<int>& current);

// Zero-drift, fault-free replay of the whole balancer trajectory: the
// maps a run adopts at the cold start and at each of `nrebalances`
// rebuild-time rebalances, computed from a full neighbor list over the
// initial positions with every rank speed 1.0. result[0] is the
// cold-start map; result[k] the map adopted at the k-th rebalance.
std::vector<std::vector<int>> replay_unit_maps(
    const SpatialLayout& base, const UnitGrid& grid,
    const md::Topology& topo, const md::NeighborList& nbl,
    const std::vector<util::Vec3>& pos, const CostModel& cost, bool use_pme,
    LdbPolicy policy, int nprocs, int nrebalances);

}  // namespace repro::charmm
