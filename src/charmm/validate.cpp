// Configuration validation for the CHARMM workloads.
//
// Both config structs accept arbitrary values; these checks reject the
// combinations the physics or the decompositions cannot meaningfully run,
// so a bad CLI flag fails with a message instead of a NaN trajectory or a
// wedged schedule. Wired into run_experiment and the Simulation
// constructor; error paths are covered in tests the same way
// net::validate_params is.
#include <algorithm>
#include <cstddef>

#include "charmm/app.hpp"
#include "charmm/simulation.hpp"
#include "util/error.hpp"

namespace repro::charmm {

namespace {

// Fields shared by CharmmConfig and SimulationConfig.
template <typename Config>
void validate_common(const Config& config) {
  REPRO_REQUIRE(config.dt_ps > 0.0, "time step must be positive");
  REPRO_REQUIRE(config.cutoff > 0.0, "cutoff must be positive");
  REPRO_REQUIRE(config.switch_on > 0.0, "switch_on must be positive");
  REPRO_REQUIRE(config.switch_on < config.cutoff,
                "switching must start inside the cutoff (switch_on < cutoff)");
  REPRO_REQUIRE(config.skin > 0.0, "neighbor-list skin must be positive");
  REPRO_REQUIRE(config.list_rebuild_interval >= 1,
                "list rebuild interval must be at least 1");
  // parse_kernel_kind already rejects unknown names; this backstop guards
  // configs built in code (or memset) against an out-of-range enum.
  REPRO_REQUIRE(config.kernel == util::KernelKind::kScalar ||
                    config.kernel == util::KernelKind::kSimd,
                "kernel variant must be scalar or simd");
  if (config.use_pme) {
    const pme::PmeParams& grid = config.pme;
    REPRO_REQUIRE(grid.beta > 0.0, "Ewald beta must be positive");
    REPRO_REQUIRE(grid.order >= 2, "PME spline order must be at least 2");
    const std::size_t min_dim = std::min({grid.nx, grid.ny, grid.nz});
    REPRO_REQUIRE(min_dim >= static_cast<std::size_t>(grid.order),
                  "PME grid is degenerate: every dimension must hold at "
                  "least one spline support (dim >= order)");
  }
}

}  // namespace

void validate_config(const CharmmConfig& config) {
  REPRO_REQUIRE(config.nsteps > 0, "nsteps must be positive");
  REPRO_REQUIRE(config.temperature_k >= 0.0,
                "temperature must be non-negative");
  validate_common(config);
  REPRO_REQUIRE(config.decomp.kind != DecompKind::kTaskPme ||
                    config.use_pme,
                "task decoupling dedicates ranks to PME; enable use_pme or "
                "pick another decomposition");
  REPRO_REQUIRE(config.decomp.pme_ranks >= 0,
                "pme_ranks must be non-negative");
  const DecompSpec& d = config.decomp;
  REPRO_REQUIRE(d.grid_x >= 0 && d.grid_y >= 0 && d.grid_z >= 0,
                "spatial grid dimensions must be non-negative");
  const bool any_grid = d.grid_x > 0 || d.grid_y > 0 || d.grid_z > 0;
  const bool all_grid = d.grid_x > 0 && d.grid_y > 0 && d.grid_z > 0;
  REPRO_REQUIRE(!any_grid || all_grid,
                "spatial grid override must set all three dimensions");
  REPRO_REQUIRE(d.pencil_y >= 0 && d.pencil_z >= 0,
                "pencil grid dimensions must be non-negative");
  REPRO_REQUIRE((d.pencil_y > 0) == (d.pencil_z > 0),
                "pencil grid override must set both dimensions");
  if (d.pme_mode == PmeMode::kPencil) {
    REPRO_REQUIRE(d.kind == DecompKind::kSpatial,
                  "pencil PME is an option of the spatial decomposition");
    REPRO_REQUIRE(config.use_pme,
                  "pme=pencil decomposes the PME mesh; enable use_pme or "
                  "drop the pencil option");
  }
  REPRO_REQUIRE(d.ldb == LdbPolicy::kOff || d.kind == DecompKind::kSpatial,
                "load balancing (ldb=) migrates spatial work units; it "
                "requires the spatial decomposition");
  REPRO_REQUIRE(d.units >= 0, "work-unit count must be non-negative");
  REPRO_REQUIRE(d.units == 0 || d.ldb != LdbPolicy::kOff,
                "units= overdecomposes for the load balancer; it requires "
                "ldb=greedy or ldb=refine");
  if (config.use_pme && d.pencil_y > 0) {
    REPRO_REQUIRE(static_cast<std::size_t>(d.pencil_y) <= config.pme.ny,
                  "pencil grid dimension Py exceeds the PME grid's y planes");
    REPRO_REQUIRE(static_cast<std::size_t>(d.pencil_z) <= config.pme.nz,
                  "pencil grid dimension Pz exceeds the PME grid's z planes");
  }
}

void validate_config(const SimulationConfig& config) {
  validate_common(config);
}

}  // namespace repro::charmm
