#include "charmm/decomp_spec.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace repro::charmm {

const char* to_string(DecompKind kind) {
  switch (kind) {
    case DecompKind::kAtomReplicated:
      return "atom";
    case DecompKind::kForce:
      return "force";
    case DecompKind::kTaskPme:
      return "task";
  }
  return "?";
}

std::string to_string(const DecompSpec& spec) {
  std::string out = to_string(spec.kind);
  if (spec.kind == DecompKind::kTaskPme && spec.pme_ranks > 0) {
    out += ":pme=" + std::to_string(spec.pme_ranks);
  }
  return out;
}

DecompSpec parse_decomp_spec(const std::string& text) {
  DecompSpec spec;
  if (text.empty() || text == "atom" || text == "replicated") {
    return spec;
  }
  if (text == "force") {
    spec.kind = DecompKind::kForce;
    return spec;
  }
  if (text == "task" || text.rfind("task:", 0) == 0) {
    spec.kind = DecompKind::kTaskPme;
    if (text == "task") return spec;
    const std::string opt = text.substr(5);
    REPRO_REQUIRE(opt.rfind("pme=", 0) == 0,
                  "bad decomposition option '" + opt +
                      "' (expected task:pme=N): " + text);
    const std::string value = opt.substr(4);
    REPRO_REQUIRE(!value.empty() &&
                      value.find_first_not_of("0123456789") == std::string::npos,
                  "bad PME rank count in decomposition spec: " + text);
    spec.pme_ranks = std::atoi(value.c_str());
    REPRO_REQUIRE(spec.pme_ranks >= 1,
                  "task decomposition needs at least one PME rank: " + text);
    return spec;
  }
  util::fail("unknown decomposition '" + text +
                 "' (expected atom, force, or task[:pme=N])",
             __FILE__, __LINE__);
}

int resolved_pme_ranks(const DecompSpec& spec, int nprocs) {
  REPRO_REQUIRE(nprocs >= 2,
                "task decoupling needs at least two processes to split");
  if (spec.pme_ranks > 0) {
    REPRO_REQUIRE(spec.pme_ranks < nprocs,
                  "task decomposition must leave at least one classic rank");
    return spec.pme_ranks;
  }
  return std::max(1, nprocs / 4);
}

}  // namespace repro::charmm
