#include "charmm/decomp_spec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace repro::charmm {

namespace {

// Strict positive-integer parse (same discipline as the engine's
// REPRO_FIBER_STACK_KB parser): std::atoi accepts trailing garbage,
// silently returns 0 for pure garbage, and overflows on long digit
// strings — every one of those must fail loudly here instead.
int parse_positive_int(const std::string& value, const std::string& what,
                       const std::string& text) {
  long v = 0;
  std::size_t i = 0;
  for (; i < value.size(); ++i) {
    if (value[i] < '0' || value[i] > '9') break;
    v = v * 10 + (value[i] - '0');
    REPRO_REQUIRE(v <= 1000000000L,
                  what + " is out of range in decomposition spec: " + text);
  }
  REPRO_REQUIRE(i == value.size() && !value.empty(),
                "bad " + what + " in decomposition spec (expected a "
                "positive integer): " + text);
  REPRO_REQUIRE(v >= 1, what + " must be at least 1: " + text);
  return static_cast<int>(v);
}

}  // namespace

const char* to_string(DecompKind kind) {
  switch (kind) {
    case DecompKind::kAtomReplicated:
      return "atom";
    case DecompKind::kForce:
      return "force";
    case DecompKind::kTaskPme:
      return "task";
    case DecompKind::kSpatial:
      return "spatial";
  }
  return "?";
}

const char* to_string(LdbPolicy policy) {
  switch (policy) {
    case LdbPolicy::kOff:
      return "off";
    case LdbPolicy::kGreedy:
      return "greedy";
    case LdbPolicy::kRefine:
      return "refine";
  }
  return "?";
}

std::string to_string(const DecompSpec& spec) {
  std::string out = to_string(spec.kind);
  if (spec.kind == DecompKind::kTaskPme && spec.pme_ranks > 0) {
    out += ":pme=" + std::to_string(spec.pme_ranks);
  }
  if (spec.kind == DecompKind::kSpatial) {
    if (spec.grid_x > 0) {
      out += ":grid=" + std::to_string(spec.grid_x) + "x" +
             std::to_string(spec.grid_y) + "x" + std::to_string(spec.grid_z);
    }
    if (spec.pme_mode == PmeMode::kPencil) {
      out += ":pme=pencil";
      if (spec.pencil_y > 0) {
        out += ":grid=" + std::to_string(spec.pencil_y) + "x" +
               std::to_string(spec.pencil_z);
      }
    }
    if (spec.ldb != LdbPolicy::kOff) {
      out += ":ldb=";
      out += to_string(spec.ldb);
      if (spec.units > 0) {
        out += ",units=" + std::to_string(spec.units);
      }
    }
  }
  return out;
}

DecompSpec parse_decomp_spec(const std::string& text) {
  DecompSpec spec;
  if (text.empty() || text == "atom" || text == "replicated") {
    return spec;
  }
  if (text == "force") {
    spec.kind = DecompKind::kForce;
    return spec;
  }
  if (text == "task" || text.rfind("task:", 0) == 0) {
    spec.kind = DecompKind::kTaskPme;
    if (text == "task") return spec;
    const std::string opt = text.substr(5);
    REPRO_REQUIRE(opt.rfind("pme=", 0) == 0,
                  "bad decomposition option '" + opt +
                      "' (expected task:pme=N): " + text);
    spec.pme_ranks = parse_positive_int(opt.substr(4), "PME rank count", text);
    return spec;
  }
  if (text == "spatial" || text.rfind("spatial:", 0) == 0) {
    spec.kind = DecompKind::kSpatial;
    // Colon-separated options after "spatial". "grid=" means the cell
    // grid until "pme=pencil" has been seen, after which it means the
    // pencil process grid — mirroring how to_string prints them.
    bool after_pencil = false;
    bool seen_ldb = false;
    std::size_t pos = 7;  // strlen("spatial")
    while (pos < text.size()) {
      REPRO_REQUIRE(text[pos] == ':',
                    "bad decomposition spec (expected ':' before option): " +
                        text);
      const std::size_t next = text.find(':', pos + 1);
      const std::string opt =
          text.substr(pos + 1, next == std::string::npos ? std::string::npos
                                                         : next - pos - 1);
      pos = next == std::string::npos ? text.size() : next;
      if (opt == "pme=pencil") {
        REPRO_REQUIRE(!after_pencil,
                      "duplicate pme=pencil option in decomposition spec: " +
                          text);
        spec.pme_mode = PmeMode::kPencil;
        after_pencil = true;
        continue;
      }
      REPRO_REQUIRE(opt.rfind("pme=", 0) != 0,
                    "bad PME mode '" + opt +
                        "' in decomposition spec (only pme=pencil is "
                        "accepted; slab is the default): " + text);
      if (opt.rfind("ldb=", 0) == 0) {
        REPRO_REQUIRE(!seen_ldb,
                      "duplicate ldb option in decomposition spec: " + text);
        seen_ldb = true;
        std::string value = opt.substr(4);
        const std::size_t comma = value.find(',');
        const std::string policy = value.substr(0, comma);
        if (policy == "off") {
          spec.ldb = LdbPolicy::kOff;
        } else if (policy == "greedy") {
          spec.ldb = LdbPolicy::kGreedy;
        } else if (policy == "refine") {
          spec.ldb = LdbPolicy::kRefine;
        } else {
          util::fail("bad load-balance policy '" + policy +
                         "' (expected ldb=greedy|refine|off): " + text,
                     __FILE__, __LINE__);
        }
        if (comma != std::string::npos) {
          const std::string rest = value.substr(comma + 1);
          REPRO_REQUIRE(rest.rfind("units=", 0) == 0 &&
                            rest.find(',') == std::string::npos,
                        "bad ldb option '" + rest +
                            "' (expected ldb=POLICY[,units=K]): " + text);
          REPRO_REQUIRE(spec.ldb != LdbPolicy::kOff,
                        "units= is meaningless with ldb=off: " + text);
          spec.units =
              parse_positive_int(rest.substr(6), "work-unit count", text);
        }
        continue;
      }
      REPRO_REQUIRE(opt.rfind("grid=", 0) == 0,
                    "bad decomposition option '" + opt +
                        "' (expected grid=..., pme=pencil, or ldb=...): " +
                        text);
      const std::string dims = opt.substr(5);
      const std::size_t x1 = dims.find('x');
      if (after_pencil) {
        REPRO_REQUIRE(spec.pencil_y == 0,
                      "duplicate pencil grid in decomposition spec: " + text);
        REPRO_REQUIRE(x1 != std::string::npos &&
                          dims.find('x', x1 + 1) == std::string::npos,
                      "bad pencil grid (expected pme=pencil:grid=PyxPz): " +
                          text);
        spec.pencil_y = parse_positive_int(dims.substr(0, x1),
                                           "pencil grid dimension", text);
        spec.pencil_z = parse_positive_int(dims.substr(x1 + 1),
                                           "pencil grid dimension", text);
      } else {
        REPRO_REQUIRE(spec.grid_x == 0,
                      "duplicate cell grid in decomposition spec: " + text);
        const std::size_t x2 = x1 == std::string::npos ? std::string::npos
                                                       : dims.find('x', x1 + 1);
        REPRO_REQUIRE(x1 != std::string::npos && x2 != std::string::npos &&
                          dims.find('x', x2 + 1) == std::string::npos,
                      "bad spatial grid (expected spatial:grid=AxBxC): " +
                          text);
        spec.grid_x = parse_positive_int(dims.substr(0, x1),
                                         "spatial grid dimension", text);
        spec.grid_y = parse_positive_int(dims.substr(x1 + 1, x2 - x1 - 1),
                                         "spatial grid dimension", text);
        spec.grid_z = parse_positive_int(dims.substr(x2 + 1),
                                         "spatial grid dimension", text);
      }
    }
    return spec;
  }
  REPRO_REQUIRE(text.find(":ldb=") == std::string::npos,
                "ldb= only applies to the spatial decomposition (the "
                "replicated strategies have no migratable units): " + text);
  util::fail("unknown decomposition '" + text +
                 "' (expected atom, force, task[:pme=N], or "
                 "spatial[:grid=AxBxC][:pme=pencil[:grid=PyxPz]]"
                 "[:ldb=greedy|refine|off[,units=K]])",
             __FILE__, __LINE__);
}

int resolved_pme_ranks(const DecompSpec& spec, int nprocs) {
  REPRO_REQUIRE(nprocs >= 2,
                "task decoupling needs at least two processes to split");
  if (spec.pme_ranks > 0) {
    REPRO_REQUIRE(spec.pme_ranks < nprocs,
                  "task decomposition must leave at least one classic rank");
    return spec.pme_ranks;
  }
  return std::max(1, nprocs / 4);
}

std::pair<int, int> resolved_pencil_grid(const DecompSpec& spec, int nprocs,
                                         std::size_t ny, std::size_t nz) {
  REPRO_REQUIRE(nprocs >= 2,
                "the pencil PME grid is only resolved for parallel runs");
  int py = spec.pencil_y;
  int pz = spec.pencil_z;
  if (py > 0) {
    REPRO_REQUIRE(static_cast<long>(py) * pz <= nprocs,
                  "pencil grid " + std::to_string(py) + "x" +
                      std::to_string(pz) + " needs more ranks than the run's " +
                      std::to_string(nprocs));
  } else {
    // Auto: the most-square factorization — the largest divisor d of
    // nprocs with d <= sqrt(nprocs), used as (d, nprocs / d). Squarer
    // grids shrink both transpose group sizes at once.
    py = 1;
    for (int d = 1; static_cast<long>(d) * d <= nprocs; ++d) {
      if (nprocs % d == 0) py = d;
    }
    pz = nprocs / py;
  }
  // Every pencil rank must own at least one plane in each distributed
  // dimension, or its 1-D FFT lines would be empty.
  REPRO_REQUIRE(static_cast<std::size_t>(py) <= ny,
                "pencil grid dimension Py=" + std::to_string(py) +
                    " exceeds the FFT's " + std::to_string(ny) + " y planes");
  REPRO_REQUIRE(static_cast<std::size_t>(pz) <= nz,
                "pencil grid dimension Pz=" + std::to_string(pz) +
                    " exceeds the FFT's " + std::to_string(nz) + " z planes");
  return {py, pz};
}

int resolved_units(const DecompSpec& spec, int nprocs, int ncells) {
  REPRO_REQUIRE(spec.ldb != LdbPolicy::kOff,
                "work units are only resolved when load balancing is on");
  REPRO_REQUIRE(ncells >= nprocs,
                "ldb needs at least one cell per rank to overdecompose (" +
                    std::to_string(ncells) + " cells < " +
                    std::to_string(nprocs) + " ranks); use a finer grid=");
  if (spec.units > 0) {
    REPRO_REQUIRE(spec.units >= nprocs,
                  "units=" + std::to_string(spec.units) +
                      " is fewer than the run's " + std::to_string(nprocs) +
                      " ranks; overdecomposition needs units >= ranks");
    REPRO_REQUIRE(spec.units <= ncells,
                  "units=" + std::to_string(spec.units) +
                      " exceeds the spatial grid's " +
                      std::to_string(ncells) + " cells");
    return spec.units;
  }
  // Auto: 4 units per rank is the classic CHARM++ overdecomposition
  // sweet spot — enough slack for the greedy packer to even out costs,
  // few enough that per-unit bookkeeping stays cheap.
  return std::min(4 * nprocs, ncells);
}

}  // namespace repro::charmm
