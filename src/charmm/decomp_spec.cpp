#include "charmm/decomp_spec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace repro::charmm {

namespace {

// Strict positive-integer parse (same discipline as the engine's
// REPRO_FIBER_STACK_KB parser): std::atoi accepts trailing garbage,
// silently returns 0 for pure garbage, and overflows on long digit
// strings — every one of those must fail loudly here instead.
int parse_positive_int(const std::string& value, const std::string& what,
                       const std::string& text) {
  long v = 0;
  std::size_t i = 0;
  for (; i < value.size(); ++i) {
    if (value[i] < '0' || value[i] > '9') break;
    v = v * 10 + (value[i] - '0');
    REPRO_REQUIRE(v <= 1000000000L,
                  what + " is out of range in decomposition spec: " + text);
  }
  REPRO_REQUIRE(i == value.size() && !value.empty(),
                "bad " + what + " in decomposition spec (expected a "
                "positive integer): " + text);
  REPRO_REQUIRE(v >= 1, what + " must be at least 1: " + text);
  return static_cast<int>(v);
}

}  // namespace

const char* to_string(DecompKind kind) {
  switch (kind) {
    case DecompKind::kAtomReplicated:
      return "atom";
    case DecompKind::kForce:
      return "force";
    case DecompKind::kTaskPme:
      return "task";
    case DecompKind::kSpatial:
      return "spatial";
  }
  return "?";
}

std::string to_string(const DecompSpec& spec) {
  std::string out = to_string(spec.kind);
  if (spec.kind == DecompKind::kTaskPme && spec.pme_ranks > 0) {
    out += ":pme=" + std::to_string(spec.pme_ranks);
  }
  if (spec.kind == DecompKind::kSpatial && spec.grid_x > 0) {
    out += ":grid=" + std::to_string(spec.grid_x) + "x" +
           std::to_string(spec.grid_y) + "x" + std::to_string(spec.grid_z);
  }
  return out;
}

DecompSpec parse_decomp_spec(const std::string& text) {
  DecompSpec spec;
  if (text.empty() || text == "atom" || text == "replicated") {
    return spec;
  }
  if (text == "force") {
    spec.kind = DecompKind::kForce;
    return spec;
  }
  if (text == "task" || text.rfind("task:", 0) == 0) {
    spec.kind = DecompKind::kTaskPme;
    if (text == "task") return spec;
    const std::string opt = text.substr(5);
    REPRO_REQUIRE(opt.rfind("pme=", 0) == 0,
                  "bad decomposition option '" + opt +
                      "' (expected task:pme=N): " + text);
    spec.pme_ranks = parse_positive_int(opt.substr(4), "PME rank count", text);
    return spec;
  }
  if (text == "spatial" || text.rfind("spatial:", 0) == 0) {
    spec.kind = DecompKind::kSpatial;
    if (text == "spatial") return spec;
    const std::string opt = text.substr(8);
    REPRO_REQUIRE(opt.rfind("grid=", 0) == 0,
                  "bad decomposition option '" + opt +
                      "' (expected spatial:grid=AxBxC): " + text);
    const std::string dims = opt.substr(5);
    const std::size_t x1 = dims.find('x');
    const std::size_t x2 =
        x1 == std::string::npos ? std::string::npos : dims.find('x', x1 + 1);
    REPRO_REQUIRE(x1 != std::string::npos && x2 != std::string::npos,
                  "bad spatial grid (expected spatial:grid=AxBxC): " + text);
    spec.grid_x =
        parse_positive_int(dims.substr(0, x1), "spatial grid dimension", text);
    spec.grid_y = parse_positive_int(dims.substr(x1 + 1, x2 - x1 - 1),
                                     "spatial grid dimension", text);
    spec.grid_z = parse_positive_int(dims.substr(x2 + 1),
                                     "spatial grid dimension", text);
    return spec;
  }
  util::fail("unknown decomposition '" + text +
                 "' (expected atom, force, task[:pme=N], or "
                 "spatial[:grid=AxBxC])",
             __FILE__, __LINE__);
}

int resolved_pme_ranks(const DecompSpec& spec, int nprocs) {
  REPRO_REQUIRE(nprocs >= 2,
                "task decoupling needs at least two processes to split");
  if (spec.pme_ranks > 0) {
    REPRO_REQUIRE(spec.pme_ranks < nprocs,
                  "task decomposition must leave at least one classic rank");
    return spec.pme_ranks;
  }
  return std::max(1, nprocs / 4);
}

}  // namespace repro::charmm
