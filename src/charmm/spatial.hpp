// Spatial-domain layout for DecompKind::kSpatial: the 3-D cell grid, the
// cell→rank assignment, and the frozen halo epoch.
//
// The layout is pure geometry — no communication — so the decomposition
// strategy (charmm/decomposition.cpp) and the analytic overhead predictor
// (core/model.cpp) share it: both derive the exact same per-step halo
// schedule from the same positions, which is what lets the predictor's
// message/byte counts be pinned against the simulator's channel counters.
//
// Invariants the correctness of the halo schedule rests on:
//   - every cell edge is at least cutoff + skin, so two atoms within the
//     pair-list range always sit in the same or 26-adjacent cells (under
//     the periodic wrap), and a bonded term's partners always sit within
//     one cell of its first atom;
//   - cell→rank assignment is deterministic, so every rank derives the
//     identical map with no communication.
#pragma once

#include <vector>

#include "charmm/decomp_spec.hpp"
#include "md/box.hpp"
#include "pme/pme.hpp"
#include "util/vec3.hpp"

namespace repro::charmm {

struct SpatialLayout {
  int ncx = 1, ncy = 1, ncz = 1;
  int nprocs = 1;
  md::Box box;

  std::vector<int> cell_rank;                    // cell id -> owning rank
  std::vector<std::vector<int>> rank_cells;      // rank -> owned cells
  // rank -> sorted adjacent ranks (some owned cells are 26-neighbors).
  // Ranks owning no cells (p > ncells) have no neighbors; they idle
  // through the classic routine but still join every collective.
  std::vector<std::vector<int>> rank_neighbors;
  // cell -> sorted ranks (other than the owner) owning a 26-adjacent
  // cell: the ranks that need this cell's atoms as ghosts.
  std::vector<std::vector<int>> cell_border_ranks;

  int ncells() const { return ncx * ncy * ncz; }
  int cell_of(const util::Vec3& r) const;
};

// Builds the grid (spec override or floor(L/range) per dimension, range =
// cutoff + skin) and assigns cells to ranks with a minimum-enlargement
// heuristic: ranks are seeded along the Morton curve, then each remaining
// cell goes to the under-loaded rank whose cell-space bounding box grows
// the least (ties: smallest resulting box, then lightest rank, then
// lowest rank) — the choose_next_node selection of R-tree packing, which
// keeps domains compact and halo surfaces small.
//
// When `pos` is given, a rank's load is the atom population of its cells
// rather than the cell count: the paper's system is a solute blob in a
// mostly empty box, and balancing raw cell counts leaves one rank with
// several times the mean atom count (the pair work grows as density
// squared, so the imbalance on compute is worse still). The assignment
// stays deterministic for a given position set, and the decomposition
// freezes it for the whole run — atoms migrating between cells change
// ownership, never the cell->rank map.
//
// Throws util::Error when an explicit grid has cells thinner than
// `range`.
SpatialLayout make_spatial_layout(const DecompSpec& spec, const md::Box& box,
                                  double range, int nprocs,
                                  const std::vector<util::Vec3>* pos = nullptr);

// One halo epoch, frozen between neighbor-list rebuilds: who owns which
// atom and which atoms each rank ships to each of its neighbors every
// step. Computable from a full position set (the replicated step-0 state,
// or the predictor's view of the built system).
struct SpatialEpoch {
  std::vector<int> owner;                // atom -> rank
  std::vector<std::vector<int>> owned;   // rank -> sorted atom ids
  // send[r][k]: sorted ids of r's atoms in cells bordering
  // rank_neighbors[r][k] — the position halo r sends (and the force halo
  // r receives back) each step of the epoch.
  std::vector<std::vector<std::vector<int>>> send;
};

SpatialEpoch make_global_epoch(const SpatialLayout& layout,
                               const std::vector<util::Vec3>& pos);

// The migratable work-unit grid for ldb != off: the same cell grid, but
// cells are packed into `nunits` compact blocks (the identical Morton
// minimum-enlargement heuristic that packs cells onto ranks) so units ≫
// ranks can be remapped at rebuilds without re-cutting geometry. The
// cell→unit map is frozen for the run — only unit→rank migrates.
//
// Packing (and the cold-start unit→rank split) is weighted by estimated
// pair cost, not raw atom count: w_c = n_c² + ½·n_c·Σ_{c'∈26(c)} n_c' —
// the per-cell share of the O(n²) direct-space work the PR-4 cost model
// charges, which is what actually determines a rank's busy time. Raw
// population leaves the dense solute cells 1.3–3.2x hot.
struct UnitGrid {
  int nunits = 0;
  std::vector<int> cell_unit;                // cell id -> unit id
  std::vector<std::vector<int>> unit_cells;  // unit -> member cells
  std::vector<long> unit_weight;             // cold-start pair-cost weight
};

UnitGrid make_unit_grid(const SpatialLayout& layout, int nunits,
                        const std::vector<util::Vec3>& pos);

// Deterministic cold-start unit→rank map: units walked in Morton order
// of their first cell, split into `nprocs` contiguous runs with
// near-equal pair-cost weight (every rank gets at least one unit).
std::vector<int> initial_unit_map(const UnitGrid& grid, int nprocs);

// Re-derives a full layout (cell→rank, rank_cells, neighbor/border
// adjacency) from a unit→rank map over `base`'s cell grid. This is what
// the rebalancer adopts at a rebuild: the geometry is base's, only the
// ownership moved.
SpatialLayout layout_from_units(const SpatialLayout& base,
                                const UnitGrid& grid,
                                const std::vector<int>& unit_rank);

// Per-rank PME grid regions for the pencil decomposition: the wrapped box
// of charge-grid planes any atom a rank owns can touch during an epoch.
// Per dimension the owned cells' non-periodic bounding box is mapped to
// plane indices, then padded by the B-spline support on the low side
// (stencil points are k0 - j) and by the skin drift both sides (an atom
// stays owned until the rebuild migrates it, and the neighbor-list skin
// bounds how far it can drift in that window; +1 plane absorbs the
// floor/ceil rounding). A dimension whose padded extent reaches the full
// plane count collapses to the whole dimension. Cell-less ranks get an
// empty region. Regions depend only on the layout — never on positions —
// so the pencil message schedule is constant for the whole run and the
// predictor can pin it exactly.
std::vector<pme::GridRegion> make_pme_regions(const SpatialLayout& layout,
                                              const pme::PmeParams& params,
                                              double skin);

}  // namespace repro::charmm
