// Compute-cost model: converts kernel work counts into simulated CPU time.
//
// The *results* of every kernel are computed for real; only the virtual
// time charged per unit of work is modeled. Constants are calibrated so a
// 1-processor 10-step energy calculation of the 3552-atom system takes
// ~6.5 s with the PME part ~45% of it — the scale of the paper's Figure 3
// on a 1 GHz Pentium III (see DESIGN.md §6 and EXPERIMENTS.md).
#pragma once

#include <cstddef>

namespace repro::charmm {

struct CostModel {
  // Non-bonded pair interaction (LJ + electrostatics, incl. erfc when the
  // Ewald direct sum is active).
  double seconds_per_pair = 0.0;
  // One bonded term (bond/angle/dihedral/improper average).
  double seconds_per_bonded_term = 0.0;
  // Generic floating-point work (FFT butterflies, spreading stencils,
  // mesh convolution) — the PME hook passes flops directly.
  double seconds_per_flop = 0.0;
  // Neighbor-list construction, per pair examined.
  double seconds_per_list_pair = 0.0;
  // Integration, per atom per step.
  double seconds_per_integration_atom = 0.0;

  // A 1 GHz Pentium III running compiled Fortran kernels: ~120 Mflop/s
  // sustained on this kind of code.
  static CostModel pentium3_1ghz();
};

}  // namespace repro::charmm
