#include "charmm/spatial.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace repro::charmm {

namespace {

// Interleaves the low 10 bits of (x, y, z) into a Morton key. Grid
// dimensions are bounded by box_length / (cutoff + skin), far below 1024.
std::uint32_t morton3(int x, int y, int z) {
  auto spread = [](std::uint32_t v) {
    v &= 0x3ff;
    v = (v | (v << 16)) & 0x030000ff;
    v = (v | (v << 8)) & 0x0300f00f;
    v = (v | (v << 4)) & 0x030c30c3;
    v = (v | (v << 2)) & 0x09249249;
    return v;
  };
  return spread(static_cast<std::uint32_t>(x)) |
         (spread(static_cast<std::uint32_t>(y)) << 1) |
         (spread(static_cast<std::uint32_t>(z)) << 2);
}

struct CellCoord {
  int x, y, z;
};

// Axis-aligned bounding box in cell coordinates (non-periodic: the
// heuristic only needs a relative compactness measure, not exact wrapped
// extents).
struct CellBounds {
  int lo[3] = {std::numeric_limits<int>::max(),
               std::numeric_limits<int>::max(),
               std::numeric_limits<int>::max()};
  int hi[3] = {std::numeric_limits<int>::min(),
               std::numeric_limits<int>::min(),
               std::numeric_limits<int>::min()};

  long volume() const {
    if (hi[0] < lo[0]) return 0;
    long v = 1;
    for (int d = 0; d < 3; ++d) v *= hi[d] - lo[d] + 1;
    return v;
  }
  long volume_with(const CellCoord& c) const {
    long v = 1;
    const int coord[3] = {c.x, c.y, c.z};
    for (int d = 0; d < 3; ++d) {
      v *= std::max(hi[d], coord[d]) - std::min(lo[d], coord[d]) + 1;
    }
    return v;
  }
  void add(const CellCoord& c) {
    const int coord[3] = {c.x, c.y, c.z};
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], coord[d]);
      hi[d] = std::max(hi[d], coord[d]);
    }
  }
};

int auto_dim(double length, double range) {
  return std::max(1, static_cast<int>(length / range));
}

// Packs cells onto `ntargets` targets (ranks, or overdecomposed work
// units) with the Morton-seeded minimum-enlargement heuristic: targets
// are seeded along the curve, then each remaining cell goes to the
// under-loaded target whose cell-space bounding box grows the least
// (choose_next_node of R-tree packing). With ntargets >= ncells the
// assignment degenerates to one cell per target.
std::vector<int> pack_cells(const std::vector<CellCoord>& coords,
                            const std::vector<long>& weight, int ntargets) {
  const int ncells = static_cast<int>(coords.size());
  std::vector<int> assign(coords.size(), -1);
  if (ntargets >= ncells) {
    for (int c = 0; c < ncells; ++c) assign[static_cast<std::size_t>(c)] = c;
    return assign;
  }
  long total_weight = 0;
  for (long w : weight) total_weight += w;
  // A target stays admissible while its load is strictly below the even
  // share; the last cell it takes may overshoot by one cell's weight.
  const double target = static_cast<double>(total_weight) /
                        static_cast<double>(ntargets);
  std::vector<int> order(coords.size());
  for (int c = 0; c < ncells; ++c) order[static_cast<std::size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::uint32_t ka = morton3(coords[a].x, coords[a].y, coords[a].z);
    const std::uint32_t kb = morton3(coords[b].x, coords[b].y, coords[b].z);
    return ka != kb ? ka < kb : a < b;
  });
  std::vector<long> load(static_cast<std::size_t>(ntargets), 0);
  std::vector<CellBounds> bounds(static_cast<std::size_t>(ntargets));
  for (int r = 0; r < ntargets; ++r) {
    const int seed = order[static_cast<std::size_t>(
        (static_cast<long>(r) * ncells) / ntargets)];
    assign[static_cast<std::size_t>(seed)] = r;
    bounds[r].add(coords[static_cast<std::size_t>(seed)]);
    load[r] += weight[static_cast<std::size_t>(seed)];
  }
  for (int c : order) {
    if (assign[static_cast<std::size_t>(c)] >= 0) continue;
    const CellCoord& coord = coords[static_cast<std::size_t>(c)];
    auto pick = [&](bool only_underloaded) {
      int best = -1;
      long best_growth = 0;
      long best_volume = 0;
      for (int r = 0; r < ntargets; ++r) {
        if (only_underloaded &&
            static_cast<double>(load[r]) >= target) {
          continue;
        }
        const long vol = bounds[r].volume_with(coord);
        const long growth = vol - bounds[r].volume();
        if (best < 0 || growth < best_growth ||
            (growth == best_growth &&
             (vol < best_volume ||
              (vol == best_volume && load[r] < load[best])))) {
          best = r;
          best_growth = growth;
          best_volume = vol;
        }
      }
      return best;
    };
    int best = pick(true);
    // Every target can be at its share with zero-weight cells left over;
    // they go wherever the bounding boxes grow least.
    if (best < 0) best = pick(false);
    REPRO_REQUIRE(best >= 0, "spatial cell assignment ran out of capacity");
    assign[static_cast<std::size_t>(c)] = best;
    bounds[best].add(coord);
    load[best] += weight[static_cast<std::size_t>(c)];
  }
  return assign;
}

std::vector<CellCoord> cell_coords(const SpatialLayout& layout) {
  std::vector<CellCoord> coords(static_cast<std::size_t>(layout.ncells()));
  for (int x = 0; x < layout.ncx; ++x) {
    for (int y = 0; y < layout.ncy; ++y) {
      for (int z = 0; z < layout.ncz; ++z) {
        coords[static_cast<std::size_t>((x * layout.ncy + y) * layout.ncz +
                                        z)] = {x, y, z};
      }
    }
  }
  return coords;
}

// Fills rank_cells, cell_border_ranks, and rank_neighbors from a
// populated cell_rank, and asserts the adjacency is symmetric. Shared by
// the static layout and every rebalanced layout_from_units epoch.
void derive_adjacency(SpatialLayout& layout) {
  const int ncells = layout.ncells();
  const int nprocs = layout.nprocs;
  const int ncy = layout.ncy;
  const int ncz = layout.ncz;
  const std::vector<CellCoord> coords = cell_coords(layout);
  auto cell_id = [&](const CellCoord& c) {
    return (c.x * ncy + c.y) * ncz + c.z;
  };
  layout.rank_cells.assign(static_cast<std::size_t>(nprocs), {});
  for (int c = 0; c < ncells; ++c) {
    layout.rank_cells[static_cast<std::size_t>(layout.cell_rank[c])]
        .push_back(c);
  }

  // 26-neighborhood under the periodic wrap (deduplicated: a dimension
  // with fewer than three cells folds offsets onto each other).
  layout.cell_border_ranks.assign(static_cast<std::size_t>(ncells), {});
  std::vector<std::vector<int>> neighbor_sets(
      static_cast<std::size_t>(nprocs));
  for (int c = 0; c < ncells; ++c) {
    const CellCoord& coord = coords[static_cast<std::size_t>(c)];
    const int me = layout.cell_rank[c];
    std::vector<int>& border = layout.cell_border_ranks[c];
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const CellCoord n{(coord.x + dx + layout.ncx) % layout.ncx,
                            (coord.y + dy + ncy) % ncy,
                            (coord.z + dz + ncz) % ncz};
          const int r = layout.cell_rank[cell_id(n)];
          if (r != me) border.push_back(r);
        }
      }
    }
    std::sort(border.begin(), border.end());
    border.erase(std::unique(border.begin(), border.end()), border.end());
    for (int r : border) {
      neighbor_sets[static_cast<std::size_t>(me)].push_back(r);
    }
  }
  layout.rank_neighbors.assign(static_cast<std::size_t>(nprocs), {});
  for (int r = 0; r < nprocs; ++r) {
    std::vector<int>& nbrs = neighbor_sets[static_cast<std::size_t>(r)];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    layout.rank_neighbors[static_cast<std::size_t>(r)] = std::move(nbrs);
  }
  // Adjacency must be symmetric (s needs my border atoms exactly when I
  // need theirs) — guaranteed by construction, but the halo schedule
  // deadlocks if it ever breaks, so assert it cheaply here.
  for (int r = 0; r < nprocs; ++r) {
    for (int s : layout.rank_neighbors[static_cast<std::size_t>(r)]) {
      const auto& back = layout.rank_neighbors[static_cast<std::size_t>(s)];
      REPRO_REQUIRE(std::binary_search(back.begin(), back.end(), r),
                    "spatial rank adjacency is not symmetric");
    }
  }
}

}  // namespace

int SpatialLayout::cell_of(const util::Vec3& r) const {
  auto idx = [](double coord, double len, int n) {
    int c = static_cast<int>(
        std::floor(coord / len * static_cast<double>(n)));
    c %= n;
    if (c < 0) c += n;
    return c;
  };
  const int cx = idx(r.x, box.lx(), ncx);
  const int cy = idx(r.y, box.ly(), ncy);
  const int cz = idx(r.z, box.lz(), ncz);
  return (cx * ncy + cy) * ncz + cz;
}

SpatialLayout make_spatial_layout(const DecompSpec& spec, const md::Box& box,
                                  double range, int nprocs,
                                  const std::vector<util::Vec3>* pos) {
  REPRO_REQUIRE(spec.kind == DecompKind::kSpatial,
                "spatial layout requested for a non-spatial decomposition");
  REPRO_REQUIRE(nprocs >= 1 && range > 0.0, "bad spatial layout inputs");

  SpatialLayout layout;
  layout.box = box;
  layout.nprocs = nprocs;
  layout.ncx = spec.grid_x > 0 ? spec.grid_x : auto_dim(box.lx(), range);
  layout.ncy = spec.grid_y > 0 ? spec.grid_y : auto_dim(box.ly(), range);
  layout.ncz = spec.grid_z > 0 ? spec.grid_z : auto_dim(box.lz(), range);
  // A dimension with a single cell never splits a pair, so only multi-cell
  // dimensions must keep cells at least `range` wide (otherwise a pair
  // within range could span two non-adjacent cells and its interaction
  // would silently be dropped).
  auto check_dim = [&](int n, double length, const char* name) {
    REPRO_REQUIRE(n == 1 || length / n >= range,
                  std::string("spatial grid too fine in ") + name +
                      ": cells must be at least cutoff + skin wide");
  };
  check_dim(layout.ncx, box.lx(), "x");
  check_dim(layout.ncy, box.ly(), "y");
  check_dim(layout.ncz, box.lz(), "z");

  const int ncells = layout.ncells();
  const std::vector<CellCoord> coords = cell_coords(layout);
  if (nprocs >= ncells) {
    // One cell per rank; surplus ranks own nothing and idle through the
    // classic routine (they still join every comm-wide collective).
    layout.cell_rank.resize(static_cast<std::size_t>(ncells));
    for (int c = 0; c < ncells; ++c) layout.cell_rank[c] = c;
  } else {
    // Load is the cells' atom population when positions are available
    // (the solute blob leaves most of the box empty, so cell counts are
    // a poor proxy for work), one per cell otherwise.
    std::vector<long> weight(static_cast<std::size_t>(ncells), 1);
    if (pos != nullptr) {
      weight.assign(static_cast<std::size_t>(ncells), 0);
      for (const util::Vec3& r : *pos) {
        ++weight[static_cast<std::size_t>(layout.cell_of(r))];
      }
    }
    layout.cell_rank = pack_cells(coords, weight, nprocs);
  }
  derive_adjacency(layout);
  return layout;
}

UnitGrid make_unit_grid(const SpatialLayout& layout, int nunits,
                        const std::vector<util::Vec3>& pos) {
  const int ncells = layout.ncells();
  REPRO_REQUIRE(nunits >= 1 && nunits <= ncells,
                "work-unit count must be between 1 and the cell count");
  UnitGrid grid;
  grid.nunits = nunits;
  const std::vector<CellCoord> coords = cell_coords(layout);

  // Per-cell pair-cost weight: the self term n² plus half the cross term
  // against each 26-neighbor (each cross pair is counted once from each
  // side, so halving keeps the total proportional to the pair count).
  // Computed from the cold-start positions — the same information the
  // population-weighted rank packer uses, just squared the way the
  // direct-space work actually scales.
  std::vector<long> pop(static_cast<std::size_t>(ncells), 0);
  for (const util::Vec3& r : pos) {
    ++pop[static_cast<std::size_t>(layout.cell_of(r))];
  }
  std::vector<long> weight(static_cast<std::size_t>(ncells), 0);
  for (int c = 0; c < ncells; ++c) {
    const CellCoord& coord = coords[static_cast<std::size_t>(c)];
    long cross = 0;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const int nx = (coord.x + dx + layout.ncx) % layout.ncx;
          const int ny = (coord.y + dy + layout.ncy) % layout.ncy;
          const int nz = (coord.z + dz + layout.ncz) % layout.ncz;
          cross += pop[static_cast<std::size_t>(
              (nx * layout.ncy + ny) * layout.ncz + nz)];
        }
      }
    }
    const long n = pop[static_cast<std::size_t>(c)];
    weight[static_cast<std::size_t>(c)] = n * n + (n * cross) / 2;
  }

  grid.cell_unit = pack_cells(coords, weight, nunits);
  grid.unit_cells.assign(static_cast<std::size_t>(nunits), {});
  grid.unit_weight.assign(static_cast<std::size_t>(nunits), 0);
  for (int c = 0; c < ncells; ++c) {
    const int u = grid.cell_unit[static_cast<std::size_t>(c)];
    grid.unit_cells[static_cast<std::size_t>(u)].push_back(c);
    grid.unit_weight[static_cast<std::size_t>(u)] +=
        weight[static_cast<std::size_t>(c)];
  }
  return grid;
}

std::vector<int> initial_unit_map(const UnitGrid& grid, int nprocs) {
  REPRO_REQUIRE(nprocs >= 1 && grid.nunits >= nprocs,
                "cold-start unit map needs at least one unit per rank");
  long total = 0;
  for (long w : grid.unit_weight) total += w;
  const double target =
      static_cast<double>(total) / static_cast<double>(nprocs);
  // Contiguous prefix split in unit-id order (unit ids are already
  // Morton-compact blocks from the packer): each rank takes units until
  // it reaches the even share, leaving enough units for the ranks after
  // it. Deterministic, and every rank ends up non-empty.
  std::vector<int> unit_rank(static_cast<std::size_t>(grid.nunits), 0);
  int rank = 0;
  int count = 0;  // units on the current rank
  long load = 0;
  for (int u = 0; u < grid.nunits; ++u) {
    // Advance once the rank holds its share — or when the remaining
    // units are exactly one-per-remaining-rank and the current rank
    // already has one (the forced tail).
    const bool forced = grid.nunits - u <= nprocs - rank - 1;
    if (rank < nprocs - 1 && count > 0 &&
        ((load > 0 && static_cast<double>(load) >= target) || forced)) {
      ++rank;
      count = 0;
      load = 0;
    }
    unit_rank[static_cast<std::size_t>(u)] = rank;
    ++count;
    load += grid.unit_weight[static_cast<std::size_t>(u)];
  }
  return unit_rank;
}

SpatialLayout layout_from_units(const SpatialLayout& base,
                                const UnitGrid& grid,
                                const std::vector<int>& unit_rank) {
  REPRO_REQUIRE(static_cast<int>(unit_rank.size()) == grid.nunits,
                "unit→rank map size mismatch");
  SpatialLayout layout;
  layout.ncx = base.ncx;
  layout.ncy = base.ncy;
  layout.ncz = base.ncz;
  layout.nprocs = base.nprocs;
  layout.box = base.box;
  layout.cell_rank.resize(static_cast<std::size_t>(base.ncells()));
  for (int c = 0; c < base.ncells(); ++c) {
    const int r =
        unit_rank[static_cast<std::size_t>(grid.cell_unit[c])];
    REPRO_REQUIRE(r >= 0 && r < base.nprocs, "unit mapped to a bad rank");
    layout.cell_rank[static_cast<std::size_t>(c)] = r;
  }
  derive_adjacency(layout);
  return layout;
}

SpatialEpoch make_global_epoch(const SpatialLayout& layout,
                               const std::vector<util::Vec3>& pos) {
  SpatialEpoch epoch;
  const std::size_t n = pos.size();
  const std::size_t p = static_cast<std::size_t>(layout.nprocs);
  epoch.owner.resize(n);
  epoch.owned.assign(p, {});
  epoch.send.assign(p, {});
  for (std::size_t r = 0; r < p; ++r) {
    epoch.send[r].assign(layout.rank_neighbors[r].size(), {});
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int c = layout.cell_of(pos[i]);
    const int r = layout.cell_rank[static_cast<std::size_t>(c)];
    epoch.owner[i] = r;
    epoch.owned[static_cast<std::size_t>(r)].push_back(static_cast<int>(i));
    const auto& nbrs = layout.rank_neighbors[static_cast<std::size_t>(r)];
    for (int s : layout.cell_border_ranks[static_cast<std::size_t>(c)]) {
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), s);
      epoch.send[static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(it - nbrs.begin())]
                    .push_back(static_cast<int>(i));
    }
  }
  return epoch;
}

std::vector<pme::GridRegion> make_pme_regions(const SpatialLayout& layout,
                                              const pme::PmeParams& params,
                                              double skin) {
  const long n[3] = {static_cast<long>(params.nx),
                     static_cast<long>(params.ny),
                     static_cast<long>(params.nz)};
  const long nc[3] = {layout.ncx, layout.ncy, layout.ncz};
  const double len[3] = {layout.box.lx(), layout.box.ly(), layout.box.lz()};
  std::vector<pme::GridRegion> regions(layout.rank_cells.size());
  for (std::size_t r = 0; r < layout.rank_cells.size(); ++r) {
    const auto& cells = layout.rank_cells[r];
    if (cells.empty()) continue;  // idle rank: empty region
    int lo[3] = {layout.ncx, layout.ncy, layout.ncz};
    int hi[3] = {-1, -1, -1};
    for (int c : cells) {
      const int coord[3] = {c / (layout.ncy * layout.ncz),
                            (c / layout.ncz) % layout.ncy, c % layout.ncz};
      for (int d = 0; d < 3; ++d) {
        lo[d] = std::min(lo[d], coord[d]);
        hi[d] = std::max(hi[d], coord[d]);
      }
    }
    std::size_t start[3];
    std::size_t count[3];
    for (int d = 0; d < 3; ++d) {
      const long pad =
          static_cast<long>(
              std::ceil(skin * static_cast<double>(n[d]) / len[d])) +
          1;
      // Lowest plane an atom at the cells' lower face can touch: its
      // k0 = floor(lo * n / nc), minus the spline support below it.
      const long lo_plane =
          lo[d] * n[d] / nc[d] - (params.order - 1) - pad;
      // Highest plane: k0 of an atom at the upper face, rounded up.
      const long hi_plane =
          ((hi[d] + 1) * n[d] + nc[d] - 1) / nc[d] - 1 + pad;
      const long c = hi_plane - lo_plane + 1;
      if (c >= n[d]) {
        start[d] = 0;
        count[d] = static_cast<std::size_t>(n[d]);
      } else {
        start[d] = static_cast<std::size_t>(((lo_plane % n[d]) + n[d]) %
                                            n[d]);
        count[d] = static_cast<std::size_t>(c);
      }
    }
    regions[r] = pme::GridRegion{start[0], count[0], start[1],
                                 count[1],  start[2], count[2]};
  }
  return regions;
}

}  // namespace repro::charmm
