// Decomposition selection: *which* parallelism, as a swept factor.
//
// The paper characterizes one parallelization — CHARMM's replicated-data
// atom decomposition — on many platforms. DecompSpec makes the
// decomposition itself a factor next to network/middleware/CPUs, so the
// title question ("is there any easy parallelism in CHARMM?") can be asked
// of alternative strategies under identical cluster models. The spec is a
// plain value (parsed from `--decomp=SPEC`, carried in CharmmConfig);
// the strategies themselves live in charmm/decomposition.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace repro::charmm {

enum class DecompKind {
  // Replicated data, atom decomposition: every rank holds all positions,
  // computes an interleaved shard, allreduces the full force array. The
  // paper's CHARMM parallelization and the default.
  kAtomReplicated,
  // Force decomposition (Plimpton-style): each rank owns a block of the
  // pair-interaction matrix; the reduction shrinks from all-atoms to a
  // fold (reduce-scatter of per-block partials) + expand (allgather of
  // owned totals).
  kForce,
  // Task decoupling (the paper's §2.3 question taken to its end): a
  // configurable subset of ranks runs only PME while the rest run only
  // the classic routine, overlapping the two components that otherwise
  // serialize through the coherency barriers.
  kTaskPme,
  // Spatial domain decomposition (the era's real answer, Beazley &
  // Lomdahl's multi-cell message-passing MD): the box is cut into a 3-D
  // grid of cells at least cutoff+skin wide, cells are packed onto ranks
  // by a minimum-enlargement heuristic, and each step exchanges only the
  // halo (ghost positions in, ghost force partials out) with the 26-cell
  // neighborhood instead of allreducing the full force array. Atoms
  // migrate to their new owner on neighbor-list rebuilds.
  kSpatial,
};

// How the spatial decomposition runs PME's reciprocal sum.
enum class PmeMode {
  // Replicated slab FFT fed by an all-to-all position gather and drained
  // by a full-array reciprocal-force allreduce — the PR 7 baseline whose
  // p^2 traffic is the paper's PME wall.
  kSlab,
  // 2-D pencil decomposition of the charge grid over a Py x Pz process
  // grid: charges are spread only onto locally-owned real-space planes,
  // B-spline ghost planes are exchanged with the pencil owners, and the
  // 3-D FFT runs as local 1-D lines with grouped pairwise X<->Y and
  // Y<->Z transposes. No position gather, no force allreduce.
  kPencil,
};

// Measurement-driven load balancing of the spatial decomposition's
// migratable work units (CHARM++-style overdecomposition: cell blocks
// ≫ ranks, remapped at neighbor-list rebuilds from measured per-unit
// phase costs).
enum class LdbPolicy {
  // One static unit per rank, exactly the pre-refactor schedule.
  kOff,
  // Rebuild the unit→rank map from scratch: units sorted by measured
  // cost, each assigned to the rank with the smallest speed-scaled load.
  kGreedy,
  // Start from the current map and move units off the bottleneck rank
  // while that lowers the predicted makespan — fewer migrations, and a
  // fixed point once the load stops drifting.
  kRefine,
};

struct DecompSpec {
  DecompKind kind = DecompKind::kAtomReplicated;
  // kTaskPme only: ranks dedicated to PME (0 = auto, max(1, p/4)).
  int pme_ranks = 0;
  // kSpatial only: explicit cell grid (0 = auto, floor(L / (cutoff +
  // skin)) per dimension). Either all three are set or none.
  int grid_x = 0;
  int grid_y = 0;
  int grid_z = 0;
  // kSpatial only: slab (replicated) or pencil (distributed) PME.
  PmeMode pme_mode = PmeMode::kSlab;
  // kPencil only: explicit Py x Pz pencil process grid (0 = auto, the
  // most-square factorization of nprocs). Either both are set or none.
  int pencil_y = 0;
  int pencil_z = 0;
  // kSpatial only: work-unit load balancing ("ldb=greedy|refine|off",
  // optionally ",units=K"). Off keeps the static one-unit-per-rank
  // schedule byte-identical to the pre-refactor code.
  LdbPolicy ldb = LdbPolicy::kOff;
  // Number of migratable work units when ldb != off (0 = auto,
  // min(4 * nprocs, ncells)). Must satisfy nprocs <= K <= ncells.
  int units = 0;

  bool operator==(const DecompSpec&) const = default;
};

const char* to_string(DecompKind kind);
const char* to_string(LdbPolicy policy);
// "atom" | "force" | "task" | "task:pme=N" | "spatial" |
// "spatial:grid=AxBxC" | "spatial[:grid=AxBxC]:pme=pencil[:grid=PyxPz]"
// with an optional trailing ":ldb=greedy|refine[,units=K]" — round-trips
// parse_decomp_spec.
std::string to_string(const DecompSpec& spec);

// Parses "atom", "force", "task", "task:pme=N" (N >= 1), "spatial", or
// "spatial" followed by colon-separated options: "grid=AxBxC" (A, B, C
// >= 1; the cell grid) and "pme=pencil" optionally followed by its own
// "grid=PyxPz" (the pencil process grid; must come after "pme=pencil").
// Throws util::Error on anything else — including non-numeric or
// out-of-range values, which the former atoi-based parser silently
// folded to 0.
DecompSpec parse_decomp_spec(const std::string& text);

// Number of PME-dedicated ranks a task-decoupled run on `nprocs` uses:
// the explicit pme_ranks if set (must leave at least one classic rank),
// else max(1, nprocs / 4). Meaningful only for nprocs >= 2.
int resolved_pme_ranks(const DecompSpec& spec, int nprocs);

// The Py x Pz pencil process grid a pencil-PME run on `nprocs` uses: the
// explicit pencil_y/pencil_z if set (py * pz must not exceed nprocs),
// else the most-square factorization of nprocs (largest divisor d with
// d <= sqrt(nprocs), as (d, nprocs / d)). Either way each pencil
// dimension must fit in the FFT plane counts `ny`/`nz` so every pencil
// rank owns at least one plane. Meaningful only for nprocs >= 2.
std::pair<int, int> resolved_pencil_grid(const DecompSpec& spec, int nprocs,
                                         std::size_t ny, std::size_t nz);

// Number of migratable work units a load-balanced spatial run uses: the
// explicit units if set (must satisfy nprocs <= units <= ncells so every
// rank can hold a unit and every unit holds a cell), else
// min(4 * nprocs, ncells). Meaningful only when ldb != off; requires
// ncells >= nprocs (a grid too coarse to overdecompose fails loudly).
int resolved_units(const DecompSpec& spec, int nprocs, int ncells);

}  // namespace repro::charmm
