// Decomposition selection: *which* parallelism, as a swept factor.
//
// The paper characterizes one parallelization — CHARMM's replicated-data
// atom decomposition — on many platforms. DecompSpec makes the
// decomposition itself a factor next to network/middleware/CPUs, so the
// title question ("is there any easy parallelism in CHARMM?") can be asked
// of alternative strategies under identical cluster models. The spec is a
// plain value (parsed from `--decomp=SPEC`, carried in CharmmConfig);
// the strategies themselves live in charmm/decomposition.hpp.
#pragma once

#include <string>

namespace repro::charmm {

enum class DecompKind {
  // Replicated data, atom decomposition: every rank holds all positions,
  // computes an interleaved shard, allreduces the full force array. The
  // paper's CHARMM parallelization and the default.
  kAtomReplicated,
  // Force decomposition (Plimpton-style): each rank owns a block of the
  // pair-interaction matrix; the reduction shrinks from all-atoms to a
  // fold (reduce-scatter of per-block partials) + expand (allgather of
  // owned totals).
  kForce,
  // Task decoupling (the paper's §2.3 question taken to its end): a
  // configurable subset of ranks runs only PME while the rest run only
  // the classic routine, overlapping the two components that otherwise
  // serialize through the coherency barriers.
  kTaskPme,
  // Spatial domain decomposition (the era's real answer, Beazley &
  // Lomdahl's multi-cell message-passing MD): the box is cut into a 3-D
  // grid of cells at least cutoff+skin wide, cells are packed onto ranks
  // by a minimum-enlargement heuristic, and each step exchanges only the
  // halo (ghost positions in, ghost force partials out) with the 26-cell
  // neighborhood instead of allreducing the full force array. Atoms
  // migrate to their new owner on neighbor-list rebuilds.
  kSpatial,
};

struct DecompSpec {
  DecompKind kind = DecompKind::kAtomReplicated;
  // kTaskPme only: ranks dedicated to PME (0 = auto, max(1, p/4)).
  int pme_ranks = 0;
  // kSpatial only: explicit cell grid (0 = auto, floor(L / (cutoff +
  // skin)) per dimension). Either all three are set or none.
  int grid_x = 0;
  int grid_y = 0;
  int grid_z = 0;

  bool operator==(const DecompSpec&) const = default;
};

const char* to_string(DecompKind kind);
// "atom" | "force" | "task" | "task:pme=N" | "spatial" |
// "spatial:grid=AxBxC" — round-trips parse_decomp_spec.
std::string to_string(const DecompSpec& spec);

// Parses "atom", "force", "task", "task:pme=N" (N >= 1), "spatial" or
// "spatial:grid=AxBxC" (A, B, C >= 1). Throws util::Error on anything
// else — including non-numeric or out-of-range values, which the former
// atoi-based parser silently folded to 0.
DecompSpec parse_decomp_spec(const std::string& text);

// Number of PME-dedicated ranks a task-decoupled run on `nprocs` uses:
// the explicit pme_ranks if set (must leave at least one classic rank),
// else max(1, nprocs / 4). Meaningful only for nprocs >= 2.
int resolved_pme_ranks(const DecompSpec& spec, int nprocs);

}  // namespace repro::charmm
