// The CHARMM-style parallel MD energy calculation (the workload of the
// paper), assembled per Figure 2:
//
//   classic routine : bonded + short-range non-bonded computation (atom
//                     decomposition), ending in the all-to-all *collective*
//                     force/energy reduction;
//   PME routine     : slab charge spreading, forward 3-D FFT (all-to-all
//                     *personalized* transpose), reciprocal convolution,
//                     backward FFT (second transpose), force interpolation.
//
// Replicated data: every rank holds all positions, computes a shard of the
// interactions, and integrates all atoms after the force reduction — the
// classic CHARMM parallelization this class of clusters ran.
#pragma once

#include <cstdint>
#include <vector>

#include "charmm/cost_model.hpp"
#include "charmm/decomp_spec.hpp"
#include "md/energy.hpp"
#include "md/nonbonded.hpp"
#include "middleware/middleware.hpp"
#include "pme/pme.hpp"
#include "sysbuild/builder.hpp"

namespace repro::charmm {

struct CharmmConfig {
  bool use_pme = true;
  int nsteps = 10;          // the paper's reduced-step measurement runs
  double dt_ps = 0.0005;
  double temperature_k = 300.0;
  double cutoff = 10.0;     // Å, both vdW and real-space electrostatics
  double switch_on = 8.0;
  double skin = 2.0;
  int list_rebuild_interval = 5;  // CHARMM INBFRQ-style fixed interval
  pme::PmeParams pme{80, 36, 48, 4, 0.34};
  std::uint64_t seed = 2002;
  CostModel cost = CostModel::pentium3_1ghz();

  // Which kernel variant runs the physics hot paths (pair loop, B-spline
  // spread/interpolation, FFT combine); see util/kernel.hpp. Both variants
  // report identical work counters, so simulated timings are unaffected —
  // the factor only changes the host's wall-clock.
  util::KernelKind kernel = util::default_kernel_kind();

  // CHARMM synchronizes before its global operations ("coherency
  // maintenance"). Turning this off lets skew flow into the data
  // operations instead — the decoupling question of the paper's §2.3
  // (their reference [21]); see bench/extension_decoupling.
  bool coherency_barriers = true;

  // Which parallelization runs the step program (work partitioning + the
  // per-step communication schedule); see charmm/decomposition.hpp. The
  // default reproduces the paper's replicated-data atom decomposition.
  DecompSpec decomp;
};

struct RankRunResult {
  md::EnergyTerms last_energy;   // after the global sum: total system terms
  double position_checksum = 0.0;  // sum of coordinates, cross-rank check
  std::size_t pairs_in_list = 0;
  // Spatial decomposition only: atoms that changed owner at a rebuild,
  // summed over ranks and the whole run (0 for the replicated strategies,
  // whose atoms have no owner to change).
  std::size_t atoms_migrated = 0;
  // Spatial + ldb only: work units the rebalancer moved over the run, and
  // an FNV-1a hash over every adopted unit→rank map (the balancer's full
  // trajectory). Both are computed from replicated data, so every rank
  // reports the same values — run_experiment asserts it.
  std::size_t units_moved = 0;
  std::uint64_t unit_map_hash = 0;
};

// Runs the energy-calculation workload on one simulated rank under the
// decomposition selected by config.decomp. `sys` is the shared, read-only
// system; the middleware carries all communication. The recorder (inside
// comm) must be fresh.
RankRunResult run_charmm_rank(const sysbuild::BuiltSystem& sys,
                              const CharmmConfig& config,
                              middleware::Middleware& mw);

// Rejects configurations the workload cannot meaningfully run (throws
// util::Error): non-positive nsteps/dt/skin, switch_on >= cutoff,
// degenerate PME grid or spline order, task decoupling without PME.
void validate_config(const CharmmConfig& config);

}  // namespace repro::charmm
