#include "charmm/app.hpp"

#include <array>

#include "md/bonded.hpp"
#include "md/integrator.hpp"
#include "md/neighbor.hpp"
#include "util/units.hpp"

namespace repro::charmm {

namespace {

using util::Vec3;

// Flattens Vec3 forces for the global reduction and back.
void flatten(const std::vector<Vec3>& v, std::vector<double>& out) {
  out.resize(3 * v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[3 * i] = v[i].x;
    out[3 * i + 1] = v[i].y;
    out[3 * i + 2] = v[i].z;
  }
}

void unflatten(const std::vector<double>& in, std::vector<Vec3>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = Vec3{in[3 * i], in[3 * i + 1], in[3 * i + 2]};
  }
}

}  // namespace

RankRunResult run_charmm_rank(const sysbuild::BuiltSystem& sys,
                              const CharmmConfig& config,
                              middleware::Middleware& mw) {
  mpi::Comm& comm = mw.comm();
  perf::RankRecorder& rec = comm.recorder();
  const int p = comm.size();
  const int shard = comm.rank();
  const CostModel& cost = config.cost;
  const md::Topology& topo = sys.topo;
  const md::Box& box = sys.box;
  const auto natoms = static_cast<std::size_t>(topo.natoms());

  md::NonbondedOptions nb;
  nb.cutoff = config.cutoff;
  nb.switch_on = config.switch_on;
  nb.elec = config.use_pme ? md::NonbondedOptions::Elec::kEwaldDirect
                           : md::NonbondedOptions::Elec::kShift;
  nb.beta = config.pme.beta;

  // Replicated state: identical on every rank (the global sum broadcasts
  // bitwise-identical forces, so trajectories never diverge across ranks).
  std::vector<Vec3> pos = sys.positions;
  std::vector<Vec3> vel;
  md::assign_velocities(topo, config.temperature_k, config.seed, vel);
  std::vector<Vec3> forces(natoms);
  std::vector<double> flat;
  md::NeighborList nbl(config.cutoff, config.skin);

  // PME machinery: compute cost flows through the middleware's component
  // recorder, so FFT/spreading time lands in whatever component is active.
  pme::ParallelPme ppme(config.pme, box, mw, [&](double flops) {
    comm.compute(flops * cost.seconds_per_flop);
  });

  RankRunResult result;
  for (int step = 0; step < config.nsteps; ++step) {
    // ------------------------------------------------ classic routine --
    rec.set_component(perf::Component::kClassic);
    // Coherency barrier at energy entry (CHARMM synchronizes its parallel
    // energy call).
    if (config.coherency_barriers) mw.synchronize();

    if (step % config.list_rebuild_interval == 0) {
      nbl.build(topo, box, pos);
      comm.compute(cost.seconds_per_list_pair *
                   static_cast<double>(nbl.npairs()) * 2.0);
    }
    result.pairs_in_list = nbl.npairs();

    std::fill(forces.begin(), forces.end(), Vec3{});
    md::EnergyTerms energy;

    const md::BondedWork bw =
        md::bonded_energy(topo, box, pos, forces, energy, shard, p);
    comm.compute(cost.seconds_per_bonded_term *
                 static_cast<double>(bw.total()));

    const md::NonbondedWork nw = md::nonbonded_energy(
        topo, box, pos, nbl, nb, forces, energy, shard, p);
    comm.compute(cost.seconds_per_pair *
                 static_cast<double>(nw.pairs_listed));

    if (config.use_pme) {
      // Real-space corrections stay in the classic (time-domain) part.
      energy.ewald_excl += pme::ewald_exclusion_correction(
          topo, box, pos, config.pme.beta, forces, shard, p);
      comm.compute(cost.seconds_per_bonded_term *
                   static_cast<double>(topo.excluded_pairs().size()) /
                   static_cast<double>(p));
      if (shard == 0) {
        energy.ewald_self += pme::ewald_self_energy(topo, config.pme.beta);
      }

      // --------------------------------------------------- PME routine --
      rec.set_component(perf::Component::kPme);
      // Coherency point before entering the frequency-domain phase.
      if (config.coherency_barriers) mw.synchronize();
      energy.ewald_recip += ppme.reciprocal(topo, pos, forces);
      rec.set_component(perf::Component::kClassic);
    }

    // The all-to-all collective that ends the classic energy calculation:
    // global force reduction plus the (small) energy reduction. CHARMM
    // synchronizes before combining, which is where load imbalance lands.
    if (config.coherency_barriers) mw.synchronize();
    flatten(forces, flat);
    mw.global_sum(flat.data(), flat.size());
    unflatten(flat, forces);
    std::array<double, md::EnergyTerms::kCount> earr = energy.to_array();
    mw.global_sum(earr.data(), earr.size());
    energy = md::EnergyTerms::from_array(earr);
    result.last_energy = energy;

    // ------------------------------------------------------ integration --
    // Not part of the measured energy calculation (the paper times the
    // energy routines); replicated on every rank.
    rec.set_component(perf::Component::kOther);
    comm.compute(cost.seconds_per_integration_atom *
                 static_cast<double>(natoms));
    const double kick = config.dt_ps * units::kForceToAccel;
    for (std::size_t i = 0; i < natoms; ++i) {
      vel[i] += forces[i] * (kick / topo.atom(static_cast<int>(i)).mass);
      pos[i] += vel[i] * config.dt_ps;
    }
    rec.end_step();
  }

  for (const auto& r : pos) {
    result.position_checksum += r.x + r.y + r.z;
  }
  return result;
}

}  // namespace repro::charmm
