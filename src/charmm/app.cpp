#include "charmm/app.hpp"

#include "charmm/decomposition.hpp"

namespace repro::charmm {

RankRunResult run_charmm_rank(const sysbuild::BuiltSystem& sys,
                              const CharmmConfig& config,
                              middleware::Middleware& mw) {
  // The step program (work partitioning + communication schedule) lives
  // behind the Decomposition interface; the default spec reproduces the
  // paper's replicated-data atom decomposition byte-for-byte.
  return make_decomposition(config.decomp)->run(sys, config, mw);
}

}  // namespace repro::charmm
