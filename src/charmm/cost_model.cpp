#include "charmm/cost_model.hpp"

namespace repro::charmm {

CostModel CostModel::pentium3_1ghz() {
  CostModel m;
  // ~85 flops per pair (distance, erfc/shift, LJ, force update) at
  // ~120 Mflop/s sustained, ~0.7 us/pair.
  m.seconds_per_pair = 0.60e-6;
  // Angles/dihedrals average ~60 flops plus trigonometry.
  m.seconds_per_bonded_term = 0.8e-6;
  m.seconds_per_flop = 8.3e-9;  // ~120 Mflop/s
  m.seconds_per_list_pair = 0.12e-6;
  m.seconds_per_integration_atom = 0.25e-6;
  return m;
}

}  // namespace repro::charmm
