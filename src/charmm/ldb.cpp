#include "charmm/ldb.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace repro::charmm {

UnitWork count_unit_work(int nunits, const md::Topology& topo,
                         const md::NeighborList& nbl,
                         const std::vector<int>& unit_of_row) {
  REPRO_REQUIRE(unit_of_row.size() ==
                    static_cast<std::size_t>(topo.natoms()),
                "unit_of_row must have one entry per atom");
  UnitWork work;
  work.pairs.assign(static_cast<std::size_t>(nunits), 0);
  work.bonded.assign(static_cast<std::size_t>(nunits), 0);
  work.excl.assign(static_cast<std::size_t>(nunits), 0);
  const std::vector<std::size_t>& offsets = nbl.offsets();
  for (std::size_t i = 0; i < unit_of_row.size(); ++i) {
    const int u = unit_of_row[i];
    if (u < 0) continue;
    work.pairs[static_cast<std::size_t>(u)] +=
        static_cast<long>(offsets[i + 1] - offsets[i]);
  }
  auto add_first_atom = [&](int i) {
    const int u = unit_of_row[static_cast<std::size_t>(i)];
    if (u >= 0) ++work.bonded[static_cast<std::size_t>(u)];
  };
  for (const md::Bond& b : topo.bonds()) add_first_atom(b.i);
  for (const md::Angle& a : topo.angles()) add_first_atom(a.i);
  for (const md::Dihedral& d : topo.dihedrals()) add_first_atom(d.i);
  for (const md::Improper& im : topo.impropers()) add_first_atom(im.i);
  for (const auto& [i, j] : topo.excluded_pairs()) {
    (void)j;
    const int u = unit_of_row[static_cast<std::size_t>(i)];
    if (u >= 0) ++work.excl[static_cast<std::size_t>(u)];
  }
  return work;
}

namespace {

std::vector<int> rebalance_greedy(const std::vector<double>& unit_cost,
                                  const std::vector<double>& rank_speed) {
  const int nunits = static_cast<int>(unit_cost.size());
  const int nprocs = static_cast<int>(rank_speed.size());
  std::vector<int> order(unit_cost.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return unit_cost[a] != unit_cost[b] ? unit_cost[a] > unit_cost[b]
                                        : a < b;
  });
  std::vector<int> unit_rank(unit_cost.size(), 0);
  std::vector<double> load(rank_speed.size(), 0.0);
  for (int u : order) {
    int best = 0;
    double best_finish =
        (load[0] + unit_cost[static_cast<std::size_t>(u)]) * rank_speed[0];
    for (int r = 1; r < nprocs; ++r) {
      const double finish =
          (load[static_cast<std::size_t>(r)] +
           unit_cost[static_cast<std::size_t>(u)]) *
          rank_speed[static_cast<std::size_t>(r)];
      if (finish < best_finish) {
        best = r;
        best_finish = finish;
      }
    }
    unit_rank[static_cast<std::size_t>(u)] = best;
    load[static_cast<std::size_t>(best)] +=
        unit_cost[static_cast<std::size_t>(u)];
  }
  (void)nunits;
  return unit_rank;
}

std::vector<int> rebalance_refine(const std::vector<double>& unit_cost,
                                  const std::vector<double>& rank_speed,
                                  const std::vector<int>& current) {
  const int nunits = static_cast<int>(unit_cost.size());
  const int nprocs = static_cast<int>(rank_speed.size());
  std::vector<int> unit_rank = current;
  std::vector<double> load(rank_speed.size(), 0.0);
  for (int u = 0; u < nunits; ++u) {
    load[static_cast<std::size_t>(unit_rank[u])] +=
        unit_cost[static_cast<std::size_t>(u)];
  }
  auto finish = [&](int r) {
    return load[static_cast<std::size_t>(r)] *
           rank_speed[static_cast<std::size_t>(r)];
  };
  // Each pass moves one unit off the bottleneck rank; the makespan
  // strictly decreases every pass, so nunits · nprocs bounds the loop
  // comfortably (each unit visits a rank at most once on the way down).
  for (int pass = 0; pass < nunits * nprocs; ++pass) {
    int bottleneck = 0;
    for (int r = 1; r < nprocs; ++r) {
      if (finish(r) > finish(bottleneck)) bottleneck = r;
    }
    const double old_makespan = finish(bottleneck);
    int best_unit = -1;
    int best_rank = -1;
    double best_peak = old_makespan;
    for (int u = 0; u < nunits; ++u) {
      if (unit_rank[u] != bottleneck) continue;
      const double c = unit_cost[static_cast<std::size_t>(u)];
      const double src_after =
          (load[static_cast<std::size_t>(bottleneck)] - c) *
          rank_speed[static_cast<std::size_t>(bottleneck)];
      for (int r = 0; r < nprocs; ++r) {
        if (r == bottleneck) continue;
        const double dst_after =
            (load[static_cast<std::size_t>(r)] + c) *
            rank_speed[static_cast<std::size_t>(r)];
        const double peak = std::max(src_after, dst_after);
        if (peak < best_peak) {
          best_peak = peak;
          best_unit = u;
          best_rank = r;
        }
      }
    }
    if (best_unit < 0) break;  // local optimum: no strictly improving move
    load[static_cast<std::size_t>(bottleneck)] -=
        unit_cost[static_cast<std::size_t>(best_unit)];
    load[static_cast<std::size_t>(best_rank)] +=
        unit_cost[static_cast<std::size_t>(best_unit)];
    unit_rank[static_cast<std::size_t>(best_unit)] = best_rank;
  }
  return unit_rank;
}

}  // namespace

std::vector<int> rebalance_units(LdbPolicy policy,
                                 const std::vector<double>& unit_cost,
                                 const std::vector<double>& rank_speed,
                                 const std::vector<int>& current) {
  REPRO_REQUIRE(current.size() == unit_cost.size(),
                "rebalance: unit map and cost vector size mismatch");
  REPRO_REQUIRE(!rank_speed.empty(), "rebalance: no ranks");
  switch (policy) {
    case LdbPolicy::kOff:
      return current;
    case LdbPolicy::kGreedy:
      return rebalance_greedy(unit_cost, rank_speed);
    case LdbPolicy::kRefine:
      return rebalance_refine(unit_cost, rank_speed, current);
  }
  REPRO_UNREACHABLE("bad ldb policy");
}

std::vector<std::vector<int>> replay_unit_maps(
    const SpatialLayout& base, const UnitGrid& grid,
    const md::Topology& topo, const md::NeighborList& nbl,
    const std::vector<util::Vec3>& pos, const CostModel& cost, bool use_pme,
    LdbPolicy policy, int nprocs, int nrebalances) {
  std::vector<int> unit_of_row(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    unit_of_row[i] = grid.cell_unit[static_cast<std::size_t>(
        base.cell_of(pos[i]))];
  }
  const UnitWork work = count_unit_work(grid.nunits, topo, nbl, unit_of_row);
  std::vector<double> unit_cost(static_cast<std::size_t>(grid.nunits));
  for (int u = 0; u < grid.nunits; ++u) {
    unit_cost[static_cast<std::size_t>(u)] = unit_cost_seconds(
        cost, work.pairs[static_cast<std::size_t>(u)],
        work.bonded[static_cast<std::size_t>(u)],
        work.excl[static_cast<std::size_t>(u)], use_pme);
  }
  const std::vector<double> speed(static_cast<std::size_t>(nprocs), 1.0);
  std::vector<std::vector<int>> maps;
  maps.push_back(initial_unit_map(grid, nprocs));
  for (int k = 0; k < nrebalances; ++k) {
    maps.push_back(rebalance_units(policy, unit_cost, speed, maps.back()));
  }
  return maps;
}

}  // namespace repro::charmm
