#include "charmm/simulation.hpp"

#include "md/bonded.hpp"
#include "util/units.hpp"

namespace repro::charmm {

md::MinimizeResult relax_system(sysbuild::BuiltSystem& sys, int max_steps) {
  SimulationConfig config;
  Simulation sim(sys, config);
  md::MinimizeOptions opts;
  opts.max_steps = max_steps;
  opts.force_tolerance = 25.0;
  const md::MinimizeResult res = sim.minimize(opts);
  sys.positions = sim.positions();
  return res;
}

Simulation::Simulation(const sysbuild::BuiltSystem& sys,
                       const SimulationConfig& config)
    : sys_(sys),
      config_(config),
      nbl_(config.cutoff, config.skin),
      pme_(config.pme, sys.box, config.kernel),
      integrator_(config.dt_ps),
      pos_(sys.positions),
      vel_(sys.positions.size()),
      forces_(sys.positions.size()) {
  validate_config(config);
  nb_.cutoff = config.cutoff;
  nb_.switch_on = config.switch_on;
  nb_.elec = config.use_pme ? md::NonbondedOptions::Elec::kEwaldDirect
                            : md::NonbondedOptions::Elec::kShift;
  nb_.beta = config.pme.beta;
  nb_.kernel = config.kernel;
  nb_.table = md::build_pair_table(sys.topo);
  if (config.rigid_waters) {
    shake_.emplace(md::Shake::rigid_waters(sys.topo));
  } else if (config.shake_hydrogens) {
    shake_.emplace(md::Shake::hydrogen_bonds(sys.topo));
  }
  switch (config.thermostat) {
    case SimulationConfig::Thermostat::kNone:
      break;
    case SimulationConfig::Thermostat::kBerendsen:
      berendsen_.emplace(config.thermostat_target_k,
                         config.berendsen_tau_ps);
      break;
    case SimulationConfig::Thermostat::kLangevin:
      langevin_.emplace(config.thermostat_target_k,
                        config.langevin_friction_per_ps,
                        config.thermostat_seed);
      break;
  }
}

void Simulation::ensure_list() {
  if (steps_since_rebuild_ < 0 ||
      steps_since_rebuild_ >= config_.list_rebuild_interval ||
      nbl_.needs_rebuild(sys_.box, pos_)) {
    nbl_.build(sys_.topo, sys_.box, pos_);
    steps_since_rebuild_ = 0;
  }
}

void Simulation::compute_forces() {
  ensure_list();
  std::fill(forces_.begin(), forces_.end(), util::Vec3{});
  energy_ = md::EnergyTerms{};
  md::bonded_energy(sys_.topo, sys_.box, pos_, forces_, energy_);
  md::nonbonded_energy(sys_.topo, sys_.box, pos_, nbl_, nb_, forces_,
                       energy_);
  if (config_.use_pme) {
    energy_.ewald_excl = pme::ewald_exclusion_correction(
        sys_.topo, sys_.box, pos_, config_.pme.beta, forces_);
    energy_.ewald_self = pme::ewald_self_energy(sys_.topo, config_.pme.beta);
    energy_.ewald_recip = pme_.reciprocal(sys_.topo, pos_, forces_);
  }
}

const md::EnergyTerms& Simulation::evaluate() {
  compute_forces();
  return energy_;
}

void Simulation::step(int nsteps) {
  compute_forces();
  std::vector<util::Vec3> ref;
  for (int s = 0; s < nsteps; ++s) {
    if (shake_) ref = pos_;
    integrator_.begin_step(sys_.topo, forces_, pos_, vel_);
    if (shake_) {
      shake_->apply_positions(sys_.topo, sys_.box, ref, pos_, &vel_,
                              config_.dt_ps);
    }
    ++steps_since_rebuild_;
    compute_forces();
    integrator_.end_step(sys_.topo, forces_, vel_);
    if (shake_) shake_->apply_velocities(sys_.topo, sys_.box, pos_, vel_);
    if (berendsen_) {
      berendsen_->apply(sys_.topo, config_.dt_ps, degrees_of_freedom(),
                        vel_);
    }
    if (langevin_) langevin_->apply(sys_.topo, config_.dt_ps, vel_);
  }
}

md::MinimizeResult Simulation::minimize(const md::MinimizeOptions& opts) {
  auto evaluate = [this](const std::vector<util::Vec3>& p,
                         std::vector<util::Vec3>& f) {
    pos_ = p;
    steps_since_rebuild_ = -1;  // positions jumped; force a rebuild
    compute_forces();
    f = forces_;
    return energy_.potential();
  };
  std::vector<util::Vec3> work = pos_;
  const md::MinimizeResult res = md::minimize(opts, evaluate, work);
  pos_ = work;
  steps_since_rebuild_ = -1;
  compute_forces();
  return res;
}

void Simulation::set_velocities_from_temperature(double temperature_k,
                                                 std::uint64_t seed) {
  md::assign_velocities(sys_.topo, temperature_k, seed, vel_);
}

double Simulation::kinetic_energy() const {
  return md::kinetic_energy(sys_.topo, vel_);
}

double Simulation::total_energy() const {
  return energy_.potential() + kinetic_energy();
}

int Simulation::degrees_of_freedom() const {
  int dof = 3 * sys_.topo.natoms();
  if (shake_) dof -= shake_->removed_dof();
  return dof;
}

double Simulation::current_temperature() const {
  return 2.0 * kinetic_energy() /
         (degrees_of_freedom() * units::kBoltzmann);
}

}  // namespace repro::charmm
