#include "middleware/middleware.hpp"

#include <cstring>

#include "util/error.hpp"

namespace repro::middleware {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kMpi:
      return "MPI";
    case Kind::kCmpi:
      return "CMPI";
  }
  return "?";
}

std::unique_ptr<Middleware> make_middleware(Kind kind, mpi::Comm& comm) {
  switch (kind) {
    case Kind::kMpi:
      return std::make_unique<MpiMiddleware>(comm);
    case Kind::kCmpi:
      return std::make_unique<CmpiMiddleware>(comm);
  }
  REPRO_UNREACHABLE("bad middleware kind");
}

// --- MPI ------------------------------------------------------------------

void MpiMiddleware::global_sum(double* data, std::size_t n) {
  comm_.allreduce_sum(data, n);
}

void MpiMiddleware::synchronize() { comm_.barrier(); }

void MpiMiddleware::transpose(const void* send,
                              const std::vector<std::size_t>& send_counts,
                              const std::vector<std::size_t>& send_displs,
                              void* recv,
                              const std::vector<std::size_t>& recv_counts,
                              const std::vector<std::size_t>& recv_displs) {
  comm_.alltoallv(send, send_counts, send_displs, recv, recv_counts,
                  recv_displs);
}

void MpiMiddleware::broadcast(void* data, std::size_t bytes, int root) {
  comm_.bcast(data, bytes, root);
}

// --- CMPI -----------------------------------------------------------------

void CmpiMiddleware::neighbor_sync() {
  const int p = size();
  if (p == 1) return;
  mpi::Comm::SyncScope sync(comm_);
  const int r = rank();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  const unsigned char token = 1;
  unsigned char in = 0;
  // "A single synchronization call is built upon repeated send and receive
  // calls transmitting a single byte with the neighbor-nodes and this
  // operation is repeated p-1 times" (§4.2). Each repetition is a ring
  // shift; p-1 shifts give barrier semantics transitively.
  for (int step = 1; step < p; ++step) {
    // Split non-blocking calls, as CMPI does for portability.
    mpi::Request rr = comm_.irecv(left, 9990 + step, &in, 1);
    mpi::Request sr =
        comm_.isend(right, 9990 + step, &token, 1, /*exchange=*/true);
    comm_.wait(rr);
    comm_.wait(sr);
  }
}

void CmpiMiddleware::synchronize() { neighbor_sync(); }

void CmpiMiddleware::global_sum(double* data, std::size_t n) {
  const int p = size();
  if (p == 1) return;
  // Portable ring "global combine": circulate every rank's original vector
  // around the ring with split send/receive calls, accumulating locally.
  // (p-1) full-vector hops per rank — far more traffic than a tree — and a
  // neighbor synchronization after every round ("coherency maintenance" in
  // the portable layer), which is exactly the pattern §4.2 blames for the
  // loss of scalability on per-packet-overhead stacks.
  const int r = rank();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  const std::size_t bytes = n * sizeof(double);
  std::vector<double> circulating(data, data + n);
  std::vector<double> incoming(n);
  for (int step = 1; step < p; ++step) {
    mpi::Request rr = comm_.irecv(left, 9900, incoming.data(), bytes);
    mpi::Request sr = comm_.isend(right, 9900, circulating.data(), bytes,
                                  /*exchange=*/true);
    comm_.wait(rr);
    comm_.wait(sr);
    for (std::size_t i = 0; i < n; ++i) data[i] += incoming[i];
    circulating.swap(incoming);
    neighbor_sync();
  }
  // The master's result is rebroadcast so every rank holds a bit-identical
  // vector (ring accumulation order differs per rank otherwise).
  broadcast(data, bytes, 0);
}

void CmpiMiddleware::transpose(const void* send,
                               const std::vector<std::size_t>& send_counts,
                               const std::vector<std::size_t>& send_displs,
                               void* recv,
                               const std::vector<std::size_t>& recv_counts,
                               const std::vector<std::size_t>& recv_displs) {
  const int p = size();
  const int r = rank();
  const auto* in = static_cast<const unsigned char*>(send);
  auto* out = static_cast<unsigned char*>(recv);
  std::memcpy(out + recv_displs[static_cast<std::size_t>(r)],
              in + send_displs[static_cast<std::size_t>(r)],
              send_counts[static_cast<std::size_t>(r)]);
  if (p == 1) return;
  // CMPI posts all split receives, then all sends, then waits — and brackets
  // the exchange with its neighbor synchronization.
  neighbor_sync();
  std::vector<mpi::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(2 * (p - 1)));
  for (int k = 1; k < p; ++k) {
    const auto src = static_cast<std::size_t>((r - k + p) % p);
    reqs.push_back(comm_.irecv(static_cast<int>(src), 9901,
                               out + recv_displs[src], recv_counts[src]));
  }
  for (int k = 1; k < p; ++k) {
    const auto dst = static_cast<std::size_t>((r + k) % p);
    reqs.push_back(comm_.isend(static_cast<int>(dst), 9901,
                               in + send_displs[dst], send_counts[dst],
                               /*exchange=*/true));
  }
  comm_.wait_all(reqs);
  neighbor_sync();
}

void CmpiMiddleware::broadcast(void* data, std::size_t bytes, int root) {
  const int p = size();
  if (p == 1) return;
  // Ring pipeline from the root, split calls, guarded by a neighbor sync.
  neighbor_sync();
  const int r = rank();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  if (r != root) {
    mpi::Request rr = comm_.irecv(left, 9902, data, bytes);
    comm_.wait(rr);
  }
  if (right != root) {
    mpi::Request sr = comm_.isend(right, 9902, data, bytes);
    comm_.wait(sr);
  }
}

}  // namespace repro::middleware
