// Communication middleware personalities (the paper's second factor).
//
// The MD application talks to a Middleware, never to the MPI layer
// directly, mirroring how CHARMM's energy code goes through its
// communication wrappers. Two implementations:
//
//  - MpiMiddleware: the "standard implementation [using] raw MPI calls" —
//    blocking point-to-point underneath MPI collectives, global
//    synchronization via MPI barriers.
//
//  - CmpiMiddleware: CHARMM MPI, the portable layer that "relies heavily on
//    nonblocking communication using split send/receive calls" and
//    implements synchronization "by repeated exchanges of empty messages
//    (or one byte) among nearest neighbor-processes", repeated p-1 times —
//    the style §4.2 shows to be disastrous on per-packet-overhead stacks.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"

namespace repro::middleware {

enum class Kind { kMpi, kCmpi };

const char* to_string(Kind kind);

class Middleware {
 public:
  explicit Middleware(mpi::Comm& comm) : comm_(comm) {}
  virtual ~Middleware() = default;

  // Virtual so group-restricted middlewares (e.g. the PME group of the
  // task decomposition, see charmm/decomposition.cpp) can present a
  // subset of the communicator to rank-oblivious code like the slab FFT.
  virtual int rank() const { return comm_.rank(); }
  virtual int size() const { return comm_.size(); }
  mpi::Comm& comm() { return comm_; }

  // Global sum of a double vector on every rank (the all-to-all collective
  // that ends the classic energy calculation).
  virtual void global_sum(double* data, std::size_t n) = 0;

  // Global barrier ("coherency maintenance" between phases).
  virtual void synchronize() = 0;

  // Personalized all-to-all over byte blocks (the FFT transpose).
  virtual void transpose(const void* send,
                         const std::vector<std::size_t>& send_counts,
                         const std::vector<std::size_t>& send_displs,
                         void* recv,
                         const std::vector<std::size_t>& recv_counts,
                         const std::vector<std::size_t>& recv_displs) = 0;

  virtual void broadcast(void* data, std::size_t bytes, int root) = 0;

 protected:
  mpi::Comm& comm_;
};

std::unique_ptr<Middleware> make_middleware(Kind kind, mpi::Comm& comm);

// Raw-MPI personality.
class MpiMiddleware final : public Middleware {
 public:
  using Middleware::Middleware;
  void global_sum(double* data, std::size_t n) override;
  void synchronize() override;
  void transpose(const void* send,
                 const std::vector<std::size_t>& send_counts,
                 const std::vector<std::size_t>& send_displs, void* recv,
                 const std::vector<std::size_t>& recv_counts,
                 const std::vector<std::size_t>& recv_displs) override;
  void broadcast(void* data, std::size_t bytes, int root) override;
};

// CHARMM-MPI personality.
class CmpiMiddleware final : public Middleware {
 public:
  using Middleware::Middleware;
  void global_sum(double* data, std::size_t n) override;
  void synchronize() override;
  void transpose(const void* send,
                 const std::vector<std::size_t>& send_counts,
                 const std::vector<std::size_t>& send_displs, void* recv,
                 const std::vector<std::size_t>& recv_counts,
                 const std::vector<std::size_t>& recv_displs) override;
  void broadcast(void* data, std::size_t bytes, int root) override;

 private:
  // One CMPI synchronization call: p-1 repetitions of a one-byte exchange
  // with the ring neighbors.
  void neighbor_sync();
};

}  // namespace repro::middleware
