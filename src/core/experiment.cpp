#include "core/experiment.hpp"

#include <algorithm>

#include "charmm/spatial.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace repro::core {

std::string Platform::to_string() const {
  return net::to_string(network) + std::string(" / ") +
         middleware::to_string(middleware) + " / " +
         (cpus_per_node == 1 ? "uni" : "dual") + "-processor";
}

Platform reference_platform() { return Platform{}; }

namespace {

// Snapshots the network's shared resources and channel counters into a
// RunMetrics. The makespan (utilization denominator) is the slowest rank's
// total recorded virtual time — every advance of a rank clock is mirrored
// in its recorder, so this equals the run's virtual wall clock.
perf::RunMetrics collect_metrics(
    const perf::RunBreakdown& breakdown,
    const std::vector<perf::RankRecorder>& recorders,
    const net::ClusterNetwork& network) {
  perf::RunMetrics m;
  m.breakdown = breakdown;
  for (const auto& rec : recorders) {
    m.makespan = std::max(m.makespan, rec.total_breakdown().total());
    for (const auto& [phase, seconds] : rec.phase_times()) {
      m.phase_seconds[phase] += seconds;
    }
  }
  // Load-imbalance factors (max/mean over ranks): compute (busy) time
  // overall plus every schedule phase. Multi-rank phased runs only, so
  // unphased and single-rank reports stay byte-identical.
  if (recorders.size() >= 2 && !m.phase_seconds.empty()) {
    const auto nranks = static_cast<double>(recorders.size());
    for (const auto& rec : recorders) {
      const double comp = rec.total_breakdown().comp;
      m.compute_imbalance.max_seconds =
          std::max(m.compute_imbalance.max_seconds, comp);
      m.compute_imbalance.mean_seconds += comp / nranks;
      for (const auto& [phase, seconds] : rec.phase_times()) {
        perf::ImbalanceMetrics& im = m.phase_imbalance[phase];
        im.max_seconds = std::max(im.max_seconds, seconds);
        im.mean_seconds += seconds / nranks;
      }
    }
  }
  for (const sim::Resource* res : network.resources()) {
    perf::ResourceMetrics rm;
    rm.name = res->name();
    rm.busy_time = res->busy_time();
    rm.queue_wait = res->queue_wait_time();
    rm.max_queue_wait = res->max_queue_wait();
    rm.acquisitions = res->acquisitions();
    rm.utilization = res->utilization(m.makespan);
    m.resources.push_back(std::move(rm));
  }
  // Fabric hop links (fat-tree uplinks/downlinks, torus links). Only links
  // that carried traffic are reported: a torus allocates 6 links per grid
  // slot and most stay idle. Empty on the single switch, so its metrics
  // JSON is byte-identical to the pre-topology model.
  for (const sim::Resource* res : network.fabric_links()) {
    if (res->acquisitions() == 0) continue;
    perf::ResourceMetrics rm;
    rm.name = res->name();
    rm.busy_time = res->busy_time();
    rm.queue_wait = res->queue_wait_time();
    rm.max_queue_wait = res->max_queue_wait();
    rm.acquisitions = res->acquisitions();
    rm.utilization = res->utilization(m.makespan);
    m.resources.push_back(std::move(rm));
  }
  // Sparse channel iteration: only pairs that exchanged messages exist,
  // visited in deterministic (src, dst) order.
  network.for_each_channel(
      [&m](int src, int dst, const net::ChannelStats& ch) {
        perf::ChannelMetrics cm;
        cm.src = src;
        cm.dst = dst;
        cm.messages = ch.messages;
        cm.bytes = ch.bytes;
        cm.stall_time = ch.stall_time;
        cm.wire_time = ch.wire_time;
        m.channels.push_back(cm);
      });
  if (const net::FaultCounters* fc = network.fault_counters()) {
    perf::FaultMetrics& f = m.faults;
    f.enabled = true;
    f.packets_lost = fc->packets_lost;
    f.retransmits = fc->retransmits;
    f.retransmitted_bytes = fc->retransmitted_bytes;
    f.retransmit_delay = fc->retransmit_delay;
    f.degraded_messages = fc->degraded_messages;
    f.degradation_delay = fc->degradation_delay;
    f.noise_bursts = fc->noise_bursts;
    f.noise_delay = fc->noise_delay;
    f.straggler_delay = fc->straggler_delay;
    f.stall_events = fc->stall_events;
    f.stall_delay = fc->stall_delay;
    f.absorbed_classic = fc->absorbed[0];
    f.absorbed_pme = fc->absorbed[1];
    f.absorbed_other = fc->absorbed[2];
  }
  return m;
}

// Converts the run's virtual-time accounting into joules (see
// perf/power.hpp): static draw per node over the makespan, dynamic draw
// per rank-second of phase time. Unphased runs (the sequential reference
// program sets no phase labels) charge dynamic power against the ranks'
// compute time as a single "compute" pseudo-phase, so the joules column
// is still meaningful at p = 1.
void apply_power_model(perf::RunMetrics& m, const perf::PowerModel& model,
                       const std::vector<perf::RankRecorder>& recorders,
                       int cpus_per_node) {
  // parse_power_spec already rejects negative watt rates; this backstop
  // guards models built in code.
  REPRO_REQUIRE(model.static_watts_per_node >= 0.0 &&
                    model.dynamic_watts >= 0.0,
                "power model watt rates must be non-negative");
  for (const auto& [phase, watts] : model.phase_watts) {
    REPRO_REQUIRE(watts >= 0.0, "power model phase override for '" + phase +
                                    "' must be non-negative");
  }
  perf::PowerMetrics& pw = m.power;
  pw.enabled = true;
  pw.static_watts_per_node = model.static_watts_per_node;
  pw.dynamic_watts = model.dynamic_watts;
  const int nranks = static_cast<int>(recorders.size());
  pw.nodes = (nranks + cpus_per_node - 1) / cpus_per_node;
  pw.static_joules =
      model.static_watts_per_node * static_cast<double>(pw.nodes) * m.makespan;
  auto watts_for = [&model](const std::string& phase) {
    const auto it = model.phase_watts.find(phase);
    return it != model.phase_watts.end() ? it->second : model.dynamic_watts;
  };
  if (!m.phase_seconds.empty()) {
    for (const auto& [phase, seconds] : m.phase_seconds) {
      pw.phase_joules[phase] = watts_for(phase) * seconds;
    }
  } else {
    double comp = 0.0;
    for (const auto& rec : recorders) comp += rec.total_breakdown().comp;
    pw.phase_joules["compute"] = watts_for("compute") * comp;
  }
  for (const auto& [phase, joules] : pw.phase_joules) {
    (void)phase;
    pw.dynamic_joules += joules;
  }
}

}  // namespace

std::vector<Platform> full_factorial() {
  std::vector<Platform> cells;
  for (auto network : {net::Network::kTcpGigE, net::Network::kScoreGigE,
                       net::Network::kMyrinetGM}) {
    for (auto mw : {middleware::Kind::kMpi, middleware::Kind::kCmpi}) {
      for (int cpus : {1, 2}) {
        cells.push_back(Platform{network, mw, cpus});
      }
    }
  }
  return cells;
}

ExperimentResult run_experiment(const sysbuild::BuiltSystem& sys,
                                const ExperimentSpec& spec) {
  REPRO_REQUIRE(spec.nprocs >= 1, "experiment needs at least one process");
  charmm::validate_config(spec.charmm);
  if (spec.charmm.decomp.kind == charmm::DecompKind::kTaskPme &&
      spec.nprocs >= 2) {
    // Fails fast on a pme_ranks/nprocs mismatch before spinning up ranks.
    charmm::resolved_pme_ranks(spec.charmm.decomp, spec.nprocs);
  }
  if (spec.charmm.decomp.kind == charmm::DecompKind::kSpatial &&
      spec.nprocs >= 2) {
    // Fails fast on an infeasible cell grid (cells thinner than
    // cutoff + skin) before spinning up ranks.
    const charmm::SpatialLayout probe = charmm::make_spatial_layout(
        spec.charmm.decomp, sys.box,
        spec.charmm.cutoff + spec.charmm.skin, spec.nprocs);
    if (spec.charmm.decomp.ldb != charmm::LdbPolicy::kOff) {
      // Fails fast on a unit count the grid cannot honor (units < ranks
      // or units > cells) before spinning up ranks.
      charmm::resolved_units(spec.charmm.decomp, spec.nprocs,
                             probe.ncells());
    }
    if (spec.charmm.decomp.pme_mode == charmm::PmeMode::kPencil &&
        spec.nprocs > 1) {
      // (p == 1 runs the sequential reference program; no pencil grid.)
      // Fails fast on a pencil grid that needs more ranks than the run
      // has or more planes than the FFT grid holds.
      charmm::resolved_pencil_grid(spec.charmm.decomp, spec.nprocs,
                                   spec.charmm.pme.ny, spec.charmm.pme.nz);
    }
  }

  net::ClusterConfig cluster_config;
  cluster_config.nranks = spec.nprocs;
  cluster_config.cpus_per_node = spec.platform.cpus_per_node;
  cluster_config.network = spec.platform.network;
  cluster_config.seed = spec.seed;
  cluster_config.topology = spec.topology;
  net::ClusterNetwork network(
      cluster_config,
      spec.network_params ? *spec.network_params
                          : net::params_for(cluster_config.network),
      spec.faults ? *spec.faults : net::FaultSpec{});

  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(spec.nprocs));
  std::vector<charmm::RankRunResult> rank_results(
      static_cast<std::size_t>(spec.nprocs));
  std::vector<perf::Timeline> timelines;
  if (spec.record_timelines) {
    timelines.resize(static_cast<std::size_t>(spec.nprocs));
    for (int r = 0; r < spec.nprocs; ++r) {
      timelines[static_cast<std::size_t>(r)].set_rank(r);
      recorders[static_cast<std::size_t>(r)].attach_timeline(
          &timelines[static_cast<std::size_t>(r)]);
    }
  }

  sim::Engine engine(spec.nprocs, spec.engine);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, network,
                   recorders[static_cast<std::size_t>(ctx.rank())],
                   spec.collectives);
    auto mw = middleware::make_middleware(spec.platform.middleware, comm);
    rank_results[static_cast<std::size_t>(ctx.rank())] =
        charmm::run_charmm_rank(sys, spec.charmm, *mw);
  });

  ExperimentResult result;
  result.breakdown =
      perf::aggregate(recorders, spec.platform.cpus_per_node);
  result.metrics = collect_metrics(result.breakdown, recorders, network);
  if (spec.power) {
    apply_power_model(result.metrics, *spec.power, recorders,
                      spec.platform.cpus_per_node);
  }
  result.timelines = std::move(timelines);
  result.energy = rank_results.front().last_energy;
  result.position_checksum = rank_results.front().position_checksum;
  result.pairs_in_list = rank_results.front().pairs_in_list;
  result.atoms_migrated = rank_results.front().atoms_migrated;
  result.units_moved = rank_results.front().units_moved;
  result.unit_map_hash = rank_results.front().unit_map_hash;
  result.engine_events = engine.events_processed();
  result.engine_context_switches = engine.context_switches();

  // Replication invariant: every rank must end with identical state,
  // and with ldb on, the identical balancer trajectory.
  for (const auto& rr : rank_results) {
    REPRO_REQUIRE(rr.position_checksum == result.position_checksum,
                  "replicated trajectories diverged across ranks");
    REPRO_REQUIRE(rr.units_moved == result.units_moved &&
                      rr.unit_map_hash == result.unit_map_hash,
                  "load-balancer unit maps diverged across ranks");
  }
  return result;
}

}  // namespace repro::core
