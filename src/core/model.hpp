// Analytic (LogGP-style) overhead prediction.
//
// The paper's closing claim is that its detailed timings "allow to derive
// good estimates about the benefits of moving applications to novel
// computing platforms". This module is that estimator in closed form: from
// a network parameter set and the workload's communication schedule (the
// message counts/volumes implied by the replicated-data decomposition and
// the slab FFT), it predicts the per-step communication time of the
// classic and PME components — no simulation run required. Tests check the
// prediction against the simulator on the contention-free stacks.
#pragma once

#include <cstddef>

#include "charmm/app.hpp"
#include "charmm/decomp_spec.hpp"
#include "net/params.hpp"
#include "pme/pme.hpp"
#include "sysbuild/builder.hpp"

namespace repro::core {

struct OverheadPrediction {
  double classic_comm_per_step = 0.0;  // seconds
  double pme_comm_per_step = 0.0;      // seconds
  double sync_per_step = 0.0;          // barrier cost (latency-bound)

  // Cluster-wide per-step schedule shape: how many point-to-point data
  // messages the decomposition issues and how many payload bytes they
  // carry (zero-byte barrier rounds excluded). These are exact counts of
  // the simulated schedule — the byte volumes are pinned against channel
  // counters in tests — while the *_per_step times above model only the
  // critical path.
  double classic_messages_per_step = 0.0;
  double classic_bytes_per_step = 0.0;
  double pme_messages_per_step = 0.0;
  double pme_bytes_per_step = 0.0;

  // Whole-run totals for the spatial decomposition's measurement-driven
  // load balancer (ldb != off), derived by replaying the balancer's
  // zero-drift fault-free trajectory: every point-to-point data message
  // of the nsteps step loop (the per-step schedule of each adopted
  // epoch) plus the rebuild-event traffic — the empty drift migration,
  // the cost/speed allreduce, the unit handoff, and the ghost
  // renegotiation under the new map. The final result_reduce epilogue is
  // excluded, as in the per-step counts. All zero when ldb is off.
  double run_messages = 0.0;
  double run_bytes = 0.0;
  // The rebuild-event subset of the run totals.
  double rebalance_messages = 0.0;
  double rebalance_bytes = 0.0;
  // Work units the replayed balancer moves over the whole run.
  double units_moved = 0.0;

  double total_per_step() const {
    return classic_comm_per_step + pme_comm_per_step + sync_per_step;
  }
  double messages_per_step() const {
    return classic_messages_per_step + pme_messages_per_step;
  }
  double bytes_per_step() const {
    return classic_bytes_per_step + pme_bytes_per_step;
  }
};

// End-to-end time of one point-to-point message of `bytes` under `params`
// (uncontended), including both hosts' costs and the receiver copy.
double predict_message_seconds(const net::NetworkParams& params,
                               std::size_t bytes, bool exchange = false);

// Predicts the per-step communication overheads of the CHARMM energy
// calculation on `nprocs` processors with the MPI middleware, under the
// replicated-data atom decomposition.
OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs, int natoms,
                                          const pme::PmeParams& grid);

// Same, for an arbitrary decomposition (atom, force fold/expand, task
// decoupling); assumes PME is on, matching the base overload. The spatial
// decomposition's schedule depends on where the atoms actually sit (the
// halo volumes are the border-cell populations), which an atom count
// cannot capture — passing kSpatial here throws; use the system-aware
// overload below.
OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs, int natoms,
                                          const pme::PmeParams& grid,
                                          const charmm::DecompSpec& decomp);

// System-aware overload: derives the exact communication schedule from
// the built system and full config. For kSpatial it reproduces the
// simulator's own layout + step-0 epoch (charmm/spatial.hpp), so the
// message/byte counts are exact for runs that stay within the first
// epoch (nsteps <= list_rebuild_interval); later epochs add migration/
// ghost-renegotiation traffic the per-step counts deliberately exclude.
// With ldb != off it additionally replays the balancer's whole
// zero-drift trajectory (charmm/ldb.hpp) and fills the run_* /
// rebalance_* / units_moved fields with exact whole-run totals,
// assuming the MPI middleware's reduce+bcast allreduce. Honors
// config.use_pme. Other decompositions forward to the overload above
// (which assumes PME on).
OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs,
                                          const sysbuild::BuiltSystem& sys,
                                          const charmm::CharmmConfig& config);

}  // namespace repro::core
