// Analytic (LogGP-style) overhead prediction.
//
// The paper's closing claim is that its detailed timings "allow to derive
// good estimates about the benefits of moving applications to novel
// computing platforms". This module is that estimator in closed form: from
// a network parameter set and the workload's communication schedule (the
// message counts/volumes implied by the replicated-data decomposition and
// the slab FFT), it predicts the per-step communication time of the
// classic and PME components — no simulation run required. Tests check the
// prediction against the simulator on the contention-free stacks.
#pragma once

#include <cstddef>

#include "net/params.hpp"
#include "pme/pme.hpp"

namespace repro::core {

struct OverheadPrediction {
  double classic_comm_per_step = 0.0;  // seconds
  double pme_comm_per_step = 0.0;      // seconds
  double sync_per_step = 0.0;          // barrier cost (latency-bound)

  double total_per_step() const {
    return classic_comm_per_step + pme_comm_per_step + sync_per_step;
  }
};

// End-to-end time of one point-to-point message of `bytes` under `params`
// (uncontended), including both hosts' costs and the receiver copy.
double predict_message_seconds(const net::NetworkParams& params,
                               std::size_t bytes, bool exchange = false);

// Predicts the per-step communication overheads of the CHARMM energy
// calculation on `nprocs` processors with the MPI middleware.
OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs, int natoms,
                                          const pme::PmeParams& grid);

}  // namespace repro::core
