// Parallel sweep execution.
//
// The paper's evaluation is a full-factorial sweep: dozens of independent
// DES runs (one per platform cell and processor count). Each
// run_experiment() is self-contained — its own ClusterNetwork, recorders,
// engine and seeded RNG — so the sweep layer itself is embarrassingly
// parallel. SweepRunner exploits that with a bounded thread pool while
// keeping the sequential contract intact: results come back in submission
// order and are bit-identical to a jobs=1 run, and one failed cell reports
// its error without killing the rest of the sweep.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace repro::core {

// Short human-readable cell description ("TCP/GigE / MPI / uni-processor
// p=8"), used in progress lines and error reports.
std::string spec_label(const ExperimentSpec& spec);

// One finished cell of a sweep. `result` is valid iff ok().
struct SweepOutcome {
  ExperimentSpec spec;
  ExperimentResult result;
  std::string error;  // what() of the exception that killed the cell

  bool ok() const { return error.empty(); }
};

// Called after each cell finishes. `done` counts finished cells (in
// completion order, which under jobs>1 is not submission order). The
// runner serializes callback invocations, but they may arrive on a worker
// thread — do not touch thread-affine state inside.
using SweepProgress = std::function<void(
    std::size_t done, std::size_t total, const SweepOutcome& cell)>;

class SweepRunner {
 public:
  // jobs <= 0 selects the hardware concurrency; jobs == 1 runs every cell
  // inline on the calling thread (exactly the pre-runner behaviour).
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Runs every spec against `sys` (shared read-only across cells) and
  // returns one outcome per spec, in submission order regardless of the
  // order cells finished in.
  std::vector<SweepOutcome> run(const sysbuild::BuiltSystem& sys,
                                const std::vector<ExperimentSpec>& specs,
                                const SweepProgress& progress = {}) const;

 private:
  int jobs_ = 1;
};

// Convenience for sweeps that treat any cell failure as fatal: runs the
// specs (default jobs = hardware concurrency) and either returns one
// result per spec, in order, or throws util::Error naming the first
// failed cell.
std::vector<ExperimentResult> run_experiments(
    const sysbuild::BuiltSystem& sys, const std::vector<ExperimentSpec>& specs,
    int jobs = 0, const SweepProgress& progress = {});

}  // namespace repro::core
