#include "core/factorial.hpp"

#include <set>
#include <sstream>

#include "core/sweep.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace repro::core {

std::vector<FactorialCell> run_full_factorial(
    const sysbuild::BuiltSystem& sys, const std::vector<int>& nprocs_list,
    const charmm::CharmmConfig& config, int jobs) {
  std::vector<ExperimentSpec> specs;
  for (const Platform& platform : full_factorial()) {
    for (int p : nprocs_list) {
      ExperimentSpec spec;
      spec.platform = platform;
      spec.nprocs = p;
      spec.charmm = config;
      specs.push_back(spec);
    }
  }
  const std::vector<ExperimentResult> results =
      run_experiments(sys, specs, jobs);
  std::vector<FactorialCell> cells;
  cells.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cells.push_back(
        FactorialCell{specs[i].platform, specs[i].nprocs, results[i]});
  }
  return cells;
}

namespace {

// Mean total over cells matching a predicate.
template <typename Pred>
double mean_total(const std::vector<FactorialCell>& cells, int nprocs,
                  Pred pred) {
  double sum = 0.0;
  int n = 0;
  for (const auto& cell : cells) {
    if (cell.nprocs != nprocs || !pred(cell.platform)) continue;
    sum += cell.result.total_seconds();
    ++n;
  }
  REPRO_REQUIRE(n > 0, "factor effect: no cells match");
  return sum / n;
}

}  // namespace

FactorEffects factor_effects(const std::vector<FactorialCell>& cells,
                             int nprocs) {
  FactorEffects fx;
  fx.nprocs = nprocs;
  const double tcp = mean_total(cells, nprocs, [](const Platform& p) {
    return p.network == net::Network::kTcpGigE;
  });
  const double score = mean_total(cells, nprocs, [](const Platform& p) {
    return p.network == net::Network::kScoreGigE;
  });
  const double myrinet = mean_total(cells, nprocs, [](const Platform& p) {
    return p.network == net::Network::kMyrinetGM;
  });
  const double mpi = mean_total(cells, nprocs, [](const Platform& p) {
    return p.middleware == middleware::Kind::kMpi;
  });
  const double cmpi = mean_total(cells, nprocs, [](const Platform& p) {
    return p.middleware == middleware::Kind::kCmpi;
  });
  const double uni = mean_total(cells, nprocs, [](const Platform& p) {
    return p.cpus_per_node == 1;
  });
  const double dual = mean_total(cells, nprocs, [](const Platform& p) {
    return p.cpus_per_node == 2;
  });
  fx.network_score_vs_tcp = tcp / score;
  fx.network_myrinet_vs_tcp = tcp / myrinet;
  fx.middleware_cmpi_vs_mpi = cmpi / mpi;
  fx.dual_vs_uni = dual / uni;
  return fx;
}

std::string factorial_report(const std::vector<FactorialCell>& cells) {
  util::Table table({"network", "middleware", "cpus", "procs", "classic (s)",
                     "pme (s)", "total (s)"});
  for (const auto& cell : cells) {
    table.add_row({net::to_string(cell.platform.network),
                   middleware::to_string(cell.platform.middleware),
                   cell.platform.cpus_per_node == 1 ? "uni" : "dual",
                   std::to_string(cell.nprocs),
                   util::Table::num(cell.result.classic_seconds(), 2),
                   util::Table::num(cell.result.pme_seconds(), 2),
                   util::Table::num(cell.result.total_seconds(), 2)});
  }
  std::ostringstream os;
  os << table.to_string();

  std::set<int> procs;
  for (const auto& cell : cells) procs.insert(cell.nprocs);
  os << "\nfactor main effects (mean-total ratios):\n";
  for (int p : procs) {
    if (p == 1) continue;  // all factors coincide sequentially
    const FactorEffects fx = factor_effects(cells, p);
    os << "  p=" << p << ": SCore vs TCP " << util::Table::num(fx.network_score_vs_tcp, 2)
       << "x, Myrinet vs TCP " << util::Table::num(fx.network_myrinet_vs_tcp, 2)
       << "x, CMPI vs MPI " << util::Table::num(fx.middleware_cmpi_vs_mpi, 2)
       << "x slower, dual vs uni " << util::Table::num(fx.dual_vs_uni, 2)
       << "x slower\n";
  }
  return os.str();
}

}  // namespace repro::core
