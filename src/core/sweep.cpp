#include "core/sweep.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace repro::core {

namespace {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

std::string spec_label(const ExperimentSpec& spec) {
  std::string label =
      spec.platform.to_string() + " p=" + std::to_string(spec.nprocs);
  if (spec.charmm.decomp.kind != charmm::DecompKind::kAtomReplicated) {
    label += " decomp=" + charmm::to_string(spec.charmm.decomp);
  }
  if (spec.faults && spec.faults->any()) {
    label += " faults[" + net::to_string(*spec.faults) + "]";
  }
  if (!spec.topology.single()) {
    label += " topology=" + net::to_string(spec.topology);
  }
  return label;
}

SweepRunner::SweepRunner(int jobs) : jobs_(resolve_jobs(jobs)) {}

std::vector<SweepOutcome> SweepRunner::run(
    const sysbuild::BuiltSystem& sys, const std::vector<ExperimentSpec>& specs,
    const SweepProgress& progress) const {
  std::vector<SweepOutcome> outcomes(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    outcomes[i].spec = specs[i];
  }

  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;
  // Each worker writes only its own outcome slot; the per-cell simulation
  // (network, recorders, engine, RNG) is constructed inside
  // run_experiment, so cells share nothing but the read-only system.
  auto run_cell = [&](std::size_t i) {
    SweepOutcome& out = outcomes[i];
    try {
      out.result = run_experiment(sys, out.spec);
    } catch (const std::exception& e) {
      out.error = e.what();
      if (out.error.empty()) out.error = "unknown error";
    } catch (...) {
      out.error = "unknown error";
    }
    if (progress) {
      std::lock_guard<std::mutex> lk(progress_mu);
      progress(done.fetch_add(1) + 1, specs.size(), out);
    }
  };

  const auto nworkers = std::min<std::size_t>(
      static_cast<std::size_t>(jobs_), specs.size());
  if (nworkers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) run_cell(i);
    return outcomes;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        run_cell(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return outcomes;
}

std::vector<ExperimentResult> run_experiments(
    const sysbuild::BuiltSystem& sys, const std::vector<ExperimentSpec>& specs,
    int jobs, const SweepProgress& progress) {
  std::vector<SweepOutcome> outcomes =
      SweepRunner(jobs).run(sys, specs, progress);
  std::vector<ExperimentResult> results;
  results.reserve(outcomes.size());
  for (SweepOutcome& out : outcomes) {
    REPRO_REQUIRE(out.ok(), "sweep cell failed (" + spec_label(out.spec) +
                                "): " + out.error);
    results.push_back(std::move(out.result));
  }
  return results;
}

}  // namespace repro::core
