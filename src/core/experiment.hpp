// The paper's experimental design (§3.1): response variables are the
// component times of the energy calculation; factors are Networking,
// Middleware, and CPUs-per-node; levels are the concrete choices. This
// module owns the mapping from a point in factor space to a fully wired
// simulation run, and the sweeps the figures are built from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "charmm/app.hpp"
#include "middleware/middleware.hpp"
#include "mpi/comm.hpp"
#include "net/cluster.hpp"
#include "perf/metrics.hpp"
#include "perf/power.hpp"
#include "perf/report.hpp"
#include "perf/timeline.hpp"
#include "sim/engine.hpp"

namespace repro::core {

// One point in the factor space of Figure 1.
struct Platform {
  net::Network network = net::Network::kTcpGigE;
  middleware::Kind middleware = middleware::Kind::kMpi;
  int cpus_per_node = 1;

  std::string to_string() const;
};

// The focal point of the fractional factorial design: MPICH over TCP/IP on
// Gigabit Ethernet with uni-processor nodes.
Platform reference_platform();

struct ExperimentSpec {
  Platform platform;
  int nprocs = 1;
  charmm::CharmmConfig charmm;
  std::uint64_t seed = 0x1234;
  // When set, per-rank virtual-time timelines are captured (see
  // perf/timeline.hpp) and returned in ExperimentResult::timelines.
  bool record_timelines = false;
  // Collective algorithm selection for the simulated MPI layer (the
  // ablation dimension of bench/ablation_collectives).
  mpi::CollectiveConfig collectives;
  // When set, overrides params_for(platform.network) — lets ablation
  // studies run modified network models through the normal sweep path.
  std::optional<net::NetworkParams> network_params;
  // When set (and non-empty), arms the fault-injection layer (packet loss,
  // link degradation, stragglers, node stalls; see net/faults.hpp). Absent
  // or empty specs leave every run byte-identical to the fault-free model.
  std::optional<net::FaultSpec> faults;
  // Which DES execution backend runs the simulated ranks (fiber by
  // default, thread for TSan-style race checking; $REPRO_ENGINE overrides
  // the default). Simulated results are byte-identical across backends —
  // only real wall clock differs.
  sim::EngineBackend engine = sim::default_engine_backend();
  // Fabric between the nodes (single switch by default — the paper's
  // cluster; fattree/torus model hierarchical clusters, see
  // net/topology.hpp).
  net::TopologySpec topology;
  // When set, converts the run's virtual-time accounting into
  // energy-to-solution (perf::PowerModel; RunMetrics::power). A pure
  // post-processing step — arming it never perturbs the simulated run.
  std::optional<perf::PowerModel> power;
};

struct ExperimentResult {
  perf::RunBreakdown breakdown;
  // Resource-utilization metrics (NIC tx/rx links, interrupt CPUs, per
  // src→dst channel counters) of the same run; metrics.breakdown mirrors
  // `breakdown`. Always populated — the counters cost nothing to collect.
  perf::RunMetrics metrics;
  std::vector<perf::Timeline> timelines;  // empty unless requested
  md::EnergyTerms energy;       // final-step energy (identical on ranks)
  double position_checksum = 0.0;
  std::size_t pairs_in_list = 0;
  // Atoms that changed owning rank over the run (spatial decomposition
  // only; 0 for replicated strategies).
  std::size_t atoms_migrated = 0;
  // Work units the load balancer migrated over the run and the FNV-1a
  // hash of every adopted unit→rank map (spatial with ldb != off only;
  // 0 otherwise). Identical on every rank — run_experiment asserts it.
  std::size_t units_moved = 0;
  std::uint64_t unit_map_hash = 0;
  std::uint64_t engine_events = 0;
  std::uint64_t engine_context_switches = 0;

  // Convenience accessors matching the paper's plotted series.
  double classic_seconds() const { return breakdown.classic_wall.total(); }
  double pme_seconds() const { return breakdown.pme_wall.total(); }
  double total_seconds() const { return classic_seconds() + pme_seconds(); }
};

// Runs the CHARMM energy-calculation workload for one experiment. `sys`
// must outlive the call and is shared read-only across the simulated ranks.
ExperimentResult run_experiment(const sysbuild::BuiltSystem& sys,
                                const ExperimentSpec& spec);

// Sweep helper: the paper's processor-count series.
inline const std::vector<int>& paper_processor_counts() {
  static const std::vector<int> counts{1, 2, 4, 8};
  return counts;
}

// All 12 cells of the full factorial design (3 networks x 2 middlewares x
// 2 node configurations), as enumerated in §3.1.
std::vector<Platform> full_factorial();

}  // namespace repro::core
