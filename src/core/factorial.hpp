// The paper's full factorial design (§3.1): all 12 combinations of
// network x middleware x CPUs-per-node, each swept over processor counts.
// "Although we gathered all data of a full factorial design ... we limit
// the discussion of our result to a fractional factorial design" — this
// module gathers the full design and derives the factor main effects, the
// quantification step of the paper's methodology ("determine the factors
// that have a significant effect on the response variables and quantify
// their effect", after Jain).
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace repro::core {

struct FactorialCell {
  Platform platform;
  int nprocs = 1;
  ExperimentResult result;
};

// Runs every cell of the full factorial design for each processor count.
// Cells are independent DES runs and execute concurrently on a SweepRunner
// (`jobs` worker threads; <= 0 selects the hardware concurrency, 1 runs
// sequentially). Results are deterministic and identical for any `jobs`.
std::vector<FactorialCell> run_full_factorial(
    const sysbuild::BuiltSystem& sys, const std::vector<int>& nprocs_list,
    const charmm::CharmmConfig& config = {}, int jobs = 0);

// Main effect of each factor on the total energy-calculation time at a
// given processor count: the mean total over the cells at the "better"
// level divided into the mean at the reference level.
struct FactorEffects {
  int nprocs = 0;
  double network_score_vs_tcp = 0.0;    // mean total TCP / mean total SCore
  double network_myrinet_vs_tcp = 0.0;  // mean total TCP / mean total Myrinet
  double middleware_cmpi_vs_mpi = 0.0;  // mean total CMPI / mean total MPI
  double dual_vs_uni = 0.0;             // mean total dual / mean total uni
};

FactorEffects factor_effects(const std::vector<FactorialCell>& cells,
                             int nprocs);

// Human-readable table of all cells plus the factor effects.
std::string factorial_report(const std::vector<FactorialCell>& cells);

}  // namespace repro::core
