#include "core/model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace repro::core {

double predict_message_seconds(const net::NetworkParams& params,
                               std::size_t bytes, bool exchange) {
  const double packets = bytes == 0
                             ? 1.0
                             : std::ceil(static_cast<double>(bytes) /
                                         static_cast<double>(params.mtu));
  double wire = static_cast<double>(bytes) / params.bandwidth;
  if (exchange) wire *= params.duplex_exchange_factor;
  return params.send_overhead + packets * params.packet_cost_send + wire +
         params.latency + params.recv_overhead +
         packets * params.packet_cost_recv +
         static_cast<double>(bytes) / params.copy_bandwidth;
}

OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs, int natoms,
                                          const pme::PmeParams& grid) {
  REPRO_REQUIRE(nprocs >= 1, "prediction needs at least one processor");
  OverheadPrediction out;
  if (nprocs == 1) return out;

  const auto log2p = static_cast<double>(
      static_cast<int>(std::ceil(std::log2(nprocs))));

  // Classic: the force reduction (3N doubles) as MPICH-1 reduce+bcast —
  // 2 log2(p) sequential full-vector hops on the critical path — plus the
  // small energy reduction.
  const std::size_t force_bytes = static_cast<std::size_t>(natoms) * 3 * 8;
  out.classic_comm_per_step =
      2.0 * log2p * predict_message_seconds(params, force_bytes) +
      2.0 * log2p * predict_message_seconds(params, 9 * 8);

  // PME: two all-to-all personalized transposes. Pairwise exchange runs
  // p-1 sequential rounds per transpose; each round moves one block of
  // roughly (nx/p) * ny * (nz/p) complex values in each direction
  // concurrently (exchange traffic).
  const double block_elems =
      (static_cast<double>(grid.nx) / nprocs) *
      static_cast<double>(grid.ny) *
      (static_cast<double>(grid.nz) / nprocs);
  const auto block_bytes =
      static_cast<std::size_t>(block_elems * 16.0);  // complex<double>
  out.pme_comm_per_step =
      2.0 * (nprocs - 1) *
      predict_message_seconds(params, block_bytes, /*exchange=*/true);

  // Three dissemination barriers per step, log2(p) zero-byte rounds each.
  out.sync_per_step =
      3.0 * log2p * predict_message_seconds(params, 0);
  return out;
}

}  // namespace repro::core
