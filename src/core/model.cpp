#include "core/model.hpp"

#include <algorithm>
#include <cmath>

#include "charmm/ldb.hpp"
#include "charmm/spatial.hpp"
#include "fft/parallel_fft.hpp"
#include "md/neighbor.hpp"
#include "util/error.hpp"

namespace repro::core {

double predict_message_seconds(const net::NetworkParams& params,
                               std::size_t bytes, bool exchange) {
  const double packets = bytes == 0
                             ? 1.0
                             : std::ceil(static_cast<double>(bytes) /
                                         static_cast<double>(params.mtu));
  double wire = static_cast<double>(bytes) / params.bandwidth;
  if (exchange) wire *= params.duplex_exchange_factor;
  return params.send_overhead + packets * params.packet_cost_send + wire +
         params.latency + params.recv_overhead +
         packets * params.packet_cost_recv +
         static_cast<double>(bytes) / params.copy_bandwidth;
}

namespace {

double ceil_log2(int p) {
  return static_cast<double>(static_cast<int>(std::ceil(std::log2(p))));
}

// Exact payload bytes one slab transpose moves across the network among
// `p` ranks: the whole grid minus the diagonal blocks that stay local,
// using the same front-loaded partition the FFT builds.
double transpose_bytes(const pme::PmeParams& grid, int p) {
  const fft::SlabPartition xpart(grid.nx, p);
  const fft::SlabPartition zpart(grid.nz, p);
  double local = 0.0;
  for (int r = 0; r < p; ++r) {
    local += static_cast<double>(xpart.count(r)) *
             static_cast<double>(zpart.count(r));
  }
  const double total = static_cast<double>(grid.nx * grid.nz);
  return (total - local) * static_cast<double>(grid.ny) *
         16.0;  // complex<double>
}

// The per-round block the existing atom model charges on the transpose
// critical path (kept as-is: the base overload's times must not change).
std::size_t transpose_round_block_bytes(const pme::PmeParams& grid, int p) {
  const double block_elems = (static_cast<double>(grid.nx) / p) *
                             static_cast<double>(grid.ny) *
                             (static_cast<double>(grid.nz) / p);
  return static_cast<std::size_t>(block_elems * 16.0);
}

void predict_atom(const net::NetworkParams& params, int p, int natoms,
                  const pme::PmeParams& grid, OverheadPrediction& out) {
  const double log2p = ceil_log2(p);
  const std::size_t force_bytes = static_cast<std::size_t>(natoms) * 3 * 8;
  const std::size_t energy_bytes = 9 * 8;

  // Classic: the force reduction (3N doubles) as MPICH-1 reduce+bcast —
  // 2 log2(p) sequential full-vector hops on the critical path — plus the
  // small energy reduction. Cluster-wide, each binomial tree carries p-1
  // full-vector messages, and the allreduce runs two trees.
  out.classic_comm_per_step =
      2.0 * log2p * predict_message_seconds(params, force_bytes) +
      2.0 * log2p * predict_message_seconds(params, energy_bytes);
  out.classic_messages_per_step = 4.0 * (p - 1);
  out.classic_bytes_per_step =
      2.0 * (p - 1) * static_cast<double>(force_bytes + energy_bytes);

  // PME: two all-to-all personalized transposes. Pairwise exchange runs
  // p-1 sequential rounds per transpose; each round moves one block of
  // roughly (nx/p) * ny * (nz/p) complex values in each direction
  // concurrently (exchange traffic).
  out.pme_comm_per_step =
      2.0 * (p - 1) *
      predict_message_seconds(params, transpose_round_block_bytes(grid, p),
                              /*exchange=*/true);
  out.pme_messages_per_step = 2.0 * p * (p - 1);
  out.pme_bytes_per_step = 2.0 * transpose_bytes(grid, p);

  // Three dissemination barriers per step, log2(p) zero-byte rounds each.
  out.sync_per_step = 3.0 * log2p * predict_message_seconds(params, 0);
}

void predict_force(const net::NetworkParams& params, int p, int natoms,
                   const pme::PmeParams& grid, OverheadPrediction& out) {
  const double log2p = ceil_log2(p);
  const std::size_t force_bytes = static_cast<std::size_t>(natoms) * 3 * 8;
  const std::size_t energy_bytes = 9 * 8;

  // Fold + expand: each rank issues p-1 block sends and p-1 block
  // receives per half, all blocks ~24N/p bytes, rounds overlapping across
  // ranks (exchange traffic) — so the critical path is 2 (p-1) block
  // messages instead of the allreduce's 2 log2(p) full-vector hops. The
  // energy scalars still ride a comm-wide allreduce.
  const auto fold_block_bytes =
      static_cast<std::size_t>(static_cast<double>(force_bytes) / p);
  out.classic_comm_per_step =
      2.0 * (p - 1) *
          predict_message_seconds(params, fold_block_bytes,
                                  /*exchange=*/true) +
      2.0 * log2p * predict_message_seconds(params, energy_bytes);
  // Cluster-wide: fold ships every non-owned block once (24N (p-1) bytes),
  // expand ships every owned total to the p-1 others (same volume again).
  out.classic_messages_per_step =
      2.0 * p * (p - 1) + 2.0 * (p - 1);
  out.classic_bytes_per_step =
      2.0 * static_cast<double>(force_bytes) * (p - 1) +
      2.0 * (p - 1) * static_cast<double>(energy_bytes);

  // PME and the three coherency barriers are unchanged from the atom
  // schedule.
  out.pme_comm_per_step =
      2.0 * (p - 1) *
      predict_message_seconds(params, transpose_round_block_bytes(grid, p),
                              /*exchange=*/true);
  out.pme_messages_per_step = 2.0 * p * (p - 1);
  out.pme_bytes_per_step = 2.0 * transpose_bytes(grid, p);
  out.sync_per_step = 3.0 * log2p * predict_message_seconds(params, 0);
}

void predict_task(const net::NetworkParams& params, int p, int natoms,
                  const pme::PmeParams& grid,
                  const charmm::DecompSpec& decomp,
                  OverheadPrediction& out) {
  const int m = charmm::resolved_pme_ranks(decomp, p);
  const int q = p - m;
  // The combine ships forces and energy terms packed together.
  const std::size_t combined_bytes =
      (static_cast<std::size_t>(natoms) * 3 + 9) * 8;

  // Classic group: binomial reduce over q ranks, the root exchange hop
  // from the PME root, and the comm-wide result broadcast.
  out.classic_comm_per_step =
      (ceil_log2(q) + 1.0 + ceil_log2(p)) *
      predict_message_seconds(params, combined_bytes);
  out.classic_messages_per_step =
      static_cast<double>((q - 1) + 1 + (p - 1));
  out.classic_bytes_per_step =
      static_cast<double>((q - 1) + 1 + (p - 1)) *
      static_cast<double>(combined_bytes);

  // PME group: the two transposes now run among m ranks (bigger blocks,
  // fewer rounds), plus the group's own binomial reduce of the combined
  // vector.
  const double transpose_time =
      m == 1 ? 0.0
             : 2.0 * (m - 1) *
                   predict_message_seconds(
                       params, transpose_round_block_bytes(grid, m),
                       /*exchange=*/true);
  out.pme_comm_per_step =
      transpose_time +
      ceil_log2(m) * predict_message_seconds(params, combined_bytes);
  out.pme_messages_per_step = 2.0 * m * (m - 1) + (m - 1);
  out.pme_bytes_per_step =
      2.0 * transpose_bytes(grid, m) +
      static_cast<double>(m - 1) * static_cast<double>(combined_bytes);

  // Two comm-wide barriers per step: energy entry and the group join.
  out.sync_per_step = 2.0 * ceil_log2(p) * predict_message_seconds(params, 0);
}

// One spatial epoch's schedule, derived from the layout + epoch the
// simulator freezes between rebuilds: every count below is exact (and
// pinned in tests) for the steps that epoch covers.
void predict_spatial_epoch(const net::NetworkParams& params, int p,
                           const sysbuild::BuiltSystem& sys,
                           const charmm::CharmmConfig& config,
                           const charmm::SpatialLayout& layout,
                           const charmm::SpatialEpoch& epoch,
                           OverheadPrediction& out) {
  const double log2p = ceil_log2(p);
  const auto natoms = static_cast<double>(sys.topo.natoms());
  const std::size_t energy_bytes = 9 * 8;

  // Directed halo schedule: each nonzero send list is one position-halo
  // message out and one byte-symmetric force-halo message back, every
  // step. Empty lists are skipped by both sides.
  double halo_messages = 0.0;
  double halo_bytes = 0.0;
  double max_rank_halo_seconds = 0.0;
  for (int r = 0; r < p; ++r) {
    double rank_seconds = 0.0;
    for (const auto& ids : epoch.send[static_cast<std::size_t>(r)]) {
      if (ids.empty()) continue;
      const std::size_t bytes = ids.size() * 24;
      halo_messages += 1.0;
      halo_bytes += static_cast<double>(bytes);
      rank_seconds +=
          predict_message_seconds(params, bytes, /*exchange=*/true);
    }
    max_rank_halo_seconds = std::max(max_rank_halo_seconds, rank_seconds);
  }

  // Classic: both halos plus the 9-double energy allreduce.
  out.classic_comm_per_step =
      2.0 * max_rank_halo_seconds +
      2.0 * log2p * predict_message_seconds(params, energy_bytes);
  out.classic_messages_per_step = 2.0 * halo_messages + 2.0 * (p - 1);
  out.classic_bytes_per_step =
      2.0 * halo_bytes +
      2.0 * (p - 1) * static_cast<double>(energy_bytes);

  if (config.use_pme &&
      config.decomp.pme_mode == charmm::PmeMode::kPencil) {
    // Pencil PME: no gather, no reciprocal-force allreduce. The traffic
    // is (a) the charge/potential plane exchange between spread regions
    // and stage-1 pencils, and (b) the four grouped pairwise transposes
    // inside the forward/backward pencil FFT. Regions and the pencil
    // grid depend only on the layout, so every count is exact.
    const auto [py, pz] = charmm::resolved_pencil_grid(
        config.decomp, p, config.pme.ny, config.pme.nz);
    const fft::PencilGrid pgrid(config.pme.nx, config.pme.ny,
                                config.pme.nz, py, pz);
    const std::vector<pme::GridRegion> regions =
        charmm::make_pme_regions(layout, config.pme, config.skin);

    // Plane exchange: rank r ships the overlap of its region with each
    // stage-1 pencil (y-range x z-range, full x) as one eager message;
    // the potential comes back over the identical geometry.
    double plane_messages = 0.0;
    double plane_bytes = 0.0;
    double max_rank_plane_seconds = 0.0;
    for (int r = 0; r < p; ++r) {
      const pme::GridRegion& rr = regions[static_cast<std::size_t>(r)];
      double rank_seconds = 0.0;
      if (!rr.empty()) {
        for (int q = 0; q < p; ++q) {
          if (q == r || !pgrid.participates(q)) continue;
          const int qy = pgrid.ycoord(q);
          const int qz = pgrid.zcoord(q);
          const std::size_t elems =
              rr.cx *
              pme::wrapped_overlap(rr.y0, rr.cy, config.pme.ny,
                                   pgrid.ypart.begin(qy),
                                   pgrid.ypart.end(qy)) *
              pme::wrapped_overlap(rr.z0, rr.cz, config.pme.nz,
                                   pgrid.zpart.begin(qz),
                                   pgrid.zpart.end(qz));
          if (elems == 0) continue;
          plane_messages += 1.0;
          plane_bytes += static_cast<double>(elems) * 8.0;
          rank_seconds += predict_message_seconds(params, elems * 8);
        }
      }
      max_rank_plane_seconds =
          std::max(max_rank_plane_seconds, rank_seconds);
    }

    // Grouped pairwise transposes: X<->Y runs among the py ranks of each
    // z-group, Y<->Z among the pz ranks of each y-group; each ordered
    // pair with a nonzero block is one exchange message per direction.
    double fft_messages = 0.0;
    double fft_bytes = 0.0;
    for (int zc = 0; zc < pz; ++zc) {
      for (int a = 0; a < py; ++a) {
        for (int b = 0; b < py; ++b) {
          if (a == b) continue;
          const std::size_t elems = pgrid.ypart.count(a) *
                                    pgrid.xpart.count(b) *
                                    pgrid.zpart.count(zc);
          if (elems == 0) continue;
          fft_messages += 2.0;  // forward X->Y and backward Y->X
          fft_bytes += 2.0 * static_cast<double>(elems) * 16.0;
        }
      }
    }
    for (int yc = 0; yc < py; ++yc) {
      for (int c = 0; c < pz; ++c) {
        for (int d = 0; d < pz; ++d) {
          if (c == d) continue;
          const std::size_t elems = pgrid.xpart.count(yc) *
                                    pgrid.y2part.count(d) *
                                    pgrid.zpart.count(c);
          if (elems == 0) continue;
          fft_messages += 2.0;  // forward Y->Z and backward Z->Y
          fft_bytes += 2.0 * static_cast<double>(elems) * 16.0;
        }
      }
    }

    // Critical path: the heaviest rank's plane sends (both directions)
    // plus the sequential pairwise rounds of the four transposes, each
    // round moving one typical block concurrently in both directions.
    const double nx = static_cast<double>(config.pme.nx);
    const double ny = static_cast<double>(config.pme.ny);
    const double nz = static_cast<double>(config.pme.nz);
    const auto xy_block = static_cast<std::size_t>(
        (nx / py) * (ny / py) * (nz / pz) * 16.0);
    const auto yz_block = static_cast<std::size_t>(
        (nx / py) * (ny / pz) * (nz / pz) * 16.0);
    out.pme_comm_per_step =
        2.0 * max_rank_plane_seconds +
        2.0 * (py - 1) *
            predict_message_seconds(params, xy_block, /*exchange=*/true) +
        2.0 * (pz - 1) *
            predict_message_seconds(params, yz_block, /*exchange=*/true);
    out.pme_messages_per_step = 2.0 * plane_messages + fft_messages;
    out.pme_bytes_per_step = 2.0 * plane_bytes + fft_bytes;
  } else if (config.use_pme) {
    // Position gather: every rank ships (count, ids, positions) of its
    // owned set to every other rank — (1 + 4 n_r) doubles — so the
    // cluster-wide volume telescopes to (p-1)(8p + 32N) regardless of
    // how the heuristic balanced the domains.
    std::size_t max_owned = 0;
    for (const auto& ids : epoch.owned) {
      max_owned = std::max(max_owned, ids.size());
    }
    const double gather_bytes =
        static_cast<double>(p - 1) * (8.0 * p + 32.0 * natoms);
    // Reciprocal forces ride one full-vector allreduce (3N doubles), and
    // the slab FFT's two transposes are unchanged from the atom model.
    const std::size_t force_bytes =
        static_cast<std::size_t>(natoms) * 3 * 8;
    out.pme_comm_per_step =
        static_cast<double>(p - 1) *
            predict_message_seconds(params, 8 + 32 * max_owned,
                                    /*exchange=*/true) +
        2.0 * log2p * predict_message_seconds(params, force_bytes) +
        2.0 * (p - 1) *
            predict_message_seconds(params,
                                    transpose_round_block_bytes(
                                        config.pme, p),
                                    /*exchange=*/true);
    out.pme_messages_per_step = static_cast<double>(p) * (p - 1) +
                                2.0 * (p - 1) + 2.0 * p * (p - 1);
    out.pme_bytes_per_step = gather_bytes +
                             2.0 * (p - 1) *
                                 static_cast<double>(force_bytes) +
                             2.0 * transpose_bytes(config.pme, p);
  }

  // Barriers: energy entry every step, plus the pre-PME coherency point.
  out.sync_per_step = (config.use_pme ? 2.0 : 1.0) * log2p *
                      predict_message_seconds(params, 0);
}

void predict_spatial(const net::NetworkParams& params, int p,
                     const sysbuild::BuiltSystem& sys,
                     const charmm::CharmmConfig& config,
                     OverheadPrediction& out) {
  const charmm::SpatialLayout base = charmm::make_spatial_layout(
      config.decomp, sys.box, config.cutoff + config.skin, p,
      &sys.positions);
  if (config.decomp.ldb == charmm::LdbPolicy::kOff) {
    const charmm::SpatialEpoch epoch =
        charmm::make_global_epoch(base, sys.positions);
    predict_spatial_epoch(params, p, sys, config, base, epoch, out);
    return;
  }

  // ldb != off: replay the balancer's zero-drift trajectory — cold-start
  // map plus one rebalance per rebuild after step 0 — and sum the whole
  // run's schedule epoch by epoch. Zero drift keeps atoms in their
  // startup cells, so every epoch's halo schedule and every rebuild
  // event is fully determined by the replayed maps.
  const charmm::UnitGrid grid = charmm::make_unit_grid(
      base, charmm::resolved_units(config.decomp, p, base.ncells()),
      sys.positions);
  md::NeighborList nbl(config.cutoff, config.skin);
  nbl.build(sys.topo, sys.box, sys.positions);
  const int nrebalances =
      (config.nsteps - 1) / config.list_rebuild_interval;
  const std::vector<std::vector<int>> maps = charmm::replay_unit_maps(
      base, grid, sys.topo, nbl, sys.positions, config.cost,
      config.use_pme, config.decomp.ldb, p, nrebalances);

  std::vector<double> unit_atoms(static_cast<std::size_t>(grid.nunits),
                                 0.0);
  for (const util::Vec3& r : sys.positions) {
    unit_atoms[static_cast<std::size_t>(
        grid.cell_unit[static_cast<std::size_t>(base.cell_of(r))])] += 1.0;
  }

  charmm::SpatialLayout prev_layout;
  for (int k = 0; k <= nrebalances; ++k) {
    const charmm::SpatialLayout layout = charmm::layout_from_units(
        base, grid, maps[static_cast<std::size_t>(k)]);
    const charmm::SpatialEpoch epoch =
        charmm::make_global_epoch(layout, sys.positions);
    OverheadPrediction ep;
    predict_spatial_epoch(params, p, sys, config, layout, epoch, ep);
    if (k == 0) {
      // The per-step times and counts keep their meaning: the cold-start
      // epoch's schedule (exact for runs inside the first epoch).
      out = ep;
    }
    const int first = k * config.list_rebuild_interval;
    const int last = std::min((k + 1) * config.list_rebuild_interval,
                              config.nsteps);
    out.run_messages += static_cast<double>(last - first) *
                        ep.messages_per_step();
    out.run_bytes += static_cast<double>(last - first) *
                     ep.bytes_per_step();

    if (k > 0) {
      // Rebuild-event traffic at step `first`, in schedule order.
      double ev_messages = 0.0;
      double ev_bytes = 0.0;
      // Drift migration under the old map: empty payloads, one 8-byte
      // count to every old-layout neighbor.
      for (int r = 0; r < p; ++r) {
        const double nn = static_cast<double>(
            prev_layout.rank_neighbors[static_cast<std::size_t>(r)].size());
        ev_messages += nn;
        ev_bytes += nn * 8.0;
      }
      // ldb_collect: allreduce of K unit costs + p rank speeds over the
      // MPI middleware's binomial reduce + broadcast.
      ev_messages += 2.0 * (p - 1);
      ev_bytes += 2.0 * (p - 1) * 8.0 *
                  static_cast<double>(grid.nunits + p);
      // Unit handoff: the old owner of each moved unit ships
      // [count, (id, pos, vel) x n_u] to the new owner.
      for (int u = 0; u < grid.nunits; ++u) {
        const auto su = static_cast<std::size_t>(u);
        if (maps[static_cast<std::size_t>(k)][su] ==
            maps[static_cast<std::size_t>(k - 1)][su]) {
          continue;
        }
        out.units_moved += 1.0;
        ev_messages += 1.0;
        ev_bytes += 8.0 * (1.0 + 7.0 * unit_atoms[su]);
      }
      // Ghost renegotiation under the new map: every rank sends
      // (count, ids, positions) to every new-layout neighbor, empty or
      // not.
      for (int r = 0; r < p; ++r) {
        const auto& sends = epoch.send[static_cast<std::size_t>(r)];
        for (const auto& ids : sends) {
          ev_messages += 1.0;
          ev_bytes += 8.0 * (1.0 + 4.0 * static_cast<double>(ids.size()));
        }
      }
      out.rebalance_messages += ev_messages;
      out.rebalance_bytes += ev_bytes;
      out.run_messages += ev_messages;
      out.run_bytes += ev_bytes;
    }
    prev_layout = layout;
  }
}

}  // namespace

OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs, int natoms,
                                          const pme::PmeParams& grid) {
  return predict_step_overheads(params, nprocs, natoms, grid,
                                charmm::DecompSpec{});
}

OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs, int natoms,
                                          const pme::PmeParams& grid,
                                          const charmm::DecompSpec& decomp) {
  REPRO_REQUIRE(nprocs >= 1, "prediction needs at least one processor");
  OverheadPrediction out;
  if (nprocs == 1) return out;

  switch (decomp.kind) {
    case charmm::DecompKind::kAtomReplicated:
      predict_atom(params, nprocs, natoms, grid, out);
      return out;
    case charmm::DecompKind::kForce:
      predict_force(params, nprocs, natoms, grid, out);
      return out;
    case charmm::DecompKind::kTaskPme:
      predict_task(params, nprocs, natoms, grid, decomp, out);
      return out;
    case charmm::DecompKind::kSpatial:
      util::fail(
          "spatial prediction needs the built system (halo volumes are the "
          "border-cell populations); use the system-aware "
          "predict_step_overheads overload",
          __FILE__, __LINE__);
  }
  REPRO_UNREACHABLE("bad decomposition kind");
}

OverheadPrediction predict_step_overheads(const net::NetworkParams& params,
                                          int nprocs,
                                          const sysbuild::BuiltSystem& sys,
                                          const charmm::CharmmConfig& config) {
  REPRO_REQUIRE(nprocs >= 1, "prediction needs at least one processor");
  if (config.decomp.kind != charmm::DecompKind::kSpatial) {
    return predict_step_overheads(params, nprocs, sys.topo.natoms(),
                                  config.pme, config.decomp);
  }
  OverheadPrediction out;
  if (nprocs == 1) return out;
  predict_spatial(params, nprocs, sys, config, out);
  return out;
}

}  // namespace repro::core
