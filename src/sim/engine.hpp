// Conservative discrete-event engine for simulating a cluster of ranks.
//
// Each simulated rank runs arbitrary C++ code (the actual MD computation),
// but *time* is virtual: every rank owns a virtual clock that is advanced
// explicitly (compute costs, communication costs). The engine serializes
// execution — exactly one rank (or the scheduler) runs at any instant —
// and always resumes the runnable rank with the smallest virtual clock.
// Cross-rank effects (message arrivals) are global events processed in
// virtual-time order.
//
// Two execution backends implement the rank suspend/resume mechanism
// behind the same API and produce byte-identical simulations:
//
//   kFiber  (default) — every rank is a cooperative fiber (its own stack,
//           switched in user space) on the calling thread. A simulated
//           context switch is two stack switches, no kernel involvement,
//           so this is the fast backend for sweeps.
//   kThread — every rank is an OS thread serialized by a one-slot turn
//           handshake. An order of magnitude slower per switch, but the
//           only backend ThreadSanitizer understands — CI races the
//           engine's serialization protocol on it.
//
// Scheduling decisions live in the shared scheduler loop, so the backends
// cannot diverge: same min-clock pick, same event delivery order, same
// events_processed/context_switches counts.
//
// Correctness argument (conservative order): a rank is resumed only when its
// clock is the minimum over all runnable ranks and no pending event is
// earlier. Any message is scheduled with an arrival time no earlier than its
// sender's clock at the send, so when a rank executes at time t, every
// arrival <= t has already been delivered to its inbox. Ties are broken
// deterministically (event sequence numbers, then rank ids), which makes
// whole simulations bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/payload.hpp"

namespace repro::sim {

class Engine;

enum class EngineBackend {
  kFiber,   // cooperative fibers, single OS thread (fast path)
  kThread,  // thread-per-rank with turn passing (TSan-checkable)
};

const char* to_string(EngineBackend backend);

// Parses "fiber" / "thread"; throws util::Error on anything else.
EngineBackend parse_engine_backend(std::string_view name);

// Parses a $REPRO_FIBER_STACK_KB value into a stack size in bytes. Throws
// util::Error on non-numeric, zero or negative input; values below the
// 64 KiB floor are clamped up to it (a smaller stack cannot hold a rank
// main's frames and would fault on the guard page at the first deep call).
std::size_t parse_fiber_stack_kb(std::string_view text);
inline constexpr std::size_t kMinFiberStackBytes = 64 * 1024;

// The process-wide default: $REPRO_ENGINE when set (values as above),
// otherwise kFiber — except under ThreadSanitizer, where the thread
// backend is the default because TSan cannot follow user-space stack
// switches.
EngineBackend default_engine_backend();

// A message (or any payload) delivered to a rank at a virtual time.
struct Delivery {
  double time = 0.0;
  std::uint64_t seq = 0;  // global order among equal-time deliveries
  Payload payload;
};

// Per-rank handle passed to the rank main function. All methods must be
// called from that rank's execution context only.
class RankCtx {
 public:
  RankCtx(Engine* engine, int rank) : engine_(engine), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;
  double now() const;

  // Advances this rank's virtual clock (e.g. modeled computation time).
  // Cheap: does not reschedule.
  void advance(double dt);

  // Yields to the scheduler so that global virtual-time order is
  // re-established. Must be called before inspecting the inbox or touching
  // any state shared between ranks (the network resources, the message
  // store): after checkpoint() returns, every event with arrival <= now()
  // has been delivered and no other rank with a smaller clock is runnable.
  void checkpoint();

  // Blocks this rank until a new delivery arrives for it (the engine wakes
  // it with the delivery's time). Returns with now() >= the waking
  // delivery's time.
  void block();

  // Schedules a payload for delivery to rank dst at virtual time `time`
  // (must be >= now()).
  void post(double time, int dst, Payload payload);

  // Deliveries for this rank in arrival order. The consumer (e.g. the
  // simulated MPI layer) owns matching/removal semantics.
  std::deque<Delivery>& inbox();

 private:
  Engine* engine_;
  int rank_;
};

// Thrown inside rank contexts when the run is being torn down after an
// error in some other rank; rank code should let it propagate.
struct AbortRun {};

class Engine {
 public:
  explicit Engine(int nranks,
                  EngineBackend backend = default_engine_backend());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }
  EngineBackend backend() const { return backend_; }

  // Runs `rank_main` once per rank to completion. Throws util::Error on
  // deadlock (every live rank blocked with no pending events) and rethrows
  // the first exception escaping a rank main. An engine may be run
  // repeatedly; every run starts from a clean slate (no events, clocks and
  // counters at zero), even after a previous run aborted.
  void run(const std::function<void(RankCtx&)>& rank_main);

  // --- introspection / statistics (reset at each run() entry) ---------
  // Identical across backends for the same workload: both counters are
  // driven by the shared scheduler, not the switching mechanism.
  // context_switches() counts *simulated* rank->scheduler handoffs, not OS
  // context switches (see docs/OBSERVABILITY.md).
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t context_switches() const { return context_switches_; }

 private:
  friend class RankCtx;

  enum class State { Ready, Blocked, Done };

  struct Rank;

  double now(int rank) const;
  void advance(int rank, double dt);
  void checkpoint(int rank);
  void block(int rank);
  void post(double time, int dst, Payload payload);
  std::deque<Delivery>& inbox(int rank);

  // Scheduler internals (run on the scheduler context).
  void scheduler_loop();
  void deliver_front_event();
  void push_ready(int rank);
  void mark_done(int rank);
  [[noreturn]] void deadlock(const std::string& where) const;

  // Backend dispatch: hand control to a rank / back to the scheduler.
  void resume(int rank);
  void yield_to_scheduler(int rank);

  // Thread backend.
  std::exception_ptr run_threads(const std::function<void(RankCtx&)>& main);
  void resume_thread(int rank);
  void yield_thread(int rank);

  // Fiber backend.
  std::exception_ptr run_fibers(const std::function<void(RankCtx&)>& main);
  void resume_fiber(int rank);
  void yield_fiber(int rank);
  void fiber_main();  // rank body, runs on the fiber's stack
  static void fiber_trampoline();

  struct Event {
    double time;
    std::uint64_t seq;
    int dst;
    Payload payload;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // One parked runnable rank in the ready heap. The clock is a snapshot
  // taken at push time; it cannot go stale, because a parked Ready rank's
  // clock only changes while the rank itself runs (advance) or when a
  // Blocked rank is woken — and both transitions re-park the rank through
  // push_ready. Ties break on rank id, matching the old linear scan's
  // first-lowest-id pick, so simulations stay bit-identical.
  struct ReadyEntry {
    double clock;
    int rank;
    bool operator>(const ReadyEntry& o) const {
      if (clock != o.clock) return clock > o.clock;
      return rank > o.rank;
    }
  };

  // A pooled fiber stack (allocation base, usable range). Stacks are
  // recycled into the pool the moment their rank finishes and reused by
  // not-yet-started fibers, so peak stack memory tracks the number of
  // *simultaneously live* fibers, not the total rank count.
  struct StackBlock {
    void* base = nullptr;      // allocation base; first page is a guard
    std::size_t alloc = 0;     // full allocation size (incl. guard)
    void* lo = nullptr;        // usable stack bottom (ucontext/ASan view)
    std::size_t size = 0;      // usable stack size
  };
  StackBlock acquire_stack();
  static void free_stack(StackBlock& block);
  void start_fiber(Rank& r);

  EngineBackend backend_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  void* sched_slot_ = nullptr;  // TurnSlot of the scheduler, valid in run()
  void* sched_ctx_ = nullptr;   // fiber scheduler context, valid in run()
  const std::function<void(RankCtx&)>* fiber_rank_main_ = nullptr;
  int fiber_active_ = -1;  // rank whose fiber is (about to be) running
  // Scheduler-side ASan fiber bookkeeping (null unless ASan is active).
  void* sched_fake_stack_ = nullptr;
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  std::vector<Event> event_heap_;  // min-heap via std::push_heap/greater
  // Indexed ready structure: min-(clock, rank) heap of parked runnable
  // ranks. Replaces the per-switch O(p) state scan — scheduling is
  // O(log p) per context switch, which is what lets the engine run
  // thousands of fiber ranks (see docs/ARCHITECTURE.md).
  std::vector<ReadyEntry> ready_heap_;
  int live_ranks_ = 0;  // ranks not yet Done (replaces the any_live scan)
  std::vector<StackBlock> stack_pool_;  // recycled fiber stacks
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t context_switches_ = 0;
  bool aborting_ = false;
  std::exception_ptr first_error_;
};

}  // namespace repro::sim
