// Conservative discrete-event engine for simulating a cluster of ranks.
//
// Each simulated rank runs as a real OS thread executing arbitrary C++ code
// (the actual MD computation), but *time* is virtual: every rank owns a
// virtual clock that is advanced explicitly (compute costs, communication
// costs). The engine serializes execution — exactly one rank thread (or the
// scheduler) runs at any instant — and always resumes the runnable rank with
// the smallest virtual clock. Cross-rank effects (message arrivals) are
// global events processed in virtual-time order.
//
// Correctness argument (conservative order): a rank is resumed only when its
// clock is the minimum over all runnable ranks and no pending event is
// earlier. Any message is scheduled with an arrival time no earlier than its
// sender's clock at the send, so when a rank executes at time t, every
// arrival <= t has already been delivered to its inbox. Ties are broken
// deterministically (event sequence numbers, then rank ids), which makes
// whole simulations bit-reproducible.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace repro::sim {

class Engine;

// A message (or any payload) delivered to a rank at a virtual time.
struct Delivery {
  double time = 0.0;
  std::uint64_t seq = 0;  // global order among equal-time deliveries
  std::any payload;
};

// Per-rank handle passed to the rank main function. All methods must be
// called from that rank's thread only.
class RankCtx {
 public:
  RankCtx(Engine* engine, int rank) : engine_(engine), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;
  double now() const;

  // Advances this rank's virtual clock (e.g. modeled computation time).
  // Cheap: does not reschedule.
  void advance(double dt);

  // Yields to the scheduler so that global virtual-time order is
  // re-established. Must be called before inspecting the inbox or touching
  // any state shared between ranks (the network resources, the message
  // store): after checkpoint() returns, every event with arrival <= now()
  // has been delivered and no other rank with a smaller clock is runnable.
  void checkpoint();

  // Blocks this rank until a new delivery arrives for it (the engine wakes
  // it with the delivery's time). Returns with now() >= the waking
  // delivery's time.
  void block();

  // Schedules a payload for delivery to rank dst at virtual time `time`
  // (must be >= now()).
  void post(double time, int dst, std::any payload);

  // Deliveries for this rank in arrival order. The consumer (e.g. the
  // simulated MPI layer) owns matching/removal semantics.
  std::deque<Delivery>& inbox();

 private:
  Engine* engine_;
  int rank_;
};

// Thrown inside rank threads when the run is being torn down after an error
// in some other rank; rank code should let it propagate.
struct AbortRun {};

class Engine {
 public:
  explicit Engine(int nranks);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }

  // Runs `rank_main` once per rank to completion. Throws util::Error on
  // deadlock (every live rank blocked with no pending events) and rethrows
  // the first exception escaping a rank main. An engine may be run
  // repeatedly; every run starts from a clean slate (no events, clocks and
  // counters at zero), even after a previous run aborted.
  void run(const std::function<void(RankCtx&)>& rank_main);

  // --- introspection / statistics (reset at each run() entry) ---------
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t context_switches() const { return context_switches_; }

 private:
  friend class RankCtx;

  enum class State { Ready, Blocked, Done };

  struct Rank;

  double now(int rank) const;
  void advance(int rank, double dt);
  void checkpoint(int rank);
  void block(int rank);
  void post(double time, int dst, std::any payload);
  std::deque<Delivery>& inbox(int rank);

  // Scheduler internals (run on the scheduler thread).
  void scheduler_loop();
  void deliver_front_event();
  int pick_next_ready() const;
  void resume(int rank);
  [[noreturn]] void deadlock(const std::string& where) const;

  // Handoff: rank thread -> scheduler.
  void yield_to_scheduler(int rank);

  struct Event {
    double time;
    std::uint64_t seq;
    int dst;
    std::any payload;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::vector<std::unique_ptr<Rank>> ranks_;
  void* sched_slot_ = nullptr;     // TurnSlot of the scheduler, valid in run()
  std::vector<Event> event_heap_;  // min-heap via std::push_heap/greater
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t context_switches_ = 0;
  bool aborting_ = false;
  std::exception_ptr first_error_;
};

}  // namespace repro::sim
