#include "sim/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <ucontext.h>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#define REPRO_FIBER_MMAP_STACKS 1
#endif

// Sanitizer detection. The fiber backend switches stacks in user space;
// AddressSanitizer must be told about every switch (or its fake-stack and
// stack-bounds bookkeeping corrupts), and ThreadSanitizer cannot follow
// fibers at all — so ASan gets the annotations below and TSan flips the
// default backend to threads (see default_engine_backend).
#if defined(__SANITIZE_ADDRESS__)
#define REPRO_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define REPRO_TSAN_BUILD 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#ifndef REPRO_ASAN_FIBERS
#define REPRO_ASAN_FIBERS 1
#endif
#endif
#if __has_feature(thread_sanitizer)
#ifndef REPRO_TSAN_BUILD
#define REPRO_TSAN_BUILD 1
#endif
#endif
#endif

#if defined(REPRO_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

#include "util/error.hpp"

namespace repro::sim {

namespace {

// ASan fiber-switch annotations (no-ops in non-ASan builds). Protocol:
// the context that is about to switch away calls start (saving its fake
// stack and naming the destination stack); the first statement executed in
// the destination calls finish (restoring the destination's fake stack and
// optionally learning the bounds of the stack just left).
inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#if defined(REPRO_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack, const void** bottom_old,
                               std::size_t* size_old) {
#if defined(REPRO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, bottom_old, size_old);
#else
  (void)fake_stack;
  if (bottom_old != nullptr) *bottom_old = nullptr;
  if (size_old != nullptr) *size_old = 0;
#endif
}

// Fiber stack size: $REPRO_FIBER_STACK_KB or 4 MiB. Address space only —
// pages are committed on first touch, so idle ranks cost a few KB each.
std::size_t fiber_stack_bytes() {
  static const std::size_t bytes = [] {
    if (const char* env = std::getenv("REPRO_FIBER_STACK_KB")) {
      const long kb = std::atol(env);
      if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
    }
    return std::size_t{4} * 1024 * 1024;
  }();
  return bytes;
}

// The engine whose fibers run on this thread; set for the duration of
// run_fibers. Fibers cannot outlive run(), and each engine's fibers all
// live on the thread that called run(), so a plain thread_local suffices
// even with several engines running on different sweep workers.
thread_local Engine* t_fiber_engine = nullptr;

// One-slot handshake: the owner may run only while `turn` is set. Used for
// both the scheduler and each rank thread; exactly one party holds its turn
// at any time, which serializes the whole simulation deterministically.
struct TurnSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool turn = false;

  void wait_for_turn() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return turn; });
    turn = false;
  }
  void give_turn() {
    {
      std::lock_guard<std::mutex> lk(mu);
      turn = true;
    }
    cv.notify_one();
  }
};

}  // namespace

const char* to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::kFiber:
      return "fiber";
    case EngineBackend::kThread:
      return "thread";
  }
  return "?";
}

EngineBackend parse_engine_backend(std::string_view name) {
  if (name == "fiber") return EngineBackend::kFiber;
  if (name == "thread") return EngineBackend::kThread;
  throw util::Error("unknown engine backend '" + std::string(name) +
                    "' (expected fiber or thread)");
}

EngineBackend default_engine_backend() {
  if (const char* env = std::getenv("REPRO_ENGINE")) {
    return parse_engine_backend(env);
  }
#if defined(REPRO_TSAN_BUILD)
  return EngineBackend::kThread;
#else
  return EngineBackend::kFiber;
#endif
}

// One simulated rank: clock, state, inbox, plus the execution-context
// state of whichever backend is active (thread + handshake slot, or fiber
// context + stack).
struct Engine::Rank {
  explicit Rank(int id_) : id(id_) {}
  ~Rank() { release_stack(); }

  int id;
  double clock = 0.0;
  State state = State::Ready;
  std::deque<Delivery> inbox;

  // Thread backend.
  std::thread thread;
  TurnSlot slot;

  // Fiber backend. The stack is allocated lazily on the first fiber run
  // and reused across runs of the same engine.
  ucontext_t ctx{};
  void* stack_base = nullptr;  // allocation base; first page is a guard
  std::size_t stack_alloc = 0;
  void* stack_lo = nullptr;  // usable stack bottom (what ucontext/ASan see)
  std::size_t stack_size = 0;
  void* asan_fake_stack = nullptr;

  void ensure_stack() {
    if (stack_base != nullptr) return;
    const std::size_t want = fiber_stack_bytes();
#if defined(REPRO_FIBER_MMAP_STACKS)
    const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    const std::size_t usable = ((want + page - 1) / page) * page;
    const std::size_t total = usable + page;
#if defined(MAP_STACK)
    const int flags = MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK;
#else
    const int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#endif
    void* base = mmap(nullptr, total, PROT_READ | PROT_WRITE, flags, -1, 0);
    REPRO_REQUIRE(base != MAP_FAILED, "fiber stack allocation failed");
    // Guard page below the stack: an overflow faults loudly instead of
    // silently corrupting a neighbouring fiber's stack.
    (void)mprotect(base, page, PROT_NONE);
    stack_base = base;
    stack_alloc = total;
    stack_lo = static_cast<char*>(base) + page;
    stack_size = usable;
#else
    stack_base = ::operator new(want);
    stack_alloc = want;
    stack_lo = stack_base;
    stack_size = want;
#endif
  }

  void release_stack() {
    if (stack_base == nullptr) return;
#if defined(REPRO_FIBER_MMAP_STACKS)
    (void)munmap(stack_base, stack_alloc);
#else
    ::operator delete(stack_base);
#endif
    stack_base = nullptr;
  }
};

Engine::Engine(int nranks, EngineBackend backend) : backend_(backend) {
  REPRO_REQUIRE(nranks >= 1, "engine needs at least one rank");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<Rank>(r));
  }
}

Engine::~Engine() = default;

int RankCtx::size() const { return engine_->size(); }
double RankCtx::now() const { return engine_->now(rank_); }
void RankCtx::advance(double dt) { engine_->advance(rank_, dt); }
void RankCtx::checkpoint() { engine_->checkpoint(rank_); }
void RankCtx::block() { engine_->block(rank_); }
void RankCtx::post(double time, int dst, Payload payload) {
  engine_->post(time, dst, std::move(payload));
}
std::deque<Delivery>& RankCtx::inbox() { return engine_->inbox(rank_); }

double Engine::now(int rank) const { return ranks_[rank]->clock; }

void Engine::advance(int rank, double dt) {
  REPRO_REQUIRE(dt >= 0.0, "cannot advance a clock backwards");
  ranks_[rank]->clock += dt;
}

void Engine::resume(int rank) {
  if (backend_ == EngineBackend::kThread) {
    resume_thread(rank);
  } else {
    resume_fiber(rank);
  }
}

void Engine::yield_to_scheduler(int rank) {
  ++context_switches_;
  if (backend_ == EngineBackend::kThread) {
    yield_thread(rank);
  } else {
    yield_fiber(rank);
  }
  if (aborting_) throw AbortRun{};
}

void Engine::checkpoint(int rank) {
  // State stays Ready; the scheduler resumes us once we are the
  // minimum-clock runnable rank and all due events are delivered.
  yield_to_scheduler(rank);
}

void Engine::block(int rank) {
  ranks_[rank]->state = State::Blocked;
  yield_to_scheduler(rank);
}

void Engine::post(double time, int dst, Payload payload) {
  REPRO_REQUIRE(dst >= 0 && dst < size(), "post: bad destination rank");
  event_heap_.push_back(Event{time, next_seq_++, dst, std::move(payload)});
  std::push_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
}

std::deque<Delivery>& Engine::inbox(int rank) { return ranks_[rank]->inbox; }

void Engine::deliver_front_event() {
  std::pop_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
  Event ev = std::move(event_heap_.back());
  event_heap_.pop_back();
  ++events_processed_;
  Rank& dst = *ranks_[ev.dst];
  dst.inbox.push_back(Delivery{ev.time, ev.seq, std::move(ev.payload)});
  if (dst.state == State::Blocked) {
    dst.state = State::Ready;
    // A woken rank resumes no earlier than the arrival that woke it.
    dst.clock = std::max(dst.clock, ev.time);
  }
}

int Engine::pick_next_ready() const {
  int best = -1;
  for (const auto& r : ranks_) {
    if (r->state != State::Ready) continue;
    if (best < 0 || r->clock < ranks_[best]->clock) best = r->id;
  }
  return best;
}

void Engine::deadlock(const std::string& where) const {
  std::ostringstream os;
  os << "simulation deadlock (" << where << "); rank states:";
  for (const auto& r : ranks_) {
    os << " [rank " << r->id << ": "
       << (r->state == State::Ready
               ? "ready"
               : (r->state == State::Blocked ? "blocked" : "done"))
       << " @t=" << r->clock << " inbox=" << r->inbox.size() << "]";
  }
  throw util::Error(os.str());
}

void Engine::scheduler_loop() {
  for (;;) {
    bool any_live = false;
    for (const auto& r : ranks_) {
      if (r->state != State::Done) any_live = true;
    }
    if (!any_live) return;
    if (first_error_ && !aborting_) {
      // Tear down remaining ranks: each resume throws AbortRun in the rank
      // context, unwinding it to completion.
      aborting_ = true;
    }
    if (aborting_) {
      for (auto& r : ranks_) {
        if (r->state != State::Done) {
          r->state = State::Ready;  // unblock so the abort can propagate
          resume(r->id);
        }
      }
      continue;
    }

    const int next = pick_next_ready();
    if (next < 0) {
      // Nobody is runnable: the next event (if any) must wake someone.
      if (event_heap_.empty()) deadlock("no ready ranks, no pending events");
      deliver_front_event();
      continue;
    }
    // Deliver every event due at or before the chosen rank's clock so that
    // its view of the world is complete when it runs. An event delivery can
    // wake a rank with an even smaller clock, so re-pick afterwards.
    if (!event_heap_.empty() &&
        event_heap_.front().time <= ranks_[next]->clock) {
      deliver_front_event();
      continue;
    }
    resume(next);
  }
}

void Engine::run(const std::function<void(RankCtx&)>& rank_main) {
  // All run-scoped state is reset here, not just the per-rank fields
  // below: a reused engine (retry paths, engine pooling) must not inherit
  // undelivered events, a sticky abort flag, or a stale error from an
  // earlier run — stale events would leak into the new run's inboxes, and
  // a sticky abort would kill every rank at its first yield.
  event_heap_.clear();
  next_seq_ = 0;
  events_processed_ = 0;
  context_switches_ = 0;
  aborting_ = false;
  first_error_ = nullptr;
  for (auto& r : ranks_) {
    r->state = State::Ready;
    r->clock = 0.0;
    r->inbox.clear();
  }

  const std::exception_ptr scheduler_error =
      backend_ == EngineBackend::kThread ? run_threads(rank_main)
                                         : run_fibers(rank_main);

  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (scheduler_error) std::rethrow_exception(scheduler_error);
}

// --- thread backend ----------------------------------------------------

void Engine::resume_thread(int rank) {
  ranks_[rank]->slot.give_turn();
  static_cast<TurnSlot*>(sched_slot_)->wait_for_turn();
}

void Engine::yield_thread(int rank) {
  static_cast<TurnSlot*>(sched_slot_)->give_turn();
  ranks_[rank]->slot.wait_for_turn();
}

std::exception_ptr Engine::run_threads(
    const std::function<void(RankCtx&)>& rank_main) {
  TurnSlot sched_slot;
  sched_slot_ = &sched_slot;

  for (auto& r : ranks_) {
    Rank* rp = r.get();
    r->thread = std::thread([this, rp, &rank_main] {
      rp->slot.wait_for_turn();
      try {
        if (!aborting_) {
          RankCtx ctx(this, rp->id);
          rank_main(ctx);
        }
      } catch (const AbortRun&) {
        // torn down after another rank failed
      } catch (...) {
        if (!first_error_) first_error_ = std::current_exception();
      }
      rp->state = State::Done;
      static_cast<TurnSlot*>(sched_slot_)->give_turn();
    });
  }

  std::exception_ptr scheduler_error;
  try {
    scheduler_loop();
  } catch (...) {
    // Deadlock: abort remaining ranks, then rethrow in run().
    scheduler_error = std::current_exception();
    aborting_ = true;
    for (auto& r : ranks_) {
      if (r->state != State::Done && r->thread.joinable()) {
        resume(r->id);
      }
    }
  }

  for (auto& r : ranks_) {
    if (r->thread.joinable()) r->thread.join();
  }
  sched_slot_ = nullptr;
  return scheduler_error;
}

// --- fiber backend -----------------------------------------------------

void Engine::resume_fiber(int rank) {
  Rank& r = *ranks_[rank];
  fiber_active_ = rank;
  asan_start_switch(&sched_fake_stack_, r.stack_lo, r.stack_size);
  swapcontext(static_cast<ucontext_t*>(sched_ctx_), &r.ctx);
  asan_finish_switch(sched_fake_stack_, nullptr, nullptr);
  fiber_active_ = -1;
}

void Engine::yield_fiber(int rank) {
  Rank& r = *ranks_[rank];
  asan_start_switch(&r.asan_fake_stack, sched_stack_bottom_,
                    sched_stack_size_);
  swapcontext(&r.ctx, static_cast<ucontext_t*>(sched_ctx_));
  asan_finish_switch(r.asan_fake_stack, nullptr, nullptr);
}

void Engine::fiber_trampoline() {
  Engine* e = t_fiber_engine;
  // First arrival on this fiber's stack: complete the switch and learn the
  // scheduler's stack bounds for the yields back.
  asan_finish_switch(nullptr, &e->sched_stack_bottom_,
                     &e->sched_stack_size_);
  e->fiber_main();
}

void Engine::fiber_main() {
  Rank& r = *ranks_[fiber_active_];
  try {
    if (!aborting_) {
      RankCtx ctx(this, r.id);
      (*fiber_rank_main_)(ctx);
    }
  } catch (const AbortRun&) {
    // torn down after another rank failed
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  r.state = State::Done;
  // Final switch home. The null fake-stack save tells ASan this fiber is
  // finished so its fake frames can be released.
  asan_start_switch(nullptr, sched_stack_bottom_, sched_stack_size_);
  swapcontext(&r.ctx, static_cast<ucontext_t*>(sched_ctx_));
  std::abort();  // a finished fiber must never be resumed
}

std::exception_ptr Engine::run_fibers(
    const std::function<void(RankCtx&)>& rank_main) {
  ucontext_t sched_ctx;
  sched_ctx_ = &sched_ctx;
  Engine* const prev_engine = t_fiber_engine;
  t_fiber_engine = this;
  fiber_rank_main_ = &rank_main;
  sched_fake_stack_ = nullptr;
  sched_stack_bottom_ = nullptr;
  sched_stack_size_ = 0;

  for (auto& r : ranks_) {
    r->ensure_stack();
    r->asan_fake_stack = nullptr;
    REPRO_REQUIRE(getcontext(&r->ctx) == 0, "getcontext failed");
    r->ctx.uc_stack.ss_sp = r->stack_lo;
    r->ctx.uc_stack.ss_size = r->stack_size;
    r->ctx.uc_link = nullptr;
    makecontext(&r->ctx, &Engine::fiber_trampoline, 0);
  }

  std::exception_ptr scheduler_error;
  try {
    scheduler_loop();
  } catch (...) {
    // Deadlock: resume every live fiber so AbortRun unwinds its stack
    // (running destructors) before the run returns. There are no threads
    // to join — a fully unwound fiber is simply never switched to again.
    scheduler_error = std::current_exception();
    aborting_ = true;
    for (auto& r : ranks_) {
      if (r->state != State::Done) resume(r->id);
    }
  }

  fiber_rank_main_ = nullptr;
  t_fiber_engine = prev_engine;
  sched_ctx_ = nullptr;
  return scheduler_error;
}

}  // namespace repro::sim
