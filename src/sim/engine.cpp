#include "sim/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/error.hpp"

namespace repro::sim {

namespace {

// One-slot handshake: the owner may run only while `turn` is set. Used for
// both the scheduler and each rank thread; exactly one party holds its turn
// at any time, which serializes the whole simulation deterministically.
struct TurnSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool turn = false;

  void wait_for_turn() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return turn; });
    turn = false;
  }
  void give_turn() {
    {
      std::lock_guard<std::mutex> lk(mu);
      turn = true;
    }
    cv.notify_one();
  }
};

}  // namespace

// One simulated rank: its thread, clock, state, inbox, and handshake slot.
struct Engine::Rank {
  explicit Rank(int id_) : id(id_) {}

  int id;
  double clock = 0.0;
  State state = State::Ready;
  std::deque<Delivery> inbox;
  std::thread thread;
  TurnSlot slot;
};

Engine::Engine(int nranks) {
  REPRO_REQUIRE(nranks >= 1, "engine needs at least one rank");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<Rank>(r));
  }
}

Engine::~Engine() = default;

int RankCtx::size() const { return engine_->size(); }
double RankCtx::now() const { return engine_->now(rank_); }
void RankCtx::advance(double dt) { engine_->advance(rank_, dt); }
void RankCtx::checkpoint() { engine_->checkpoint(rank_); }
void RankCtx::block() { engine_->block(rank_); }
void RankCtx::post(double time, int dst, std::any payload) {
  engine_->post(time, dst, std::move(payload));
}
std::deque<Delivery>& RankCtx::inbox() { return engine_->inbox(rank_); }

double Engine::now(int rank) const { return ranks_[rank]->clock; }

void Engine::advance(int rank, double dt) {
  REPRO_REQUIRE(dt >= 0.0, "cannot advance a clock backwards");
  ranks_[rank]->clock += dt;
}

void Engine::yield_to_scheduler(int rank) {
  Rank& r = *ranks_[rank];
  ++context_switches_;
  static_cast<TurnSlot*>(sched_slot_)->give_turn();
  r.slot.wait_for_turn();
  if (aborting_) throw AbortRun{};
}

void Engine::checkpoint(int rank) {
  // State stays Ready; the scheduler resumes us once we are the
  // minimum-clock runnable rank and all due events are delivered.
  yield_to_scheduler(rank);
}

void Engine::block(int rank) {
  ranks_[rank]->state = State::Blocked;
  yield_to_scheduler(rank);
}

void Engine::post(double time, int dst, std::any payload) {
  REPRO_REQUIRE(dst >= 0 && dst < size(), "post: bad destination rank");
  event_heap_.push_back(Event{time, next_seq_++, dst, std::move(payload)});
  std::push_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
}

std::deque<Delivery>& Engine::inbox(int rank) { return ranks_[rank]->inbox; }

void Engine::deliver_front_event() {
  std::pop_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
  Event ev = std::move(event_heap_.back());
  event_heap_.pop_back();
  ++events_processed_;
  Rank& dst = *ranks_[ev.dst];
  dst.inbox.push_back(Delivery{ev.time, ev.seq, std::move(ev.payload)});
  if (dst.state == State::Blocked) {
    dst.state = State::Ready;
    // A woken rank resumes no earlier than the arrival that woke it.
    dst.clock = std::max(dst.clock, ev.time);
  }
}

int Engine::pick_next_ready() const {
  int best = -1;
  for (const auto& r : ranks_) {
    if (r->state != State::Ready) continue;
    if (best < 0 || r->clock < ranks_[best]->clock) best = r->id;
  }
  return best;
}

void Engine::resume(int rank) {
  ranks_[rank]->slot.give_turn();
  static_cast<TurnSlot*>(sched_slot_)->wait_for_turn();
}

void Engine::deadlock(const std::string& where) const {
  std::ostringstream os;
  os << "simulation deadlock (" << where << "); rank states:";
  for (const auto& r : ranks_) {
    os << " [rank " << r->id << ": "
       << (r->state == State::Ready
               ? "ready"
               : (r->state == State::Blocked ? "blocked" : "done"))
       << " @t=" << r->clock << " inbox=" << r->inbox.size() << "]";
  }
  throw util::Error(os.str());
}

void Engine::scheduler_loop() {
  for (;;) {
    bool any_live = false;
    for (const auto& r : ranks_) {
      if (r->state != State::Done) any_live = true;
    }
    if (!any_live) return;
    if (first_error_ && !aborting_) {
      // Tear down remaining ranks: each resume throws AbortRun in the rank
      // thread, unwinding it to completion.
      aborting_ = true;
    }
    if (aborting_) {
      for (auto& r : ranks_) {
        if (r->state != State::Done) {
          r->state = State::Ready;  // unblock so the abort can propagate
          resume(r->id);
        }
      }
      continue;
    }

    const int next = pick_next_ready();
    if (next < 0) {
      // Nobody is runnable: the next event (if any) must wake someone.
      if (event_heap_.empty()) deadlock("no ready ranks, no pending events");
      deliver_front_event();
      continue;
    }
    // Deliver every event due at or before the chosen rank's clock so that
    // its view of the world is complete when it runs. An event delivery can
    // wake a rank with an even smaller clock, so re-pick afterwards.
    if (!event_heap_.empty() &&
        event_heap_.front().time <= ranks_[next]->clock) {
      deliver_front_event();
      continue;
    }
    resume(next);
  }
}

void Engine::run(const std::function<void(RankCtx&)>& rank_main) {
  TurnSlot sched_slot;
  sched_slot_ = &sched_slot;

  // All run-scoped state is reset here, not just the per-rank fields
  // below: a reused engine (retry paths, engine pooling) must not inherit
  // undelivered events, a sticky abort flag, or a stale error from an
  // earlier run — stale events would leak into the new run's inboxes, and
  // a sticky abort would kill every rank at its first yield.
  event_heap_.clear();
  next_seq_ = 0;
  events_processed_ = 0;
  context_switches_ = 0;
  aborting_ = false;
  first_error_ = nullptr;

  for (auto& r : ranks_) {
    r->state = State::Ready;
    r->clock = 0.0;
    r->inbox.clear();
    Rank* rp = r.get();
    r->thread = std::thread([this, rp, &rank_main] {
      rp->slot.wait_for_turn();
      try {
        if (!aborting_) {
          RankCtx ctx(this, rp->id);
          rank_main(ctx);
        }
      } catch (const AbortRun&) {
        // torn down after another rank failed
      } catch (...) {
        if (!first_error_) first_error_ = std::current_exception();
      }
      rp->state = State::Done;
      static_cast<TurnSlot*>(sched_slot_)->give_turn();
    });
  }

  std::exception_ptr scheduler_error;
  try {
    scheduler_loop();
  } catch (...) {
    // Deadlock: abort remaining ranks, then rethrow below.
    scheduler_error = std::current_exception();
    aborting_ = true;
    for (auto& r : ranks_) {
      if (r->state != State::Done && r->thread.joinable()) {
        resume(r->id);
      }
    }
  }

  for (auto& r : ranks_) {
    if (r->thread.joinable()) r->thread.join();
  }
  sched_slot_ = nullptr;

  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (scheduler_error) std::rethrow_exception(scheduler_error);
}

}  // namespace repro::sim
