#include "sim/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <ucontext.h>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#define REPRO_FIBER_MMAP_STACKS 1
#endif

// Fast userspace context switch. glibc's swapcontext makes a
// rt_sigprocmask syscall on every switch (~220 ns each way on this class
// of hardware); at three handoffs per rank-step that syscall dominates
// large-p runs. On x86-64 we switch stacks directly, saving only what the
// SysV ABI makes the callee's problem: the six callee-saved GP registers
// plus the MXCSR/x87 control words. Signal masks are per-thread, not
// per-fiber, so skipping them is semantically safe here. Define
// REPRO_FIBER_UCONTEXT to force the portable ucontext path.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(REPRO_FIBER_UCONTEXT)
#define REPRO_FIBER_FAST_SWITCH 1
#endif

#if defined(REPRO_FIBER_FAST_SWITCH)
extern "C" void repro_fiber_swap(void** save_sp, void* load_sp);
asm(R"(
.text
.align 16
.globl repro_fiber_swap
.hidden repro_fiber_swap
.type repro_fiber_swap, @function
repro_fiber_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
.size repro_fiber_swap, .-repro_fiber_swap
)");
#endif

// Sanitizer detection. The fiber backend switches stacks in user space;
// AddressSanitizer must be told about every switch (or its fake-stack and
// stack-bounds bookkeeping corrupts), and ThreadSanitizer cannot follow
// fibers at all — so ASan gets the annotations below and TSan flips the
// default backend to threads (see default_engine_backend).
#if defined(__SANITIZE_ADDRESS__)
#define REPRO_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define REPRO_TSAN_BUILD 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#ifndef REPRO_ASAN_FIBERS
#define REPRO_ASAN_FIBERS 1
#endif
#endif
#if __has_feature(thread_sanitizer)
#ifndef REPRO_TSAN_BUILD
#define REPRO_TSAN_BUILD 1
#endif
#endif
#endif

#if defined(REPRO_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

#include "util/error.hpp"

namespace repro::sim {

namespace {

// ASan fiber-switch annotations (no-ops in non-ASan builds). Protocol:
// the context that is about to switch away calls start (saving its fake
// stack and naming the destination stack); the first statement executed in
// the destination calls finish (restoring the destination's fake stack and
// optionally learning the bounds of the stack just left).
inline void asan_start_switch(void** fake_stack_save, const void* bottom,
                              std::size_t size) {
#if defined(REPRO_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void asan_finish_switch(void* fake_stack, const void** bottom_old,
                               std::size_t* size_old) {
#if defined(REPRO_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack, bottom_old, size_old);
#else
  (void)fake_stack;
  if (bottom_old != nullptr) *bottom_old = nullptr;
  if (size_old != nullptr) *size_old = 0;
#endif
}

// Fiber stack size: $REPRO_FIBER_STACK_KB or 4 MiB. Address space only —
// pages are committed on first touch, so idle ranks cost a few KB each.
// Malformed env values fail loudly (see parse_fiber_stack_kb): a silently
// accepted garbage value used to produce a zero-size stack and a crash at
// the first fiber switch.
std::size_t fiber_stack_bytes() {
  static const std::size_t bytes = [] {
    if (const char* env = std::getenv("REPRO_FIBER_STACK_KB")) {
      return parse_fiber_stack_kb(env);
    }
    return std::size_t{4} * 1024 * 1024;
  }();
  return bytes;
}

#if defined(REPRO_FIBER_FAST_SWITCH)
// Builds the initial stack image repro_fiber_swap's restore path consumes:
// the FP-control word, six zeroed callee-saved registers, the entry
// address its final `ret` jumps to, and a null fake return address so the
// entry function sees an ABI-conformant rsp (≡ 8 mod 16) and a walk off
// its frame faults loudly instead of executing garbage.
void* make_fiber_sp(void* lo, std::size_t size, void (*entry)()) {
  std::uintptr_t top = reinterpret_cast<std::uintptr_t>(lo) + size;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* words = reinterpret_cast<std::uint64_t*>(top);
  words[-1] = 0;  // fake return address for `entry`
  words[-2] = reinterpret_cast<std::uint64_t>(entry);
  for (int i = 3; i <= 8; ++i) words[-i] = 0;  // rbp, rbx, r12..r15
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  words[-9] = static_cast<std::uint64_t>(mxcsr) |
              (static_cast<std::uint64_t>(fcw) << 32);
  return words - 9;
}
#endif

// The engine whose fibers run on this thread; set for the duration of
// run_fibers. Fibers cannot outlive run(), and each engine's fibers all
// live on the thread that called run(), so a plain thread_local suffices
// even with several engines running on different sweep workers.
thread_local Engine* t_fiber_engine = nullptr;

// One-slot handshake: the owner may run only while `turn` is set. Used for
// both the scheduler and each rank thread; exactly one party holds its turn
// at any time, which serializes the whole simulation deterministically.
struct TurnSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool turn = false;

  void wait_for_turn() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return turn; });
    turn = false;
  }
  void give_turn() {
    {
      std::lock_guard<std::mutex> lk(mu);
      turn = true;
    }
    cv.notify_one();
  }
};

}  // namespace

const char* to_string(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::kFiber:
      return "fiber";
    case EngineBackend::kThread:
      return "thread";
  }
  return "?";
}

EngineBackend parse_engine_backend(std::string_view name) {
  if (name == "fiber") return EngineBackend::kFiber;
  if (name == "thread") return EngineBackend::kThread;
  throw util::Error("unknown engine backend '" + std::string(name) +
                    "' (expected fiber or thread)");
}

std::size_t parse_fiber_stack_kb(std::string_view text) {
  // Strict hand parse: std::atol would accept "12abc" (and return 0 for
  // pure garbage, which a naive `> 0` check then maps to the default —
  // or worse, "0" produced a zero-size stack).
  std::size_t i = 0;
  bool negative = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    negative = text[i] == '-';
    ++i;
  }
  long kb = 0;
  const std::size_t digits_begin = i;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') break;
    if (kb > (1L << 40)) break;  // overflow guard; far beyond any real stack
    kb = kb * 10 + (text[i] - '0');
  }
  if (i != text.size() || i == digits_begin) {
    throw util::Error("REPRO_FIBER_STACK_KB: '" + std::string(text) +
                      "' is not a number (expected stack size in KiB)");
  }
  if (negative || kb == 0) {
    throw util::Error("REPRO_FIBER_STACK_KB: '" + std::string(text) +
                      "' must be a positive stack size in KiB");
  }
  // Tiny-but-positive values are clamped instead of rejected: the guard
  // page already costs 4 KiB, and anything below the floor would overflow
  // on the first real call frame.
  return std::max(static_cast<std::size_t>(kb) * 1024, kMinFiberStackBytes);
}

EngineBackend default_engine_backend() {
  if (const char* env = std::getenv("REPRO_ENGINE")) {
    return parse_engine_backend(env);
  }
#if defined(REPRO_TSAN_BUILD)
  return EngineBackend::kThread;
#else
  return EngineBackend::kFiber;
#endif
}

// One simulated rank: clock, state, inbox, plus the execution-context
// state of whichever backend is active (thread + handshake slot, or fiber
// context + stack).
struct Engine::Rank {
  explicit Rank(int id_) : id(id_) {}

  int id;
  double clock = 0.0;
  State state = State::Ready;
  std::deque<Delivery> inbox;

  // Thread backend.
  std::thread thread;
  TurnSlot slot;

  // Fiber backend. The stack is borrowed from the engine's pool on the
  // fiber's first resume and returned the moment the rank finishes, so a
  // run never holds more stacks than it has simultaneously live fibers.
#if defined(REPRO_FIBER_FAST_SWITCH)
  void* fiber_sp = nullptr;  // saved stack pointer while switched away
#else
  ucontext_t ctx{};
#endif
  bool fiber_started = false;
  StackBlock stack;  // empty (base == nullptr) unless started and live
  void* asan_fake_stack = nullptr;
};

void Engine::free_stack(StackBlock& block) {
  if (block.base == nullptr) return;
#if defined(REPRO_FIBER_MMAP_STACKS)
  (void)munmap(block.base, block.alloc);
#else
  ::operator delete(block.base);
#endif
  block = StackBlock{};
}

Engine::StackBlock Engine::acquire_stack() {
  if (!stack_pool_.empty()) {
    StackBlock block = stack_pool_.back();
    stack_pool_.pop_back();
    return block;
  }
  StackBlock block;
  const std::size_t want = fiber_stack_bytes();
#if defined(REPRO_FIBER_MMAP_STACKS)
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t usable = ((want + page - 1) / page) * page;
  const std::size_t total = usable + page;
#if defined(MAP_STACK)
  const int flags = MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK;
#else
  const int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#endif
  void* base = mmap(nullptr, total, PROT_READ | PROT_WRITE, flags, -1, 0);
  REPRO_REQUIRE(base != MAP_FAILED, "fiber stack allocation failed");
  // Guard page below the stack: an overflow faults loudly instead of
  // silently corrupting a neighbouring fiber's stack.
  (void)mprotect(base, page, PROT_NONE);
  block.base = base;
  block.alloc = total;
  block.lo = static_cast<char*>(base) + page;
  block.size = usable;
#else
  block.base = ::operator new(want);
  block.alloc = want;
  block.lo = block.base;
  block.size = want;
#endif
  return block;
}

Engine::Engine(int nranks, EngineBackend backend) : backend_(backend) {
  REPRO_REQUIRE(nranks >= 1, "engine needs at least one rank");
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<Rank>(r));
  }
}

Engine::~Engine() {
  for (auto& r : ranks_) free_stack(r->stack);
  for (StackBlock& block : stack_pool_) free_stack(block);
}

int RankCtx::size() const { return engine_->size(); }
double RankCtx::now() const { return engine_->now(rank_); }
void RankCtx::advance(double dt) { engine_->advance(rank_, dt); }
void RankCtx::checkpoint() { engine_->checkpoint(rank_); }
void RankCtx::block() { engine_->block(rank_); }
void RankCtx::post(double time, int dst, Payload payload) {
  engine_->post(time, dst, std::move(payload));
}
std::deque<Delivery>& RankCtx::inbox() { return engine_->inbox(rank_); }

double Engine::now(int rank) const { return ranks_[rank]->clock; }

void Engine::advance(int rank, double dt) {
  REPRO_REQUIRE(dt >= 0.0, "cannot advance a clock backwards");
  ranks_[rank]->clock += dt;
}

void Engine::resume(int rank) {
  if (backend_ == EngineBackend::kThread) {
    resume_thread(rank);
  } else {
    resume_fiber(rank);
  }
}

void Engine::yield_to_scheduler(int rank) {
  ++context_switches_;
  if (backend_ == EngineBackend::kThread) {
    yield_thread(rank);
  } else {
    yield_fiber(rank);
  }
  if (aborting_) throw AbortRun{};
}

void Engine::checkpoint(int rank) {
  // State stays Ready; the scheduler resumes us once we are the
  // minimum-clock runnable rank and all due events are delivered.
  yield_to_scheduler(rank);
}

void Engine::block(int rank) {
  ranks_[rank]->state = State::Blocked;
  yield_to_scheduler(rank);
}

void Engine::post(double time, int dst, Payload payload) {
  REPRO_REQUIRE(dst >= 0 && dst < size(), "post: bad destination rank");
  event_heap_.push_back(Event{time, next_seq_++, dst, std::move(payload)});
  std::push_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
}

std::deque<Delivery>& Engine::inbox(int rank) { return ranks_[rank]->inbox; }

void Engine::deliver_front_event() {
  std::pop_heap(event_heap_.begin(), event_heap_.end(), std::greater<>{});
  Event ev = std::move(event_heap_.back());
  event_heap_.pop_back();
  ++events_processed_;
  Rank& dst = *ranks_[ev.dst];
  dst.inbox.push_back(Delivery{ev.time, ev.seq, std::move(ev.payload)});
  if (dst.state == State::Blocked) {
    dst.state = State::Ready;
    // A woken rank resumes no earlier than the arrival that woke it.
    dst.clock = std::max(dst.clock, ev.time);
    push_ready(dst.id);
  }
}

void Engine::push_ready(int rank) {
  ready_heap_.push_back(ReadyEntry{ranks_[rank]->clock, rank});
  std::push_heap(ready_heap_.begin(), ready_heap_.end(), std::greater<>{});
}

void Engine::mark_done(int rank) {
  ranks_[rank]->state = State::Done;
  --live_ranks_;
}

void Engine::deadlock(const std::string& where) const {
  // A deadlock report at p=4096 must stay readable (and cheap to build):
  // summarize the state counts and show only the first few live ranks.
  std::ostringstream os;
  int ready = 0;
  int blocked = 0;
  int done = 0;
  for (const auto& r : ranks_) {
    switch (r->state) {
      case State::Ready:
        ++ready;
        break;
      case State::Blocked:
        ++blocked;
        break;
      case State::Done:
        ++done;
        break;
    }
  }
  os << "simulation deadlock (" << where << "); " << ranks_.size()
     << " ranks: " << ready << " ready, " << blocked << " blocked, " << done
     << " done;";
  constexpr int kMaxListed = 8;
  int listed = 0;
  for (const auto& r : ranks_) {
    if (r->state == State::Done) continue;
    if (listed == kMaxListed) break;
    os << " [rank " << r->id << ": "
       << (r->state == State::Ready ? "ready" : "blocked")
       << " @t=" << r->clock << " inbox=" << r->inbox.size() << "]";
    ++listed;
  }
  const int live = ready + blocked;
  if (live > listed) os << " (+" << live - listed << " more)";
  throw util::Error(os.str());
}

void Engine::scheduler_loop() {
  for (;;) {
    if (live_ranks_ == 0) return;
    if (first_error_ && !aborting_) {
      // Tear down remaining ranks: each resume throws AbortRun in the rank
      // context, unwinding it to completion.
      aborting_ = true;
    }
    if (aborting_) {
      for (auto& r : ranks_) {
        if (r->state != State::Done) {
          r->state = State::Ready;  // unblock so the abort can propagate
          resume(r->id);
        }
      }
      continue;
    }

    if (ready_heap_.empty()) {
      // Nobody is runnable: the next event (if any) must wake someone.
      if (event_heap_.empty()) deadlock("no ready ranks, no pending events");
      deliver_front_event();
      continue;
    }
    // Deliver every event due at or before the chosen rank's clock so that
    // its view of the world is complete when it runs. An event delivery can
    // wake a rank with an even smaller clock, so re-peek afterwards. The
    // heap top is exact (never stale): a parked Ready rank's clock cannot
    // change, so entries are pushed once and popped exactly when resumed.
    const ReadyEntry next = ready_heap_.front();
    if (!event_heap_.empty() && event_heap_.front().time <= next.clock) {
      deliver_front_event();
      continue;
    }
    std::pop_heap(ready_heap_.begin(), ready_heap_.end(), std::greater<>{});
    ready_heap_.pop_back();
    resume(next.rank);
    // The rank yielded: if it is still runnable (checkpoint), re-park it
    // with its advanced clock; Blocked ranks re-enter through an event
    // wake, Done ranks never run again.
    if (ranks_[next.rank]->state == State::Ready) push_ready(next.rank);
  }
}

void Engine::run(const std::function<void(RankCtx&)>& rank_main) {
  // All run-scoped state is reset here, not just the per-rank fields
  // below: a reused engine (retry paths, engine pooling) must not inherit
  // undelivered events, a sticky abort flag, or a stale error from an
  // earlier run — stale events would leak into the new run's inboxes, and
  // a sticky abort would kill every rank at its first yield.
  event_heap_.clear();
  next_seq_ = 0;
  events_processed_ = 0;
  context_switches_ = 0;
  aborting_ = false;
  first_error_ = nullptr;
  live_ranks_ = size();
  ready_heap_.clear();
  ready_heap_.reserve(ranks_.size());
  for (auto& r : ranks_) {
    r->state = State::Ready;
    r->clock = 0.0;
    r->inbox.clear();
    r->fiber_started = false;
    // All entries share clock 0 and ascend in rank id, so the vector is
    // already a valid min-(clock, rank) heap.
    ready_heap_.push_back(ReadyEntry{0.0, r->id});
  }

  const std::exception_ptr scheduler_error =
      backend_ == EngineBackend::kThread ? run_threads(rank_main)
                                         : run_fibers(rank_main);

  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (scheduler_error) std::rethrow_exception(scheduler_error);
}

// --- thread backend ----------------------------------------------------

void Engine::resume_thread(int rank) {
  ranks_[rank]->slot.give_turn();
  static_cast<TurnSlot*>(sched_slot_)->wait_for_turn();
}

void Engine::yield_thread(int rank) {
  static_cast<TurnSlot*>(sched_slot_)->give_turn();
  ranks_[rank]->slot.wait_for_turn();
}

std::exception_ptr Engine::run_threads(
    const std::function<void(RankCtx&)>& rank_main) {
  TurnSlot sched_slot;
  sched_slot_ = &sched_slot;

  for (auto& r : ranks_) {
    Rank* rp = r.get();
    r->thread = std::thread([this, rp, &rank_main] {
      rp->slot.wait_for_turn();
      try {
        if (!aborting_) {
          RankCtx ctx(this, rp->id);
          rank_main(ctx);
        }
      } catch (const AbortRun&) {
        // torn down after another rank failed
      } catch (...) {
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Serialized by the turn protocol: only this thread runs right now.
      mark_done(rp->id);
      static_cast<TurnSlot*>(sched_slot_)->give_turn();
    });
  }

  std::exception_ptr scheduler_error;
  try {
    scheduler_loop();
  } catch (...) {
    // Deadlock: abort remaining ranks, then rethrow in run().
    scheduler_error = std::current_exception();
    aborting_ = true;
    for (auto& r : ranks_) {
      if (r->state != State::Done && r->thread.joinable()) {
        resume(r->id);
      }
    }
  }

  for (auto& r : ranks_) {
    if (r->thread.joinable()) r->thread.join();
  }
  sched_slot_ = nullptr;
  return scheduler_error;
}

// --- fiber backend -----------------------------------------------------

void Engine::start_fiber(Rank& r) {
  // Lazy start: the stack is borrowed from the pool (or mapped fresh) on
  // the fiber's first resume, not when the run begins — so stacks freed by
  // early-finishing ranks are reused by ranks that start later.
  r.stack = acquire_stack();
  r.asan_fake_stack = nullptr;
#if defined(REPRO_FIBER_FAST_SWITCH)
  r.fiber_sp =
      make_fiber_sp(r.stack.lo, r.stack.size, &Engine::fiber_trampoline);
#else
  REPRO_REQUIRE(getcontext(&r.ctx) == 0, "getcontext failed");
  r.ctx.uc_stack.ss_sp = r.stack.lo;
  r.ctx.uc_stack.ss_size = r.stack.size;
  r.ctx.uc_link = nullptr;
  makecontext(&r.ctx, &Engine::fiber_trampoline, 0);
#endif
  r.fiber_started = true;
}

void Engine::resume_fiber(int rank) {
  Rank& r = *ranks_[rank];
  if (!r.fiber_started) start_fiber(r);
  fiber_active_ = rank;
  asan_start_switch(&sched_fake_stack_, r.stack.lo, r.stack.size);
#if defined(REPRO_FIBER_FAST_SWITCH)
  repro_fiber_swap(static_cast<void**>(sched_ctx_), r.fiber_sp);
#else
  swapcontext(static_cast<ucontext_t*>(sched_ctx_), &r.ctx);
#endif
  asan_finish_switch(sched_fake_stack_, nullptr, nullptr);
  fiber_active_ = -1;
  if (r.state == State::Done && r.stack.base != nullptr) {
    // The fiber has fully unwound (its last act was the final switch
    // home), so its stack is idle and can serve the next starting fiber.
    stack_pool_.push_back(r.stack);
    r.stack = StackBlock{};
  }
}

void Engine::yield_fiber(int rank) {
  Rank& r = *ranks_[rank];
  asan_start_switch(&r.asan_fake_stack, sched_stack_bottom_,
                    sched_stack_size_);
#if defined(REPRO_FIBER_FAST_SWITCH)
  repro_fiber_swap(&r.fiber_sp, *static_cast<void**>(sched_ctx_));
#else
  swapcontext(&r.ctx, static_cast<ucontext_t*>(sched_ctx_));
#endif
  asan_finish_switch(r.asan_fake_stack, nullptr, nullptr);
}

void Engine::fiber_main() {
  Rank& r = *ranks_[fiber_active_];
  try {
    if (!aborting_) {
      RankCtx ctx(this, r.id);
      (*fiber_rank_main_)(ctx);
    }
  } catch (const AbortRun&) {
    // torn down after another rank failed
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  mark_done(r.id);
  // Final switch home. The null fake-stack save tells ASan this fiber is
  // finished so its fake frames can be released.
  asan_start_switch(nullptr, sched_stack_bottom_, sched_stack_size_);
#if defined(REPRO_FIBER_FAST_SWITCH)
  void* dead_sp = nullptr;  // nothing will ever switch back here
  repro_fiber_swap(&dead_sp, *static_cast<void**>(sched_ctx_));
#else
  swapcontext(&r.ctx, static_cast<ucontext_t*>(sched_ctx_));
#endif
  std::abort();  // a finished fiber must never be resumed
}

void Engine::fiber_trampoline() {
  Engine* e = t_fiber_engine;
  // First arrival on this fiber's stack: complete the switch and learn the
  // scheduler's stack bounds for the yields back.
  asan_finish_switch(nullptr, &e->sched_stack_bottom_,
                     &e->sched_stack_size_);
  e->fiber_main();
}

std::exception_ptr Engine::run_fibers(
    const std::function<void(RankCtx&)>& rank_main) {
#if defined(REPRO_FIBER_FAST_SWITCH)
  // The scheduler context is just its saved stack pointer: resume_fiber
  // writes this slot on the way out and yield_fiber reads it on the way
  // back, all within this frame's lifetime.
  void* sched_sp = nullptr;
  sched_ctx_ = &sched_sp;
#else
  ucontext_t sched_ctx;
  sched_ctx_ = &sched_ctx;
#endif
  Engine* const prev_engine = t_fiber_engine;
  t_fiber_engine = this;
  fiber_rank_main_ = &rank_main;
  sched_fake_stack_ = nullptr;
  sched_stack_bottom_ = nullptr;
  sched_stack_size_ = 0;

  std::exception_ptr scheduler_error;
  try {
    scheduler_loop();
  } catch (...) {
    // Deadlock: resume every live fiber so AbortRun unwinds its stack
    // (running destructors) before the run returns. There are no threads
    // to join — a fully unwound fiber is simply never switched to again.
    scheduler_error = std::current_exception();
    aborting_ = true;
    for (auto& r : ranks_) {
      if (r->state != State::Done) resume(r->id);
    }
  }

  fiber_rank_main_ = nullptr;
  t_fiber_engine = prev_engine;
  sched_ctx_ = nullptr;
  return scheduler_error;
}

}  // namespace repro::sim
