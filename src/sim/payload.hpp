// Type-erased message payload with small-buffer storage.
//
// The engine used to carry deliveries as std::any, whose small-object
// buffer (16 bytes on libstdc++) is too small for mpi::Packet — so every
// simulated message paid a heap allocation on post and a free on consume.
// Payload is the same idea with a buffer sized for the real payload types
// (see mpi/comm.hpp) and move-only semantics: posting a message moves the
// payload through the event heap and into the inbox without ever touching
// the allocator. Types larger than the buffer (or with throwing moves)
// still work via a heap fallback, so test code can post anything.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace repro::sim {

class Payload {
 public:
  // Sized for mpi::Packet (the dominant payload); see the static_assert in
  // mpi/comm.hpp that keeps the two in sync.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  Payload() noexcept : vt_(nullptr) {}

  template <typename T, typename D = std::decay_t<T>,
            typename = std::enable_if_t<!std::is_same_v<D, Payload>>>
  Payload(T&& value) : vt_(&vtable_for<D>) {  // NOLINT: implicit, like any
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<T>(value));
    } else {
      heap_ = new D(std::forward<T>(value));
    }
  }

  Payload(Payload&& other) noexcept { steal(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { reset(); }

  bool has_value() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(slot());
      vt_ = nullptr;
    }
  }

  // Typed access, mirroring std::any_cast<T>(&a): null on type mismatch
  // (or empty payload). The identity check compares vtable addresses —
  // vtable_for<T> is an inline variable, so there is exactly one instance
  // of it per type across the whole program.
  template <typename T>
  T* get_if() noexcept {
    return vt_ == &vtable_for<T> ? static_cast<T*>(slot()) : nullptr;
  }
  template <typename T>
  const T* get_if() const noexcept {
    return vt_ == &vtable_for<T>
               ? static_cast<const T*>(const_cast<Payload*>(this)->slot())
               : nullptr;
  }

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineSize && alignof(T) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<T>;
  }

 private:
  struct VTable {
    bool inline_storage;
    void (*destroy)(void* obj) noexcept;
    // Move-construct the object into dst_buf from src_obj, destroying the
    // source (inline storage only; heap payloads just steal the pointer).
    void (*relocate)(void* dst_buf, void* src_obj) noexcept;
  };

  template <typename T>
  static void destroy_inline(void* obj) noexcept {
    static_cast<T*>(obj)->~T();
  }
  template <typename T>
  static void destroy_heap(void* obj) noexcept {
    delete static_cast<T*>(obj);
  }
  template <typename T>
  static void relocate_inline(void* dst_buf, void* src_obj) noexcept {
    ::new (dst_buf) T(std::move(*static_cast<T*>(src_obj)));
    static_cast<T*>(src_obj)->~T();
  }

  template <typename T>
  static inline const VTable vtable_for{
      fits_inline<T>(),
      fits_inline<T>() ? &destroy_inline<T> : &destroy_heap<T>,
      fits_inline<T>() ? &relocate_inline<T> : nullptr,
  };

  void* slot() noexcept {
    return vt_ != nullptr && vt_->inline_storage ? static_cast<void*>(buf_)
                                                 : heap_;
  }

  void steal(Payload& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->inline_storage) {
        vt_->relocate(buf_, other.buf_);
      } else {
        heap_ = other.heap_;
      }
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_;
  union {
    alignas(kInlineAlign) unsigned char buf_[kInlineSize];
    void* heap_;
  };
};

}  // namespace repro::sim
