// Serially-reusable simulated resources (NICs, links, interrupt CPUs).
//
// A Resource tracks the virtual time at which it next becomes free. Callers
// acquire it for a duration starting no earlier than a requested time; the
// returned interval reflects queueing behind earlier users. Because the
// engine executes ranks in nondecreasing virtual-time order, acquisitions
// arrive in nondecreasing request order and the single `free_at` scalar
// models a FIFO queue exactly.
#pragma once

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace repro::sim {

struct Interval {
  double begin = 0.0;
  double end = 0.0;
  double duration() const { return end - begin; }
  // Time spent queued before service started, relative to the request time.
  double wait(double requested) const { return begin - requested; }
};

class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  // Occupies the resource for `duration`, starting at the later of `at` and
  // the time the resource frees up. Returns the service interval.
  Interval acquire(double at, double duration) {
    REPRO_REQUIRE(duration >= 0.0, "resource occupancy must be nonnegative");
    const double begin = std::max(at, free_at_);
    free_at_ = begin + duration;
    busy_ += duration;
    ++acquisitions_;
    const double wait = begin - at;
    queue_wait_ += wait;
    max_queue_wait_ = std::max(max_queue_wait_, wait);
    return Interval{begin, free_at_};
  }

  double free_at() const { return free_at_; }
  double busy_time() const { return busy_; }
  std::size_t acquisitions() const { return acquisitions_; }
  const std::string& name() const { return name_; }

  // --- utilization counters -------------------------------------------
  // Total time acquirers spent queued behind earlier users (sum over
  // acquisitions of service begin minus request time), and the worst
  // single wait. Together with busy_time() these describe how contended
  // the resource was over a run.
  double queue_wait_time() const { return queue_wait_; }
  double max_queue_wait() const { return max_queue_wait_; }
  double mean_queue_wait() const {
    return acquisitions_ > 0
               ? queue_wait_ / static_cast<double>(acquisitions_)
               : 0.0;
  }
  // Fraction of `makespan` the resource spent serving. Callers supply the
  // observation window (the resource does not know when the run ended).
  double utilization(double makespan) const {
    return makespan > 0.0 ? busy_ / makespan : 0.0;
  }

  void reset() {
    free_at_ = 0.0;
    busy_ = 0.0;
    acquisitions_ = 0;
    queue_wait_ = 0.0;
    max_queue_wait_ = 0.0;
  }

 private:
  std::string name_;
  double free_at_ = 0.0;
  double busy_ = 0.0;
  std::size_t acquisitions_ = 0;
  double queue_wait_ = 0.0;
  double max_queue_wait_ = 0.0;
};

}  // namespace repro::sim
