// Tests for the measurement-driven load balancer: ldb= spec parsing and
// error paths, the work-unit grid and cold-start packing, the greedy /
// refine rebalance kernels, physics invariance and determinism of the
// balanced runs (across reruns, backends, and fault injection), the
// run-level predictor pins (message/byte totals exact against channel
// counters), the pair-cost packing envelope, straggler recovery, and the
// conditional imbalance block of the metrics JSON.
#include <gtest/gtest.h>

#include <cmath>

#include "charmm/decomp_spec.hpp"
#include "charmm/ldb.hpp"
#include "charmm/simulation.hpp"
#include "charmm/spatial.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "net/faults.hpp"
#include "perf/metrics.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"

namespace repro::charmm {
namespace {

// Shared, relaxed full-size system (expensive: built once per binary).
const sysbuild::BuiltSystem& system_fixture() {
  static const sysbuild::BuiltSystem sys = [] {
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    relax_system(s, 60);
    return s;
  }();
  return sys;
}

// The bench/extension_load_balance discipline: classic calculation only
// (PME's replicated slab dilutes per-rank imbalance), rebuilds every
// other step so short runs cross rebalance opportunities.
CharmmConfig lb_config(const char* decomp, int nsteps = 6) {
  CharmmConfig config;
  config.nsteps = nsteps;
  config.use_pme = false;
  config.list_rebuild_interval = 2;
  config.decomp = parse_decomp_spec(decomp);
  return config;
}

// Hand-tuned per-rank jitter off: the balancer must see only the load we
// inject, and the predictor pins assume bit-exact speed measurements.
core::ExperimentSpec lb_spec(const core::Platform& platform, int nprocs,
                             const CharmmConfig& config) {
  core::ExperimentSpec spec;
  spec.platform = platform;
  spec.nprocs = nprocs;
  spec.charmm = config;
  net::NetworkParams params = net::params_for(platform.network);
  params.jitter_prob_per_rank = 0.0;
  spec.network_params = params;
  return spec;
}

core::ExperimentResult run(const core::Platform& platform, int nprocs,
                           const CharmmConfig& config) {
  return core::run_experiment(system_fixture(),
                              lb_spec(platform, nprocs, config));
}

// --- spec parsing ----------------------------------------------------------

TEST(LdbSpecTest, ParsesPolicies) {
  EXPECT_EQ(parse_decomp_spec("spatial").ldb, LdbPolicy::kOff);
  EXPECT_EQ(parse_decomp_spec("spatial:ldb=off").ldb, LdbPolicy::kOff);
  EXPECT_EQ(parse_decomp_spec("spatial:ldb=greedy").ldb, LdbPolicy::kGreedy);
  EXPECT_EQ(parse_decomp_spec("spatial:ldb=refine").ldb, LdbPolicy::kRefine);
  EXPECT_EQ(parse_decomp_spec("spatial:ldb=greedy").units, 0);  // auto
  const DecompSpec explicit_units =
      parse_decomp_spec("spatial:ldb=refine,units=32");
  EXPECT_EQ(explicit_units.ldb, LdbPolicy::kRefine);
  EXPECT_EQ(explicit_units.units, 32);
  // ldb composes with the other spatial options.
  const DecompSpec full =
      parse_decomp_spec("spatial:grid=6x3x4:pme=pencil:grid=2x4:ldb=greedy");
  EXPECT_EQ(full.grid_x, 6);
  EXPECT_EQ(full.pme_mode, PmeMode::kPencil);
  EXPECT_EQ(full.pencil_y, 2);
  EXPECT_EQ(full.ldb, LdbPolicy::kGreedy);
}

TEST(LdbSpecTest, ToStringRoundTrips) {
  for (const char* text :
       {"spatial:ldb=greedy", "spatial:ldb=refine",
        "spatial:ldb=greedy,units=32",
        "spatial:grid=6x3x4:ldb=refine,units=16",
        "spatial:pme=pencil:ldb=greedy",
        "spatial:grid=6x3x4:pme=pencil:grid=2x4:ldb=refine"}) {
    EXPECT_EQ(to_string(parse_decomp_spec(text)), text);
  }
  // Off is the default and has no spelled form.
  EXPECT_EQ(to_string(parse_decomp_spec("spatial:ldb=off")), "spatial");
}

TEST(LdbSpecTest, RejectsMalformedLdbSpecs) {
  EXPECT_THROW(parse_decomp_spec("spatial:ldb="), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=fast"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedyx"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy:ldb=refine"),
               util::Error);
  // units= rides inside the ldb option, strictly parsed.
  EXPECT_THROW(parse_decomp_spec("spatial:units=8"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy,units="), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy,units=0"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy,units=-3"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy,units=8x"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy,units=8k"),
               util::Error);
  EXPECT_THROW(
      parse_decomp_spec("spatial:ldb=greedy,units=99999999999999999999"),
      util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=greedy,units=8,units=8"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:ldb=off,units=8"), util::Error);
  // The replicated strategies have no migratable units.
  EXPECT_THROW(parse_decomp_spec("atom:ldb=greedy"), util::Error);
  EXPECT_THROW(parse_decomp_spec("force:ldb=greedy"), util::Error);
  EXPECT_THROW(parse_decomp_spec("task:ldb=greedy"), util::Error);
}

TEST(LdbSpecTest, ResolvesUnitCount) {
  DecompSpec spec = parse_decomp_spec("spatial:ldb=greedy");
  // Auto: min(4 * nprocs, ncells).
  EXPECT_EQ(resolved_units(spec, 8, 72), 32);
  EXPECT_EQ(resolved_units(spec, 8, 20), 20);
  EXPECT_EQ(resolved_units(spec, 1, 72), 4);
  EXPECT_EQ(resolved_units(spec, 27, 72), 72);
  // Explicit: nprocs <= units <= ncells, or fail loudly.
  spec = parse_decomp_spec("spatial:ldb=greedy,units=16");
  EXPECT_EQ(resolved_units(spec, 8, 72), 16);
  EXPECT_THROW(resolved_units(spec, 20, 72), util::Error);
  EXPECT_THROW(resolved_units(spec, 8, 12), util::Error);
  // A grid too coarse to overdecompose fails regardless of units=.
  EXPECT_THROW(resolved_units(spec, 80, 72), util::Error);
  // Meaningless with the balancer off.
  EXPECT_THROW(resolved_units(parse_decomp_spec("spatial"), 8, 72),
               util::Error);
}

TEST(LdbSpecTest, ValidateRejectsInconsistentLdbFields) {
  // The parser cannot produce these, but DecompSpec is a plain value any
  // caller can assemble — validate_config is the backstop.
  CharmmConfig config;
  config.decomp.kind = DecompKind::kAtomReplicated;
  config.decomp.ldb = LdbPolicy::kGreedy;
  EXPECT_THROW(validate_config(config), util::Error);

  config = CharmmConfig{};
  config.decomp.kind = DecompKind::kSpatial;
  config.decomp.units = 8;  // units without a policy
  EXPECT_THROW(validate_config(config), util::Error);

  config = CharmmConfig{};
  config.decomp.kind = DecompKind::kSpatial;
  config.decomp.ldb = LdbPolicy::kRefine;
  config.decomp.units = -4;
  EXPECT_THROW(validate_config(config), util::Error);

  config = CharmmConfig{};
  config.decomp = parse_decomp_spec("spatial:ldb=greedy,units=16");
  EXPECT_NO_THROW(validate_config(config));
}

// --- rebalance kernels -----------------------------------------------------

TEST(RebalanceUnitsTest, GreedyPacksLargestProcessingTimeFirst) {
  // Classic LPT: units sorted by cost descending, each to the rank with
  // the smallest finish time, lowest rank on ties.
  const std::vector<double> cost{4.0, 3.0, 3.0, 2.0};
  const std::vector<double> speed{1.0, 1.0};
  const std::vector<int> current{0, 0, 1, 1};
  const std::vector<int> map =
      rebalance_units(LdbPolicy::kGreedy, cost, speed, current);
  EXPECT_EQ(map, (std::vector<int>{0, 1, 1, 0}));  // loads 6 / 6
}

TEST(RebalanceUnitsTest, GreedyRespectsMeasuredSpeeds) {
  // A rank measured 3x slow gets 1 unit of 4 equal-cost units: its
  // speed-scaled finish time of a second unit (2*3=6) loses to piling
  // three on the healthy rank.
  const std::vector<double> cost{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> speed{1.0, 3.0};
  const std::vector<int> map = rebalance_units(
      LdbPolicy::kGreedy, cost, speed, std::vector<int>{0, 0, 1, 1});
  EXPECT_EQ(map, (std::vector<int>{0, 0, 0, 1}));
}

TEST(RebalanceUnitsTest, RefineReachesFixedPointFromBalancedMap) {
  // A balanced map admits no strictly-improving move: refine must return
  // it unchanged (zero migrations under steady load).
  const std::vector<double> cost{2.0, 2.0, 1.0, 1.0};
  const std::vector<double> speed{1.0, 1.0};
  const std::vector<int> balanced{0, 1, 0, 1};
  EXPECT_EQ(rebalance_units(LdbPolicy::kRefine, cost, speed, balanced),
            balanced);
}

TEST(RebalanceUnitsTest, RefineDrainsTheBottleneck) {
  // Everything piled on rank 0 drains until the makespan stops falling.
  const std::vector<double> cost{2.0, 2.0, 2.0, 2.0};
  const std::vector<double> speed{1.0, 1.0};
  const std::vector<int> map = rebalance_units(
      LdbPolicy::kRefine, cost, speed, std::vector<int>{0, 0, 0, 0});
  double load0 = 0.0, load1 = 0.0;
  for (std::size_t u = 0; u < map.size(); ++u) {
    (map[u] == 0 ? load0 : load1) += cost[u];
  }
  EXPECT_EQ(load0, 4.0);
  EXPECT_EQ(load1, 4.0);
}

TEST(RebalanceUnitsTest, RefineShedsLoadOffAStraggler) {
  // Rank 0 measured 2x slow, two units each: one unit moves off it, then
  // no further move lowers the makespan.
  const std::vector<double> cost{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> speed{2.0, 1.0};
  const std::vector<int> map = rebalance_units(
      LdbPolicy::kRefine, cost, speed, std::vector<int>{0, 0, 1, 1});
  int on_straggler = 0;
  for (int r : map) on_straggler += (r == 0);
  EXPECT_EQ(on_straggler, 1);
}

TEST(RebalanceUnitsTest, DeterministicAndOffIsIdentity) {
  const std::vector<double> cost{5.0, 1.0, 4.0, 2.0, 3.0, 1.0, 2.0};
  const std::vector<double> speed{1.0, 1.5, 1.0};
  const std::vector<int> current{0, 0, 1, 1, 2, 2, 0};
  EXPECT_EQ(rebalance_units(LdbPolicy::kOff, cost, speed, current), current);
  for (LdbPolicy policy : {LdbPolicy::kGreedy, LdbPolicy::kRefine}) {
    const auto a = rebalance_units(policy, cost, speed, current);
    const auto b = rebalance_units(policy, cost, speed, current);
    EXPECT_EQ(a, b);
  }
  EXPECT_THROW(rebalance_units(LdbPolicy::kGreedy, cost, speed,
                               std::vector<int>{0}),
               util::Error);
  EXPECT_THROW(rebalance_units(LdbPolicy::kGreedy, cost, {}, current),
               util::Error);
}

// --- the work-unit grid ----------------------------------------------------

TEST(UnitGridTest, PartitionsCellsAndColdStartCoversEveryRank) {
  const sysbuild::BuiltSystem& sys = system_fixture();
  const CharmmConfig config = lb_config("spatial:ldb=greedy");
  const SpatialLayout layout = make_spatial_layout(
      config.decomp, sys.box, config.cutoff + config.skin, 8,
      &sys.positions);
  const int nunits = resolved_units(config.decomp, 8, layout.ncells());
  const UnitGrid grid = make_unit_grid(layout, nunits, sys.positions);
  ASSERT_EQ(grid.nunits, nunits);
  ASSERT_EQ(grid.cell_unit.size(), static_cast<std::size_t>(layout.ncells()));
  ASSERT_EQ(grid.unit_cells.size(), static_cast<std::size_t>(nunits));
  ASSERT_EQ(grid.unit_weight.size(), static_cast<std::size_t>(nunits));
  // cell→unit and unit→cells are inverse views of one partition.
  std::size_t covered = 0;
  for (int u = 0; u < nunits; ++u) {
    EXPECT_FALSE(grid.unit_cells[static_cast<std::size_t>(u)].empty())
        << "unit " << u;
    for (int c : grid.unit_cells[static_cast<std::size_t>(u)]) {
      EXPECT_EQ(grid.cell_unit[static_cast<std::size_t>(c)], u);
      ++covered;
    }
  }
  EXPECT_EQ(covered, grid.cell_unit.size());

  const std::vector<int> map = initial_unit_map(grid, 8);
  ASSERT_EQ(map.size(), static_cast<std::size_t>(nunits));
  std::vector<int> units_per_rank(8, 0);
  for (int r : map) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 8);
    ++units_per_rank[static_cast<std::size_t>(r)];
  }
  for (int r = 0; r < 8; ++r) {
    EXPECT_GE(units_per_rank[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }

  // layout_from_units keeps the geometry and re-derives ownership.
  const SpatialLayout adopted = layout_from_units(layout, grid, map);
  EXPECT_EQ(adopted.ncells(), layout.ncells());
  for (int c = 0; c < layout.ncells(); ++c) {
    EXPECT_EQ(adopted.cell_rank[static_cast<std::size_t>(c)],
              map[static_cast<std::size_t>(
                  grid.cell_unit[static_cast<std::size_t>(c)])]);
  }
}

// --- physics invariance and determinism ------------------------------------

TEST(LdbPhysicsTest, BalancerNeverChangesPhysics) {
  // Migrating whole work units changes who computes, never what. The
  // per-rank force partials are summed in ownership order, so a
  // different unit→rank map may round the last bit differently — the
  // same reassociation tolerance the cross-rank-count comparisons use —
  // but the pair list is an exact set and must match term for term.
  const auto off = run(core::reference_platform(), 8, lb_config("spatial"));
  const auto greedy =
      run(core::reference_platform(), 8, lb_config("spatial:ldb=greedy"));
  const auto refine = run(core::reference_platform(), 8,
                          lb_config("spatial:ldb=refine,units=32"));
  const double energy_tol = std::abs(off.energy.potential()) * 1e-6 + 1e-4;
  const double checksum_tol = std::abs(off.position_checksum) * 1e-9;
  EXPECT_NEAR(greedy.energy.potential(), off.energy.potential(), energy_tol);
  EXPECT_NEAR(greedy.position_checksum, off.position_checksum, checksum_tol);
  EXPECT_EQ(greedy.pairs_in_list, off.pairs_in_list);
  EXPECT_NEAR(refine.energy.potential(), off.energy.potential(), energy_tol);
  EXPECT_NEAR(refine.position_checksum, off.position_checksum, checksum_tol);
  EXPECT_EQ(refine.pairs_in_list, off.pairs_in_list);
  // Off reports no balancer activity; greedy's from-scratch repack moves
  // units even fault-free (the cold-start map is contiguous, the repack
  // is not).
  EXPECT_EQ(off.units_moved, 0u);
  EXPECT_EQ(off.unit_map_hash, 0u);
  EXPECT_GT(greedy.units_moved, 0u);
  EXPECT_NE(greedy.unit_map_hash, 0u);
}

TEST(LdbPhysicsTest, TrajectoryIsDeterministicAcrossRerunsAndBackends) {
  const CharmmConfig config = lb_config("spatial:ldb=greedy");
  core::ExperimentSpec spec =
      lb_spec(core::reference_platform(), 8, config);
  spec.faults = net::parse_fault_spec("straggler=6,x=2");
  const auto a = core::run_experiment(system_fixture(), spec);
  const auto b = core::run_experiment(system_fixture(), spec);
  EXPECT_EQ(a.unit_map_hash, b.unit_map_hash);
  EXPECT_EQ(a.units_moved, b.units_moved);
  EXPECT_EQ(a.energy.potential(), b.energy.potential());
  EXPECT_EQ(a.position_checksum, b.position_checksum);
  EXPECT_EQ(a.total_seconds(), b.total_seconds());

  spec.engine = sim::EngineBackend::kThread;
  const auto threaded = core::run_experiment(system_fixture(), spec);
  EXPECT_EQ(threaded.unit_map_hash, a.unit_map_hash);
  EXPECT_EQ(threaded.units_moved, a.units_moved);
  EXPECT_EQ(threaded.position_checksum, a.position_checksum);
  EXPECT_EQ(threaded.total_seconds(), a.total_seconds());

  // The trajectory is measurement-driven: the straggler's measured speed
  // steers the packer somewhere the fault-free run never goes.
  spec.engine = sim::default_engine_backend();
  spec.faults.reset();
  const auto healthy = core::run_experiment(system_fixture(), spec);
  EXPECT_NE(healthy.unit_map_hash, a.unit_map_hash);
}

// --- predictor pins --------------------------------------------------------

TEST(LdbModelTest, RunLevelMessageAndByteCountsAreExact) {
  // With drift frozen (zero-temperature start: nothing crosses a cell
  // boundary in 6 half-femtosecond steps) and jitter off, the replayed
  // balancer trajectory is the simulated one, and the whole-run traffic
  // — per-step halos of every adopted epoch plus migration, the
  // cost/speed allreduce, unit handoffs, and ghost renegotiation — is an
  // exact count. Only the 3-double result allreduce after the loop sits
  // outside it: 2(p-1) messages of 24 bytes.
  core::Platform platform;
  platform.network = net::Network::kScoreGigE;
  const int p = 8;
  for (const char* decomp : {"spatial:ldb=greedy", "spatial:ldb=refine"}) {
    for (bool use_pme : {false, true}) {
      if (use_pme && decomp[12] == 'r') continue;  // one PME pin is enough
      CharmmConfig config = lb_config(decomp);
      config.coherency_barriers = false;
      config.use_pme = use_pme;
      config.temperature_k = 0.0;
      core::ExperimentSpec spec = lb_spec(platform, p, config);
      const auto sim = core::run_experiment(system_fixture(), spec);
      ASSERT_EQ(sim.atoms_migrated, 0u) << decomp;  // zero-drift premise
      EXPECT_GT(sim.units_moved, 0u) << decomp;
      const core::OverheadPrediction pred = core::predict_step_overheads(
          *spec.network_params, p, system_fixture(), config);
      double sim_messages = 0.0;
      double sim_bytes = 0.0;
      for (const auto& ch : sim.metrics.channels) {
        sim_messages += static_cast<double>(ch.messages);
        sim_bytes += ch.bytes;
      }
      const double epilogue_messages = 2.0 * (p - 1);
      const double epilogue_bytes = 2.0 * (p - 1) * 24.0;
      EXPECT_DOUBLE_EQ(pred.run_messages + epilogue_messages, sim_messages)
          << decomp << " pme=" << use_pme;
      EXPECT_DOUBLE_EQ(pred.run_bytes + epilogue_bytes, sim_bytes)
          << decomp << " pme=" << use_pme;
      EXPECT_EQ(static_cast<std::size_t>(pred.units_moved), sim.units_moved)
          << decomp << " pme=" << use_pme;
      EXPECT_GT(pred.rebalance_messages, 0.0);
      EXPECT_LT(pred.rebalance_bytes, pred.run_bytes);
    }
  }
}

TEST(LdbModelTest, RunTotalsAreZeroWithTheBalancerOff) {
  CharmmConfig config = lb_config("spatial");
  const core::OverheadPrediction pred = core::predict_step_overheads(
      net::params_for(net::Network::kScoreGigE), 8, system_fixture(),
      config);
  EXPECT_EQ(pred.run_messages, 0.0);
  EXPECT_EQ(pred.run_bytes, 0.0);
  EXPECT_EQ(pred.rebalance_messages, 0.0);
  EXPECT_EQ(pred.rebalance_bytes, 0.0);
  EXPECT_EQ(pred.units_moved, 0.0);
}

// --- packing envelope and recovery -----------------------------------------

TEST(LdbBalanceTest, PairCostPackingTightensTheColdStartImbalance) {
  // Two steps, default rebuild interval: no rebalance ever fires, so this
  // isolates the cold-start map. The paper's solute blob leaves the
  // atom-packed static map 1.3-3.2x hot on compute; packing by estimated
  // pair cost must not leave the balanced map any worse.
  CharmmConfig config = lb_config("spatial", /*nsteps=*/2);
  config.list_rebuild_interval = 5;
  const auto off = run(core::reference_platform(), 8, config);
  config.decomp = parse_decomp_spec("spatial:ldb=greedy");
  const auto ldb = run(core::reference_platform(), 8, config);
  EXPECT_EQ(ldb.units_moved, 0u);  // cold start only, no rebuild crossed
  const double off_factor = off.metrics.compute_imbalance.factor();
  const double ldb_factor = ldb.metrics.compute_imbalance.factor();
  EXPECT_GE(off_factor, 1.3);
  EXPECT_LE(off_factor, 3.2);
  EXPECT_GE(ldb_factor, 1.0);
  EXPECT_LT(ldb_factor, off_factor);
  EXPECT_LE(ldb_factor, 3.2);
}

TEST(LdbBalanceTest, BalancerRecoversMostOfTheStragglerInflation) {
  // The PR's acceptance bar: straggling the statically-overloaded node
  // inflates ldb=off's critical path; the balancer must claw back at
  // least half of that inflation (it measures ~95-99% here).
  const core::Platform platform = core::reference_platform();
  const CharmmConfig off_config = lb_config("spatial", /*nsteps=*/10);
  const CharmmConfig ldb_config_ =
      lb_config("spatial:ldb=greedy", /*nsteps=*/10);
  const auto fault = net::parse_fault_spec("straggler=6,x=2");

  const auto off_base = run(platform, 8, off_config);
  const auto ldb_base = run(platform, 8, ldb_config_);
  core::ExperimentSpec spec = lb_spec(platform, 8, off_config);
  spec.faults = fault;
  const auto off_fault = core::run_experiment(system_fixture(), spec);
  spec.charmm = ldb_config_;
  const auto ldb_fault = core::run_experiment(system_fixture(), spec);

  const double off_inflation =
      off_fault.total_seconds() - off_base.total_seconds();
  const double ldb_inflation =
      ldb_fault.total_seconds() - ldb_base.total_seconds();
  ASSERT_GT(off_inflation, 0.0);
  const double recovered = 1.0 - ldb_inflation / off_inflation;
  EXPECT_GE(recovered, 0.5) << "off=" << off_inflation
                            << " ldb=" << ldb_inflation;
  // The balanced run under the fault also moved units it did not move
  // fault-free — the recovery is adaptation, not static luck.
  EXPECT_NE(ldb_fault.unit_map_hash, ldb_base.unit_map_hash);
}

// --- imbalance metrics -----------------------------------------------------

TEST(ImbalanceMetricsTest, FactorIsMaxOverMean) {
  perf::ImbalanceMetrics im;
  im.max_seconds = 4.0;
  im.mean_seconds = 2.0;
  EXPECT_DOUBLE_EQ(im.factor(), 2.0);
  EXPECT_EQ(perf::ImbalanceMetrics{}.factor(), 0.0);  // no data, no factor
}

TEST(ImbalanceMetricsTest, JsonBlockIsEmittedOnlyWhenPopulated) {
  perf::RunMetrics metrics;
  EXPECT_EQ(perf::metrics_json(metrics).find("imbalance"),
            std::string::npos);
  metrics.compute_imbalance.max_seconds = 3.0;
  metrics.compute_imbalance.mean_seconds = 1.5;
  metrics.phase_imbalance["nonbonded"] =
      perf::ImbalanceMetrics{2.0, 1.0};
  const std::string json = perf::metrics_json(metrics);
  EXPECT_NE(json.find("\"imbalance\":{\"compute\":{\"max_s\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"nonbonded\":{\"max_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"factor\":"), std::string::npos);
}

TEST(ImbalanceMetricsTest, MultiRankPhasedRunsPopulateTheFactors) {
  const auto par = run(core::reference_platform(), 4, lb_config("spatial"));
  EXPECT_GT(par.metrics.compute_imbalance.factor(), 1.0);
  EXPECT_FALSE(par.metrics.phase_imbalance.empty());
  EXPECT_EQ(par.metrics.phase_imbalance.count("nonbonded"), 1u);
  // Sequential runs have no ranks to be imbalanced across.
  const auto seq = run(core::reference_platform(), 1, lb_config("spatial"));
  EXPECT_EQ(seq.metrics.compute_imbalance.factor(), 0.0);
  EXPECT_TRUE(seq.metrics.phase_imbalance.empty());
}

}  // namespace
}  // namespace repro::charmm
