#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/flatpack.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

namespace repro::util {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vec3Test, CrossProductIsOrthogonal) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{-2, 0.5, 4};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(a, c), 0.0, 1e-12);
  EXPECT_NEAR(dot(b, c), 0.0, 1e-12);
}

TEST(Vec3Test, NormAndNormalize) {
  const Vec3 a{3, 4, 0};
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(norm2(a), 25.0);
  EXPECT_NEAR(norm(normalized(a)), 1.0, 1e-15);
}

TEST(Vec3Test, IndexAccess) {
  Vec3 a{7, 8, 9};
  EXPECT_DOUBLE_EQ(a[0], 7);
  EXPECT_DOUBLE_EQ(a[1], 8);
  EXPECT_DOUBLE_EQ(a[2], 9);
  a[1] = -1;
  EXPECT_DOUBLE_EQ(a.y, -1);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(MixSeedTest, DistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      seeds.insert(mix_seed(a, b));
    }
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(RunningStatsTest, Basic) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(TableTest, AlignedOutput) {
  Table t({"p", "time"});
  t.add_row({"1", "6.5"});
  t.add_row({"16", "0.81"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("p"), std::string::npos);
  EXPECT_NE(s.find("0.81"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(FlatpackTest, FlattenLaysOutComponentsInOrder) {
  const std::vector<Vec3> v = {{1, 2, 3}, {-4, 5.5, 0}};
  std::vector<double> flat;
  flatten(v, flat);
  const std::vector<double> expected = {1, 2, 3, -4, 5.5, 0};
  EXPECT_EQ(flat, expected);
}

TEST(FlatpackTest, RoundTripsAndResizes) {
  std::vector<Vec3> v;
  for (int i = 0; i < 17; ++i) {
    v.push_back(Vec3{i * 1.5, -i * 0.25, i * i * 1e-3});
  }
  std::vector<double> flat(3, -999.0);  // wrong size: flatten must resize
  flatten(v, flat);
  ASSERT_EQ(flat.size(), 3 * v.size());
  std::vector<Vec3> back(v.size());
  unflatten(flat, back);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(back[i], v[i]) << "atom " << i;
  }
}

TEST(FlatpackTest, UnflattenReadsOnlyWhatTheTargetNeeds) {
  const std::vector<double> flat = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<Vec3> v(2);  // shorter target: trailing doubles ignored
  unflatten(flat, v);
  EXPECT_EQ(v[0], Vec3(1, 2, 3));
  EXPECT_EQ(v[1], Vec3(4, 5, 6));
}

TEST(ErrorTest, RequireThrowsWithContext) {
  try {
    REPRO_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace repro::util
