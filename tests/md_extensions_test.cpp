// Tests for the MD extensions: SHAKE/RATTLE constraints, thermostats,
// trajectory I/O, and their integration into the Simulation front-end.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "charmm/simulation.hpp"
#include "md/constraints.hpp"
#include "md/thermostat.hpp"
#include "md/trajectory.hpp"
#include "sysbuild/builder.hpp"
#include "sysbuild/io.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace repro::md {
namespace {

using util::Vec3;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- SHAKE -------------------------------------------------------------------

TEST(ShakeTest, HydrogenBondsAreCollected) {
  const auto sys = sysbuild::build_water_box(2);
  const Shake shake = Shake::hydrogen_bonds(sys.topo);
  // Every water contributes two O-H constraints.
  EXPECT_EQ(shake.size(), 2u * 8u);
  EXPECT_EQ(shake.removed_dof(), 16);
}

TEST(ShakeTest, RestoresConstraintAfterDrift) {
  const auto sys = sysbuild::build_water_box(2);
  const Shake shake = Shake::hydrogen_bonds(sys.topo);
  auto ref = sys.positions;
  auto pos = sys.positions;
  // Perturb every atom randomly: constraints now violated.
  util::Rng rng(3);
  for (auto& r : pos) {
    r += Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
              rng.uniform(-0.05, 0.05)};
  }
  EXPECT_GT(shake.max_violation(sys.box, pos), 1e-3);
  const int iters =
      shake.apply_positions(sys.topo, sys.box, ref, pos, nullptr, 0.001);
  EXPECT_GT(iters, 0);
  EXPECT_LT(shake.max_violation(sys.box, pos), 1e-7);
}

TEST(ShakeTest, PositionCorrectionConservesMomentum) {
  const auto sys = sysbuild::build_water_box(2);
  const Shake shake = Shake::hydrogen_bonds(sys.topo);
  auto ref = sys.positions;
  auto pos = sys.positions;
  util::Rng rng(9);
  for (auto& r : pos) {
    r += Vec3{rng.uniform(-0.04, 0.04), rng.uniform(-0.04, 0.04),
              rng.uniform(-0.04, 0.04)};
  }
  // Mass-weighted displacement before/after must be unchanged (the SHAKE
  // correction applies equal and opposite impulses).
  Vec3 before;
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    before += (pos[static_cast<std::size_t>(i)] -
               ref[static_cast<std::size_t>(i)]) *
              sys.topo.atom(i).mass;
  }
  shake.apply_positions(sys.topo, sys.box, ref, pos, nullptr, 0.001);
  Vec3 after;
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    after += (pos[static_cast<std::size_t>(i)] -
              ref[static_cast<std::size_t>(i)]) *
             sys.topo.atom(i).mass;
  }
  EXPECT_NEAR(util::norm(after - before), 0.0, 1e-9);
}

TEST(ShakeTest, VelocityStageRemovesRadialComponents) {
  const auto sys = sysbuild::build_water_box(2);
  const Shake shake = Shake::hydrogen_bonds(sys.topo);
  std::vector<Vec3> vel;
  assign_velocities(sys.topo, 300.0, 5, vel);
  shake.apply_velocities(sys.topo, sys.box, sys.positions, vel);
  for (const Constraint& c : shake.constraints()) {
    const Vec3 r = sys.box.min_image(
        sys.positions[static_cast<std::size_t>(c.i)] -
        sys.positions[static_cast<std::size_t>(c.j)]);
    const Vec3 v = vel[static_cast<std::size_t>(c.i)] -
                   vel[static_cast<std::size_t>(c.j)];
    EXPECT_NEAR(util::dot(r, v), 0.0, 1e-6);
  }
}

TEST(ShakeTest, RejectsBadConstraints) {
  EXPECT_THROW(Shake({Constraint{1, 1, 1.0}}), util::Error);
  EXPECT_THROW(Shake({Constraint{0, 1, -1.0}}), util::Error);
}

TEST(ShakeTest, EnablesLargerTimeStepsInSimulation) {
  static const sysbuild::BuiltSystem water = sysbuild::build_water_box(3);
  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{12, 12, 12, 4, 0.7};
  config.cutoff = 4.2;
  config.switch_on = 3.5;
  config.dt_ps = 0.002;  // 2 fs: stable only because X-H bonds are rigid
  config.shake_hydrogens = true;
  charmm::Simulation sim(water, config);
  sim.set_velocities_from_temperature(300.0, 21);
  // The first velocity projection removes the constrained degrees of
  // freedom's kinetic energy (a one-time change); conservation is measured
  // once the constrained dynamics is underway.
  sim.step(2);
  const double e0 = sim.total_energy();
  sim.step(25);
  const double e1 = sim.total_energy();
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 0.03);
  // Constraints hold along the whole trajectory.
  EXPECT_LT(sim.shake()->max_violation(water.box, sim.positions()), 1e-6);
  // Degrees of freedom reflect the constraints.
  EXPECT_EQ(sim.degrees_of_freedom(),
            3 * water.topo.natoms() - sim.shake()->removed_dof());
}

TEST(ShakeTest, RigidWatersAddHHConstraints) {
  const auto sys = sysbuild::build_water_box(2);
  const Shake shake = Shake::rigid_waters(sys.topo);
  // 8 waters: two O-H plus one H-H constraint each.
  EXPECT_EQ(shake.size(), 3u * 8u);
  // The built geometry already satisfies every constraint (H-H length is
  // derived from the same angle the builder used).
  EXPECT_LT(shake.max_violation(sys.box, sys.positions), 1e-9);
}

TEST(ShakeTest, RigidWatersConserveAtTwoFemtoseconds) {
  static const sysbuild::BuiltSystem water = sysbuild::build_water_box(3);
  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{12, 12, 12, 4, 0.7};
  config.cutoff = 4.2;
  config.switch_on = 3.5;
  config.dt_ps = 0.002;
  config.rigid_waters = true;
  charmm::Simulation sim(water, config);
  md::MinimizeOptions min_opts;
  min_opts.max_steps = 30;
  sim.minimize(min_opts);
  sim.set_velocities_from_temperature(300.0, 21);
  sim.step(4);
  const double e0 = sim.total_energy();
  sim.step(40);
  const double e1 = sim.total_energy();
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 5e-3);
  EXPECT_LT(sim.shake()->max_violation(water.box, sim.positions()), 1e-6);
}

TEST(ShakeTest, RigidWatersSkipNonWaterMolecules) {
  // The test chain has no waters: rigid_waters degenerates to
  // hydrogen_bonds (and the chain has no hydrogens either).
  const auto chain = sysbuild::build_test_chain(10, 4);
  EXPECT_EQ(Shake::rigid_waters(chain.topo).size(), 0u);
}

// --- thermostats --------------------------------------------------------------

TEST(ThermostatTest, BerendsenDrivesTowardTarget) {
  const auto sys = sysbuild::build_water_box(3);
  std::vector<Vec3> vel;
  assign_velocities(sys.topo, 150.0, 2, vel);
  const BerendsenThermostat thermostat(300.0, 0.02);
  const int dof = 3 * sys.topo.natoms();
  for (int i = 0; i < 200; ++i) {
    thermostat.apply(sys.topo, 0.001, dof, vel);
  }
  EXPECT_NEAR(temperature(sys.topo, vel), 300.0, 10.0);
}

TEST(ThermostatTest, BerendsenLeavesTargetAlone) {
  const auto sys = sysbuild::build_water_box(3);
  std::vector<Vec3> vel;
  assign_velocities(sys.topo, 300.0, 2, vel);
  const double t0 = temperature(sys.topo, vel);
  const BerendsenThermostat thermostat(t0, 0.1);
  const double lambda =
      thermostat.apply(sys.topo, 0.001, 3 * sys.topo.natoms(), vel);
  EXPECT_NEAR(lambda, 1.0, 1e-6);
}

TEST(ThermostatTest, LangevinEquilibratesFromCold) {
  const auto sys = sysbuild::build_water_box(3);
  std::vector<Vec3> vel(static_cast<std::size_t>(sys.topo.natoms()));
  LangevinThermostat thermostat(300.0, 50.0, 7);
  util::RunningStats temps;
  for (int i = 0; i < 600; ++i) {
    thermostat.apply(sys.topo, 0.001, vel);
    if (i > 200) temps.add(temperature(sys.topo, vel));
  }
  EXPECT_NEAR(temps.mean(), 300.0, 20.0);
}

TEST(ThermostatTest, LangevinIsDeterministicPerSeed) {
  const auto sys = sysbuild::build_water_box(2);
  auto run = [&](std::uint64_t seed) {
    std::vector<Vec3> vel(static_cast<std::size_t>(sys.topo.natoms()));
    LangevinThermostat thermostat(300.0, 10.0, seed);
    for (int i = 0; i < 10; ++i) thermostat.apply(sys.topo, 0.001, vel);
    return vel;
  };
  EXPECT_EQ(run(4), run(4));
  EXPECT_NE(run(4), run(5));
}

TEST(ThermostatTest, SimulationIntegrationHeatsSystem) {
  static const sysbuild::BuiltSystem water = sysbuild::build_water_box(3);
  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{12, 12, 12, 4, 0.7};
  config.cutoff = 4.2;
  config.switch_on = 3.5;
  config.thermostat = charmm::SimulationConfig::Thermostat::kBerendsen;
  config.thermostat_target_k = 250.0;
  config.berendsen_tau_ps = 0.01;
  charmm::Simulation sim(water, config);
  // Relax first so potential-energy release does not swamp the kinetic
  // temperature during the measurement window.
  md::MinimizeOptions min_opts;
  min_opts.max_steps = 40;
  sim.minimize(min_opts);
  sim.set_velocities_from_temperature(50.0, 3);
  sim.step(200);
  EXPECT_NEAR(sim.current_temperature(), 250.0, 60.0);
}

// --- trajectory I/O -------------------------------------------------------------

TEST(TrajectoryTest, RoundTrip) {
  const auto sys = sysbuild::build_water_box(2);
  const std::string path = temp_path("repro_traj_test.rtrj");
  {
    TrajectoryWriter writer(path, sys.topo.natoms(), sys.box, 0.01);
    auto frame = sys.positions;
    writer.write_frame(frame);
    for (auto& r : frame) r += Vec3{1.0, 0.5, -0.25};
    writer.write_frame(frame);
    EXPECT_EQ(writer.frames_written(), 2);
  }
  TrajectoryReader reader(path);
  EXPECT_EQ(reader.natoms(), sys.topo.natoms());
  EXPECT_EQ(reader.nframes(), 2);
  EXPECT_DOUBLE_EQ(reader.dt_ps(), 0.01);
  EXPECT_DOUBLE_EQ(reader.box().lx(), sys.box.lx());
  std::vector<Vec3> frame;
  reader.read_frame(0, frame);
  ASSERT_EQ(frame.size(), sys.positions.size());
  // float32 storage: ~1e-5 relative precision.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_NEAR(frame[i].x, sys.positions[i].x, 1e-4);
  }
  reader.read_frame(1, frame);
  EXPECT_NEAR(frame[0].x, sys.positions[0].x + 1.0, 1e-4);
  EXPECT_THROW(reader.read_frame(2, frame), util::Error);
  std::filesystem::remove(path);
}

TEST(TrajectoryTest, RejectsWrongFrameSize) {
  const std::string path = temp_path("repro_traj_bad.rtrj");
  TrajectoryWriter writer(path, 10, Box(5, 5, 5), 0.001);
  std::vector<Vec3> wrong(7);
  EXPECT_THROW(writer.write_frame(wrong), util::Error);
  std::filesystem::remove(path);
}

TEST(TrajectoryTest, RejectsForeignFile) {
  const std::string path = temp_path("repro_traj_foreign.rtrj");
  {
    std::ofstream out(path);
    out << "definitely not a trajectory";
  }
  EXPECT_THROW(TrajectoryReader reader(path), util::Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace repro::md

// --- system text I/O -------------------------------------------------------------

namespace repro::sysbuild {
namespace {

TEST(SystemIoTest, RoundTripPreservesEverything) {
  const auto sys = build_test_chain(20, 6);
  std::stringstream buffer;
  write_system(buffer, sys);
  const BuiltSystem back = read_system(buffer);

  ASSERT_EQ(back.topo.natoms(), sys.topo.natoms());
  EXPECT_EQ(back.name, sys.name);
  EXPECT_DOUBLE_EQ(back.box.lx(), sys.box.lx());
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    EXPECT_DOUBLE_EQ(back.topo.atom(i).mass, sys.topo.atom(i).mass);
    EXPECT_DOUBLE_EQ(back.topo.atom(i).charge, sys.topo.atom(i).charge);
    EXPECT_EQ(back.positions[static_cast<std::size_t>(i)],
              sys.positions[static_cast<std::size_t>(i)]);
  }
  ASSERT_EQ(back.topo.bonds().size(), sys.topo.bonds().size());
  for (std::size_t t = 0; t < sys.topo.bonds().size(); ++t) {
    EXPECT_EQ(back.topo.bonds()[t].i, sys.topo.bonds()[t].i);
    EXPECT_DOUBLE_EQ(back.topo.bonds()[t].b0, sys.topo.bonds()[t].b0);
  }
  ASSERT_EQ(back.topo.angles().size(), sys.topo.angles().size());
  ASSERT_EQ(back.topo.dihedrals().size(), sys.topo.dihedrals().size());
  ASSERT_EQ(back.topo.impropers().size(), sys.topo.impropers().size());
  // Exclusions were rebuilt and must agree.
  EXPECT_EQ(back.topo.excluded_pairs(), sys.topo.excluded_pairs());
}

TEST(SystemIoTest, RoundTripEnergyIdentical) {
  auto sys = build_water_box(3);
  std::stringstream buffer;
  write_system(buffer, sys);
  BuiltSystem back = read_system(buffer);

  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{12, 12, 12, 4, 0.7};
  config.cutoff = 4.2;
  config.switch_on = 3.5;
  charmm::Simulation a(sys, config);
  charmm::Simulation b(back, config);
  EXPECT_EQ(a.evaluate().potential(), b.evaluate().potential());
}

TEST(SystemIoTest, FileRoundTrip) {
  const auto sys = build_test_chain(8, 1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_sys_test.rsys")
          .string();
  save_system(path, sys);
  const BuiltSystem back = load_system(path);
  EXPECT_EQ(back.topo.natoms(), sys.topo.natoms());
  std::filesystem::remove(path);
}

TEST(SystemIoTest, RejectsGarbage) {
  std::stringstream buffer("RSYS 2 whatever");
  EXPECT_THROW(read_system(buffer), util::Error);
  std::stringstream buffer2("not even close");
  EXPECT_THROW(read_system(buffer2), util::Error);
}

}  // namespace
}  // namespace repro::sysbuild
