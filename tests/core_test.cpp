// Characterization property tests: the paper's qualitative findings, as
// assertions against the simulated platform. These are the reproduction's
// acceptance tests — every figure's *shape* claim is encoded here.
#include <gtest/gtest.h>

#include <map>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "core/factorial.hpp"
#include "core/model.hpp"
#include "core/sweep.hpp"
#include "perf/metrics.hpp"
#include "sysbuild/builder.hpp"

namespace repro::core {
namespace {

const sysbuild::BuiltSystem& system_fixture() {
  static const sysbuild::BuiltSystem sys = [] {
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    charmm::relax_system(s, 60);
    return s;
  }();
  return sys;
}

// Experiments are deterministic; cache them across assertions.
const ExperimentResult& cached_run(const Platform& platform, int nprocs) {
  using Key = std::tuple<net::Network, middleware::Kind, int, int>;
  static std::map<Key, ExperimentResult> cache;
  const Key key{platform.network, platform.middleware,
                platform.cpus_per_node, nprocs};
  auto it = cache.find(key);
  if (it == cache.end()) {
    ExperimentSpec spec;
    spec.platform = platform;
    spec.nprocs = nprocs;
    it = cache.emplace(key, run_experiment(system_fixture(), spec)).first;
  }
  return it->second;
}

Platform plat(net::Network n = net::Network::kTcpGigE,
              middleware::Kind m = middleware::Kind::kMpi, int cpus = 1) {
  return Platform{n, m, cpus};
}

// --- Figure 3: the reference case -------------------------------------------

TEST(Figure3Test, SequentialScaleMatchesPaper) {
  const auto& r = cached_run(plat(), 1);
  // Paper: total ~6.5 s for ten steps on the 1 GHz PIII; calibration keeps
  // us within ~15%.
  EXPECT_GT(r.total_seconds(), 5.5);
  EXPECT_LT(r.total_seconds(), 8.0);
  // "In the sequential version ... the PME time is slightly less than half
  // of the total calculation time."
  const double pme_frac = r.pme_seconds() / r.total_seconds();
  EXPECT_GT(pme_frac, 0.33);
  EXPECT_LT(pme_frac, 0.5);
}

TEST(Figure3Test, PmeAtTwoProcessorsExceedsSequential) {
  // "For two processors, the execution time of the PME calculation is
  // actually larger than for one processor."
  EXPECT_GT(cached_run(plat(), 2).pme_seconds(),
            cached_run(plat(), 1).pme_seconds());
}

TEST(Figure3Test, PmeBecomesDominantInParallel) {
  // "In the parallel version, the PME time is almost two thirds of the
  // total calculation time."
  for (int p : {4, 8}) {
    const auto& r = cached_run(plat(), p);
    const double frac = r.pme_seconds() / r.total_seconds();
    EXPECT_GT(frac, 0.5) << "p=" << p;
    EXPECT_LT(frac, 0.75) << "p=" << p;
  }
}

// --- Figure 4: breakdown of the reference case ------------------------------

TEST(Figure4Test, ClassicOverheadBands) {
  // "less than 10% for two processors increasing to over 60% for eight".
  EXPECT_LT(cached_run(plat(), 2).breakdown.classic_wall.overhead_fraction(),
            0.10);
  EXPECT_GT(cached_run(plat(), 8).breakdown.classic_wall.overhead_fraction(),
            0.60);
}

TEST(Figure4Test, PmeOverheadBands) {
  // "from slightly more than 50% for two processors to over 75% for eight".
  EXPECT_GT(cached_run(plat(), 2).breakdown.pme_wall.overhead_fraction(),
            0.45);
  EXPECT_GT(cached_run(plat(), 8).breakdown.pme_wall.overhead_fraction(),
            0.75);
}

TEST(Figure4Test, OverheadGrowsMonotonicallyWithRanks) {
  double last_classic = -1.0;
  double last_pme = -1.0;
  for (int p : {1, 2, 4, 8}) {
    const auto& r = cached_run(plat(), p);
    const double c = r.breakdown.classic_wall.overhead_fraction();
    const double m = r.breakdown.pme_wall.overhead_fraction();
    EXPECT_GE(c, last_classic) << "p=" << p;
    EXPECT_GE(m, last_pme - 0.02) << "p=" << p;
    last_classic = c;
    last_pme = m;
  }
}

// --- Figures 5/6: network factor ---------------------------------------------

TEST(Figure5Test, BetterNetworksScaleBetter) {
  for (int p : {4, 8}) {
    const double tcp = cached_run(plat(net::Network::kTcpGigE), p)
                           .total_seconds();
    const double score = cached_run(plat(net::Network::kScoreGigE), p)
                             .total_seconds();
    const double myri = cached_run(plat(net::Network::kMyrinetGM), p)
                            .total_seconds();
    EXPECT_GT(tcp, score) << "p=" << p;
    EXPECT_GT(score, myri) << "p=" << p;
  }
}

TEST(Figure5Test, SpeedupsMatchPaperConclusions) {
  const double seq = cached_run(plat(), 1).total_seconds();
  // TCP: dissatisfactory scalability (under 2x at 8 processors).
  EXPECT_LT(seq / cached_run(plat(net::Network::kTcpGigE), 8)
                      .total_seconds(),
            2.0);
  // SCore: good scalability at no extra hardware cost.
  EXPECT_GT(seq / cached_run(plat(net::Network::kScoreGigE), 8)
                      .total_seconds(),
            3.5);
  // Myrinet: best.
  EXPECT_GT(seq / cached_run(plat(net::Network::kMyrinetGM), 8)
                      .total_seconds(),
            4.0);
}

TEST(Figure6Test, CommunicationCostCarriesTheDifference) {
  // "The big difference arises from the cost of the communication
  // operations": comm differs by large factors across networks...
  const auto& tcp = cached_run(plat(net::Network::kTcpGigE), 8);
  const auto& score = cached_run(plat(net::Network::kScoreGigE), 8);
  const auto& myri = cached_run(plat(net::Network::kMyrinetGM), 8);
  const double tcp_comm =
      tcp.breakdown.classic_wall.comm + tcp.breakdown.pme_wall.comm;
  const double score_comm =
      score.breakdown.classic_wall.comm + score.breakdown.pme_wall.comm;
  const double myri_comm =
      myri.breakdown.classic_wall.comm + myri.breakdown.pme_wall.comm;
  EXPECT_GT(tcp_comm, 3.0 * score_comm);
  EXPECT_GT(score_comm, myri_comm);
  // ..."the cost of synchronization alone remains within reasonable limits
  // and is similar for all three networks".
  const double tcp_sync =
      tcp.breakdown.classic_wall.sync + tcp.breakdown.pme_wall.sync;
  EXPECT_LT(tcp_sync, 0.25 * tcp.total_seconds());
}

// --- Figure 7: communication speed per node -----------------------------------

TEST(Figure7Test, SpeedOrderingAcrossNetworks) {
  for (int p : {2, 4, 8}) {
    const double tcp = cached_run(plat(net::Network::kTcpGigE), p)
                           .breakdown.comm_speed.avg_mb_per_s;
    const double score = cached_run(plat(net::Network::kScoreGigE), p)
                             .breakdown.comm_speed.avg_mb_per_s;
    const double myri = cached_run(plat(net::Network::kMyrinetGM), p)
                            .breakdown.comm_speed.avg_mb_per_s;
    EXPECT_LT(tcp, score) << "p=" << p;
    EXPECT_LT(score, myri) << "p=" << p;
  }
}

TEST(Figure7Test, TcpIsSlowAndUnstable) {
  // Low absolute rate ("low communication rate of TCP/IP on GigE").
  const auto& r8 = cached_run(plat(net::Network::kTcpGigE), 8);
  EXPECT_LT(r8.breakdown.comm_speed.avg_mb_per_s, 20.0);
  // "The high variability of MPI transfers over TCP/IP starts abruptly
  // with four processors": relative spread grows from p=2 to p>=4.
  auto spread = [&](int p) {
    const auto& cs = cached_run(plat(net::Network::kTcpGigE), p)
                         .breakdown.comm_speed;
    return (cs.max_mb_per_s - cs.min_mb_per_s) /
           std::max(cs.avg_mb_per_s, 1e-9);
  };
  EXPECT_LT(spread(2), 0.15);
  EXPECT_GT(spread(4), spread(2));
  EXPECT_GT(spread(8), 0.4);
}

TEST(Figure7Test, ScoreIsStable) {
  // "SCore provides stable and higher communication rate on GigE."
  const auto& cs =
      cached_run(plat(net::Network::kScoreGigE), 8).breakdown.comm_speed;
  const double spread =
      (cs.max_mb_per_s - cs.min_mb_per_s) / cs.avg_mb_per_s;
  const auto& tcp =
      cached_run(plat(net::Network::kTcpGigE), 8).breakdown.comm_speed;
  const double tcp_spread =
      (tcp.max_mb_per_s - tcp.min_mb_per_s) / tcp.avg_mb_per_s;
  EXPECT_LT(spread, tcp_spread);
}

TEST(Figure7Test, ByteAccountingPinnedAtTwoProcs) {
  // Closed-form pin of the Figure-7 byte totals. On the jitter-free SCore
  // stack with PME off, the only data traffic is the per-step pair of
  // global sums: the force reduction (3N doubles) and the energy
  // reduction (EnergyTerms::kCount doubles). With the MPICH-1
  // reduce+bcast at p=2, each rank moves each vector twice (reduce leg +
  // bcast leg), and each transfer is booked on both endpoints. Barriers
  // are synchronization traffic and must not contribute; neither may
  // self-sends (the receive-side symmetry this pins down).
  ExperimentSpec spec;
  spec.platform.network = net::Network::kScoreGigE;
  spec.nprocs = 2;
  spec.charmm.use_pme = false;
  spec.charmm.nsteps = 4;
  // Barrier packets never book recorder bytes but do cross the wire; turn
  // them off so the channel counters carry data transfers only.
  spec.charmm.coherency_barriers = false;
  const ExperimentResult r = run_experiment(system_fixture(), spec);

  const double vector_bytes =
      (3.0 * sysbuild::kTotalAtoms + md::EnergyTerms::kCount) * 8.0;
  const double per_rank_per_step = 2.0 * vector_bytes;
  EXPECT_DOUBLE_EQ(r.breakdown.total_bytes,
                   2.0 * spec.charmm.nsteps * per_rank_per_step);

  // The network's channel counters see each transfer once (the recorders
  // book it on both endpoints), so they must sum to exactly half.
  double channel_bytes = 0.0;
  for (const auto& ch : r.metrics.channels) channel_bytes += ch.bytes;
  EXPECT_DOUBLE_EQ(channel_bytes, r.breakdown.total_bytes / 2.0);
}

// --- Figure 8: middleware factor -----------------------------------------------

TEST(Figure8Test, CmpiNeverBeatsMpi) {
  for (int p : {2, 4, 8}) {
    EXPECT_GE(
        cached_run(plat(net::Network::kTcpGigE, middleware::Kind::kCmpi), p)
                .total_seconds(),
        cached_run(plat(), p).total_seconds() * 0.98)
        << "p=" << p;
  }
}

TEST(Figure8Test, CmpiLosesScalabilityFromFourToEight) {
  // "With the increase of the number of slaves from four to eight, both
  // parts of the execution time ... are increasing instead of falling."
  const auto& p4 =
      cached_run(plat(net::Network::kTcpGigE, middleware::Kind::kCmpi), 4);
  const auto& p8 =
      cached_run(plat(net::Network::kTcpGigE, middleware::Kind::kCmpi), 8);
  EXPECT_GT(p8.classic_seconds(), p4.classic_seconds());
  EXPECT_GT(p8.pme_seconds(), p4.pme_seconds() * 0.95);
  EXPECT_GT(p8.total_seconds(), p4.total_seconds());
}

TEST(Figure8Test, CmpiSlowdownIsSynchronization) {
  // "...a total loss of scalability in the synchronization operations that
  // are performed in the CMPI middleware."
  const auto& mpi8 = cached_run(plat(), 8);
  const auto& cmpi8 =
      cached_run(plat(net::Network::kTcpGigE, middleware::Kind::kCmpi), 8);
  const double mpi_sync = mpi8.breakdown.total_wall().sync;
  const double cmpi_sync = cmpi8.breakdown.total_wall().sync;
  EXPECT_GT(cmpi_sync, 4.0 * mpi_sync);
  // Synchronization becomes a dominant share of the CMPI total.
  EXPECT_GT(cmpi_sync / cmpi8.total_seconds(), 0.25);
}

// --- Figure 9: dual-processor nodes --------------------------------------------

TEST(Figure9Test, DualProcessorTcpLosesScalability) {
  // "Both the classic energy time and the PME energy time does not
  // decrease but increases with the number of nodes in the dual processor
  // case."
  const auto& d2 = cached_run(plat(net::Network::kTcpGigE,
                                   middleware::Kind::kMpi, 2),
                              2);
  const auto& d4 = cached_run(plat(net::Network::kTcpGigE,
                                   middleware::Kind::kMpi, 2),
                              4);
  const auto& d8 = cached_run(plat(net::Network::kTcpGigE,
                                   middleware::Kind::kMpi, 2),
                              8);
  EXPECT_GT(d4.total_seconds(), d2.total_seconds());
  EXPECT_GT(d8.total_seconds(), d4.total_seconds());
  EXPECT_GT(d8.pme_seconds(), d4.pme_seconds());
  EXPECT_GE(d8.classic_seconds(), d4.classic_seconds() * 0.95);
  // Dual-processor nodes are strictly worse than uni-processor ones here.
  EXPECT_GT(d8.total_seconds(),
            1.5 * cached_run(plat(), 8).total_seconds());
}

TEST(Figure9Test, DualProcessorFineOnMyrinet) {
  // "This is not the case for network technologies such as SCore and
  // Myrinet."
  const auto& uni = cached_run(plat(net::Network::kMyrinetGM), 8);
  const auto& dual = cached_run(plat(net::Network::kMyrinetGM,
                                     middleware::Kind::kMpi, 2),
                                8);
  EXPECT_LT(std::abs(dual.total_seconds() - uni.total_seconds()) /
                uni.total_seconds(),
            0.15);
  // Dual Myrinet still scales: 8 processors clearly beat 2.
  const auto& dual2 = cached_run(plat(net::Network::kMyrinetGM,
                                      middleware::Kind::kMpi, 2),
                                 2);
  EXPECT_LT(dual.total_seconds(), 0.5 * dual2.total_seconds());
}

TEST(Section41Test, FastEthernetBehavesLikeGigabitEthernet) {
  // "Surprisingly, the Fast Ethernet has almost the same performance
  // characteristics and the same interactions as Gigabit Ethernet."
  const double gige =
      cached_run(plat(net::Network::kTcpGigE), 4).total_seconds();
  const double faste =
      cached_run(plat(net::Network::kTcpFastEthernet), 4).total_seconds();
  EXPECT_LT(std::abs(faste - gige) / gige, 0.30);
  // And both stay far from the well-engineered stacks.
  const double score =
      cached_run(plat(net::Network::kScoreGigE), 4).total_seconds();
  EXPECT_GT(faste, 1.5 * score);
}

TEST(FactorialTest, EffectsComputedFromCells) {
  // Synthetic cells: SCore twice as fast as TCP, dual twice as slow, CMPI
  // 3x MPI; effects must recover those ratios.
  std::vector<FactorialCell> cells;
  for (const Platform& platform : full_factorial()) {
    FactorialCell cell;
    cell.platform = platform;
    cell.nprocs = 8;
    double total = 8.0;
    if (platform.network == net::Network::kScoreGigE) total /= 2.0;
    if (platform.network == net::Network::kMyrinetGM) total /= 4.0;
    if (platform.middleware == middleware::Kind::kCmpi) total *= 3.0;
    if (platform.cpus_per_node == 2) total *= 2.0;
    cell.result.breakdown.classic_wall.comp = total;
    cells.push_back(cell);
  }
  const FactorEffects fx = factor_effects(cells, 8);
  EXPECT_NEAR(fx.network_score_vs_tcp, 2.0, 1e-9);
  EXPECT_NEAR(fx.network_myrinet_vs_tcp, 4.0, 1e-9);
  EXPECT_NEAR(fx.middleware_cmpi_vs_mpi, 3.0, 1e-9);
  EXPECT_NEAR(fx.dual_vs_uni, 2.0, 1e-9);
  EXPECT_FALSE(factorial_report(cells).empty());
}

TEST(AnalyticModelTest, PredictsContentionFreeOverheads) {
  // On the deterministic stacks (no jitter), the closed-form LogGP model
  // must land in the same ballpark as the simulator (it ignores queueing
  // and skew, so generous bounds).
  for (net::Network network :
       {net::Network::kScoreGigE, net::Network::kMyrinetGM}) {
    for (int p : {2, 4, 8}) {
      const auto& sim = cached_run(plat(network), p);
      const OverheadPrediction pred = predict_step_overheads(
          net::params_for(network), p, sysbuild::kTotalAtoms,
          pme::PmeParams{80, 36, 48, 4, 0.34});
      const double sim_classic_comm =
          sim.breakdown.classic_wall.comm / 10.0;  // per step
      const double sim_pme_comm = sim.breakdown.pme_wall.comm / 10.0;
      EXPECT_GT(pred.classic_comm_per_step, 0.3 * sim_classic_comm)
          << net::to_string(network) << " p=" << p;
      EXPECT_LT(pred.classic_comm_per_step, 3.0 * sim_classic_comm)
          << net::to_string(network) << " p=" << p;
      EXPECT_GT(pred.pme_comm_per_step, 0.3 * sim_pme_comm);
      EXPECT_LT(pred.pme_comm_per_step, 3.0 * sim_pme_comm);
    }
  }
}

TEST(AnalyticModelTest, SequentialHasNoOverhead) {
  const OverheadPrediction pred = predict_step_overheads(
      net::params_for(net::Network::kScoreGigE), 1, 3552,
      pme::PmeParams{80, 36, 48, 4, 0.34});
  EXPECT_EQ(pred.total_per_step(), 0.0);
}

TEST(AnalyticModelTest, MessageTimeMonotoneInSizeAndStack) {
  const auto tcp = net::params_for(net::Network::kTcpGigE);
  const auto myri = net::params_for(net::Network::kMyrinetGM);
  EXPECT_GT(predict_message_seconds(tcp, 100000),
            predict_message_seconds(tcp, 1000));
  EXPECT_GT(predict_message_seconds(tcp, 100000),
            predict_message_seconds(myri, 100000));
  EXPECT_GT(predict_message_seconds(tcp, 100000, true),
            predict_message_seconds(tcp, 100000, false));
}

// --- general conclusions ---------------------------------------------------------

TEST(ConclusionTest, SoftwareMattersMoreThanHardware) {
  // "Performance depends more on the software infrastructures than on the
  // hardware components": SCore (same GigE wire as TCP, better software)
  // recovers most of Myrinet's advantage.
  const double tcp = cached_run(plat(net::Network::kTcpGigE), 8)
                         .total_seconds();
  const double score = cached_run(plat(net::Network::kScoreGigE), 8)
                           .total_seconds();
  const double myri = cached_run(plat(net::Network::kMyrinetGM), 8)
                          .total_seconds();
  const double software_gain = tcp - score;  // same wire, new software
  const double hardware_gain = score - myri;  // new wire on top
  EXPECT_GT(software_gain, hardware_gain);
}

TEST(ObservabilityTest, RunMetricsPopulatedEndToEnd) {
  // The resource-utilization metrics ride along on every experiment: the
  // reference 8-process run must report every node's resources, nonzero
  // cross-node traffic, and a makespan consistent with the breakdown.
  const auto& r = cached_run(plat(), 8);
  const perf::RunMetrics& m = r.metrics;
  EXPECT_EQ(m.resources.size(), 8u * 3u);  // nic_tx, nic_rx, irq_cpu per node
  // The slowest rank bounds each per-component wall time.
  EXPECT_GE(m.makespan, r.breakdown.classic_wall.total() - 1e-9);
  EXPECT_GE(m.makespan, r.breakdown.pme_wall.total() - 1e-9);
  EXPECT_FALSE(m.channels.empty());
  double bytes = 0.0;
  for (const auto& ch : m.channels) bytes += ch.bytes;
  EXPECT_GT(bytes, 0.0);
  // With 8 ranks the inbound links see incast queueing.
  const perf::ResourceMetrics* hot = m.incast_hot_spot();
  ASSERT_NE(hot, nullptr);
  EXPECT_GT(hot->queue_wait, 0.0);
  for (const auto& res : m.resources) {
    EXPECT_GE(res.utilization, 0.0);
    EXPECT_LE(res.utilization, 1.0 + 1e-9) << res.name;
  }
}

// --- Determinism: reruns and concurrent sweeps -------------------------------

TEST(DeterminismTest, SameSpecTwiceIsBitIdentical) {
  // Two runs of the same spec — including the jittery TCP stack, whose
  // RNG must be reseeded per run — agree bit-for-bit on energies, times,
  // and the full metrics export.
  ExperimentSpec spec;
  spec.platform.network = net::Network::kTcpGigE;
  spec.nprocs = 4;
  spec.charmm.nsteps = 3;
  const ExperimentResult a = run_experiment(system_fixture(), spec);
  const ExperimentResult b = run_experiment(system_fixture(), spec);
  EXPECT_EQ(a.energy.potential(), b.energy.potential());
  EXPECT_EQ(a.position_checksum, b.position_checksum);
  EXPECT_EQ(a.total_seconds(), b.total_seconds());
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(perf::metrics_json(a.metrics), perf::metrics_json(b.metrics));
}

class SweepJobsTest : public ::testing::TestWithParam<int> {};

TEST_P(SweepJobsTest, MatchesSequentialBitwise) {
  // The tentpole guarantee: a sweep is bit-identical for any worker count.
  std::vector<ExperimentSpec> specs;
  for (int p : {1, 2, 4}) {
    ExperimentSpec spec;
    spec.platform.network = net::Network::kTcpGigE;  // jitter on
    spec.nprocs = p;
    spec.charmm.nsteps = 2;
    specs.push_back(spec);
  }
  const std::vector<ExperimentResult> seq =
      run_experiments(system_fixture(), specs, 1);
  const std::vector<ExperimentResult> par =
      run_experiments(system_fixture(), specs, GetParam());
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].energy.potential(), par[i].energy.potential())
        << "cell " << i;
    EXPECT_EQ(seq[i].position_checksum, par[i].position_checksum)
        << "cell " << i;
    EXPECT_EQ(seq[i].total_seconds(), par[i].total_seconds()) << "cell " << i;
    EXPECT_EQ(perf::metrics_json(seq[i].metrics),
              perf::metrics_json(par[i].metrics))
        << "cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, SweepJobsTest, ::testing::Values(2, 4));

TEST(ConclusionTest, ReplicatedStateIdenticalOnAllRanks) {
  // run_experiment asserts per-rank checksum equality internally; verify a
  // couple of configurations execute without tripping it.
  EXPECT_NO_THROW(cached_run(plat(net::Network::kTcpGigE,
                                  middleware::Kind::kCmpi, 2),
                             8));
}

}  // namespace
}  // namespace repro::core
