// Integration coverage for the large-p DES path: hundreds of fiber ranks
// through a short ping-ring, pinning completion, counter determinism
// across repeated runs, and fiber-vs-thread counter equality (the two
// backends share the scheduler, so the simulation must be byte-identical;
// see docs/ARCHITECTURE.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "net/cluster.hpp"
#include "perf/recorder.hpp"
#include "sim/engine.hpp"

namespace repro {
namespace {

struct RingOutcome {
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  std::vector<double> finish;  // per-rank final virtual clock
  int completed = 0;
};

// Every rank exchanges with both ring neighbors each step, then computes.
RingOutcome run_ring(int p, int steps, sim::EngineBackend backend) {
  net::ClusterConfig cfg;
  cfg.nranks = p;
  cfg.cpus_per_node = 1;
  cfg.network = net::Network::kScoreGigE;
  net::ClusterNetwork net(cfg);
  sim::Engine engine(p, backend);
  std::vector<perf::RankRecorder> recorders(static_cast<std::size_t>(p));
  RingOutcome out;
  out.finish.assign(static_cast<std::size_t>(p), 0.0);
  std::vector<int> done(static_cast<std::size_t>(p), 0);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, net, recorders[static_cast<std::size_t>(ctx.rank())]);
    const int r = ctx.rank();
    const int n = ctx.size();
    double snd[4] = {static_cast<double>(r)};
    double rcv[4] = {};
    for (int s = 0; s < steps; ++s) {
      comm.sendrecv((r + 1) % n, 5, snd, sizeof snd, (r - 1 + n) % n, 5, rcv,
                    sizeof rcv);
      comm.compute(1e-6);
    }
    // The left neighbor's rank id must have arrived on the last step.
    EXPECT_DOUBLE_EQ(rcv[0], static_cast<double>((r - 1 + n) % n));
    out.finish[static_cast<std::size_t>(r)] = ctx.now();
    done[static_cast<std::size_t>(r)] = 1;
  });
  out.events = engine.events_processed();
  out.switches = engine.context_switches();
  for (int d : done) out.completed += d;
  return out;
}

TEST(DesScaleTest, FiveHundredTwelveFiberRanksComplete) {
  const RingOutcome out = run_ring(512, 4, sim::EngineBackend::kFiber);
  EXPECT_EQ(out.completed, 512);
  // 512 ranks x 4 steps, one inbound message each: the event count must
  // reflect every message having been delivered.
  EXPECT_GE(out.events, 512u * 4u);
  for (double f : out.finish) EXPECT_GT(f, 0.0);
}

TEST(DesScaleTest, RepeatedRunsAreCounterAndClockIdentical) {
  const RingOutcome a = run_ring(512, 4, sim::EngineBackend::kFiber);
  const RingOutcome b = run_ring(512, 4, sim::EngineBackend::kFiber);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.switches, b.switches);
  ASSERT_EQ(a.finish.size(), b.finish.size());
  for (std::size_t i = 0; i < a.finish.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.finish[i], b.finish[i]) << "rank " << i;
  }
}

TEST(DesScaleTest, FiberAndThreadBackendsAgree) {
  // Smaller p: the thread backend spawns one OS thread per rank.
  const RingOutcome fiber = run_ring(64, 4, sim::EngineBackend::kFiber);
  const RingOutcome thread = run_ring(64, 4, sim::EngineBackend::kThread);
  EXPECT_EQ(fiber.events, thread.events);
  EXPECT_EQ(fiber.switches, thread.switches);
  ASSERT_EQ(fiber.finish.size(), thread.finish.size());
  for (std::size_t i = 0; i < fiber.finish.size(); ++i) {
    EXPECT_DOUBLE_EQ(fiber.finish[i], thread.finish[i]) << "rank " << i;
  }
}

}  // namespace
}  // namespace repro
