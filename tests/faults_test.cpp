// Fault-injection subsystem: spec parsing/validation, the injector's
// timing arithmetic, its wiring into ClusterNetwork, and the
// seed-determinism contract (same seed => identical fault sequences and
// metrics, with or without sweep concurrency).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sweep.hpp"
#include "net/cluster.hpp"
#include "net/faults.hpp"
#include "perf/metrics.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"

namespace repro::net {
namespace {

// --- spec parsing -----------------------------------------------------

TEST(FaultSpecParseTest, EmptyStringIsEmptySpec) {
  const FaultSpec spec = parse_fault_spec("");
  EXPECT_FALSE(spec.any());
  EXPECT_EQ(to_string(spec), "");
}

TEST(FaultSpecParseTest, ParsesEveryClauseKind) {
  const FaultSpec spec = parse_fault_spec(
      "loss=0.01,rto=0.1,backoff=3,retries=8,recovery=linklevel;"
      "degrade=0-2,bw=0.5,lat=0.001;"
      "straggler=1,x=1.5,period=0.05,dur=0.005;"
      "stall=3,at=0.5,dur=0.2");
  ASSERT_EQ(spec.packet_loss.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.packet_loss[0].loss_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec.packet_loss[0].rto, 0.1);
  EXPECT_DOUBLE_EQ(spec.packet_loss[0].rto_backoff, 3.0);
  EXPECT_EQ(spec.packet_loss[0].max_retries, 8);
  EXPECT_EQ(spec.packet_loss[0].recovery,
            PacketLossFault::Recovery::kLinkLevel);
  ASSERT_EQ(spec.degraded_links.size(), 1u);
  EXPECT_EQ(spec.degraded_links[0].node_a, 0);
  EXPECT_EQ(spec.degraded_links[0].node_b, 2);
  EXPECT_DOUBLE_EQ(spec.degraded_links[0].bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(spec.degraded_links[0].extra_latency, 0.001);
  ASSERT_EQ(spec.stragglers.size(), 1u);
  EXPECT_EQ(spec.stragglers[0].node, 1);
  EXPECT_DOUBLE_EQ(spec.stragglers[0].compute_factor, 1.5);
  ASSERT_EQ(spec.stalls.size(), 1u);
  EXPECT_EQ(spec.stalls[0].node, 3);
  EXPECT_DOUBLE_EQ(spec.stalls[0].at, 0.5);
  EXPECT_DOUBLE_EQ(spec.stalls[0].duration, 0.2);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpecParseTest, ToStringRoundTrips) {
  const std::string canonical = to_string(parse_fault_spec(
      "loss=0.02;degrade=1-3,bw=0.25;straggler=0,x=2;stall=2,at=1,dur=0.5"));
  const FaultSpec reparsed = parse_fault_spec(canonical);
  EXPECT_EQ(to_string(reparsed), canonical);
}

TEST(FaultSpecParseTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_spec("frobnicate=1"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=abc"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=0.1,recovery=magic"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=0.1,unknown=2"), util::Error);
  EXPECT_THROW(parse_fault_spec("degrade=5"), util::Error);  // no pair
  EXPECT_THROW(parse_fault_spec("straggler=1.5"), util::Error);
}

// --- validation -------------------------------------------------------

TEST(FaultSpecValidateTest, RejectsOutOfRangeParameters) {
  EXPECT_THROW(parse_fault_spec("loss=1.0"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=-0.1"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=0.1,rto=0"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=0.1,backoff=0.5"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=0.1,retries=0"), util::Error);
  EXPECT_THROW(parse_fault_spec("loss=0.1,retries=65"), util::Error);
  EXPECT_THROW(parse_fault_spec("degrade=0-1,bw=0"), util::Error);
  EXPECT_THROW(parse_fault_spec("degrade=0-1,bw=1.5"), util::Error);
  EXPECT_THROW(parse_fault_spec("degrade=0-1,lat=-1"), util::Error);
  EXPECT_THROW(parse_fault_spec("straggler=0,x=0.5"), util::Error);
  EXPECT_THROW(parse_fault_spec("straggler=0,dur=0.1"), util::Error);  // no period
  EXPECT_THROW(parse_fault_spec("stall=0,dur=0"), util::Error);
  EXPECT_THROW(parse_fault_spec("stall=-1,dur=0.1"), util::Error);
}

TEST(FaultSpecValidateTest, NodeBoundsCheckedAgainstCluster) {
  const FaultSpec spec = parse_fault_spec("straggler=4,x=2");
  EXPECT_NO_THROW(spec.validate());         // no cluster: index unchecked
  EXPECT_NO_THROW(spec.validate(5));
  EXPECT_THROW(spec.validate(4), util::Error);
  EXPECT_THROW(FaultInjector(spec, 1, 4), util::Error);
}

// --- injector arithmetic ----------------------------------------------

TEST(FaultInjectorTest, StallReleaseWalksChainedWindows) {
  FaultSpec spec;
  spec.stalls.push_back(NodeStall{0, 1.0, 0.5});
  spec.stalls.push_back(NodeStall{0, 1.4, 1.0});  // overlaps the first
  spec.stalls.push_back(NodeStall{1, 0.0, 9.0});  // other node
  FaultInjector inj(spec, 42, 2);
  EXPECT_DOUBLE_EQ(inj.stall_release(0, 0.5), 0.5);   // before any window
  EXPECT_DOUBLE_EQ(inj.stall_release(0, 1.2), 2.4);   // through both
  EXPECT_DOUBLE_EQ(inj.stall_release(0, 3.0), 3.0);   // after
  EXPECT_GE(inj.counters().stall_events, 2u);
  EXPECT_GT(inj.counters().stall_delay, 0.0);
}

TEST(FaultInjectorTest, StragglerStretchesCompute) {
  FaultSpec spec;
  spec.stragglers.push_back(Straggler{0, 1.5, 0.0, 0.0});
  FaultInjector inj(spec, 42, 2);
  EXPECT_DOUBLE_EQ(inj.perturb_compute(0, 0.0, 2.0), 1.0);  // 2.0 * 0.5
  EXPECT_DOUBLE_EQ(inj.perturb_compute(1, 0.0, 2.0), 0.0);  // healthy node
  EXPECT_DOUBLE_EQ(inj.counters().straggler_delay, 1.0);
}

TEST(FaultInjectorTest, OsNoiseBurstsTickWithThePeriod) {
  FaultSpec spec;
  spec.stragglers.push_back(Straggler{0, 1.0, 0.1, 0.01});
  FaultInjector inj(spec, 42, 1);
  // A 1-second region crosses ~10 burst ticks of 10 ms each.
  const double extra = inj.perturb_compute(0, 0.0, 1.0);
  EXPECT_GT(extra, 0.05);
  EXPECT_LT(extra, 0.2);
  EXPECT_GE(inj.counters().noise_bursts, 5u);
  EXPECT_DOUBLE_EQ(inj.counters().noise_delay, extra);
}

TEST(FaultInjectorTest, DegradationScalesWireTime) {
  FaultSpec spec;
  spec.degraded_links.push_back(LinkDegradation{0, 1, 0.5, 0.002});
  FaultInjector inj(spec, 42, 3);
  const auto fx =
      inj.perturb_link(0, 1, 1000, 1, 1500, 1e6, 50e-6, /*wire=*/1e-3);
  // Halved bandwidth doubles the wire occupancy: one extra nominal wire.
  EXPECT_DOUBLE_EQ(fx.extra_wire, 1e-3);
  EXPECT_DOUBLE_EQ(fx.extra_latency, 0.002);
  EXPECT_EQ(inj.counters().degraded_messages, 1u);
  // Direction and order don't matter; untouched pairs see nothing.
  const auto back =
      inj.perturb_link(1, 0, 1000, 1, 1500, 1e6, 50e-6, 1e-3);
  EXPECT_DOUBLE_EQ(back.extra_wire, 1e-3);
  const auto other =
      inj.perturb_link(1, 2, 1000, 1, 1500, 1e6, 50e-6, 1e-3);
  EXPECT_DOUBLE_EQ(other.extra_wire, 0.0);
  EXPECT_DOUBLE_EQ(other.extra_latency, 0.0);
}

TEST(FaultInjectorTest, LinkLevelRecoveryCostsOneRoundTripPerLoss) {
  FaultSpec spec;
  PacketLossFault loss;
  loss.loss_prob = 0.5;
  loss.recovery = PacketLossFault::Recovery::kLinkLevel;
  spec.packet_loss.push_back(loss);
  FaultInjector inj(spec, 7, 2);
  const double latency = 11e-6;
  const double bandwidth = 100e6;
  FaultInjector::LinkEffect total;
  for (int i = 0; i < 64; ++i) {
    const auto fx =
        inj.perturb_link(0, 1, 1460, 1, 1460, bandwidth, latency, 1e-5);
    total.extra_latency += fx.extra_latency;
    total.retransmits += fx.retransmits;
  }
  ASSERT_GT(total.retransmits, 0u);
  // Every recovery waits exactly one link round trip.
  EXPECT_NEAR(total.extra_latency, total.retransmits * 2.0 * latency, 1e-12);
}

TEST(FaultInjectorTest, TimeoutRecoveryBacksOffExponentially) {
  FaultSpec spec;
  PacketLossFault loss;
  loss.loss_prob = 0.999;  // force max_retries consecutive losses
  loss.rto = 0.1;
  loss.rto_backoff = 2.0;
  loss.max_retries = 3;
  spec.packet_loss.push_back(loss);
  FaultInjector inj(spec, 7, 2);
  const auto fx = inj.perturb_link(0, 1, 100, 1, 1460, 1e6, 50e-6, 1e-4);
  ASSERT_EQ(fx.retransmits, 3u);
  // Waits 0.1 + 0.2 + 0.4 plus three retransmitted copies on the wire.
  EXPECT_NEAR(fx.extra_latency, 0.7, 1e-9);
  EXPECT_DOUBLE_EQ(fx.retrans_bytes, 300.0);
}

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  FaultSpec spec;
  PacketLossFault loss;
  loss.loss_prob = 0.2;
  spec.packet_loss.push_back(loss);
  FaultInjector a(spec, 1234, 4);
  FaultInjector b(spec, 1234, 4);
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.perturb_link(0, 1, 5000, 4, 1460, 1e7, 50e-6, 5e-4);
    const auto fb = b.perturb_link(0, 1, 5000, 4, 1460, 1e7, 50e-6, 5e-4);
    EXPECT_EQ(fa.retransmits, fb.retransmits);
    EXPECT_DOUBLE_EQ(fa.extra_latency, fb.extra_latency);
    EXPECT_DOUBLE_EQ(fa.extra_wire, fb.extra_wire);
  }
  EXPECT_EQ(a.counters().packets_lost, b.counters().packets_lost);
  EXPECT_GT(a.counters().packets_lost, 0u);
}

// --- ClusterNetwork wiring --------------------------------------------

TEST(ClusterFaultsTest, EmptySpecBehavesLikeNoFaults) {
  ClusterConfig config;
  config.nranks = 4;
  config.network = Network::kScoreGigE;
  ClusterNetwork plain(config);
  ClusterNetwork armed(config, params_for(config.network), FaultSpec{});
  EXPECT_FALSE(plain.faults_enabled());
  EXPECT_FALSE(armed.faults_enabled());
  EXPECT_EQ(armed.fault_counters(), nullptr);
  // Identical message sequences produce bit-identical timings.
  double t = 0.0;
  for (int i = 0; i < 32; ++i) {
    const auto a = plain.message(i % 4, (i + 1) % 4, 2000, t);
    const auto b = armed.message(i % 4, (i + 1) % 4, 2000, t);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.sender_busy, b.sender_busy);
    EXPECT_EQ(a.fault_delay, 0.0);
    EXPECT_EQ(b.fault_delay, 0.0);
    t = std::max(a.arrival, b.arrival);
  }
}

TEST(ClusterFaultsTest, StalledSenderDelaysTheMessage) {
  ClusterConfig config;
  config.nranks = 2;
  config.network = Network::kScoreGigE;
  FaultSpec spec;
  spec.stalls.push_back(NodeStall{0, 1.0, 0.5});
  ClusterNetwork net(config, params_for(config.network), spec);
  ASSERT_TRUE(net.faults_enabled());
  const MessageTiming hit = net.message(0, 1, 1000, 1.2);
  EXPECT_GE(hit.sender_stall, 0.3);  // frozen until t=1.5
  EXPECT_GE(hit.fault_delay, 0.3);
  EXPECT_GE(hit.arrival, 1.5);
  ASSERT_NE(net.fault_counters(), nullptr);
  EXPECT_GE(net.fault_counters()->stall_events, 1u);
}

TEST(ClusterFaultsTest, StalledReceiverHoldsArrival) {
  ClusterConfig config;
  config.nranks = 2;
  config.network = Network::kScoreGigE;
  FaultSpec spec;
  spec.stalls.push_back(NodeStall{1, 0.0, 2.0});  // receiver frozen
  ClusterNetwork net(config, params_for(config.network), spec);
  const MessageTiming t = net.message(0, 1, 1000, 0.5);
  EXPECT_GE(t.arrival, 2.0);
  EXPECT_GT(t.fault_delay, 0.0);
}

TEST(ClusterFaultsTest, ComputePerturbationOnlyOnFaultyNodes) {
  ClusterConfig config;
  config.nranks = 2;
  FaultSpec spec;
  spec.stragglers.push_back(Straggler{1, 2.0, 0.0, 0.0});
  ClusterNetwork net(config, params_for(config.network), spec);
  EXPECT_DOUBLE_EQ(net.compute_perturbation(0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(net.compute_perturbation(1, 0.0, 1.0), 1.0);
  net.attribute_fault_delay(1, 1.0);
  EXPECT_DOUBLE_EQ(net.fault_counters()->absorbed[1], 1.0);
}

// --- end-to-end determinism -------------------------------------------

const sysbuild::BuiltSystem& small_system() {
  static const sysbuild::BuiltSystem sys = sysbuild::build_water_box(8);
  return sys;
}

core::ExperimentSpec small_spec(int nprocs) {
  core::ExperimentSpec spec;
  spec.platform.network = Network::kTcpGigE;
  spec.nprocs = nprocs;
  spec.charmm.nsteps = 2;
  spec.charmm.pme = pme::PmeParams{24, 24, 24, 4, 0.4};
  spec.charmm.cutoff = 9.0;
  spec.charmm.switch_on = 7.5;
  return spec;
}

TEST(FaultDeterminismTest, SameSeedSameMetricsJson) {
  core::ExperimentSpec spec = small_spec(4);
  spec.faults = parse_fault_spec(
      "loss=0.01;straggler=0,x=1.3;stall=1,at=0.05,dur=0.02");
  const auto a = core::run_experiment(small_system(), spec);
  const auto b = core::run_experiment(small_system(), spec);
  ASSERT_TRUE(a.metrics.faults.enabled);
  EXPECT_GT(a.metrics.faults.total_delay(), 0.0);
  EXPECT_EQ(perf::metrics_json(a.metrics), perf::metrics_json(b.metrics));
}

TEST(FaultDeterminismTest, DifferentSeedDifferentFaultSequence) {
  core::ExperimentSpec spec = small_spec(4);
  spec.faults = parse_fault_spec("loss=0.02");
  const auto a = core::run_experiment(small_system(), spec);
  spec.seed = spec.seed + 1;
  const auto b = core::run_experiment(small_system(), spec);
  // Both injected faults, but the streams differ.
  EXPECT_GT(a.metrics.faults.packets_lost, 0u);
  EXPECT_GT(b.metrics.faults.packets_lost, 0u);
  EXPECT_NE(perf::metrics_json(a.metrics), perf::metrics_json(b.metrics));
}

TEST(FaultDeterminismTest, FaultsLeaveResultsBitIdenticalAcrossJobs) {
  std::vector<core::ExperimentSpec> specs;
  for (int p : {2, 4}) {
    core::ExperimentSpec spec = small_spec(p);
    spec.faults = parse_fault_spec(
        "loss=0.01;degrade=0-1,bw=0.5;straggler=0,x=1.2");
    specs.push_back(spec);
  }
  const auto seq = core::SweepRunner(1).run(small_system(), specs);
  const auto par = core::SweepRunner(4).run(small_system(), specs);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].ok()) << seq[i].error;
    ASSERT_TRUE(par[i].ok()) << par[i].error;
    EXPECT_GT(seq[i].result.metrics.faults.total_delay(), 0.0);
    EXPECT_EQ(perf::metrics_json(seq[i].result.metrics),
              perf::metrics_json(par[i].result.metrics));
  }
}

TEST(FaultDeterminismTest, FaultsOnlyChangeTimingNeverResults) {
  core::ExperimentSpec clean = small_spec(4);
  core::ExperimentSpec faulty = clean;
  faulty.faults = parse_fault_spec(
      "loss=0.02;degrade=0-2,bw=0.5,lat=0.001;straggler=1,x=1.5;"
      "stall=2,at=0.01,dur=0.05");
  const auto a = core::run_experiment(small_system(), clean);
  const auto b = core::run_experiment(small_system(), faulty);
  // Physics is untouched: every payload arrived intact, so energies and
  // trajectories match bit-for-bit. Only the clock moved.
  EXPECT_EQ(a.energy.potential(), b.energy.potential());
  EXPECT_EQ(a.position_checksum, b.position_checksum);
  EXPECT_GT(b.total_seconds(), a.total_seconds());
  // And the fault-free run serializes without a "faults" key.
  EXPECT_EQ(perf::metrics_json(a.metrics).find("\"faults\""),
            std::string::npos);
  EXPECT_NE(perf::metrics_json(b.metrics).find("\"faults\""),
            std::string::npos);
}

}  // namespace
}  // namespace repro::net
