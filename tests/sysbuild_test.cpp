#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "md/neighbor.hpp"
#include "sysbuild/builder.hpp"

namespace repro::sysbuild {
namespace {

using util::Vec3;

// The full system is expensive to build; share one instance.
const BuiltSystem& myoglobin() {
  static const BuiltSystem sys = build_myoglobin_like();
  return sys;
}

TEST(MyoglobinTest, PaperCompositionExact) {
  const auto& sys = myoglobin();
  EXPECT_EQ(sys.topo.natoms(), kTotalAtoms);
  EXPECT_EQ(sys.topo.natoms(), 3552);
  EXPECT_EQ(static_cast<int>(sys.positions.size()), 3552);
  // Box matches the PME grid of the paper (80 x 36 x 48 at ~1 Å).
  EXPECT_DOUBLE_EQ(sys.box.lx(), 80.0);
  EXPECT_DOUBLE_EQ(sys.box.ly(), 36.0);
  EXPECT_DOUBLE_EQ(sys.box.lz(), 48.0);
}

TEST(MyoglobinTest, ChargeNeutral) {
  EXPECT_NEAR(myoglobin().topo.total_charge(), 0.0, 1e-9);
}

TEST(MyoglobinTest, RealisticTermCounts) {
  const auto& topo = myoglobin().topo;
  // All-atom protein + waters: counts in the range of real CHARMM systems.
  EXPECT_GT(topo.bonds().size(), 3000u);
  EXPECT_LT(topo.bonds().size(), 4200u);
  EXPECT_GT(topo.angles().size(), 3500u);
  EXPECT_GT(topo.dihedrals().size(), 4000u);
  EXPECT_EQ(topo.impropers().size(), 152u);  // one per peptide carbonyl
}

TEST(MyoglobinTest, RoughlyHalfHydrogens) {
  const auto& topo = myoglobin().topo;
  int hydrogens = 0;
  for (int i = 0; i < topo.natoms(); ++i) {
    if (topo.atom(i).mass < 2.0) ++hydrogens;
  }
  const double frac = static_cast<double>(hydrogens) / topo.natoms();
  EXPECT_GT(frac, 0.30);
  EXPECT_LT(frac, 0.60);
}

TEST(MyoglobinTest, NoCatastrophicContacts) {
  const auto& sys = myoglobin();
  double worst = 1e30;
  // Cell-assisted scan via the neighbor list with a small cutoff.
  md::NeighborList nbl(3.0, 0.0);
  nbl.build(sys.topo, sys.box, sys.positions);
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    for (std::size_t t = nbl.offsets()[static_cast<std::size_t>(i)];
         t < nbl.offsets()[static_cast<std::size_t>(i) + 1]; ++t) {
      const int j = nbl.neighbors()[t];
      worst = std::min(
          worst, util::norm(sys.box.min_image(
                     sys.positions[static_cast<std::size_t>(i)] -
                     sys.positions[static_cast<std::size_t>(j)])));
    }
  }
  // Non-bonded pairs must never be inside the hard floor where the r^-12
  // wall dominates the total energy.
  EXPECT_GT(worst, 0.7);
}

TEST(MyoglobinTest, BondsAtEquilibrium) {
  // Self-consistent parameterization: b0 equals the built length.
  const auto& sys = myoglobin();
  for (const auto& b : sys.topo.bonds()) {
    const double r = util::norm(sys.box.min_image(
        sys.positions[static_cast<std::size_t>(b.i)] -
        sys.positions[static_cast<std::size_t>(b.j)]));
    EXPECT_NEAR(r, b.b0, 1e-9);
  }
}

TEST(MyoglobinTest, DeterministicForSeed) {
  const auto a = build_myoglobin_like(123);
  const auto b = build_myoglobin_like(123);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
  }
  const auto c = build_myoglobin_like(124);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    if (!(a.positions[i] == c.positions[i])) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(MyoglobinTest, AtomsInsideBox) {
  const auto& sys = myoglobin();
  for (const auto& r : sys.positions) {
    EXPECT_GE(r.x, 0.0);
    EXPECT_LT(r.x, sys.box.lx());
    EXPECT_GE(r.y, 0.0);
    EXPECT_LT(r.y, sys.box.ly());
    EXPECT_GE(r.z, 0.0);
    EXPECT_LT(r.z, sys.box.lz());
  }
}

TEST(WaterBoxTest, CompositionAndDensity) {
  const auto sys = build_water_box(4);
  EXPECT_EQ(sys.topo.natoms(), 4 * 4 * 4 * 3);
  EXPECT_EQ(sys.topo.bonds().size(), 2u * 64u);
  EXPECT_EQ(sys.topo.angles().size(), 64u);
  // ~1 g/cm^3: 64 waters * 18 amu in the box volume.
  const double density_amu_per_a3 =
      sys.topo.total_mass() / sys.box.volume();
  EXPECT_NEAR(density_amu_per_a3, 0.60, 0.05);  // 1 g/cm^3 = 0.602 amu/Å^3
  EXPECT_NEAR(sys.topo.total_charge(), 0.0, 1e-9);
}

TEST(WaterBoxTest, GeometryIsTip3pLike) {
  const auto sys = build_water_box(2);
  for (const auto& b : sys.topo.bonds()) {
    EXPECT_NEAR(b.b0, 0.9572, 1e-6);
  }
  for (const auto& a : sys.topo.angles()) {
    EXPECT_NEAR(a.theta0, 104.52 * std::numbers::pi / 180.0, 1e-6);
  }
}

TEST(RandomChargesTest, NeutralAndInBox) {
  const md::Box box(9, 11, 13);
  const auto sys = build_random_charges(24, box, 5);
  EXPECT_EQ(sys.topo.natoms(), 24);
  EXPECT_NEAR(sys.topo.total_charge(), 0.0, 1e-12);
  EXPECT_TRUE(sys.topo.bonds().empty());
  for (const auto& r : sys.positions) {
    EXPECT_GE(r.x, 0.0);
    EXPECT_LT(r.x, 9.0);
  }
  EXPECT_THROW(build_random_charges(7, box, 1), util::Error);
}

TEST(TestChainTest, HasAllBondedTermTypes) {
  const auto sys = build_test_chain(10, 2);
  EXPECT_EQ(sys.topo.natoms(), 10);
  EXPECT_EQ(sys.topo.bonds().size(), 9u);
  EXPECT_EQ(sys.topo.angles().size(), 8u);
  EXPECT_EQ(sys.topo.dihedrals().size(), 7u);
  EXPECT_EQ(sys.topo.impropers().size(), 1u);
}

}  // namespace
}  // namespace repro::sysbuild
