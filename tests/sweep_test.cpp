// SweepRunner: concurrent execution of independent experiment cells must
// be bit-identical to sequential execution, must capture per-cell errors
// without killing the sweep, and must report progress for every cell.
// This suite runs under TSan in CI — it is the concurrency audit for
// everything reachable from run_experiment.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "core/sweep.hpp"
#include "perf/metrics.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"

namespace repro::core {
namespace {

// A small system keeps the cells cheap enough for TSan's ~10x slowdown.
const sysbuild::BuiltSystem& small_system() {
  static const sysbuild::BuiltSystem sys = sysbuild::build_water_box(8);
  return sys;
}

ExperimentSpec small_spec(net::Network network, int nprocs) {
  ExperimentSpec spec;
  spec.platform.network = network;
  spec.nprocs = nprocs;
  spec.charmm.nsteps = 2;
  spec.charmm.pme = pme::PmeParams{24, 24, 24, 4, 0.4};
  spec.charmm.cutoff = 9.0;
  spec.charmm.switch_on = 7.5;
  return spec;
}

std::vector<ExperimentSpec> small_sweep() {
  std::vector<ExperimentSpec> specs;
  for (net::Network network :
       {net::Network::kTcpGigE, net::Network::kScoreGigE}) {
    for (int p : {1, 2, 4}) {
      specs.push_back(small_spec(network, p));
    }
  }
  return specs;
}

TEST(SweepRunnerTest, JobsResolution) {
  EXPECT_GE(SweepRunner(0).jobs(), 1);
  EXPECT_GE(SweepRunner(-3).jobs(), 1);
  EXPECT_EQ(SweepRunner(1).jobs(), 1);
  EXPECT_EQ(SweepRunner(7).jobs(), 7);
}

TEST(SweepRunnerTest, ParallelMatchesSequential) {
  const std::vector<ExperimentSpec> specs = small_sweep();
  const auto seq = SweepRunner(1).run(small_system(), specs);
  const auto par = SweepRunner(4).run(small_system(), specs);
  ASSERT_EQ(seq.size(), specs.size());
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(seq[i].ok()) << seq[i].error;
    ASSERT_TRUE(par[i].ok()) << par[i].error;
    // Results arrive in submission order...
    EXPECT_EQ(par[i].spec.nprocs, specs[i].nprocs);
    // ...and are bit-identical to the sequential run: energies, times,
    // and the full metrics export.
    EXPECT_EQ(seq[i].result.energy.potential(),
              par[i].result.energy.potential());
    EXPECT_EQ(seq[i].result.position_checksum,
              par[i].result.position_checksum);
    EXPECT_EQ(seq[i].result.total_seconds(), par[i].result.total_seconds());
    EXPECT_EQ(perf::metrics_json(seq[i].result.metrics),
              perf::metrics_json(par[i].result.metrics));
  }
}

TEST(SweepRunnerTest, CapturesPerCellErrors) {
  std::vector<ExperimentSpec> specs;
  specs.push_back(small_spec(net::Network::kScoreGigE, 2));
  specs.push_back(small_spec(net::Network::kScoreGigE, 0));  // invalid
  specs.push_back(small_spec(net::Network::kScoreGigE, 4));
  const auto outcomes = SweepRunner(4).run(small_system(), specs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_NE(outcomes[1].error.find("at least one process"),
            std::string::npos);
  EXPECT_TRUE(outcomes[2].ok()) << outcomes[2].error;
  // The throwing variant refuses the whole sweep, naming the cell.
  EXPECT_THROW(run_experiments(small_system(), specs, 4), util::Error);
}

TEST(SweepRunnerTest, ProgressCoversEveryCell) {
  const std::vector<ExperimentSpec> specs = small_sweep();
  std::atomic<std::size_t> calls{0};
  std::set<std::size_t> seen_done;
  std::set<int> seen_procs;
  const auto outcomes = SweepRunner(4).run(
      small_system(), specs,
      [&](std::size_t done, std::size_t total, const SweepOutcome& cell) {
        // Callbacks are serialized by the runner, so plain containers are
        // safe to touch here.
        calls.fetch_add(1);
        EXPECT_EQ(total, specs.size());
        seen_done.insert(done);
        seen_procs.insert(cell.spec.nprocs);
        EXPECT_TRUE(cell.ok()) << cell.error;
      });
  EXPECT_EQ(calls.load(), specs.size());
  // `done` counts 1..total with no duplicates or gaps.
  EXPECT_EQ(seen_done.size(), specs.size());
  EXPECT_EQ(*seen_done.begin(), 1u);
  EXPECT_EQ(*seen_done.rbegin(), specs.size());
  EXPECT_EQ(seen_procs, (std::set<int>{1, 2, 4}));
  ASSERT_EQ(outcomes.size(), specs.size());
}

TEST(SweepRunnerTest, MoreJobsThanCells) {
  std::vector<ExperimentSpec> specs{small_spec(net::Network::kScoreGigE, 2)};
  const auto outcomes = SweepRunner(16).run(small_system(), specs);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
}

}  // namespace
}  // namespace repro::core
