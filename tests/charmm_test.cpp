#include <gtest/gtest.h>

#include <cmath>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"

namespace repro::charmm {
namespace {

// Shared, relaxed full-size system (expensive: built once per binary).
const sysbuild::BuiltSystem& system_fixture() {
  static const sysbuild::BuiltSystem sys = [] {
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    relax_system(s, 60);
    return s;
  }();
  return sys;
}

CharmmConfig short_config() {
  CharmmConfig config;
  config.nsteps = 4;
  return config;
}

core::ExperimentResult run(const core::Platform& platform, int nprocs,
                           const CharmmConfig& config) {
  core::ExperimentSpec spec;
  spec.platform = platform;
  spec.nprocs = nprocs;
  spec.charmm = config;
  return core::run_experiment(system_fixture(), spec);
}

TEST(RelaxTest, ProducesReasonableStructure) {
  SimulationConfig config;
  Simulation sim(system_fixture(), config);
  const md::EnergyTerms& e = sim.evaluate();
  EXPECT_TRUE(std::isfinite(e.potential()));
  EXPECT_LT(std::abs(e.potential()), 1.0e5);
  EXPECT_LT(e.lj, 2.0e4);  // no residual clashes
  double fmax = 0.0;
  for (const auto& f : sim.forces()) fmax = std::max(fmax, util::norm(f));
  EXPECT_LT(fmax, 2000.0);
}

TEST(SequentialTest, EnergyComponentsAllPresent) {
  SimulationConfig config;
  Simulation sim(system_fixture(), config);
  const md::EnergyTerms& e = sim.evaluate();
  EXPECT_GT(e.bond, 0.0);
  EXPECT_GT(e.angle, 0.0);
  EXPECT_GT(e.dihedral, 0.0);
  EXPECT_NE(e.ewald_recip, 0.0);
  EXPECT_LT(e.ewald_self, 0.0);
  EXPECT_NE(e.ewald_excl, 0.0);
  EXPECT_GT(sim.pairs_in_list(), 400000u);
}

TEST(SequentialTest, ClassicModeHasNoEwaldTerms) {
  SimulationConfig config;
  config.use_pme = false;
  Simulation sim(system_fixture(), config);
  const md::EnergyTerms& e = sim.evaluate();
  EXPECT_EQ(e.ewald_recip, 0.0);
  EXPECT_EQ(e.ewald_self, 0.0);
  EXPECT_EQ(e.ewald_excl, 0.0);
  EXPECT_NE(e.elec, 0.0);
}

TEST(SequentialTest, NveEnergyConservationOnWaterBox) {
  static const sysbuild::BuiltSystem water = sysbuild::build_water_box(4);
  SimulationConfig config;
  config.use_pme = true;
  // beta*cutoff ~ 3.3 so the truncated erfc tail is ~3e-6 (a smaller beta
  // would make the real-space cutoff discontinuity dominate the drift).
  config.pme = pme::PmeParams{16, 16, 16, 4, 0.6};
  config.cutoff = 5.5;
  config.switch_on = 4.5;
  config.dt_ps = 0.0005;
  Simulation sim(water, config);
  sim.set_velocities_from_temperature(300.0, 7);
  sim.evaluate();
  const double e0 = sim.total_energy();
  sim.step(40);
  const double e1 = sim.total_energy();
  // Velocity Verlet at 0.5 fs on a lattice water box: tight conservation.
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 5e-3);
}

TEST(SequentialTest, MinimizerReducesEnergy) {
  static const sysbuild::BuiltSystem water = sysbuild::build_water_box(3);
  SimulationConfig config;
  config.cutoff = 4.0;
  config.switch_on = 3.2;
  config.pme = pme::PmeParams{12, 12, 12, 4, 0.4};
  Simulation sim(water, config);
  md::MinimizeOptions opts;
  opts.max_steps = 30;
  const md::MinimizeResult res = sim.minimize(opts);
  EXPECT_LE(res.final_energy, res.initial_energy);
}

// --- configuration validation ------------------------------------------------

TEST(ValidateConfigTest, AcceptsTheDefaults) {
  EXPECT_NO_THROW(validate_config(CharmmConfig{}));
  EXPECT_NO_THROW(validate_config(SimulationConfig{}));
}

TEST(ValidateConfigTest, RejectsBadCharmmConfigs) {
  // Mirrors net_test's validate_params coverage: one bad field at a time.
  {
    CharmmConfig c;
    c.nsteps = 0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.dt_ps = 0.0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.switch_on = c.cutoff;  // switching must start inside the cutoff
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.skin = -1.0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.list_rebuild_interval = 0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.temperature_k = -1.0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.pme.order = 1;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.pme.ny = 2;  // smaller than the spline order: degenerate grid
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.pme.beta = 0.0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.use_pme = false;
    c.decomp.kind = DecompKind::kTaskPme;  // task decoupling needs PME
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    CharmmConfig c;
    c.decomp.pme_ranks = -1;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    // A degenerate grid is fine when PME is off — nothing consumes it.
    CharmmConfig c;
    c.use_pme = false;
    c.pme.order = 1;
    EXPECT_NO_THROW(validate_config(c));
  }
}

TEST(ValidateConfigTest, RejectsBadSimulationConfigs) {
  {
    SimulationConfig c;
    c.cutoff = -2.0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    SimulationConfig c;
    c.switch_on = 0.0;
    EXPECT_THROW(validate_config(c), util::Error);
  }
  {
    SimulationConfig c;
    c.skin = 0.0;
    EXPECT_THROW(Simulation(system_fixture(), c), util::Error);
  }
}

TEST(ValidateConfigTest, RunExperimentRejectsBadSpecs) {
  core::ExperimentSpec spec;
  spec.charmm.nsteps = -4;
  EXPECT_THROW(core::run_experiment(system_fixture(), spec),
               util::Error);
  // A task spec whose explicit pme_ranks leaves no classic rank fails
  // before any rank spins up.
  core::ExperimentSpec task;
  task.nprocs = 4;
  task.charmm = short_config();
  task.charmm.decomp.kind = DecompKind::kTaskPme;
  task.charmm.decomp.pme_ranks = 4;
  EXPECT_THROW(core::run_experiment(system_fixture(), task),
               util::Error);
}

// --- parallel correctness across the factor space ---------------------------

TEST(ParallelCorrectnessTest, MatchesSequentialAcrossRankCounts) {
  const CharmmConfig config = short_config();
  const auto ref = run(core::reference_platform(), 1, config);
  ASSERT_TRUE(std::isfinite(ref.energy.potential()));
  for (int p : {2, 4, 8}) {
    const auto par = run(core::reference_platform(), p, config);
    EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
                std::abs(ref.energy.potential()) * 1e-6 + 1e-4)
        << "p=" << p;
    EXPECT_NEAR(par.position_checksum, ref.position_checksum,
                std::abs(ref.position_checksum) * 1e-9)
        << "p=" << p;
  }
}

TEST(ParallelCorrectnessTest, NetworkNeverChangesPhysics) {
  const CharmmConfig config = short_config();
  core::Platform platform;
  const auto tcp = run(platform, 4, config);
  platform.network = net::Network::kScoreGigE;
  const auto score = run(platform, 4, config);
  platform.network = net::Network::kMyrinetGM;
  const auto myri = run(platform, 4, config);
  // Identical arithmetic, different clocks: results are bit-identical.
  EXPECT_EQ(tcp.energy.potential(), score.energy.potential());
  EXPECT_EQ(tcp.energy.potential(), myri.energy.potential());
  EXPECT_EQ(tcp.position_checksum, myri.position_checksum);
  // But the performance differs.
  EXPECT_GT(tcp.total_seconds(), myri.total_seconds());
}

TEST(ParallelCorrectnessTest, MiddlewareNeverChangesPhysics) {
  const CharmmConfig config = short_config();
  core::Platform platform;
  const auto mpi_run = run(platform, 4, config);
  platform.middleware = middleware::Kind::kCmpi;
  const auto cmpi_run = run(platform, 4, config);
  // Different reduction orders: equal within floating-point reassociation.
  EXPECT_NEAR(cmpi_run.energy.potential(), mpi_run.energy.potential(),
              std::abs(mpi_run.energy.potential()) * 1e-6 + 1e-4);
}

TEST(ParallelCorrectnessTest, DualProcessorNeverChangesPhysics) {
  const CharmmConfig config = short_config();
  core::Platform platform;
  const auto uni = run(platform, 4, config);
  platform.cpus_per_node = 2;
  const auto dual = run(platform, 4, config);
  EXPECT_EQ(uni.energy.potential(), dual.energy.potential());
}

TEST(ParallelCorrectnessTest, ClassicOnlyModeRuns) {
  CharmmConfig config = short_config();
  config.use_pme = false;
  const auto seq = run(core::reference_platform(), 1, config);
  const auto par = run(core::reference_platform(), 4, config);
  EXPECT_NEAR(par.energy.potential(), seq.energy.potential(),
              std::abs(seq.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_DOUBLE_EQ(par.breakdown.pme_wall.total(), 0.0);
  EXPECT_GT(par.breakdown.classic_wall.total(), 0.0);
}

TEST(ParallelCorrectnessTest, ListRebuildIntervalNeverChangesPhysics) {
  // Forces are a pure function of positions (the kernel re-checks the
  // cutoff), so the neighbor-list refresh cadence must not perturb the
  // trajectory at all.
  CharmmConfig every_step = short_config();
  every_step.list_rebuild_interval = 1;
  CharmmConfig rarely = short_config();
  rarely.list_rebuild_interval = 4;
  const auto a = run(core::reference_platform(), 2, every_step);
  const auto b = run(core::reference_platform(), 2, rarely);
  EXPECT_EQ(a.energy.potential(), b.energy.potential());
  EXPECT_EQ(a.position_checksum, b.position_checksum);
  // But it does change the modeled cost (list construction time).
  EXPECT_GT(a.breakdown.classic_wall.comp, b.breakdown.classic_wall.comp);
}

TEST(ParallelCorrectnessTest, CoherencyBarriersNeverChangePhysics) {
  CharmmConfig with = short_config();
  CharmmConfig without = short_config();
  without.coherency_barriers = false;
  const auto a = run(core::reference_platform(), 4, with);
  const auto b = run(core::reference_platform(), 4, without);
  EXPECT_EQ(a.energy.potential(), b.energy.potential());
  EXPECT_EQ(a.position_checksum, b.position_checksum);
  // Without barriers the synchronization share collapses.
  EXPECT_LT(b.breakdown.total_wall().sync,
            a.breakdown.total_wall().sync + 1e-12);
}

TEST(ParallelScalingTest, ComputationDividesAcrossRanks) {
  const CharmmConfig config = short_config();
  const auto p1 = run(core::reference_platform(), 1, config);
  const auto p8 = run(core::reference_platform(), 8, config);
  const double ratio = p1.breakdown.classic_wall.comp /
                       p8.breakdown.classic_wall.comp;
  EXPECT_GT(ratio, 4.0);  // near-perfect division of classic computation
  EXPECT_LT(ratio, 10.0);
  // Sequential run has zero communication and synchronization.
  EXPECT_DOUBLE_EQ(p1.breakdown.classic_wall.overhead(), 0.0);
  EXPECT_DOUBLE_EQ(p1.breakdown.pme_wall.overhead(), 0.0);
}

TEST(ParallelScalingTest, StepSamplesRecorded) {
  const CharmmConfig config = short_config();
  const auto r = run(core::reference_platform(), 4, config);
  EXPECT_GT(r.breakdown.comm_speed.samples, 0u);
  EXPECT_GT(r.pairs_in_list, 400000u);
  EXPECT_GT(r.engine_events, 0u);
}

TEST(ExperimentTest, TimelinesRecordedWhenRequested) {
  core::ExperimentSpec spec;
  spec.nprocs = 2;
  spec.charmm = short_config();
  spec.record_timelines = true;
  const auto r = core::run_experiment(system_fixture(), spec);
  ASSERT_EQ(r.timelines.size(), 2u);
  EXPECT_GT(r.timelines[0].size(), 10u);
  // Events must lie within the run's span and be well-formed.
  for (const auto& e : r.timelines[1].events()) {
    EXPECT_LE(e.begin, e.end);
    EXPECT_GE(e.begin, 0.0);
  }
  const std::string art = perf::render_timelines(r.timelines);
  EXPECT_NE(art.find("rank 1"), std::string::npos);
}

TEST(ExperimentTest, FullFactorialEnumerates12Cells) {
  const auto cells = core::full_factorial();
  EXPECT_EQ(cells.size(), 12u);
  // Spot-check the focal point is among them.
  bool found_ref = false;
  for (const auto& c : cells) {
    if (c.network == net::Network::kTcpGigE &&
        c.middleware == middleware::Kind::kMpi && c.cpus_per_node == 1) {
      found_ref = true;
    }
  }
  EXPECT_TRUE(found_ref);
  EXPECT_FALSE(core::reference_platform().to_string().empty());
}

}  // namespace
}  // namespace repro::charmm
