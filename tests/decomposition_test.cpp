// Tests for the decomposition-strategy layer: spec parsing, physics
// invariance of every strategy across rank counts and networks, the
// task-decoupling overlap, the spatial domain decomposition (halo
// schedule, migration, idle ranks, topology/grid invariance), and the
// extended analytic predictor (times within tolerance, message/byte
// counts exact against channel counters).
#include <gtest/gtest.h>

#include <cmath>

#include "charmm/decomp_spec.hpp"
#include "charmm/simulation.hpp"
#include "charmm/spatial.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "net/topology.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"

namespace repro::charmm {
namespace {

// Shared, relaxed full-size system (expensive: built once per binary).
const sysbuild::BuiltSystem& system_fixture() {
  static const sysbuild::BuiltSystem sys = [] {
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    relax_system(s, 60);
    return s;
  }();
  return sys;
}

CharmmConfig short_config(DecompKind kind = DecompKind::kAtomReplicated) {
  CharmmConfig config;
  config.nsteps = 4;
  config.decomp.kind = kind;
  return config;
}

core::ExperimentResult run(const core::Platform& platform, int nprocs,
                           const CharmmConfig& config) {
  core::ExperimentSpec spec;
  spec.platform = platform;
  spec.nprocs = nprocs;
  spec.charmm = config;
  return core::run_experiment(system_fixture(), spec);
}

// The p=1 atom-decomposition reference everything is compared against.
const core::ExperimentResult& reference_run() {
  static const core::ExperimentResult ref =
      run(core::reference_platform(), 1, short_config());
  return ref;
}

// --- spec parsing ----------------------------------------------------------

TEST(DecompSpecTest, ParsesEveryKind) {
  EXPECT_EQ(parse_decomp_spec("").kind, DecompKind::kAtomReplicated);
  EXPECT_EQ(parse_decomp_spec("atom").kind, DecompKind::kAtomReplicated);
  EXPECT_EQ(parse_decomp_spec("replicated").kind,
            DecompKind::kAtomReplicated);
  EXPECT_EQ(parse_decomp_spec("force").kind, DecompKind::kForce);
  EXPECT_EQ(parse_decomp_spec("task").kind, DecompKind::kTaskPme);
  EXPECT_EQ(parse_decomp_spec("task").pme_ranks, 0);
  const DecompSpec explicit_pme = parse_decomp_spec("task:pme=3");
  EXPECT_EQ(explicit_pme.kind, DecompKind::kTaskPme);
  EXPECT_EQ(explicit_pme.pme_ranks, 3);
  EXPECT_EQ(parse_decomp_spec("spatial").kind, DecompKind::kSpatial);
  EXPECT_EQ(parse_decomp_spec("spatial").grid_x, 0);  // auto grid
  const DecompSpec grid = parse_decomp_spec("spatial:grid=6x3x4");
  EXPECT_EQ(grid.kind, DecompKind::kSpatial);
  EXPECT_EQ(grid.grid_x, 6);
  EXPECT_EQ(grid.grid_y, 3);
  EXPECT_EQ(grid.grid_z, 4);
}

TEST(DecompSpecTest, ToStringRoundTrips) {
  for (const char* text :
       {"atom", "force", "task", "task:pme=2", "spatial",
        "spatial:grid=6x3x4", "spatial:pme=pencil",
        "spatial:pme=pencil:grid=4x8",
        "spatial:grid=6x3x4:pme=pencil",
        "spatial:grid=6x3x4:pme=pencil:grid=2x4"}) {
    EXPECT_EQ(to_string(parse_decomp_spec(text)), text);
  }
}

TEST(DecompSpecTest, ParsesPencilPme) {
  const DecompSpec plain = parse_decomp_spec("spatial:pme=pencil");
  EXPECT_EQ(plain.kind, DecompKind::kSpatial);
  EXPECT_EQ(plain.pme_mode, PmeMode::kPencil);
  EXPECT_EQ(plain.pencil_y, 0);  // auto pencil grid
  EXPECT_EQ(plain.pencil_z, 0);

  const DecompSpec grid = parse_decomp_spec("spatial:pme=pencil:grid=4x8");
  EXPECT_EQ(grid.pme_mode, PmeMode::kPencil);
  EXPECT_EQ(grid.pencil_y, 4);
  EXPECT_EQ(grid.pencil_z, 8);

  // A grid= before pme=pencil is the cell grid; after, the pencil grid.
  const DecompSpec both =
      parse_decomp_spec("spatial:grid=6x3x4:pme=pencil:grid=2x4");
  EXPECT_EQ(both.grid_x, 6);
  EXPECT_EQ(both.grid_y, 3);
  EXPECT_EQ(both.grid_z, 4);
  EXPECT_EQ(both.pencil_y, 2);
  EXPECT_EQ(both.pencil_z, 4);

  // Slab is the default and has no spelled form.
  EXPECT_EQ(parse_decomp_spec("spatial").pme_mode, PmeMode::kSlab);
}

TEST(DecompSpecTest, RejectsMalformedPencilSpecs) {
  EXPECT_THROW(parse_decomp_spec("spatial:pme=slab"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencils"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme="), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:pme=pencil"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencilx"), util::Error);
  // Pencil grids are strictly positive Py x Pz — exactly two dimensions.
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=0x4"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=4x0"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=4"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=4x"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=2x2x2"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=2x2:grid=2x2"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=axb"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:pme=pencil:grid=2x2junk"),
               util::Error);
  EXPECT_THROW(
      parse_decomp_spec("spatial:pme=pencil:grid=99999999999999999999x2"),
      util::Error);
  // The pencil option belongs to spatial only.
  EXPECT_THROW(parse_decomp_spec("atom:pme=pencil"), util::Error);
  EXPECT_THROW(parse_decomp_spec("force:pme=pencil"), util::Error);
}

TEST(DecompSpecTest, ResolvesPencilGrid) {
  DecompSpec spec = parse_decomp_spec("spatial:pme=pencil");
  // Auto: the most-square factorization of the rank count.
  EXPECT_EQ(resolved_pencil_grid(spec, 2, 36, 48), (std::pair{1, 2}));
  EXPECT_EQ(resolved_pencil_grid(spec, 4, 36, 48), (std::pair{2, 2}));
  EXPECT_EQ(resolved_pencil_grid(spec, 8, 36, 48), (std::pair{2, 4}));
  EXPECT_EQ(resolved_pencil_grid(spec, 27, 36, 48), (std::pair{3, 9}));
  EXPECT_EQ(resolved_pencil_grid(spec, 100, 36, 48), (std::pair{10, 10}));
  EXPECT_EQ(resolved_pencil_grid(spec, 128, 36, 48), (std::pair{8, 16}));
  EXPECT_EQ(resolved_pencil_grid(spec, 7, 36, 48), (std::pair{1, 7}));

  // Explicit grids may leave ranks outside the FFT but never exceed the
  // rank count or the plane counts.
  spec = parse_decomp_spec("spatial:pme=pencil:grid=3x5");
  EXPECT_EQ(resolved_pencil_grid(spec, 16, 36, 48), (std::pair{3, 5}));
  EXPECT_THROW(resolved_pencil_grid(spec, 14, 36, 48), util::Error);
  EXPECT_THROW(resolved_pencil_grid(spec, 1, 36, 48), util::Error);
  // Pencil counts beyond the FFT plane counts cannot be laid out.
  spec = parse_decomp_spec("spatial:pme=pencil:grid=40x2");
  EXPECT_THROW(resolved_pencil_grid(spec, 128, 36, 48), util::Error);
  spec = parse_decomp_spec("spatial:pme=pencil:grid=2x50");
  EXPECT_THROW(resolved_pencil_grid(spec, 128, 36, 48), util::Error);
}

TEST(DecompSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_decomp_spec("spatia"), util::Error);
  EXPECT_THROW(parse_decomp_spec("task:pme=0"), util::Error);
  EXPECT_THROW(parse_decomp_spec("task:pme=-1"), util::Error);
  EXPECT_THROW(parse_decomp_spec("task:pme=two"), util::Error);
  EXPECT_THROW(parse_decomp_spec("task:pme="), util::Error);
  EXPECT_THROW(parse_decomp_spec("force:pme=2"), util::Error);
  // std::atoi would silently accept every one of these: trailing garbage,
  // overflow past int, and a number with a unit glued on.
  EXPECT_THROW(parse_decomp_spec("task:pme=2x"), util::Error);
  EXPECT_THROW(parse_decomp_spec("task:pme=99999999999999999999"),
               util::Error);
  EXPECT_THROW(parse_decomp_spec("task:pme=2k"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:foo=1"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid="), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid=4x2"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid=4x2x"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid=4x2x2x2"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid=0x2x2"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid=axbxc"), util::Error);
  EXPECT_THROW(parse_decomp_spec("spatial:grid=99999999999999999999x2x2"),
               util::Error);
}

TEST(DecompSpecTest, ResolvesPmeRankCount) {
  DecompSpec spec;
  spec.kind = DecompKind::kTaskPme;
  EXPECT_EQ(resolved_pme_ranks(spec, 2), 1);   // auto: max(1, p/4)
  EXPECT_EQ(resolved_pme_ranks(spec, 8), 2);
  EXPECT_EQ(resolved_pme_ranks(spec, 16), 4);
  spec.pme_ranks = 3;
  EXPECT_EQ(resolved_pme_ranks(spec, 8), 3);
  EXPECT_THROW(resolved_pme_ranks(spec, 3), util::Error);  // no classic rank
  EXPECT_THROW(resolved_pme_ranks(spec, 1), util::Error);
}

// --- physics invariance ----------------------------------------------------

TEST(DecompositionPhysicsTest, SingleProcessIsBitIdenticalAcrossKinds) {
  // At p=1 every strategy degenerates to the same sequential step
  // program, so the results must match to the bit, not just to tolerance.
  const auto& atom = reference_run();
  const auto force = run(core::reference_platform(), 1,
                         short_config(DecompKind::kForce));
  const auto task = run(core::reference_platform(), 1,
                        short_config(DecompKind::kTaskPme));
  const auto spatial = run(core::reference_platform(), 1,
                           short_config(DecompKind::kSpatial));
  EXPECT_EQ(force.energy.potential(), atom.energy.potential());
  EXPECT_EQ(force.position_checksum, atom.position_checksum);
  EXPECT_EQ(task.energy.potential(), atom.energy.potential());
  EXPECT_EQ(task.position_checksum, atom.position_checksum);
  EXPECT_EQ(spatial.energy.potential(), atom.energy.potential());
  EXPECT_EQ(spatial.position_checksum, atom.position_checksum);
  EXPECT_EQ(spatial.pairs_in_list, atom.pairs_in_list);
}

TEST(DecompositionPhysicsTest, EveryDecompositionMatchesSequential) {
  const auto& ref = reference_run();
  ASSERT_TRUE(std::isfinite(ref.energy.potential()));
  for (DecompKind kind :
       {DecompKind::kAtomReplicated, DecompKind::kForce,
        DecompKind::kTaskPme, DecompKind::kSpatial}) {
    for (int p : {2, 3, 5, 8}) {
      const auto par = run(core::reference_platform(), p, short_config(kind));
      EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
                  std::abs(ref.energy.potential()) * 1e-6 + 1e-4)
          << to_string(kind) << " p=" << p;
      EXPECT_NEAR(par.position_checksum, ref.position_checksum,
                  std::abs(ref.position_checksum) * 1e-9)
          << to_string(kind) << " p=" << p;
    }
  }
}

TEST(DecompositionPhysicsTest, ExplicitPmeRanksMatchSequential) {
  const auto& ref = reference_run();
  CharmmConfig config = short_config(DecompKind::kTaskPme);
  config.decomp.pme_ranks = 3;
  const auto par = run(core::reference_platform(), 5, config);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

TEST(DecompositionPhysicsTest, NetworkNeverChangesPhysics) {
  // Same arithmetic under different clocks: bit-identical results.
  for (DecompKind kind : {DecompKind::kForce, DecompKind::kTaskPme}) {
    core::Platform platform;
    const auto tcp = run(platform, 4, short_config(kind));
    platform.network = net::Network::kMyrinetGM;
    const auto myri = run(platform, 4, short_config(kind));
    EXPECT_EQ(tcp.energy.potential(), myri.energy.potential())
        << to_string(kind);
    EXPECT_EQ(tcp.position_checksum, myri.position_checksum)
        << to_string(kind);
  }
}

// --- schedule / overlap behavior -------------------------------------------

TEST(DecompositionScheduleTest, TaskDecouplingOverlapsClassicAndPme) {
  // With dedicated PME ranks the two components run concurrently: the
  // run's wall clock must be shorter than the serialized sum the
  // replicated decompositions pay.
  const auto task = run(core::reference_platform(), 8,
                        short_config(DecompKind::kTaskPme));
  EXPECT_GT(task.breakdown.classic_wall.total(), 0.0);
  EXPECT_GT(task.breakdown.pme_wall.total(), 0.0);
  EXPECT_LT(task.metrics.makespan,
            task.breakdown.classic_wall.total() +
                task.breakdown.pme_wall.total());
}

TEST(DecompositionScheduleTest, PhaseAttributionCoversTheSchedule) {
  const auto force = run(core::reference_platform(), 4,
                         short_config(DecompKind::kForce));
  EXPECT_GT(force.metrics.phase_seconds.count("fold"), 0u);
  EXPECT_GT(force.metrics.phase_seconds.count("expand"), 0u);
  EXPECT_GT(force.metrics.phase_seconds.count("nonbonded"), 0u);
  const auto task = run(core::reference_platform(), 8,
                        short_config(DecompKind::kTaskPme));
  EXPECT_GT(task.metrics.phase_seconds.count("pme_recip"), 0u);
  EXPECT_GT(task.metrics.phase_seconds.count("result_bcast"), 0u);
}

// --- spatial domain decomposition ------------------------------------------

TEST(SpatialDecompositionTest, MatchesSequentialAtLargerCounts) {
  // p=27 spreads the 72-cell grid thin (2-3 cells per rank), the hardest
  // halo schedule that still keeps every rank owning atoms or cells.
  const auto& ref = reference_run();
  for (int p : {4, 27}) {
    const auto par = run(core::reference_platform(), p,
                         short_config(DecompKind::kSpatial));
    EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
                std::abs(ref.energy.potential()) * 1e-6 + 1e-4)
        << "spatial p=" << p;
    EXPECT_NEAR(par.position_checksum, ref.position_checksum,
                std::abs(ref.position_checksum) * 1e-9)
        << "spatial p=" << p;
    // Within one epoch (nsteps < list_rebuild_interval) every subset list
    // is built from the same replicated step-0 positions, so the summed
    // local pair counts must partition the replicated list exactly.
    EXPECT_EQ(par.pairs_in_list, ref.pairs_in_list) << "spatial p=" << p;
    EXPECT_EQ(par.atoms_migrated, 0u) << "spatial p=" << p;
  }
}

TEST(SpatialDecompositionTest, TopologyNeverChangesPhysics) {
  // The fabric changes clocks, never arithmetic: bit-identical results
  // across single switch, fat-tree, and torus.
  core::ExperimentSpec spec;
  spec.nprocs = 8;
  spec.charmm = short_config(DecompKind::kSpatial);
  const auto single = core::run_experiment(system_fixture(), spec);
  spec.topology = net::parse_topology_spec("fattree:radix=4");
  const auto fattree = core::run_experiment(system_fixture(), spec);
  spec.topology = net::parse_topology_spec("torus");
  const auto torus = core::run_experiment(system_fixture(), spec);
  EXPECT_EQ(fattree.energy.potential(), single.energy.potential());
  EXPECT_EQ(fattree.position_checksum, single.position_checksum);
  EXPECT_EQ(torus.energy.potential(), single.energy.potential());
  EXPECT_EQ(torus.position_checksum, single.position_checksum);
}

TEST(SpatialDecompositionTest, ExplicitGridMatchesSequential) {
  const auto& ref = reference_run();
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:grid=4x3x4");
  const auto par = run(core::reference_platform(), 8, config);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

TEST(SpatialDecompositionTest, RejectsGridsFinerThanTheCutoff) {
  // 80 / 7 < cutoff + skin = 12: a pair within range could span two
  // non-adjacent cells, so the layout must refuse to run.
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:grid=7x3x4");
  EXPECT_THROW(run(core::reference_platform(), 8, config), util::Error);
}

TEST(SpatialDecompositionTest, IdleRanksBeyondTheCellCount) {
  // p=100 > 72 cells: 28 ranks own nothing, idle through the classic
  // routine, and still join every collective — results unchanged.
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.nsteps = 2;
  CharmmConfig ref_config = short_config();
  ref_config.nsteps = 2;
  const auto ref = run(core::reference_platform(), 1, ref_config);
  const auto par = run(core::reference_platform(), 100, config);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

TEST(SpatialDecompositionTest, MigratesAtomsAcrossARebuild) {
  // Eight steps cross the rebuild at step 5, where atoms that drifted
  // over a cell border change owner; ownership must follow them and the
  // physics must not care. (The fixture is only lightly relaxed, so the
  // default timestep already produces a healthy migration count.)
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.nsteps = 8;
  CharmmConfig ref_config = short_config();
  ref_config.nsteps = 8;
  const auto ref = run(core::reference_platform(), 1, ref_config);
  const auto par = run(core::reference_platform(), 8, config);
  EXPECT_GT(par.atoms_migrated, 0u);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

// --- pencil-decomposed PME -------------------------------------------------

TEST(PencilDecompositionTest, SingleProcessIsBitIdenticalToSlab) {
  // p=1 runs the sequential reference program under either PME mode, so
  // pencil must match the slab spatial run (and the atom reference) to
  // the bit.
  const auto& atom = reference_run();
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:pme=pencil");
  const auto pencil = run(core::reference_platform(), 1, config);
  EXPECT_EQ(pencil.energy.potential(), atom.energy.potential());
  EXPECT_EQ(pencil.position_checksum, atom.position_checksum);
  EXPECT_EQ(pencil.pairs_in_list, atom.pairs_in_list);
}

TEST(PencilDecompositionTest, MatchesSequentialAcrossRankCounts) {
  // Auto pencil grids: p=2 -> 1x2, 4 -> 2x2, 8 -> 2x4, 16 -> 4x4. The
  // pencil reciprocal sums partial energies over disjoint wavevector
  // sets and writes owned-atom forces directly, so the trajectory must
  // track the sequential reference at the same tolerance as the other
  // decompositions.
  const auto& ref = reference_run();
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:pme=pencil");
  for (int p : {2, 4, 8, 16}) {
    const auto par = run(core::reference_platform(), p, config);
    EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
                std::abs(ref.energy.potential()) * 1e-6 + 1e-4)
        << "pencil p=" << p;
    EXPECT_NEAR(par.position_checksum, ref.position_checksum,
                std::abs(ref.position_checksum) * 1e-9)
        << "pencil p=" << p;
    EXPECT_EQ(par.pairs_in_list, ref.pairs_in_list) << "pencil p=" << p;
  }
}

TEST(PencilDecompositionTest, NonDivisiblePencilGridMatchesSequential) {
  // 3x5 pencils over the 36x48 grid: both plane partitions are uneven
  // (36/3 even but 48/5 ragged), and one of the 16 ranks sits outside
  // the 15-rank pencil grid entirely.
  const auto& ref = reference_run();
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:pme=pencil:grid=3x5");
  const auto par = run(core::reference_platform(), 16, config);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

TEST(PencilDecompositionTest, IdleRanksBeyondTheCellCount) {
  // p=100 > 72 cells: 28 ranks own no cells (empty PME regions, no plane
  // traffic of their own) while the auto 10x10 pencil grid still uses
  // them for FFT stages.
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:pme=pencil");
  config.nsteps = 2;
  CharmmConfig ref_config = short_config();
  ref_config.nsteps = 2;
  const auto ref = run(core::reference_platform(), 1, ref_config);
  const auto par = run(core::reference_platform(), 100, config);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

TEST(PencilDecompositionTest, MigratesAtomsAcrossARebuild) {
  // The PME regions are padded by the neighbor-list skin, so an atom
  // drifting within an epoch must never leave its rank's region; eight
  // steps cross the rebuild at step 5 where ownership changes hands.
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:pme=pencil");
  config.nsteps = 8;
  CharmmConfig ref_config = short_config();
  ref_config.nsteps = 8;
  const auto ref = run(core::reference_platform(), 1, ref_config);
  const auto par = run(core::reference_platform(), 8, config);
  EXPECT_GT(par.atoms_migrated, 0u);
  EXPECT_NEAR(par.energy.potential(), ref.energy.potential(),
              std::abs(ref.energy.potential()) * 1e-6 + 1e-4);
  EXPECT_NEAR(par.position_checksum, ref.position_checksum,
              std::abs(ref.position_checksum) * 1e-9);
}

TEST(PencilDecompositionTest, RejectsInfeasiblePencilGrids) {
  // More pencils than ranks, and pencil counts exceeding the FFT plane
  // counts, must fail fast before any rank spins up.
  CharmmConfig config = short_config(DecompKind::kSpatial);
  config.decomp = parse_decomp_spec("spatial:pme=pencil:grid=4x4");
  EXPECT_THROW(run(core::reference_platform(), 8, config), util::Error);
  config.decomp = parse_decomp_spec("spatial:pme=pencil:grid=40x2");
  EXPECT_THROW(run(core::reference_platform(), 80, config), util::Error);
  config.decomp = parse_decomp_spec("spatial:pme=pencil:grid=2x50");
  EXPECT_THROW(run(core::reference_platform(), 100, config), util::Error);
  // Pencil PME requires PME: with use_pme off the spec is contradictory.
  config.decomp = parse_decomp_spec("spatial:pme=pencil");
  config.use_pme = false;
  EXPECT_THROW(run(core::reference_platform(), 8, config), util::Error);
}

TEST(PencilDecompositionTest, MessageAndByteCountsAreExact) {
  // The pencil schedule — plane exchanges both ways plus the four
  // grouped transposes — is a fixed function of the layout and pencil
  // grid, so the predictor pins it exactly, like the halo schedule.
  core::Platform platform;
  platform.network = net::Network::kScoreGigE;
  const net::NetworkParams params = net::params_for(platform.network);
  for (const char* spec_text :
       {"spatial:pme=pencil", "spatial:pme=pencil:grid=3x5"}) {
    for (int p : {2, 4, 8, 16, 27}) {
      if (std::string(spec_text).find("3x5") != std::string::npos &&
          p < 16) {
        continue;  // 3x5 pencils need at least 15 ranks
      }
      CharmmConfig config = short_config(DecompKind::kSpatial);
      config.decomp = parse_decomp_spec(spec_text);
      config.coherency_barriers = false;
      const auto sim = run(platform, p, config);
      const core::OverheadPrediction pred = core::predict_step_overheads(
          params, p, system_fixture(), config);
      double sim_messages = 0.0;
      double sim_bytes = 0.0;
      for (const auto& ch : sim.metrics.channels) {
        sim_messages += static_cast<double>(ch.messages);
        sim_bytes += ch.bytes;
      }
      const double epilogue_messages = 2.0 * (p - 1);
      const double epilogue_bytes = 2.0 * (p - 1) * 24.0;
      EXPECT_DOUBLE_EQ(
          pred.messages_per_step() * config.nsteps + epilogue_messages,
          sim_messages)
          << spec_text << " p=" << p;
      EXPECT_DOUBLE_EQ(pred.bytes_per_step() * config.nsteps + epilogue_bytes,
                       sim_bytes)
          << spec_text << " p=" << p;
    }
  }
}

// --- analytic predictor ----------------------------------------------------

TEST(DecompositionModelTest, PredictsContentionFreeCommTimes) {
  // Same tolerance discipline as AnalyticModelTest in core_test: on the
  // deterministic stacks the closed-form model must land within 0.3x-3x
  // of the simulator's per-step communication time. Task decoupling is
  // checked on the combined schedule (its classic/pme split does not line
  // up with the breakdown's component attribution under overlap).
  const pme::PmeParams grid{80, 36, 48, 4, 0.34};
  for (net::Network network :
       {net::Network::kScoreGigE, net::Network::kMyrinetGM}) {
    core::Platform platform;
    platform.network = network;
    for (int p : {2, 4, 8}) {
      {
        const auto sim = run(platform, p, short_config(DecompKind::kForce));
        const core::OverheadPrediction pred = core::predict_step_overheads(
            net::params_for(network), p, sysbuild::kTotalAtoms, grid,
            DecompSpec{DecompKind::kForce, 0});
        const double sim_classic = sim.breakdown.classic_wall.comm / 4.0;
        const double sim_pme = sim.breakdown.pme_wall.comm / 4.0;
        EXPECT_GT(pred.classic_comm_per_step, 0.3 * sim_classic)
            << "force " << net::to_string(network) << " p=" << p;
        EXPECT_LT(pred.classic_comm_per_step, 3.0 * sim_classic)
            << "force " << net::to_string(network) << " p=" << p;
        EXPECT_GT(pred.pme_comm_per_step, 0.3 * sim_pme);
        EXPECT_LT(pred.pme_comm_per_step, 3.0 * sim_pme);
      }
      {
        const auto sim = run(platform, p, short_config(DecompKind::kTaskPme));
        const core::OverheadPrediction pred = core::predict_step_overheads(
            net::params_for(network), p, sysbuild::kTotalAtoms, grid,
            DecompSpec{DecompKind::kTaskPme, 0});
        const double sim_comm = (sim.breakdown.classic_wall.comm +
                                 sim.breakdown.pme_wall.comm) /
                                4.0;
        const double pred_comm =
            pred.classic_comm_per_step + pred.pme_comm_per_step;
        EXPECT_GT(pred_comm, 0.3 * sim_comm)
            << "task " << net::to_string(network) << " p=" << p;
        EXPECT_LT(pred_comm, 3.0 * sim_comm)
            << "task " << net::to_string(network) << " p=" << p;
      }
    }
  }
}

TEST(DecompositionModelTest, MessageAndByteCountsAreExact) {
  // The predicted schedule shape is not a model but a count: with the
  // coherency barriers off (their zero-byte rounds are excluded from the
  // prediction) the per-step message and byte totals must match the
  // simulator's channel counters exactly.
  const pme::PmeParams grid{80, 36, 48, 4, 0.34};
  core::Platform platform;
  platform.network = net::Network::kScoreGigE;
  for (DecompKind kind :
       {DecompKind::kAtomReplicated, DecompKind::kForce,
        DecompKind::kTaskPme}) {
    for (int p : {3, 8}) {
      CharmmConfig config = short_config(kind);
      config.coherency_barriers = false;
      const auto sim = run(platform, p, config);
      const core::OverheadPrediction pred = core::predict_step_overheads(
          net::params_for(platform.network), p, sysbuild::kTotalAtoms, grid,
          DecompSpec{kind, 0});
      double sim_messages = 0.0;
      double sim_bytes = 0.0;
      for (const auto& ch : sim.metrics.channels) {
        sim_messages += static_cast<double>(ch.messages);
        sim_bytes += ch.bytes;
      }
      EXPECT_DOUBLE_EQ(pred.messages_per_step() * config.nsteps,
                       sim_messages)
          << to_string(kind) << " p=" << p;
      EXPECT_DOUBLE_EQ(pred.bytes_per_step() * config.nsteps, sim_bytes)
          << to_string(kind) << " p=" << p;
    }
  }
}

TEST(DecompositionModelTest, SpatialMessageAndByteCountsAreExact) {
  // The system-aware overload reproduces the simulator's own layout and
  // step-0 epoch, so within one epoch the halo schedule is an exact
  // count, not an estimate. The only traffic outside the per-step
  // schedule is the one-time 3-double result allreduce after the loop:
  // 2(p-1) messages of 24 bytes.
  core::Platform platform;
  platform.network = net::Network::kScoreGigE;
  const net::NetworkParams params = net::params_for(platform.network);
  for (bool use_pme : {true, false}) {
    for (int p : {2, 4, 8, 27}) {
      if (!use_pme && p != 8) continue;  // one PME-off pin is enough
      CharmmConfig config = short_config(DecompKind::kSpatial);
      config.coherency_barriers = false;
      config.use_pme = use_pme;
      const auto sim = run(platform, p, config);
      const core::OverheadPrediction pred = core::predict_step_overheads(
          params, p, system_fixture(), config);
      double sim_messages = 0.0;
      double sim_bytes = 0.0;
      for (const auto& ch : sim.metrics.channels) {
        sim_messages += static_cast<double>(ch.messages);
        sim_bytes += ch.bytes;
      }
      const double epilogue_messages = 2.0 * (p - 1);
      const double epilogue_bytes = 2.0 * (p - 1) * 24.0;
      EXPECT_DOUBLE_EQ(
          pred.messages_per_step() * config.nsteps + epilogue_messages,
          sim_messages)
          << "spatial p=" << p << " pme=" << use_pme;
      EXPECT_DOUBLE_EQ(pred.bytes_per_step() * config.nsteps + epilogue_bytes,
                       sim_bytes)
          << "spatial p=" << p << " pme=" << use_pme;
      if (!use_pme) {
        EXPECT_EQ(pred.pme_messages_per_step, 0.0);
        EXPECT_EQ(pred.pme_bytes_per_step, 0.0);
      }
    }
  }
}

TEST(DecompositionModelTest, SpatialPredictionNeedsTheBuiltSystem) {
  // The halo volumes are the border-cell populations, which an atom count
  // cannot capture — the natoms-only overload must refuse loudly rather
  // than return a wrong schedule.
  EXPECT_THROW(core::predict_step_overheads(
                   net::params_for(net::Network::kScoreGigE), 8,
                   sysbuild::kTotalAtoms, pme::PmeParams{80, 36, 48, 4, 0.34},
                   DecompSpec{DecompKind::kSpatial, 0}),
               util::Error);
}

TEST(DecompositionModelTest, SequentialHasNoScheduleTraffic) {
  const core::OverheadPrediction pred = core::predict_step_overheads(
      net::params_for(net::Network::kScoreGigE), 1, 3552,
      pme::PmeParams{80, 36, 48, 4, 0.34},
      DecompSpec{DecompKind::kForce, 0});
  EXPECT_EQ(pred.total_per_step(), 0.0);
  EXPECT_EQ(pred.messages_per_step(), 0.0);
  EXPECT_EQ(pred.bytes_per_step(), 0.0);
}

}  // namespace
}  // namespace repro::charmm
