// Property-test harness for the pencil-decomposed FFT and PME.
//
// Every transpose in the pencil chain is checked three ways:
//   - identity: transpose followed by its inverse returns the input
//     exactly (the transposes only move values, never do arithmetic);
//   - content: the distributed stages are a permutation of the global
//     grid — assembling every rank's pencils reconstructs each point
//     exactly once, and forward k-space matches both the serial Fft3D
//     and the slab ParallelFft3D layouts;
//   - round trip: backward(forward(x)) == x to 1e-12.
// Grid sizes, pencil shapes, and rank counts are swept over divisible,
// non-divisible, odd/mixed-radix, degenerate (1 x Pz), and
// idle-extra-rank combinations, plus randomized cases.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fft/fft.hpp"
#include "fft/parallel_fft.hpp"
#include "md/box.hpp"
#include "middleware/middleware.hpp"
#include "net/cluster.hpp"
#include "perf/recorder.hpp"
#include "pme/pme.hpp"
#include "sim/engine.hpp"
#include "sysbuild/builder.hpp"
#include "util/rng.hpp"

namespace repro::fft {
namespace {

using util::Vec3;

std::vector<Complex> random_grid(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

struct PencilCase {
  std::size_t nx, ny, nz;
  int py, pz;
  int nranks;  // >= py * pz; extras are idle non-participants
};

// Global grid index convention shared with the serial Fft3D: (x*ny+y)*nz+z.
std::size_t gidx(const PencilCase& c, std::size_t x, std::size_t y,
                 std::size_t z) {
  return (x * c.ny + y) * c.nz + z;
}

// Runs the full property battery for one configuration.
void run_pencil_case(const PencilCase& c) {
  SCOPED_TRACE(::testing::Message()
               << "grid " << c.nx << "x" << c.ny << "x" << c.nz
               << " pencils " << c.py << "x" << c.pz << " ranks "
               << c.nranks);
  const std::size_t volume = c.nx * c.ny * c.nz;
  const auto full =
      random_grid(volume, 1000 * c.nx + 100 * c.ny + 10 * c.nz +
                              static_cast<std::uint64_t>(c.py * c.pz));
  auto reference = full;
  Fft3D serial(c.nx, c.ny, c.nz);
  serial.forward(reference.data());

  const PencilGrid grid(c.nx, c.ny, c.nz, c.py, c.pz);

  // Stage sizes tile the grid exactly (each point owned once per stage).
  std::size_t s1 = 0, s2 = 0, s3 = 0;
  for (int r = 0; r < c.nranks; ++r) {
    s1 += grid.stage1_size(r);
    s2 += grid.stage2_size(r);
    s3 += grid.stage3_size(r);
  }
  EXPECT_EQ(s1, volume);
  EXPECT_EQ(s2, volume);
  EXPECT_EQ(s3, volume);

  net::ClusterConfig config;
  config.nranks = c.nranks;
  config.network = net::Network::kMyrinetGM;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(c.nranks));
  // Per-rank forward k-space pencils, gathered after the run to check the
  // global permutation property.
  std::vector<std::vector<Complex>> kspace(
      static_cast<std::size_t>(c.nranks));

  sim::Engine engine(c.nranks);
  engine.run([&](sim::RankCtx& ctx) {
    const int me = ctx.rank();
    mpi::Comm comm(ctx, cluster, recs[static_cast<std::size_t>(me)]);
    PencilFft3D pfft(grid, comm);

    if (!grid.participates(me)) {
      // Idle ranks: every call must be a no-op on empty buffers.
      EXPECT_EQ(grid.stage1_size(me), 0u);
      pfft.forward(nullptr, nullptr, 901, 902);
      pfft.backward(nullptr, nullptr, 903, 904);
      return;
    }
    const int yc = grid.ycoord(me);
    const int zc = grid.zcoord(me);
    const std::size_t ly1 = grid.ypart.count(yc);
    const std::size_t lz1 = grid.zpart.count(zc);
    const std::size_t y0 = grid.ypart.begin(yc);
    const std::size_t z0 = grid.zpart.begin(zc);

    // Fill my stage-1 x-pencils from the global grid.
    std::vector<Complex> stage1(grid.stage1_size(me));
    for (std::size_t yl = 0; yl < ly1; ++yl) {
      for (std::size_t zl = 0; zl < lz1; ++zl) {
        for (std::size_t x = 0; x < c.nx; ++x) {
          stage1[(yl * lz1 + zl) * c.nx + x] =
              full[gidx(c, x, y0 + yl, z0 + zl)];
        }
      }
    }

    // --- transpose o inverse-transpose identity (exact: data movement
    // only, no arithmetic) --------------------------------------------
    std::vector<Complex> stage2(grid.stage2_size(me));
    std::vector<Complex> stage3(grid.stage3_size(me));
    pfft.transpose_xy(stage1.data(), stage2.data(), 911);
    std::vector<Complex> back1(stage1.size());
    pfft.transpose_yx(stage2.data(), back1.data(), 912);
    for (std::size_t i = 0; i < stage1.size(); ++i) {
      ASSERT_EQ(back1[i], stage1[i]) << "X<->Y identity at " << i;
    }
    pfft.transpose_yz(stage2.data(), stage3.data(), 913);
    std::vector<Complex> back2(stage2.size());
    pfft.transpose_zy(stage3.data(), back2.data(), 914);
    for (std::size_t i = 0; i < stage2.size(); ++i) {
      ASSERT_EQ(back2[i], stage2[i]) << "Y<->Z identity at " << i;
    }

    // --- stage-2 content: a permutation of the (y-transformed?) no —
    // transposes carry raw values, so stage 2 must hold exactly the
    // global points (x in Xp(yc), z in Zp(zc), all y) -------------------
    const std::size_t lx2 = grid.xpart.count(yc);
    const std::size_t x20 = grid.xpart.begin(yc);
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t zl = 0; zl < lz1; ++zl) {
        for (std::size_t y = 0; y < c.ny; ++y) {
          ASSERT_EQ(stage2[(xl * lz1 + zl) * c.ny + y],
                    full[gidx(c, x20 + xl, y, z0 + zl)])
              << "stage-2 content at x=" << x20 + xl << " y=" << y
              << " z=" << z0 + zl;
        }
      }
    }

    // --- forward matches the serial transform ------------------------
    std::vector<Complex> kpencil(grid.stage3_size(me));
    pfft.forward(stage1.data(), kpencil.data(), 921, 922);
    const std::size_t ly3 = grid.y2part.count(zc);
    const std::size_t y30 = grid.y2part.begin(zc);
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t yl = 0; yl < ly3; ++yl) {
        for (std::size_t z = 0; z < c.nz; ++z) {
          const Complex got = kpencil[(xl * ly3 + yl) * c.nz + z];
          const Complex want = reference[gidx(c, x20 + xl, y30 + yl, z)];
          ASSERT_NEAR(std::abs(got - want), 0.0, 1e-8)
              << "k-space at x=" << x20 + xl << " y=" << y30 + yl
              << " z=" << z;
        }
      }
    }
    kspace[static_cast<std::size_t>(me)] = kpencil;

    // --- round trip: backward(forward(x)) == x to 1e-12 ---------------
    std::vector<Complex> round(stage1.size());
    pfft.backward(kpencil.data(), round.data(), 931, 932);
    for (std::size_t i = 0; i < stage1.size(); ++i) {
      ASSERT_NEAR(std::abs(round[i] - stage1[i]), 0.0, 1e-12)
          << "round trip at " << i;
    }
  });

  // --- global permutation property: every k-space point is produced by
  // exactly one rank, and the assembled grid equals the serial result --
  std::vector<int> owners(volume, 0);
  std::vector<Complex> assembled(volume);
  for (int r = 0; r < c.nranks; ++r) {
    if (!grid.participates(r)) continue;
    const int yc = grid.ycoord(r);
    const int zc = grid.zcoord(r);
    const std::size_t lx2 = grid.xpart.count(yc);
    const std::size_t ly3 = grid.y2part.count(zc);
    const std::size_t x20 = grid.xpart.begin(yc);
    const std::size_t y30 = grid.y2part.begin(zc);
    ASSERT_EQ(kspace[static_cast<std::size_t>(r)].size(),
              lx2 * ly3 * c.nz);
    for (std::size_t xl = 0; xl < lx2; ++xl) {
      for (std::size_t yl = 0; yl < ly3; ++yl) {
        for (std::size_t z = 0; z < c.nz; ++z) {
          const std::size_t g = gidx(c, x20 + xl, y30 + yl, z);
          owners[g] += 1;
          assembled[g] =
              kspace[static_cast<std::size_t>(r)][(xl * ly3 + yl) * c.nz +
                                                  z];
        }
      }
    }
  }
  for (std::size_t g = 0; g < volume; ++g) {
    ASSERT_EQ(owners[g], 1) << "k-space point " << g
                            << " owned by != 1 rank";
    EXPECT_NEAR(std::abs(assembled[g] - reference[g]), 0.0, 1e-8);
  }
}

TEST(PencilFftPropertyTest, DivisibleGrids) {
  run_pencil_case({16, 8, 8, 2, 4, 8});
  run_pencil_case({20, 12, 16, 2, 2, 4});
  run_pencil_case({8, 4, 4, 4, 4, 16});
}

TEST(PencilFftPropertyTest, NonDivisibleGrids) {
  run_pencil_case({20, 9, 12, 2, 5, 10});
  run_pencil_case({14, 10, 6, 3, 4, 12});
  run_pencil_case({80, 36, 48, 3, 5, 15});  // the paper's PME grid
}

TEST(PencilFftPropertyTest, OddAndMixedRadixGrids) {
  run_pencil_case({15, 9, 7, 3, 2, 6});
  run_pencil_case({7, 5, 11, 2, 3, 6});
  run_pencil_case({9, 3, 5, 3, 5, 15});
}

TEST(PencilFftPropertyTest, DegeneratePencilShapes) {
  run_pencil_case({12, 6, 8, 1, 1, 1});   // serial in pencil clothing
  run_pencil_case({12, 6, 8, 1, 4, 4});   // row of z-pencils
  run_pencil_case({12, 6, 8, 4, 1, 4});   // column of y-pencils
  run_pencil_case({10, 4, 6, 4, 6, 24});  // every plane its own rank
}

TEST(PencilFftPropertyTest, IdleExtraRanks) {
  // More ranks than pencils: the extras join the engine but own nothing.
  run_pencil_case({16, 8, 8, 2, 2, 7});
  run_pencil_case({15, 9, 7, 2, 2, 9});
}

TEST(PencilFftPropertyTest, RandomizedConfigurations) {
  util::Rng rng(2002);
  for (int iter = 0; iter < 6; ++iter) {
    PencilCase c;
    c.nx = 2 + rng.uniform_index(14);
    c.ny = 2 + rng.uniform_index(10);
    c.nz = 2 + rng.uniform_index(10);
    c.py = 1 + static_cast<int>(rng.uniform_index(
                   std::min<std::uint64_t>(4, c.ny)));
    c.pz = 1 + static_cast<int>(rng.uniform_index(
                   std::min<std::uint64_t>(4, c.nz)));
    c.nranks = c.py * c.pz + static_cast<int>(rng.uniform_index(3));
    run_pencil_case(c);
  }
}

// --- pencil PME against the serial reference --------------------------------

// Whole-grid regions on every rank: the plane exchange ships everything,
// and owned-atom forces must come back identical to the serial PME.
void run_pencil_pme_case(const pme::PmeParams& params, int py, int pz,
                         int nranks, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "pme grid " << params.nx << "x" << params.ny << "x"
               << params.nz << " pencils " << py << "x" << pz << " ranks "
               << nranks);
  auto sys = sysbuild::build_random_charges(36, md::Box(13, 11, 9), seed);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());

  pme::SerialPme serial(params, sys.box);
  std::vector<Vec3> serial_forces(n);
  const double serial_energy =
      serial.reciprocal(sys.topo, sys.positions, serial_forces);

  net::ClusterConfig config;
  config.nranks = nranks;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(nranks));
  std::vector<double> energies(static_cast<std::size_t>(nranks));
  std::vector<std::vector<Vec3>> forces(static_cast<std::size_t>(nranks),
                                        std::vector<Vec3>(n));
  // Round-robin atom ownership; every rank's region is the whole grid.
  std::vector<pme::GridRegion> regions(
      static_cast<std::size_t>(nranks),
      pme::GridRegion{0, params.nx, 0, params.ny, 0, params.nz});

  sim::Engine engine(nranks);
  engine.run([&](sim::RankCtx& ctx) {
    const int me = ctx.rank();
    mpi::Comm comm(ctx, cluster, recs[static_cast<std::size_t>(me)]);
    pme::PencilPme pencil(params, sys.box, comm, py, pz, regions);
    std::vector<int> owned;
    for (std::size_t i = static_cast<std::size_t>(me); i < n;
         i += static_cast<std::size_t>(nranks)) {
      owned.push_back(static_cast<int>(i));
    }
    pme::PmeWork work;
    energies[static_cast<std::size_t>(me)] = pencil.reciprocal(
        sys.topo, sys.positions, owned,
        forces[static_cast<std::size_t>(me)], 500, &work);
    EXPECT_EQ(work.atoms_spread, owned.size());
  });

  double energy = 0.0;
  std::vector<Vec3> total(n);
  for (int r = 0; r < nranks; ++r) {
    energy += energies[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < n; ++i) {
      total[i] += forces[static_cast<std::size_t>(r)][i];
    }
  }
  EXPECT_NEAR(energy, serial_energy, std::abs(serial_energy) * 1e-9 + 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(util::norm(total[i] - serial_forces[i]), 0.0, 1e-8);
  }
}

TEST(PencilPmePropertyTest, MatchesSerialAcrossShapes) {
  pme::PmeParams params;
  params.nx = 20;
  params.ny = 12;
  params.nz = 16;
  params.order = 4;
  params.beta = 0.4;
  run_pencil_pme_case(params, 1, 1, 1, 71);
  run_pencil_pme_case(params, 2, 2, 4, 72);
  run_pencil_pme_case(params, 2, 4, 8, 73);
  run_pencil_pme_case(params, 3, 2, 8, 74);  // two idle ranks
}

TEST(PencilPmePropertyTest, OddGridMatchesSerial) {
  pme::PmeParams params;
  params.nx = 15;
  params.ny = 9;
  params.nz = 7;
  params.order = 4;
  params.beta = 0.45;
  run_pencil_pme_case(params, 3, 2, 6, 75);
  run_pencil_pme_case(params, 2, 3, 6, 76);
}

}  // namespace
}  // namespace repro::fft
