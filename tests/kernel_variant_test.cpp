// Tests for the swept kernel-variant factor (--kernel=scalar|simd) and the
// per-phase energy model (--power=SPEC):
//  - spec parsing round-trips and error paths for both factors;
//  - the precomputed LJ mixing table is bit-identical to per-pair mixing;
//  - the simd pair kernel matches the scalar oracle to 1e-10 relative,
//    reports identical work counters, and is deterministic across reruns;
//  - batched B-spline weights are bit-identical per lane and keep the
//    partition of unity;
//  - the table-combine FFT and the simd SerialPme are bit-identical to
//    their scalar forms (the design claim in fft.hpp / pme.hpp);
//  - every decomposition x processor count produces (near-)identical
//    physics and *exactly* identical simulated time under either variant.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <numbers>

#include "charmm/simulation.hpp"
#include "core/experiment.hpp"
#include "fft/fft.hpp"
#include "md/neighbor.hpp"
#include "md/nonbonded.hpp"
#include "perf/power.hpp"
#include "pme/bspline.hpp"
#include "pme/pme.hpp"
#include "sysbuild/builder.hpp"
#include "util/error.hpp"
#include "util/kernel.hpp"
#include "util/rng.hpp"

namespace repro {
namespace {

using util::KernelKind;
using util::Vec3;

// --- spec parsing ----------------------------------------------------------

TEST(KernelSpecTest, ParsesBothVariants) {
  EXPECT_EQ(util::parse_kernel_kind("scalar"), KernelKind::kScalar);
  EXPECT_EQ(util::parse_kernel_kind("simd"), KernelKind::kSimd);
  EXPECT_STREQ(util::to_string(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(util::to_string(KernelKind::kSimd), "simd");
}

TEST(KernelSpecTest, RejectsGarbage) {
  EXPECT_THROW(util::parse_kernel_kind(""), util::Error);
  EXPECT_THROW(util::parse_kernel_kind("SIMD"), util::Error);
  EXPECT_THROW(util::parse_kernel_kind("simd "), util::Error);
  EXPECT_THROW(util::parse_kernel_kind("scalar,simd"), util::Error);
  EXPECT_THROW(util::parse_kernel_kind("avx2"), util::Error);
}

TEST(KernelSpecTest, DefaultHonorsEnvironment) {
  ASSERT_EQ(std::getenv("REPRO_KERNEL"), nullptr)
      << "test must run without REPRO_KERNEL set";
  EXPECT_EQ(util::default_kernel_kind(), KernelKind::kScalar);
  ::setenv("REPRO_KERNEL", "simd", 1);
  EXPECT_EQ(util::default_kernel_kind(), KernelKind::kSimd);
  ::setenv("REPRO_KERNEL", "turbo", 1);
  EXPECT_THROW(util::default_kernel_kind(), util::Error);
  ::unsetenv("REPRO_KERNEL");
  EXPECT_EQ(util::default_kernel_kind(), KernelKind::kScalar);
}

TEST(PowerSpecTest, ParsesAndRoundTrips) {
  const perf::PowerModel m =
      perf::parse_power_spec("static=55,dynamic=25.5,phase:pme_fft=18");
  EXPECT_DOUBLE_EQ(m.static_watts_per_node, 55.0);
  EXPECT_DOUBLE_EQ(m.dynamic_watts, 25.5);
  ASSERT_EQ(m.phase_watts.size(), 1u);
  EXPECT_DOUBLE_EQ(m.phase_watts.at("pme_fft"), 18.0);
  EXPECT_EQ(perf::to_string(m), "static=55,dynamic=25.5,phase:pme_fft=18");
  EXPECT_EQ(perf::to_string(perf::parse_power_spec(perf::to_string(m))),
            perf::to_string(m));
}

TEST(PowerSpecTest, RejectsGarbage) {
  EXPECT_THROW(perf::parse_power_spec(""), util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=55"), util::Error);
  EXPECT_THROW(perf::parse_power_spec("dynamic=25"), util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=55,dynamic=25,"), util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=55,dynamic=25,junk"),
               util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=55,static=1,dynamic=2"),
               util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=-5,dynamic=25"), util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=5x,dynamic=25"), util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=5,dynamic=2.5.1"), util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=5,dynamic=2,phase:=3"),
               util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=5,dynamic=2,phase:a=1,phase:a=2"),
               util::Error);
  EXPECT_THROW(perf::parse_power_spec("static=1e3,dynamic=2"), util::Error);
}

// The parse layer rejects bad flag strings; these backstops guard specs
// built in code (sweep drivers, tests) against skipping the parsers.
TEST(BackstopTest, ValidateConfigRejectsOutOfRangeKernelEnum) {
  charmm::CharmmConfig config;
  charmm::validate_config(config);  // defaults are valid
  config.kernel = static_cast<util::KernelKind>(7);
  EXPECT_THROW(charmm::validate_config(config), util::Error);
}

TEST(BackstopTest, RunExperimentRejectsNegativeWattsBuiltInCode) {
  core::ExperimentSpec spec;
  spec.nprocs = 1;
  spec.charmm.nsteps = 1;
  perf::PowerModel model;
  model.static_watts_per_node = 55.0;
  model.dynamic_watts = 25.0;
  model.phase_watts["pme_fft"] = -1.0;
  spec.power = model;
  const sysbuild::BuiltSystem sys = sysbuild::build_water_box(3);
  EXPECT_THROW(core::run_experiment(sys, spec), util::Error);
}

// --- pair table ------------------------------------------------------------

const sysbuild::BuiltSystem& water() {
  static const sysbuild::BuiltSystem sys = sysbuild::build_water_box(6);
  return sys;
}

TEST(PairTableTest, MixesExactlyLikePerPairMath) {
  const auto& sys = water();
  const auto table = md::build_pair_table(sys.topo);
  ASSERT_GT(table->ntypes, 0);
  ASSERT_EQ(table->type_of.size(),
            static_cast<std::size_t>(sys.topo.natoms()));
  ASSERT_EQ(table->charge.size(),
            static_cast<std::size_t>(sys.topo.natoms()));
  const int nt = table->ntypes;
  for (int i = 0; i < std::min(sys.topo.natoms(), 200); ++i) {
    for (int j = 0; j < std::min(sys.topo.natoms(), 200); ++j) {
      const auto& ai = sys.topo.atom(i);
      const auto& aj = sys.topo.atom(j);
      const std::size_t idx = static_cast<std::size_t>(
          table->type_of[static_cast<std::size_t>(i)] * nt +
          table->type_of[static_cast<std::size_t>(j)]);
      // Bitwise: sqrt on identical inputs is correctly rounded, so the
      // table entry must equal the per-pair expression exactly.
      EXPECT_EQ(table->eps[idx], std::sqrt(ai.eps * aj.eps));
      EXPECT_EQ(table->rmin[idx], ai.rmin_half + aj.rmin_half);
    }
    EXPECT_EQ(table->charge[static_cast<std::size_t>(i)],
              sys.topo.atom(i).charge);
  }
}

md::NonbondedOptions water_options(KernelKind kind,
                                   md::NonbondedOptions::Elec elec) {
  md::NonbondedOptions opts;
  opts.cutoff = 9.0;
  opts.switch_on = 7.0;
  opts.elec = elec;
  opts.kernel = kind;
  return opts;
}

struct PairRun {
  std::vector<Vec3> forces;
  md::EnergyTerms energy;
  md::NonbondedWork work;
};

PairRun run_pair_kernel(const md::NonbondedOptions& opts, int shard = 0,
                        int stride = 1) {
  const auto& sys = water();
  static md::NeighborList& nbl = []() -> md::NeighborList& {
    static md::NeighborList list(9.0, 2.0);
    list.build(water().topo, water().box, water().positions);
    return list;
  }();
  PairRun run;
  run.forces.assign(static_cast<std::size_t>(sys.topo.natoms()), Vec3{});
  run.work = md::nonbonded_energy(sys.topo, sys.box, sys.positions, nbl,
                                  opts, run.forces, run.energy, shard,
                                  stride);
  return run;
}

double max_force_norm(const std::vector<Vec3>& forces) {
  double m = 0.0;
  for (const Vec3& f : forces) m = std::max(m, std::sqrt(dot(f, f)));
  return m;
}

void expect_forces_close(const std::vector<Vec3>& a,
                         const std::vector<Vec3>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  const double scale = std::max(max_force_norm(a), 1.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].x, b[i].x, tol * scale) << "atom " << i;
    EXPECT_NEAR(a[i].y, b[i].y, tol * scale) << "atom " << i;
    EXPECT_NEAR(a[i].z, b[i].z, tol * scale) << "atom " << i;
  }
}

TEST(PairTableTest, TabledScalarKernelIsBitIdentical) {
  // Satellite regression: hoisting sqrt(eps_i eps_j) into the per-type
  // table must not move a single bit of the scalar kernel's output.
  for (const auto elec : {md::NonbondedOptions::Elec::kShift,
                          md::NonbondedOptions::Elec::kEwaldDirect}) {
    md::NonbondedOptions with = water_options(KernelKind::kScalar, elec);
    with.table = md::build_pair_table(water().topo);
    md::NonbondedOptions without = water_options(KernelKind::kScalar, elec);
    const PairRun a = run_pair_kernel(with);
    const PairRun b = run_pair_kernel(without);
    EXPECT_EQ(a.energy.lj, b.energy.lj);
    EXPECT_EQ(a.energy.elec, b.energy.elec);
    for (std::size_t i = 0; i < a.forces.size(); ++i) {
      EXPECT_EQ(a.forces[i].x, b.forces[i].x);
      EXPECT_EQ(a.forces[i].y, b.forces[i].y);
      EXPECT_EQ(a.forces[i].z, b.forces[i].z);
    }
  }
}

// --- pair kernel variants --------------------------------------------------

class PairKernelTest
    : public ::testing::TestWithParam<md::NonbondedOptions::Elec> {};

TEST_P(PairKernelTest, SimdMatchesScalarOracle) {
  const PairRun scalar =
      run_pair_kernel(water_options(KernelKind::kScalar, GetParam()));
  const PairRun simd =
      run_pair_kernel(water_options(KernelKind::kSimd, GetParam()));
  const double e_scale =
      std::max({std::abs(scalar.energy.lj), std::abs(scalar.energy.elec),
                1.0});
  EXPECT_NEAR(simd.energy.lj, scalar.energy.lj, 1e-10 * e_scale);
  EXPECT_NEAR(simd.energy.elec, scalar.energy.elec, 1e-10 * e_scale);
  expect_forces_close(scalar.forces, simd.forces, 1e-10);
}

TEST_P(PairKernelTest, WorkCountersAreKernelIndependent) {
  const PairRun scalar =
      run_pair_kernel(water_options(KernelKind::kScalar, GetParam()));
  const PairRun simd =
      run_pair_kernel(water_options(KernelKind::kSimd, GetParam()));
  // The cost model charges simulated time from these counts, so they must
  // match exactly (the lj/elec fields are energy partials, not counters —
  // they track the kernels' 1e-10 agreement, checked above).
  EXPECT_EQ(scalar.work.pairs_listed, simd.work.pairs_listed);
  EXPECT_EQ(scalar.work.pairs_in_cutoff, simd.work.pairs_in_cutoff);
}

TEST_P(PairKernelTest, SimdShardsSumToWhole) {
  const PairRun whole =
      run_pair_kernel(water_options(KernelKind::kSimd, GetParam()));
  std::vector<Vec3> sum(whole.forces.size(), Vec3{});
  double lj = 0.0, elec = 0.0;
  std::size_t pairs = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const PairRun part = run_pair_kernel(
        water_options(KernelKind::kSimd, GetParam()), shard, 4);
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += part.forces[i];
    lj += part.energy.lj;
    elec += part.energy.elec;
    pairs += part.work.pairs_listed;
  }
  EXPECT_EQ(pairs, whole.work.pairs_listed);
  EXPECT_NEAR(lj, whole.energy.lj, 1e-9 * std::max(std::abs(lj), 1.0));
  EXPECT_NEAR(elec, whole.energy.elec,
              1e-9 * std::max(std::abs(elec), 1.0));
  expect_forces_close(whole.forces, sum, 1e-9);
}

TEST_P(PairKernelTest, SimdIsDeterministicAcrossReruns) {
  const PairRun first =
      run_pair_kernel(water_options(KernelKind::kSimd, GetParam()));
  const PairRun second =
      run_pair_kernel(water_options(KernelKind::kSimd, GetParam()));
  EXPECT_EQ(first.energy.lj, second.energy.lj);
  EXPECT_EQ(first.energy.elec, second.energy.elec);
  for (std::size_t i = 0; i < first.forces.size(); ++i) {
    EXPECT_EQ(first.forces[i].x, second.forces[i].x);
    EXPECT_EQ(first.forces[i].y, second.forces[i].y);
    EXPECT_EQ(first.forces[i].z, second.forces[i].z);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Elec, PairKernelTest,
    ::testing::Values(md::NonbondedOptions::Elec::kShift,
                      md::NonbondedOptions::Elec::kEwaldDirect),
    [](const auto& info) {
      return info.param == md::NonbondedOptions::Elec::kShift ? "shift"
                                                              : "ewald";
    });

TEST(PairKernelTest, SimdBlockedMatchesScalarBlocked) {
  const auto& sys = water();
  md::NeighborList nbl(9.0, 2.0);
  nbl.build(sys.topo, sys.box, sys.positions);
  const auto natoms = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<int> block(natoms);
  for (std::size_t i = 0; i < natoms; ++i) {
    block[i] = static_cast<int>(i * 4 / natoms);
  }
  for (int owner = 0; owner < 4; ++owner) {
    std::vector<Vec3> fs(natoms, Vec3{}), fv(natoms, Vec3{});
    md::EnergyTerms es, ev;
    const auto ws = md::nonbonded_energy_blocked(
        sys.topo, sys.box, sys.positions, nbl,
        water_options(KernelKind::kScalar,
                      md::NonbondedOptions::Elec::kEwaldDirect),
        block, owner, 4, fs, es);
    const auto wv = md::nonbonded_energy_blocked(
        sys.topo, sys.box, sys.positions, nbl,
        water_options(KernelKind::kSimd,
                      md::NonbondedOptions::Elec::kEwaldDirect),
        block, owner, 4, fv, ev);
    EXPECT_EQ(ws.pairs_listed, wv.pairs_listed);
    const double scale = std::max(std::abs(es.lj) + std::abs(es.elec), 1.0);
    EXPECT_NEAR(es.lj, ev.lj, 1e-10 * scale);
    EXPECT_NEAR(es.elec, ev.elec, 1e-10 * scale);
    expect_forces_close(fs, fv, 1e-10);
  }
}

// --- B-spline batch --------------------------------------------------------

TEST(BsplineBatchTest, BatchIsBitIdenticalPerLane) {
  util::Rng rng(41);
  for (const int order : {2, 4, 6}) {
    constexpr std::size_t kN = 37;  // odd, exercises the loop remainder
    std::vector<double> w(kN);
    for (double& v : w) v = rng.uniform();
    std::vector<double> vals(static_cast<std::size_t>(order) * kN);
    std::vector<double> derivs(static_cast<std::size_t>(order) * kN);
    pme::bspline_weights_batch(order, w.data(), kN, vals.data(),
                               derivs.data());
    for (std::size_t a = 0; a < kN; ++a) {
      double sv[pme::kMaxOrder], sd[pme::kMaxOrder];
      pme::bspline_weights(order, w[a], sv, sd);
      for (int j = 0; j < order; ++j) {
        EXPECT_EQ(vals[static_cast<std::size_t>(j) * kN + a], sv[j])
            << "order " << order << " lane " << a << " tap " << j;
        EXPECT_EQ(derivs[static_cast<std::size_t>(j) * kN + a], sd[j])
            << "order " << order << " lane " << a << " tap " << j;
      }
    }
  }
}

TEST(BsplineBatchTest, PartitionOfUnity) {
  util::Rng rng(43);
  constexpr std::size_t kN = 16;
  std::vector<double> w(kN);
  for (double& v : w) v = rng.uniform();
  for (const int order : {4, 6}) {
    std::vector<double> vals(static_cast<std::size_t>(order) * kN);
    std::vector<double> derivs(static_cast<std::size_t>(order) * kN);
    pme::bspline_weights_batch(order, w.data(), kN, vals.data(),
                               derivs.data());
    for (std::size_t a = 0; a < kN; ++a) {
      double vsum = 0.0, dsum = 0.0;
      for (int j = 0; j < order; ++j) {
        vsum += vals[static_cast<std::size_t>(j) * kN + a];
        dsum += derivs[static_cast<std::size_t>(j) * kN + a];
      }
      EXPECT_NEAR(vsum, 1.0, 1e-12);  // weights spread the whole charge
      EXPECT_NEAR(dsum, 0.0, 1e-12);  // translating the grid changes nothing
    }
  }
}

// --- FFT variants ----------------------------------------------------------

std::vector<fft::Complex> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<fft::Complex> x(n);
  for (auto& v : x) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  return x;
}

std::vector<fft::Complex> naive_dft(const std::vector<fft::Complex>& x) {
  const std::size_t n = x.size();
  std::vector<fft::Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    fft::Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(j * k % n) /
                         static_cast<double>(n);
      acc += x[j] * fft::Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

class FftKernelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftKernelTest, SimdIsBitIdenticalToScalar) {
  const std::size_t n = GetParam();
  const fft::Fft1D scalar(n, KernelKind::kScalar);
  const fft::Fft1D simd(n, KernelKind::kSimd);
  EXPECT_EQ(simd.kernel(), KernelKind::kSimd);
  auto a = random_signal(n, 7 + n);
  auto b = a;
  scalar.forward(a.data());
  simd.forward(b.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << "n " << n << " bin " << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << "n " << n << " bin " << i;
  }
  scalar.inverse(a.data());
  simd.inverse(b.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << "n " << n << " bin " << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << "n " << n << " bin " << i;
  }
}

TEST_P(FftKernelTest, SimdMatchesNaiveDft) {
  const std::size_t n = GetParam();
  const fft::Fft1D simd(n, KernelKind::kSimd);
  const auto x = random_signal(n, 11 + n);
  const auto ref = naive_dft(x);
  auto y = x;
  simd.forward(y.data());
  double scale = 0.0;
  for (const auto& v : ref) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), ref[i].real(), 1e-12 * std::max(scale, 1.0));
    EXPECT_NEAR(y[i].imag(), ref[i].imag(), 1e-12 * std::max(scale, 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftKernelTest,
                         ::testing::Values(8, 36, 48, 60, 80, 97, 128));

TEST(FftKernelTest, Fft3DSimdIsBitIdenticalToScalar) {
  const fft::Fft3D scalar(20, 12, 16, KernelKind::kScalar);
  const fft::Fft3D simd(20, 12, 16, KernelKind::kSimd);
  auto a = random_signal(scalar.volume(), 17);
  auto b = a;
  scalar.forward(a.data());
  simd.forward(b.data());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real());
    EXPECT_EQ(a[i].imag(), b[i].imag());
  }
  scalar.inverse(a.data());
  simd.inverse(b.data());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real());
    EXPECT_EQ(a[i].imag(), b[i].imag());
  }
}

// --- serial PME ------------------------------------------------------------

TEST(PmeKernelTest, SimdSerialPmeIsBitIdenticalToScalar) {
  const auto& sys = water();
  const pme::PmeParams params{32, 32, 32, 4, 0.34};
  pme::SerialPme scalar(params, sys.box, KernelKind::kScalar);
  pme::SerialPme simd(params, sys.box, KernelKind::kSimd);
  EXPECT_EQ(simd.kernel(), KernelKind::kSimd);
  const auto natoms = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> fs(natoms, Vec3{}), fv(natoms, Vec3{});
  pme::PmeWork ws, wv;
  const double es = scalar.reciprocal(sys.topo, sys.positions, fs, &ws);
  const double ev = simd.reciprocal(sys.topo, sys.positions, fv, &wv);
  EXPECT_EQ(es, ev);
  for (std::size_t i = 0; i < natoms; ++i) {
    EXPECT_EQ(fs[i].x, fv[i].x) << "atom " << i;
    EXPECT_EQ(fs[i].y, fv[i].y) << "atom " << i;
    EXPECT_EQ(fs[i].z, fv[i].z) << "atom " << i;
  }
  EXPECT_EQ(ws.atoms_spread, wv.atoms_spread);
  EXPECT_EQ(ws.stencil_points, wv.stencil_points);
  EXPECT_EQ(ws.mesh_points, wv.mesh_points);
  EXPECT_EQ(ws.fft_flops, wv.fft_flops);
}

TEST(PmeKernelTest, SimdSerialPmeOrderSix) {
  // Order 6 exercises the wider stencil and the wrapped spread slow path
  // on a grid the paper never used.
  const auto& sys = water();
  const pme::PmeParams params{20, 24, 20, 6, 0.30};
  pme::SerialPme scalar(params, sys.box, KernelKind::kScalar);
  pme::SerialPme simd(params, sys.box, KernelKind::kSimd);
  const auto natoms = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> fs(natoms, Vec3{}), fv(natoms, Vec3{});
  const double es = scalar.reciprocal(sys.topo, sys.positions, fs);
  const double ev = simd.reciprocal(sys.topo, sys.positions, fv);
  EXPECT_EQ(es, ev);
  for (std::size_t i = 0; i < natoms; ++i) {
    EXPECT_EQ(fs[i].x, fv[i].x) << "atom " << i;
    EXPECT_EQ(fs[i].y, fv[i].y) << "atom " << i;
    EXPECT_EQ(fs[i].z, fv[i].z) << "atom " << i;
  }
}

// --- full-workload invariance ----------------------------------------------

// Shared, relaxed full-size system (expensive: built once per binary).
const sysbuild::BuiltSystem& system_fixture() {
  static const sysbuild::BuiltSystem sys = [] {
    sysbuild::BuiltSystem s = sysbuild::build_myoglobin_like();
    charmm::relax_system(s, 60);
    return s;
  }();
  return sys;
}

core::ExperimentResult run_workload(const std::string& decomp, int nprocs,
                                    KernelKind kind) {
  core::ExperimentSpec spec;
  spec.nprocs = nprocs;
  spec.charmm.nsteps = 2;
  spec.charmm.decomp = charmm::parse_decomp_spec(decomp);
  spec.charmm.kernel = kind;
  return core::run_experiment(system_fixture(), spec);
}

struct WorkloadCase {
  const char* decomp;
  int nprocs;
};

class KernelInvarianceTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(KernelInvarianceTest, SimdPreservesPhysicsAndSimulatedTime) {
  const WorkloadCase& wc = GetParam();
  const core::ExperimentResult scalar =
      run_workload(wc.decomp, wc.nprocs, KernelKind::kScalar);
  const core::ExperimentResult simd =
      run_workload(wc.decomp, wc.nprocs, KernelKind::kSimd);
  // Physics: the simd pair kernel agrees with scalar to ~1e-12 per pair;
  // two MD steps keep the divergence far below these tolerances.
  const double e_scale = std::abs(scalar.energy.potential());
  EXPECT_NEAR(simd.energy.potential(), scalar.energy.potential(),
              1e-8 * std::max(e_scale, 1.0));
  EXPECT_NEAR(simd.position_checksum, scalar.position_checksum,
              1e-6 * std::max(std::abs(scalar.position_checksum), 1.0));
  EXPECT_EQ(simd.pairs_in_list, scalar.pairs_in_list);
  // Simulated time: both variants report identical work counters, so the
  // DES must charge exactly the same virtual time.
  EXPECT_EQ(simd.total_seconds(), scalar.total_seconds());
  EXPECT_EQ(simd.metrics.makespan, scalar.metrics.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    DecompositionsByProcs, KernelInvarianceTest,
    ::testing::Values(WorkloadCase{"atom", 1}, WorkloadCase{"atom", 2},
                      WorkloadCase{"atom", 4}, WorkloadCase{"atom", 8},
                      WorkloadCase{"force", 2}, WorkloadCase{"force", 4},
                      WorkloadCase{"force", 8}, WorkloadCase{"task", 2},
                      WorkloadCase{"task", 4}, WorkloadCase{"task", 8},
                      WorkloadCase{"spatial", 2}, WorkloadCase{"spatial", 4},
                      WorkloadCase{"spatial", 8},
                      WorkloadCase{"spatial:pme=pencil", 8}),
    [](const auto& info) {
      std::string name = info.param.decomp;
      for (char& c : name) {
        if (c == ':' || c == '=') c = '_';
      }
      return name + "_p" + std::to_string(info.param.nprocs);
    });

}  // namespace
}  // namespace repro
