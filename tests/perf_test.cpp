#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "perf/metrics.hpp"
#include "perf/recorder.hpp"
#include "perf/report.hpp"
#include "perf/timeline.hpp"
#include "perf/trace_export.hpp"

namespace repro::perf {
namespace {

TEST(RecorderTest, TimesAccumulatePerComponentAndKind) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComp, 1.0);
  rec.record(Kind::kComm, 0.5);
  rec.set_component(Component::kPme);
  rec.record(Kind::kComp, 2.0);
  rec.record(Kind::kSync, 0.25);

  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kComp), 1.0);
  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kComm), 0.5);
  EXPECT_DOUBLE_EQ(rec.time(Component::kPme, Kind::kComp), 2.0);
  EXPECT_DOUBLE_EQ(rec.time(Component::kPme, Kind::kSync), 0.25);
  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kSync), 0.0);
}

TEST(RecorderTest, BreakdownSumsAndFractions) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComp, 3.0);
  rec.record(Kind::kComm, 1.0);
  rec.record(Kind::kSync, 1.0);
  const Breakdown b = rec.breakdown(Component::kClassic);
  EXPECT_DOUBLE_EQ(b.total(), 5.0);
  EXPECT_DOUBLE_EQ(b.overhead(), 2.0);
  EXPECT_DOUBLE_EQ(b.overhead_fraction(), 0.4);
  const Breakdown total = rec.total_breakdown();
  EXPECT_DOUBLE_EQ(total.total(), 5.0);
}

TEST(RecorderTest, RejectsNegativeTime) {
  RankRecorder rec;
  EXPECT_THROW(rec.record(Kind::kComp, -1.0), util::Error);
}

TEST(RecorderTest, StepCommSamples) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComm, 0.5);
  rec.record_bytes(5.0e6);
  rec.end_step();
  rec.record(Kind::kComm, 1.0);
  rec.record_bytes(2.0e6);
  rec.end_step();

  ASSERT_EQ(rec.steps().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.steps()[0].speed_mb_per_s(), 10.0);
  EXPECT_DOUBLE_EQ(rec.steps()[1].speed_mb_per_s(), 2.0);
  EXPECT_DOUBLE_EQ(rec.total_bytes(), 7.0e6);
}

TEST(RecorderTest, SyncTimeDoesNotCountAsTransfer) {
  RankRecorder rec;
  rec.record(Kind::kSync, 2.0);
  rec.end_step();
  EXPECT_DOUBLE_EQ(rec.steps()[0].comm_time, 0.0);
}

TEST(ComponentScopeTest, RestoresPrevious) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  {
    ComponentScope scope(rec, Component::kPme);
    EXPECT_EQ(rec.component(), Component::kPme);
  }
  EXPECT_EQ(rec.component(), Component::kClassic);
}

TEST(AggregateTest, WallTakesSlowestRankPerComponent) {
  std::vector<RankRecorder> recs(2);
  recs[0].set_component(Component::kClassic);
  recs[0].record(Kind::kComp, 5.0);
  recs[1].set_component(Component::kClassic);
  recs[1].record(Kind::kComp, 3.0);
  recs[1].record(Kind::kComm, 1.0);

  const RunBreakdown rb = aggregate(recs, 1);
  // Rank 0 has the larger classic total (5 > 4): its split is reported.
  EXPECT_DOUBLE_EQ(rb.classic_wall.total(), 5.0);
  EXPECT_DOUBLE_EQ(rb.classic_wall.comm, 0.0);
  EXPECT_DOUBLE_EQ(rb.classic_mean.comp, 4.0);
  EXPECT_DOUBLE_EQ(rb.classic_mean.comm, 0.5);
  EXPECT_EQ(rb.nranks, 2);
}

TEST(AggregateTest, CommSpeedGroupsRanksByNode) {
  std::vector<RankRecorder> recs(4);
  for (auto& r : recs) {
    r.record(Kind::kComm, 1.0);
    r.record_bytes(10.0e6);
    r.end_step();
  }
  // Uni-processor: 4 node samples of 10 MB/s.
  const RunBreakdown uni = aggregate(recs, 1);
  EXPECT_EQ(uni.comm_speed.samples, 4u);
  EXPECT_DOUBLE_EQ(uni.comm_speed.avg_mb_per_s, 10.0);
  // Dual-processor: 2 node samples of 20 MB / 2 s = 10 MB/s still, but
  // only 2 samples.
  const RunBreakdown dual = aggregate(recs, 2);
  EXPECT_EQ(dual.comm_speed.samples, 2u);
  EXPECT_DOUBLE_EQ(dual.comm_speed.avg_mb_per_s, 10.0);
}

TEST(AggregateTest, EmptyCommStepsYieldNoSamples) {
  std::vector<RankRecorder> recs(1);
  recs[0].record(Kind::kComp, 1.0);
  recs[0].end_step();
  const RunBreakdown rb = aggregate(recs, 1);
  EXPECT_EQ(rb.comm_speed.samples, 0u);
}

TEST(AggregateTest, RejectsEmpty) {
  std::vector<RankRecorder> recs;
  EXPECT_THROW(aggregate(recs, 1), util::Error);
}

TEST(TimelineTest, CollectsEvents) {
  Timeline t;
  t.add(0.0, 1.0, Component::kClassic, Kind::kComp);
  t.add(1.0, 1.5, Component::kClassic, Kind::kComm);
  t.add(2.0, 2.0, Component::kPme, Kind::kSync);  // zero width: dropped
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.span_end(), 1.5);
}

TEST(TimelineTest, RecorderSinkIsOptional) {
  RankRecorder rec;
  EXPECT_EQ(rec.timeline(), nullptr);
  Timeline t;
  rec.attach_timeline(&t);
  EXPECT_EQ(rec.timeline(), &t);
}

TEST(TimelineTest, RenderShowsKindsWithSeverityOrder) {
  std::vector<Timeline> rows(2);
  rows[0].add(0.0, 0.5, Component::kClassic, Kind::kComp);
  rows[0].add(0.5, 1.0, Component::kClassic, Kind::kComm);
  rows[1].add(0.0, 1.0, Component::kPme, Kind::kSync);
  RenderOptions opts;
  opts.columns = 10;
  const std::string art = render_timelines(rows, opts);
  EXPECT_NE(art.find("rank 0"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('='), std::string::npos);
  EXPECT_NE(art.find('~'), std::string::npos);
}

TEST(TimelineTest, RenderHandlesEmpty) {
  std::vector<Timeline> rows(1);
  EXPECT_NE(render_timelines(rows).find("empty"), std::string::npos);
}

TEST(TimelineTest, RenderWindowClips) {
  std::vector<Timeline> rows(1);
  rows[0].add(0.0, 10.0, Component::kClassic, Kind::kComp);
  rows[0].add(10.0, 20.0, Component::kClassic, Kind::kSync);
  RenderOptions opts;
  opts.columns = 10;
  opts.begin = 0.0;
  opts.end = 10.0;
  // Skip the legend line; inspect the rank rows only.
  const std::string art = render_timelines(rows, opts);
  const std::string rows_only = art.substr(art.find("rank"));
  EXPECT_NE(rows_only.find('#'), std::string::npos);
  EXPECT_EQ(rows_only.find('~'), std::string::npos);
}

TEST(RecorderTest, StallIsSyncButCountsInStepTransferTime) {
  // Back-pressure stalls are control transfer (sync column), yet they
  // elapse inside the transfer call, so Figure 7's per-step transfer time
  // keeps them in its denominator.
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComm, 1.0);
  rec.record_stall(0.5);
  rec.record_bytes(3.0e6);
  rec.end_step();
  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kSync), 0.5);
  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kComm), 1.0);
  ASSERT_EQ(rec.steps().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.steps()[0].comm_time, 1.5);
  EXPECT_DOUBLE_EQ(rec.steps()[0].speed_mb_per_s(), 2.0);
}

// --- Chrome trace export ----------------------------------------------------

// Minimal structural JSON validation: braces/brackets must balance outside
// string literals, strings must terminate, escapes must be consumed.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // consume the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceExportTest, BalancedJsonWithOneTrackPerRank) {
  std::vector<Timeline> rows(3);
  rows[0].add(0.0, 1.0, Component::kClassic, Kind::kComp, "compute", 0);
  rows[1].add(0.5, 2.0, Component::kPme, Kind::kComm, "send", 1);
  rows[2].add(1.0, 3.0, Component::kOther, Kind::kSync, "stall", 2);
  const std::string json = chrome_trace_json(rows);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per rank, using the index as the rank
  // when none was assigned.
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_NE(json.find("\"rank " + std::to_string(r) + "\""),
              std::string::npos);
  }
  // Kind-coded colors: comp green, comm orange, sync red.
  EXPECT_NE(json.find("\"thread_state_running\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_state_iowait\""), std::string::npos);
  EXPECT_NE(json.find("\"terrible\""), std::string::npos);
}

TEST(TraceExportTest, SlicesUseMicrosecondsAndAssignedRank) {
  std::vector<Timeline> rows(1);
  rows[0].set_rank(7);
  rows[0].add(0.5, 2.0, Component::kPme, Kind::kComm, "send", 3);
  const std::string json = chrome_trace_json(rows);
  // 0.5 s -> 500000 us, 1.5 s -> 1500000 us, on the assigned rank's track.
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"rank 7\""), std::string::npos);
  EXPECT_NE(json.find("\"step\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"pme,comm\""), std::string::npos);
}

TEST(TraceExportTest, SlicesAreMonotonicWithNonnegativeDurations) {
  std::vector<Timeline> rows(1);
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double dt = 0.1 + 0.01 * i;
    rows[0].add(t, t + dt, Component::kClassic,
                static_cast<Kind>(i % kNumKinds));
    t += dt;
  }
  const std::string json = chrome_trace_json(rows);
  // Extract the ts series in emission order; it must be nondecreasing (one
  // track, recorded in virtual-time order) with nonnegative durations.
  std::vector<double> ts;
  std::vector<double> dur;
  for (std::size_t at = json.find("\"ts\":"); at != std::string::npos;
       at = json.find("\"ts\":", at + 1)) {
    ts.push_back(std::strtod(json.c_str() + at + 5, nullptr));
  }
  for (std::size_t at = json.find("\"dur\":"); at != std::string::npos;
       at = json.find("\"dur\":", at + 1)) {
    dur.push_back(std::strtod(json.c_str() + at + 6, nullptr));
  }
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  for (double d : dur) EXPECT_GE(d, 0.0);
}

TEST(TraceExportTest, EscapesHostileLabels) {
  std::vector<Timeline> rows(1);
  rows[0].add(0.0, 1.0, Component::kOther, Kind::kComp, "a\"b\\c\nd");
  const std::string json = chrome_trace_json(rows);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(TraceExportTest, EmptyTimelinesStillValid) {
  const std::string none = chrome_trace_json({});
  EXPECT_TRUE(json_balanced(none));
  std::vector<Timeline> rows(2);  // ranks with no recorded events
  const std::string empty_rows = chrome_trace_json(rows);
  EXPECT_TRUE(json_balanced(empty_rows));
  EXPECT_EQ(count_occurrences(empty_rows, "\"thread_name\""), 2u);
  EXPECT_EQ(count_occurrences(empty_rows, "\"ph\":\"X\""), 0u);
}

// --- run metrics ------------------------------------------------------------

RunMetrics sample_metrics() {
  RunMetrics m;
  m.breakdown.nranks = 2;
  m.makespan = 10.0;
  m.resources.push_back(
      ResourceMetrics{"node0/nic_tx", 4.0, 1.0, 0.75, 4, 0.4});
  m.resources.push_back(
      ResourceMetrics{"node0/nic_rx", 2.0, 3.0, 2.0, 2, 0.2});
  m.resources.push_back(
      ResourceMetrics{"node1/nic_rx", 1.0, 0.5, 0.5, 2, 0.1});
  m.resources.push_back(ResourceMetrics{"node1/irq_cpu", 0.0, 0.0, 0.0, 0, 0.0});
  m.channels.push_back(ChannelMetrics{0, 1, 5, 5.0e6, 0.25, 1.5});
  m.channels.push_back(ChannelMetrics{1, 0, 3, 1.0e6, 0.5, 0.3});
  return m;
}

TEST(MetricsTest, DerivedSummaries) {
  const RunMetrics m = sample_metrics();
  // 4.5 s of queue wait over 8 acquisitions.
  EXPECT_DOUBLE_EQ(m.mean_queue_wait(), 4.5 / 8.0);
  EXPECT_DOUBLE_EQ(m.max_queue_wait(), 2.0);
  EXPECT_DOUBLE_EQ(m.total_stall_time(), 0.75);
  const ResourceMetrics* hot = m.incast_hot_spot();
  ASSERT_NE(hot, nullptr);
  // The most-queued inbound link wins; tx links never qualify.
  EXPECT_EQ(hot->name, "node0/nic_rx");
}

TEST(MetricsTest, HotSpotRequiresInboundTraffic) {
  RunMetrics m;
  m.resources.push_back(
      ResourceMetrics{"node0/nic_tx", 4.0, 9.0, 9.0, 4, 0.4});
  m.resources.push_back(
      ResourceMetrics{"node0/nic_rx", 0.0, 0.0, 0.0, 0, 0.0});
  EXPECT_EQ(m.incast_hot_spot(), nullptr);
  EXPECT_DOUBLE_EQ(m.total_stall_time(), 0.0);
}

TEST(MetricsTest, JsonCarriesResourcesChannelsAndSummary) {
  const std::string json = metrics_json(sample_metrics());
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"nranks\":2"), std::string::npos);
  EXPECT_NE(json.find("\"makespan_s\":10"), std::string::npos);
  EXPECT_NE(json.find("\"node0/nic_rx\""), std::string::npos);
  EXPECT_NE(json.find("\"src\":0,\"dst\":1,\"messages\":5"),
            std::string::npos);
  EXPECT_NE(json.find("\"total_stall_s\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"incast_hot_spot\""), std::string::npos);
  // Every resource appears exactly once.
  EXPECT_EQ(count_occurrences(json, "\"name\":"), 5u);  // 4 + hot-spot
}

TEST(BreakdownTest, Addition) {
  Breakdown a{1, 2, 3};
  Breakdown b{10, 20, 30};
  const Breakdown c = a + b;
  EXPECT_DOUBLE_EQ(c.comp, 11);
  EXPECT_DOUBLE_EQ(c.comm, 22);
  EXPECT_DOUBLE_EQ(c.sync, 33);
}

}  // namespace
}  // namespace repro::perf
