#include <gtest/gtest.h>

#include "perf/recorder.hpp"
#include "perf/report.hpp"
#include "perf/timeline.hpp"

namespace repro::perf {
namespace {

TEST(RecorderTest, TimesAccumulatePerComponentAndKind) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComp, 1.0);
  rec.record(Kind::kComm, 0.5);
  rec.set_component(Component::kPme);
  rec.record(Kind::kComp, 2.0);
  rec.record(Kind::kSync, 0.25);

  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kComp), 1.0);
  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kComm), 0.5);
  EXPECT_DOUBLE_EQ(rec.time(Component::kPme, Kind::kComp), 2.0);
  EXPECT_DOUBLE_EQ(rec.time(Component::kPme, Kind::kSync), 0.25);
  EXPECT_DOUBLE_EQ(rec.time(Component::kClassic, Kind::kSync), 0.0);
}

TEST(RecorderTest, BreakdownSumsAndFractions) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComp, 3.0);
  rec.record(Kind::kComm, 1.0);
  rec.record(Kind::kSync, 1.0);
  const Breakdown b = rec.breakdown(Component::kClassic);
  EXPECT_DOUBLE_EQ(b.total(), 5.0);
  EXPECT_DOUBLE_EQ(b.overhead(), 2.0);
  EXPECT_DOUBLE_EQ(b.overhead_fraction(), 0.4);
  const Breakdown total = rec.total_breakdown();
  EXPECT_DOUBLE_EQ(total.total(), 5.0);
}

TEST(RecorderTest, RejectsNegativeTime) {
  RankRecorder rec;
  EXPECT_THROW(rec.record(Kind::kComp, -1.0), util::Error);
}

TEST(RecorderTest, StepCommSamples) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  rec.record(Kind::kComm, 0.5);
  rec.record_bytes(5.0e6);
  rec.end_step();
  rec.record(Kind::kComm, 1.0);
  rec.record_bytes(2.0e6);
  rec.end_step();

  ASSERT_EQ(rec.steps().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.steps()[0].speed_mb_per_s(), 10.0);
  EXPECT_DOUBLE_EQ(rec.steps()[1].speed_mb_per_s(), 2.0);
  EXPECT_DOUBLE_EQ(rec.total_bytes(), 7.0e6);
}

TEST(RecorderTest, SyncTimeDoesNotCountAsTransfer) {
  RankRecorder rec;
  rec.record(Kind::kSync, 2.0);
  rec.end_step();
  EXPECT_DOUBLE_EQ(rec.steps()[0].comm_time, 0.0);
}

TEST(ComponentScopeTest, RestoresPrevious) {
  RankRecorder rec;
  rec.set_component(Component::kClassic);
  {
    ComponentScope scope(rec, Component::kPme);
    EXPECT_EQ(rec.component(), Component::kPme);
  }
  EXPECT_EQ(rec.component(), Component::kClassic);
}

TEST(AggregateTest, WallTakesSlowestRankPerComponent) {
  std::vector<RankRecorder> recs(2);
  recs[0].set_component(Component::kClassic);
  recs[0].record(Kind::kComp, 5.0);
  recs[1].set_component(Component::kClassic);
  recs[1].record(Kind::kComp, 3.0);
  recs[1].record(Kind::kComm, 1.0);

  const RunBreakdown rb = aggregate(recs, 1);
  // Rank 0 has the larger classic total (5 > 4): its split is reported.
  EXPECT_DOUBLE_EQ(rb.classic_wall.total(), 5.0);
  EXPECT_DOUBLE_EQ(rb.classic_wall.comm, 0.0);
  EXPECT_DOUBLE_EQ(rb.classic_mean.comp, 4.0);
  EXPECT_DOUBLE_EQ(rb.classic_mean.comm, 0.5);
  EXPECT_EQ(rb.nranks, 2);
}

TEST(AggregateTest, CommSpeedGroupsRanksByNode) {
  std::vector<RankRecorder> recs(4);
  for (auto& r : recs) {
    r.record(Kind::kComm, 1.0);
    r.record_bytes(10.0e6);
    r.end_step();
  }
  // Uni-processor: 4 node samples of 10 MB/s.
  const RunBreakdown uni = aggregate(recs, 1);
  EXPECT_EQ(uni.comm_speed.samples, 4u);
  EXPECT_DOUBLE_EQ(uni.comm_speed.avg_mb_per_s, 10.0);
  // Dual-processor: 2 node samples of 20 MB / 2 s = 10 MB/s still, but
  // only 2 samples.
  const RunBreakdown dual = aggregate(recs, 2);
  EXPECT_EQ(dual.comm_speed.samples, 2u);
  EXPECT_DOUBLE_EQ(dual.comm_speed.avg_mb_per_s, 10.0);
}

TEST(AggregateTest, EmptyCommStepsYieldNoSamples) {
  std::vector<RankRecorder> recs(1);
  recs[0].record(Kind::kComp, 1.0);
  recs[0].end_step();
  const RunBreakdown rb = aggregate(recs, 1);
  EXPECT_EQ(rb.comm_speed.samples, 0u);
}

TEST(AggregateTest, RejectsEmpty) {
  std::vector<RankRecorder> recs;
  EXPECT_THROW(aggregate(recs, 1), util::Error);
}

TEST(TimelineTest, CollectsEvents) {
  Timeline t;
  t.add(0.0, 1.0, Component::kClassic, Kind::kComp);
  t.add(1.0, 1.5, Component::kClassic, Kind::kComm);
  t.add(2.0, 2.0, Component::kPme, Kind::kSync);  // zero width: dropped
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.span_end(), 1.5);
}

TEST(TimelineTest, RecorderSinkIsOptional) {
  RankRecorder rec;
  EXPECT_EQ(rec.timeline(), nullptr);
  Timeline t;
  rec.attach_timeline(&t);
  EXPECT_EQ(rec.timeline(), &t);
}

TEST(TimelineTest, RenderShowsKindsWithSeverityOrder) {
  std::vector<Timeline> rows(2);
  rows[0].add(0.0, 0.5, Component::kClassic, Kind::kComp);
  rows[0].add(0.5, 1.0, Component::kClassic, Kind::kComm);
  rows[1].add(0.0, 1.0, Component::kPme, Kind::kSync);
  RenderOptions opts;
  opts.columns = 10;
  const std::string art = render_timelines(rows, opts);
  EXPECT_NE(art.find("rank 0"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('='), std::string::npos);
  EXPECT_NE(art.find('~'), std::string::npos);
}

TEST(TimelineTest, RenderHandlesEmpty) {
  std::vector<Timeline> rows(1);
  EXPECT_NE(render_timelines(rows).find("empty"), std::string::npos);
}

TEST(TimelineTest, RenderWindowClips) {
  std::vector<Timeline> rows(1);
  rows[0].add(0.0, 10.0, Component::kClassic, Kind::kComp);
  rows[0].add(10.0, 20.0, Component::kClassic, Kind::kSync);
  RenderOptions opts;
  opts.columns = 10;
  opts.begin = 0.0;
  opts.end = 10.0;
  // Skip the legend line; inspect the rank rows only.
  const std::string art = render_timelines(rows, opts);
  const std::string rows_only = art.substr(art.find("rank"));
  EXPECT_NE(rows_only.find('#'), std::string::npos);
  EXPECT_EQ(rows_only.find('~'), std::string::npos);
}

TEST(BreakdownTest, Addition) {
  Breakdown a{1, 2, 3};
  Breakdown b{10, 20, 30};
  const Breakdown c = a + b;
  EXPECT_DOUBLE_EQ(c.comp, 11);
  EXPECT_DOUBLE_EQ(c.comm, 22);
  EXPECT_DOUBLE_EQ(c.sync, 33);
}

}  // namespace
}  // namespace repro::perf
