#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "md/nonbonded.hpp"
#include "middleware/middleware.hpp"
#include "net/cluster.hpp"
#include "pme/bspline.hpp"
#include "pme/ewald_ref.hpp"
#include "pme/pme.hpp"
#include "sim/engine.hpp"
#include "sysbuild/builder.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace repro::pme {
namespace {

using util::Vec3;

// --- B-splines ---------------------------------------------------------------

class BsplineOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(BsplineOrderTest, PartitionOfUnity) {
  const int order = GetParam();
  for (double w : {0.0, 0.1, 0.37, 0.5, 0.77, 0.999}) {
    double vals[kMaxOrder];
    double derivs[kMaxOrder];
    bspline_weights(order, w, vals, derivs);
    double sum = 0.0;
    double dsum = 0.0;
    for (int j = 0; j < order; ++j) {
      EXPECT_GE(vals[j], -1e-14);
      sum += vals[j];
      dsum += derivs[j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << order << " w " << w;
    // Derivatives of a partition of unity sum to zero.
    EXPECT_NEAR(dsum, 0.0, 1e-12);
  }
}

TEST_P(BsplineOrderTest, DerivativeMatchesFiniteDifference) {
  const int order = GetParam();
  const double w = 0.4;
  const double h = 1e-7;
  double v0[kMaxOrder], v1[kMaxOrder], d[kMaxOrder];
  bspline_weights(order, w - h, v0, nullptr);
  bspline_weights(order, w + h, v1, nullptr);
  double vals[kMaxOrder];
  bspline_weights(order, w, vals, d);
  for (int j = 0; j < order; ++j) {
    EXPECT_NEAR(d[j], (v1[j] - v0[j]) / (2 * h), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BsplineOrderTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(BsplineTest, KnownValuesOrder2) {
  double vals[kMaxOrder];
  bspline_weights(2, 0.25, vals, nullptr);
  // M2(x) = x on [0,1], 2-x on [1,2]: M2(0.25) = 0.25, M2(1.25) = 0.75.
  EXPECT_NEAR(vals[0], 0.25, 1e-15);
  EXPECT_NEAR(vals[1], 0.75, 1e-15);
}

TEST(BsplineTest, KnownValuesOrder4AtHalf) {
  double vals[kMaxOrder];
  bspline_weights(4, 0.5, vals, nullptr);
  // Cubic B-spline at x = 0.5, 1.5, 2.5, 3.5: 1/48, 23/48, 23/48, 1/48.
  EXPECT_NEAR(vals[0], 1.0 / 48.0, 1e-12);
  EXPECT_NEAR(vals[1], 23.0 / 48.0, 1e-12);
  EXPECT_NEAR(vals[2], 23.0 / 48.0, 1e-12);
  EXPECT_NEAR(vals[3], 1.0 / 48.0, 1e-12);
}

TEST(BsplineTest, ModuliPositiveAndPatched) {
  for (int order : {4, 6}) {
    for (std::size_t n : {16u, 36u, 48u, 80u}) {
      const auto mod = bspline_moduli(n, order);
      ASSERT_EQ(mod.size(), n);
      for (double m : mod) EXPECT_GT(m, 0.0);
      EXPECT_NEAR(mod[0], 1.0, 1e-9);  // b(0) = 1
    }
  }
}

// --- Ewald identities ----------------------------------------------------------

TEST(EwaldTest, SelfEnergyFormula) {
  md::Topology topo(2);
  topo.atom(0).charge = 1.0;
  topo.atom(1).charge = -2.0;
  const double beta = 0.4;
  EXPECT_NEAR(ewald_self_energy(topo, beta),
              -units::kCoulomb * beta / std::sqrt(std::numbers::pi) * 5.0,
              1e-9);
}

TEST(EwaldTest, ReferenceBetaIndependence) {
  // The full Ewald energy must not depend on the splitting parameter.
  auto sys = sysbuild::build_random_charges(16, md::Box(12, 12, 12), 1);
  EwaldRefOptions o1;
  o1.beta = 0.55;
  o1.kmax = 14;
  EwaldRefOptions o2;
  o2.beta = 0.75;
  o2.kmax = 18;
  const double e1 = ewald_reference(sys.topo, sys.box, sys.positions, o1)
                        .total();
  const double e2 = ewald_reference(sys.topo, sys.box, sys.positions, o2)
                        .total();
  EXPECT_NEAR(e1, e2, std::abs(e1) * 1e-4 + 1e-3);
}

TEST(EwaldTest, ReferenceForcesMatchGradient) {
  auto sys = sysbuild::build_random_charges(8, md::Box(10, 10, 10), 2);
  EwaldRefOptions opts;
  opts.beta = 0.6;
  opts.kmax = 10;
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> fd(n), fr(n);
  ewald_reference(sys.topo, sys.box, sys.positions, opts, &fd, &fr);
  const double h = 1e-5;
  for (int i = 0; i < 4; ++i) {
    for (int d = 0; d < 3; ++d) {
      auto plus = sys.positions;
      auto minus = sys.positions;
      plus[static_cast<std::size_t>(i)][d] += h;
      minus[static_cast<std::size_t>(i)][d] -= h;
      const double ep =
          ewald_reference(sys.topo, sys.box, plus, opts).total();
      const double em =
          ewald_reference(sys.topo, sys.box, minus, opts).total();
      const double numeric = -(ep - em) / (2 * h);
      EXPECT_NEAR(fd[static_cast<std::size_t>(i)][d] +
                      fr[static_cast<std::size_t>(i)][d],
                  numeric, 5e-3);
    }
  }
}

// --- serial PME vs brute-force Ewald ------------------------------------------

TEST(SerialPmeTest, ReciprocalMatchesKspaceSum) {
  auto sys = sysbuild::build_random_charges(20, md::Box(14, 11, 9), 3);
  const double beta = 0.5;
  PmeParams params;
  params.nx = 28;
  params.ny = 24;
  params.nz = 20;
  params.order = 6;
  params.beta = beta;
  SerialPme pme(params, sys.box);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> f(n);
  const double recip = pme.reciprocal(sys.topo, sys.positions, f);

  EwaldRefOptions opts;
  opts.beta = beta;
  opts.kmax = 12;
  const EwaldRefResult ref =
      ewald_reference(sys.topo, sys.box, sys.positions, opts);
  EXPECT_NEAR(recip, ref.reciprocal, std::abs(ref.reciprocal) * 2e-3 + 1e-3);
}

TEST(SerialPmeTest, ForcesMatchNumericalGradient) {
  auto sys = sysbuild::build_random_charges(10, md::Box(10, 10, 10), 4);
  PmeParams params;
  params.nx = 24;
  params.ny = 24;
  params.nz = 24;
  params.order = 4;
  params.beta = 0.45;
  SerialPme pme(params, sys.box);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> f(n);
  pme.reciprocal(sys.topo, sys.positions, f);
  const double h = 1e-4;
  for (int i = 0; i < 5; ++i) {
    for (int d = 0; d < 3; ++d) {
      auto plus = sys.positions;
      auto minus = sys.positions;
      plus[static_cast<std::size_t>(i)][d] += h;
      minus[static_cast<std::size_t>(i)][d] -= h;
      std::vector<Vec3> tmp(n);
      const double ep = pme.reciprocal(sys.topo, plus, tmp);
      const double em = pme.reciprocal(sys.topo, minus, tmp);
      EXPECT_NEAR(f[static_cast<std::size_t>(i)][d], -(ep - em) / (2 * h),
                  2e-2);
    }
  }
}

TEST(SerialPmeTest, NetForceSmallAndShrinksWithOrder) {
  // Smooth PME does not conserve momentum exactly (the B-spline
  // interpolation breaks translation invariance); the residual net force
  // must be small and must shrink rapidly with the interpolation order.
  auto sys = sysbuild::build_random_charges(30, md::Box(15, 12, 10), 5);
  auto net_force = [&](int order) {
    PmeParams params;
    params.nx = 30;
    params.ny = 24;
    params.nz = 20;
    params.beta = 0.5;
    params.order = order;
    SerialPme pme(params, sys.box);
    std::vector<Vec3> f(static_cast<std::size_t>(sys.topo.natoms()));
    pme.reciprocal(sys.topo, sys.positions, f);
    Vec3 net;
    double fmax = 0.0;
    for (const auto& v : f) {
      net += v;
      fmax = std::max(fmax, util::norm(v));
    }
    return std::pair<double, double>(util::norm(net), fmax);
  };
  const auto [net4, fmax4] = net_force(4);
  const auto [net6, fmax6] = net_force(6);
  EXPECT_LT(net4, 0.02 * fmax4);
  EXPECT_LT(net6, 0.1 * net4);
}

TEST(SerialPmeTest, TotalElectrostaticBetaIndependent) {
  // direct(erfc) + recip + self must be invariant under the split.
  auto sys = sysbuild::build_random_charges(12, md::Box(12, 12, 12), 6);
  auto total_for = [&](double beta) {
    PmeParams params;
    params.nx = 32;
    params.ny = 32;
    params.nz = 32;
    params.order = 6;
    params.beta = beta;
    SerialPme pme(params, sys.box);
    const auto n = static_cast<std::size_t>(sys.topo.natoms());
    std::vector<Vec3> f(n);
    double total = pme.reciprocal(sys.topo, sys.positions, f);
    total += ewald_self_energy(sys.topo, beta);
    // Direct part via the md kernel (reference path, full pair loop).
    md::NonbondedOptions opts;
    opts.cutoff = 5.9;
    opts.elec = md::NonbondedOptions::Elec::kEwaldDirect;
    opts.beta = beta;
    md::EnergyTerms e;
    md::nonbonded_energy_reference(sys.topo, sys.box, sys.positions, opts, f,
                                   e);
    return total + e.elec;
  };
  const double e1 = total_for(0.65);
  const double e2 = total_for(0.85);
  EXPECT_NEAR(e1, e2, std::abs(e1) * 5e-3 + 0.05);
}

TEST(SerialPmeTest, SpreadingConservesCharge) {
  // The k=0 mode of the spread grid is the total charge; with the net
  // charge zero the reciprocal energy is finite and the influence function
  // kills k=0 regardless. Verify via a directly constructed system with a
  // known non-zero total: Q^(0) = sum q.
  md::Topology topo(3);
  topo.atom(0).charge = 1.0;
  topo.atom(1).charge = 2.0;
  topo.atom(2).charge = -0.5;
  md::Box box(8, 8, 8);
  std::vector<Vec3> pos{{1.2, 3.4, 5.6}, {7.9, 0.1, 2.2}, {4.0, 4.0, 4.0}};
  PmeParams params;
  params.nx = 16;
  params.ny = 16;
  params.nz = 16;
  SerialPme pme(params, box);
  std::vector<Vec3> f(3);
  pme.reciprocal(topo, pos, f);  // exercises spreading internally
  // Spreading conservation is verified through the b-spline partition of
  // unity (tested above); here we check the reciprocal energy is finite
  // and forces are finite for a charged system (neutralizing background).
  for (const auto& v : f) {
    EXPECT_TRUE(std::isfinite(v.x + v.y + v.z));
  }
}

TEST(ExclusionCorrectionTest, MatchesAnalyticPair) {
  md::Topology topo(2);
  topo.atom(0).charge = 0.6;
  topo.atom(1).charge = -0.4;
  md::Bond b;
  b.i = 0;
  b.j = 1;
  topo.bonds().push_back(b);
  topo.build_exclusions();
  md::Box box(20, 20, 20);
  std::vector<Vec3> pos{{5, 5, 5}, {6.2, 5, 5}};
  std::vector<Vec3> f(2);
  const double beta = 0.4;
  const double e = ewald_exclusion_correction(topo, box, pos, beta, f);
  const double qq = units::kCoulomb * 0.6 * -0.4;
  EXPECT_NEAR(e, -qq * std::erf(beta * 1.2) / 1.2, 1e-12);
}

TEST(ExclusionCorrectionTest, ForcesMatchGradient) {
  auto sys = sysbuild::build_test_chain(8, 12);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> f(n);
  const double beta = 0.34;
  ewald_exclusion_correction(sys.topo, sys.box, sys.positions, beta, f);
  const double h = 1e-6;
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    for (int d = 0; d < 3; ++d) {
      auto plus = sys.positions;
      auto minus = sys.positions;
      plus[static_cast<std::size_t>(i)][d] += h;
      minus[static_cast<std::size_t>(i)][d] -= h;
      std::vector<Vec3> tmp(n);
      const double ep =
          ewald_exclusion_correction(sys.topo, sys.box, plus, beta, tmp);
      const double em =
          ewald_exclusion_correction(sys.topo, sys.box, minus, beta, tmp);
      EXPECT_NEAR(f[static_cast<std::size_t>(i)][d], -(ep - em) / (2 * h),
                  1e-4);
    }
  }
}

TEST(ExclusionCorrectionTest, ShardsPartition) {
  auto sys = sysbuild::build_test_chain(16, 8);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> full(n);
  const double efull = ewald_exclusion_correction(sys.topo, sys.box,
                                                  sys.positions, 0.34, full);
  std::vector<Vec3> acc(n);
  double eacc = 0.0;
  for (int shard = 0; shard < 4; ++shard) {
    eacc += ewald_exclusion_correction(sys.topo, sys.box, sys.positions,
                                       0.34, acc, shard, 4);
  }
  EXPECT_NEAR(eacc, efull, 1e-10);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(util::norm(acc[i] - full[i]), 0.0, 1e-10);
  }
}

// PME error vs. the exact k-space sum must fall as the mesh refines and as
// the interpolation order rises.
TEST(SerialPmeTest, AccuracyConvergesWithGridAndOrder) {
  auto sys = sysbuild::build_random_charges(16, md::Box(10, 10, 10), 44);
  const double beta = 0.45;
  EwaldRefOptions opts;
  opts.beta = beta;
  opts.kmax = 12;
  const double exact =
      ewald_reference(sys.topo, sys.box, sys.positions, opts).reciprocal;

  auto error_for = [&](std::size_t n, int order) {
    PmeParams params;
    params.nx = n;
    params.ny = n;
    params.nz = n;
    params.order = order;
    params.beta = beta;
    SerialPme pme(params, sys.box);
    std::vector<Vec3> f(static_cast<std::size_t>(sys.topo.natoms()));
    return std::abs(pme.reciprocal(sys.topo, sys.positions, f) - exact);
  };

  const double coarse = error_for(10, 4);
  const double fine = error_for(20, 4);
  const double finer = error_for(32, 4);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(finer, fine);
  // Higher order at a fixed (adequate) mesh is more accurate.
  EXPECT_LT(error_for(20, 6), error_for(20, 4) * 1.01);
  // And the finest result is genuinely accurate.
  EXPECT_LT(finer, std::abs(exact) * 1e-3 + 1e-4);
}

// --- parallel PME ---------------------------------------------------------------

class ParallelPmeTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelPmeTest, MatchesSerial) {
  const int p = GetParam();
  auto sys = sysbuild::build_random_charges(40, md::Box(16, 10, 12), 21);
  PmeParams params;
  params.nx = 20;
  params.ny = 12;
  params.nz = 16;
  params.order = 4;
  params.beta = 0.4;

  SerialPme serial(params, sys.box);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> serial_forces(n);
  const double serial_energy =
      serial.reciprocal(sys.topo, sys.positions, serial_forces);

  net::ClusterConfig config;
  config.nranks = p;
  config.network = net::Network::kScoreGigE;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(p));
  std::vector<double> energies(static_cast<std::size_t>(p));
  std::vector<std::vector<Vec3>> forces(static_cast<std::size_t>(p),
                                        std::vector<Vec3>(n));
  sim::Engine engine(p);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    ParallelPme pme(params, sys.box, mw);
    energies[static_cast<std::size_t>(ctx.rank())] = pme.reciprocal(
        sys.topo, sys.positions,
        forces[static_cast<std::size_t>(ctx.rank())]);
  });

  double energy = 0.0;
  std::vector<Vec3> total(n);
  for (int r = 0; r < p; ++r) {
    energy += energies[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < n; ++i) {
      total[i] += forces[static_cast<std::size_t>(r)][i];
    }
  }
  EXPECT_NEAR(energy, serial_energy, std::abs(serial_energy) * 1e-9 + 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(util::norm(total[i] - serial_forces[i]), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelPmeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(ParallelPmeTest2, OddMixedRadixGridMatchesSerial) {
  // Odd extents on every axis: the slab FFT's odd-factor paths, the
  // B-spline moduli at odd n, and an uneven slab partition all at once.
  const int p = 3;
  auto sys = sysbuild::build_random_charges(24, md::Box(11, 9, 7), 61);
  PmeParams params;
  params.nx = 15;
  params.ny = 9;
  params.nz = 7;
  params.order = 4;
  params.beta = 0.5;

  SerialPme serial(params, sys.box);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> serial_forces(n);
  const double serial_energy =
      serial.reciprocal(sys.topo, sys.positions, serial_forces);

  net::ClusterConfig config;
  config.nranks = p;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(p));
  std::vector<double> energies(static_cast<std::size_t>(p));
  std::vector<std::vector<Vec3>> forces(static_cast<std::size_t>(p),
                                        std::vector<Vec3>(n));
  sim::Engine engine(p);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    ParallelPme pme(params, sys.box, mw);
    energies[static_cast<std::size_t>(ctx.rank())] = pme.reciprocal(
        sys.topo, sys.positions,
        forces[static_cast<std::size_t>(ctx.rank())]);
  });

  double energy = 0.0;
  std::vector<Vec3> total(n);
  for (int r = 0; r < p; ++r) {
    energy += energies[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < n; ++i) {
      total[i] += forces[static_cast<std::size_t>(r)][i];
    }
  }
  EXPECT_NEAR(energy, serial_energy, std::abs(serial_energy) * 1e-9 + 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(util::norm(total[i] - serial_forces[i]), 0.0, 1e-8);
  }
}

TEST(ParallelPmeTest2, WorkCountersPopulated) {
  auto sys = sysbuild::build_random_charges(20, md::Box(10, 10, 10), 30);
  PmeParams params;
  params.nx = 16;
  params.ny = 16;
  params.nz = 16;
  net::ClusterConfig config;
  config.nranks = 2;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(2);
  sim::Engine engine(2);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    double charged = 0.0;
    ParallelPme pme(params, sys.box, mw,
                    [&](double flops) { charged += flops; });
    PmeWork work;
    std::vector<Vec3> f(static_cast<std::size_t>(sys.topo.natoms()));
    pme.reciprocal(sys.topo, sys.positions, f, &work);
    EXPECT_GT(work.atoms_spread, 0u);
    EXPECT_GT(work.stencil_points, 0u);
    EXPECT_GT(work.mesh_points, 0u);
    EXPECT_GT(charged, 0.0);
  });
}

}  // namespace
}  // namespace repro::pme
