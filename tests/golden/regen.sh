#!/bin/sh
# Regenerates the golden figure outputs from a built tree.
#
#   tests/golden/regen.sh [build-dir]
#
# Run this ONLY after an intentional model/calibration change, and review
# the resulting diffs — the goldens pin the exact simulator output (fixed
# seeds, --steps=4 short mode) so accidental behaviour changes fail CI.
set -eu
build="${1:-build}"
here="$(cd "$(dirname "$0")" && pwd)"

for fig in fig2_structure fig3_reference_case fig4_breakdown_reference \
           fig5_networks fig6_breakdown_networks fig7_comm_speed \
           fig8_middleware fig9_smp extension_decomposition; do
  bin="$build/bench/$fig"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $build first)" >&2
    exit 1
  fi
  echo "regenerating $fig.txt..."
  "$bin" --steps=4 > "$here/$fig.txt" 2>/dev/null
done

# The conclusion sweep's golden runs the trimmed --smoke grids (the full
# processor sweep to 128 is a bench, not a regression test).
bin="$build/bench/conclusion_scalability_limits"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (cmake --build $build first)" >&2
  exit 1
fi
echo "regenerating conclusion_scalability_limits.txt..."
"$bin" --smoke --steps=2 > "$here/conclusion_scalability_limits.txt" 2>/dev/null

# The load-balance extension's golden also runs --smoke, but at --steps=4
# so the run crosses a rebuild-time rebalance (rebuilds every 2 steps).
bin="$build/bench/extension_load_balance"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (cmake --build $build first)" >&2
  exit 1
fi
echo "regenerating extension_load_balance.txt..."
"$bin" --smoke --steps=4 > "$here/extension_load_balance.txt" 2>/dev/null

# DES scalability record (wall-clock, so not a byte-compared golden):
# re-measures events/sec up to p=4096 and rewrites BENCH_des_scale.json
# at the repo root. Skipped unless the bench binary is built.
if [ -x "$build/bench/des_scale" ]; then
  echo "regenerating BENCH_des_scale.json (p up to 4096; takes a few min)..."
  "$build/bench/des_scale" --json="$here/../../BENCH_des_scale.json"
fi

# Scalar-vs-SIMD kernel speedups (wall-clock, so not a byte-compared
# golden): rewrites BENCH_kernels.json at the repo root. The binary exits
# non-zero if the SIMD variants drift from the scalar reference.
if [ -x "$build/bench/kernel_speedups" ]; then
  echo "regenerating BENCH_kernels.json..."
  "$build/bench/kernel_speedups" --json="$here/../../BENCH_kernels.json"
fi
echo "done; review with: git diff tests/golden/ BENCH_des_scale.json BENCH_kernels.json"
