// Tests for the analysis observables (RDF, MSD, Rg, selections), the PDB
// export, and integrator time-reversibility.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "charmm/simulation.hpp"
#include "md/analysis.hpp"
#include "sysbuild/builder.hpp"
#include "sysbuild/io.hpp"
#include "util/rng.hpp"

namespace repro::md {
namespace {

using util::Vec3;

// A simple cubic lattice of n^3 points with spacing a.
std::pair<Topology, std::vector<Vec3>> cubic_lattice(int n, double a) {
  Topology topo(n * n * n);
  std::vector<Vec3> pos;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      for (int z = 0; z < n; ++z) {
        topo.atom(static_cast<int>(pos.size())) =
            AtomParams{12.0, 0.0, 0.0, 1.0};
        pos.push_back(Vec3{x * a, y * a, z * a});
      }
    }
  }
  topo.build_exclusions();
  return {std::move(topo), std::move(pos)};
}

TEST(RdfTest, CubicLatticePeaks) {
  const double a = 3.0;
  auto [topo, pos] = cubic_lattice(6, a);
  const Box box(6 * a, 6 * a, 6 * a);
  const auto sel = select_all(topo);
  const RdfResult rdf = radial_distribution(box, pos, sel, sel, 6.5, 130);

  // No pairs below the lattice constant; strong peaks at a, a*sqrt(2),
  // a*sqrt(3), 2a.
  auto g_at = [&](double r) {
    const int bin = static_cast<int>(r / 6.5 * 130);
    return rdf.g[static_cast<std::size_t>(bin)];
  };
  EXPECT_DOUBLE_EQ(g_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(g_at(2.5), 0.0);
  EXPECT_GT(g_at(a), 10.0);
  EXPECT_GT(g_at(a * std::sqrt(2.0)), 10.0);
  EXPECT_GT(g_at(a * std::sqrt(3.0)), 5.0);
  EXPECT_GT(rdf.pairs, 0u);
}

TEST(RdfTest, IdealGasIsFlat) {
  util::Rng rng(8);
  const int n = 600;
  Topology topo(n);
  const Box box(24, 24, 24);
  std::vector<Vec3> pos;
  for (int i = 0; i < n; ++i) {
    topo.atom(i) = AtomParams{12.0, 0, 0, 1.0};
    pos.push_back(Vec3{rng.uniform(0, 24), rng.uniform(0, 24),
                       rng.uniform(0, 24)});
  }
  topo.build_exclusions();
  const auto sel = select_all(topo);
  const RdfResult rdf = radial_distribution(box, pos, sel, sel, 8.0, 16);
  // g(r) ~ 1 everywhere for uncorrelated points (outer bins have the most
  // samples; allow generous noise in the small-r bins).
  double mean_outer = 0.0;
  for (int b = 8; b < 16; ++b) mean_outer += rdf.g[static_cast<std::size_t>(b)];
  mean_outer /= 8.0;
  EXPECT_NEAR(mean_outer, 1.0, 0.1);
}

TEST(RdfTest, CrossSelectionCountsOncePerPair) {
  auto [topo, pos] = cubic_lattice(4, 3.0);
  const Box box(12, 12, 12);
  std::vector<int> evens, odds;
  for (int i = 0; i < topo.natoms(); ++i) {
    (i % 2 == 0 ? evens : odds).push_back(i);
  }
  const RdfResult rdf =
      radial_distribution(box, pos, evens, odds, 5.0, 10);
  EXPECT_EQ(rdf.pairs, static_cast<std::size_t>(rdf.pairs));
  EXPECT_GT(rdf.pairs, 0u);
}

TEST(RdfTest, RejectsOversizedRange) {
  auto [topo, pos] = cubic_lattice(3, 3.0);
  const Box box(9, 9, 9);
  const auto sel = select_all(topo);
  EXPECT_THROW(radial_distribution(box, pos, sel, sel, 20.0, 10),
               util::Error);
}

TEST(MsdTest, UniformShift) {
  auto [topo, pos] = cubic_lattice(3, 2.0);
  auto moved = pos;
  for (auto& r : moved) r += Vec3{1.0, 2.0, 2.0};
  const auto sel = select_all(topo);
  EXPECT_DOUBLE_EQ(mean_squared_displacement(pos, moved, sel), 9.0);
}

TEST(RgTest, TwoPointMasses) {
  Topology topo(2);
  topo.atom(0) = AtomParams{10.0, 0, 0, 1};
  topo.atom(1) = AtomParams{10.0, 0, 0, 1};
  const std::vector<Vec3> pos{{0, 0, 0}, {4, 0, 0}};
  const std::vector<int> sel{0, 1};
  EXPECT_DOUBLE_EQ(radius_of_gyration(topo, pos, sel), 2.0);
  const Vec3 com = center_of_mass(topo, pos, sel);
  EXPECT_DOUBLE_EQ(com.x, 2.0);
}

TEST(RgTest, MassWeightedCom) {
  Topology topo(2);
  topo.atom(0) = AtomParams{30.0, 0, 0, 1};
  topo.atom(1) = AtomParams{10.0, 0, 0, 1};
  const std::vector<Vec3> pos{{0, 0, 0}, {4, 0, 0}};
  const std::vector<int> sel{0, 1};
  EXPECT_DOUBLE_EQ(center_of_mass(topo, pos, sel).x, 1.0);
}

TEST(SelectionTest, WaterOxygensAndHeavies) {
  const auto water = sysbuild::build_water_box(2);
  EXPECT_EQ(select_water_oxygens(water.topo).size(), 8u);
  EXPECT_EQ(select_heavy_atoms(water.topo).size(), 8u);
  EXPECT_EQ(select_all(water.topo).size(), 24u);

  const auto myo = sysbuild::build_myoglobin_like();
  EXPECT_EQ(select_water_oxygens(myo.topo).size(), 337u);  // the paper's count
}

TEST(SelectionTest, ProteinRadiusOfGyrationIsCompact) {
  const auto myo = sysbuild::build_myoglobin_like();
  // Protein atoms are the first kProteinAtoms by construction.
  std::vector<int> protein;
  for (int i = 0; i < sysbuild::kProteinAtoms; ++i) protein.push_back(i);
  const double rg = radius_of_gyration(myo.topo, myo.positions, protein);
  // A folded 153-residue bundle: Rg in the 12-20 Å range (myoglobin ~15 Å).
  EXPECT_GT(rg, 10.0);
  EXPECT_LT(rg, 22.0);
}

TEST(PdbExportTest, WellFormedRecords) {
  const auto sys = sysbuild::build_water_box(2);
  std::stringstream out;
  sysbuild::write_pdb(out, sys);
  const std::string pdb = out.str();
  EXPECT_EQ(pdb.rfind("CRYST1", 0), 0u);  // starts with the cell
  std::size_t atom_lines = 0;
  std::size_t conect_lines = 0;
  std::istringstream lines(pdb);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("ATOM", 0) == 0) {
      ++atom_lines;
      EXPECT_GE(line.size(), 54u);  // through the z coordinate
    }
    if (line.rfind("CONECT", 0) == 0) ++conect_lines;
  }
  EXPECT_EQ(atom_lines, 24u);
  EXPECT_EQ(conect_lines, sys.topo.bonds().size());
  EXPECT_NE(pdb.find("END"), std::string::npos);
}

TEST(ReversibilityTest, VelocityVerletRunsBackward) {
  // Velocity Verlet is time-reversible: integrate forward, negate the
  // velocities, integrate the same number of steps, and the system returns
  // to its starting point (up to floating-point roundoff). This exercises
  // integrator + kernels + neighbor-list determinism at once.
  static const sysbuild::BuiltSystem water = sysbuild::build_water_box(3);
  charmm::SimulationConfig config;
  config.pme = pme::PmeParams{12, 12, 12, 4, 0.7};
  config.cutoff = 4.2;
  config.switch_on = 3.5;
  config.dt_ps = 0.0005;
  charmm::Simulation sim(water, config);
  sim.set_velocities_from_temperature(150.0, 13);

  const auto pos0 = sim.positions();
  sim.step(20);
  auto& vel = const_cast<std::vector<Vec3>&>(sim.velocities());
  for (auto& v : vel) v = -v;
  sim.step(20);

  double worst = 0.0;
  for (std::size_t i = 0; i < pos0.size(); ++i) {
    worst = std::max(worst, util::norm(sim.positions()[i] - pos0[i]));
  }
  EXPECT_LT(worst, 1e-7);
}

}  // namespace
}  // namespace repro::md
