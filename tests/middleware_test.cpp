#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "middleware/middleware.hpp"
#include "net/cluster.hpp"
#include "perf/recorder.hpp"
#include "sim/engine.hpp"

namespace repro::middleware {
namespace {

struct RunResult {
  std::vector<perf::RankRecorder> recorders;
};

RunResult run_mw(int nranks, Kind kind,
                 const std::function<void(Middleware&)>& body,
                 net::Network network = net::Network::kTcpGigE) {
  net::ClusterConfig config;
  config.nranks = nranks;
  config.network = network;
  net::ClusterNetwork cluster(config);
  RunResult out;
  out.recorders.resize(static_cast<std::size_t>(nranks));
  sim::Engine engine(nranks);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   out.recorders[static_cast<std::size_t>(ctx.rank())]);
    auto mw = make_middleware(kind, comm);
    body(*mw);
  });
  return out;
}

class MiddlewareKindTest : public ::testing::TestWithParam<Kind> {};

TEST_P(MiddlewareKindTest, GlobalSumIsCorrect) {
  for (int p : {1, 2, 4, 5, 8}) {
    run_mw(p, GetParam(), [p](Middleware& mw) {
      std::vector<double> v(50);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = mw.rank() * 100.0 + static_cast<double>(i);
      }
      mw.global_sum(v.data(), v.size());
      const double rank_sum = 100.0 * p * (p - 1) / 2.0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(v[i], rank_sum + static_cast<double>(i) * p, 1e-9);
      }
    });
  }
}

TEST_P(MiddlewareKindTest, GlobalSumBitIdenticalAcrossRanks) {
  // The replicated-data scheme relies on every rank ending with the exact
  // same force vector.
  for (int p : {2, 4, 8}) {
    std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
    run_mw(p, GetParam(), [&](Middleware& mw) {
      std::vector<double> v(64);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 1.0 / (mw.rank() + 1.0) + 1e-13 * static_cast<double>(i);
      }
      mw.global_sum(v.data(), v.size());
      results[static_cast<std::size_t>(mw.rank())] = v;
    });
    for (int r = 1; r < p; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
    }
  }
}

TEST_P(MiddlewareKindTest, BroadcastFromRoot) {
  run_mw(6, GetParam(), [](Middleware& mw) {
    std::vector<double> v(10, mw.rank() == 0 ? 3.25 : 0.0);
    mw.broadcast(v.data(), v.size() * sizeof(double), 0);
    for (double x : v) EXPECT_DOUBLE_EQ(x, 3.25);
  });
}

TEST_P(MiddlewareKindTest, TransposeMatchesAlltoall) {
  for (int p : {1, 2, 3, 4, 8}) {
    run_mw(p, GetParam(), [p](Middleware& mw) {
      std::vector<std::size_t> counts(static_cast<std::size_t>(p),
                                      2 * sizeof(double));
      std::vector<std::size_t> displs(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) {
        displs[static_cast<std::size_t>(d)] =
            static_cast<std::size_t>(d) * 2 * sizeof(double);
      }
      std::vector<double> send(static_cast<std::size_t>(2 * p));
      for (int d = 0; d < p; ++d) {
        send[static_cast<std::size_t>(2 * d)] = 10.0 * mw.rank() + d;
        send[static_cast<std::size_t>(2 * d + 1)] = -1.0 * d;
      }
      std::vector<double> recv(static_cast<std::size_t>(2 * p), 0.0);
      mw.transpose(send.data(), counts, displs, recv.data(), counts, displs);
      for (int s = 0; s < p; ++s) {
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(2 * s)],
                         10.0 * s + mw.rank());
        EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(2 * s + 1)],
                         -1.0 * mw.rank());
      }
    });
  }
}

TEST_P(MiddlewareKindTest, SynchronizeCompletes) {
  run_mw(8, GetParam(), [](Middleware& mw) {
    mw.comm().compute(0.001 * mw.rank());
    mw.synchronize();
    mw.synchronize();
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, MiddlewareKindTest,
                         ::testing::Values(Kind::kMpi, Kind::kCmpi),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MiddlewareCostTest, CmpiSynchronizationCostsMoreOnTcp) {
  auto mpi_run = run_mw(8, Kind::kMpi, [](Middleware& mw) {
    for (int i = 0; i < 10; ++i) mw.synchronize();
  });
  auto cmpi_run = run_mw(8, Kind::kCmpi, [](Middleware& mw) {
    for (int i = 0; i < 10; ++i) mw.synchronize();
  });
  double mpi_sync = 0.0;
  double cmpi_sync = 0.0;
  for (int r = 0; r < 8; ++r) {
    mpi_sync += mpi_run.recorders[static_cast<std::size_t>(r)].time(
        perf::Component::kOther, perf::Kind::kSync);
    cmpi_sync += cmpi_run.recorders[static_cast<std::size_t>(r)].time(
        perf::Component::kOther, perf::Kind::kSync);
  }
  // p-1 ring repetitions vs a log2(p) dissemination barrier.
  EXPECT_GT(cmpi_sync, 1.5 * mpi_sync);
}

TEST(MiddlewareCostTest, CmpiSyncScalesWithRankCount) {
  auto sync_time = [](int p) {
    auto run = run_mw(p, Kind::kCmpi, [](Middleware& mw) {
      for (int i = 0; i < 5; ++i) mw.synchronize();
    });
    double total = 0.0;
    for (const auto& rec : run.recorders) {
      total += rec.time(perf::Component::kOther, perf::Kind::kSync);
    }
    return total / p;  // per-rank average
  };
  const double t2 = sync_time(2);
  const double t8 = sync_time(8);
  EXPECT_GT(t8, 2.0 * t2);
}

TEST(MiddlewareCostTest, CmpiGlobalSumMovesMoreBytes) {
  const std::size_t n = 5000;
  auto bytes_for = [&](Kind kind) {
    auto run = run_mw(8, kind, [&](Middleware& mw) {
      std::vector<double> v(n, 1.0);
      mw.global_sum(v.data(), v.size());
    });
    double total = 0.0;
    for (const auto& rec : run.recorders) total += rec.total_bytes();
    return total;
  };
  // Ring circulation (p-1 full vectors per rank) vs a binomial tree.
  EXPECT_GT(bytes_for(Kind::kCmpi), 2.0 * bytes_for(Kind::kMpi));
}

TEST(MiddlewareFactoryTest, NamesAndCreation) {
  EXPECT_STREQ(to_string(Kind::kMpi), "MPI");
  EXPECT_STREQ(to_string(Kind::kCmpi), "CMPI");
  net::ClusterConfig config;
  config.nranks = 1;
  net::ClusterNetwork cluster(config);
  perf::RankRecorder rec;
  sim::Engine engine(1);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster, rec);
    EXPECT_NE(make_middleware(Kind::kMpi, comm), nullptr);
    EXPECT_NE(make_middleware(Kind::kCmpi, comm), nullptr);
  });
}

}  // namespace
}  // namespace repro::middleware
