#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "md/bonded.hpp"
#include "md/box.hpp"
#include "md/integrator.hpp"
#include "md/minimize.hpp"
#include "md/neighbor.hpp"
#include "md/nonbonded.hpp"
#include "md/topology.hpp"
#include "sysbuild/builder.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace repro::md {
namespace {

using util::Vec3;

constexpr double kPi = std::numbers::pi;

TEST(BoxTest, MinImage) {
  Box box(10, 20, 30);
  EXPECT_EQ(box.min_image(Vec3{1, 2, 3}), Vec3(1, 2, 3));
  const Vec3 wrapped = box.min_image(Vec3{9, 19, 29});
  EXPECT_NEAR(wrapped.x, -1.0, 1e-12);
  EXPECT_NEAR(wrapped.y, -1.0, 1e-12);
  EXPECT_NEAR(wrapped.z, -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(box.volume(), 6000.0);
}

TEST(BoxTest, Wrap) {
  Box box(10, 10, 10);
  const Vec3 w = box.wrap(Vec3{-1.0, 11.0, 25.0});
  EXPECT_NEAR(w.x, 9.0, 1e-12);
  EXPECT_NEAR(w.y, 1.0, 1e-12);
  EXPECT_NEAR(w.z, 5.0, 1e-12);
}

TEST(TopologyTest, ExclusionsFromBondGraph) {
  // Chain 0-1-2-3-4: 1-2 and 1-3 neighbors excluded, 1-4 not.
  Topology topo(5);
  for (int i = 0; i + 1 < 5; ++i) {
    Bond b;
    b.i = i;
    b.j = i + 1;
    topo.bonds().push_back(b);
  }
  topo.build_exclusions();
  EXPECT_TRUE(topo.excluded(0, 1));   // 1-2
  EXPECT_TRUE(topo.excluded(0, 2));   // 1-3
  EXPECT_FALSE(topo.excluded(0, 3));  // 1-4 interacts
  EXPECT_FALSE(topo.excluded(0, 4));
  EXPECT_TRUE(topo.excluded(2, 4));
  EXPECT_TRUE(topo.excluded(4, 3));   // symmetric
  EXPECT_EQ(topo.excluded_pairs().size(), 4u + 3u);
}

TEST(TopologyTest, ExclusionPolicies) {
  // Chain 0-1-2-3-4 under each NBXMOD level.
  auto make = [](ExclusionPolicy policy) {
    Topology topo(5);
    for (int i = 0; i + 1 < 5; ++i) {
      Bond b;
      b.i = i;
      b.j = i + 1;
      topo.bonds().push_back(b);
    }
    topo.build_exclusions(policy);
    return topo;
  };
  const Topology nbx2 = make(ExclusionPolicy::kBonds);
  EXPECT_TRUE(nbx2.excluded(0, 1));
  EXPECT_FALSE(nbx2.excluded(0, 2));
  EXPECT_EQ(nbx2.excluded_pairs().size(), 4u);

  const Topology nbx4 = make(ExclusionPolicy::kBondsAnglesDihedrals);
  EXPECT_TRUE(nbx4.excluded(0, 3));   // 1-4 excluded too
  EXPECT_FALSE(nbx4.excluded(0, 4));  // 1-5 interacts
  EXPECT_EQ(nbx4.excluded_pairs().size(), 4u + 3u + 2u);
}

TEST(TopologyTest, TotalChargeAndMass) {
  Topology topo(2);
  topo.atom(0) = AtomParams{12.0, 0.5, 0.1, 2.0};
  topo.atom(1) = AtomParams{1.0, -0.5, 0.05, 1.0};
  EXPECT_DOUBLE_EQ(topo.total_charge(), 0.0);
  EXPECT_DOUBLE_EQ(topo.total_mass(), 13.0);
}

// --- bonded terms against hand-computed values ------------------------------

TEST(BondedTest, BondEnergyAndForce) {
  Topology topo(2);
  Bond b;
  b.i = 0;
  b.j = 1;
  b.kb = 100.0;
  b.b0 = 1.5;
  topo.bonds().push_back(b);
  Box box(50, 50, 50);
  std::vector<Vec3> pos{{0, 0, 0}, {2.0, 0, 0}};
  std::vector<Vec3> f(2);
  EnergyTerms e;
  bonded_energy(topo, box, pos, f, e);
  EXPECT_NEAR(e.bond, 100.0 * 0.25, 1e-12);
  // dE/dr = 2*100*0.5 = 100 pulling the atoms together.
  EXPECT_NEAR(f[0].x, 100.0, 1e-10);
  EXPECT_NEAR(f[1].x, -100.0, 1e-10);
}

TEST(BondedTest, AngleEnergyAtRightAngle) {
  Topology topo(3);
  Angle a;
  a.i = 0;
  a.j = 1;
  a.k = 2;
  a.ktheta = 50.0;
  a.theta0 = kPi / 2.0;
  topo.angles().push_back(a);
  Box box(50, 50, 50);
  // 60-degree angle.
  std::vector<Vec3> pos{{1, 0, 0}, {0, 0, 0},
                        {std::cos(kPi / 3), std::sin(kPi / 3), 0}};
  std::vector<Vec3> f(3);
  EnergyTerms e;
  bonded_energy(topo, box, pos, f, e);
  const double dt = kPi / 3 - kPi / 2;
  EXPECT_NEAR(e.angle, 50.0 * dt * dt, 1e-10);
  // Net force and torque vanish.
  EXPECT_NEAR(util::norm(f[0] + f[1] + f[2]), 0.0, 1e-10);
}

TEST(BondedTest, UreyBradleyAddsOneThreeTerm) {
  Topology topo(3);
  Angle a;
  a.i = 0;
  a.j = 1;
  a.k = 2;
  a.ktheta = 0.0;
  a.theta0 = kPi / 2;
  a.kub = 30.0;
  a.s0 = 2.0;
  topo.angles().push_back(a);
  Box box(50, 50, 50);
  std::vector<Vec3> pos{{1.5, 0, 0}, {0, 0, 0}, {0, 1.5, 0}};
  std::vector<Vec3> f(3);
  EnergyTerms e;
  bonded_energy(topo, box, pos, f, e);
  const double s = std::sqrt(4.5);
  EXPECT_NEAR(e.angle, 30.0 * (s - 2.0) * (s - 2.0), 1e-10);
}

TEST(BondedTest, DihedralEnergyAtKnownAngle) {
  Topology topo(4);
  Dihedral d;
  d.i = 0;
  d.j = 1;
  d.k = 2;
  d.l = 3;
  d.kchi = 2.0;
  d.n = 1;
  d.delta = 0.0;
  topo.dihedrals().push_back(d);
  Box box(50, 50, 50);
  // Planar trans conformation: phi = pi (with the atan2 convention used).
  std::vector<Vec3> pos{{0, 1, 0}, {0, 0, 0}, {1, 0, 0}, {1, -1, 0}};
  std::vector<Vec3> f(4);
  EnergyTerms e;
  bonded_energy(topo, box, pos, f, e);
  // E = k (1 + cos(phi)); at phi = +-pi this is 0.
  EXPECT_NEAR(e.dihedral, 0.0, 1e-10);
  // Cis conformation: phi = 0 -> E = 2k.
  pos[3] = Vec3{1, 1, 0};
  std::fill(f.begin(), f.end(), Vec3{});
  EnergyTerms e2;
  bonded_energy(topo, box, pos, f, e2);
  EXPECT_NEAR(e2.dihedral, 4.0, 1e-10);
}

// Numerical-gradient check on a realistic random chain covering every
// bonded term type at once.
TEST(BondedTest, ForcesMatchNumericalGradient) {
  auto sys = sysbuild::build_test_chain(12, 77);
  const double h = 1e-6;
  std::vector<Vec3> f(static_cast<std::size_t>(sys.topo.natoms()));
  EnergyTerms e;
  bonded_energy(sys.topo, sys.box, sys.positions, f, e);
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    for (int d = 0; d < 3; ++d) {
      auto plus = sys.positions;
      auto minus = sys.positions;
      plus[static_cast<std::size_t>(i)][d] += h;
      minus[static_cast<std::size_t>(i)][d] -= h;
      std::vector<Vec3> tmp(static_cast<std::size_t>(sys.topo.natoms()));
      EnergyTerms ep, em;
      bonded_energy(sys.topo, sys.box, plus, tmp, ep);
      bonded_energy(sys.topo, sys.box, minus, tmp, em);
      const double numeric =
          -(ep.bonded() - em.bonded()) / (2.0 * h);
      EXPECT_NEAR(f[static_cast<std::size_t>(i)][d], numeric, 2e-4)
          << "atom " << i << " dim " << d;
    }
  }
}

TEST(BondedTest, ShardsPartitionTheWork) {
  auto sys = sysbuild::build_test_chain(20, 5);
  std::vector<Vec3> full(static_cast<std::size_t>(sys.topo.natoms()));
  EnergyTerms efull;
  const BondedWork wfull =
      bonded_energy(sys.topo, sys.box, sys.positions, full, efull);

  const int p = 3;
  std::vector<Vec3> acc(static_cast<std::size_t>(sys.topo.natoms()));
  EnergyTerms eacc;
  std::size_t terms = 0;
  for (int shard = 0; shard < p; ++shard) {
    terms +=
        bonded_energy(sys.topo, sys.box, sys.positions, acc, eacc, shard, p)
            .total();
  }
  EXPECT_EQ(terms, wfull.total());
  EXPECT_NEAR(eacc.bonded(), efull.bonded(), 1e-9);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(util::norm(acc[i] - full[i]), 0.0, 1e-9);
  }
}

// --- neighbor list -----------------------------------------------------------

TEST(NeighborListTest, MatchesBruteForce) {
  util::Rng rng(31);
  const int n = 200;
  Topology topo(n);
  Box box(24, 30, 36);
  std::vector<Vec3> pos;
  for (int i = 0; i < n; ++i) {
    topo.atom(i) = AtomParams{12.0, 0.0, 0.1, 2.0};
    pos.push_back(Vec3{rng.uniform(0, box.lx()), rng.uniform(0, box.ly()),
                       rng.uniform(0, box.lz())});
  }
  // A few bonds create exclusions.
  for (int i = 0; i < 20; ++i) {
    Bond b;
    b.i = 2 * i;
    b.j = 2 * i + 1;
    topo.bonds().push_back(b);
  }
  topo.build_exclusions();

  NeighborList nbl(6.0, 1.0);
  nbl.build(topo, box, pos);

  std::set<std::pair<int, int>> listed;
  for (int i = 0; i < n; ++i) {
    for (std::size_t t = nbl.offsets()[static_cast<std::size_t>(i)];
         t < nbl.offsets()[static_cast<std::size_t>(i) + 1]; ++t) {
      listed.insert({i, nbl.neighbors()[t]});
    }
  }
  std::set<std::pair<int, int>> brute;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (topo.excluded(i, j)) continue;
      const double r2 = util::norm2(
          box.min_image(pos[static_cast<std::size_t>(i)] -
                        pos[static_cast<std::size_t>(j)]));
      if (r2 < 49.0) brute.insert({i, j});
    }
  }
  EXPECT_EQ(listed, brute);
}

TEST(NeighborListTest, RebuildTrigger) {
  auto sys = sysbuild::build_water_box(4);
  NeighborList nbl(4.0, 2.0);
  nbl.build(sys.topo, sys.box, sys.positions);
  EXPECT_FALSE(nbl.needs_rebuild(sys.box, sys.positions));
  auto moved = sys.positions;
  moved[0].x += 0.9;  // below skin/2
  EXPECT_FALSE(nbl.needs_rebuild(sys.box, moved));
  moved[0].x += 0.2;  // beyond skin/2
  EXPECT_TRUE(nbl.needs_rebuild(sys.box, moved));
}

// --- non-bonded kernels -------------------------------------------------------

TEST(NonbondedTest, ListedMatchesReference) {
  auto sys = sysbuild::build_water_box(4);
  NonbondedOptions opts;
  opts.cutoff = 5.0;
  opts.switch_on = 4.0;
  NeighborList nbl(opts.cutoff, 1.0);
  nbl.build(sys.topo, sys.box, sys.positions);

  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> f1(n), f2(n);
  EnergyTerms e1, e2;
  nonbonded_energy(sys.topo, sys.box, sys.positions, nbl, opts, f1, e1);
  nonbonded_energy_reference(sys.topo, sys.box, sys.positions, opts, f2, e2);
  EXPECT_NEAR(e1.lj, e2.lj, 1e-9);
  EXPECT_NEAR(e1.elec, e2.elec, 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(util::norm(f1[i] - f2[i]), 0.0, 1e-9);
  }
}

class ElecMethodTest
    : public ::testing::TestWithParam<NonbondedOptions::Elec> {};

TEST_P(ElecMethodTest, ForcesMatchNumericalGradient) {
  auto sys = sysbuild::build_water_box(2);
  NonbondedOptions opts;
  opts.cutoff = 3.0;
  opts.switch_on = 2.2;
  opts.elec = GetParam();
  opts.beta = 0.4;
  const auto n = static_cast<std::size_t>(sys.topo.natoms());
  std::vector<Vec3> f(n);
  EnergyTerms e;
  nonbonded_energy_reference(sys.topo, sys.box, sys.positions, opts, f, e);
  const double h = 1e-6;
  for (int i = 0; i < sys.topo.natoms(); i += 3) {
    for (int d = 0; d < 3; ++d) {
      auto plus = sys.positions;
      auto minus = sys.positions;
      plus[static_cast<std::size_t>(i)][d] += h;
      minus[static_cast<std::size_t>(i)][d] -= h;
      std::vector<Vec3> tmp(n);
      EnergyTerms ep, em;
      nonbonded_energy_reference(sys.topo, sys.box, plus, opts, tmp, ep);
      nonbonded_energy_reference(sys.topo, sys.box, minus, opts, tmp, em);
      const double numeric =
          -((ep.lj + ep.elec) - (em.lj + em.elec)) / (2.0 * h);
      EXPECT_NEAR(f[static_cast<std::size_t>(i)][d], numeric, 5e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, ElecMethodTest,
                         ::testing::Values(NonbondedOptions::Elec::kShift,
                                           NonbondedOptions::Elec::kEwaldDirect));

TEST(NonbondedTest, ShiftElectrostaticsVanishAtCutoff) {
  Topology topo(2);
  topo.atom(0) = AtomParams{1.0, 1.0, 0.0, 1.0};
  topo.atom(1) = AtomParams{1.0, -1.0, 0.0, 1.0};
  topo.build_exclusions();
  Box box(60, 60, 60);
  NonbondedOptions opts;
  opts.cutoff = 10.0;
  std::vector<Vec3> f(2);

  // Just inside the cutoff: energy is ~0 (continuous to zero).
  std::vector<Vec3> pos{{0, 0, 0}, {9.999, 0, 0}};
  EnergyTerms e;
  nonbonded_energy_reference(topo, box, pos, opts, f, e);
  EXPECT_NEAR(e.elec, 0.0, 1e-5);
  // Well inside: attractive and close to plain Coulomb modified by shift.
  pos[1].x = 2.0;
  EnergyTerms e2;
  nonbonded_energy_reference(topo, box, pos, opts, f, e2);
  const double shift = std::pow(1.0 - 4.0 / 100.0, 2);
  EXPECT_NEAR(e2.elec, -units::kCoulomb / 2.0 * shift, 1e-9);
}

TEST(NonbondedTest, SwitchingFunctionContinuity) {
  Topology topo(2);
  topo.atom(0) = AtomParams{1.0, 0.0, 0.2, 1.9};
  topo.atom(1) = AtomParams{1.0, 0.0, 0.2, 1.9};
  topo.build_exclusions();
  Box box(60, 60, 60);
  NonbondedOptions opts;
  opts.cutoff = 10.0;
  opts.switch_on = 8.0;
  auto energy_at = [&](double r) {
    std::vector<Vec3> f(2);
    std::vector<Vec3> pos{{0, 0, 0}, {r, 0, 0}};
    EnergyTerms e;
    nonbonded_energy_reference(topo, box, pos, opts, f, e);
    return e.lj;
  };
  // Continuous at the switch-on radius and zero at the cutoff.
  EXPECT_NEAR(energy_at(7.9999), energy_at(8.0001), 1e-6);
  EXPECT_NEAR(energy_at(9.9999), 0.0, 1e-8);
  // LJ minimum at rmin: E = -eps.
  EXPECT_NEAR(energy_at(3.8), -0.2, 1e-10);
}

TEST(NonbondedTest, ShardsPartitionPairs) {
  auto sys = sysbuild::build_water_box(4);
  NonbondedOptions opts;
  opts.cutoff = 5.0;
  opts.switch_on = 4.0;
  NeighborList nbl(opts.cutoff, 1.0);
  nbl.build(sys.topo, sys.box, sys.positions);
  const auto n = static_cast<std::size_t>(sys.topo.natoms());

  std::vector<Vec3> full(n);
  EnergyTerms efull;
  const NonbondedWork wfull =
      nonbonded_energy(sys.topo, sys.box, sys.positions, nbl, opts, full,
                       efull);
  const int p = 5;
  std::vector<Vec3> acc(n);
  EnergyTerms eacc;
  std::size_t pairs = 0;
  for (int shard = 0; shard < p; ++shard) {
    pairs += nonbonded_energy(sys.topo, sys.box, sys.positions, nbl, opts,
                              acc, eacc, shard, p)
                 .pairs_listed;
  }
  EXPECT_EQ(pairs, wfull.pairs_listed);
  EXPECT_NEAR(eacc.lj, efull.lj, 1e-9);
  EXPECT_NEAR(eacc.elec, efull.elec, 1e-9);
}

// --- integrator ----------------------------------------------------------------

TEST(IntegratorTest, HarmonicOscillatorPeriod) {
  // Single particle on a spring to a fixed point via a bond to a huge mass.
  Topology topo(2);
  topo.atom(0) = AtomParams{1.0, 0, 0, 0};
  topo.atom(1) = AtomParams{1e12, 0, 0, 0};
  Bond b;
  b.i = 0;
  b.j = 1;
  b.kb = 10.0;  // E = k (r - r0)^2 -> omega = sqrt(2k/m)
  b.b0 = 2.0;
  topo.bonds().push_back(b);
  Box box(100, 100, 100);
  std::vector<Vec3> pos{{52.5, 50, 50}, {50, 50, 50}};
  std::vector<Vec3> vel{{0, 0, 0}, {0, 0, 0}};
  std::vector<Vec3> f(2);

  const double omega = std::sqrt(2.0 * 10.0 * units::kForceToAccel / 1.0);
  const double period = 2.0 * kPi / omega;
  const double dt = period / 2000.0;
  VelocityVerlet vv(dt);

  auto eval = [&] {
    std::fill(f.begin(), f.end(), Vec3{});
    EnergyTerms e;
    bonded_energy(topo, box, pos, f, e);
  };
  eval();
  for (int s = 0; s < 2000; ++s) {
    vv.begin_step(topo, f, pos, vel);
    eval();
    vv.end_step(topo, f, vel);
  }
  // After one period the oscillator returns to its start.
  EXPECT_NEAR(pos[0].x, 52.5, 1e-3);
  EXPECT_NEAR(vel[0].x, 0.0, 0.05);
}

TEST(IntegratorTest, KineticEnergyAndTemperature) {
  Topology topo(2);
  topo.atom(0) = AtomParams{2.0, 0, 0, 0};
  topo.atom(1) = AtomParams{3.0, 0, 0, 0};
  std::vector<Vec3> vel{{1, 0, 0}, {0, 2, 0}};
  const double ke = kinetic_energy(topo, vel);
  EXPECT_NEAR(ke, 0.5 * (2.0 + 12.0) / units::kForceToAccel, 1e-12);
  EXPECT_GT(temperature(topo, vel), 0.0);
}

TEST(IntegratorTest, AssignVelocitiesHitsTemperature) {
  auto sys = sysbuild::build_water_box(4);
  std::vector<Vec3> vel;
  assign_velocities(sys.topo, 300.0, 99, vel);
  EXPECT_NEAR(temperature(sys.topo, vel), 300.0, 15.0);
  // No net momentum.
  Vec3 momentum;
  for (int i = 0; i < sys.topo.natoms(); ++i) {
    momentum += vel[static_cast<std::size_t>(i)] * sys.topo.atom(i).mass;
  }
  EXPECT_NEAR(util::norm(momentum), 0.0, 1e-9);
}

TEST(MinimizeTest, QuadraticBowlConverges) {
  MinimizeOptions opts;
  opts.max_steps = 500;
  opts.force_tolerance = 1e-3;
  std::vector<Vec3> pos{{5, -3, 2}};
  auto eval = [](const std::vector<Vec3>& p, std::vector<Vec3>& f) {
    f[0] = -2.0 * p[0];
    return util::norm2(p[0]);
  };
  const MinimizeResult res = minimize(opts, eval, pos);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_energy, 1e-4);
  EXPECT_LT(res.final_energy, res.initial_energy);
}

TEST(MinimizeTest, NeverIncreasesEnergy) {
  auto sys = sysbuild::build_test_chain(16, 3);
  // Perturb to create strain.
  util::Rng rng(4);
  for (auto& r : sys.positions) {
    r += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
              rng.uniform(-0.3, 0.3)};
  }
  auto eval = [&](const std::vector<Vec3>& p, std::vector<Vec3>& f) {
    EnergyTerms e;
    std::fill(f.begin(), f.end(), Vec3{});
    bonded_energy(sys.topo, sys.box, p, f, e);
    return e.bonded();
  };
  MinimizeOptions opts;
  opts.max_steps = 100;
  auto pos = sys.positions;
  const MinimizeResult res = minimize(opts, eval, pos);
  EXPECT_LE(res.final_energy, res.initial_energy);
}

}  // namespace
}  // namespace repro::md
