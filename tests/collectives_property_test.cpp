// Property tests for the collective operations: whatever the network
// stack, the rank count, or the injected faults, every collective must
// deliver byte-identical payloads on every rank. Faults may only ever
// move time — the retransmission/degradation/stall machinery must never
// drop, duplicate, or corrupt a payload (that is the core correctness
// contract of the fault layer; see net/faults.hpp).
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <numeric>
#include <vector>

#include "mpi/comm.hpp"
#include "net/cluster.hpp"
#include "net/faults.hpp"
#include "perf/recorder.hpp"
#include "sim/engine.hpp"

namespace repro::mpi {
namespace {

const std::vector<net::Network>& all_networks() {
  static const std::vector<net::Network> nets{
      net::Network::kTcpGigE, net::Network::kScoreGigE,
      net::Network::kMyrinetGM, net::Network::kTcpFastEthernet};
  return nets;
}

// A fault mix exercising every mechanism the cluster size allows: packet
// loss plus a straggler always; link degradation and a mid-run stall
// window once a second node exists to host them.
net::FaultSpec test_faults(int nranks) {
  const int nnodes = (nranks + 1) / 2;  // two ranks per node below
  std::string spec = "loss=0.05,rto=0.001";
  spec += ";straggler=0,x=1.4,period=0.001,dur=0.0001";
  if (nnodes > 1) {
    spec += ";degrade=0-1,bw=0.5,lat=0.0001";
    spec += ";stall=1,at=0.0005,dur=0.001";
  }
  return net::parse_fault_spec(spec);
}

// Runs `body` on every rank of a simulated cluster with faults optionally
// armed. Two ranks per node so both the intra- and cross-node paths run.
void run_cluster(net::Network network, int nranks, bool with_faults,
                 const std::function<void(Comm&)>& body) {
  net::ClusterConfig config;
  config.nranks = nranks;
  config.cpus_per_node = 2;
  config.network = network;
  net::ClusterNetwork cluster(
      config, net::params_for(network),
      with_faults ? test_faults(nranks) : net::FaultSpec{});
  std::vector<perf::RankRecorder> recorders(
      static_cast<std::size_t>(nranks));
  sim::Engine engine(nranks);
  engine.run([&](sim::RankCtx& ctx) {
    Comm comm(ctx, cluster,
              recorders[static_cast<std::size_t>(ctx.rank())]);
    body(comm);
  });
  if (with_faults) {
    ASSERT_TRUE(cluster.faults_enabled());
  }
}

// Deterministic per-rank payload bytes; distinct across ranks and sizes.
std::vector<unsigned char> rank_payload(int rank, std::size_t bytes) {
  std::vector<unsigned char> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<unsigned char>((rank * 131 + i * 7 + 13) & 0xff);
  }
  return data;
}

class CollectivePropertyTest
    : public ::testing::TestWithParam<std::tuple<net::Network, int, bool>> {
 protected:
  net::Network network() const { return std::get<0>(GetParam()); }
  int nranks() const { return std::get<1>(GetParam()); }
  bool faults() const { return std::get<2>(GetParam()); }
};

TEST_P(CollectivePropertyTest, BcastDeliversRootPayloadEverywhere) {
  run_cluster(network(), nranks(), faults(), [&](Comm& comm) {
    const int root = comm.size() > 2 ? 2 : 0;
    const std::vector<unsigned char> expected =
        rank_payload(root, 3000);  // a few MTUs worth
    std::vector<unsigned char> data(expected.size());
    if (comm.rank() == root) data = expected;
    comm.bcast(data.data(), data.size(), root);
    EXPECT_EQ(data, expected) << "rank " << comm.rank();
  });
}

TEST_P(CollectivePropertyTest, ReduceAndAllreduceSumExactly) {
  run_cluster(network(), nranks(), faults(), [&](Comm& comm) {
    const int p = comm.size();
    constexpr std::size_t kN = 257;
    // Integer-valued doubles: any summation order is exact, so every
    // allreduce algorithm must produce the same bits.
    std::vector<double> expected(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      double sum = 0.0;
      for (int r = 0; r < p; ++r) {
        sum += static_cast<double>((r + 1) * (static_cast<int>(i) % 11 + 1));
      }
      expected[i] = sum;
    }
    auto mine = [&](std::size_t i) {
      return static_cast<double>((comm.rank() + 1) *
                                 (static_cast<int>(i) % 11 + 1));
    };

    std::vector<double> reduced(kN);
    for (std::size_t i = 0; i < kN; ++i) reduced[i] = mine(i);
    comm.reduce_sum(reduced.data(), kN, 0);
    if (comm.rank() == 0) EXPECT_EQ(reduced, expected);
  });
}

TEST_P(CollectivePropertyTest, AllreduceAllAlgorithmsAgree) {
  for (AllreduceAlgorithm algo :
       {AllreduceAlgorithm::kReduceBcast, AllreduceAlgorithm::kRecursiveDoubling,
        AllreduceAlgorithm::kRing}) {
    net::ClusterConfig config;
    config.nranks = nranks();
    config.cpus_per_node = 2;
    config.network = network();
    net::ClusterNetwork cluster(
        config, net::params_for(network()),
        faults() ? test_faults(nranks()) : net::FaultSpec{});
    std::vector<perf::RankRecorder> recorders(
        static_cast<std::size_t>(nranks()));
    CollectiveConfig collectives;
    collectives.allreduce = algo;
    sim::Engine engine(nranks());
    engine.run([&](sim::RankCtx& ctx) {
      Comm comm(ctx, cluster,
                recorders[static_cast<std::size_t>(ctx.rank())], collectives);
      const int p = comm.size();
      constexpr std::size_t kN = 300;  // >= p so the ring segments
      std::vector<double> data(kN);
      for (std::size_t i = 0; i < kN; ++i) {
        data[i] = static_cast<double>((comm.rank() + 1) *
                                      (static_cast<int>(i) % 7 + 1));
      }
      comm.allreduce_sum(data.data(), kN);
      for (std::size_t i = 0; i < kN; ++i) {
        double sum = 0.0;
        for (int r = 0; r < p; ++r) {
          sum += static_cast<double>((r + 1) * (static_cast<int>(i) % 7 + 1));
        }
        ASSERT_EQ(data[i], sum)
            << "rank " << comm.rank() << " element " << i;
      }
    });
  }
}

TEST_P(CollectivePropertyTest, AllgathervReassemblesEveryBlock) {
  run_cluster(network(), nranks(), faults(), [&](Comm& comm) {
    const int p = comm.size();
    // Variable block sizes, including the awkward zero-length block.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> displs(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] =
          r == 1 && p > 1 ? 0 : 100 + 37 * static_cast<std::size_t>(r);
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    const std::vector<unsigned char> mine = rank_payload(
        comm.rank(), counts[static_cast<std::size_t>(comm.rank())]);
    std::vector<unsigned char> out(total, 0xee);
    comm.allgatherv(mine.data(), mine.size(), out.data(), counts, displs);
    for (int r = 0; r < p; ++r) {
      const std::vector<unsigned char> expected =
          rank_payload(r, counts[static_cast<std::size_t>(r)]);
      if (expected.empty()) continue;  // memcmp on null is UB even at n=0
      EXPECT_EQ(std::memcmp(out.data() + displs[static_cast<std::size_t>(r)],
                            expected.data(), expected.size()),
                0)
          << "rank " << comm.rank() << " block " << r;
    }
  });
}

TEST_P(CollectivePropertyTest, AlltoallvRoutesEveryBlockIntact) {
  run_cluster(network(), nranks(), faults(), [&](Comm& comm) {
    const int p = comm.size();
    const int me = comm.rank();
    // Block from r to d has a size and contents depending on both ends.
    auto block_size = [](int src, int dst) {
      return static_cast<std::size_t>(64 + 17 * src + 5 * dst);
    };
    auto block_bytes = [&](int src, int dst) {
      std::vector<unsigned char> data(block_size(src, dst));
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] =
            static_cast<unsigned char>((src * 251 + dst * 83 + i) & 0xff);
      }
      return data;
    };
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> send_displs(static_cast<std::size_t>(p));
    std::vector<std::size_t> recv_counts(static_cast<std::size_t>(p));
    std::vector<std::size_t> recv_displs(static_cast<std::size_t>(p));
    std::size_t send_total = 0;
    std::size_t recv_total = 0;
    for (int r = 0; r < p; ++r) {
      send_counts[static_cast<std::size_t>(r)] = block_size(me, r);
      send_displs[static_cast<std::size_t>(r)] = send_total;
      send_total += block_size(me, r);
      recv_counts[static_cast<std::size_t>(r)] = block_size(r, me);
      recv_displs[static_cast<std::size_t>(r)] = recv_total;
      recv_total += block_size(r, me);
    }
    std::vector<unsigned char> send_buf(send_total);
    for (int r = 0; r < p; ++r) {
      const auto blk = block_bytes(me, r);
      std::memcpy(send_buf.data() + send_displs[static_cast<std::size_t>(r)],
                  blk.data(), blk.size());
    }
    std::vector<unsigned char> recv_buf(recv_total, 0xee);
    comm.alltoallv(send_buf.data(), send_counts, send_displs, recv_buf.data(),
                   recv_counts, recv_displs);
    for (int r = 0; r < p; ++r) {
      const auto expected = block_bytes(r, me);
      EXPECT_EQ(std::memcmp(
                    recv_buf.data() + recv_displs[static_cast<std::size_t>(r)],
                    expected.data(), expected.size()),
                0)
          << "rank " << me << " block from " << r;
    }
  });
}

TEST_P(CollectivePropertyTest, BarrierCompletesUnderFaults) {
  run_cluster(network(), nranks(), faults(), [&](Comm& comm) {
    for (int i = 0; i < 3; ++i) {
      comm.compute(0.001 * (comm.rank() + 1));  // skewed arrival times
      comm.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllStacksAndSizes, CollectivePropertyTest,
    ::testing::Combine(::testing::ValuesIn(all_networks()),
                       ::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<CollectivePropertyTest::ParamType>&
           info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case net::Network::kTcpGigE: name = "TcpGigE"; break;
        case net::Network::kScoreGigE: name = "ScoreGigE"; break;
        case net::Network::kMyrinetGM: name = "MyrinetGM"; break;
        case net::Network::kTcpFastEthernet: name = "TcpFastE"; break;
      }
      name += "_p" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) ? "_faults" : "_clean";
      return name;
    });

}  // namespace
}  // namespace repro::mpi
