#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/fft.hpp"
#include "fft/parallel_fft.hpp"
#include "middleware/middleware.hpp"
#include "net/cluster.hpp"
#include "perf/recorder.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace repro::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

// O(n^2) reference DFT.
std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(j * k % n) /
                         static_cast<double>(n);
      acc += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

class Fft1DTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1DTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Fft1D plan(n);
  auto x = random_signal(n, 10 + n);
  const auto expect = naive_dft(x);
  plan.forward(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k] - expect[k]), 0.0, 1e-8 * std::sqrt(n))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(Fft1DTest, RoundTrip) {
  const std::size_t n = GetParam();
  Fft1D plan(n);
  const auto orig = random_signal(n, n);
  auto x = orig;
  plan.forward(x.data());
  plan.inverse(x.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST_P(Fft1DTest, ParsevalIdentity) {
  const std::size_t n = GetParam();
  Fft1D plan(n);
  auto x = random_signal(n, 3 * n + 1);
  double time_energy = 0.0;
  for (const auto& c : x) time_energy += std::norm(c);
  plan.forward(x.data());
  double freq_energy = 0.0;
  for (const auto& c : x) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fft1DTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 12, 15,
                                           16, 30, 36, 48, 64, 80, 97, 101,
                                           120));

TEST(Fft1DBasicsTest, ImpulseGivesFlatSpectrum) {
  Fft1D plan(16);
  std::vector<Complex> x(16, Complex(0, 0));
  x[0] = Complex(1, 0);
  plan.forward(x.data());
  for (const auto& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1DBasicsTest, DcGivesDeltaAtZero) {
  Fft1D plan(12);
  std::vector<Complex> x(12, Complex(2, 0));
  plan.forward(x.data());
  EXPECT_NEAR(x[0].real(), 24.0, 1e-12);
  for (std::size_t k = 1; k < 12; ++k) {
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
  }
}

TEST(Fft1DBasicsTest, Linearity) {
  const std::size_t n = 48;
  Fft1D plan(n);
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  plan.forward(a.data());
  plan.forward(b.data());
  plan.forward(sum.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 0.0, 1e-9);
  }
}

TEST(Fft1DBasicsTest, FlopsEstimatePositive) {
  EXPECT_GT(Fft1D(80).flops(), 0.0);
  EXPECT_GT(Fft1D(97).flops(), Fft1D(96).flops());  // Bluestein overhead
  EXPECT_EQ(Fft1D(1).flops(), 0.0);
}

TEST(Fft1DBasicsTest, CircularShiftTheorem) {
  // x[(j - s) mod n] transforms to X[k] * exp(-2 pi i k s / n).
  const std::size_t n = 48;
  const std::size_t shift = 7;
  Fft1D plan(n);
  auto x = random_signal(n, 99);
  std::vector<Complex> shifted(n);
  for (std::size_t j = 0; j < n; ++j) shifted[(j + shift) % n] = x[j];
  plan.forward(x.data());
  plan.forward(shifted.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -2.0 * std::numbers::pi *
                       static_cast<double>(k * shift % n) /
                       static_cast<double>(n);
    const Complex phase(std::cos(ang), std::sin(ang));
    EXPECT_NEAR(std::abs(shifted[k] - x[k] * phase), 0.0, 1e-9);
  }
}

TEST(Fft1DBasicsTest, RealInputHasConjugateSymmetry) {
  const std::size_t n = 36;
  Fft1D plan(n);
  util::Rng rng(5);
  std::vector<Complex> x(n);
  for (auto& c : x) c = Complex(rng.uniform(-1, 1), 0.0);
  plan.forward(x.data());
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k] - std::conj(x[n - k])), 0.0, 1e-10);
  }
}

struct GridCase {
  std::size_t nx, ny, nz;
};

class Fft3DGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(Fft3DGridTest, RoundTripAndParseval) {
  const auto [nx, ny, nz] = GetParam();
  Fft3D plan(nx, ny, nz);
  auto grid = random_signal(nx * ny * nz, nx * 1000 + ny * 10 + nz);
  const auto orig = grid;
  double time_energy = 0.0;
  for (const auto& c : grid) time_energy += std::norm(c);
  plan.forward(grid.data());
  double freq_energy = 0.0;
  for (const auto& c : grid) freq_energy += std::norm(c);
  const auto volume = static_cast<double>(nx * ny * nz);
  EXPECT_NEAR(freq_energy, time_energy * volume,
              1e-8 * time_energy * volume);
  plan.inverse(grid.data());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(std::abs(grid[i] - orig[i]), 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Fft3DGridTest,
    ::testing::Values(GridCase{80, 36, 48},  // the paper's PME grid
                      GridCase{1, 1, 1}, GridCase{2, 3, 5},
                      GridCase{16, 16, 16}, GridCase{7, 9, 11},
                      GridCase{32, 4, 10}));

TEST(Fft3DTest, RoundTripPaperGrid) {
  Fft3D plan(20, 9, 12);
  auto grid = random_signal(20 * 9 * 12, 55);
  const auto orig = grid;
  plan.forward(grid.data());
  plan.inverse(grid.data());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(std::abs(grid[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST(Fft3DTest, SingleModeTransformsToDelta) {
  const std::size_t nx = 8;
  const std::size_t ny = 6;
  const std::size_t nz = 10;
  Fft3D plan(nx, ny, nz);
  std::vector<Complex> grid(nx * ny * nz);
  // Plane wave exp(+2 pi i (2x/nx + y/ny + 3z/nz)) -> delta at (2,1,3)
  // under the e^{-i} forward convention.
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t z = 0; z < nz; ++z) {
        const double phase =
            2.0 * std::numbers::pi *
            (2.0 * x / nx + 1.0 * y / ny + 3.0 * z / nz);
        grid[(x * ny + y) * nz + z] =
            Complex(std::cos(phase), std::sin(phase));
      }
    }
  }
  plan.forward(grid.data());
  const double total = static_cast<double>(nx * ny * nz);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t z = 0; z < nz; ++z) {
        const double expect =
            (x == 2 && y == 1 && z == 3) ? total : 0.0;
        EXPECT_NEAR(std::abs(grid[(x * ny + y) * nz + z]), expect, 1e-8);
      }
    }
  }
}

// --- slab partition ---------------------------------------------------------

TEST(SlabPartitionTest, CoversAllPlanes) {
  for (std::size_t n : {1u, 5u, 48u, 80u}) {
    for (int p : {1, 2, 3, 7, 8, 16}) {
      SlabPartition part(n, p);
      std::size_t covered = 0;
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(part.begin(r), covered);
        covered += part.count(r);
      }
      EXPECT_EQ(covered, n);
      for (std::size_t plane = 0; plane < n; ++plane) {
        const int owner = part.owner(plane);
        EXPECT_GE(plane, part.begin(owner));
        EXPECT_LT(plane, part.end(owner));
      }
    }
  }
}

TEST(SlabPartitionTest, BalancedWithinOne) {
  SlabPartition part(48, 7);
  std::size_t lo = 48;
  std::size_t hi = 0;
  for (int r = 0; r < 7; ++r) {
    lo = std::min(lo, part.count(r));
    hi = std::max(hi, part.count(r));
  }
  EXPECT_LE(hi - lo, 1u);
}

// --- parallel FFT -----------------------------------------------------------

class ParallelFftTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFftTest, MatchesSerial3D) {
  const int p = GetParam();
  const std::size_t nx = 20;
  const std::size_t ny = 9;
  const std::size_t nz = 12;
  auto full = random_signal(nx * ny * nz, 123);

  // Serial reference.
  auto reference = full;
  Fft3D serial(nx, ny, nz);
  serial.forward(reference.data());

  // Distributed run: forward then backward, checking both against the
  // reference and the round trip.
  net::ClusterConfig config;
  config.nranks = p;
  config.network = net::Network::kMyrinetGM;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(p));
  sim::Engine engine(p);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    ParallelFft3D pfft(nx, ny, nz, mw);
    const int me = comm.rank();
    const std::size_t x0 = pfft.x_slabs().begin(me);
    const std::size_t lx = pfft.x_slabs().count(me);

    std::vector<Complex> xslab(full.begin() + static_cast<long>(x0 * ny * nz),
                               full.begin() +
                                   static_cast<long>((x0 + lx) * ny * nz));
    std::vector<Complex> zslab(pfft.z_slab_size());
    pfft.forward(xslab.data(), zslab.data());

    // Check my z-slab of k-space against the serial transform:
    // z-slab layout is [lz][ny][nx].
    const std::size_t z0 = pfft.z_slabs().begin(me);
    for (std::size_t zl = 0; zl < pfft.local_z_count(); ++zl) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t x = 0; x < nx; ++x) {
          const Complex got = zslab[(zl * ny + y) * nx + x];
          const Complex want = reference[(x * ny + y) * nz + (z0 + zl)];
          EXPECT_NEAR(std::abs(got - want), 0.0, 1e-8)
              << "p=" << p << " x=" << x << " y=" << y << " z=" << z0 + zl;
        }
      }
    }

    // Round trip back to the x-slab.
    std::vector<Complex> back(pfft.x_slab_size());
    pfft.backward(zslab.data(), back.data());
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_NEAR(std::abs(back[i] - full[x0 * ny * nz + i]), 0.0, 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelFftTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(ParallelFftTest2, OddMixedRadixGridMatchesSerial) {
  // Fully odd/mixed-radix extents: every axis hits the Bluestein/odd
  // factor paths and the slab partition is uneven on both transposed
  // dimensions.
  const std::size_t nx = 15;
  const std::size_t ny = 9;
  const std::size_t nz = 7;
  const int p = 4;
  auto full = random_signal(nx * ny * nz, 77);
  auto reference = full;
  Fft3D serial(nx, ny, nz);
  serial.forward(reference.data());

  net::ClusterConfig config;
  config.nranks = p;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(p));
  sim::Engine engine(p);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    ParallelFft3D pfft(nx, ny, nz, mw);
    const int me = comm.rank();
    const std::size_t x0 = pfft.x_slabs().begin(me);
    std::vector<Complex> xslab(
        full.begin() + static_cast<long>(x0 * ny * nz),
        full.begin() + static_cast<long>(pfft.x_slabs().end(me) * ny * nz));
    std::vector<Complex> zslab(pfft.z_slab_size());
    pfft.forward(xslab.data(), zslab.data());
    const std::size_t z0 = pfft.z_slabs().begin(me);
    for (std::size_t zl = 0; zl < pfft.local_z_count(); ++zl) {
      for (std::size_t y = 0; y < ny; ++y) {
        for (std::size_t x = 0; x < nx; ++x) {
          const Complex got = zslab[(zl * ny + y) * nx + x];
          const Complex want = reference[(x * ny + y) * nz + (z0 + zl)];
          EXPECT_NEAR(std::abs(got - want), 0.0, 1e-8);
        }
      }
    }
    std::vector<Complex> back(pfft.x_slab_size());
    pfft.backward(zslab.data(), back.data());
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_NEAR(std::abs(back[i] - xslab[i]), 0.0, 1e-10);
    }
  });
}

TEST(ParallelFftTest2, WorksWithEmptySlabs) {
  // More ranks than z-planes: some ranks own zero planes in k-space.
  const std::size_t nx = 16;
  const std::size_t ny = 4;
  const std::size_t nz = 4;
  const int p = 8;
  auto full = random_signal(nx * ny * nz, 9);
  auto reference = full;
  Fft3D serial(nx, ny, nz);
  serial.forward(reference.data());

  net::ClusterConfig config;
  config.nranks = p;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(static_cast<std::size_t>(p));
  sim::Engine engine(p);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    ParallelFft3D pfft(nx, ny, nz, mw);
    const int me = comm.rank();
    const std::size_t x0 = pfft.x_slabs().begin(me);
    std::vector<Complex> xslab(
        full.begin() + static_cast<long>(x0 * ny * nz),
        full.begin() +
            static_cast<long>(pfft.x_slabs().end(me) * ny * nz));
    std::vector<Complex> zslab(pfft.z_slab_size());
    std::vector<Complex> back(pfft.x_slab_size());
    pfft.forward(xslab.data(), zslab.data());
    pfft.backward(zslab.data(), back.data());
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_NEAR(std::abs(back[i] - xslab[i]), 0.0, 1e-10);
    }
  });
}

TEST(ParallelFftTest2, ChargesComputeTime) {
  net::ClusterConfig config;
  config.nranks = 2;
  net::ClusterNetwork cluster(config);
  std::vector<perf::RankRecorder> recs(2);
  sim::Engine engine(2);
  engine.run([&](sim::RankCtx& ctx) {
    mpi::Comm comm(ctx, cluster,
                   recs[static_cast<std::size_t>(ctx.rank())]);
    middleware::MpiMiddleware mw(comm);
    double charged = 0.0;
    ParallelFft3D pfft(12, 6, 8, mw,
                       [&](double flops) { charged += flops; });
    std::vector<Complex> x(pfft.x_slab_size());
    std::vector<Complex> z(pfft.z_slab_size());
    pfft.forward(x.data(), z.data());
    EXPECT_GT(charged, 0.0);
  });
}

}  // namespace
}  // namespace repro::fft
